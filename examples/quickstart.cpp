// Quickstart: join two generated relations with the GRACE hash join and
// group prefetching, verify the result count, and print per-phase times.
//
//   ./quickstart [--build_tuples=N] [--tuple_size=B] [--scheme=group]

#include <cstdio>

#include "join/grace.h"
#include "mem/memory_model.h"
#include "util/flags.h"
#include "workload/generator.h"

using namespace hashjoin;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);

  // 1. Describe the workload: tuples are a 4-byte key plus payload; every
  //    build tuple matches two probe tuples.
  WorkloadSpec spec;
  spec.num_build_tuples = uint64_t(flags.GetInt("build_tuples", 200000));
  spec.tuple_size = uint32_t(flags.GetInt("tuple_size", 100));
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  std::printf("build: %llu tuples (%.1f MB), probe: %llu tuples (%.1f MB)\n",
              (unsigned long long)w.build.num_tuples(),
              double(w.build.data_bytes()) / 1e6,
              (unsigned long long)w.probe.num_tuples(),
              double(w.probe.data_bytes()) / 1e6);

  // 2. Configure the join: memory budget for the join phase and the
  //    cache-prefetching scheme for both phases.
  GraceConfig config;
  config.memory_budget = 8ull << 20;
  std::string scheme = flags.GetString("scheme", "group");
  Scheme s = scheme == "baseline" ? Scheme::kBaseline
             : scheme == "simple" ? Scheme::kSimple
             : scheme == "swp"    ? Scheme::kSwp
                                  : Scheme::kGroup;
  config.partition_scheme = s;
  config.join_scheme = s;

  // 3. Run on real memory (RealMemory lowers the prefetch hooks to actual
  //    PREFETCH instructions and everything else to nothing).
  RealMemory mm;
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, &out);

  std::printf("scheme=%s partitions=%u\n", SchemeName(s),
              r.num_partitions);
  std::printf("partition phase: %.3fs\n", r.partition_phase.wall_seconds);
  std::printf("join phase:      %.3fs\n", r.join_phase.wall_seconds);
  std::printf("output tuples:   %llu (expected %llu)\n",
              (unsigned long long)r.output_tuples,
              (unsigned long long)w.expected_matches);
  return r.output_tuples == w.expected_matches ? 0 : 1;
}
