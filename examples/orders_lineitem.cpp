// A decision-support style equijoin (the workload class the paper's
// introduction motivates): orders ⋈ lineitem on orderkey, with multi-
// column schemas, ~4 lineitems per order, and a fraction of orders with
// no lineitems. Runs every scheme on real hardware AND once through the
// simulated memory hierarchy to show the cycle breakdown.
//
//   ./orders_lineitem [--orders=N]

#include <cstdio>
#include <cstring>

#include "join/grace.h"
#include "mem/memory_model.h"
#include "util/flags.h"
#include "util/random.h"

using namespace hashjoin;

namespace {

Schema OrdersSchema() {
  return Schema({{"o_orderkey", AttrType::kInt32, 4},
                 {"o_custkey", AttrType::kInt32, 4},
                 {"o_totalprice", AttrType::kInt64, 8},
                 {"o_orderdate", AttrType::kInt32, 4},
                 {"o_comment", AttrType::kFixedChar, 44}});
}

Schema LineitemSchema() {
  return Schema({{"l_orderkey", AttrType::kInt32, 4},
                 {"l_partkey", AttrType::kInt32, 4},
                 {"l_quantity", AttrType::kInt32, 4},
                 {"l_extendedprice", AttrType::kInt64, 8},
                 {"l_comment", AttrType::kFixedChar, 28}});
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  uint64_t num_orders = uint64_t(flags.GetInt("orders", 150000));
  Rng rng(2026);

  // Build side: orders. Join keys are memoized hash codes in the slots,
  // exactly what the partition phase would produce.
  Schema orders_schema = OrdersSchema();
  Relation orders(orders_schema);
  std::vector<uint8_t> tuple(orders_schema.fixed_size());
  for (uint64_t i = 0; i < num_orders; ++i) {
    uint32_t orderkey = uint32_t(i + 1);
    std::memset(tuple.data(), 0, tuple.size());
    std::memcpy(tuple.data() + orders_schema.offset(0), &orderkey, 4);
    uint32_t custkey = uint32_t(rng.NextBounded(num_orders / 10 + 1));
    std::memcpy(tuple.data() + orders_schema.offset(1), &custkey, 4);
    int64_t total = int64_t(rng.NextBounded(1000000));
    std::memcpy(tuple.data() + orders_schema.offset(2), &total, 8);
    orders.Append(tuple.data(), uint16_t(tuple.size()),
                  HashKey32(orderkey));
  }

  // Probe side: lineitems, 1-7 per order for 90% of orders.
  Schema li_schema = LineitemSchema();
  Relation lineitem(li_schema);
  std::vector<uint8_t> li(li_schema.fixed_size());
  uint64_t expected = 0;
  std::vector<uint32_t> keys;
  for (uint64_t i = 0; i < num_orders; ++i) {
    if (rng.NextBool(0.1)) continue;  // order without lineitems
    uint64_t items = 1 + rng.NextBounded(7);
    for (uint64_t j = 0; j < items; ++j) keys.push_back(uint32_t(i + 1));
    expected += items;
  }
  rng.Shuffle(&keys);
  for (uint32_t orderkey : keys) {
    std::memset(li.data(), 0, li.size());
    std::memcpy(li.data() + li_schema.offset(0), &orderkey, 4);
    int64_t price = int64_t(rng.NextBounded(100000));
    std::memcpy(li.data() + li_schema.offset(3), &price, 8);
    lineitem.Append(li.data(), uint16_t(li.size()), HashKey32(orderkey));
  }
  std::printf("orders: %llu (%.1f MB), lineitem: %llu (%.1f MB)\n",
              (unsigned long long)orders.num_tuples(),
              double(orders.data_bytes()) / 1e6,
              (unsigned long long)lineitem.num_tuples(),
              double(lineitem.data_bytes()) / 1e6);

  // Real-hardware comparison of all four schemes on one partition pair.
  KernelParams params;
  params.group_size = 19;
  params.prefetch_distance = 4;
  for (Scheme s : {Scheme::kBaseline, Scheme::kSimple, Scheme::kGroup,
                   Scheme::kSwp}) {
    RealMemory mm;
    WallTimer t;
    HashTable ht(ChooseBucketCount(orders.num_tuples(), 31));
    BuildPartition(mm, s, orders, &ht, params);
    Relation out(ConcatSchema(orders_schema, li_schema));
    uint64_t n = ProbePartition(mm, s, lineitem, ht,
                                orders_schema.fixed_size(), params, &out);
    double secs = t.ElapsedSeconds();
    std::printf("%-9s %.3fs  (%.1fM lineitems/s)  outputs=%llu\n",
                SchemeName(s), secs,
                double(lineitem.num_tuples()) / secs / 1e6,
                (unsigned long long)n);
    if (n != expected) {
      std::fprintf(stderr, "wrong result: %llu != %llu\n",
                   (unsigned long long)n, (unsigned long long)expected);
      return 1;
    }
  }

  // Simulated cycle breakdown for baseline vs group prefetching.
  for (Scheme s : {Scheme::kBaseline, Scheme::kGroup}) {
    sim::MemorySim simulator{sim::SimConfig{}};
    SimMemory mm(&simulator);
    HashTable ht(ChooseBucketCount(orders.num_tuples(), 31));
    BuildPartition(mm, s, orders, &ht, params);
    Relation out(ConcatSchema(orders_schema, li_schema));
    ProbePartition(mm, s, lineitem, ht, orders_schema.fixed_size(),
                   params, &out);
    sim::SimStats st = simulator.stats();
    std::printf("[sim] %-9s %s\n", SchemeName(s), st.ToString().c_str());
  }
  return 0;
}
