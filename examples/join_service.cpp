// Join service: fire a burst of mixed-size GRACE disk joins at the
// JoinScheduler under a memory budget far smaller than their combined
// working sets, then keep submitting until admission control pushes
// back. The memory broker revokes running queries' grants to admit each
// newcomer, so the budget a query sees shrinks while it runs — the big
// query spills extra partitions (revoke-forced spills), later queries
// re-grow as earlier ones release, and every join still produces the
// exact match count. Submissions past the queue bound come back as
// kResourceExhausted, never a crash or silent queue growth.
//
//   ./join_service [--queries=N] [--budget_kib=N] [--max_concurrent=N]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "join/grace_disk.h"
#include "sched/join_scheduler.h"
#include "storage/buffer_manager.h"
#include "util/flags.h"
#include "workload/generator.h"

using namespace hashjoin;

namespace {

// Fast simulated disks so the example runs in well under a second.
BufferManagerConfig FastDisks() {
  BufferManagerConfig cfg;
  cfg.num_disks = 2;
  cfg.disk.bandwidth_mb_per_s = 20000;
  cfg.disk.request_latency_us = 0;
  return cfg;
}

JoinWorkload MakeWorkload(uint64_t build_tuples) {
  WorkloadSpec spec;
  spec.num_build_tuples = build_tuples;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  return GenerateJoinWorkload(spec);
}

// The query body: a full disk GRACE join sized off the live grant, so
// broker revokes show up as extra spilled partitions in the stats.
StatusOr<uint64_t> RunJoin(QueryContext& ctx, const JoinWorkload& w,
                           uint32_t num_partitions) {
  BufferManager bm(FastDisks());
  bm.SetReadAheadBudget(ctx.GrantFn());

  DiskJoinConfig cfg;
  cfg.num_partitions = num_partitions;
  cfg.dynamic_budget = ctx.GrantFn();
  cfg.initial_grant_bytes = ctx.grant().initial_bytes();
  DiskGraceJoin join(&bm, cfg);
  HJ_ASSIGN_OR_RETURN(auto build, join.StoreRelation(w.build));
  HJ_ASSIGN_OR_RETURN(auto probe, join.StoreRelation(w.probe));
  HJ_ASSIGN_OR_RETURN(DiskJoinResult r, join.Join(build, probe));
  ctx.stats().recovery = r.recovery;
  return r.output_tuples;
}

std::string Human(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lluK",
                (unsigned long long)(bytes / 1024));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  uint32_t queries = uint32_t(flags.GetInt("queries", 6));
  uint32_t max_concurrent = uint32_t(flags.GetInt("max_concurrent", 3));

  // Mixed-size workloads: query 0 is several times larger than the rest
  // and wants the whole budget; the others' admission minima force the
  // broker to carve its grant down while it runs.
  std::vector<std::unique_ptr<JoinWorkload>> loads;
  std::vector<uint64_t> expected;
  for (uint32_t q = 0; q < queries; ++q) {
    uint64_t tuples = q == 0 ? 16000 : 3000 + 1500 * (q % 3);
    loads.push_back(std::make_unique<JoinWorkload>(MakeWorkload(tuples)));
    expected.push_back(loads.back()->expected_matches);
  }

  // A budget only slightly above the big query's per-partition footprint:
  // any concurrent admission squeezes it below that footprint, and the
  // join must spill to stay inside its grant.
  uint64_t part_tuples = 16000 / 4;
  uint64_t part_pages = (part_tuples * 26) / 8192 + 1;
  uint64_t part_need = part_pages * 8192 + part_tuples * 48;
  uint64_t budget =
      uint64_t(flags.GetInt("budget_kib", int64_t(part_need * 6 / 5 / 1024))) *
      1024;

  SchedulerConfig cfg;
  cfg.max_concurrent = max_concurrent;
  cfg.max_queue = queries;  // the burst fits; the overload below does not
  cfg.pool_threads = 4;
  cfg.memory_budget = budget;
  JoinScheduler service(cfg);

  std::printf("join service: %u queries, budget %s, %u concurrent\n\n",
              queries, Human(budget).c_str(), cfg.max_concurrent);

  // Burst: submit everything at once. Query 0 asks for the full budget
  // (tiny minimum, so it yields under pressure); the rest demand a large
  // minimum, which is exactly what forces the broker to revoke.
  for (uint32_t q = 0; q < queries; ++q) {
    JoinRequest req;
    req.name = "q" + std::to_string(q);
    req.priority = q == 0 ? 10 : 0;  // the big query starts first
    req.min_grant_bytes = q == 0 ? budget / 16 : budget * 2 / 5;
    req.desired_grant_bytes = q == 0 ? budget : budget / 2;
    const JoinWorkload* w = loads[q].get();
    uint32_t parts = q == 0 ? 4 : 8;
    req.body = [w, parts](QueryContext& ctx) {
      return RunJoin(ctx, *w, parts);
    };
    auto id = service.Submit(std::move(req));
    if (!id.ok()) {
      std::printf("submit q%u rejected: %s\n", q,
                  id.status().ToString().c_str());
    }
  }

  // Overload: the queue is already full of the burst, so these bounce
  // with kResourceExhausted — the backpressure signal a caller sheds
  // load on, instead of a crash or an unbounded queue.
  uint32_t bounced = 0;
  for (uint32_t i = 0; i < 2 * queries; ++i) {
    JoinRequest req;
    req.name = "overload" + std::to_string(i);
    req.min_grant_bytes = 4096;
    req.desired_grant_bytes = 4096;
    const JoinWorkload* w = loads.back().get();
    req.body = [w](QueryContext& ctx) { return RunJoin(ctx, *w, 8); };
    auto id = service.Submit(std::move(req));
    if (!id.ok() && id.status().code() == StatusCode::kResourceExhausted) {
      ++bounced;
    }
  }

  ServiceStats stats = service.Drain();

  std::printf(
      "query       status        output  ok   grant  ->   low  revokes"
      "  rv_spills\n");
  bool all_ok = true;
  for (const QueryStats& q : stats.queries) {
    bool verified = true;
    for (uint32_t i = 0; i < queries; ++i) {
      if (q.name == "q" + std::to_string(i)) {
        verified = q.status.ok() && q.output_tuples == expected[i];
      }
    }
    all_ok = all_ok && verified;
    std::printf("%-10s  %-10s  %8llu  %-3s  %6s  %6s  %7llu  %9llu\n",
                q.name.c_str(),
                q.status.ok() ? "ok" : StatusCodeToString(q.status.code()),
                (unsigned long long)q.output_tuples, verified ? "yes" : "NO",
                Human(q.grant_initial_bytes).c_str(),
                Human(q.grant_low_bytes).c_str(),
                (unsigned long long)q.grant_revokes,
                (unsigned long long)q.recovery.revoke_spills);
  }

  uint64_t revoke_spills = 0;
  for (const QueryStats& q : stats.queries) {
    revoke_spills += q.recovery.revoke_spills;
  }
  std::printf(
      "\nservice: %llu admitted, %llu rejected (backpressure), "
      "%llu completed, %llu failed; makespan %.3fs\n",
      (unsigned long long)stats.submitted, (unsigned long long)stats.rejected,
      (unsigned long long)stats.completed, (unsigned long long)stats.failed,
      stats.makespan_seconds);
  std::printf(
      "memory:  %llu broker revokes, %llu re-grows, "
      "%llu revoke-forced spills\n",
      (unsigned long long)service.broker().total_revokes(),
      (unsigned long long)service.broker().total_regrows(),
      (unsigned long long)revoke_spills);
  std::printf("overload bounced with kResourceExhausted: %u\n", bounced);

  if (!all_ok) {
    std::printf("\nMISMATCH: some query produced the wrong count\n");
    return 1;
  }
  return 0;
}
