// Parameter tuner: derives the minimal group size G (Theorem 1) and
// prefetch distance D (Theorem 2) from the generalized models, then
// validates them with a short empirical sweep in the simulated memory
// hierarchy. This is how a deployment would pick G and D for a new
// machine (a new T / Tnext point) without hand-tuning — the question the
// paper's §4.2/§5.1 models answer.
//
//   ./tuner [--latency=T] [--bandwidth_gap=Tnext]

#include <cstdio>

#include "join/grace.h"
#include "mem/memory_model.h"
#include "model/cost_model.h"
#include "util/flags.h"
#include "workload/generator.h"

using namespace hashjoin;

namespace {

uint64_t MeasureProbe(Scheme scheme, const JoinWorkload& w,
                      const KernelParams& params,
                      const sim::SimConfig& cfg) {
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildPartition(mm, Scheme::kGroup, w.build, &ht, params);
  simulator.ResetStats();
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  ProbePartition(mm, scheme, w.probe, ht, w.build.schema().fixed_size(),
                 params, &out);
  return simulator.stats().TotalCycles();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  sim::SimConfig cfg;
  cfg.memory_latency = uint32_t(flags.GetInt("latency", 150));
  cfg.memory_bandwidth_gap =
      uint32_t(flags.GetInt("bandwidth_gap", cfg.memory_bandwidth_gap));

  // Stage costs of the probing pipeline on the simulated machine (k=3).
  model::CodeCosts costs{{cfg.cost_hash + cfg.cost_slot_bookkeeping,
                          cfg.cost_visit_header, cfg.cost_visit_cell,
                          cfg.cost_key_compare +
                              2 * cfg.cost_tuple_copy_per_line}};
  model::MachineParams machine{cfg.memory_latency,
                               cfg.memory_bandwidth_gap};

  uint32_t model_g = model::GroupPrefetchModel::MinGroupSize(costs, machine);
  uint32_t model_d = model::SwpPrefetchModel::MinDistance(costs, machine);
  std::printf("machine: T=%u Tnext=%u\n", cfg.memory_latency,
              cfg.memory_bandwidth_gap);
  std::printf("model:   min G = %u (Theorem 1), min D = %u (Theorem 2), "
              "state array = %u entries\n",
              model_g, model_d,
              model::SwpPrefetchModel::StateArraySize(3, model_d));

  // Empirical confirmation: sweep around the model's answers.
  WorkloadSpec spec;
  spec.tuple_size = 20;
  spec.num_build_tuples = 100000;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  std::printf("\nempirical sweep (probe cycles):\n  G:");
  uint32_t best_g = 0;
  uint64_t best_g_cycles = UINT64_MAX;
  for (uint32_t g = std::max(2u, model_g / 4); g <= model_g * 4; g += std::max(1u, model_g / 4)) {
    KernelParams p;
    p.group_size = g;
    uint64_t c = MeasureProbe(Scheme::kGroup, w, p, cfg);
    std::printf(" %u:%llu", g, (unsigned long long)c);
    if (c < best_g_cycles) {
      best_g_cycles = c;
      best_g = g;
    }
  }
  std::printf("\n  D:");
  uint32_t best_d = 0;
  uint64_t best_d_cycles = UINT64_MAX;
  for (uint32_t d = std::max(1u, model_d / 4); d <= model_d * 4;
       d += std::max(1u, model_d / 4)) {
    KernelParams p;
    p.prefetch_distance = d;
    uint64_t c = MeasureProbe(Scheme::kSwp, w, p, cfg);
    std::printf(" %u:%llu", d, (unsigned long long)c);
    if (c < best_d_cycles) {
      best_d_cycles = c;
      best_d = d;
    }
  }
  std::printf("\n\nrecommendation: G=%u (model %u), D=%u (model %u)\n",
              best_g, model_g, best_d, model_d);
  std::printf("pick the smallest feasible value: it minimizes concurrent "
              "prefetches and cache-conflict evictions (paper §4.2).\n");
  return 0;
}
