// Parallel join: run the same GRACE join serially and on the
// morsel-parallel executor, verify the outputs agree, and print the
// wall-clock speedup. With a simulated memory model it also prints the
// per-thread stall breakdown the executor collects.
//
//   ./parallel_join [--threads=N] [--build_tuples=N] [--partitions=P]

#include <cstdio>

#include "join/grace.h"
#include "mem/memory_model.h"
#include "simcache/memory_sim.h"
#include "util/flags.h"
#include "workload/generator.h"

using namespace hashjoin;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  uint32_t threads = uint32_t(flags.GetInt("threads", 4));

  WorkloadSpec spec;
  spec.num_build_tuples = uint64_t(flags.GetInt("build_tuples", 400000));
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  GraceConfig config;
  config.forced_num_partitions =
      uint32_t(flags.GetInt("partitions", 8));
  std::printf("build: %llu tuples, probe: %llu tuples, partitions: %u\n",
              (unsigned long long)w.build.num_tuples(),
              (unsigned long long)w.probe.num_tuples(),
              config.forced_num_partitions);

  // 1. Real memory: serial reference vs N workers. Each worker runs the
  //    unchanged prefetching kernels on its own partition pairs; the
  //    scheduler hands out the largest pairs first.
  RealMemory mm;
  config.num_threads = 1;
  JoinResult serial = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  config.num_threads = threads;
  JoinResult parallel = GraceHashJoin(mm, w.build, w.probe, config, nullptr);

  std::printf("serial   (1 thread):  join %.3fs, %llu output tuples\n",
              serial.join_phase.wall_seconds,
              (unsigned long long)serial.output_tuples);
  std::printf("parallel (%u threads): join %.3fs, %llu output tuples\n",
              threads, parallel.join_phase.wall_seconds,
              (unsigned long long)parallel.output_tuples);
  if (parallel.join_phase.wall_seconds > 0) {
    std::printf("join-phase speedup: %.2fx (scales with online cores)\n",
                serial.join_phase.wall_seconds /
                    parallel.join_phase.wall_seconds);
  }
  if (serial.output_tuples != parallel.output_tuples ||
      serial.output_tuples != w.expected_matches) {
    std::printf("MISMATCH: expected %llu\n",
                (unsigned long long)w.expected_matches);
    return 1;
  }

  // 2. Simulated memory: every worker is its own simulated core; the
  //    executor returns each worker's cycle breakdown and merges the
  //    totals back so phase accounting stays exact.
  sim::SimConfig cfg;
  sim::MemorySim simulator(cfg);
  SimMemory smm(&simulator);
  JoinResult sim_run = GraceHashJoin(smm, w.build, w.probe, config, nullptr);
  std::printf("\nsimulated per-thread join-phase cycles:\n");
  for (size_t t = 0; t < sim_run.per_thread_join_sim.size(); ++t) {
    const sim::SimStats& s = sim_run.per_thread_join_sim[t];
    std::printf("  thread %zu: total=%llu busy=%llu dcache_stall=%llu\n", t,
                (unsigned long long)s.TotalCycles(),
                (unsigned long long)s.busy_cycles,
                (unsigned long long)s.dcache_stall_cycles);
  }
  std::printf("  merged:   total=%llu\n",
              (unsigned long long)sim_run.join_phase.sim.TotalCycles());
  return 0;
}
