// Pipelined query execution through the operator layer: a filtered join
// feeding an aggregation, with the hash join emitting outputs at
// prefetch-group boundaries (§5.4's pipelined query processing).
//
//   SELECT b.key, COUNT(*), SUM(value)
//   FROM build b JOIN probe p ON b.key = p.key
//   WHERE b.key % 10 < 5
//   GROUP BY b.key;
//
//   ./pipeline_query [--build_tuples=N]

#include <cstdio>
#include <cstring>

#include "exec/operators.h"
#include "util/flags.h"
#include "util/timer.h"
#include "workload/generator.h"

using namespace hashjoin;
using namespace hashjoin::exec;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  WorkloadSpec spec;
  spec.num_build_tuples = uint64_t(flags.GetInt("build_tuples", 200000));
  spec.tuple_size = 32;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  auto keyof = [](const uint8_t* row) {
    uint32_t k;
    std::memcpy(&k, row, 4);
    return k;
  };

  // Plan: Scan(build) -> Filter -> HashJoin(group prefetching) <- Scan(probe)
  //       -> Aggregate(group prefetching)
  auto filter = std::make_unique<FilterOperator>(
      std::make_unique<ScanOperator>(&w.build, 19),
      [&](const uint8_t* row, uint16_t) { return keyof(row) % 10 < 5; });
  auto join = std::make_unique<HashJoinOperator>(
      std::move(filter), std::make_unique<ScanOperator>(&w.probe, 19),
      Scheme::kGroup);
  AggregateOperator agg(std::move(join), /*value_offset=*/4);

  WallTimer t;
  if (Status s = agg.Open(); !s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  RowBatch batch;
  uint64_t groups = 0;
  uint64_t joined_rows = 0;
  while (agg.Next(&batch)) {
    for (const auto& row : batch.rows) {
      int64_t count;
      std::memcpy(&count, row.data + 4, 8);
      joined_rows += uint64_t(count);
      ++groups;
    }
  }
  std::printf("pipeline finished in %.3fs: %llu joined rows in %llu "
              "groups\n",
              t.ElapsedSeconds(), (unsigned long long)joined_rows,
              (unsigned long long)groups);

  // The filter keeps keys with key%10 in {0..4}; each matches 2 probe
  // tuples -> joined rows should be ~half the probe relation.
  uint64_t expect_groups = 0;
  for (uint64_t k = 1; k <= spec.num_build_tuples; ++k) {
    if (k % 10 < 5) ++expect_groups;
  }
  std::printf("expected %llu groups: %s\n",
              (unsigned long long)expect_groups,
              groups == expect_groups ? "OK" : "MISMATCH");
  return groups == expect_groups ? 0 : 1;
}
