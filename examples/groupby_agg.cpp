// Hash-based GROUP BY with group prefetching — the extension the paper's
// conclusion proposes. Computes COUNT(*) and SUM(value) per key over a
// skewed fact relation and compares the baseline aggregation loop with
// the group-prefetched one on real hardware.
//
//   ./groupby_agg [--tuples=N] [--groups=N] [--g=G]

#include <cstdio>
#include <cstring>

#include "join/aggregate_kernels.h"
#include "mem/memory_model.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/generator.h"

using namespace hashjoin;

namespace {

// Fact relation: 4-byte group key + 8-byte value + padding.
Relation MakeFacts(uint64_t tuples, uint64_t groups, uint64_t seed) {
  Relation rel(Schema({{"key", AttrType::kInt32, 4},
                       {"value", AttrType::kInt64, 8},
                       {"pad", AttrType::kFixedChar, 8}}));
  Rng rng(seed);
  for (uint64_t i = 0; i < tuples; ++i) {
    uint8_t t[20] = {};
    uint32_t key = uint32_t(rng.NextBounded(groups));
    int64_t value = int64_t(rng.NextBounded(1000));
    std::memcpy(t, &key, 4);
    std::memcpy(t + 4, &value, 8);
    rel.Append(t, sizeof(t), HashKey32(key));
  }
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  uint64_t tuples = uint64_t(flags.GetInt("tuples", 4000000));
  uint64_t groups = uint64_t(flags.GetInt("groups", 2000000));
  uint32_t g = uint32_t(flags.GetInt("g", 19));

  Relation facts = MakeFacts(tuples, groups, 99);
  std::printf("aggregating %llu tuples into <=%llu groups\n",
              (unsigned long long)tuples, (unsigned long long)groups);

  RealMemory mm;
  uint64_t buckets = NextRelativelyPrime(groups, 31);

  HashAggTable base_agg(buckets);
  WallTimer t1;
  AggregateBaseline(mm, facts, /*value_offset=*/4, &base_agg);
  double base_s = t1.ElapsedSeconds();
  std::printf("baseline:        %.3fs  (%.1fM tuples/s), %llu groups\n",
              base_s, double(tuples) / base_s / 1e6,
              (unsigned long long)base_agg.num_groups());

  HashAggTable gp_agg(buckets);
  WallTimer t2;
  AggregateGroup(mm, facts, /*value_offset=*/4, &gp_agg, g);
  double gp_s = t2.ElapsedSeconds();
  std::printf("group-prefetch:  %.3fs  (%.1fM tuples/s), %llu groups  "
              "[%.2fx]\n",
              gp_s, double(tuples) / gp_s / 1e6,
              (unsigned long long)gp_agg.num_groups(), base_s / gp_s);

  // Verify both aggregations agree.
  if (base_agg.num_groups() != gp_agg.num_groups()) {
    std::fprintf(stderr, "group count mismatch\n");
    return 1;
  }
  uint64_t checked = 0;
  bool ok = true;
  base_agg.ForEachGroup([&](const AggState& s) {
    if (checked++ % 997 != 0) return;  // spot-check
    const AggState* other = gp_agg.Find(s.key);
    if (other == nullptr || other->count != s.count ||
        other->sum != s.sum) {
      ok = false;
    }
  });
  std::printf("verification: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
