// Compares two BENCH_*.json files produced by the src/perf harness and
// flags regressions, or validates one file against the schema:
//
//   bench_diff [--threshold=0.10] [--metric=wall_seconds.median]
//              [--require=PATH[,PATH...]] OLD NEW
//   bench_diff --check [--require=PATH[,PATH...]] FILE [FILE...]
//
// Records are matched by their unique "name". A record regresses when
// NEW metric > OLD metric * (1 + threshold); the exit code is 1 when any
// record regresses (or, with --check, when any file fails validation),
// so CI can gate on it. Counter metrics work too, e.g.
// --metric=counters.llc_misses — records where either side lacks the
// metric (counters unavailable) are reported and skipped, not failed:
// a bench run on a counter-less CI host must not mask wall-time
// regressions seen elsewhere.
//
// --require inverts that leniency for the named dotted metric paths
// (comma-separated): each required path must resolve to a numeric value
// in at least one record of every examined file, else the run FAILS
// instead of skipping — and in compare mode, a record pair lacking data
// for the --metric fails too when that metric is required. CI fixtures
// use it to pin down metrics a bench promises to emit — a silent schema
// drift then breaks the gate rather than producing a vacuously green
// "no data" diff.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/json_writer.h"

namespace hashjoin {
namespace {

// --- schema validation (--check) ---

bool CheckRecord(const JsonValue& rec, size_t index,
                 std::vector<std::string>* errors) {
  auto err = [&](const std::string& what) {
    errors->push_back("records[" + std::to_string(index) + "]: " + what);
    return false;
  };
  if (!rec.is_object()) return err("not an object");
  const JsonValue* name = rec.Find("name");
  if (name == nullptr || !name->is_string() || name->AsString().empty()) {
    return err("missing non-empty \"name\"");
  }
  const JsonValue* config = rec.Find("config");
  if (config == nullptr || !config->is_object()) {
    return err("missing \"config\" object");
  }
  // Execution-policy tagging: records are comparable across schemes only
  // when the scheme is named, so when present it must carry a value.
  const JsonValue* scheme = config->Find("scheme");
  if (scheme != nullptr &&
      (!scheme->is_string() || scheme->AsString().empty())) {
    return err("\"config.scheme\" must be a non-empty string");
  }
  const JsonValue* trials = rec.Find("trials");
  if (trials == nullptr || !trials->is_number() || trials->AsInt() < 1) {
    return err("missing \"trials\" >= 1");
  }
  const JsonValue* median = rec.FindPath("wall_seconds.median");
  if (median == nullptr || !median->is_number()) {
    return err("missing numeric \"wall_seconds.median\"");
  }
  const JsonValue* counters = rec.Find("counters");
  if (counters == nullptr) {
    return err("missing \"counters\" (object, or null with "
               "\"counters_unavailable\")");
  }
  if (counters->is_null()) {
    const JsonValue* why = rec.Find("counters_unavailable");
    if (why == nullptr || !why->is_string() || why->AsString().empty()) {
      return err("null \"counters\" without a \"counters_unavailable\" "
                 "reason");
    }
  } else if (!counters->is_object()) {
    return err("\"counters\" must be an object or null");
  }
  // Tuning provenance: optional, but when a record carries it, it must
  // name its mode (off/static/online) so runs remain comparable.
  const JsonValue* tuning = rec.Find("tuning");
  if (tuning != nullptr) {
    if (!tuning->is_object()) return err("\"tuning\" must be an object");
    const JsonValue* mode = tuning->Find("mode");
    if (mode == nullptr || !mode->is_string() || mode->AsString().empty()) {
      return err("\"tuning.mode\" must be a non-empty string");
    }
  }
  // Cache records: the service bench's broker ledger and the reuse
  // bench's cache block. Both flavors promise the revocation
  // attribution pair (how many bytes came out of the cache class, and
  // the zero-invariant counter of normal grants squeezed while cache
  // surplus remained); the reuse flavor additionally promises the hit
  // accounting that the reuse acceptance gate reads.
  const JsonValue* cache = rec.Find("cache");
  if (cache != nullptr) {
    if (!cache->is_object()) return err("\"cache\" must be an object");
    const JsonValue* broker_revoked = cache->Find("broker_revoked_bytes");
    const JsonValue* misordered =
        cache->Find("normal_revokes_with_cache_surplus");
    if (broker_revoked == nullptr || !broker_revoked->is_number() ||
        misordered == nullptr || !misordered->is_number()) {
      return err("\"cache\" without numeric \"broker_revoked_bytes\"/"
                 "\"normal_revokes_with_cache_surplus\"");
    }
    const JsonValue* hit_rate = cache->Find("hit_rate");
    if (hit_rate != nullptr) {
      const JsonValue* lookups = cache->Find("lookups");
      const JsonValue* revoked = cache->Find("revoked_bytes");
      if (!hit_rate->is_number() || lookups == nullptr ||
          !lookups->is_number() || revoked == nullptr ||
          !revoked->is_number()) {
        return err("\"cache.hit_rate\" without the numeric hit accounting "
                   "(\"lookups\", \"revoked_bytes\")");
      }
    }
  }
  // Online-tuner records: the trajectory (one entry per batch) and the
  // final depths are the whole point of the record — require them.
  const JsonValue* tuner = rec.Find("tuner");
  if (tuner != nullptr) {
    if (!tuner->is_object()) return err("\"tuner\" must be an object");
    const JsonValue* trajectory = tuner->Find("trajectory");
    if (trajectory == nullptr || !trajectory->is_array() ||
        trajectory->size() == 0) {
      return err("\"tuner\" without a non-empty \"trajectory\" array");
    }
    const JsonValue* final_g = tuner->Find("final_G");
    const JsonValue* final_d = tuner->Find("final_D");
    if (final_g == nullptr || !final_g->is_number() || final_d == nullptr ||
        !final_d->is_number()) {
      return err("\"tuner\" without numeric \"final_G\"/\"final_D\"");
    }
  }
  return true;
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// --require: each path must be a numeric value in at least one record.
/// Appends an error per unmet path; returns false if any was unmet.
bool CheckRequiredPaths(const JsonValue* records,
                        const std::vector<std::string>& required,
                        std::vector<std::string>* errors) {
  bool all_found = true;
  for (const std::string& path : required) {
    bool found = false;
    for (size_t i = 0; records != nullptr && i < records->size(); ++i) {
      const JsonValue* v = records->at(i).FindPath(path);
      if (v != nullptr && v->is_number()) {
        found = true;
        break;
      }
    }
    if (!found) {
      errors->push_back("required metric \"" + path +
                        "\" missing from every record");
      all_found = false;
    }
  }
  return all_found;
}

int CheckFile(const std::string& path,
              const std::vector<std::string>& required) {
  auto doc = ReadJsonFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> errors;
  const JsonValue& root = doc.value();
  if (!root.is_object()) errors.push_back("top level is not an object");
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->AsString().empty()) {
    errors.push_back("missing non-empty \"bench\"");
  }
  const JsonValue* host = root.Find("host");
  if (host == nullptr || !host->is_object() ||
      host->Find("counters_available") == nullptr) {
    errors.push_back("missing \"host\" with \"counters_available\"");
  }
  const JsonValue* records = root.Find("records");
  if (records == nullptr || !records->is_array() || records->size() == 0) {
    errors.push_back("missing non-empty \"records\" array");
  } else {
    for (size_t i = 0; i < records->size(); ++i) {
      CheckRecord(records->at(i), i, &errors);
    }
  }
  CheckRequiredPaths(records, required, &errors);
  if (errors.empty()) {
    std::printf("%s: OK (%zu records)\n", path.c_str(),
                records != nullptr ? records->size() : 0);
    return 0;
  }
  for (const std::string& e : errors) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
  }
  return 1;
}

// --- regression comparison ---

const JsonValue* FindRecord(const JsonValue& records,
                            const std::string& name) {
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonValue* n = records.at(i).Find("name");
    if (n != nullptr && n->is_string() && n->AsString() == name) {
      return &records.at(i);
    }
  }
  return nullptr;
}

int Compare(const std::string& old_path, const std::string& new_path,
            const std::string& metric, double threshold,
            const std::vector<std::string>& required) {
  const bool metric_required =
      std::find(required.begin(), required.end(), metric) != required.end();
  auto old_doc = ReadJsonFile(old_path);
  auto new_doc = ReadJsonFile(new_path);
  if (!old_doc.ok() || !new_doc.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!old_doc.ok() ? old_doc.status() : new_doc.status())
                     .ToString()
                     .c_str());
    return 2;
  }
  const JsonValue* old_records = old_doc.value().Find("records");
  const JsonValue* new_records = new_doc.value().Find("records");
  if (old_records == nullptr || new_records == nullptr) {
    std::fprintf(stderr, "both files need a \"records\" array "
                         "(run bench_diff --check first)\n");
    return 2;
  }

  // Required metrics must exist on both sides before any comparing.
  std::vector<std::string> required_errors;
  CheckRequiredPaths(old_records, required, &required_errors);
  CheckRequiredPaths(new_records, required, &required_errors);
  for (const std::string& e : required_errors) {
    std::fprintf(stderr, "%s\n", e.c_str());
  }
  int missing_required = int(required_errors.size());

  std::printf("%-40s %14s %14s %9s\n", "record", "old", "new", "delta");
  int regressions = 0, improvements = 0, skipped = 0;
  for (size_t i = 0; i < new_records->size(); ++i) {
    const JsonValue& nr = new_records->at(i);
    const JsonValue* name = nr.Find("name");
    if (name == nullptr || !name->is_string()) continue;
    const JsonValue* old_rec = FindRecord(*old_records, name->AsString());
    if (old_rec == nullptr) {
      std::printf("%-40s %14s %14s %9s\n", name->AsString().c_str(), "-",
                  "present", "new");
      continue;
    }
    const JsonValue* ov = old_rec->FindPath(metric);
    const JsonValue* nv = nr.FindPath(metric);
    if (ov == nullptr || nv == nullptr || ov->is_null() || nv->is_null() ||
        !ov->is_number() || !nv->is_number()) {
      if (metric_required) {
        std::printf("%-40s %14s %14s %9s\n", name->AsString().c_str(), "?",
                    "?", "MISSING");
        ++missing_required;
      } else {
        std::printf("%-40s %14s %14s %9s\n", name->AsString().c_str(), "?",
                    "?", "no data");
        ++skipped;
      }
      continue;
    }
    double o = ov->AsDouble(), n = nv->AsDouble();
    double delta = o == 0 ? 0 : (n - o) / o;
    const char* mark = "";
    if (n > o * (1.0 + threshold)) {
      mark = "  << REGRESSION";
      ++regressions;
    } else if (n < o * (1.0 - threshold)) {
      mark = "  (improved)";
      ++improvements;
    }
    std::printf("%-40s %14.6g %14.6g %+8.1f%%%s\n",
                name->AsString().c_str(), o, n, 100.0 * delta, mark);
  }
  for (size_t i = 0; i < old_records->size(); ++i) {
    const JsonValue* n = old_records->at(i).Find("name");
    if (n != nullptr && n->is_string() &&
        FindRecord(*new_records, n->AsString()) == nullptr) {
      std::printf("%-40s %14s %14s %9s\n", n->AsString().c_str(),
                  "present", "-", "removed");
    }
  }
  std::printf("\nmetric=%s threshold=%.1f%%: %d regression(s), "
              "%d improvement(s), %d without data, %d missing required\n",
              metric.c_str(), 100.0 * threshold, regressions, improvements,
              skipped, missing_required);
  return regressions > 0 || missing_required > 0 ? 1 : 0;
}

}  // namespace
}  // namespace hashjoin

int main(int argc, char** argv) {
  hashjoin::FlagParser flags;
  flags.Parse(argc, argv);

  // Positional arguments: everything neither a --flag nor consumed as a
  // flag's space-separated value (mirrors FlagParser::Parse).
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      if (a.find('=') == std::string::npos && i + 1 < argc &&
          argv[i + 1][0] != '-') {
        ++i;  // value consumed by the flag
      }
      continue;
    }
    positional.push_back(a);
  }

  std::vector<std::string> required =
      hashjoin::SplitCsv(flags.GetString("require", ""));

  if (flags.Has("check")) {
    // Both `--check FILE` (FILE lands in the flag value) and
    // `--check=FILE` and `--check FILE1 FILE2 ...` work.
    std::string inline_file = flags.GetString("check", "");
    if (!inline_file.empty() && inline_file != "true") {
      positional.insert(positional.begin(), inline_file);
    }
    if (positional.empty()) {
      std::fprintf(stderr,
                   "usage: bench_diff --check [--require=PATH[,PATH...]] "
                   "FILE [FILE...]\n");
      return 2;
    }
    int rc = 0;
    for (const std::string& f : positional) {
      rc |= hashjoin::CheckFile(f, required);
    }
    return rc;
  }

  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold=0.10] "
                 "[--metric=wall_seconds.median] "
                 "[--require=PATH[,PATH...]] OLD NEW\n"
                 "       bench_diff --check [--require=PATH[,PATH...]] "
                 "FILE [FILE...]\n");
    return 2;
  }
  return hashjoin::Compare(positional[0], positional[1],
                           flags.GetString("metric", "wall_seconds.median"),
                           flags.GetDouble("threshold", 0.10), required);
}
