#ifndef HASHJOIN_TOOLS_HJLINT_LINT_H_
#define HASHJOIN_TOOLS_HJLINT_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json_writer.h"

namespace hashjoin {
namespace hjlint {

/// One lint violation. `rule` is the stable rule id (used by
/// --rules= filtering and by the JSON report), `line` is 1-based.
struct Finding {
  std::string rule;
  std::string file;
  uint32_t line = 0;
  std::string message;
};

/// Per-file rules, applied to one source file's contents. `path` is the
/// path as given (relative paths stay relative in findings).
///
/// Rules:
///  - spp-ring-power-of-two: a `ring = ...` state-ring size must be
///    NextPowerOfTwo(<stages * d> + 1) and the companion `mask` must be
///    `ring - 1` (the bit-mask indexing of §5.3 silently corrupts state
///    slots otherwise).
///  - prefetch-stage-discipline: an address passed to Prefetch in one
///    pipeline stage must not be dereferenced later in the same
///    function — the point of the stage split is that the dereference
///    happens a stage later, after the miss has been overlapped.
///  - dropped-status: a ReadPage/WritePage/FlushWrites/NextPage call as
///    a bare statement discards its Status (I/O errors vanish).
///  - raw-mutex-primitive: files under src/ must use the annotated
///    Mutex/MutexLock/CondVar wrappers (util/mutex.h), never the std
///    primitives directly, or thread-safety analysis has no capability
///    to track.
///  - tuned-depth-handoff: bench drivers (.cc under bench/) must not
///    assign integer literals into group_size/prefetch_distance — G and
///    D come from bench::ResolveTuning (or the paper-default/sim
///    helpers) so the kernels' policy/tuner handoff is the single
///    source of depths. Sweeps assigning a loop variable are fine.
///  - recovery-ledger-discipline: under src/, every degradation action
///    of the robust hybrid join (ReverseRoles/RecurseSplit/JoinChunked/
///    JoinBlockNestedLoop/SpillVictim/UnspillPartition call site) must
///    pair one-to-one with a RecordDegrade(...) call within +/-3 lines,
///    so the DiskJoinRecovery ledger explains every degradation and
///    never counts one that did not happen.
///  - cache-pin-discipline: every raw HashTableCache::Pin() call site
///    must balance with an Unpin() in the same function segment (or be
///    adopted by a PinnedTable guard on the same line). A leaked pin
///    blocks eviction and revocation forever — the broker shrinks the
///    cache's grant but the bytes never come back. The defining files
///    (cache/hash_table_cache.*) are exempt; everyone else should be
///    using Acquire().
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents,
                              const std::vector<std::string>& rules);

/// Cross-file rule bench-schema-sync: every JSON key tools/bench_diff.cc
/// looks up (Find/FindPath string literals) must be a key some emitter
/// Set()s — src/perf/bench_reporter.cc for the record envelope, plus
/// any extra emitter contents (LintTree passes every bench/*.cc, which
/// emit the per-bench config keys like "scheme"). No-op (no findings)
/// when either primary file is absent.
std::vector<Finding> LintBenchSchema(
    const std::string& diff_path, const std::string& diff_contents,
    const std::string& reporter_path, const std::string& reporter_contents,
    const std::vector<std::string>& extra_emitter_contents = {});

/// Runs every rule (filtered by `rules`; empty = all) over the .h/.cc/
/// .cpp files found under `paths` (files or directories, recursed).
/// `root` anchors the bench-schema-sync pair lookup; pass the repo root
/// or "" to skip that rule.
std::vector<Finding> LintTree(const std::vector<std::string>& paths,
                              const std::string& root,
                              const std::vector<std::string>& rules);

/// Findings as a JSON document: {"findings":[{rule,file,line,message}],
/// "count":N} — shape checked by tests/hjlint_test.cc.
JsonValue FindingsToJson(const std::vector<Finding>& findings);

/// Serializes findings as a baseline file: one `rule<TAB>file<TAB>message`
/// line per unique finding (sorted, deduplicated), plus a header
/// comment. Line numbers are deliberately omitted so edits above a
/// tracked finding do not churn the baseline.
std::string FormatBaseline(const std::vector<Finding>& findings);

/// Result of checking findings against a baseline: `active` findings
/// are not in the baseline (new debt — fail), `suppressed` ones are
/// (tracked debt — reported but not fatal), and `stale` contains one
/// synthetic `stale-baseline` finding per baseline entry that no longer
/// fires (paid-down debt must be removed, or the baseline rots).
struct BaselineApplied {
  std::vector<Finding> active;
  std::vector<Finding> stale;
  std::vector<Finding> suppressed;
};
BaselineApplied ApplyBaseline(const std::vector<Finding>& findings,
                              const std::string& baseline_contents,
                              const std::string& baseline_path);

/// All rule ids, for --rules validation and --help.
const std::vector<std::string>& AllRules();

}  // namespace hjlint
}  // namespace hashjoin

#endif  // HASHJOIN_TOOLS_HJLINT_LINT_H_
