#include "hjlint/facts.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace hashjoin {
namespace hjlint {

// ---------------------------------------------------------------------
// Shared lexical layer (used by lint.cc's per-file rules too).
// ---------------------------------------------------------------------

namespace lex {

std::string BlankCommentsAndStrings(const std::string& src) {
  std::string out = src;
  enum class S { kCode, kLineComment, kBlockComment, kString, kChar };
  S s = S::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    char c = out[i];
    char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (s) {
      case S::kCode:
        if (c == '/' && next == '/') {
          s = S::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          s = S::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          s = S::kString;
        } else if (c == '\'') {
          s = S::kChar;
        }
        break;
      case S::kLineComment:
        if (c == '\n') {
          s = S::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case S::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          s = S::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case S::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          s = S::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case S::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          s = S::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Strip(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

size_t FindWord(const std::string& line, const std::string& word,
                size_t from) {
  for (size_t p = line.find(word, from); p != std::string::npos;
       p = line.find(word, p + 1)) {
    bool left_ok = p == 0 || !IsIdentChar(line[p - 1]);
    bool right_ok =
        p + word.size() >= line.size() || !IsIdentChar(line[p + word.size()]);
    if (left_ok && right_ok) return p;
  }
  return std::string::npos;
}

}  // namespace lex

namespace facts {
namespace {

using lex::FindWord;
using lex::IsIdentChar;
using lex::Strip;

// ---------------------------------------------------------------------
// Small token helpers.
// ---------------------------------------------------------------------

std::string FirstWord(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = b;
  while (e < s.size() && IsIdentChar(s[e])) ++e;
  return s.substr(b, e - b);
}

std::string LastIdent(const std::string& s) {
  size_t e = s.size();
  while (e > 0 && !IsIdentChar(s[e - 1])) --e;
  size_t b = e;
  while (b > 0 && IsIdentChar(s[b - 1])) --b;
  return s.substr(b, e - b);
}

bool IsAllCaps(const std::string& s) {
  bool has_letter = false;
  for (char c : s) {
    if (std::isupper(static_cast<unsigned char>(c))) {
      has_letter = true;
    } else if (!std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return has_letter;
}

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kWords = {
      "if",     "for",     "while",   "switch",   "do",       "else",
      "try",    "catch",   "return",  "case",     "default",  "goto",
      "break",  "continue", "sizeof", "new",      "delete",   "throw",
      "co_await", "co_return", "co_yield", "static_assert", "alignof",
      "alignas", "decltype", "noexcept", "assert"};
  return kWords.count(s) != 0;
}

/// Basename without directory or extension: "src/util/thread_pool.cc"
/// -> "thread_pool". Used to break member-name ties: a `w->mu` in
/// buffer_manager.cc resolves to the `mu` declared in buffer_manager.h
/// (DiskWorker), not the one in thread_pool.h (WorkerQueue).
std::string FileStem(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

/// Blanks preprocessor lines (and their backslash continuations) so
/// macro bodies — which are not scoped code — never feed the walker.
std::string StripPreprocessor(const std::string& code) {
  std::vector<std::string> lines = lex::SplitLines(code);
  bool cont = false;
  std::string out;
  for (std::string& line : lines) {
    bool is_pp = cont;
    if (!cont) {
      size_t b = line.find_first_not_of(" \t");
      is_pp = b != std::string::npos && line[b] == '#';
    }
    if (is_pp) {
      cont = !line.empty() && line.back() == '\\';
      out.append(line.size(), ' ');
    } else {
      cont = false;
      out += line;
    }
    out.push_back('\n');
  }
  return out;
}

/// Paren nesting depth at position `pos` within `s` (counting from 0).
int ParenDepthAt(const std::string& s, size_t pos) {
  int d = 0;
  for (size_t i = 0; i < pos && i < s.size(); ++i) {
    if (s[i] == '(') ++d;
    if (s[i] == ')') --d;
  }
  return d;
}

/// First '(' outside template angle brackets; npos when none. `<<` is
/// a shift/stream operator (neither char opens an angle); a `>` closes
/// one whenever an angle is open (so `>>` unwinds two nested template
/// arguments) except as part of `->`.
size_t FirstCallParen(const std::string& s) {
  int angle = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '<' && !(i > 0 && s[i - 1] == '<') &&
        !(i + 1 < s.size() && s[i + 1] == '<')) {
      ++angle;
    }
    if (c == '>' && angle > 0 && !(i > 0 && s[i - 1] == '-')) --angle;
    if (c == '(' && angle == 0) return i;
  }
  return std::string::npos;
}

/// True when `s` has a top-level assignment `=` before the first call
/// paren — i.e. the brace that follows is an initializer or a lambda
/// body, not a function definition.
bool HasAssignBeforeParen(const std::string& s) {
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '(') return false;
    if (c == '=') {
      char prev = i > 0 ? s[i - 1] : '\0';
      char next = i + 1 < s.size() ? s[i + 1] : '\0';
      if (prev != '=' && prev != '<' && prev != '>' && prev != '!' &&
          prev != '+' && prev != '-' && prev != '*' && prev != '/' &&
          prev != '&' && prev != '|' && prev != '^' && next != '=') {
        return true;
      }
    }
  }
  return false;
}

void StripLeadingLabels(std::string* s) {
  for (;;) {
    std::string fw = FirstWord(*s);
    if (fw != "public" && fw != "private" && fw != "protected") return;
    size_t colon = s->find(':');
    if (colon == std::string::npos) return;
    *s = Strip(s->substr(colon + 1));
  }
}

/// Skips a leading `template <...>` clause.
std::string StripTemplateClause(const std::string& s) {
  if (FirstWord(s) != "template") return s;
  size_t lt = s.find('<');
  if (lt == std::string::npos) return s;
  int angle = 0;
  for (size_t i = lt; i < s.size(); ++i) {
    if (s[i] == '<') ++angle;
    if (s[i] == '>' && --angle == 0) return Strip(s.substr(i + 1));
  }
  return s;
}

/// Class name from a `class ... {` / `struct ... {` header: the last
/// identifier before the top-level base-clause colon, skipping the
/// `final` specifier and attribute macros.
std::string ExtractClassName(const std::string& header) {
  std::string s = header;
  int angle = 0;
  size_t cut = s.size();
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == ':' && angle == 0) {
      bool dbl = (i + 1 < s.size() && s[i + 1] == ':') ||
                 (i > 0 && s[i - 1] == ':');
      if (!dbl) {
        cut = i;
        break;
      }
    }
  }
  s = Strip(s.substr(0, cut));
  std::string name = LastIdent(s);
  if (name == "final") {
    name = LastIdent(Strip(s.substr(0, s.rfind("final"))));
  }
  if (name.empty() || IsKeyword(name) || name == "class" || name == "struct")
    return "";
  return name;
}

struct FnName {
  bool ok = false;
  std::string id;   // qualified "Class::Fn" (or "Fn")
  std::string cls;  // class part ("" for free functions)
};

/// Function name from a definition header `...ret Class::Fn(args)...`.
FnName ExtractFnName(const std::string& header,
                     const std::string& enclosing_cls) {
  FnName out;
  std::string s = header;
  size_t op = FindWord(s, "operator");
  size_t open;
  std::string token;
  if (op != std::string::npos) {
    open = s.find('(', op);
    if (open == std::string::npos) return out;
    // Walk back over any `X::` qualifier.
    size_t b = op;
    while (b >= 2 && s[b - 1] == ':' && s[b - 2] == ':') {
      b -= 2;
      while (b > 0 && IsIdentChar(s[b - 1])) --b;
    }
    token = s.substr(b, open - b);
    token.erase(std::remove_if(token.begin(), token.end(),
                               [](char c) { return c == ' ' || c == '\t'; }),
                token.end());
  } else {
    open = FirstCallParen(s);
    if (open == std::string::npos) return out;
    size_t e = open;
    while (e > 0 && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
    size_t b = e;
    while (b > 0 && (IsIdentChar(s[b - 1]) || s[b - 1] == ':' ||
                     s[b - 1] == '~')) {
      --b;
    }
    token = s.substr(b, e - b);
  }
  if (token.empty()) return out;
  // Split trailing name from `A::B::name`.
  std::vector<std::string> parts;
  std::stringstream ss(token);
  std::string part;
  while (std::getline(ss, part, ':')) {
    if (!part.empty()) parts.push_back(part);
  }
  if (parts.empty()) return out;
  std::string name = parts.back();
  if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])) ||
      IsKeyword(name)) {
    return out;
  }
  out.ok = true;
  out.cls = parts.size() >= 2 ? parts[parts.size() - 2] : enclosing_cls;
  out.id = out.cls.empty() ? name : out.cls + "::" + name;
  return out;
}

// ---------------------------------------------------------------------
// The statement walker: splits the (blanked, preprocessor-stripped)
// code view into `;`-terminated statements and `{`-opened scopes,
// tracking brace depth, the class stack, and the enclosing function.
// `{`/`}`/`;` inside parentheses do not delimit — a multi-line call
// (lambda arguments included) arrives as one statement.
// ---------------------------------------------------------------------

struct WalkHooks {
  /// A statement (`;`-terminated, or a control-scope header). `depth`
  /// is the brace depth at the statement; `at_class_scope` means it is
  /// a class-member declaration (directly inside a class/struct, not
  /// inside a function body).
  std::function<void(const std::string& stmt, uint32_t line, int depth,
                     const std::string& cls, const std::string& fn,
                     bool at_class_scope)>
      on_stmt;
  /// A function definition header whose body `{` just opened.
  std::function<void(const std::string& header, uint32_t line,
                     const std::string& cls, const std::string& fn_id)>
      on_fn_body;
  /// Fired after a `}` pops to `new_depth`.
  std::function<void(int new_depth)> on_scope_close;
};

void Walk(const std::string& code_view, const WalkHooks& hooks) {
  struct Scope {
    enum class K { kClass, kFn, kOther };
    K kind = K::kOther;
    std::string name;   // class name or fn id
    std::string cls;    // for kFn: the enclosing class of the function
    int body_depth = 0;
  };
  std::vector<Scope> scopes;
  std::string pending;
  uint32_t line = 1;
  uint32_t pending_line = 0;
  int depth = 0;
  int paren = 0;
  int swallow = 0;  // inside a brace initializer / lambda body

  auto cur_cls = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::K::kClass) return it->name;
      if (it->kind == Scope::K::kFn) break;  // class members of a local
    }
    return "";
  };
  auto cur_fn = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::K::kFn) return it->name;
    }
    return "";
  };
  auto emit_stmt = [&](const std::string& text) {
    std::string s = Strip(text);
    if (s.empty()) return;
    std::string fn = cur_fn();
    bool at_class =
        !scopes.empty() && scopes.back().kind == Scope::K::kClass;
    if (hooks.on_stmt) {
      hooks.on_stmt(s, pending_line == 0 ? line : pending_line, depth,
                    cur_cls(), fn, at_class && fn.empty());
    }
  };

  for (size_t i = 0; i < code_view.size(); ++i) {
    char c = code_view[i];
    if (c == '\n') {
      ++line;
      pending.push_back(' ');
      continue;
    }
    if (c == '(') ++paren;
    if (c == ')' && paren > 0) --paren;
    if (swallow > 0) {
      // Inside a brace initializer or a statement-level lambda body:
      // everything (nested braces, semicolons) folds into the pending
      // statement until the opening brace closes.
      if (c == '{') ++swallow;
      if (c == '}') --swallow;
      pending.push_back(c);
      continue;
    }
    if (paren > 0 || (c != ';' && c != '{' && c != '}')) {
      if (pending_line == 0 && c != ' ' && c != '\t') pending_line = line;
      pending.push_back(c);
      continue;
    }
    if (c == ';') {
      emit_stmt(pending);
      pending.clear();
      pending_line = 0;
      continue;
    }
    if (c == '{') {
      std::string p = Strip(pending);
      StripLeadingLabels(&p);
      std::string t = StripTemplateClause(p);
      std::string fw = FirstWord(t);
      Scope sc;
      sc.body_depth = depth + 1;
      bool is_scope = true;
      static const std::set<std::string> kControl = {
          "if",   "for",     "while", "switch", "do",  "else",
          "try",  "catch",   "case",  "default", "return"};
      if (kControl.count(fw) != 0) {
        emit_stmt(p);  // control headers carry facts (loads, calls)
      } else if (fw == "class" || fw == "struct" || fw == "union") {
        sc.kind = Scope::K::kClass;
        sc.name = ExtractClassName(t);
        if (sc.name.empty()) sc.kind = Scope::K::kOther;
      } else if (fw == "namespace" || fw == "extern" || fw == "enum" ||
                 t.empty()) {
        // kOther
      } else if (t.find('(') != std::string::npos &&
                 !HasAssignBeforeParen(t)) {
        FnName fn = ExtractFnName(t, cur_cls());
        if (fn.ok) {
          sc.kind = Scope::K::kFn;
          sc.name = fn.id;
          sc.cls = fn.cls;
          if (hooks.on_fn_body) {
            hooks.on_fn_body(p, pending_line == 0 ? line : pending_line,
                             fn.cls, fn.id);
          }
        } else {
          is_scope = false;
        }
      } else {
        // `Type name{...}`, `auto f = [..]{...}`, array initializers:
        // a value brace, not a scope — keep accumulating the statement.
        is_scope = false;
      }
      if (!is_scope) {
        pending.push_back('{');
        swallow = 1;
        continue;
      }
      ++depth;
      scopes.push_back(sc);
      pending.clear();
      pending_line = 0;
      continue;
    }
    // c == '}'
    emit_stmt(pending);
    pending.clear();
    pending_line = 0;
    if (depth > 0) --depth;
    while (!scopes.empty() && scopes.back().body_depth > depth) {
      scopes.pop_back();
    }
    if (hooks.on_scope_close) hooks.on_scope_close(depth);
  }
  emit_stmt(pending);
}

bool ExemptFromFacts(const std::string& path) {
  // The locking layer itself: its raw std primitives and macro
  // definitions are the mechanism the rules reason about, not subjects.
  return path.find("util/mutex.h") != std::string::npos ||
         path.find("util/thread_annotations.h") != std::string::npos;
}

/// `HJ_XXX(arg, ...)` arguments, each reduced to its last identifier.
std::vector<std::string> MacroArgs(const std::string& stmt,
                                   const std::string& macro) {
  std::vector<std::string> out;
  size_t p = FindWord(stmt, macro);
  if (p == std::string::npos) return out;
  size_t open = stmt.find('(', p);
  if (open == std::string::npos) return out;
  int d = 0;
  size_t start = open + 1;
  for (size_t i = open; i < stmt.size(); ++i) {
    if (stmt[i] == '(') ++d;
    if (stmt[i] == ')' && --d == 0) {
      std::string arg = LastIdent(stmt.substr(start, i - start));
      if (!arg.empty()) out.push_back(arg);
      break;
    }
    if (stmt[i] == ',' && d == 1) {
      std::string arg = LastIdent(stmt.substr(start, i - start));
      if (!arg.empty()) out.push_back(arg);
      start = i + 1;
    }
  }
  return out;
}

std::string Qualify(const std::string& cls, const std::string& name) {
  return cls.empty() ? name : cls + "::" + name;
}

/// Skips `<...>` starting at `lt` (which must be '<'), tolerating
/// nested templates and parens; returns the index after the matching
/// '>', or npos.
size_t SkipTemplateArgs(const std::string& s, size_t lt) {
  int angle = 0;
  for (size_t i = lt; i < s.size(); ++i) {
    if (s[i] == '<') ++angle;
    if (s[i] == '>' && --angle == 0) return i + 1;
  }
  return std::string::npos;
}

std::string IdentAt(const std::string& s, size_t from) {
  while (from < s.size() && (s[from] == ' ' || s[from] == '\t' ||
                             s[from] == '*' || s[from] == '&')) {
    ++from;
  }
  size_t e = from;
  while (e < s.size() && IsIdentChar(s[e])) ++e;
  return s.substr(from, e - from);
}

}  // namespace

// ---------------------------------------------------------------------
// Pass 1: declaration collection.
// ---------------------------------------------------------------------

void CollectDecls(const std::string& path, const std::string& contents,
                  DeclIndex* decls) {
  if (ExemptFromFacts(path)) return;
  std::string code =
      StripPreprocessor(lex::BlankCommentsAndStrings(contents));

  auto record_annotation = [&](const std::string& text, uint32_t line,
                               const std::string& cls,
                               const std::string& fn_hint) {
    if (FindWord(text, "HJ_REQUIRES") == std::string::npos &&
        FindWord(text, "HJ_EXCLUDES") == std::string::npos) {
      return;
    }
    std::string fn_id = fn_hint;
    std::string fn_cls = cls;
    if (fn_id.empty()) {
      FnName fn = ExtractFnName(text, cls);
      if (!fn.ok) return;
      fn_id = fn.id;
      fn_cls = fn.cls;
    }
    FnAnnotation ann;
    ann.fn = fn_id;
    ann.file = path;
    ann.line = line;
    for (const std::string& arg : MacroArgs(text, "HJ_REQUIRES")) {
      ann.requires_held.push_back(Qualify(fn_cls, arg));
    }
    for (const std::string& arg : MacroArgs(text, "HJ_EXCLUDES")) {
      ann.excludes.push_back(Qualify(fn_cls, arg));
    }
    if (!ann.requires_held.empty() || !ann.excludes.empty()) {
      decls->annotations.push_back(std::move(ann));
    }
  };

  WalkHooks hooks;
  hooks.on_fn_body = [&](const std::string& header, uint32_t line,
                         const std::string& cls, const std::string& fn_id) {
    std::string fn_cls = cls;
    record_annotation(header, line, fn_cls, fn_id);
  };
  hooks.on_stmt = [&](const std::string& stmt, uint32_t line, int depth,
                      const std::string& cls, const std::string& fn,
                      bool at_class_scope) {
    (void)depth;
    if (!fn.empty()) return;  // statements inside bodies are pass-2 work
    record_annotation(stmt, line, cls, "");
    if (!at_class_scope) return;

    // `private:`/`public:` glue onto the next member when the label and
    // the declaration share a statement (`:` is not a delimiter).
    std::string decl = stmt;
    StripLeadingLabels(&decl);

    std::string fw = FirstWord(decl);
    static const std::set<std::string> kSkip = {
        "using",  "typedef", "friend",  "static_assert", "template",
        "public", "private", "protected", "enum", "class", "struct",
        "union",  "namespace", "extern"};
    if (kSkip.count(fw) != 0) return;

    // Mutex members: `mutable Mutex mu_ [HJ_ACQUIRED_BEFORE(x)]`.
    size_t mp = FindWord(decl, "Mutex");
    if (mp != std::string::npos && ParenDepthAt(decl, mp) == 0) {
      std::string name = IdentAt(decl, mp + 5);
      if (!name.empty() && !IsAllCaps(name) && !IsKeyword(name)) {
        MemberDecl d;
        d.cls = cls;
        d.name = name;
        d.file = path;
        d.line = line;
        decls->mutexes.push_back(d);
        for (const std::string& arg : MacroArgs(decl, "HJ_ACQUIRED_BEFORE")) {
          DeclaredEdge e;
          e.outer = Qualify(cls, name);
          e.inner = Qualify(cls, arg);
          e.file = path;
          e.line = line;
          decls->declared_edges.push_back(e);
        }
      }
      return;
    }

    // std::function / std::atomic members (top-level, i.e. not a
    // parameter of a method declaration).
    for (const char* kind : {"function", "atomic"}) {
      size_t p = decl.find(std::string("std::") + kind + "<");
      if (p == std::string::npos || ParenDepthAt(decl, p) != 0) continue;
      size_t after = SkipTemplateArgs(decl, decl.find('<', p));
      if (after == std::string::npos) continue;
      std::string name = IdentAt(decl, after);
      if (name.empty() || IsKeyword(name)) continue;
      MemberDecl d;
      d.cls = cls;
      d.name = name;
      d.file = path;
      d.line = line;
      for (const std::string& arg : MacroArgs(decl, "HJ_GUARDED_BY")) {
        d.guarded_by = Qualify(cls, arg);
      }
      if (std::strcmp(kind, "function") == 0) {
        decls->fn_members.push_back(d);
      } else {
        decls->atomics.push_back(d);
      }
      return;
    }

    // Method declaration (ident before the first top-level call paren)?
    size_t open = FirstCallParen(decl);
    if (open != std::string::npos) {
      size_t e = open;
      while (e > 0 && (decl[e - 1] == ' ' || decl[e - 1] == '\t')) --e;
      size_t b = e;
      while (b > 0 && IsIdentChar(decl[b - 1])) --b;
      std::string name = decl.substr(b, e - b);
      if (!name.empty() && !IsAllCaps(name)) return;  // a method decl
    }

    // Plain data member: used to suppress bare-use attribution for
    // atomic field names that also exist as ordinary members
    // (KernelParams::group_size vs LiveTuning::group_size).
    std::string s = decl;
    for (char stop : {'=', '{', '['}) {
      int angle = 0;
      for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '<') ++angle;
        if (s[i] == '>' && angle > 0) --angle;
        if (s[i] == stop && angle == 0) {
          s = s.substr(0, i);
          break;
        }
      }
    }
    for (size_t p = s.find("HJ_"); p != std::string::npos;
         p = s.find("HJ_", p + 1)) {
      if (p == 0 || !IsIdentChar(s[p - 1])) {
        s = s.substr(0, p);
        break;
      }
    }
    std::string name = LastIdent(s);
    if (!name.empty() && !IsKeyword(name) &&
        !std::isdigit(static_cast<unsigned char>(name[0]))) {
      decls->plain_members.insert(name);
    }
  };
  Walk(code, hooks);
}

// ---------------------------------------------------------------------
// Pass 2: behavioral fact extraction.
// ---------------------------------------------------------------------

namespace {

struct Resolver {
  std::map<std::string, std::vector<const MemberDecl*>> mutexes;
  std::map<std::string, std::vector<const MemberDecl*>> atomics;
  std::map<std::string, std::vector<const MemberDecl*>> fn_members;
  std::map<std::string, std::vector<std::string>> requires_of;

  explicit Resolver(const DeclIndex& d) {
    for (const MemberDecl& m : d.mutexes) mutexes[m.name].push_back(&m);
    for (const MemberDecl& m : d.atomics) atomics[m.name].push_back(&m);
    for (const MemberDecl& m : d.fn_members) fn_members[m.name].push_back(&m);
    for (const FnAnnotation& a : d.annotations) {
      auto& v = requires_of[a.fn];
      v.insert(v.end(), a.requires_held.begin(), a.requires_held.end());
    }
  }

  /// Maps a member use to its qualified id. `bare` = the expression was
  /// a plain identifier (so the enclosing class is the best owner);
  /// path expressions (`w->mu`) prefer the unique declaring class, then
  /// the declaring header whose stem matches the using file.
  std::string Resolve(
      const std::map<std::string, std::vector<const MemberDecl*>>& table,
      const std::string& name, bool bare, const std::string& cls,
      const std::string& file) const {
    auto it = table.find(name);
    if (it == table.end()) return Qualify(bare ? cls : "", name);
    std::set<std::string> classes;
    for (const MemberDecl* m : it->second) classes.insert(m->cls);
    if (bare && classes.count(cls) != 0) return Qualify(cls, name);
    if (classes.size() == 1) return Qualify(*classes.begin(), name);
    std::string stem = FileStem(file);
    for (const MemberDecl* m : it->second) {
      if (FileStem(m->file) == stem) return Qualify(m->cls, name);
    }
    if (!cls.empty() && classes.count(cls) != 0) return Qualify(cls, name);
    return name;
  }
};

struct HeldLock {
  std::string id;
  std::string var;  // MutexLock variable name ("" for raw Lock())
  int depth = 0;
  bool active = true;
};

const char* const kAtomicMethods[] = {
    "load",          "store",          "exchange",
    "fetch_add",     "fetch_sub",      "fetch_and",
    "fetch_or",      "fetch_xor",      "compare_exchange_weak",
    "compare_exchange_strong"};

AtomicOp::Kind MethodKind(const std::string& m) {
  if (m == "load") return AtomicOp::Kind::kLoad;
  if (m == "store") return AtomicOp::Kind::kStore;
  return AtomicOp::Kind::kRmw;
}

/// The explicit memory_order spelled at argument depth 1 of the call
/// opening at `open` ("" when defaulted). For compare_exchange the
/// success order (the first one) is reported.
std::string CallOrder(const std::string& stmt, size_t open) {
  int d = 0;
  for (size_t i = open; i < stmt.size(); ++i) {
    if (stmt[i] == '(') ++d;
    if (stmt[i] == ')') {
      if (--d == 0) break;
    }
    if (d == 1) {
      size_t p = stmt.find("memory_order_", i);
      if (p == i) {
        size_t b = p + std::strlen("memory_order_");
        size_t e = b;
        while (e < stmt.size() && IsIdentChar(stmt[e])) ++e;
        return stmt.substr(b, e - b);
      }
    }
  }
  return "";
}

}  // namespace

void ExtractFacts(const std::string& path, const std::string& contents,
                  FactsDb* db) {
  if (ExemptFromFacts(path)) return;
  std::string code =
      StripPreprocessor(lex::BlankCommentsAndStrings(contents));
  Resolver rs(db->decls);

  std::vector<HeldLock> held;
  std::map<std::string, std::string> aliases;  // local -> member id

  auto held_ids = [&]() {
    std::vector<std::string> ids;
    for (const HeldLock& h : held) {
      if (h.active && std::find(ids.begin(), ids.end(), h.id) == ids.end()) {
        ids.push_back(h.id);
      }
    }
    return ids;
  };

  WalkHooks hooks;
  hooks.on_fn_body = [&](const std::string&, uint32_t, const std::string&,
                         const std::string&) { aliases.clear(); };
  hooks.on_scope_close = [&](int new_depth) {
    while (!held.empty() && held.back().depth > new_depth) held.pop_back();
  };
  hooks.on_stmt = [&](const std::string& stmt, uint32_t line, int depth,
                      const std::string& cls, const std::string& fn,
                      bool at_class_scope) {
    if (at_class_scope) return;
    std::string fn_cls = cls;
    if (size_t q = fn.rfind("::"); q != std::string::npos) {
      fn_cls = fn.substr(0, q);
      if (size_t q2 = fn_cls.rfind("::"); q2 != std::string::npos) {
        fn_cls = fn_cls.substr(q2 + 2);
      }
    }

    // --- MutexLock acquisitions -------------------------------------
    bool is_acquire_stmt = false;
    for (size_t p = FindWord(stmt, "MutexLock"); p != std::string::npos;
         p = FindWord(stmt, "MutexLock", p + 1)) {
      std::string var = IdentAt(stmt, p + std::strlen("MutexLock"));
      if (var.empty()) continue;  // the class itself, a ctor, a cast
      size_t open = stmt.find('(', p);
      if (open == std::string::npos) continue;
      int d = 0;
      size_t close = std::string::npos;
      for (size_t i = open; i < stmt.size(); ++i) {
        if (stmt[i] == '(') ++d;
        if (stmt[i] == ')' && --d == 0) {
          close = i;
          break;
        }
      }
      if (close == std::string::npos) continue;
      std::string expr = Strip(stmt.substr(open + 1, close - open - 1));
      bool bare = expr.find('.') == std::string::npos &&
                  expr.find("->") == std::string::npos;
      std::string id =
          rs.Resolve(rs.mutexes, LastIdent(expr), bare, fn_cls, path);
      for (const std::string& outer : held_ids()) {
        db->lock_edges.push_back({outer, id, path, line});
      }
      db->acquires.push_back({fn, id, path, line});
      held.push_back({id, var, depth, true});
      is_acquire_stmt = true;
    }

    // --- MutexLock::Unlock/Lock toggles and raw Mutex::Lock ---------
    for (const char* method : {"Unlock", "Lock"}) {
      bool activate = std::strcmp(method, "Lock") == 0;
      std::string pat = std::string(".") + method;
      for (size_t p = stmt.find(pat); p != std::string::npos;
           p = stmt.find(pat, p + 1)) {
        size_t after = p + pat.size();
        if (after >= stmt.size() || stmt[after] != '(') continue;
        std::string obj = LastIdent(stmt.substr(0, p));
        if (obj.empty()) continue;
        bool toggled = false;
        for (auto it = held.rbegin(); it != held.rend(); ++it) {
          if (it->var == obj) {
            it->active = activate;
            toggled = true;
            break;
          }
        }
        if (toggled || is_acquire_stmt) continue;
        // A raw Lock/Unlock on a known mutex member (fixture idiom).
        if (rs.mutexes.count(obj) != 0) {
          std::string id = rs.Resolve(rs.mutexes, obj, true, fn_cls, path);
          if (activate) {
            for (const std::string& outer : held_ids()) {
              db->lock_edges.push_back({outer, id, path, line});
            }
            db->acquires.push_back({fn, id, path, line});
            held.push_back({id, "", depth, true});
          } else {
            for (auto it = held.rbegin(); it != held.rend(); ++it) {
              if (it->id == id) {
                held.erase(std::next(it).base());
                break;
              }
            }
          }
        }
      }
    }

    // --- Local aliases of stored callbacks --------------------------
    if (stmt.find("std::function") == std::string::npos) {
      for (size_t i = 0; i < stmt.size(); ++i) {
        if (stmt[i] != '=') continue;
        char prev = i > 0 ? stmt[i - 1] : '\0';
        char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
        if (prev == '=' || next == '=' || prev == '<' || prev == '>' ||
            prev == '!' || prev == '+' || prev == '-' || prev == '*' ||
            prev == '/' || prev == '&' || prev == '|' || prev == '^') {
          continue;
        }
        std::string lhs = LastIdent(stmt.substr(0, i));
        std::string rhs = Strip(stmt.substr(i + 1));
        if (rhs.rfind("std::move(", 0) == 0 && rhs.back() == ')') {
          rhs = rhs.substr(std::strlen("std::move("),
                           rhs.size() - std::strlen("std::move(") - 1);
        }
        if (rhs.find('(') != std::string::npos ||
            rhs.find('{') != std::string::npos) {
          break;
        }
        std::string rname = LastIdent(rhs);
        if (lhs.empty() || rname.empty()) break;
        if (aliases.count(rname) != 0) {
          aliases[lhs] = aliases[rname];
        } else if (rs.fn_members.count(rname) != 0) {
          bool bare = rhs.find('.') == std::string::npos &&
                      rhs.find("->") == std::string::npos;
          aliases[lhs] =
              rs.Resolve(rs.fn_members, rname, bare, fn_cls, path);
        }
        break;
      }
    }

    // --- Stored-callback invocations --------------------------------
    if (stmt.find("std::function") == std::string::npos) {
      auto scan_callable = [&](const std::string& name,
                               const std::string& member_id,
                               const std::string& alias) {
        for (size_t p = FindWord(stmt, name); p != std::string::npos;
             p = FindWord(stmt, name, p + name.size())) {
          size_t after = p + name.size();
          while (after < stmt.size() &&
                 (stmt[after] == ' ' || stmt[after] == '\t')) {
            ++after;
          }
          if (after >= stmt.size() || stmt[after] != '(') continue;
          std::string id = member_id;
          if (id.empty()) {
            bool bare = p == 0 || (stmt[p - 1] != '.' && stmt[p - 1] != '>');
            id = rs.Resolve(rs.fn_members, name, bare, fn_cls, path);
          }
          db->callback_calls.push_back(
              {fn, id, alias, held_ids(), path, line});
        }
      };
      for (const auto& [name, decl] : rs.fn_members) {
        (void)decl;
        scan_callable(name, "", "");
      }
      for (const auto& [local, member_id] : aliases) {
        if (rs.fn_members.count(local) == 0) {
          scan_callable(local, member_id, local);
        }
      }
    }

    // --- Unqualified calls under held locks (interprocedural seed) --
    std::vector<std::string> effective = held_ids();
    if (auto it = rs.requires_of.find(fn); it != rs.requires_of.end()) {
      for (const std::string& r : it->second) {
        if (std::find(effective.begin(), effective.end(), r) ==
            effective.end()) {
          effective.push_back(r);
        }
      }
    }
    if (!effective.empty() && !is_acquire_stmt) {
      for (size_t i = 0; i + 1 < stmt.size(); ++i) {
        if (!IsIdentChar(stmt[i]) || (i > 0 && IsIdentChar(stmt[i - 1]))) {
          continue;
        }
        size_t e = i;
        while (e < stmt.size() && IsIdentChar(stmt[e])) ++e;
        if (e >= stmt.size() || stmt[e] != '(') continue;
        char prev = i > 0 ? stmt[i - 1] : '\0';
        if (prev == '.' || prev == '>' || prev == ':') continue;
        std::string callee = stmt.substr(i, e - i);
        if (IsKeyword(callee) || IsAllCaps(callee) ||
            callee == "MutexLock" || callee == "CondVar" ||
            std::isdigit(static_cast<unsigned char>(callee[0]))) {
          continue;
        }
        db->calls_under_lock.push_back(
            {fn, fn_cls, callee, effective, path, line});
      }
    }

    // --- Atomic operations ------------------------------------------
    bool is_atomic_decl = stmt.find("std::atomic") != std::string::npos;
    for (const auto& [name, decl_list] : rs.atomics) {
      (void)decl_list;
      for (size_t p = FindWord(stmt, name); p != std::string::npos;
           p = FindWord(stmt, name, p + name.size())) {
        char prev_ns = '\0';
        for (size_t b = p; b > 0;) {
          --b;
          if (stmt[b] != ' ' && stmt[b] != '\t') {
            prev_ns = stmt[b];
            break;
          }
        }
        size_t after = p + name.size();
        char next = after < stmt.size() ? stmt[after] : '\0';
        bool bare_path = prev_ns != '.' && prev_ns != '>';
        if (next == '.') {
          // Method op: the call itself proves the field is atomic.
          std::string method = IdentAt(stmt, after + 1);
          bool known = false;
          for (const char* m : kAtomicMethods) {
            if (method == m) known = true;
          }
          if (!known) continue;
          size_t open = stmt.find('(', after + 1);
          if (open == std::string::npos) continue;
          AtomicOp op;
          op.field_id =
              rs.Resolve(rs.atomics, name, bare_path, fn_cls, path);
          op.kind = MethodKind(method);
          op.order = CallOrder(stmt, open);
          op.file = path;
          op.line = line;
          db->atomic_ops.push_back(op);
          continue;
        }
        // Bare uses: only when the name is unambiguously an atomic
        // (never also a plain member) and this is not its declaration.
        if (is_atomic_decl || db->decls.plain_members.count(name) != 0) {
          continue;
        }
        if (prev_ns == '&') continue;  // address taken / && chain
        size_t na = after;
        while (na < stmt.size() && (stmt[na] == ' ' || stmt[na] == '\t')) {
          ++na;
        }
        char c = na < stmt.size() ? stmt[na] : '\0';
        char c2 = na + 1 < stmt.size() ? stmt[na + 1] : '\0';
        AtomicOp op;
        op.field_id = rs.Resolve(rs.atomics, name, bare_path, fn_cls, path);
        op.file = path;
        op.line = line;
        if (c == '=' && c2 != '=') {
          op.kind = AtomicOp::Kind::kAssign;
        } else if ((c == '+' && c2 == '+') || (c == '-' && c2 == '-') ||
                   ((c == '+' || c == '-' || c == '|' || c == '&' ||
                     c == '^') &&
                    c2 == '=')) {
          op.kind = AtomicOp::Kind::kRmw;
        } else if ((prev_ns == '+' || prev_ns == '-') &&
                   stmt.find(std::string(2, prev_ns)) != std::string::npos) {
          op.kind = AtomicOp::Kind::kRmw;  // prefix ++x_ / --x_
        } else if (c == ';' || c == ')' || c == ']' || c == '?' ||
                   c == '<' || c == '>' || c == '!' ||
                   (c == '=' && c2 == '=') || c == '+' || c == '-' ||
                   c == '*' || c == '/' || c == '%' || c == '|') {
          op.kind = AtomicOp::Kind::kImplicitLoad;
        } else {
          continue;  // ctor init, argument pass, brace init, ...
        }
        db->atomic_ops.push_back(op);
      }
    }
  };
  Walk(code, hooks);
}

// ---------------------------------------------------------------------
// Merged acquisition graph.
// ---------------------------------------------------------------------

std::vector<ObservedEdge> CollectLockEdges(const FactsDb& db) {
  std::vector<ObservedEdge> out;
  std::set<std::pair<std::string, std::string>> seen;
  auto add = [&](const std::string& outer, const std::string& inner,
                 const char* via, const std::string& file, uint32_t line) {
    if (outer.empty() || inner.empty()) return;
    if (!seen.insert({outer, inner}).second) return;
    out.push_back({outer, inner, via, file, line});
  };
  for (const LockEdge& e : db.lock_edges) {
    add(e.outer, e.inner, "nesting", e.file, e.line);
  }
  for (const DeclaredEdge& e : db.decls.declared_edges) {
    add(e.outer, e.inner, "HJ_ACQUIRED_BEFORE", e.file, e.line);
  }
  // A function annotated as holding M that acquires N: M -> N, even
  // though its definition never spells the outer acquisition.
  std::multimap<std::string, const FnAnnotation*> ann_by_fn;
  for (const FnAnnotation& a : db.decls.annotations) {
    ann_by_fn.insert({a.fn, &a});
  }
  for (const FnAcquire& a : db.acquires) {
    auto [b, e] = ann_by_fn.equal_range(a.fn);
    for (auto it = b; it != e; ++it) {
      for (const std::string& outer : it->second->requires_held) {
        add(outer, a.mutex_id, "HJ_REQUIRES", a.file, a.line);
      }
    }
  }
  // One-level interprocedural composition: an unqualified call made
  // under a lock, to a same-class method (or free function) that
  // acquires — held -> acquired.
  std::multimap<std::string, const FnAcquire*> acq_by_fn;
  for (const FnAcquire& a : db.acquires) {
    acq_by_fn.insert({a.fn, &a});
  }
  for (const CallUnderLock& c : db.calls_under_lock) {
    for (const std::string& target :
         {Qualify(c.cls, c.callee), c.callee}) {
      auto [b, e] = acq_by_fn.equal_range(target);
      for (auto it = b; it != e; ++it) {
        for (const std::string& outer : c.held) {
          add(outer, it->second->mutex_id, "call", c.file, c.line);
        }
      }
      if (!c.cls.empty() && b != e) break;  // same-class match wins
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------

Manifest ParseManifest(const std::string& contents) {
  Manifest m;
  std::vector<std::string> lines = lex::SplitLines(contents);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Strip(line);
    if (line.empty()) continue;
    size_t arrow = line.find("->");
    if (arrow == std::string::npos) {
      m.parse_errors.emplace_back(uint32_t(i + 1),
                                  "expected `Outer -> Inner`, got: " + line);
      continue;
    }
    Manifest::Entry e;
    e.outer = Strip(line.substr(0, arrow));
    e.inner = Strip(line.substr(arrow + 2));
    e.line = uint32_t(i + 1);
    if (e.outer.empty() || e.inner.empty()) {
      m.parse_errors.emplace_back(uint32_t(i + 1),
                                  "empty side in lock-order edge: " + line);
      continue;
    }
    m.edges.push_back(std::move(e));
  }
  return m;
}

// ---------------------------------------------------------------------
// Rule: lock-order-cycle.
// ---------------------------------------------------------------------

std::vector<Finding> CheckLockOrder(const FactsDb& db,
                                    const Manifest& manifest,
                                    const std::string& manifest_path,
                                    bool have_manifest) {
  const char* kRule = "lock-order-cycle";
  std::vector<Finding> findings;
  std::vector<ObservedEdge> observed = CollectLockEdges(db);

  for (const auto& [line, msg] : manifest.parse_errors) {
    findings.push_back({kRule, manifest_path, line, msg});
  }

  std::set<std::pair<std::string, std::string>> declared;
  for (const Manifest::Entry& e : manifest.edges) {
    declared.insert({e.outer, e.inner});
  }
  std::set<std::pair<std::string, std::string>> observed_pairs;

  for (const ObservedEdge& e : observed) {
    observed_pairs.insert({e.outer, e.inner});
    if (e.outer == e.inner) {
      findings.push_back(
          {kRule, e.file, e.line,
           "mutex " + e.outer +
               " is acquired while already held (via " + e.via +
               ") — self-deadlock on a non-reentrant Mutex"});
      continue;
    }
    if (declared.count({e.outer, e.inner}) == 0) {
      findings.push_back(
          {kRule, e.file, e.line,
           "lock-order edge " + e.outer + " -> " + e.inner + " (via " +
               e.via + ") is not declared in " + manifest_path +
               (have_manifest
                    ? " — declare it so the acquisition order stays "
                      "reviewable"
                    : " (no manifest found) — check one in so the "
                      "acquisition order stays reviewable")});
    }
  }
  if (have_manifest) {
    for (const Manifest::Entry& e : manifest.edges) {
      if (observed_pairs.count({e.outer, e.inner}) == 0) {
        findings.push_back(
            {kRule, manifest_path, e.line,
             "manifest declares " + e.outer + " -> " + e.inner +
                 " but no code path establishes that order anymore — "
                 "remove the stale entry"});
      }
    }
  }

  // Cycle detection over observed ∪ declared edges (a manifest that
  // declares both directions is itself an error worth catching).
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::pair<std::string, std::string>, std::pair<std::string, uint32_t>>
      site;
  for (const ObservedEdge& e : observed) {
    if (e.outer == e.inner) continue;  // reported above
    adj[e.outer].insert(e.inner);
    adj.emplace(e.inner, std::set<std::string>());
    site.emplace(std::make_pair(e.outer, e.inner),
                 std::make_pair(e.file, e.line));
  }
  for (const Manifest::Entry& e : manifest.edges) {
    if (e.outer == e.inner) continue;
    adj[e.outer].insert(e.inner);
    adj.emplace(e.inner, std::set<std::string>());
    site.emplace(std::make_pair(e.outer, e.inner),
                 std::make_pair(manifest_path, e.line));
  }

  std::map<std::string, int> color;
  std::vector<std::string> path;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    path.push_back(u);
    for (const std::string& v : adj[u]) {
      if (color[v] == 1) {
        auto it = std::find(path.begin(), path.end(), v);
        std::vector<std::string> cyc(it, path.end());
        // Normalize: rotate so the smallest node leads, for stable
        // dedup of the same cycle found from different entry points.
        size_t min_i = 0;
        for (size_t i = 1; i < cyc.size(); ++i) {
          if (cyc[i] < cyc[min_i]) min_i = i;
        }
        std::rotate(cyc.begin(), cyc.begin() + long(min_i), cyc.end());
        std::string desc = cyc.front();
        for (size_t i = 1; i < cyc.size(); ++i) desc += " -> " + cyc[i];
        desc += " -> " + cyc.front();
        if (reported.insert(desc).second) {
          auto s = site.find({cyc.front(), cyc[1 % cyc.size()]});
          std::string file = s != site.end() ? s->second.first : cyc.front();
          uint32_t line = s != site.end() ? s->second.second : 0;
          findings.push_back(
              {kRule, file, line,
               "lock-order cycle: " + desc +
                   " — these mutexes are acquired in inconsistent "
                   "order; some interleaving deadlocks"});
        }
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    path.pop_back();
    color[u] = 2;
  };
  for (const auto& [node, _] : adj) {
    (void)_;
    if (color[node] == 0) dfs(node);
  }
  return findings;
}

// ---------------------------------------------------------------------
// Rule: callback-under-lock.
// ---------------------------------------------------------------------

std::vector<Finding> CheckCallbackUnderLock(const FactsDb& db) {
  const char* kRule = "callback-under-lock";
  std::vector<Finding> findings;
  std::multimap<std::string, const FnAnnotation*> ann_by_fn;
  for (const FnAnnotation& a : db.decls.annotations) {
    ann_by_fn.insert({a.fn, &a});
  }
  for (const CallbackCall& c : db.callback_calls) {
    std::vector<std::string> held = c.held;
    auto [b, e] = ann_by_fn.equal_range(c.fn);
    for (auto it = b; it != e; ++it) {
      for (const std::string& r : it->second->requires_held) {
        if (std::find(held.begin(), held.end(), r) == held.end()) {
          held.push_back(r);
        }
      }
    }
    if (held.empty()) continue;
    std::string locks = held.front();
    for (size_t i = 1; i < held.size(); ++i) locks += ", " + held[i];
    std::string what = c.alias.empty()
                           ? "std::function member " + c.member_id
                           : "local `" + c.alias + "` (a snapshot of " +
                                 c.member_id + ")";
    findings.push_back(
        {kRule, c.file, c.line,
         what + " is invoked while holding " + locks +
             " — an arbitrary closure under a lock invites deadlock "
             "(it may take " + locks +
             " again, or any mutex ordered before it); copy it under "
             "the lock, leave the scope, then invoke the copy"});
  }
  return findings;
}

// ---------------------------------------------------------------------
// Rule: atomic-handoff-discipline.
// ---------------------------------------------------------------------

std::vector<Finding> CheckAtomicHandoff(const FactsDb& db) {
  const char* kRule = "atomic-handoff-discipline";
  std::vector<Finding> findings;
  std::map<std::string, std::vector<const AtomicOp*>> by_field;
  for (const AtomicOp& op : db.atomic_ops) {
    by_field[op.field_id].push_back(&op);
  }
  for (const auto& [field, ops] : by_field) {
    bool has_release_store = false;
    bool has_acquire_load = false;
    for (const AtomicOp* op : ops) {
      bool store_side = op->kind == AtomicOp::Kind::kStore ||
                        op->kind == AtomicOp::Kind::kRmw;
      bool load_side = op->kind == AtomicOp::Kind::kLoad ||
                       op->kind == AtomicOp::Kind::kRmw;
      if (store_side &&
          (op->order == "release" || op->order == "acq_rel")) {
        has_release_store = true;
      }
      if (load_side && (op->order == "acquire" || op->order == "acq_rel" ||
                        op->order == "seq_cst")) {
        has_acquire_load = true;
      }
    }
    if (!has_release_store && !has_acquire_load) continue;  // not a handoff

    const AtomicOp* first_release = nullptr;
    const AtomicOp* first_acquire = nullptr;
    for (const AtomicOp* op : ops) {
      if (op->order.empty()) {
        std::string what;
        switch (op->kind) {
          case AtomicOp::Kind::kAssign:
            what = "bare operator= (a seq-cst store by default)";
            break;
          case AtomicOp::Kind::kImplicitLoad:
            what = "implicit conversion read (a seq-cst load by default)";
            break;
          case AtomicOp::Kind::kLoad:
            what = ".load() with defaulted memory order";
            break;
          case AtomicOp::Kind::kStore:
            what = ".store() with defaulted memory order";
            break;
          case AtomicOp::Kind::kRmw:
            what = "read-modify-write with defaulted memory order";
            break;
        }
        findings.push_back(
            {kRule, op->file, op->line,
             field + " is a cross-thread handoff field (it has "
                     "release/acquire traffic elsewhere) but this site "
                     "uses " +
                 what +
                 " — spell the order explicitly "
                 "(memory_order_release store / memory_order_acquire "
                 "load, or memory_order_relaxed when no publication "
                 "rides on it)"});
      }
      if ((op->order == "release" || op->order == "acq_rel") &&
          first_release == nullptr) {
        first_release = op;
      }
      if ((op->order == "acquire" || op->order == "acq_rel") &&
          first_acquire == nullptr) {
        first_acquire = op;
      }
    }
    if (!has_release_store && first_acquire != nullptr) {
      findings.push_back(
          {kRule, first_acquire->file, first_acquire->line,
           field + " is loaded with memory_order_acquire but no "
                   "release store publishes it anywhere in the program "
                   "— the acquire synchronizes with nothing"});
    }
    if (!has_acquire_load && first_release != nullptr) {
      findings.push_back(
          {kRule, first_release->file, first_release->line,
           field + " is stored with memory_order_release but nothing "
                   "loads it with memory_order_acquire — the intended "
                   "consumer reads stale or unordered state"});
    }
  }
  return findings;
}

}  // namespace facts
}  // namespace hjlint
}  // namespace hashjoin
