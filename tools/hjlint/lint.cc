#include "hjlint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "hjlint/facts.h"

namespace hashjoin {
namespace hjlint {
namespace {

// ---------------------------------------------------------------------
// Lexical preprocessing. hjlint is a lexical linter: it works on a
// "code view" of each file where comments and string/char literals are
// blanked out (replaced by spaces, so line/column positions survive).
// That is enough for the project-invariant rules here and keeps the
// tool dependency-free; anything needing real semantics belongs in the
// compiler (thread-safety analysis) instead. The primitives live in
// hjlint/facts.cc (namespace lex) so the per-file rules here and the
// whole-program facts engine share one implementation.
// ---------------------------------------------------------------------

using lex::BlankCommentsAndStrings;
using lex::FindWord;
using lex::IsIdentChar;
using lex::SplitLines;
using lex::Strip;

bool RuleEnabled(const std::vector<std::string>& rules,
                 const std::string& id) {
  return rules.empty() ||
         std::find(rules.begin(), rules.end(), id) != rules.end();
}

// ---------------------------------------------------------------------
// Rule: spp-ring-power-of-two
//
// The GP/SPP kernels index their in-flight state array with bit
// masking: states[j & mask]. That is only correct when the ring size is
// a power of two at least stages*D + 1 (Theorems 1 and 2 size the
// pipeline; the mask requires the power of two). The project idiom is
//     ring = NextPowerOfTwo(<stages * d> + 1);
//     mask = ring - 1;
// and this rule pins both halves: a `ring =` initializer must round up
// through NextPowerOfTwo and must add the +1 slack slot, and a `mask =`
// within the next few lines must be exactly ring - 1.
// ---------------------------------------------------------------------

/// Index of the next column-0 `}` at or after `from` (function end under
/// the project's formatting), or size() when none.
size_t SegmentEnd(const std::vector<std::string>& code_lines, size_t from) {
  size_t i = from;
  while (i < code_lines.size() &&
         !(code_lines[i].size() >= 1 && code_lines[i][0] == '}')) {
    ++i;
  }
  return i;
}

/// True when the function segment [begin, end) suspends via co_await —
/// a coroutine chain, where in-flight state lives in frames instead of
/// an SPP ring and each co_await is a pipeline-stage boundary.
bool SegmentIsCoroutine(const std::vector<std::string>& code_lines,
                        size_t begin, size_t end) {
  end = std::min(end, code_lines.size());
  for (size_t i = begin; i < end; ++i) {
    if (FindWord(code_lines[i], "co_await") != std::string::npos) return true;
  }
  return false;
}

void CheckRingRule(const std::string& path,
                   const std::vector<std::string>& code_lines,
                   std::vector<Finding>* findings) {
  size_t seg_end = 0;
  bool seg_coro = false;
  for (size_t i = 0; i < code_lines.size(); ++i) {
    // Coroutine chains keep in-flight state in frames, not a bit-masked
    // ring; a `ring` variable there is scheduler bookkeeping (iterated
    // round-robin, never `j & mask`-indexed), so the SPP sizing idiom
    // does not apply inside a co_await function.
    if (i >= seg_end) {
      seg_end = SegmentEnd(code_lines, i) + 1;
      seg_coro = SegmentIsCoroutine(code_lines, i, seg_end);
    }
    if (seg_coro) continue;
    const std::string& line = code_lines[i];
    size_t rpos = FindWord(line, "ring");
    if (rpos == std::string::npos) continue;
    // Only assignments/initializations: `ring =` but not `ring ==`.
    size_t after = line.find_first_not_of(" \t", rpos + 4);
    if (after == std::string::npos || line[after] != '=' ||
        (after + 1 < line.size() && line[after + 1] == '=')) {
      continue;
    }
    std::string rhs = Strip(line.substr(after + 1));
    if (rhs.find("NextPowerOfTwo(") == std::string::npos) {
      findings->push_back(
          {"spp-ring-power-of-two", path, uint32_t(i + 1),
           "state-ring size must round up via NextPowerOfTwo(...) so the "
           "bit-mask indexing of states[j & mask] is valid; got: " +
               rhs});
    } else if (rhs.find("+ 1)") == std::string::npos &&
               rhs.find("+1)") == std::string::npos) {
      findings->push_back(
          {"spp-ring-power-of-two", path, uint32_t(i + 1),
           "state ring must hold stages*D + 1 slots (the +1 keeps the "
           "issue slot disjoint from the drain slots); got: " +
               rhs});
    }
    // The companion mask must be ring - 1 (within the next few lines).
    for (size_t j = i + 1; j < code_lines.size() && j <= i + 5; ++j) {
      const std::string& mline = code_lines[j];
      size_t mpos = FindWord(mline, "mask");
      if (mpos == std::string::npos) continue;
      size_t meq = mline.find_first_not_of(" \t", mpos + 4);
      if (meq == std::string::npos || mline[meq] != '=' ||
          (meq + 1 < mline.size() && mline[meq + 1] == '=')) {
        continue;
      }
      std::string mrhs = Strip(mline.substr(meq + 1));
      if (!mrhs.empty() && mrhs.back() == ';') {
        mrhs = Strip(mrhs.substr(0, mrhs.size() - 1));
      }
      if (mrhs != "ring - 1" && mrhs != "ring-1") {
        findings->push_back(
            {"spp-ring-power-of-two", path, uint32_t(j + 1),
             "state-ring mask must be `ring - 1` (power-of-two bit "
             "mask); got: " +
                 mrhs});
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------
// Rule: prefetch-stage-discipline
//
// The whole point of group prefetching / software pipelining is that an
// address prefetched in stage k is dereferenced in stage k+1 — a later
// call, after enough other work has hidden the miss. Prefetching an
// address and touching it a few lines down in the same function is the
// just-in-time anti-pattern of §3 (the prefetch has no time to
// overlap). This rule extracts the first argument of every
// Prefetch*/__builtin_prefetch call and flags a dereference of that
// same expression (EXPR->, *EXPR, EXPR[) later in the same function.
//
// Functions are approximated as the spans between column-0 `}` lines —
// exact for the project's kernel headers, conservative elsewhere.
// ---------------------------------------------------------------------

struct PrefetchCall {
  size_t line_idx;
  std::string arg;  // first argument, whitespace-normalized
};

std::string NormalizeExpr(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c != ' ' && c != '\t') out.push_back(c);
  }
  return out;
}

/// True when the extracted "argument" is really a parameter declaration
/// (`const void* addr`) — i.e. the Prefetch token was a function
/// definition/declaration, not a call site.
bool LooksLikeParamDecl(const std::string& arg) {
  // Two identifiers separated by space/pointer tokens, e.g.
  // "const void* addr", "uint64_t line_addr", "const void *p".
  size_t sp = arg.find_last_of(" *&");
  if (sp == std::string::npos || sp + 1 >= arg.size()) return false;
  std::string last = arg.substr(sp + 1);
  std::string head = Strip(arg.substr(0, sp + 1));
  if (head.empty()) return false;
  if (!IsIdentChar(last[0]) || std::isdigit(static_cast<unsigned char>(last[0])))
    return false;
  // The head must itself end in an identifier or pointer/ref token —
  // a cast like "(const uint8_t*)p" has ')' there and is a call arg.
  char tail = head.back();
  return IsIdentChar(tail) || tail == '*' || tail == '&';
}

/// Extracts the first argument of a call whose '(' is at `open`;
/// returns false when the parens do not balance on this line span.
bool FirstArg(const std::string& text, size_t open, std::string* arg) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    char c = text[i];
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
      if (depth == 0) {
        *arg = Strip(text.substr(open + 1, i - open - 1));
        return true;
      }
    } else if (c == ',' && depth == 1) {
      *arg = Strip(text.substr(open + 1, i - open - 1));
      return true;
    }
  }
  return false;
}

void CheckPrefetchRule(const std::string& path,
                       const std::vector<std::string>& code_lines,
                       std::vector<Finding>* findings) {
  static const char* kPrefetchNames[] = {
      "Prefetch", "PrefetchRead", "PrefetchWrite", "PrefetchRange",
      "__builtin_prefetch"};

  size_t seg_begin = 0;
  while (seg_begin < code_lines.size()) {
    // A segment ends at the next column-0 `}` (function/namespace end).
    size_t seg_end = seg_begin;
    while (seg_end < code_lines.size() &&
           !(code_lines[seg_end].size() >= 1 && code_lines[seg_end][0] == '}')) {
      ++seg_end;
    }

    std::vector<PrefetchCall> calls;
    for (size_t i = seg_begin; i < seg_end; ++i) {
      const std::string& line = code_lines[i];
      for (const char* name : kPrefetchNames) {
        for (size_t p = FindWord(line, name); p != std::string::npos;
             p = FindWord(line, name, p + 1)) {
          // Declarations have a type token directly before the name
          // ("void PrefetchRead("); call sites are preceded by '.',
          // '->', start of line, or punctuation.
          size_t before = line.find_last_not_of(" \t", p == 0 ? 0 : p - 1);
          if (p > 0 && before != std::string::npos &&
              IsIdentChar(line[before])) {
            continue;  // `void Prefetch(` — a declaration
          }
          size_t open = line.find_first_not_of(" \t", p + std::strlen(name));
          if (open == std::string::npos || line[open] != '(') continue;
          // Join continuation lines so multi-line calls parse.
          std::string span = line;
          size_t extra = i + 1;
          std::string arg;
          size_t open_in_span = open;
          while (!FirstArg(span, open_in_span, &arg) &&
                 extra < seg_end && extra < i + 4) {
            span += ' ';
            span += code_lines[extra++];
          }
          if (arg.empty()) continue;
          if (LooksLikeParamDecl(arg)) continue;
          calls.push_back({i, NormalizeExpr(arg)});
        }
      }
    }

    for (const PrefetchCall& call : calls) {
      if (call.arg.empty()) continue;
      // Compound expressions (arithmetic on the pointer) never re-appear
      // verbatim as dereferences; skip them instead of guessing.
      if (call.arg.find('+') != std::string::npos ||
          call.arg.find('(') != std::string::npos) {
        continue;
      }
      for (size_t i = call.line_idx + 1; i < seg_end; ++i) {
        // A co_await is a pipeline-stage boundary: the coroutine
        // suspends and other chains' work overlaps the miss, so a
        // dereference after it is exactly the intended stage split.
        if (FindWord(code_lines[i], "co_await") != std::string::npos) break;
        const std::string norm = NormalizeExpr(code_lines[i]);
        auto deref_at = [&](size_t pos) {
          // Word boundary on the left, then `->`, `[`, or leading `*`.
          bool left_ok = pos == 0 || !IsIdentChar(norm[pos - 1]);
          if (!left_ok) return false;
          size_t end = pos + call.arg.size();
          if (end + 1 < norm.size() && norm[end] == '-' && norm[end + 1] == '>')
            return true;
          if (end < norm.size() && norm[end] == '[') return true;
          if (pos > 0 && norm[pos - 1] == '*' &&
              (pos == 1 || !IsIdentChar(norm[pos - 2])))
            return true;
          return false;
        };
        bool hit = false;
        for (size_t p = norm.find(call.arg); p != std::string::npos;
             p = norm.find(call.arg, p + 1)) {
          if (deref_at(p)) {
            hit = true;
            break;
          }
        }
        if (hit) {
          findings->push_back(
              {"prefetch-stage-discipline", path, uint32_t(i + 1),
               "`" + call.arg + "` was prefetched on line " +
                   std::to_string(call.line_idx + 1) +
                   " and dereferenced in the same stage — the dereference "
                   "belongs in the next pipeline stage, or the prefetch "
                   "hides nothing"});
          break;  // one finding per prefetch call is enough
        }
      }
    }
    seg_begin = seg_end + 1;
  }
}

// ---------------------------------------------------------------------
// Rule: dropped-status
//
// [[nodiscard]] + -Werror=unused-result already enforce this in the
// build; the lint rule keeps the invariant visible to code review (and
// to editors without the project flags). A ReadPage/WritePage/
// FlushWrites/NextPage call standing alone as a statement throws away
// the Status that carries I/O failures.
// ---------------------------------------------------------------------

void CheckDroppedStatusRule(const std::string& path,
                            const std::vector<std::string>& code_lines,
                            std::vector<Finding>* findings) {
  static const char* kStatusCalls[] = {"ReadPage", "WritePage",
                                       "FlushWrites", "NextPage"};
  std::string prev_code;  // last non-blank code line before the current
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string stripped = Strip(code_lines[i]);
    if (stripped.empty()) continue;
    std::string prev = prev_code;
    prev_code = stripped;

    // Only statement starts: the previous line must have ended a
    // statement/block, otherwise we are mid-expression (assignment or
    // argument continuation) and the value is consumed.
    if (!prev.empty()) {
      char t = prev.back();
      if (t != ';' && t != '{' && t != '}' && t != ':') continue;
    }

    // The call chain must open the line: `obj.FlushWrites(`,
    // `ptr->NextPage(`, or a bare `FlushWrites(`.
    size_t pos = 0;
    while (pos < stripped.size() &&
           (IsIdentChar(stripped[pos]) || stripped[pos] == '.' ||
            stripped[pos] == ':' ||
            (stripped[pos] == '-' && pos + 1 < stripped.size() &&
             stripped[pos + 1] == '>') ||
            stripped[pos] == '>')) {
      ++pos;
    }
    std::string head = stripped.substr(0, pos);
    const char* which = nullptr;
    for (const char* name : kStatusCalls) {
      size_t at = head.rfind(name);
      if (at != std::string::npos && at + std::strlen(name) == head.size() &&
          (at == 0 || !IsIdentChar(head[at - 1]))) {
        which = name;
        break;
      }
    }
    if (which == nullptr) continue;
    size_t open = stripped.find_first_not_of(" \t", pos);
    if (open == std::string::npos || stripped[open] != '(') continue;

    // Find the matching close paren (joining continuation lines) and
    // require the statement to end right there — `.ok()` or any other
    // consumption after the close exonerates the call.
    std::string span = stripped;
    size_t extra = i + 1;
    int depth = 0;
    size_t close = std::string::npos;
    for (size_t guard = 0; guard < 8; ++guard) {
      for (size_t k = open; k < span.size(); ++k) {
        if (span[k] == '(') ++depth;
        if (span[k] == ')' && --depth == 0) {
          close = k;
          break;
        }
      }
      if (close != std::string::npos || extra >= code_lines.size()) break;
      span += ' ';
      span += Strip(code_lines[extra++]);
      depth = 0;
    }
    if (close == std::string::npos) continue;
    size_t after = span.find_first_not_of(" \t", close + 1);
    if (after != std::string::npos && span[after] == ';') {
      findings->push_back(
          {"dropped-status", path, uint32_t(i + 1),
           std::string(which) +
               "() returns a Status that this statement discards — "
               "check it (or the I/O error vanishes)"});
    }
  }
}

// ---------------------------------------------------------------------
// Rule: raw-mutex-primitive
//
// Thread-safety analysis only sees lock state through the annotated
// capability types. A raw std::mutex (or lock/cv helper) under src/
// is invisible to the analysis, so every locking site must go through
// util/mutex.h's Mutex/MutexLock/CondVar.
// ---------------------------------------------------------------------

bool RawMutexExemptFile(const std::string& path) {
  return path.find("util/mutex.h") != std::string::npos ||
         path.find("util/thread_annotations.h") != std::string::npos;
}

bool UnderSrc(const std::string& path) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  return norm.rfind("src/", 0) == 0 || norm.find("/src/") != std::string::npos;
}

void CheckRawMutexRule(const std::string& path,
                       const std::vector<std::string>& code_lines,
                       std::vector<Finding>* findings) {
  if (!UnderSrc(path) || RawMutexExemptFile(path)) return;
  static const char* kPrimitives[] = {
      "std::mutex",          "std::recursive_mutex",
      "std::shared_mutex",   "std::timed_mutex",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "std::condition_variable", "std::condition_variable_any"};
  for (size_t i = 0; i < code_lines.size(); ++i) {
    for (const char* prim : kPrimitives) {
      size_t p = code_lines[i].find(prim);
      if (p == std::string::npos) continue;
      // `std::condition_variable` is a prefix of `_any`; the exact-match
      // guard also skips identifiers like std::mutex_like.
      size_t end = p + std::strlen(prim);
      if (end < code_lines[i].size() && IsIdentChar(code_lines[i][end]))
        continue;
      findings->push_back(
          {"raw-mutex-primitive", path, uint32_t(i + 1),
           std::string(prim) +
               " bypasses the annotated locking layer; use "
               "Mutex/MutexLock/CondVar from util/mutex.h so "
               "-Wthread-safety can see it"});
      break;  // one per line
    }
  }
}

// ---------------------------------------------------------------------
// Rule: recovery-ledger-discipline
//
// Every degradation action in the robust hybrid join — role reversal,
// recursive split, chunked build, block nested loop, victim spill and
// un-spill — must be accounted in the DiskJoinRecovery ledger through
// exactly one adjacent RecordDegrade(...) call, the single accounting
// chokepoint. An action without a record is an unexplained degradation
// (the bench's per-reason classification silently undercounts); a
// record without an action inflates the ledger. The rule pairs each
// action call site with one RecordDegrade call within +/-3 lines inside
// the same function segment, one-to-one, and flags both leftovers.
// ---------------------------------------------------------------------

/// True when the token at `p` (length `token_len`) in `line` is a call
/// site: followed by '(' and not a declaration or definition. `return
/// Foo(...)` and `HJ_RETURN_IF_ERROR(Foo(...))` are calls; `Status
/// Foo(...)` (type token before the name) and `Class::Foo(...)` (the
/// out-of-line definition) are not.
bool IsLedgerCallSite(const std::string& line, size_t p, size_t token_len) {
  size_t open = line.find_first_not_of(" \t", p + token_len);
  if (open == std::string::npos || line[open] != '(') return false;
  if (p == 0) return true;
  size_t before = line.find_last_not_of(" \t", p - 1);
  if (before == std::string::npos) return true;
  char c = line[before];
  if (c == ':') return false;  // `DiskGraceJoin::Foo(` — definition
  if (IsIdentChar(c)) {
    size_t wbeg = before + 1;
    while (wbeg > 0 && IsIdentChar(line[wbeg - 1])) --wbeg;
    return line.compare(wbeg, before + 1 - wbeg, "return") == 0;
  }
  return true;
}

void CheckRecoveryLedgerRule(const std::string& path,
                             const std::vector<std::string>& code_lines,
                             std::vector<Finding>* findings) {
  if (!UnderSrc(path)) return;
  static const char* kActions[] = {"ReverseRoles", "RecurseSplit",
                                   "JoinChunked",  "JoinBlockNestedLoop",
                                   "SpillVictim",  "UnspillPartition"};
  constexpr size_t kWindow = 3;

  size_t seg_begin = 0;
  while (seg_begin < code_lines.size()) {
    size_t seg_end = SegmentEnd(code_lines, seg_begin);

    struct Site {
      size_t line_idx;
      const char* name;
      bool matched = false;
    };
    std::vector<Site> actions;
    std::vector<Site> records;
    for (size_t i = seg_begin; i < seg_end; ++i) {
      const std::string& line = code_lines[i];
      for (const char* name : kActions) {
        size_t p = FindWord(line, name);
        if (p != std::string::npos &&
            IsLedgerCallSite(line, p, std::strlen(name))) {
          actions.push_back({i, name, false});
        }
      }
      size_t p = FindWord(line, "RecordDegrade");
      if (p != std::string::npos &&
          IsLedgerCallSite(line, p, std::strlen("RecordDegrade"))) {
        records.push_back({i, "RecordDegrade", false});
      }
    }

    // One-to-one pairing: each action claims the nearest unclaimed
    // record within the window (actions in source order).
    for (Site& a : actions) {
      Site* best = nullptr;
      size_t best_dist = kWindow + 1;
      for (Site& r : records) {
        if (r.matched) continue;
        size_t dist = a.line_idx > r.line_idx ? a.line_idx - r.line_idx
                                              : r.line_idx - a.line_idx;
        if (dist < best_dist) {
          best_dist = dist;
          best = &r;
        }
      }
      if (best != nullptr) {
        best->matched = true;
        a.matched = true;
      }
    }
    for (const Site& a : actions) {
      if (a.matched) continue;
      findings->push_back(
          {"recovery-ledger-discipline", path, uint32_t(a.line_idx + 1),
           std::string(a.name) +
               "() degrades the join without an adjacent "
               "RecordDegrade(...) — the DiskJoinRecovery ledger "
               "undercounts and this degradation goes unexplained"});
    }
    for (const Site& r : records) {
      if (r.matched) continue;
      findings->push_back(
          {"recovery-ledger-discipline", path, uint32_t(r.line_idx + 1),
           "RecordDegrade(...) with no adjacent degradation action — "
           "the ledger counts a degradation that never happened"});
    }
    seg_begin = seg_end + 1;
  }
}

// ---------------------------------------------------------------------
// Rule: cache-pin-discipline
//
// HashTableCache::Pin() hands back an entry with one pin held; the
// caller owns releasing it. A leaked pin is worse than a leaked byte:
// the pinned entry can never be evicted, so a broker revoke shrinks the
// cache's grant on paper while the memory stays resident — the
// revocation protocol's whole promise breaks. The project idiom is the
// RAII guard (Acquire() returning PinnedTable), so join code normally
// never spells Pin at all. This rule balances raw Pin() call sites
// against Unpin() calls within each function segment: each Pin claims
// one Unpin, and unclaimed Pins are flagged. A Pin adopted by a
// PinnedTable constructed on the same line is guard-managed and exempt.
// The cache's own files are exempt wholesale — the guard and the
// accessors there legitimately hold one side of the pair each.
// ---------------------------------------------------------------------

bool CachePinExemptFile(const std::string& path) {
  return path.find("cache/hash_table_cache") != std::string::npos;
}

void CheckCachePinRule(const std::string& path,
                       const std::vector<std::string>& code_lines,
                       std::vector<Finding>* findings) {
  if (CachePinExemptFile(path)) return;
  size_t seg_begin = 0;
  while (seg_begin < code_lines.size()) {
    size_t seg_end = SegmentEnd(code_lines, seg_begin);

    std::vector<size_t> pin_sites;
    size_t unpin_count = 0;
    for (size_t i = seg_begin; i < seg_end; ++i) {
      const std::string& line = code_lines[i];
      for (size_t p = FindWord(line, "Pin"); p != std::string::npos;
           p = FindWord(line, "Pin", p + 1)) {
        if (!IsLedgerCallSite(line, p, 3)) continue;
        // `const CachedTable* Pin(` — a declaration, not a call.
        if (p > 0) {
          size_t before = line.find_last_not_of(" \t", p - 1);
          if (before != std::string::npos &&
              (line[before] == '*' || line[before] == '&')) {
            continue;
          }
        }
        // A PinnedTable on the same line adopts the pin (RAII guard).
        if (FindWord(line, "PinnedTable") != std::string::npos) continue;
        pin_sites.push_back(i);
      }
      size_t u = FindWord(line, "Unpin");
      if (u != std::string::npos && IsLedgerCallSite(line, u, 5)) {
        ++unpin_count;
      }
    }

    // Each Pin (source order) claims one Unpin; leftovers are leaks.
    for (size_t k = unpin_count; k < pin_sites.size(); ++k) {
      findings->push_back(
          {"cache-pin-discipline", path, uint32_t(pin_sites[k] + 1),
           "raw Pin() with no matching Unpin() in this scope — the pin "
           "leaks, the entry becomes unevictable, and cache revocation "
           "can never reclaim it; hold the pin in a PinnedTable "
           "(Acquire()) instead"});
    }
    seg_begin = seg_end + 1;
  }
}

// ---------------------------------------------------------------------
// Rule: tuned-depth-handoff
//
// Kernels read G and D through the policy/tuner handoff
// (KernelParams::EffectiveGroupSize/EffectiveDistance, fed by
// bench::ResolveTuning or a live PrefetchTuner). A bench driver that
// assigns an integer literal straight into `group_size` or
// `prefetch_distance` bypasses that handoff — its records then claim a
// tuned depth that was actually hardcoded. Bench drivers (.cc under
// bench/) must take depths from ResolveTuning / PaperJoinDefaults /
// PaperPartitionDefaults / SimTunedParams instead; sweeps assigning a
// loop variable are fine (not a literal).
// ---------------------------------------------------------------------

bool UnderBenchCc(const std::string& path) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  if (norm.size() < 3 || norm.compare(norm.size() - 3, 3, ".cc") != 0) {
    return false;
  }
  return norm.rfind("bench/", 0) == 0 ||
         norm.find("/bench/") != std::string::npos;
}

/// True when `s` is a bare integer literal (decimal/hex, digit
/// separators, unsigned/long suffixes) — `19`, `4u`, `1'000`.
bool IsIntLiteral(const std::string& s) {
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  for (char c : s) {
    if (std::isxdigit(static_cast<unsigned char>(c)) || c == 'x' ||
        c == 'X' || c == '\'' || c == 'u' || c == 'U' || c == 'l' ||
        c == 'L') {
      continue;
    }
    return false;
  }
  return true;
}

void CheckTunedDepthRule(const std::string& path,
                         const std::vector<std::string>& code_lines,
                         std::vector<Finding>* findings) {
  if (!UnderBenchCc(path)) return;
  static const char* kFields[] = {"group_size", "prefetch_distance"};
  for (size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    for (const char* field : kFields) {
      size_t p = FindWord(line, field);
      if (p == std::string::npos) continue;
      size_t after = line.find_first_not_of(" \t", p + std::strlen(field));
      if (after == std::string::npos || line[after] != '=' ||
          (after + 1 < line.size() && line[after + 1] == '=')) {
        continue;
      }
      std::string rhs = Strip(line.substr(after + 1));
      if (!rhs.empty() && rhs.back() == ';') {
        rhs = Strip(rhs.substr(0, rhs.size() - 1));
      }
      if (!IsIntLiteral(rhs)) continue;
      findings->push_back(
          {"tuned-depth-handoff", path, uint32_t(i + 1),
           std::string(field) + " = " + rhs +
               " hardcodes a prefetch depth in a bench driver — take G/D "
               "from bench::ResolveTuning (or the paper-default/sim "
               "helpers) so the policy/tuner handoff stays the single "
               "source of depths"});
    }
  }
}

// ---------------------------------------------------------------------
// Rule: bench-schema-sync (cross-file)
// ---------------------------------------------------------------------

/// All string literals passed as the sole/first argument of `fn("...")`.
std::vector<std::pair<uint32_t, std::string>> CallStringLiterals(
    const std::string& contents, const std::string& fn) {
  std::vector<std::pair<uint32_t, std::string>> out;
  std::vector<std::string> lines = SplitLines(contents);
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (size_t p = FindWord(line, fn); p != std::string::npos;
         p = FindWord(line, fn, p + 1)) {
      size_t open = line.find_first_not_of(" \t", p + fn.size());
      if (open == std::string::npos || line[open] != '(') continue;
      size_t q1 = line.find('"', open + 1);
      if (q1 == std::string::npos) continue;
      // Nothing but whitespace between '(' and the quote — otherwise the
      // first argument is not a literal.
      if (Strip(line.substr(open + 1, q1 - open - 1)) != "") continue;
      size_t q2 = line.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      out.emplace_back(uint32_t(i + 1), line.substr(q1 + 1, q2 - q1 - 1));
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> LintBenchSchema(
    const std::string& diff_path, const std::string& diff_contents,
    const std::string& reporter_path, const std::string& reporter_contents,
    const std::vector<std::string>& extra_emitter_contents) {
  std::vector<Finding> findings;
  std::set<std::string> emitted;
  for (auto& [line, key] : CallStringLiterals(reporter_contents, "Set")) {
    (void)line;
    emitted.insert(key);
  }
  for (const std::string& contents : extra_emitter_contents) {
    for (auto& [line, key] : CallStringLiterals(contents, "Set")) {
      (void)line;
      emitted.insert(key);
    }
  }
  auto check = [&](uint32_t line, const std::string& key) {
    if (emitted.count(key)) return;
    findings.push_back(
        {"bench-schema-sync", diff_path, line,
         "bench_diff reads key \"" + key + "\" but neither " +
             reporter_path +
             " nor any bench emitter sets it — the checker and the "
             "reporter schema drifted apart"});
  };
  for (auto& [line, key] : CallStringLiterals(diff_contents, "Find")) {
    check(line, key);
  }
  for (auto& [line, path] : CallStringLiterals(diff_contents, "FindPath")) {
    // Dotted paths resolve through nested objects; every component must
    // be an emitted key.
    std::stringstream ss(path);
    std::string part;
    while (std::getline(ss, part, '.')) check(line, part);
  }
  return findings;
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents,
                              const std::vector<std::string>& rules) {
  std::vector<Finding> findings;
  std::vector<std::string> code_lines =
      SplitLines(BlankCommentsAndStrings(contents));
  if (RuleEnabled(rules, "spp-ring-power-of-two")) {
    CheckRingRule(path, code_lines, &findings);
  }
  if (RuleEnabled(rules, "prefetch-stage-discipline")) {
    CheckPrefetchRule(path, code_lines, &findings);
  }
  if (RuleEnabled(rules, "dropped-status")) {
    CheckDroppedStatusRule(path, code_lines, &findings);
  }
  if (RuleEnabled(rules, "raw-mutex-primitive")) {
    CheckRawMutexRule(path, code_lines, &findings);
  }
  if (RuleEnabled(rules, "recovery-ledger-discipline")) {
    CheckRecoveryLedgerRule(path, code_lines, &findings);
  }
  if (RuleEnabled(rules, "tuned-depth-handoff")) {
    CheckTunedDepthRule(path, code_lines, &findings);
  }
  if (RuleEnabled(rules, "cache-pin-discipline")) {
    CheckCachePinRule(path, code_lines, &findings);
  }
  return findings;
}

namespace {

bool HasLintableExtension(const std::filesystem::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

StatusOr<std::string> ReadFileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Display path for findings: repo-root-relative when the file lives
/// under `root`, so --json output and baselines are stable across
/// checkouts and CI machines. Falls back to the path as given.
std::string DisplayPath(const std::string& path, const std::string& root) {
  if (root.empty()) return path;
  std::error_code ec;
  std::filesystem::path abs =
      std::filesystem::weakly_canonical(path, ec);
  if (ec) return path;
  std::filesystem::path abs_root =
      std::filesystem::weakly_canonical(root, ec);
  if (ec) return path;
  std::filesystem::path rel = abs.lexically_relative(abs_root);
  std::string s = rel.generic_string();
  if (s.empty() || s == "." || s.rfind("..", 0) == 0) return path;
  return s;
}

}  // namespace

std::vector<Finding> LintTree(const std::vector<std::string>& paths,
                              const std::string& root,
                              const std::vector<std::string>& rules) {
  std::vector<Finding> findings;
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(p, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(p, ec);
           !ec && it != std::filesystem::recursive_directory_iterator();
           ++it) {
        if (it->is_regular_file() && HasLintableExtension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());

  const bool want_facts = RuleEnabled(rules, "lock-order-cycle") ||
                          RuleEnabled(rules, "callback-under-lock") ||
                          RuleEnabled(rules, "atomic-handoff-discipline");
  std::vector<std::pair<std::string, std::string>> sources;  // path, text

  for (const std::string& f : files) {
    auto contents = ReadFileContents(f);
    std::string display = DisplayPath(f, root);
    if (!contents.ok()) {
      findings.push_back({"io", display, 0, contents.status().ToString()});
      continue;
    }
    std::vector<Finding> file_findings =
        LintFile(display, contents.value(), rules);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
    if (want_facts) {
      sources.emplace_back(display, std::move(contents.value()));
    }
  }

  if (want_facts) {
    facts::FactsDb db;
    for (const auto& [path, text] : sources) {
      facts::CollectDecls(path, text, &db.decls);
    }
    for (const auto& [path, text] : sources) {
      facts::ExtractFacts(path, text, &db);
    }
    if (RuleEnabled(rules, "lock-order-cycle")) {
      std::string manifest_display = "tools/hjlint/lock_order.txt";
      facts::Manifest manifest;
      bool have_manifest = false;
      if (!root.empty()) {
        auto text = ReadFileContents(root + "/" + manifest_display);
        if (text.ok()) {
          manifest = facts::ParseManifest(text.value());
          have_manifest = true;
        }
      }
      std::vector<Finding> lock = facts::CheckLockOrder(
          db, manifest, manifest_display, have_manifest);
      findings.insert(findings.end(), lock.begin(), lock.end());
    }
    if (RuleEnabled(rules, "callback-under-lock")) {
      std::vector<Finding> cb = facts::CheckCallbackUnderLock(db);
      findings.insert(findings.end(), cb.begin(), cb.end());
    }
    if (RuleEnabled(rules, "atomic-handoff-discipline")) {
      std::vector<Finding> at = facts::CheckAtomicHandoff(db);
      findings.insert(findings.end(), at.begin(), at.end());
    }
  }
  if (!root.empty() && RuleEnabled(rules, "bench-schema-sync")) {
    std::string diff_path = "tools/bench_diff.cc";
    std::string reporter_path = "src/perf/bench_reporter.cc";
    auto diff = ReadFileContents(root + "/" + diff_path);
    auto reporter = ReadFileContents(root + "/" + reporter_path);
    if (diff.ok() && reporter.ok()) {
      // The per-bench config keys ("scheme", "theta", ...) are emitted
      // by the drivers, not the reporter envelope; harvest them too so
      // bench_diff may validate keys any bench sets.
      std::vector<std::string> extra;
      std::error_code ec;
      for (auto it =
               std::filesystem::directory_iterator(root + "/bench", ec);
           !ec && it != std::filesystem::directory_iterator(); ++it) {
        if (it->is_regular_file() && HasLintableExtension(it->path())) {
          auto contents = ReadFileContents(it->path().string());
          if (contents.ok()) extra.push_back(std::move(contents.value()));
        }
      }
      std::vector<Finding> schema =
          LintBenchSchema(diff_path, diff.value(), reporter_path,
                          reporter.value(), extra);
      findings.insert(findings.end(), schema.begin(), schema.end());
    }
  }
  return findings;
}

JsonValue FindingsToJson(const std::vector<Finding>& findings) {
  JsonValue doc = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  for (const Finding& f : findings) {
    JsonValue item = JsonValue::Object();
    item.Set("rule", f.rule);
    item.Set("file", f.file);
    item.Set("line", uint64_t(f.line));
    item.Set("message", f.message);
    arr.Append(std::move(item));
  }
  doc.Set("findings", std::move(arr));
  doc.Set("count", uint64_t(findings.size()));
  return doc;
}

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kRules = {
      "spp-ring-power-of-two", "prefetch-stage-discipline",
      "dropped-status", "raw-mutex-primitive",
      "recovery-ledger-discipline", "tuned-depth-handoff",
      "cache-pin-discipline", "bench-schema-sync",
      "lock-order-cycle", "callback-under-lock",
      "atomic-handoff-discipline"};
  return kRules;
}

// ---------------------------------------------------------------------
// Baselines. A baseline entry is `rule<TAB>file<TAB>message` — no line
// number, so routine edits above a known finding do not churn the file.
// Check mode partitions current findings into suppressed (in the
// baseline) and active (new); baseline entries that no longer fire are
// themselves findings (stale-baseline), so paid-down debt must be
// removed from the file.
// ---------------------------------------------------------------------

namespace {

std::string BaselineKey(const Finding& f) {
  return f.rule + "\t" + f.file + "\t" + f.message;
}

}  // namespace

std::string FormatBaseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) keys.insert(BaselineKey(f));
  std::string out =
      "# hjlint baseline: rule<TAB>file<TAB>message, one tracked "
      "finding per line.\n"
      "# Regenerate with: hjlint --write-baseline=FILE <paths>\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

BaselineApplied ApplyBaseline(const std::vector<Finding>& findings,
                              const std::string& baseline_contents,
                              const std::string& baseline_path) {
  BaselineApplied result;
  struct Entry {
    uint32_t line;
    std::string key;
    bool hit = false;
  };
  std::vector<Entry> entries;
  std::vector<std::string> lines = SplitLines(baseline_contents);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string s = Strip(lines[i]);
    if (s.empty() || s[0] == '#') continue;
    entries.push_back({uint32_t(i + 1), s, false});
  }
  for (const Finding& f : findings) {
    std::string key = BaselineKey(f);
    bool suppressed = false;
    for (Entry& e : entries) {
      if (e.key == key) {
        e.hit = true;
        suppressed = true;
      }
    }
    if (suppressed) {
      result.suppressed.push_back(f);
    } else {
      result.active.push_back(f);
    }
  }
  for (const Entry& e : entries) {
    if (e.hit) continue;
    std::string rule = e.key.substr(0, e.key.find('\t'));
    result.stale.push_back(
        {"stale-baseline", baseline_path, e.line,
         "baseline entry for rule `" + rule +
             "` no longer fires — the debt is paid, remove the entry"});
  }
  return result;
}

}  // namespace hjlint
}  // namespace hashjoin
