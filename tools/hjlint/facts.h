#ifndef HASHJOIN_TOOLS_HJLINT_FACTS_H_
#define HASHJOIN_TOOLS_HJLINT_FACTS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "hjlint/lint.h"

namespace hashjoin {
namespace hjlint {

/// Shared lexical layer. hjlint works on a "code view" of each file:
/// comments and string/char literals blanked to spaces so line/column
/// positions survive. The per-file rules (lint.cc) and the whole-program
/// facts engine (facts.cc) share these primitives.
namespace lex {

std::string BlankCommentsAndStrings(const std::string& src);
std::vector<std::string> SplitLines(const std::string& text);
bool IsIdentChar(char c);
std::string Strip(const std::string& s);

/// Position of identifier `word` in `line` at or after `from`, with
/// word boundaries on both sides; npos when absent.
size_t FindWord(const std::string& line, const std::string& word,
                size_t from = 0);

}  // namespace lex

/// ---------------------------------------------------------------------
/// Whole-program facts engine (hjlint v2).
///
/// Pass 1 (CollectDecls, run over every file first) builds a
/// declaration index: which names are Mutex members, std::function
/// members, std::atomic fields, plain data members (for ambiguity
/// suppression), plus HJ_REQUIRES/HJ_EXCLUDES annotations and
/// HJ_ACQUIRED_BEFORE edges. Pass 2 (ExtractFacts, run over every file
/// again with the full index) extracts behavioral facts: MutexLock
/// nesting edges, per-function mutex acquisitions, stored-callback
/// invocation sites with the lexically-held lock set, and atomic
/// load/store sites with their explicit memory_order. The three
/// whole-program rules (CheckLockOrder / CheckCallbackUnderLock /
/// CheckAtomicHandoff) then run over the merged database.
///
/// Mutex identity is the qualified member name `Class::member` —
/// lock *order* in this codebase is a property of the member, not the
/// instance (every MemoryGrant's listener_mu_ nests inside the broker's
/// mu_ the same way), which is exactly the granularity a global
/// acquisition-order graph needs.
/// ---------------------------------------------------------------------
namespace facts {

/// A data-member declaration attributed to its innermost enclosing
/// class/struct ("" for namespace scope). `guarded_by` carries the
/// HJ_GUARDED_BY argument when present (resolved to a qualified id).
struct MemberDecl {
  std::string cls;
  std::string name;
  std::string guarded_by;
  std::string file;
  uint32_t line = 0;
};

/// HJ_REQUIRES/HJ_EXCLUDES on a function declaration or definition.
/// `fn` is the qualified id ("Class::Fn", or "Fn" for free functions);
/// the mutex arguments are resolved to qualified ids.
struct FnAnnotation {
  std::string fn;
  std::vector<std::string> requires_held;
  std::vector<std::string> excludes;
  std::string file;
  uint32_t line = 0;
};

/// HJ_ACQUIRED_BEFORE(inner) on a Mutex member declaration: a
/// programmer-declared acquisition-order edge.
struct DeclaredEdge {
  std::string outer;
  std::string inner;
  std::string file;
  uint32_t line = 0;
};

struct DeclIndex {
  std::vector<MemberDecl> mutexes;
  std::vector<MemberDecl> fn_members;  // std::function<...> members
  std::vector<MemberDecl> atomics;     // std::atomic<...> fields
  /// Names that are also declared as plain (non-atomic) data members
  /// somewhere in the program. Bare-use detection for atomics is
  /// suppressed for these names: `p.group_size = 19` on a plain
  /// KernelParams must not be confused with LiveTuning's atomic
  /// group_size.
  std::set<std::string> plain_members;
  std::vector<FnAnnotation> annotations;
  std::vector<DeclaredEdge> declared_edges;
};

/// Observed while `outer` was lexically held, `inner` was acquired.
struct LockEdge {
  std::string outer;
  std::string inner;
  std::string file;
  uint32_t line = 0;
};

/// Function `fn` acquires `mutex_id` somewhere in its body (via
/// MutexLock or a raw Mutex::Lock on a known mutex member).
struct FnAcquire {
  std::string fn;
  std::string mutex_id;
  std::string file;
  uint32_t line = 0;
};

/// An invocation of a declared std::function member (directly, or via a
/// local alias copied from one). `held` is the lexically-held lock set
/// at the call; HJ_REQUIRES context is joined in by the check, so a
/// snapshot copied under the lock and invoked after the scope closes
/// has an empty effective set and passes.
struct CallbackCall {
  std::string fn;         // enclosing function (qualified)
  std::string member_id;  // qualified std::function member
  std::string alias;      // local alias name when invoked via one ("")
  std::vector<std::string> held;
  std::string file;
  uint32_t line = 0;
};

/// An unqualified call made while locks are (lexically or by
/// HJ_REQUIRES) held — the interprocedural seed: if the callee is a
/// method of the same class (or a free function) that acquires a
/// mutex, each held mutex precedes that acquisition in the global
/// order graph.
struct CallUnderLock {
  std::string fn;      // enclosing function (qualified)
  std::string cls;     // enclosing class of the caller ("" if free)
  std::string callee;  // unqualified callee name
  std::vector<std::string> held;
  std::string file;
  uint32_t line = 0;
};

struct AtomicOp {
  enum class Kind {
    kLoad,          // .load(...)
    kStore,         // .store(...)
    kRmw,           // fetch_*/exchange/compare_exchange/++/--/op=
    kAssign,        // bare operator= (seq-cst store by default)
    kImplicitLoad,  // bare value use (seq-cst load by default)
  };
  std::string field_id;  // qualified atomic field
  Kind kind = Kind::kLoad;
  std::string order;  // "relaxed", "release", ... ; "" when defaulted
  std::string file;
  uint32_t line = 0;
};

struct FactsDb {
  DeclIndex decls;
  std::vector<LockEdge> lock_edges;
  std::vector<FnAcquire> acquires;
  std::vector<CallbackCall> callback_calls;
  std::vector<CallUnderLock> calls_under_lock;
  std::vector<AtomicOp> atomic_ops;
};

/// Pass 1: harvest declarations from one file into the index.
void CollectDecls(const std::string& path, const std::string& contents,
                  DeclIndex* decls);

/// Pass 2: extract behavioral facts from one file. `db->decls` must
/// already hold the full program's declaration index.
void ExtractFacts(const std::string& path, const std::string& contents,
                  FactsDb* db);

/// One edge of the merged acquisition graph, with a representative
/// observation site and how the edge was derived.
struct ObservedEdge {
  std::string outer;
  std::string inner;
  std::string via;  // "nesting", "HJ_REQUIRES", "HJ_ACQUIRED_BEFORE", "call"
  std::string file;
  uint32_t line = 0;
};

/// The merged, deduplicated acquisition graph: lexical nestings +
/// HJ_ACQUIRED_BEFORE declarations + HJ_REQUIRES-context acquisitions
/// (a function annotated as holding M that acquires N yields M -> N,
/// even though the definition never spells the outer lock) + one-level
/// interprocedural composition through unqualified same-class calls.
std::vector<ObservedEdge> CollectLockEdges(const FactsDb& db);

/// The checked-in lock-order manifest (tools/hjlint/lock_order.txt):
/// one `Outer::m -> Inner::m` edge per line, `#` comments allowed.
struct Manifest {
  struct Entry {
    std::string outer;
    std::string inner;
    uint32_t line = 0;
  };
  std::vector<Entry> edges;
  std::vector<std::pair<uint32_t, std::string>> parse_errors;
};
Manifest ParseManifest(const std::string& contents);

/// Rule lock-order-cycle. Errors: any cycle in the merged graph
/// (including a self-edge — re-acquiring a held mutex), an observed
/// edge not declared in the manifest, a manifest entry no longer
/// observed (stale), and manifest parse errors. `manifest_path` is the
/// display path for manifest-anchored findings; when `have_manifest`
/// is false every observed edge is reported as undeclared.
std::vector<Finding> CheckLockOrder(const FactsDb& db,
                                    const Manifest& manifest,
                                    const std::string& manifest_path,
                                    bool have_manifest);

/// Rule callback-under-lock: invoking a stored std::function member
/// while any Mutex is held (lexically or via HJ_REQUIRES). The
/// snapshot-under-lock/invoke-outside idiom passes because the
/// invocation of the copied local happens with an empty held set.
std::vector<Finding> CheckCallbackUnderLock(const FactsDb& db);

/// Rule atomic-handoff-discipline: a field with any release-store or
/// acquire-load anywhere in the program is a cross-thread handoff
/// field; every operation on it must spell an explicit memory_order
/// (bare operator=/implicit loads are seq-cst-by-default errors), and
/// the release/acquire pairing must be two-sided.
std::vector<Finding> CheckAtomicHandoff(const FactsDb& db);

}  // namespace facts
}  // namespace hjlint
}  // namespace hashjoin

#endif  // HASHJOIN_TOOLS_HJLINT_FACTS_H_
