// hjlint — project-invariant linter for the hash-join codebase.
//
// Usage:
//   hjlint [--json=PATH] [--rules=a,b,...] [--root=DIR] PATH...
//
// PATH arguments are files or directories (recursed over .h/.cc/.cpp).
// Exit status: 0 = clean, 1 = findings, 2 = usage/I/O error. With
// --json, the findings are also written as a JSON document (always,
// even when empty, so CI can archive the report unconditionally).
//
// The rules are the invariants the compiler cannot see:
// prefetch-pipeline structure (ring sizing, stage discipline), Status
// hygiene, and the annotated-mutex layer. See tools/hjlint/lint.h.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "hjlint/lint.h"
#include "util/json_writer.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: hjlint [--json=PATH] [--rules=a,b] [--root=DIR] "
               "PATH...\n\nrules:\n");
  for (const std::string& r : hashjoin::hjlint::AllRules()) {
    std::fprintf(stderr, "  %s\n", r.c_str());
  }
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string root = ".";
  std::vector<std::string> rules;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--rules=", 0) == 0) {
      rules = SplitCommas(arg.substr(8));
      for (const std::string& r : rules) {
        const auto& all = hashjoin::hjlint::AllRules();
        if (std::find(all.begin(), all.end(), r) == all.end()) {
          std::fprintf(stderr, "hjlint: unknown rule '%s'\n", r.c_str());
          Usage();
          return 2;
        }
      }
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hjlint: unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    Usage();
    return 2;
  }

  std::vector<hashjoin::hjlint::Finding> findings =
      hashjoin::hjlint::LintTree(paths, root, rules);

  bool io_error = false;
  for (const auto& f : findings) {
    if (f.rule == "io") io_error = true;
    std::fprintf(stderr, "%s:%u: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }

  if (!json_path.empty()) {
    hashjoin::Status s = hashjoin::WriteJsonFile(
        json_path, hashjoin::hjlint::FindingsToJson(findings));
    if (!s.ok()) {
      std::fprintf(stderr, "hjlint: %s\n", s.ToString().c_str());
      return 2;
    }
  }

  if (io_error) return 2;
  if (!findings.empty()) return 1;
  std::printf("hjlint: clean (%zu rule%s over %zu path%s)\n",
              rules.empty() ? hashjoin::hjlint::AllRules().size()
                            : rules.size(),
              (rules.empty() ? hashjoin::hjlint::AllRules().size()
                             : rules.size()) == 1
                  ? ""
                  : "s",
              paths.size(), paths.size() == 1 ? "" : "s");
  return 0;
}
