// hjlint — project-invariant linter for the hash-join codebase.
//
// Usage:
//   hjlint [--json=PATH] [--rules=a,b,...] [--root=DIR]
//          [--baseline=FILE | --write-baseline=FILE] PATH...
//
// PATH arguments are files or directories (recursed over .h/.cc/.cpp).
// Exit status: 0 = clean, 1 = findings, 2 = usage/I/O error. With
// --json, the findings are also written as a JSON document (always,
// even when empty, so CI can archive the report unconditionally).
//
// --write-baseline=FILE snapshots the current findings as tracked debt
// (rule<TAB>file<TAB>message per line) and exits 0. --baseline=FILE
// checks against that snapshot: suppressed findings are reported but
// not fatal; findings missing from the baseline, and baseline entries
// that no longer fire (stale), fail the run.
//
// The rules are the invariants the compiler cannot see: prefetch-
// pipeline structure (ring sizing, stage discipline), Status hygiene,
// the annotated-mutex layer, and the whole-program concurrency rules
// (lock-order cycles, callbacks under locks, atomic handoff orders).
// See tools/hjlint/lint.h and tools/hjlint/facts.h.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hjlint/lint.h"
#include "util/json_writer.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: hjlint [--json=PATH] [--rules=a,b] [--root=DIR] "
               "[--baseline=FILE | --write-baseline=FILE] PATH...\n\n"
               "rules:\n");
  for (const std::string& r : hashjoin::hjlint::AllRules()) {
    std::fprintf(stderr, "  %s\n", r.c_str());
  }
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

void PrintFindings(const std::vector<hashjoin::hjlint::Finding>& findings,
                   const char* tag) {
  for (const auto& f : findings) {
    std::fprintf(stderr, "%s:%u: [%s]%s %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), tag, f.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> rules;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--rules=", 0) == 0) {
      rules = SplitCommas(arg.substr(8));
      for (const std::string& r : rules) {
        const auto& all = hashjoin::hjlint::AllRules();
        if (std::find(all.begin(), all.end(), r) == all.end()) {
          std::fprintf(stderr, "hjlint: unknown rule '%s'\n", r.c_str());
          Usage();
          return 2;
        }
      }
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::string("--baseline=").size());
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path =
          arg.substr(std::string("--write-baseline=").size());
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "hjlint: unknown flag '%s'\n", arg.c_str());
      Usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    Usage();
    return 2;
  }
  if (!baseline_path.empty() && !write_baseline_path.empty()) {
    std::fprintf(stderr,
                 "hjlint: --baseline and --write-baseline are exclusive\n");
    return 2;
  }

  std::vector<hashjoin::hjlint::Finding> findings =
      hashjoin::hjlint::LintTree(paths, root, rules);

  bool io_error = false;
  for (const auto& f : findings) {
    if (f.rule == "io") io_error = true;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "hjlint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << hashjoin::hjlint::FormatBaseline(findings);
    std::printf("hjlint: wrote %zu baseline finding%s to %s\n",
                findings.size(), findings.size() == 1 ? "" : "s",
                write_baseline_path.c_str());
    return io_error ? 2 : 0;
  }

  size_t suppressed = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "hjlint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    hashjoin::hjlint::BaselineApplied applied =
        hashjoin::hjlint::ApplyBaseline(findings, ss.str(), baseline_path);
    suppressed = applied.suppressed.size();
    PrintFindings(applied.suppressed, " (baseline)");
    findings = std::move(applied.active);
    findings.insert(findings.end(), applied.stale.begin(),
                    applied.stale.end());
  }

  PrintFindings(findings, "");

  if (!json_path.empty()) {
    hashjoin::Status s = hashjoin::WriteJsonFile(
        json_path, hashjoin::hjlint::FindingsToJson(findings));
    if (!s.ok()) {
      std::fprintf(stderr, "hjlint: %s\n", s.ToString().c_str());
      return 2;
    }
  }

  if (io_error) return 2;
  if (!findings.empty()) return 1;
  std::printf("hjlint: clean (%zu rule%s over %zu path%s%s)\n",
              rules.empty() ? hashjoin::hjlint::AllRules().size()
                            : rules.size(),
              (rules.empty() ? hashjoin::hjlint::AllRules().size()
                             : rules.size()) == 1
                  ? ""
                  : "s",
              paths.size(), paths.size() == 1 ? "" : "s",
              suppressed != 0 ? ", baseline-suppressed findings remain"
                              : "");
  return 0;
}
