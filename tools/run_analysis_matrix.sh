#!/usr/bin/env bash
# Builds and tests the analysis matrix defined in CMakePresets.json.
#
#   tools/run_analysis_matrix.sh                 # the full CI matrix
#   tools/run_analysis_matrix.sh --presets=asan,tsan
#   tools/run_analysis_matrix.sh --jobs=8
#
# Each preset configures into build-<preset>/, builds, and runs its
# labeled ctest subset (asan/ubsan -> faults|coro — the coroutine-frame
# tests run under both sanitizers, tsan -> threaded|sched, analysis ->
# lint|bench-smoke, debug -> everything). The script keeps
# going after a preset fails and exits nonzero if ANY step failed, so a
# CI job reports the whole matrix in one run.
#
# Sanitizer presets are for correctness only — never quote perf numbers
# from them (EXPERIMENTS.md).

set -u

cd "$(dirname "$0")/.."

PRESETS="analysis,debug,asan,ubsan,tsan"
JOBS="$(nproc 2>/dev/null || echo 2)"

for arg in "$@"; do
  case "$arg" in
    --presets=*) PRESETS="${arg#--presets=}" ;;
    --jobs=*)    JOBS="${arg#--jobs=}" ;;
    -h|--help)
      sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "run_analysis_matrix.sh: unknown argument '$arg'" >&2
      exit 2
      ;;
  esac
done

failed=()
passed=()
declare -A stage_result  # "<preset>:<stage>" -> PASS / FAIL / skip

run_step() {
  local preset="$1"; shift
  echo
  echo "=== [$preset] $* ==="
  if ! "$@"; then
    return 1
  fi
}

# The lint stage runs the hjlint binary directly (baseline-checked, so
# tracked debt is suppressed and stale entries fail) on presets whose
# ctest subset includes the lint label. It is redundant with the
# hjlint_tree test on purpose: the summary table gets a dedicated
# lint column even when a preset's ctest step dies earlier.
lint_stage() {
  local preset="$1"
  "build-$preset/tools/hjlint" \
      --baseline=tools/hjlint/baseline.txt src bench tools examples
}

IFS=',' read -r -a preset_list <<< "$PRESETS"
for preset in "${preset_list[@]}"; do
  ok=1
  for stage in configure build lint test; do
    stage_result["$preset:$stage"]="skip"
  done
  if run_step "$preset" cmake --preset "$preset"; then
    stage_result["$preset:configure"]="PASS"
  else
    stage_result["$preset:configure"]="FAIL"; ok=0
  fi
  if [ "$ok" = 1 ]; then
    if run_step "$preset" cmake --build --preset "$preset" -j "$JOBS"; then
      stage_result["$preset:build"]="PASS"
    else
      stage_result["$preset:build"]="FAIL"; ok=0
    fi
  fi
  if [ "$ok" = 1 ] && [ "$preset" = analysis ]; then
    if run_step "$preset" lint_stage "$preset"; then
      stage_result["$preset:lint"]="PASS"
    else
      stage_result["$preset:lint"]="FAIL"; ok=0
    fi
  fi
  if [ "$ok" = 1 ]; then
    if run_step "$preset" ctest --preset "$preset" -j "$JOBS"; then
      stage_result["$preset:test"]="PASS"
    else
      stage_result["$preset:test"]="FAIL"; ok=0
    fi
  fi
  if [ "$ok" = 1 ]; then
    passed+=("$preset")
  else
    failed+=("$preset")
  fi
done

echo
echo "=== analysis matrix summary ==="
printf '  %-10s %-10s %-10s %-10s %-10s %s\n' \
       preset configure build lint test result
for preset in "${preset_list[@]}"; do
  overall=PASS
  for p in ${failed[@]+"${failed[@]}"}; do
    [ "$p" = "$preset" ] && overall=FAIL
  done
  printf '  %-10s %-10s %-10s %-10s %-10s %s\n' "$preset" \
         "${stage_result[$preset:configure]}" \
         "${stage_result[$preset:build]}" \
         "${stage_result[$preset:lint]}" \
         "${stage_result[$preset:test]}" \
         "$overall"
done

if [ "${#failed[@]}" -ne 0 ]; then
  echo "analysis matrix: ${#failed[@]} preset(s) failed" >&2
  exit 1
fi
echo "analysis matrix: all ${#passed[@]} preset(s) passed"
