#!/usr/bin/env bash
# Builds and tests the analysis matrix defined in CMakePresets.json.
#
#   tools/run_analysis_matrix.sh                 # the full CI matrix
#   tools/run_analysis_matrix.sh --presets=asan,tsan
#   tools/run_analysis_matrix.sh --jobs=8
#
# Each preset configures into build-<preset>/, builds, and runs its
# labeled ctest subset (asan/ubsan -> faults|coro — the coroutine-frame
# tests run under both sanitizers, tsan -> threaded|sched, analysis ->
# lint|bench-smoke, debug -> everything). The script keeps
# going after a preset fails and exits nonzero if ANY step failed, so a
# CI job reports the whole matrix in one run.
#
# Sanitizer presets are for correctness only — never quote perf numbers
# from them (EXPERIMENTS.md).

set -u

cd "$(dirname "$0")/.."

PRESETS="analysis,debug,asan,ubsan,tsan"
JOBS="$(nproc 2>/dev/null || echo 2)"

for arg in "$@"; do
  case "$arg" in
    --presets=*) PRESETS="${arg#--presets=}" ;;
    --jobs=*)    JOBS="${arg#--jobs=}" ;;
    -h|--help)
      sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "run_analysis_matrix.sh: unknown argument '$arg'" >&2
      exit 2
      ;;
  esac
done

failed=()
passed=()

run_step() {
  local preset="$1"; shift
  echo
  echo "=== [$preset] $* ==="
  if ! "$@"; then
    return 1
  fi
}

IFS=',' read -r -a preset_list <<< "$PRESETS"
for preset in "${preset_list[@]}"; do
  ok=1
  run_step "$preset" cmake --preset "$preset" || ok=0
  if [ "$ok" = 1 ]; then
    run_step "$preset" cmake --build --preset "$preset" -j "$JOBS" || ok=0
  fi
  if [ "$ok" = 1 ]; then
    run_step "$preset" ctest --preset "$preset" -j "$JOBS" || ok=0
  fi
  if [ "$ok" = 1 ]; then
    passed+=("$preset")
  else
    failed+=("$preset")
  fi
done

echo
echo "=== analysis matrix summary ==="
for p in ${passed[@]+"${passed[@]}"}; do echo "  PASS $p"; done
for p in ${failed[@]+"${failed[@]}"}; do echo "  FAIL $p"; done

if [ "${#failed[@]}" -ne 0 ]; then
  echo "analysis matrix: ${#failed[@]} preset(s) failed" >&2
  exit 1
fi
echo "analysis matrix: all ${#passed[@]} preset(s) passed"
