#ifndef HASHJOIN_SIMCACHE_STATS_H_
#define HASHJOIN_SIMCACHE_STATS_H_

#include <cstdint>
#include <string>

namespace hashjoin {
namespace sim {

/// Cycle and event counters accumulated by MemorySim. The four cycle
/// buckets partition total simulated time exactly (an invariant the tests
/// assert), mirroring the paper's breakdown bars: busy time, data cache
/// stalls, TLB miss stalls, and other stalls (Figures 1, 11, 15).
struct SimStats {
  // --- cycle buckets ---
  uint64_t busy_cycles = 0;
  uint64_t dcache_stall_cycles = 0;
  uint64_t dtlb_stall_cycles = 0;
  uint64_t other_stall_cycles = 0;

  uint64_t TotalCycles() const {
    return busy_cycles + dcache_stall_cycles + dtlb_stall_cycles +
           other_stall_cycles;
  }

  // --- demand access classification (per cache line touched) ---
  uint64_t l1_hits = 0;        // plain L1 hits (line was already ready)
  uint64_t l2_hits = 0;        // L1 miss, L2 hit
  uint64_t full_misses = 0;    // missed both caches, full latency exposed
  uint64_t prefetch_hidden = 0;   // prefetched line, latency fully hidden
  uint64_t prefetch_partial = 0;  // prefetched line, arrived late
  uint64_t tlb_misses = 0;        // demand TLB misses (charged stalls)

  // --- prefetch traffic ---
  uint64_t prefetches_issued = 0;
  uint64_t prefetch_evicted_before_use = 0;  // conflict victims (Fig 13/17)

  // --- control flow ---
  uint64_t branch_mispredicts = 0;

  uint64_t DemandLineAccesses() const {
    return l1_hits + l2_hits + full_misses + prefetch_hidden +
           prefetch_partial;
  }

  SimStats& operator+=(const SimStats& o);

  /// Counter-wise difference (for windowed measurements: after - before).
  SimStats operator-(const SimStats& o) const;

  /// Multi-line human-readable report used by the bench binaries.
  std::string ToString() const;
};

}  // namespace sim
}  // namespace hashjoin

#endif  // HASHJOIN_SIMCACHE_STATS_H_
