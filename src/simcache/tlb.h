#ifndef HASHJOIN_SIMCACHE_TLB_H_
#define HASHJOIN_SIMCACHE_TLB_H_

#include <cstdint>
#include <vector>

namespace hashjoin {
namespace sim {

/// Fully-associative data TLB with true-LRU replacement (64 entries over
/// 8KB pages in the paper's Table 2). Hardware-walked: a miss costs a
/// fixed penalty and installs the entry; prefetch-induced fills install
/// the entry without charging a demand stall (TLB prefetching, paper §2).
class Tlb {
 public:
  Tlb(uint32_t entries, uint32_t page_size);

  /// True if the page containing addr is mapped; promotes to MRU.
  bool Lookup(uint64_t addr);

  /// Installs the page containing addr (evicting LRU if full).
  void Insert(uint64_t addr);

  /// Drops every entry.
  void Flush();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetStats();

 private:
  struct Entry {
    uint64_t page = 0;
    bool valid = false;
    uint64_t lru = 0;
  };

  uint64_t PageOf(uint64_t addr) const { return addr / page_size_; }

  uint32_t page_size_;
  uint64_t lru_clock_ = 0;
  std::vector<Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace sim
}  // namespace hashjoin

#endif  // HASHJOIN_SIMCACHE_TLB_H_
