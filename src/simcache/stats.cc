#include "simcache/stats.h"

#include <cstdio>

namespace hashjoin {
namespace sim {

SimStats& SimStats::operator+=(const SimStats& o) {
  busy_cycles += o.busy_cycles;
  dcache_stall_cycles += o.dcache_stall_cycles;
  dtlb_stall_cycles += o.dtlb_stall_cycles;
  other_stall_cycles += o.other_stall_cycles;
  l1_hits += o.l1_hits;
  l2_hits += o.l2_hits;
  full_misses += o.full_misses;
  prefetch_hidden += o.prefetch_hidden;
  prefetch_partial += o.prefetch_partial;
  tlb_misses += o.tlb_misses;
  prefetches_issued += o.prefetches_issued;
  prefetch_evicted_before_use += o.prefetch_evicted_before_use;
  branch_mispredicts += o.branch_mispredicts;
  return *this;
}

SimStats SimStats::operator-(const SimStats& o) const {
  SimStats r = *this;
  r.busy_cycles -= o.busy_cycles;
  r.dcache_stall_cycles -= o.dcache_stall_cycles;
  r.dtlb_stall_cycles -= o.dtlb_stall_cycles;
  r.other_stall_cycles -= o.other_stall_cycles;
  r.l1_hits -= o.l1_hits;
  r.l2_hits -= o.l2_hits;
  r.full_misses -= o.full_misses;
  r.prefetch_hidden -= o.prefetch_hidden;
  r.prefetch_partial -= o.prefetch_partial;
  r.tlb_misses -= o.tlb_misses;
  r.prefetches_issued -= o.prefetches_issued;
  r.prefetch_evicted_before_use -= o.prefetch_evicted_before_use;
  r.branch_mispredicts -= o.branch_mispredicts;
  return r;
}

std::string SimStats::ToString() const {
  char buf[1024];
  uint64_t total = TotalCycles();
  auto pct = [&](uint64_t v) {
    return total == 0 ? 0.0 : 100.0 * double(v) / double(total);
  };
  std::snprintf(
      buf, sizeof(buf),
      "cycles total=%llu busy=%llu (%.1f%%) dcache=%llu (%.1f%%) "
      "dtlb=%llu (%.1f%%) other=%llu (%.1f%%)\n"
      "lines: l1_hit=%llu l2_hit=%llu full_miss=%llu pf_hidden=%llu "
      "pf_partial=%llu tlb_miss=%llu\n"
      "prefetch: issued=%llu evicted_before_use=%llu "
      "branch_mispredicts=%llu",
      (unsigned long long)total, (unsigned long long)busy_cycles,
      pct(busy_cycles), (unsigned long long)dcache_stall_cycles,
      pct(dcache_stall_cycles), (unsigned long long)dtlb_stall_cycles,
      pct(dtlb_stall_cycles), (unsigned long long)other_stall_cycles,
      pct(other_stall_cycles), (unsigned long long)l1_hits,
      (unsigned long long)l2_hits, (unsigned long long)full_misses,
      (unsigned long long)prefetch_hidden,
      (unsigned long long)prefetch_partial, (unsigned long long)tlb_misses,
      (unsigned long long)prefetches_issued,
      (unsigned long long)prefetch_evicted_before_use,
      (unsigned long long)branch_mispredicts);
  return std::string(buf);
}

}  // namespace sim
}  // namespace hashjoin
