#ifndef HASHJOIN_SIMCACHE_CACHE_H_
#define HASHJOIN_SIMCACHE_CACHE_H_

#include <cstdint>
#include <vector>

namespace hashjoin {
namespace sim {

/// A set-associative cache model with true-LRU replacement. Tag-only:
/// it tracks which line addresses are resident, not their contents (the
/// kernels operate on real memory; the simulator only accounts time).
class SetAssocCache {
 public:
  /// Metadata carried per resident line; used to classify conflict
  /// evictions of prefetched-but-not-yet-referenced lines.
  struct LineInfo {
    uint64_t ready_time = 0;   // cycle when a prefetched line arrives
    bool prefetched = false;   // brought in by a prefetch
    bool referenced = false;   // demanded at least once since fill
  };

  /// Builds a cache of `size` bytes, `assoc` ways, `line_size`-byte lines.
  /// size must be divisible by assoc * line_size.
  SetAssocCache(uint32_t size, uint32_t assoc, uint32_t line_size);

  /// Looks up the line containing `line_addr` (already line-aligned).
  /// Returns the line's metadata and promotes it to MRU, or nullptr on
  /// miss. Does not fill.
  LineInfo* Lookup(uint64_t line_addr);

  /// Inserts a line (evicting LRU if needed) and returns its metadata.
  /// If an unreferenced prefetched line is evicted, bumps
  /// evicted_before_use().
  LineInfo* Insert(uint64_t line_addr);

  /// Invalidates every line (the Figure-18 interference model).
  void Flush();

  /// Evicts one specific line if present (used by tests).
  void Invalidate(uint64_t line_addr);

  /// Shifts every resident line's ready_time down by `base` (clamped at
  /// zero) — used when the simulator re-bases its clock.
  void RebaseTime(uint64_t base);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evicted_before_use() const { return evicted_before_use_; }
  uint32_t num_sets() const { return num_sets_; }
  uint32_t assoc() const { return assoc_; }

  void ResetStats();

 private:
  struct Way {
    uint64_t tag = 0;
    bool valid = false;
    uint64_t lru = 0;  // larger = more recently used
    LineInfo info;
  };

  uint32_t SetIndex(uint64_t line_addr) const {
    return static_cast<uint32_t>((line_addr / line_size_) % num_sets_);
  }

  uint32_t line_size_;
  uint32_t assoc_;
  uint32_t num_sets_;
  uint64_t lru_clock_ = 0;
  std::vector<Way> ways_;  // num_sets_ * assoc_, set-major

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evicted_before_use_ = 0;
};

}  // namespace sim
}  // namespace hashjoin

#endif  // HASHJOIN_SIMCACHE_CACHE_H_
