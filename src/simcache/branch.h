#ifndef HASHJOIN_SIMCACHE_BRANCH_H_
#define HASHJOIN_SIMCACHE_BRANCH_H_

#include <cstdint>
#include <vector>

namespace hashjoin {
namespace sim {

/// Table of 2-bit saturating counters, indexed by branch-site id. Stands
/// in for the paper's gshare-class predictor; only the mispredict *count*
/// feeds the model ("other stalls" in the breakdown figures).
class BranchPredictor {
 public:
  explicit BranchPredictor(uint32_t table_size = 4096)
      : counters_(table_size, 2) {}

  /// Records the outcome of branch site `site`; returns true if the
  /// predictor mispredicted it.
  bool Record(uint32_t site, bool taken) {
    uint8_t& c = counters_[site % counters_.size()];
    bool predicted_taken = c >= 2;
    if (taken && c < 3) ++c;
    if (!taken && c > 0) --c;
    return predicted_taken != taken;
  }

  uint64_t mispredicts() const { return mispredicts_; }

  /// Record() + mispredict accounting in one call.
  bool RecordCounting(uint32_t site, bool taken) {
    bool miss = Record(site, taken);
    if (miss) ++mispredicts_;
    return miss;
  }

 private:
  std::vector<uint8_t> counters_;
  uint64_t mispredicts_ = 0;
};

}  // namespace sim
}  // namespace hashjoin

#endif  // HASHJOIN_SIMCACHE_BRANCH_H_
