#include "simcache/cache.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace hashjoin {
namespace sim {

SetAssocCache::SetAssocCache(uint32_t size, uint32_t assoc,
                             uint32_t line_size)
    : line_size_(line_size), assoc_(assoc) {
  HJ_CHECK(size % (assoc * line_size) == 0)
      << "cache size must be a multiple of assoc * line_size";
  num_sets_ = size / (assoc * line_size);
  HJ_CHECK(IsPowerOfTwo(num_sets_));
  ways_.resize(static_cast<size_t>(num_sets_) * assoc_);
}

SetAssocCache::LineInfo* SetAssocCache::Lookup(uint64_t line_addr) {
  Way* set = &ways_[static_cast<size_t>(SetIndex(line_addr)) * assoc_];
  for (uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) {
      set[w].lru = ++lru_clock_;
      ++hits_;
      return &set[w].info;
    }
  }
  ++misses_;
  return nullptr;
}

SetAssocCache::LineInfo* SetAssocCache::Insert(uint64_t line_addr) {
  Way* set = &ways_[static_cast<size_t>(SetIndex(line_addr)) * assoc_];
  for (uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) {
      // Refill of a resident line: keep position, reset metadata.
      set[w].lru = ++lru_clock_;
      set[w].info = LineInfo{};
      return &set[w].info;
    }
  }
  // Prefer an invalid way; otherwise evict the least recently used.
  Way* victim = nullptr;
  for (uint32_t w = 0; w < assoc_; ++w) {
    if (!set[w].valid) {
      victim = &set[w];
      break;
    }
    if (victim == nullptr || set[w].lru < victim->lru) victim = &set[w];
  }
  HJ_DCHECK(victim != nullptr);
  if (victim->valid && victim->info.prefetched && !victim->info.referenced) {
    ++evicted_before_use_;
  }
  victim->valid = true;
  victim->tag = line_addr;
  victim->lru = ++lru_clock_;
  victim->info = LineInfo{};
  return &victim->info;
}

void SetAssocCache::Flush() {
  for (Way& w : ways_) w.valid = false;
}

void SetAssocCache::Invalidate(uint64_t line_addr) {
  Way* set = &ways_[static_cast<size_t>(SetIndex(line_addr)) * assoc_];
  for (uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == line_addr) set[w].valid = false;
  }
}

void SetAssocCache::RebaseTime(uint64_t base) {
  for (Way& w : ways_) {
    if (!w.valid) continue;
    w.info.ready_time =
        w.info.ready_time > base ? w.info.ready_time - base : 0;
  }
}

void SetAssocCache::ResetStats() {
  hits_ = 0;
  misses_ = 0;
  evicted_before_use_ = 0;
}

}  // namespace sim
}  // namespace hashjoin
