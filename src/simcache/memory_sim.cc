#include "simcache/memory_sim.h"

#include <algorithm>

#include "util/logging.h"

namespace hashjoin {
namespace sim {

MemorySim::MemorySim(const SimConfig& config)
    : config_(config),
      l1_(config.l1d_size, config.l1d_assoc, config.line_size),
      l2_(config.l2_size, config.l2_assoc, config.line_size),
      tlb_(config.dtlb_entries, config.page_size) {
  if (config_.flush_period_cycles > 0) {
    next_flush_ = config_.flush_period_cycles;
  }
}

void MemorySim::Busy(uint32_t cycles) {
  now_ += cycles;
  stats_.busy_cycles += cycles;
}

void MemorySim::StallUntil(uint64_t t, uint64_t* bucket) {
  if (t <= now_) return;
  *bucket += t - now_;
  now_ = t;
}

void MemorySim::MaybePeriodicFlush() {
  if (next_flush_ == 0) return;
  while (now_ >= next_flush_) {
    l1_.Flush();
    l2_.Flush();
    tlb_.Flush();
    next_flush_ += config_.flush_period_cycles;
  }
}

uint64_t MemorySim::IssueMemoryRequest() {
  uint64_t start = std::max(now_, next_bus_free_);
  // Retire handlers whose transfers completed before this request starts.
  while (!outstanding_.empty() && outstanding_.front() <= start) {
    outstanding_.pop_front();
  }
  // All handlers busy: the request waits for the earliest to retire.
  if (outstanding_.size() >= config_.miss_handlers) {
    start = std::max(start, outstanding_.front());
    outstanding_.pop_front();
  }
  uint64_t completion = start + config_.memory_latency;
  next_bus_free_ = start + config_.memory_bandwidth_gap;
  outstanding_.push_back(completion);
  return completion;
}

void MemorySim::AccessLine(uint64_t line_addr, bool write) {
  MaybePeriodicFlush();

  // Hardware-walked TLB; demand misses expose the walk latency.
  if (!tlb_.Lookup(line_addr)) {
    ++stats_.tlb_misses;
    StallUntil(now_ + config_.tlb_miss_latency, &stats_.dtlb_stall_cycles);
    tlb_.Insert(line_addr);
  }

  if (SetAssocCache::LineInfo* info = l1_.Lookup(line_addr)) {
    if (info->prefetched && !info->referenced) {
      // First demand touch of a prefetched line.
      if (info->ready_time > now_) {
        ++stats_.prefetch_partial;
        StallUntil(info->ready_time, &stats_.dcache_stall_cycles);
      } else {
        ++stats_.prefetch_hidden;
      }
    } else {
      if (info->ready_time > now_) {
        StallUntil(info->ready_time, &stats_.dcache_stall_cycles);
      }
      ++stats_.l1_hits;
    }
    info->referenced = true;
    return;
  }

  if (SetAssocCache::LineInfo* info2 = l2_.Lookup(line_addr)) {
    // L1 miss, L2 hit: expose L2 latency (plus any in-flight remainder if
    // the line was prefetched into L2 and is still on its way).
    uint64_t ready = std::max(now_ + config_.l2_hit_latency,
                              info2->ready_time + config_.l2_hit_latency);
    bool was_prefetch = info2->prefetched && !info2->referenced;
    info2->referenced = true;
    if (was_prefetch) {
      if (info2->ready_time > now_) {
        ++stats_.prefetch_partial;
      } else {
        ++stats_.l2_hits;
      }
    } else {
      ++stats_.l2_hits;
    }
    StallUntil(ready, &stats_.dcache_stall_cycles);
    SetAssocCache::LineInfo* fill = l1_.Insert(line_addr);
    fill->referenced = true;
    return;
  }

  // Full miss to main memory.
  ++stats_.full_misses;
  uint64_t completion = IssueMemoryRequest();
  StallUntil(completion, &stats_.dcache_stall_cycles);
  SetAssocCache::LineInfo* fill2 = l2_.Insert(line_addr);
  fill2->referenced = true;
  SetAssocCache::LineInfo* fill1 = l1_.Insert(line_addr);
  fill1->referenced = true;
}

void MemorySim::PrefetchLine(uint64_t line_addr) {
  MaybePeriodicFlush();
  ++stats_.prefetches_issued;
  stats_.busy_cycles += config_.cost_prefetch_issue;
  now_ += config_.cost_prefetch_issue;

  // TLB prefetch: install without a demand stall (paper §2, §7.1).
  if (!tlb_.Lookup(line_addr)) tlb_.Insert(line_addr);

  if (l1_.Lookup(line_addr) != nullptr) return;  // already resident

  if (SetAssocCache::LineInfo* info2 = l2_.Lookup(line_addr)) {
    // L2 -> L1 prefetch: arrives after the L2 hit latency.
    uint64_t ready = std::max(now_ + config_.l2_hit_latency,
                              info2->ready_time + config_.l2_hit_latency);
    SetAssocCache::LineInfo* fill = l1_.Insert(line_addr);
    fill->prefetched = true;
    fill->ready_time = ready;
    return;
  }

  uint64_t completion = IssueMemoryRequest();
  SetAssocCache::LineInfo* fill2 = l2_.Insert(line_addr);
  fill2->prefetched = true;
  fill2->ready_time = completion;
  SetAssocCache::LineInfo* fill1 = l1_.Insert(line_addr);
  fill1->prefetched = true;
  fill1->ready_time = completion;
}

void MemorySim::Access(const void* addr, size_t size, bool write) {
  uint64_t a = reinterpret_cast<uint64_t>(addr);
  uint64_t first = a / config_.line_size;
  uint64_t last = (a + (size == 0 ? 0 : size - 1)) / config_.line_size;
  for (uint64_t line = first; line <= last; ++line) {
    AccessLine(line * config_.line_size, write);
  }
}

void MemorySim::Prefetch(const void* addr, size_t size) {
  uint64_t a = reinterpret_cast<uint64_t>(addr);
  uint64_t first = a / config_.line_size;
  uint64_t last = (a + (size == 0 ? 0 : size - 1)) / config_.line_size;
  for (uint64_t line = first; line <= last; ++line) {
    PrefetchLine(line * config_.line_size);
  }
}

void MemorySim::Branch(uint32_t site, bool taken) {
  if (predictor_.RecordCounting(site, taken)) {
    ++stats_.branch_mispredicts;
    StallUntil(now_ + config_.branch_mispredict_penalty,
               &stats_.other_stall_cycles);
  }
}

SimStats MemorySim::stats() const {
  SimStats s = stats_;
  // L1 conflict victims: prefetched lines evicted before their first
  // demand touch (the paper's Figure 13/17 "cache conflict" pathology).
  s.prefetch_evicted_before_use = l1_.evicted_before_use();
  s.branch_mispredicts = predictor_.mispredicts();
  return s;
}

void MemorySim::ResetStats() {
  stats_ = SimStats{};
  l1_.ResetStats();
  l2_.ResetStats();
  tlb_.ResetStats();
  // Re-base time so the cycle buckets partition elapsed time from here.
  // Outstanding transfers and cache contents are preserved (including
  // in-flight prefetched lines, whose arrival times shift with the
  // clock).
  uint64_t base = now_;
  now_ = 0;
  next_bus_free_ = next_bus_free_ > base ? next_bus_free_ - base : 0;
  for (auto& c : outstanding_) c = c > base ? c - base : 0;
  l1_.RebaseTime(base);
  l2_.RebaseTime(base);
  if (next_flush_ > 0) {
    next_flush_ = next_flush_ > base ? next_flush_ - base
                                     : config_.flush_period_cycles;
  }
}

void MemorySim::FlushAll() {
  l1_.Flush();
  l2_.Flush();
  tlb_.Flush();
}

}  // namespace sim
}  // namespace hashjoin
