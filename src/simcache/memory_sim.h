#ifndef HASHJOIN_SIMCACHE_MEMORY_SIM_H_
#define HASHJOIN_SIMCACHE_MEMORY_SIM_H_

#include <cstdint>
#include <deque>

#include "simcache/branch.h"
#include "simcache/cache.h"
#include "simcache/sim_config.h"
#include "simcache/stats.h"
#include "simcache/tlb.h"

namespace hashjoin {
namespace sim {

/// Trace-driven model of the paper's simulated machine (Table 2): a
/// two-level data cache, hardware-walked DTLB, a limited pool of miss
/// handlers, bandwidth-limited main memory (full latency T, pipelined
/// gap Tnext), software prefetching with TLB prefetch, and an optional
/// periodic cache flusher (the Figure-18 interference model).
///
/// The join/partition kernels run for real on real data structures and
/// report their memory references and per-stage busy cycles here; the
/// simulator converts that event stream into the paper's cycle breakdown
/// (busy / data-cache stalls / TLB stalls / other stalls).
///
/// Substitution note (see DESIGN.md §3): this replaces the authors'
/// cycle-by-cycle out-of-order simulator. Out-of-order lookahead is not
/// modeled because — as the paper argues in §1.2 — a 128-entry reorder
/// buffer cannot hide 150-1000 cycle misses; what determines the figures
/// is exactly the cache/TLB/MSHR/bandwidth behaviour modeled here.
class MemorySim {
 public:
  explicit MemorySim(const SimConfig& config);

  MemorySim(const MemorySim&) = delete;
  MemorySim& operator=(const MemorySim&) = delete;

  /// Charges `cycles` of instruction execution (computation).
  void Busy(uint32_t cycles);

  /// A demand reference covering [addr, addr+size). Charges any cache,
  /// TLB, and memory stalls. `write` only affects stats today (the model
  /// is write-allocate with writeback traffic folded into Tnext).
  void Access(const void* addr, size_t size, bool write);

  /// Issues a software prefetch for every line of [addr, addr+size).
  /// Never dropped: if all miss handlers are busy the request queues
  /// (paper §7.1). Installs TLB entries without demand stalls.
  void Prefetch(const void* addr, size_t size = 1);

  /// Records the outcome of a conditional branch at site `site`; charges
  /// the misprediction penalty as "other stall" when the 2-bit predictor
  /// is wrong.
  void Branch(uint32_t site, bool taken);

  /// Current simulated time in cycles.
  uint64_t now() const { return now_; }

  const SimConfig& config() const { return config_; }

  /// Snapshot of the counters, with conflict-eviction counts folded in
  /// from the cache models.
  SimStats stats() const;

  /// Zeroes the counters but keeps cache/TLB contents (so a phase can be
  /// measured warm).
  void ResetStats();

  /// Folds externally accumulated counters into this simulator's totals.
  /// The parallel executor runs each worker thread against its own
  /// MemorySim (own caches, own clock) and merges the workers' stats()
  /// snapshots here, so windowed measurements (stats-after minus
  /// stats-before) on the main simulator include all worker activity.
  void AddStats(const SimStats& s) { stats_ += s; }

  /// Empties caches and TLB (cold start).
  void FlushAll();

 private:
  void AccessLine(uint64_t line_addr, bool write);
  void PrefetchLine(uint64_t line_addr);

  /// Books a main-memory transfer respecting the MSHR limit and the
  /// bandwidth gap; returns its completion cycle.
  uint64_t IssueMemoryRequest();

  /// Advances simulated time to `t`, charging the delta to *bucket.
  void StallUntil(uint64_t t, uint64_t* bucket);

  void MaybePeriodicFlush();

  SimConfig config_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  Tlb tlb_;
  BranchPredictor predictor_;
  SimStats stats_;

  uint64_t now_ = 0;
  uint64_t next_bus_free_ = 0;
  uint64_t next_flush_ = 0;
  std::deque<uint64_t> outstanding_;  // completion times, nondecreasing
};

}  // namespace sim
}  // namespace hashjoin

#endif  // HASHJOIN_SIMCACHE_MEMORY_SIM_H_
