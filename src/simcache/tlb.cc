#include "simcache/tlb.h"

#include "util/logging.h"

namespace hashjoin {
namespace sim {

Tlb::Tlb(uint32_t entries, uint32_t page_size) : page_size_(page_size) {
  HJ_CHECK(entries > 0);
  HJ_CHECK(page_size > 0);
  entries_.resize(entries);
}

bool Tlb::Lookup(uint64_t addr) {
  uint64_t page = PageOf(addr);
  for (Entry& e : entries_) {
    if (e.valid && e.page == page) {
      e.lru = ++lru_clock_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

void Tlb::Insert(uint64_t addr) {
  uint64_t page = PageOf(addr);
  for (Entry& e : entries_) {
    if (e.valid && e.page == page) {
      e.lru = ++lru_clock_;
      return;
    }
  }
  Entry* victim = nullptr;
  for (Entry& e : entries_) {
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (victim == nullptr || e.lru < victim->lru) victim = &e;
  }
  victim->valid = true;
  victim->page = page;
  victim->lru = ++lru_clock_;
}

void Tlb::Flush() {
  for (Entry& e : entries_) e.valid = false;
}

void Tlb::ResetStats() {
  hits_ = 0;
  misses_ = 0;
}

}  // namespace sim
}  // namespace hashjoin
