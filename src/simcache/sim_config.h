#ifndef HASHJOIN_SIMCACHE_SIM_CONFIG_H_
#define HASHJOIN_SIMCACHE_SIM_CONFIG_H_

#include <cstdint>

namespace hashjoin {
namespace sim {

/// Parameters of the simulated memory hierarchy. Defaults reproduce
/// Table 2 of the paper (Compaq ES40-based hierarchy at 1 GHz): 64-byte
/// lines, 64KB 4-way L1D, 1MB unified L2, 64-entry fully-associative DTLB
/// over 8KB pages, 32 outstanding data misses, and a 150-cycle full memory
/// latency T that the paper also sweeps to 1000.
struct SimConfig {
  // --- cache geometry ---
  uint32_t line_size = 64;
  uint32_t l1d_size = 64 * 1024;
  uint32_t l1d_assoc = 4;
  uint32_t l2_size = 1024 * 1024;
  uint32_t l2_assoc = 8;

  // --- TLB ---
  uint32_t dtlb_entries = 64;
  uint32_t page_size = 8 * 1024;
  /// Hardware page-walk latency charged on a demand TLB miss. The paper
  /// models hardware TLB miss handling; prefetch-induced TLB misses are
  /// treated as normal misses and overlap with computation.
  uint32_t tlb_miss_latency = 30;

  // --- latencies (cycles at the simulated 1 GHz clock) ---
  /// Full latency of a cache miss to main memory (T in the paper).
  uint32_t memory_latency = 150;
  /// Additional latency of a pipelined cache miss (Tnext = 1/bandwidth).
  uint32_t memory_bandwidth_gap = 10;
  /// L2 hit latency for lines missing L1 but hitting L2.
  uint32_t l2_hit_latency = 15;

  // --- parallelism limits ---
  /// Outstanding data-miss handlers (MSHRs); issue stalls when all busy.
  /// The simulator, like the paper's, never drops prefetches.
  uint32_t miss_handlers = 32;

  // --- interference ---
  /// If non-zero, all caches and the TLB are flushed every this many
  /// cycles (the paper's worst-case multiprogramming interference,
  /// Figure 18; 2ms-10ms at 1GHz = 2e6-1e7 cycles).
  uint64_t flush_period_cycles = 0;

  // --- branch misprediction ---
  /// Penalty charged (as "other stall") when the simulated 2-bit branch
  /// predictor mispredicts a conditional the kernels report.
  uint32_t branch_mispredict_penalty = 7;

  // --- per-operation busy costs charged by the kernels (cycles) ---
  // These stand in for the instruction execution the paper's cycle-level
  // simulator ran natively; values chosen so a probe's compute stages are
  // tens of cycles, far below T, matching the paper's stall-dominated
  // baseline breakdowns (Figure 1).
  uint32_t cost_hash = 40;           // hash-code computation (code 0)
  uint32_t cost_visit_header = 20;   // bucket-header inspection
  uint32_t cost_visit_cell = 14;     // per hash-cell comparison
  uint32_t cost_key_compare = 20;    // full key comparison on hash match
  uint32_t cost_tuple_copy_per_line = 12;  // copying one line of tuple data
  uint32_t cost_slot_bookkeeping = 12;     // page-slot / buffer accounting
  uint32_t cost_prefetch_issue = 1;  // instruction overhead of a prefetch
  uint32_t cost_stage_overhead_gp = 5;    // group-prefetch state handling
  uint32_t cost_stage_overhead_spp = 13;  // SPP circular-index/bookkeeping
  /// Per-resume cost of the coroutine policy: scheduler dispatch plus the
  /// frame save/restore a co_await suspension implies. Charged once per
  /// coroutine resume, i.e. per stage executed — heavier than GP's
  /// strip-mined loop bookkeeping, lighter than the paper's estimate for
  /// a full function call, matching AMAC-style implementations.
  uint32_t cost_stage_overhead_coro = 9;
};

}  // namespace sim
}  // namespace hashjoin

#endif  // HASHJOIN_SIMCACHE_SIM_CONFIG_H_
