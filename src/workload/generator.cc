#include "workload/generator.h"

#include <cstring>
#include <vector>

#include "hash/hash_func.h"
#include "util/logging.h"
#include "util/random.h"

namespace hashjoin {

namespace {

/// Writes one key+payload tuple into `dst`. Payload bytes are a cheap
/// deterministic function of the key so tests can validate copies.
void FillTuple(uint8_t* dst, uint32_t key, uint32_t tuple_size) {
  std::memcpy(dst, &key, 4);
  uint8_t b = uint8_t(key * 131u + 17u);
  std::memset(dst + 4, b, tuple_size - 4);
}

}  // namespace

uint64_t WorkloadSpec::NumProbeTuples() const {
  double matched_build = double(num_build_tuples) * build_match_fraction;
  double matched_probe = matched_build * matches_per_build;
  if (probe_match_fraction <= 0) return uint64_t(matched_probe);
  return uint64_t(matched_probe / probe_match_fraction + 0.5);
}

JoinWorkload GenerateJoinWorkload(const WorkloadSpec& spec) {
  HJ_CHECK(spec.tuple_size >= 8);
  HJ_CHECK(spec.num_build_tuples > 0);
  HJ_CHECK(spec.build_match_fraction >= 0 && spec.build_match_fraction <= 1);
  HJ_CHECK(spec.probe_match_fraction > 0 && spec.probe_match_fraction <= 1);

  Rng rng(spec.seed);
  Schema schema = Schema::KeyPayload(spec.tuple_size);
  JoinWorkload w{Relation(schema), Relation(schema)};

  // Build keys are 1..N (unique). Key 0 and keys > N never match.
  uint64_t n_build = spec.num_build_tuples;
  std::vector<uint32_t> build_keys(n_build);
  for (uint64_t i = 0; i < n_build; ++i) {
    build_keys[i] = uint32_t(i + 1);
  }
  rng.Shuffle(&build_keys);
  for (uint32_t key : build_keys) {
    uint8_t* dst =
        w.build.AllocAppend(uint16_t(spec.tuple_size), HashKey32(key));
    FillTuple(dst, key, spec.tuple_size);
  }

  // Matched probe keys: matches_per_build copies of each matching build
  // key (fractional parts handled by an extra copy for a prefix).
  uint64_t matched_build =
      uint64_t(double(n_build) * spec.build_match_fraction + 0.5);
  std::vector<uint32_t> probe_keys;
  uint64_t whole = uint64_t(spec.matches_per_build);
  double frac = spec.matches_per_build - double(whole);
  for (uint64_t i = 0; i < matched_build; ++i) {
    uint32_t key = uint32_t(i + 1);
    uint64_t copies = whole + (double(i) / double(matched_build) < frac ? 1 : 0);
    for (uint64_t c = 0; c < copies; ++c) probe_keys.push_back(key);
  }
  w.expected_matches = probe_keys.size();

  // Unmatched probe tuples: keys beyond the build key range.
  uint64_t n_probe = spec.NumProbeTuples();
  uint32_t next_nonmatch = uint32_t(n_build + 1);
  while (probe_keys.size() < n_probe) {
    probe_keys.push_back(next_nonmatch++);
  }
  rng.Shuffle(&probe_keys);
  for (uint32_t key : probe_keys) {
    uint8_t* dst =
        w.probe.AllocAppend(uint16_t(spec.tuple_size), HashKey32(key));
    FillTuple(dst, key, spec.tuple_size);
  }
  return w;
}

Relation GenerateSourceRelation(uint64_t num_tuples, uint32_t tuple_size,
                                uint64_t seed) {
  HJ_CHECK(tuple_size >= 8);
  Rng rng(seed);
  Relation rel(Schema::KeyPayload(tuple_size));
  for (uint64_t i = 0; i < num_tuples; ++i) {
    uint32_t key = uint32_t(rng.Next());
    uint8_t* dst = rel.AllocAppend(uint16_t(tuple_size), HashKey32(key));
    FillTuple(dst, key, tuple_size);
  }
  return rel;
}

Relation GenerateSkewedRelation(uint64_t num_tuples, uint32_t tuple_size,
                                double zipf_theta,
                                uint64_t num_distinct_keys, uint64_t seed) {
  HJ_CHECK(tuple_size >= 8);
  HJ_CHECK(num_distinct_keys > 0);
  ZipfGenerator zipf(num_distinct_keys, zipf_theta, seed);
  Relation rel(Schema::KeyPayload(tuple_size));
  for (uint64_t i = 0; i < num_tuples; ++i) {
    uint32_t key = uint32_t(zipf.Next() + 1);
    uint8_t* dst = rel.AllocAppend(uint16_t(tuple_size), HashKey32(key));
    FillTuple(dst, key, tuple_size);
  }
  return rel;
}

}  // namespace hashjoin
