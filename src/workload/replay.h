#ifndef HASHJOIN_WORKLOAD_REPLAY_H_
#define HASHJOIN_WORKLOAD_REPLAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/relation.h"
#include "workload/generator.h"

namespace hashjoin {

/// Parameters of a cross-query replay trace: a catalog of join tables
/// whose popularity follows a Zipf distribution (table 0 hottest), a
/// stream of probe queries against them, and a configurable rate of
/// updates that bump a table's version — invalidating any cached hash
/// table built from the previous version. This is the service-level
/// workload the hash-table reuse cache is designed for: hot tables are
/// rebuilt once and probed many times, cold tables churn through the
/// cache, and updates bound how stale a cached build may be.
struct ReplaySpec {
  uint32_t num_tables = 16;
  uint64_t build_tuples_per_table = 20000;
  /// Probe tuples issued by each query (one query = one probe relation
  /// joined against its table's current build relation).
  uint64_t probe_tuples_per_query = 4000;
  uint32_t tuple_size = 64;  // bytes, both sides, incl. the 4-byte key
  /// Zipf skew of table popularity; 0 = uniform, 1.0 = the classic
  /// heavy-hitter curve where reuse pays most.
  double zipf_theta = 1.0;
  /// Probability that a query is preceded by an update to its table
  /// (version bump + cache invalidation). 0 = read-only replay.
  double update_rate = 0.0;
  uint32_t num_queries = 200;
  uint64_t seed = 42;
};

/// One step of the replay trace: run a probe query against `table`,
/// after first applying an update to it when `is_update` is set.
struct ReplayOp {
  uint32_t table = 0;
  bool is_update = false;
};

/// Deterministically generates the trace (same spec -> same trace):
/// table choice by Zipf popularity, updates by a Bernoulli draw.
std::vector<ReplayOp> GenerateReplayTrace(const ReplaySpec& spec);

/// The versioned table catalog a replay runs against. Each table owns a
/// build relation plus a matching probe relation (with the exact match
/// count a correct join must produce); Update() regenerates the build
/// side under a new seed and bumps the version, so cache keys formed
/// from (relation_id(), version(), fingerprint) naturally miss after an
/// update. Single-threaded: the replay driver owns it.
class ReplayCatalog {
 public:
  explicit ReplayCatalog(const ReplaySpec& spec);

  uint32_t num_tables() const {
    return static_cast<uint32_t>(tables_.size());
  }

  /// Stable catalog-wide relation id of table `t` (never reused).
  uint64_t relation_id(uint32_t t) const { return tables_[t].id; }

  /// Current version of table `t`; bumped by Update().
  uint64_t version(uint32_t t) const { return tables_[t].version; }

  /// Current build side of table `t`. The returned pointer stays valid
  /// across Update() for anyone who copied the shared_ptr (a cached
  /// hash table keeps the version it was built from alive).
  const std::shared_ptr<const Relation>& build(uint32_t t) const {
    return tables_[t].build;
  }

  /// The probe relation queries against table `t` use, and the exact
  /// join output count it must produce against the current build side.
  /// Shared ownership for the same reason as build(): a query admitted
  /// before an Update() finishes against the inputs it captured.
  const std::shared_ptr<const Relation>& probe(uint32_t t) const {
    return tables_[t].probe;
  }
  uint64_t expected_matches(uint32_t t) const {
    return tables_[t].expected_matches;
  }

  /// Applies an update to table `t`: regenerates the build side (same
  /// shape, different seed — key set and payloads change), regenerates
  /// the matching probe side, and bumps the version. The caller is
  /// responsible for invalidating any cache keyed on the old version.
  void Update(uint32_t t);

  uint64_t total_updates() const { return total_updates_; }

 private:
  struct Table {
    uint64_t id = 0;
    uint64_t version = 0;
    uint64_t seed = 0;
    std::shared_ptr<const Relation> build;
    std::shared_ptr<const Relation> probe;
    uint64_t expected_matches = 0;
  };

  void Regenerate(Table* table);

  ReplaySpec spec_;
  std::vector<Table> tables_;
  uint64_t total_updates_ = 0;
};

}  // namespace hashjoin

#endif  // HASHJOIN_WORKLOAD_REPLAY_H_
