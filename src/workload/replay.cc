#include "workload/replay.h"

#include <utility>

#include "util/logging.h"
#include "util/random.h"

namespace hashjoin {

std::vector<ReplayOp> GenerateReplayTrace(const ReplaySpec& spec) {
  HJ_CHECK(spec.num_tables > 0) << "replay needs at least one table";
  // Separate streams for table choice and the update draw so changing
  // update_rate does not reshuffle which tables the queries hit.
  ZipfGenerator popularity(spec.num_tables, spec.zipf_theta, spec.seed);
  Rng update_rng(spec.seed + 0x9e3779b97f4a7c15ull);
  std::vector<ReplayOp> trace;
  trace.reserve(spec.num_queries);
  for (uint32_t q = 0; q < spec.num_queries; ++q) {
    ReplayOp op;
    op.table = static_cast<uint32_t>(popularity.Next());
    op.is_update = spec.update_rate > 0 &&
                   update_rng.NextBool(spec.update_rate);
    trace.push_back(op);
  }
  return trace;
}

ReplayCatalog::ReplayCatalog(const ReplaySpec& spec) : spec_(spec) {
  HJ_CHECK(spec_.num_tables > 0) << "replay needs at least one table";
  tables_.resize(spec_.num_tables);
  for (uint32_t t = 0; t < spec_.num_tables; ++t) {
    Table& table = tables_[t];
    // Ids start at 1: 0 reads as "no relation" in cache keys and logs.
    table.id = t + 1;
    table.version = 1;
    table.seed = spec_.seed * 1000003ull + t;
    Regenerate(&table);
  }
}

void ReplayCatalog::Regenerate(Table* table) {
  WorkloadSpec wspec;
  wspec.tuple_size = spec_.tuple_size;
  wspec.num_build_tuples = spec_.build_tuples_per_table;
  // Size the probe side directly: every probe tuple matches, and
  // matches_per_build scales probe count relative to build count.
  wspec.build_match_fraction = 1.0;
  wspec.probe_match_fraction = 1.0;
  wspec.matches_per_build = spec_.build_tuples_per_table > 0
                                ? double(spec_.probe_tuples_per_query) /
                                      double(spec_.build_tuples_per_table)
                                : 1.0;
  wspec.seed = table->seed + table->version * 0x100000001b3ull;
  JoinWorkload w = GenerateJoinWorkload(wspec);
  table->build = std::make_shared<const Relation>(std::move(w.build));
  table->probe = std::make_shared<const Relation>(std::move(w.probe));
  table->expected_matches = w.expected_matches;
}

void ReplayCatalog::Update(uint32_t t) {
  HJ_CHECK(t < tables_.size()) << "table index out of range";
  Table& table = tables_[t];
  ++table.version;
  ++total_updates_;
  Regenerate(&table);
}

}  // namespace hashjoin
