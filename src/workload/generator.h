#ifndef HASHJOIN_WORKLOAD_GENERATOR_H_
#define HASHJOIN_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <utility>

#include "storage/relation.h"

namespace hashjoin {

/// Workload parameters from the paper's experiment design (§7.1): build
/// and probe relations share a schema of a 4-byte join key plus a
/// fixed-length payload; a build tuple may match zero or more probe
/// tuples; a probe tuple matches zero or one build tuple.
struct WorkloadSpec {
  uint32_t tuple_size = 100;       // bytes, including the 4-byte key
  uint64_t num_build_tuples = 100000;

  /// Probe tuples matching each matching build tuple (Figure 10(b)
  /// sweeps 1-4; the pivot point is 2).
  double matches_per_build = 2.0;

  /// Fraction of build tuples that have at least one match.
  double build_match_fraction = 1.0;

  /// Fraction of probe tuples that have a match (Figure 10(c) sweeps
  /// 50%-100%).
  double probe_match_fraction = 1.0;

  uint64_t seed = 1;

  /// Derived: probe tuple count implied by the match parameters.
  uint64_t NumProbeTuples() const;
};

/// Generated join inputs. Every matched probe tuple's key equals exactly
/// one build tuple's key; build keys are unique. expected_matches is the
/// exact number of (probe, build) output pairs a correct join must emit —
/// tests and benches verify against it.
struct JoinWorkload {
  Relation build;
  Relation probe;
  uint64_t expected_matches = 0;
};

/// Generates the §7.1 workload. Probe tuples are emitted in shuffled key
/// order so hash-table visits are random (no artificial locality).
JoinWorkload GenerateJoinWorkload(const WorkloadSpec& spec);

/// Generates a single relation with uniformly random keys — the partition
/// phase input (Figure 14: 10 million 100-byte tuples, scaled by callers).
Relation GenerateSourceRelation(uint64_t num_tuples, uint32_t tuple_size,
                                uint64_t seed = 7);

/// Generates a relation whose keys follow a Zipf distribution — stresses
/// the read-write conflict protocols (busy buckets, waiting queues) that
/// uniform keys rarely trigger.
Relation GenerateSkewedRelation(uint64_t num_tuples, uint32_t tuple_size,
                                double zipf_theta, uint64_t num_distinct_keys,
                                uint64_t seed = 11);

}  // namespace hashjoin

#endif  // HASHJOIN_WORKLOAD_GENERATOR_H_
