#include "cache/hash_table_cache.h"

#include <algorithm>
#include <utility>

#include "model/cost_model.h"
#include "util/logging.h"

namespace hashjoin {
namespace cache {

namespace {

uint64_t Mix64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

uint64_t SchemaFingerprint(const Schema& schema) {
  uint64_t h = 0x5ca1ab1e00000000ULL ^ schema.num_attrs();
  for (size_t i = 0; i < schema.num_attrs(); ++i) {
    const Attribute& a = schema.attr(i);
    h = Mix64(h, uint64_t(a.type));
    h = Mix64(h, a.length);
    h = Mix64(h, schema.offset(i));
  }
  h = Mix64(h, schema.fixed_size());
  return h;
}

HashTableCache::HashTableCache(uint64_t capacity_bytes)
    : static_capacity_(capacity_bytes) {}

HashTableCache::~HashTableCache() {
  MutexLock lock(mu_);
  for (const auto& [key, entry] : entries_) {
    HJ_CHECK(entry->pins == 0)
        << "HashTableCache destroyed with a pinned table";
  }
}

uint64_t HashTableCache::LiveCapacity() const {
  // Snapshot the closure under mu_, invoke the copy outside: the
  // closure belongs to a broker grant and may take broker/grant locks,
  // so calling it under mu_ would nest foreign mutexes inside ours
  // (hjlint: callback-under-lock).
  std::function<uint64_t()> fn;
  {
    MutexLock lock(mu_);
    if (!capacity_fn_) return static_capacity_;
    fn = capacity_fn_;
  }
  return fn();
}

uint64_t HashTableCache::capacity_bytes() const { return LiveCapacity(); }

uint64_t HashTableCache::RevokeEpoch() const {
  MutexLock lock(mu_);
  return revoke_epoch_;
}

uint64_t HashTableCache::ClampToRevokesLocked(uint64_t sampled_cap,
                                              uint64_t epoch_before) const {
  // A revoke that fired inside the caller's epoch→sample→lock window
  // makes the sample stale on the high side; the revoke's recorded
  // target is the authoritative bound. Samples with an unchanged epoch
  // post-date every revoke and need no clamp.
  if (revoke_epoch_ != epoch_before) {
    return std::min(sampled_cap, last_revoke_cap_);
  }
  return sampled_cap;
}

PinnedTable HashTableCache::Acquire(const CacheKey& key) {
  return PinnedTable(this, Pin(key));
}

const CachedTable* HashTableCache::Pin(const CacheKey& key) {
  MutexLock lock(mu_);
  ++stats_.lookups;
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second->doomed) {
    ++stats_.misses;
    return nullptr;
  }
  CachedTable* e = it->second.get();
  ++stats_.hits;
  ++e->pins;
  // GreedyDual refresh: a hit re-floats the entry above the current
  // inflation floor by its benefit density.
  e->priority =
      inflation_ +
      e->rebuild_cycles / double(std::max<uint64_t>(1, e->charged_bytes));
  return e;
}

void HashTableCache::Unpin(const CachedTable* entry) {
  const uint64_t epoch = RevokeEpoch();
  const uint64_t sampled = LiveCapacity();
  MutexLock lock(mu_);
  const uint64_t cap = ClampToRevokesLocked(sampled, epoch);
  HJ_CHECK(entry != nullptr) << "Unpin(nullptr)";
  auto it = entries_.find(entry->key);
  HJ_CHECK(it != entries_.end() && it->second.get() == entry)
      << "Unpin of a table this cache does not hold";
  CachedTable* e = it->second.get();
  HJ_CHECK(e->pins > 0) << "Unpin without a matching Pin";
  --e->pins;
  if (e->pins == 0 && e->doomed) {
    EraseLocked(e->key);
  }
  // A revoke that could not fully apply (entries were pinned) finishes
  // here, as soon as pins drain. `cap` is the unlocked sample clamped
  // against any revoke that raced it, so the last Unpin can neither
  // skip the deferred shrink nor falsely clear the pending flag.
  if (charged_bytes_ > cap) {
    ShrinkLocked(cap, revoke_shrink_pending_);
  } else {
    revoke_shrink_pending_ = false;
  }
}

bool HashTableCache::Offer(const CacheKey& key,
                           std::shared_ptr<const Relation> build,
                           std::unique_ptr<HashTable> table,
                           double rebuild_cycles) {
  HJ_CHECK(build != nullptr && table != nullptr)
      << "Offer needs a build relation and a table";
  const uint64_t bytes =
      build->data_bytes() + HashTable::EstimateBytes(table->num_tuples());
  if (rebuild_cycles <= 0) {
    rebuild_cycles = EstimateRebuildCycles(table->num_tuples());
  }
  const uint64_t epoch = RevokeEpoch();
  const uint64_t sampled = LiveCapacity();
  MutexLock lock(mu_);
  // Admit against the post-revoke budget even when a revoke raced the
  // unlocked sample — otherwise the insert could push charged_bytes_
  // over the revoked grant with no pending flag left to correct it.
  const uint64_t cap = ClampToRevokesLocked(sampled, epoch);
  if (bytes > cap || entries_.count(key) != 0) {
    ++stats_.rejected_inserts;
    return false;
  }
  while (charged_bytes_ + bytes > cap) {
    if (!EvictOneLocked(/*from_revoke=*/false)) {
      // Everything resident is pinned; dropping the offer beats evicting
      // a table someone is probing right now.
      ++stats_.rejected_inserts;
      return false;
    }
  }
  auto entry = std::make_unique<CachedTable>();
  entry->key = key;
  entry->build = std::move(build);
  entry->table = std::move(table);
  entry->charged_bytes = bytes;
  entry->rebuild_cycles = rebuild_cycles;
  entry->priority =
      inflation_ + rebuild_cycles / double(std::max<uint64_t>(1, bytes));
  charged_bytes_ += bytes;
  ++stats_.inserts;
  entries_.emplace(key, std::move(entry));
  return true;
}

uint64_t HashTableCache::Invalidate(uint64_t relation_id) {
  MutexLock lock(mu_);
  uint64_t affected = 0;
  std::vector<CacheKey> dead;
  for (auto& [key, entry] : entries_) {
    if (key.relation_id != relation_id || entry->doomed) continue;
    ++affected;
    if (entry->pins > 0) {
      entry->doomed = true;  // freed at the last Unpin
    } else {
      dead.push_back(key);
    }
  }
  for (const CacheKey& key : dead) EraseLocked(key);
  stats_.invalidations += affected;
  return affected;
}

void HashTableCache::SetCapacityFn(std::function<uint64_t()> fn) {
  // Sample the incoming closure before locking — never invoke a
  // caller-supplied closure under mu_.
  const uint64_t epoch = RevokeEpoch();
  uint64_t cap = 0;
  const bool have_fn = bool(fn);
  if (have_fn) cap = fn();
  MutexLock lock(mu_);
  capacity_fn_ = std::move(fn);
  if (have_fn) {
    ShrinkLocked(ClampToRevokesLocked(cap, epoch), /*from_revoke=*/false);
  }
}

void HashTableCache::OnRevoke(uint64_t new_capacity_bytes) {
  const uint64_t epoch = RevokeEpoch();
  const uint64_t live = LiveCapacity();
  MutexLock lock(mu_);
  // The grant's own bytes() already reflects the cut; min against the
  // live sample (itself clamped against any revoke racing THIS one, so
  // concurrent notifications min-combine whichever order they land) in
  // case notifications race out of order. With no live closure the
  // shrunken budget must persist in the static capacity, or the
  // deferred shrink at Unpin sees the old value and pinned entries
  // survive the revoke forever.
  const uint64_t cap =
      std::min(new_capacity_bytes, ClampToRevokesLocked(live, epoch));
  if (!capacity_fn_) {
    static_capacity_ = std::min(static_capacity_, new_capacity_bytes);
  }
  // Record the target under mu_: Unpin/Offer sample capacity outside
  // the lock, so a revoke landing inside their sample window would
  // otherwise be invisible to them until unrelated later activity.
  ++revoke_epoch_;
  last_revoke_cap_ = cap;
  ShrinkLocked(cap, /*from_revoke=*/true);
}

bool HashTableCache::EvictOneLocked(bool from_revoke) {
  CachedTable* victim = nullptr;
  for (auto& [key, entry] : entries_) {
    if (entry->pins > 0) continue;
    if (victim == nullptr || entry->priority < victim->priority) {
      victim = entry.get();
    }
  }
  if (victim == nullptr) return false;
  inflation_ = std::max(inflation_, victim->priority);
  ++stats_.evictions;
  if (from_revoke) stats_.revoked_bytes += victim->charged_bytes;
  EraseLocked(victim->key);
  return true;
}

void HashTableCache::ShrinkLocked(uint64_t capacity, bool from_revoke) {
  while (charged_bytes_ > capacity) {
    if (!EvictOneLocked(from_revoke)) {
      // Pinned entries block the rest of the shrink; Unpin finishes it.
      if (from_revoke) revoke_shrink_pending_ = true;
      return;
    }
  }
  if (from_revoke) revoke_shrink_pending_ = false;
}

void HashTableCache::EraseLocked(const CacheKey& key) {
  auto it = entries_.find(key);
  HJ_CHECK(it != entries_.end()) << "erase of an absent cache entry";
  charged_bytes_ -= it->second->charged_bytes;
  entries_.erase(it);
}

CacheStats HashTableCache::stats() const {
  MutexLock lock(mu_);
  CacheStats s = stats_;
  s.charged_bytes = charged_bytes_;
  s.entries = entries_.size();
  s.pinned_entries = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry->pins > 0) ++s.pinned_entries;
  }
  return s;
}

double HashTableCache::EstimateRebuildCycles(uint64_t tuples) {
  // Build-loop stage costs in the shape the cost model expects: compute
  // hash / visit bucket header / append cell — the same three-stage
  // split the build kernels interleave. Absolute values matter less
  // than proportionality across table sizes; the eviction policy only
  // compares entries against each other.
  model::CodeCosts costs{{25, 15, 10}};
  model::MachineParams machine;
  model::ParamChoice choice = model::ChooseParams(costs, machine);
  return double(model::GroupPrefetchModel::CriticalPathCycles(
      costs, machine, choice.group_size, tuples));
}

}  // namespace cache
}  // namespace hashjoin
