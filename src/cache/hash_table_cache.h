#ifndef HASHJOIN_CACHE_HASH_TABLE_CACHE_H_
#define HASHJOIN_CACHE_HASH_TABLE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hash/hash_table.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hashjoin {
namespace cache {

/// Identity of a cached build-side hash table. Two queries may reuse one
/// table only if all three components agree:
///  - `relation_id`: the catalog identity of the build relation,
///  - `version`: bumped by every update to that relation — an update
///    invalidates all older versions,
///  - `fingerprint`: a hash of the build-side schema and any predicate
///    applied before the build, so a filtered build never masquerades as
///    the unfiltered one (SchemaFingerprint() covers the schema part;
///    callers fold predicate digests in themselves).
struct CacheKey {
  uint64_t relation_id = 0;
  uint64_t version = 0;
  uint64_t fingerprint = 0;

  bool operator==(const CacheKey& o) const {
    return relation_id == o.relation_id && version == o.version &&
           fingerprint == o.fingerprint;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    uint64_t h = k.relation_id * 0x9e3779b97f4a7c15ULL;
    h ^= k.version + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= k.fingerprint + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return size_t(h);
  }
};

/// Fingerprint of a build-side tuple layout, for CacheKey::fingerprint.
/// Covers attribute count, types, lengths, and offsets — two schemas
/// that would place or interpret any byte differently fingerprint
/// differently.
uint64_t SchemaFingerprint(const Schema& schema);

/// One cached table: the hash table plus shared ownership of the build
/// relation it indexes. HashCell::tuple pointers point INTO the build
/// relation's pages, so the relation must stay alive exactly as long as
/// the table; the shared_ptr makes that a single lifetime. A catalog
/// that updates a relation swaps in a fresh Relation and bumps the
/// version — in-flight pins of the old version keep the old pages valid.
struct CachedTable {
  CacheKey key;
  std::shared_ptr<const Relation> build;
  std::unique_ptr<HashTable> table;
  /// Bytes this entry is charged against the cache's capacity: the
  /// build relation's data plus HashTable::EstimateBytes.
  uint64_t charged_bytes = 0;
  /// Estimated cycles to rebuild the table (eviction benefit).
  double rebuild_cycles = 0;

  // --- cache-private bookkeeping (guarded by the cache's mu_) ---
  uint64_t pins = 0;
  bool doomed = false;  ///< invalidated/revoked while pinned; free at unpin
  double priority = 0;  ///< GreedyDual H-value (see EvictOneLocked)
};

/// Counters describing one cache's lifetime, snapshot under the lock.
struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t rejected_inserts = 0;  ///< Offer() dropped (too big / duplicate)
  uint64_t evictions = 0;         ///< capacity-pressure removals
  uint64_t invalidations = 0;     ///< entries removed by Invalidate()
  uint64_t revoked_bytes = 0;     ///< bytes released because of revokes
  uint64_t charged_bytes = 0;     ///< current occupancy
  uint64_t entries = 0;
  uint64_t pinned_entries = 0;

  double HitRate() const {
    return lookups == 0 ? 0.0 : double(hits) / double(lookups);
  }
};

class HashTableCache;

/// RAII pin guard: holds one pin on a cached table and releases it on
/// destruction. This is the only way join code should hold a pin —
/// hjlint's cache-pin-discipline rule flags raw Pin() calls that have no
/// matching Unpin() in the same scope.
class PinnedTable {
 public:
  PinnedTable() = default;
  PinnedTable(HashTableCache* cache, const CachedTable* entry)
      : cache_(cache), entry_(entry) {}
  ~PinnedTable() { Reset(); }

  PinnedTable(PinnedTable&& o) noexcept
      : cache_(o.cache_), entry_(o.entry_) {
    o.cache_ = nullptr;
    o.entry_ = nullptr;
  }
  PinnedTable& operator=(PinnedTable&& o) noexcept {
    if (this != &o) {
      Reset();
      cache_ = o.cache_;
      entry_ = o.entry_;
      o.cache_ = nullptr;
      o.entry_ = nullptr;
    }
    return *this;
  }
  PinnedTable(const PinnedTable&) = delete;
  PinnedTable& operator=(const PinnedTable&) = delete;

  explicit operator bool() const { return entry_ != nullptr; }
  const HashTable& table() const { return *entry_->table; }
  const Relation& build() const { return *entry_->build; }
  const CachedTable* entry() const { return entry_; }

  /// Drops the pin early (idempotent).
  void Reset();

 private:
  HashTableCache* cache_ = nullptr;
  const CachedTable* entry_ = nullptr;
};

/// Cross-query cache of built hash tables, sized by revocable memory.
///
/// Capacity: a fixed byte budget by default; SetCapacityFn() replaces it
/// with a live closure (a MemoryGrant::BudgetFn), making the cache an
/// ordinary broker client. OnRevoke() is the grant's revoke listener:
/// it evicts unpinned entries (lowest benefit first) until occupancy
/// fits the shrunken grant, tallying `revoked_bytes`. Pinned entries
/// cannot be evicted mid-probe; they are marked doomed and freed at the
/// last Unpin, so a revoke's full effect lands as soon as probes drain.
///
/// The capacity closure is always invoked OUTSIDE mu_ (it takes broker
/// locks; hjlint callback-under-lock), so its result is advisory — a
/// revoke can land between a sample and the mutation it guards. Every
/// revoke therefore also records its target under mu_ with a
/// generation counter, and mutating paths clamp a sample that raced a
/// revoke to that recorded target (RevokeEpoch / ClampToRevokesLocked),
/// so the cache never admits or retains bytes above a revoked grant on
/// the strength of a stale sample.
///
/// Eviction is LRU-by-benefit (GreedyDual-Size): each entry carries
/// H = L + rebuild_cycles / bytes where L is the inflation floor (the H
/// of the last eviction). A hit refreshes H, so recently used and
/// expensive-to-rebuild-per-byte tables survive; cold cheap ones go
/// first.
///
/// All methods are thread-safe.
class HashTableCache {
 public:
  explicit HashTableCache(uint64_t capacity_bytes);
  ~HashTableCache();

  HashTableCache(const HashTableCache&) = delete;
  HashTableCache& operator=(const HashTableCache&) = delete;

  /// Looks up `key` and pins the entry (wrapped in the RAII guard).
  /// An empty guard means miss. Counts one lookup either way.
  PinnedTable Acquire(const CacheKey& key) HJ_EXCLUDES(mu_);

  /// Raw pin: returns the entry with one pin held, or nullptr on miss.
  /// Every call site must pair with Unpin() — prefer Acquire().
  const CachedTable* Pin(const CacheKey& key) HJ_EXCLUDES(mu_);

  /// Releases one pin taken by Pin()/Acquire(). Frees the entry if it
  /// was doomed (invalidated or revoked while pinned) and this was the
  /// last pin.
  void Unpin(const CachedTable* entry) HJ_EXCLUDES(mu_);

  /// Offers a freshly built table for caching. Takes ownership on
  /// success (returns true); rejects duplicates of an existing key and
  /// tables that cannot fit even an empty cache. `rebuild_cycles` is
  /// the eviction benefit; pass 0 to use the model estimate
  /// (EstimateRebuildCycles) for the table's tuple count.
  bool Offer(const CacheKey& key, std::shared_ptr<const Relation> build,
             std::unique_ptr<HashTable> table, double rebuild_cycles = 0)
      HJ_EXCLUDES(mu_);

  /// Drops every version of `relation_id` (an update made them stale).
  /// Pinned entries are doomed — readers mid-probe finish against the
  /// old version, then the entry is freed. Returns entries affected.
  uint64_t Invalidate(uint64_t relation_id) HJ_EXCLUDES(mu_);

  /// Replaces the static capacity with a live byte budget (a broker
  /// grant's BudgetFn). The closure must outlive the cache.
  void SetCapacityFn(std::function<uint64_t()> fn) HJ_EXCLUDES(mu_);

  /// Revoke listener body for the cache's grant: records the shrunken
  /// budget and evicts down to it. Safe from any thread; bytes evicted
  /// here (and at unpin while shrinking) count as `revoked_bytes`.
  void OnRevoke(uint64_t new_capacity_bytes) HJ_EXCLUDES(mu_);

  /// Current capacity in bytes (live closure when set).
  uint64_t capacity_bytes() const HJ_EXCLUDES(mu_);

  CacheStats stats() const HJ_EXCLUDES(mu_);

  /// Model-based rebuild-cost estimate: critical-path cycles of the
  /// build loop at the cost model's chosen group size (the same
  /// model::ChooseParams machinery that picks kernel parameters).
  static double EstimateRebuildCycles(uint64_t tuples);

 private:
  struct KeyPtrHash {
    size_t operator()(const CacheKey& k) const { return CacheKeyHash()(k); }
  };

  /// Evicts the lowest-priority unpinned entry. Returns false when
  /// every entry is pinned (nothing evictable right now).
  bool EvictOneLocked(bool from_revoke) HJ_REQUIRES(mu_);

  /// Evicts until occupancy fits `capacity` (or everything left is
  /// pinned).
  void ShrinkLocked(uint64_t capacity, bool from_revoke) HJ_REQUIRES(mu_);

  /// Current capacity: samples the live closure (outside mu_ — the
  /// closure is a broker grant's and may take other locks) or the
  /// static budget. The result is ADVISORY: it was true at some point
  /// during the call, but a revoke can land before the caller re-locks.
  /// Mutating paths must bracket the sample with RevokeEpoch() /
  /// ClampToRevokesLocked() so a racing revoke's target wins over the
  /// stale sample.
  uint64_t LiveCapacity() const HJ_EXCLUDES(mu_);

  /// Revoke generation counter, for the sample-validation bracket:
  /// read the epoch, sample LiveCapacity(), lock mu_, then clamp with
  /// ClampToRevokesLocked(). A revoke that fires before the epoch read
  /// is already reflected in the closure's value; one that fires after
  /// it is caught by the epoch comparison.
  uint64_t RevokeEpoch() const HJ_EXCLUDES(mu_);

  /// Returns `sampled_cap` unless revoke_epoch_ advanced past
  /// `epoch_before` (a revoke raced the caller's unlocked capacity
  /// sample), in which case the sample is stale on the high side and is
  /// clamped to the racing revoke's recorded target.
  uint64_t ClampToRevokesLocked(uint64_t sampled_cap,
                                uint64_t epoch_before) const
      HJ_REQUIRES(mu_);

  void EraseLocked(const CacheKey& key) HJ_REQUIRES(mu_);

  mutable Mutex mu_;
  uint64_t static_capacity_ HJ_GUARDED_BY(mu_);
  std::function<uint64_t()> capacity_fn_ HJ_GUARDED_BY(mu_);
  std::unordered_map<CacheKey, std::unique_ptr<CachedTable>, KeyPtrHash>
      entries_ HJ_GUARDED_BY(mu_);
  uint64_t charged_bytes_ HJ_GUARDED_BY(mu_) = 0;
  /// GreedyDual inflation floor: H of the last evicted entry.
  double inflation_ HJ_GUARDED_BY(mu_) = 0;
  /// Set while a revoke left pinned-only overflow behind; makes Unpin
  /// count its deferred evictions as revoked bytes.
  bool revoke_shrink_pending_ HJ_GUARDED_BY(mu_) = false;
  /// Bumped by every OnRevoke, under mu_. See RevokeEpoch().
  uint64_t revoke_epoch_ HJ_GUARDED_BY(mu_) = 0;
  /// Capacity target of the most recent revoke (min-combined with the
  /// live budget, and with any concurrent revoke's target, at
  /// notification time). Only consulted by samplers whose epoch
  /// changed mid-sample, so a later re-grant naturally supersedes it.
  uint64_t last_revoke_cap_ HJ_GUARDED_BY(mu_) = UINT64_MAX;
  CacheStats stats_ HJ_GUARDED_BY(mu_);
};

inline void PinnedTable::Reset() {
  if (cache_ != nullptr && entry_ != nullptr) {
    cache_->Unpin(entry_);
  }
  cache_ = nullptr;
  entry_ = nullptr;
}

}  // namespace cache
}  // namespace hashjoin

#endif  // HASHJOIN_CACHE_HASH_TABLE_CACHE_H_
