#ifndef HASHJOIN_EXEC_OPERATOR_H_
#define HASHJOIN_EXEC_OPERATOR_H_

#include <cstdint>
#include <vector>

#include "storage/schema.h"
#include "util/status.h"

namespace hashjoin {
namespace exec {

/// A batch of row references flowing between operators. Rows point into
/// operator-owned storage and stay valid until the producing operator's
/// next Next() call (or its destruction).
struct RowBatch {
  struct Row {
    const uint8_t* data = nullptr;
    uint16_t length = 0;
  };

  std::vector<Row> rows;

  void Clear() { rows.clear(); }
  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
};

/// Volcano-style batched operator interface. The batch granularity is
/// deliberately the prefetching group size: the paper's §5.4 observes
/// that the join phase can pause at group boundaries and send outputs to
/// the parent operator, which is exactly what HashJoinOperator does.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and its children). Blocking work — e.g.
  /// draining the build side of a join — happens here.
  virtual Status Open() = 0;

  /// Produces the next batch. Returns false (with *out left empty) at
  /// end of stream.
  virtual bool Next(RowBatch* out) = 0;

  /// Schema of the rows this operator produces.
  virtual const Schema& output_schema() const = 0;
};

}  // namespace exec
}  // namespace hashjoin

#endif  // HASHJOIN_EXEC_OPERATOR_H_
