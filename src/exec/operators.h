#ifndef HASHJOIN_EXEC_OPERATORS_H_
#define HASHJOIN_EXEC_OPERATORS_H_

#include <functional>
#include <memory>

#include "exec/operator.h"
#include "hash/hash_table.h"
#include "join/aggregate_kernels.h"
#include "join/grace.h"
#include "join/join_common.h"
#include "model/cost_model.h"
#include "sched/query_context.h"
#include "storage/relation.h"

namespace hashjoin {
namespace exec {

/// Scans a relation, `batch_size` rows at a time. Rows point into the
/// scanned relation and remain valid for its lifetime.
class ScanOperator : public Operator {
 public:
  ScanOperator(const Relation* relation, uint32_t batch_size = 64);

  Status Open() override;
  bool Next(RowBatch* out) override;
  const Schema& output_schema() const override {
    return relation_->schema();
  }

 private:
  const Relation* relation_;
  uint32_t batch_size_;
  size_t page_index_ = 0;
  int slot_index_ = 0;
};

/// Filters rows by a predicate.
class FilterOperator : public Operator {
 public:
  using Predicate = std::function<bool(const uint8_t* row, uint16_t len)>;

  FilterOperator(std::unique_ptr<Operator> child, Predicate predicate);

  Status Open() override;
  bool Next(RowBatch* out) override;
  const Schema& output_schema() const override {
    return child_->output_schema();
  }

 private:
  std::unique_ptr<Operator> child_;
  Predicate predicate_;
  RowBatch scratch_;
};

/// Projects a subset of fixed-size columns, materializing the narrowed
/// rows into operator-owned pages. Rows stay valid until the next
/// Next() call.
class ProjectOperator : public Operator {
 public:
  /// `columns` are attribute indices of the child's schema; all must be
  /// fixed-size attributes.
  ProjectOperator(std::unique_ptr<Operator> child,
                  std::vector<uint32_t> columns);

  Status Open() override;
  bool Next(RowBatch* out) override;
  const Schema& output_schema() const override { return output_schema_; }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<uint32_t> columns_;
  std::vector<uint32_t> src_offsets_;
  std::vector<uint32_t> dst_offsets_;
  std::vector<uint32_t> widths_;
  Schema output_schema_;
  Relation buffer_;  // current batch's materialized rows
  RowBatch scratch_;
};

/// Group-prefetched hash equijoin operator (keys at offset 0 of both
/// sides). Open() drains the build child into an in-memory hash table
/// using the configured scheme. Each Next() pulls one probe batch, runs
/// the staged probing pipeline over it — one batch is one prefetch group
/// — and emits the concatenated outputs, pausing at the group boundary
/// to hand the batch to the parent (§5.4). Output rows stay valid until
/// the next Next() call.
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(std::unique_ptr<Operator> build_child,
                   std::unique_ptr<Operator> probe_child,
                   Scheme scheme = Scheme::kGroup,
                   KernelParams params = KernelParams{});

  Status Open() override;
  bool Next(RowBatch* out) override;
  const Schema& output_schema() const override { return output_schema_; }

  uint64_t rows_joined() const { return rows_joined_; }

 private:
  std::unique_ptr<Operator> build_child_;
  std::unique_ptr<Operator> probe_child_;
  Scheme scheme_;
  KernelParams params_;
  Schema output_schema_;
  Relation build_side_;          // materialized build rows
  std::unique_ptr<HashTable> table_;
  Relation out_buffer_;          // current batch's output rows
  uint64_t rows_joined_ = 0;
  uint32_t build_row_size_ = 0;
};

/// Blocking GRACE hash-join operator: Open() drains both children into
/// materialized relations and runs the full partitioned join through the
/// morsel-parallel executor (`config.num_threads` workers joining
/// independent partition pairs); Next() streams the materialized output.
/// This is the operator-tree entry point to everything GraceConfig
/// offers — partitioning plans, cache modes, and multi-threading —
/// where HashJoinOperator is the single-partition pipelined form.
class GraceJoinOperator : public Operator {
 public:
  GraceJoinOperator(std::unique_ptr<Operator> build_child,
                    std::unique_ptr<Operator> probe_child,
                    GraceConfig config = GraceConfig{},
                    uint32_t batch_size = 64);

  Status Open() override;
  bool Next(RowBatch* out) override;
  const Schema& output_schema() const override { return output_schema_; }

  /// Runs this operator as one query of a join service: the morsels go
  /// through `ctx`'s fair-share handle on the scheduler's shared pool
  /// (instead of a private pool), and partition sizing follows the
  /// query's live memory grant — a broker revoke mid-join makes the
  /// next sizing decision spill more partitions. Call before Open();
  /// `ctx` must outlive the operator. Passing nullptr unbinds.
  void BindQueryContext(QueryContext* ctx);

  uint64_t rows_joined() const { return result_.output_tuples; }
  const JoinResult& join_result() const { return result_; }

 private:
  std::unique_ptr<Operator> build_child_;
  std::unique_ptr<Operator> probe_child_;
  GraceConfig config_;
  uint32_t batch_size_;
  Schema output_schema_;
  Relation build_side_;
  Relation probe_side_;
  Relation output_;
  JoinResult result_;
  size_t out_page_ = 0;
  int out_slot_ = 0;
};

/// Blocking hash aggregation: COUNT(*) and SUM of an int64 column per
/// 4-byte key at offset 0, computed with group prefetching. Emits rows
/// of schema (key:int32, count:int64, sum:int64).
class AggregateOperator : public Operator {
 public:
  /// `group_size` 0 (the default) derives the prefetch group size from
  /// the cost model: model::ChooseParams over AggregateCodeCosts() and
  /// `machine` — pass a calibrated MachineParams
  /// (perf::CalibrationResult::ToMachineParams()) when one is available;
  /// the default-constructed Table-1 parameters otherwise. A non-zero
  /// `group_size` forces that size, bypassing the model.
  AggregateOperator(std::unique_ptr<Operator> child, uint32_t value_offset,
                    uint32_t group_size = 0, uint32_t batch_size = 64,
                    const model::MachineParams& machine =
                        model::MachineParams{});

  Status Open() override;
  bool Next(RowBatch* out) override;
  const Schema& output_schema() const override { return output_schema_; }

 private:
  std::unique_ptr<Operator> child_;
  uint32_t value_offset_;
  uint32_t group_size_;
  uint32_t batch_size_;
  Schema output_schema_;
  Relation results_;  // materialized (key, count, sum) rows
  size_t result_page_ = 0;
  int result_slot_ = 0;
};

}  // namespace exec
}  // namespace hashjoin

#endif  // HASHJOIN_EXEC_OPERATORS_H_
