#include "exec/operators.h"

#include <cstring>

#include "join/exec_policy.h"
#include "join/grace.h"
#include "mem/memory_model.h"
#include "util/logging.h"

namespace hashjoin {
namespace exec {

// ---------- ScanOperator ----------

ScanOperator::ScanOperator(const Relation* relation, uint32_t batch_size)
    : relation_(relation), batch_size_(batch_size) {
  HJ_CHECK(batch_size_ >= 1);
}

Status ScanOperator::Open() {
  page_index_ = 0;
  slot_index_ = 0;
  return Status::OK();
}

bool ScanOperator::Next(RowBatch* out) {
  out->Clear();
  while (out->rows.size() < batch_size_) {
    if (page_index_ >= relation_->num_pages()) break;
    const SlottedPage page = relation_->page(page_index_);
    if (slot_index_ >= page.slot_count()) {
      ++page_index_;
      slot_index_ = 0;
      continue;
    }
    uint16_t len = 0;
    const uint8_t* data = page.GetTuple(slot_index_, &len);
    out->rows.push_back({data, len});
    ++slot_index_;
  }
  return !out->empty();
}

// ---------- FilterOperator ----------

FilterOperator::FilterOperator(std::unique_ptr<Operator> child,
                               Predicate predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

Status FilterOperator::Open() { return child_->Open(); }

bool FilterOperator::Next(RowBatch* out) {
  out->Clear();
  // Keep pulling child batches until at least one row survives, so that
  // a sparse filter does not spuriously end the stream.
  while (out->empty()) {
    if (!child_->Next(&scratch_)) return false;
    for (const RowBatch::Row& row : scratch_.rows) {
      if (predicate_(row.data, row.length)) out->rows.push_back(row);
    }
  }
  return true;
}

// ---------- ProjectOperator ----------

namespace {
Schema ProjectedSchema(const Schema& in, const std::vector<uint32_t>& cols) {
  std::vector<Attribute> attrs;
  for (uint32_t c : cols) {
    HJ_CHECK(c < in.num_attrs());
    HJ_CHECK(in.attr(c).type != AttrType::kVarChar)
        << "ProjectOperator supports fixed-size attributes";
    attrs.push_back(in.attr(c));
  }
  return Schema(std::move(attrs));
}
}  // namespace

ProjectOperator::ProjectOperator(std::unique_ptr<Operator> child,
                                 std::vector<uint32_t> columns)
    : child_(std::move(child)),
      columns_(std::move(columns)),
      output_schema_(ProjectedSchema(child_->output_schema(), columns_)),
      buffer_(output_schema_) {
  const Schema& in = child_->output_schema();
  for (size_t i = 0; i < columns_.size(); ++i) {
    src_offsets_.push_back(in.offset(columns_[i]));
    dst_offsets_.push_back(output_schema_.offset(i));
    uint32_t width = output_schema_.fixed_size() -
                     output_schema_.offset(i);
    if (i + 1 < columns_.size()) {
      width = output_schema_.offset(i + 1) - output_schema_.offset(i);
    }
    widths_.push_back(width);
  }
}

Status ProjectOperator::Open() { return child_->Open(); }

bool ProjectOperator::Next(RowBatch* out) {
  out->Clear();
  if (!child_->Next(&scratch_)) return false;
  buffer_.Clear();
  uint16_t out_len = uint16_t(output_schema_.fixed_size());
  for (const RowBatch::Row& row : scratch_.rows) {
    uint8_t* dst = buffer_.AllocAppend(out_len);
    for (size_t c = 0; c < columns_.size(); ++c) {
      std::memcpy(dst + dst_offsets_[c], row.data + src_offsets_[c],
                  widths_[c]);
    }
  }
  for (size_t p = 0; p < buffer_.num_pages(); ++p) {
    const SlottedPage page = buffer_.page(p);
    for (int s = 0; s < page.slot_count(); ++s) {
      uint16_t len = 0;
      const uint8_t* data = page.GetTuple(s, &len);
      out->rows.push_back({data, len});
    }
  }
  return true;
}

// ---------- HashJoinOperator ----------

HashJoinOperator::HashJoinOperator(std::unique_ptr<Operator> build_child,
                                   std::unique_ptr<Operator> probe_child,
                                   Scheme scheme, KernelParams params)
    : build_child_(std::move(build_child)),
      probe_child_(std::move(probe_child)),
      scheme_(scheme),
      params_(params),
      output_schema_(ConcatSchema(build_child_->output_schema(),
                                  probe_child_->output_schema())),
      build_side_(build_child_->output_schema()),
      out_buffer_(output_schema_) {
  // Operator inputs are arbitrary children, not partition pages with
  // memoized slots, so hash codes are computed from the keys.
  params_.hash_mode = HashCodeMode::kCompute;
}

Status HashJoinOperator::Open() {
  HJ_RETURN_IF_ERROR(build_child_->Open());
  HJ_RETURN_IF_ERROR(probe_child_->Open());
  build_row_size_ = build_child_->output_schema().fixed_size();

  // Materialize the build side (hash codes memoized into the slots).
  RowBatch batch;
  while (build_child_->Next(&batch)) {
    for (const RowBatch::Row& row : batch.rows) {
      uint32_t key;
      std::memcpy(&key, row.data, 4);
      build_side_.Append(row.data, row.length, HashKey32(key));
    }
  }
  if (build_side_.num_tuples() == 0) {
    table_ = std::make_unique<HashTable>(3);
    return Status::OK();
  }
  table_ = std::make_unique<HashTable>(
      ChooseBucketCount(build_side_.num_tuples(), 31));
  RealMemory mm;
  KernelParams build_params = params_;
  build_params.hash_mode = HashCodeMode::kMemoized;
  BuildPartition(mm, scheme_, build_side_, table_.get(), build_params);
  return Status::OK();
}

bool HashJoinOperator::Next(RowBatch* out) {
  out->Clear();
  RealMemory mm;
  // Pull probe batches until one produces output (or input ends). Each
  // batch runs as one prefetch group through the staged pipeline and the
  // operator "pauses at the group boundary" to emit (§5.4).
  RowBatch probe_batch;
  while (out->empty()) {
    if (!probe_child_->Next(&probe_batch)) return false;
    out_buffer_.Clear();
    ProbeContext<RealMemory> ctx(&mm, table_.get(), build_row_size_,
                                 probe_child_->output_schema().fixed_size(),
                                 build_side_, &out_buffer_, params_);
    std::vector<ProbeState> states(probe_batch.size());
    bool staged = scheme_ == Scheme::kGroup || scheme_ == Scheme::kSwp;
    for (size_t i = 0; i < probe_batch.size(); ++i) {
      ProbeState& st = states[i];
      const RowBatch::Row& row = probe_batch.rows[i];
      uint32_t key;
      std::memcpy(&key, row.data, 4);
      st.tuple = row.data;
      st.hash = HashKey32(key);
      st.bucket = table_->bucket(table_->BucketIndex(st.hash));
      st.alive = true;
      if (staged) PrefetchRead(st.bucket);
    }
    if (staged) {
      for (auto& st : states) ProbeStage1(ctx, st, /*prefetch=*/true);
      for (auto& st : states) ProbeStage2(ctx, st, true);
      for (auto& st : states) ProbeStage3(ctx, st);
    } else {
      for (auto& st : states) {
        ProbeStage1(ctx, st, false);
        ProbeStage2(ctx, st, false);
        ProbeStage3(ctx, st);
      }
    }
    ctx.sink.Final();
    rows_joined_ += ctx.output_count;
    // Hand the materialized outputs to the parent.
    for (size_t p = 0; p < out_buffer_.num_pages(); ++p) {
      const SlottedPage page = out_buffer_.page(p);
      for (int s = 0; s < page.slot_count(); ++s) {
        uint16_t len = 0;
        const uint8_t* data = page.GetTuple(s, &len);
        out->rows.push_back({data, len});
      }
    }
  }
  return true;
}

// ---------- GraceJoinOperator ----------

GraceJoinOperator::GraceJoinOperator(std::unique_ptr<Operator> build_child,
                                     std::unique_ptr<Operator> probe_child,
                                     GraceConfig config, uint32_t batch_size)
    : build_child_(std::move(build_child)),
      probe_child_(std::move(probe_child)),
      config_(config),
      batch_size_(batch_size),
      output_schema_(ConcatSchema(build_child_->output_schema(),
                                  probe_child_->output_schema())),
      build_side_(build_child_->output_schema(), config.page_size),
      probe_side_(probe_child_->output_schema(), config.page_size),
      output_(output_schema_, config.page_size) {
  HJ_CHECK(batch_size_ >= 1);
}

void GraceJoinOperator::BindQueryContext(QueryContext* ctx) {
  if (ctx == nullptr) {
    config_.executor = nullptr;
    config_.dynamic_budget = nullptr;
    return;
  }
  config_.executor = &ctx->executor();
  config_.dynamic_budget = ctx->GrantFn();
}

Status GraceJoinOperator::Open() {
  HJ_RETURN_IF_ERROR(build_child_->Open());
  HJ_RETURN_IF_ERROR(probe_child_->Open());

  // Materialize both children with memoized hash codes, as the GRACE
  // partition phase expects from its scan inputs.
  auto drain = [](Operator* child, Relation* dest) {
    RowBatch batch;
    while (child->Next(&batch)) {
      for (const RowBatch::Row& row : batch.rows) {
        uint32_t key;
        std::memcpy(&key, row.data, 4);
        dest->Append(row.data, row.length, HashKey32(key));
      }
    }
  };
  drain(build_child_.get(), &build_side_);
  drain(probe_child_.get(), &probe_side_);

  output_.Clear();
  result_ = JoinResult{};
  RealMemory mm;
  result_ = GraceHashJoin(mm, build_side_, probe_side_, config_, &output_);
  out_page_ = 0;
  out_slot_ = 0;
  return Status::OK();
}

bool GraceJoinOperator::Next(RowBatch* out) {
  out->Clear();
  while (out->rows.size() < batch_size_) {
    if (out_page_ >= output_.num_pages()) break;
    const SlottedPage page = output_.page(out_page_);
    if (out_slot_ >= page.slot_count()) {
      ++out_page_;
      out_slot_ = 0;
      continue;
    }
    uint16_t len = 0;
    const uint8_t* data = page.GetTuple(out_slot_, &len);
    out->rows.push_back({data, len});
    ++out_slot_;
  }
  return !out->empty();
}

// ---------- AggregateOperator ----------

AggregateOperator::AggregateOperator(std::unique_ptr<Operator> child,
                                     uint32_t value_offset,
                                     uint32_t group_size,
                                     uint32_t batch_size,
                                     const model::MachineParams& machine)
    : child_(std::move(child)),
      value_offset_(value_offset),
      group_size_(group_size),
      batch_size_(batch_size),
      output_schema_({{"key", AttrType::kInt32, 4},
                      {"count", AttrType::kInt64, 8},
                      {"sum", AttrType::kInt64, 8}}),
      results_(output_schema_) {
  if (group_size_ == 0) {
    // ChooseParams resolves an infeasible Theorem-1 condition to its
    // fallback (19, the paper's tuned value), so this is always > 0.
    group_size_ =
        model::ChooseParams(AggregateCodeCosts(), machine).group_size;
  }
}

Status AggregateOperator::Open() {
  HJ_RETURN_IF_ERROR(child_->Open());

  // Drain the child into a staging relation, then aggregate it with the
  // group-prefetched kernel.
  Relation staged(child_->output_schema());
  RowBatch batch;
  while (child_->Next(&batch)) {
    for (const RowBatch::Row& row : batch.rows) {
      uint32_t key;
      std::memcpy(&key, row.data, 4);
      staged.Append(row.data, row.length, HashKey32(key));
    }
  }
  RealMemory mm;
  HashAggTable agg(NextRelativelyPrime(
      std::max<uint64_t>(staged.num_tuples(), 3), 31));
  AggregateGroup(mm, staged, value_offset_, &agg, group_size_);

  agg.ForEachGroup([&](const AggState& s) {
    uint8_t row[20];
    std::memcpy(row, &s.key, 4);
    int64_t count = int64_t(s.count);
    std::memcpy(row + 4, &count, 8);
    std::memcpy(row + 12, &s.sum, 8);
    results_.Append(row, sizeof(row), HashKey32(s.key));
  });
  result_page_ = 0;
  result_slot_ = 0;
  return Status::OK();
}

bool AggregateOperator::Next(RowBatch* out) {
  out->Clear();
  while (out->rows.size() < batch_size_) {
    if (result_page_ >= results_.num_pages()) break;
    const SlottedPage page = results_.page(result_page_);
    if (result_slot_ >= page.slot_count()) {
      ++result_page_;
      result_slot_ = 0;
      continue;
    }
    uint16_t len = 0;
    const uint8_t* data = page.GetTuple(result_slot_, &len);
    out->rows.push_back({data, len});
    ++result_slot_;
  }
  return !out->empty();
}

}  // namespace exec
}  // namespace hashjoin
