#ifndef HASHJOIN_UTIL_CHECKSUM_H_
#define HASHJOIN_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace hashjoin {

/// CRC32 (reflected, polynomial 0xEDB88320) over `length` bytes.
///
/// The `seed` parameter chains calls: pass a previous result to extend
/// the checksum over a discontiguous byte range, as the page-checksum
/// code does to skip the in-header checksum field itself.
/// Crc32(a+b) == Crc32(b, Crc32(a)); the empty range returns `seed`.
///
/// Used as the page-integrity check of the fault-tolerant I/O path:
/// the buffer manager stamps every page on write and verifies on read,
/// turning torn pages and bit rot into detected (and usually retried)
/// errors instead of silent corruption.
uint32_t Crc32(const void* data, size_t length, uint32_t seed = 0);

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_CHECKSUM_H_
