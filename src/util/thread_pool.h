#ifndef HASHJOIN_UTIL_THREAD_POOL_H_
#define HASHJOIN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hashjoin {

/// A small work-stealing thread pool for the morsel-driven executor.
/// Each worker owns a deque; Submit distributes tasks round-robin, a
/// worker pops from the front of its own deque and steals from the back
/// of a victim's when its own runs dry. Tasks receive the worker index
/// that runs them, so callers can keep per-worker state (memory models,
/// output sinks) without any locking on the hot path.
///
/// Two submission families coexist:
///  - plain Submit()/Wait(): the original per-invocation path (a pool
///    created, used, and destroyed by one executor run);
///  - TaskGroup submissions: several independent clients (concurrent
///    queries admitted by the join scheduler) share ONE pool. Each
///    client submits into its own group; an idle worker picks the group
///    with the fewest tasks currently in service, so the pool's workers
///    spread fairly across active groups instead of draining whichever
///    query submitted first. WaitGroup() waits for one group only.
///
/// Lock discipline (checked by -Wthread-safety under Clang): `mu_`
/// guards the sleep/wake and completion state, each WorkerQueue's `mu`
/// guards that deque, and `groups_mu_` guards the group registry plus
/// every TaskGroup's members. `mu_` and a queue/group mutex are never
/// held together except queue-after-mu_ in Submit; workers take them
/// strictly one at a time.
class ThreadPool {
 private:
  // Declared before TaskGroup so the HJ_GUARDED_BY(pool_->groups_mu_)
  // annotations below name an already-declared member.
  Mutex groups_mu_;

 public:
  using Task = std::function<void(uint32_t worker_id)>;

  /// One client's share of a shared pool. Created by CreateGroup();
  /// lifetime is managed by shared_ptr — the pool keeps a weak reference
  /// and prunes groups that clients dropped. All members are guarded by
  /// the owning pool's groups_mu_ (one lock for the registry and the
  /// groups: the fair-share pick must compare queue depths across all
  /// groups atomically).
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class ThreadPool;
    ThreadPool* pool_ = nullptr;  // set once by CreateGroup
    std::deque<Task> tasks HJ_GUARDED_BY(pool_->groups_mu_);
    /// Tasks currently executing on a worker.
    uint32_t running HJ_GUARDED_BY(pool_->groups_mu_) = 0;
    /// Queued + running.
    uint64_t pending HJ_GUARDED_BY(pool_->groups_mu_) = 0;
    CondVar done_cv;  // signaled when pending hits 0
  };

  explicit ThreadPool(uint32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for all submitted tasks (both families), then joins the
  /// workers.
  ~ThreadPool();

  uint32_t num_workers() const { return uint32_t(workers_.size()); }

  /// Enqueues a task. Safe to call from any thread (including from
  /// inside a task); tasks submitted before Wait() returns are covered
  /// by it.
  void Submit(Task task) HJ_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished executing.
  void Wait() HJ_EXCLUDES(mu_);

  /// Registers a new fair-share group on this pool.
  std::shared_ptr<TaskGroup> CreateGroup() HJ_EXCLUDES(groups_mu_);

  /// Enqueues a task into `group`. Safe from any thread.
  void Submit(const std::shared_ptr<TaskGroup>& group, Task task)
      HJ_EXCLUDES(mu_, groups_mu_);

  /// Blocks until every task submitted to `group` has finished. Other
  /// groups' tasks are not waited on.
  void WaitGroup(TaskGroup* group) HJ_EXCLUDES(groups_mu_);

 private:
  /// One worker's deque. Owner pops the front (LIFO-ish locality does
  /// not matter here: morsels are independent); thieves take the back,
  /// which holds the largest still-queued morsels under the
  /// largest-first submission order.
  struct WorkerQueue {
    Mutex mu;
    std::deque<Task> tasks HJ_GUARDED_BY(mu);
  };

  bool TryGetTask(uint32_t self, Task* out);
  /// Fair group pick: among groups with queued tasks, the one with the
  /// fewest running. Returns the owning group so the worker can retire
  /// the task against it.
  std::shared_ptr<TaskGroup> TryGetGroupTask(Task* out)
      HJ_EXCLUDES(groups_mu_);
  void FinishGroupTask(TaskGroup* group) HJ_EXCLUDES(groups_mu_);
  void WorkerLoop(uint32_t self);
  /// Publishes one enqueued task to sleeping workers: bumps queued_
  /// under mu_ (the workers' sleep predicate is checked under mu_, so a
  /// bump outside it could land between a worker's predicate check and
  /// its park — a lost wakeup) and notifies.
  void PublishQueued() HJ_EXCLUDES(mu_);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  Mutex mu_;  // guards pending_/stop_ and orders queued_ with the condvars
  CondVar work_cv_;
  CondVar done_cv_;
  uint64_t pending_ HJ_GUARDED_BY(mu_) = 0;  // submitted, not yet finished
  /// Submitted but not yet dequeued. Atomic so TryGetTask can decrement
  /// without mu_, but *increments* happen under mu_ (see PublishQueued).
  std::atomic<int64_t> queued_{0};
  std::atomic<uint32_t> next_queue_{0};
  bool stop_ HJ_GUARDED_BY(mu_) = false;

  std::vector<std::weak_ptr<TaskGroup>> groups_ HJ_GUARDED_BY(groups_mu_);
};

/// The executor handle the join code paths run on: either a private pool
/// (the original one-pool-per-join mode) or one fair-share group of a
/// pool shared across concurrent queries. Submit/Wait have the same
/// semantics either way — Wait() covers exactly this executor's tasks —
/// so GraceHashJoin and friends are agnostic to which mode they run in.
class PoolExecutor {
 public:
  /// Private-pool mode: owns a fresh pool of `num_threads` workers.
  explicit PoolExecutor(uint32_t num_threads)
      : owned_(std::make_unique<ThreadPool>(num_threads)),
        pool_(owned_.get()),
        group_(pool_->CreateGroup()) {}

  /// Shared-pool mode: one fair-share group of `shared` (must outlive
  /// this executor).
  explicit PoolExecutor(ThreadPool* shared)
      : pool_(shared), group_(pool_->CreateGroup()) {}

  PoolExecutor(const PoolExecutor&) = delete;
  PoolExecutor& operator=(const PoolExecutor&) = delete;

  ~PoolExecutor() { Wait(); }

  uint32_t num_workers() const { return pool_->num_workers(); }

  void Submit(ThreadPool::Task task) {
    pool_->Submit(group_, std::move(task));
  }

  /// Waits for this executor's tasks only (not the whole shared pool).
  void Wait() { pool_->WaitGroup(group_.get()); }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
  std::shared_ptr<ThreadPool::TaskGroup> group_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_THREAD_POOL_H_
