#ifndef HASHJOIN_UTIL_THREAD_POOL_H_
#define HASHJOIN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hashjoin {

/// A small work-stealing thread pool for the morsel-driven executor.
/// Each worker owns a deque; Submit distributes tasks round-robin, a
/// worker pops from the front of its own deque and steals from the back
/// of a victim's when its own runs dry. Tasks receive the worker index
/// that runs them, so callers can keep per-worker state (memory models,
/// output sinks) without any locking on the hot path.
///
/// The pool is created per executor invocation: spawn cost is a few tens
/// of microseconds, negligible against a join phase, and keeping the
/// pool scoped avoids global state.
class ThreadPool {
 public:
  using Task = std::function<void(uint32_t worker_id)>;

  explicit ThreadPool(uint32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  uint32_t num_workers() const { return uint32_t(workers_.size()); }

  /// Enqueues a task. Safe to call from any thread (including from
  /// inside a task); tasks submitted before Wait() returns are covered
  /// by it.
  void Submit(Task task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

 private:
  /// One worker's deque. Owner pops the front (LIFO-ish locality does
  /// not matter here: morsels are independent); thieves take the back,
  /// which holds the largest still-queued morsels under the
  /// largest-first submission order.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  bool TryGetTask(uint32_t self, Task* out);
  void WorkerLoop(uint32_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards pending_ and the condvars
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t pending_ = 0;           // submitted but not yet finished
  std::atomic<int64_t> queued_{0};  // submitted but not yet dequeued
  std::atomic<uint32_t> next_queue_{0};
  bool stop_ = false;
};

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_THREAD_POOL_H_
