#include "util/flags.h"

#include <cstdlib>

namespace hashjoin {

void FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[arg] = argv[i + 1];
      ++i;
    } else {
      values_[arg] = "true";
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t FlagParser::GetInt(const std::string& name,
                           int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second;
}

}  // namespace hashjoin
