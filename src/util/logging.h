#ifndef HASHJOIN_UTIL_LOGGING_H_
#define HASHJOIN_UTIL_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/status.h"

namespace hashjoin {
namespace internal_logging {

enum class LogLevel { kInfo, kWarning, kError, kFatal };

/// Stream-style log sink that emits one line on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace hashjoin

#define HJ_LOG(level)                                                     \
  ::hashjoin::internal_logging::LogMessage(                               \
      ::hashjoin::internal_logging::LogLevel::k##level, __FILE__,         \
      __LINE__)                                                           \
      .stream()

/// One-shot variant of HJ_LOG: the first execution of this source line logs,
/// later executions are silent. Meant for diagnostics that would otherwise
/// repeat once per bench record or per worker (e.g. the ChooseParams
/// infeasible-sentinel fallback). Thread-safe; at most one thread wins.
#define HJ_LOG_ONCE(level)                                                \
  for (static ::std::atomic<bool> hj_log_once_flag{false};                \
       !hj_log_once_flag.exchange(true, ::std::memory_order_relaxed);)    \
  HJ_LOG(level)

/// Unconditional invariant check; active in all build types because this
/// library's correctness claims (e.g. conflict handling in interleaved hash
/// table visits) must hold in release benchmarking builds too.
#define HJ_CHECK(cond)                                               \
  if (!(cond)) HJ_LOG(Fatal) << "Check failed: " #cond << " "

#define HJ_CHECK_OK(expr)                                            \
  do {                                                               \
    ::hashjoin::Status _hj_chk = (expr);                             \
    if (!_hj_chk.ok())                                               \
      HJ_LOG(Fatal) << "Status not OK: " << _hj_chk.ToString();      \
  } while (0)

#ifndef NDEBUG
#define HJ_DCHECK(cond) HJ_CHECK(cond)
#else
#define HJ_DCHECK(cond) \
  if (false) HJ_LOG(Fatal) << ""
#endif

#endif  // HASHJOIN_UTIL_LOGGING_H_
