#ifndef HASHJOIN_UTIL_LOGGING_H_
#define HASHJOIN_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/status.h"

namespace hashjoin {
namespace internal_logging {

enum class LogLevel { kInfo, kWarning, kError, kFatal };

/// Stream-style log sink that emits one line on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace hashjoin

#define HJ_LOG(level)                                                     \
  ::hashjoin::internal_logging::LogMessage(                               \
      ::hashjoin::internal_logging::LogLevel::k##level, __FILE__,         \
      __LINE__)                                                           \
      .stream()

/// Unconditional invariant check; active in all build types because this
/// library's correctness claims (e.g. conflict handling in interleaved hash
/// table visits) must hold in release benchmarking builds too.
#define HJ_CHECK(cond)                                               \
  if (!(cond)) HJ_LOG(Fatal) << "Check failed: " #cond << " "

#define HJ_CHECK_OK(expr)                                            \
  do {                                                               \
    ::hashjoin::Status _hj_chk = (expr);                             \
    if (!_hj_chk.ok())                                               \
      HJ_LOG(Fatal) << "Status not OK: " << _hj_chk.ToString();      \
  } while (0)

#ifndef NDEBUG
#define HJ_DCHECK(cond) HJ_CHECK(cond)
#else
#define HJ_DCHECK(cond) \
  if (false) HJ_LOG(Fatal) << ""
#endif

#endif  // HASHJOIN_UTIL_LOGGING_H_
