#include "util/aligned.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace hashjoin {

void* AlignedAlloc(size_t bytes, size_t alignment) {
  HJ_CHECK(IsPowerOfTwo(alignment));
  if (bytes == 0) bytes = alignment;
  bytes = RoundUp(bytes, alignment);
  void* p = std::aligned_alloc(alignment, bytes);
  HJ_CHECK(p != nullptr) << "aligned_alloc of " << bytes << " bytes failed";
  return p;
}

void AlignedFree(void* ptr) { std::free(ptr); }

}  // namespace hashjoin
