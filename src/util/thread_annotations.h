#ifndef HASHJOIN_UTIL_THREAD_ANNOTATIONS_H_
#define HASHJOIN_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros (HJ_GUARDED_BY,
/// HJ_REQUIRES, ...), in the style popularized by abseil and the Clang
/// documentation. Under Clang with -Wthread-safety (wired to the
/// HASHJOIN_THREAD_SAFETY_ANALYSIS CMake option, default ON) the
/// annotations turn lock-discipline violations — touching a
/// HJ_GUARDED_BY member without its mutex, calling an HJ_REQUIRES
/// function unlocked, double-acquiring — into compile errors. Under
/// other compilers every macro expands to nothing, so annotated code
/// stays portable; the annotations then serve as checked documentation
/// the next Clang build re-verifies.
///
/// Annotate with the wrappers in util/mutex.h (`Mutex`, `MutexLock`,
/// `CondVar`): std::mutex itself carries no capability attribute, so
/// the analysis cannot see through it (and tools/hjlint rejects naked
/// std::mutex members in src/ for exactly that reason).

#if defined(__clang__) && defined(__has_attribute)
#define HJ_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define HJ_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define HJ_CAPABILITY(x) HJ_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define HJ_SCOPED_CAPABILITY HJ_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Data member readable/writable only with the given mutex held.
#define HJ_GUARDED_BY(x) HJ_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define HJ_PT_GUARDED_BY(x) HJ_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define HJ_ACQUIRED_BEFORE(...) \
  HJ_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define HJ_ACQUIRED_AFTER(...) \
  HJ_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// Function requires the capability to be held by the caller (and does
/// not release it).
#define HJ_REQUIRES(...) \
  HJ_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function acquires / releases the capability itself.
#define HJ_ACQUIRE(...) \
  HJ_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define HJ_RELEASE(...) \
  HJ_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning the given value.
#define HJ_TRY_ACQUIRE(...) \
  HJ_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant internal locking).
#define HJ_EXCLUDES(...) \
  HJ_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by analysis).
#define HJ_ASSERT_CAPABILITY(x) \
  HJ_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// Function returns a reference to the given capability.
#define HJ_RETURN_CAPABILITY(x) HJ_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: function is exempt from analysis. Use only with a
/// comment explaining why the analysis cannot express the invariant.
#define HJ_NO_THREAD_SAFETY_ANALYSIS \
  HJ_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // HASHJOIN_UTIL_THREAD_ANNOTATIONS_H_
