#ifndef HASHJOIN_UTIL_RANDOM_H_
#define HASHJOIN_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hashjoin {

/// xorshift128+ pseudo-random generator: fast, deterministic across
/// platforms, and good enough for workload synthesis (not cryptographic).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p);

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed generator over [0, n) with exponent theta. Used to
/// inject key skew (the paper's conflict-handling paths only trigger under
/// duplicate keys / skewed distributions).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Next Zipf draw in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_RANDOM_H_
