#ifndef HASHJOIN_UTIL_ALIGNED_H_
#define HASHJOIN_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>

namespace hashjoin {

/// Cache line size assumed throughout (matches the paper's simulated
/// machine, Table 2, and common x86 hardware).
inline constexpr size_t kCacheLineSize = 64;

/// Allocates `bytes` of storage aligned to `alignment` (power of two,
/// >= sizeof(void*)). Freed with AlignedFree.
void* AlignedAlloc(size_t bytes, size_t alignment = kCacheLineSize);
void AlignedFree(void* ptr);

/// unique_ptr deleter for AlignedAlloc'd buffers.
struct AlignedDeleter {
  void operator()(void* p) const { AlignedFree(p); }
};

template <typename T>
using AlignedBuffer = std::unique_ptr<T[], AlignedDeleter>;

/// Allocates an aligned, default-constructible array of n T's.
/// T must be trivially destructible (the buffer is freed, not destroyed).
template <typename T>
AlignedBuffer<T> MakeAlignedBuffer(size_t n,
                                   size_t alignment = kCacheLineSize) {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer requires trivially destructible T");
  void* p = AlignedAlloc(n * sizeof(T), alignment);
  return AlignedBuffer<T>(new (p) T[n]);
}

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_ALIGNED_H_
