#include "util/json_writer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

namespace hashjoin {

JsonValue& JsonValue::Append(JsonValue v) {
  type_ = Type::kArray;
  array_.push_back(std::move(v));
  return array_.back();
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  type_ = Type::kObject;
  for (auto& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return m.second;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(const std::string& dotted_path) const {
  const JsonValue* cur = this;
  size_t start = 0;
  while (cur != nullptr) {
    size_t dot = dotted_path.find('.', start);
    std::string key = dotted_path.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    cur = cur->Find(key);
    if (dot == std::string::npos) return cur;
    start = dot + 1;
  }
  return nullptr;
}

std::string JsonValue::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

namespace {

void AppendDouble(std::string* out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; null is the convention
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
  // Keep a marker so the value parses back as a double, not an int.
  if (std::string_view(buf).find_first_of(".eE") == std::string_view::npos) {
    *out += ".0";
  }
}

void Newline(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  *out += '\n';
  out->append(size_t(indent) * size_t(depth), ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kInt: *out += std::to_string(int_); break;
    case Type::kDouble: AppendDouble(out, double_); break;
    case Type::kString:
      *out += '"';
      *out += Escape(string_);
      *out += '"';
      break;
    case Type::kArray: {
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) *out += ',';
        Newline(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Newline(out, indent, depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) *out += ',';
        Newline(out, indent, depth + 1);
        *out += '"';
        *out += Escape(members_[i].first);
        *out += "\":";
        if (indent > 0) *out += ' ';
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) Newline(out, indent, depth);
      *out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: a small recursive-descent JSON reader. Accepts exactly RFC 8259
// documents (no comments, no trailing commas); \uXXXX escapes are decoded
// to UTF-8 (surrogate pairs included).

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  StatusOr<JsonValue> Run() {
    SkipWs();
    JsonValue v;
    HJ_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != s_.size()) return Err("trailing characters after document");
    return v;
  }

 private:
  Status Err(const std::string& what) {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Err(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > 128) return Err("nesting too deep");
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    char c = s_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string str;
        HJ_RETURN_IF_ERROR(ParseString(&str));
        *out = JsonValue(std::move(str));
        return Status::OK();
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = JsonValue(true);
          return Status::OK();
        }
        return Err("bad literal");
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = JsonValue(false);
          return Status::OK();
        }
        return Err("bad literal");
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = JsonValue();
          return Status::OK();
        }
        return Err("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    HJ_RETURN_IF_ERROR(Expect('{'));
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      HJ_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      HJ_RETURN_IF_ERROR(Expect(':'));
      SkipWs();
      JsonValue v;
      HJ_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->Set(key, std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      return Expect('}');
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    HJ_RETURN_IF_ERROR(Expect('['));
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      JsonValue v;
      HJ_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      out->Append(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      return Expect(']');
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > s_.size()) return Err("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = s_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= uint32_t(c - '0');
      else if (c >= 'a' && c <= 'f') v |= uint32_t(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= uint32_t(c - 'A' + 10);
      else return Err("bad \\u escape");
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      *out += char(cp);
    } else if (cp < 0x800) {
      *out += char(0xC0 | (cp >> 6));
      *out += char(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += char(0xE0 | (cp >> 12));
      *out += char(0x80 | ((cp >> 6) & 0x3F));
      *out += char(0x80 | (cp & 0x3F));
    } else {
      *out += char(0xF0 | (cp >> 18));
      *out += char(0x80 | ((cp >> 12) & 0x3F));
      *out += char(0x80 | ((cp >> 6) & 0x3F));
      *out += char(0x80 | (cp & 0x3F));
    }
  }

  Status ParseString(std::string* out) {
    HJ_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= s_.size()) return Err("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        if (uint8_t(c) < 0x20) return Err("raw control character in string");
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) return Err("truncated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          uint32_t cp = 0;
          HJ_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 < s_.size() && s_[pos_] == '\\' &&
                s_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t lo = 0;
              HJ_RETURN_IF_ERROR(ParseHex4(&lo));
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Err("bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return Err("lone high surrogate");
            }
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Err("bad escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < s_.size() && std::isdigit(uint8_t(s_[pos_]))) ++pos_;
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < s_.size() && std::isdigit(uint8_t(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(uint8_t(s_[pos_]))) ++pos_;
    }
    std::string num = s_.substr(start, pos_ - start);
    if (num.empty() || num == "-") return Err("bad number");
    if (is_double) {
      *out = JsonValue(std::strtod(num.c_str(), nullptr));
    } else {
      errno = 0;
      int64_t v = std::strtoll(num.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        *out = JsonValue(std::strtod(num.c_str(), nullptr));
      } else {
        *out = JsonValue(v);
      }
    }
    return Status::OK();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

Status WriteJsonFile(const std::string& path, const JsonValue& v) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  f << v.Dump(2) << "\n";
  f.close();
  if (!f) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return JsonValue::Parse(buf.str());
}

}  // namespace hashjoin
