#ifndef HASHJOIN_UTIL_FLAGS_H_
#define HASHJOIN_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace hashjoin {

/// Minimal --name=value command-line parser for the bench binaries.
/// Unknown flags are tolerated (google-benchmark consumes its own), so
/// bench binaries can mix both flag families.
class FlagParser {
 public:
  /// Parses argv; recognized "--name=value" and "--name value" pairs are
  /// recorded. "--name" alone records "true".
  void Parse(int argc, char** argv);

  bool Has(const std::string& name) const;

  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_FLAGS_H_
