#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace hashjoin {

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding to decorrelate nearby seeds.
  auto splitmix = [](uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  HJ_DCHECK(bound > 0);
  // Reject to remove modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  HJ_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  HJ_CHECK(n > 0);
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  // The Gray et al. closed form divides by (1 - theta); at theta == 1 it
  // degenerates (alpha -> inf, eta -> 0/0). Evaluating it a hair below 1
  // takes the formula's continuous limit instead — the zeta terms above
  // still use the exact theta.
  double t = std::min(theta, 1.0 - 1e-7);
  alpha_ = 1.0 / (1.0 - t);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - t)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  // u -> 1 rounds the power term to exactly 1.0 and would return n,
  // outside the documented [0, n).
  return std::min(v, n_ - 1);
}

}  // namespace hashjoin
