#include "util/checksum.h"

namespace hashjoin {
namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t length, uint32_t seed) {
  const Crc32Table& table = Table();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  // The final inversion of one call cancels against the initial
  // inversion of the next, which is what makes chaining via `seed` work.
  uint32_t crc = ~seed;
  for (size_t i = 0; i < length; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace hashjoin
