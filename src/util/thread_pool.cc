#include "util/thread_pool.h"

#include <limits>

#include "util/logging.h"

namespace hashjoin {

ThreadPool::ThreadPool(uint32_t num_threads) {
  HJ_CHECK(num_threads >= 1);
  queues_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(Task task) {
  uint32_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
               queues_.size();
  {
    // pending_ goes up before the task becomes visible, so a fast worker
    // finishing it immediately can never drive the counter below zero.
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lk(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  work_cv_.notify_one();
}

std::shared_ptr<ThreadPool::TaskGroup> ThreadPool::CreateGroup() {
  auto group = std::make_shared<TaskGroup>();
  std::lock_guard<std::mutex> lk(groups_mu_);
  groups_.push_back(group);
  return group;
}

void ThreadPool::Submit(const std::shared_ptr<TaskGroup>& group, Task task) {
  HJ_CHECK(group != nullptr);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lk(groups_mu_);
    group->tasks.push_back(std::move(task));
    ++group->pending;
  }
  queued_.fetch_add(1, std::memory_order_release);
  work_cv_.notify_one();
}

void ThreadPool::WaitGroup(TaskGroup* group) {
  std::unique_lock<std::mutex> lk(groups_mu_);
  group->done_cv.wait(lk, [group] { return group->pending == 0; });
}

bool ThreadPool::TryGetTask(uint32_t self, Task* out) {
  // Own queue first (front), then steal from the back of the others'.
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.back());
      q.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

std::shared_ptr<ThreadPool::TaskGroup> ThreadPool::TryGetGroupTask(
    Task* out) {
  std::lock_guard<std::mutex> lk(groups_mu_);
  // Pick the group with the fewest tasks in service among those with
  // queued work — each active group converges to an equal worker share.
  std::shared_ptr<TaskGroup> best;
  uint32_t best_running = std::numeric_limits<uint32_t>::max();
  size_t live = 0;
  for (auto& weak : groups_) {
    std::shared_ptr<TaskGroup> g = weak.lock();
    if (g == nullptr) continue;  // client gone, prune below
    groups_[live++] = g;
    if (!g->tasks.empty() && g->running < best_running) {
      best = g;
      best_running = g->running;
    }
  }
  groups_.resize(live);
  if (best == nullptr) return nullptr;
  *out = std::move(best->tasks.front());
  best->tasks.pop_front();
  ++best->running;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return best;
}

void ThreadPool::FinishGroupTask(TaskGroup* group) {
  std::lock_guard<std::mutex> lk(groups_mu_);
  --group->running;
  if (--group->pending == 0) group->done_cv.notify_all();
}

void ThreadPool::WorkerLoop(uint32_t self) {
  while (true) {
    Task task;
    std::shared_ptr<TaskGroup> group;
    bool got = TryGetTask(self, &task);
    if (!got) {
      group = TryGetGroupTask(&task);
      got = group != nullptr;
    }
    if (got) {
      task(self);
      if (group != nullptr) FinishGroupTask(group.get());
      std::lock_guard<std::mutex> lk(mu_);
      --pending_;
      if (pending_ == 0) done_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    work_cv_.wait(lk, [this] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && queued_.load(std::memory_order_acquire) <= 0) return;
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return pending_ == 0; });
}

}  // namespace hashjoin
