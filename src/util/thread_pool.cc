#include "util/thread_pool.h"

#include <limits>

#include "util/logging.h"

namespace hashjoin {

ThreadPool::ThreadPool(uint32_t num_threads) {
  HJ_CHECK(num_threads >= 1);
  queues_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::PublishQueued() {
  // The increment must be ordered with the workers' sleep predicate,
  // which is evaluated under mu_: an increment outside the lock can
  // land between a worker's predicate check (saw 0, decided to sleep)
  // and its park — the notify then fires before the wait begins and the
  // task is stranded until the next Submit (observed as a Wait()
  // deadlock). Taking mu_ around the bump forces the increment to
  // happen either before the predicate check (worker stays awake) or
  // after the worker parked (notify is delivered).
  {
    MutexLock lk(mu_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Submit(Task task) {
  uint32_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
               uint32_t(queues_.size());
  {
    // pending_ goes up before the task becomes visible, so a fast worker
    // finishing it immediately can never drive the counter below zero.
    MutexLock lk(mu_);
    ++pending_;
  }
  {
    MutexLock lk(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  PublishQueued();
}

std::shared_ptr<ThreadPool::TaskGroup> ThreadPool::CreateGroup() {
  auto group = std::make_shared<TaskGroup>();
  group->pool_ = this;
  MutexLock lk(groups_mu_);
  groups_.push_back(group);
  return group;
}

void ThreadPool::Submit(const std::shared_ptr<TaskGroup>& group, Task task) {
  HJ_CHECK(group != nullptr);
  {
    MutexLock lk(mu_);
    ++pending_;
  }
  {
    MutexLock lk(groups_mu_);
    group->tasks.push_back(std::move(task));
    ++group->pending;
  }
  PublishQueued();
}

void ThreadPool::WaitGroup(TaskGroup* group) {
  MutexLock lk(groups_mu_);
  while (group->pending != 0) group->done_cv.Wait(lk);
}

bool ThreadPool::TryGetTask(uint32_t self, Task* out) {
  // Own queue first (front), then steal from the back of the others'.
  {
    WorkerQueue& q = *queues_[self];
    MutexLock lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& q = *queues_[(self + i) % queues_.size()];
    MutexLock lk(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.back());
      q.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

std::shared_ptr<ThreadPool::TaskGroup> ThreadPool::TryGetGroupTask(
    Task* out) {
  MutexLock lk(groups_mu_);
  // Pick the group with the fewest tasks in service among those with
  // queued work — each active group converges to an equal worker share.
  std::shared_ptr<TaskGroup> best;
  uint32_t best_running = std::numeric_limits<uint32_t>::max();
  size_t live = 0;
  for (auto& weak : groups_) {
    std::shared_ptr<TaskGroup> g = weak.lock();
    if (g == nullptr) continue;  // client gone, prune below
    groups_[live++] = g;
    if (!g->tasks.empty() && g->running < best_running) {
      best = g;
      best_running = g->running;
    }
  }
  groups_.resize(live);
  if (best == nullptr) return nullptr;
  *out = std::move(best->tasks.front());
  best->tasks.pop_front();
  ++best->running;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return best;
}

void ThreadPool::FinishGroupTask(TaskGroup* group) {
  MutexLock lk(groups_mu_);
  --group->running;
  if (--group->pending == 0) group->done_cv.NotifyAll();
}

void ThreadPool::WorkerLoop(uint32_t self) {
  while (true) {
    Task task;
    std::shared_ptr<TaskGroup> group;
    bool got = TryGetTask(self, &task);
    if (!got) {
      group = TryGetGroupTask(&task);
      got = group != nullptr;
    }
    if (got) {
      task(self);
      if (group != nullptr) FinishGroupTask(group.get());
      MutexLock lk(mu_);
      --pending_;
      if (pending_ == 0) done_cv_.NotifyAll();
      continue;
    }
    MutexLock lk(mu_);
    while (!stop_ && queued_.load(std::memory_order_acquire) <= 0) {
      work_cv_.Wait(lk);
    }
    if (stop_ && queued_.load(std::memory_order_acquire) <= 0) return;
  }
}

void ThreadPool::Wait() {
  MutexLock lk(mu_);
  while (pending_ != 0) done_cv_.Wait(lk);
}

}  // namespace hashjoin
