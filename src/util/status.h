#ifndef HASHJOIN_UTIL_STATUS_H_
#define HASHJOIN_UTIL_STATUS_H_

#include <cstdlib>
#include <string>
#include <utility>

namespace hashjoin {

/// Error categories used across the library. Modeled after the usual
/// database-engine taxonomy; kept deliberately small.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kUnimplemented,
  /// Data failed an integrity check (page checksum mismatch) and retries
  /// were exhausted: unlike kIOError, retrying will not help — the bytes
  /// on the device are wrong.
  kDataLoss,
  /// A deadline attached to the operation passed before it could run to
  /// completion (e.g. a queued query whose deadline expired before
  /// admission, or a memory grant that could not be acquired in time).
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code ("OK", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight Status value used instead of exceptions across module
/// boundaries. OK statuses carry no allocation.
///
/// [[nodiscard]]: a dropped Status is a swallowed I/O or admission
/// error — the fault-injection tests rely on every failure surfacing.
/// Call sites that genuinely do not care (e.g. best-effort cleanup)
/// must say so with an explicit `(void)` cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Accessing value() on an error aborts, so call
/// sites must check ok() (or status()) first. [[nodiscard]] for the same
/// reason as Status: an unexamined StatusOr hides the error branch.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return value_;
  }
  T& value() & {
    AbortIfError();
    return value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

 private:
  void AbortIfError() const {
    if (!status_.ok()) std::abort();
  }

  Status status_;
  T value_{};
};

/// Propagates a non-OK Status from an expression to the caller.
#define HJ_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::hashjoin::Status _hj_st = (expr);       \
    if (!_hj_st.ok()) return _hj_st;          \
  } while (0)

#define HJ_STATUS_CONCAT_INNER_(a, b) a##b
#define HJ_STATUS_CONCAT_(a, b) HJ_STATUS_CONCAT_INNER_(a, b)

/// Evaluates a StatusOr<T> expression; on error returns the Status to
/// the caller, otherwise moves the value into `lhs` (which may be a
/// declaration: HJ_ASSIGN_OR_RETURN(auto file, StoreRelation(rel))).
#define HJ_ASSIGN_OR_RETURN(lhs, expr)                                   \
  auto HJ_STATUS_CONCAT_(_hj_statusor_, __LINE__) = (expr);              \
  if (!HJ_STATUS_CONCAT_(_hj_statusor_, __LINE__).ok()) {                \
    return HJ_STATUS_CONCAT_(_hj_statusor_, __LINE__).status();          \
  }                                                                      \
  lhs = std::move(HJ_STATUS_CONCAT_(_hj_statusor_, __LINE__)).value()

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_STATUS_H_
