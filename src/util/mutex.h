#ifndef HASHJOIN_UTIL_MUTEX_H_
#define HASHJOIN_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace hashjoin {

/// The project's annotated mutex: a std::mutex carrying the Clang
/// capability attribute, so -Wthread-safety can check HJ_GUARDED_BY /
/// HJ_REQUIRES declarations against actual lock/unlock structure. All
/// shared-state classes (ThreadPool, MemoryBroker, JoinScheduler,
/// BufferManager) use this instead of std::mutex — tools/hjlint
/// enforces that no naked std::mutex member exists in src/.
///
/// Prefer the scoped MutexLock; call Lock()/Unlock() directly only in
/// the rare hand-over-hand patterns a scope cannot express.
class HJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HJ_ACQUIRE() { mu_.lock(); }
  void Unlock() HJ_RELEASE() { mu_.unlock(); }
  bool TryLock() HJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a Mutex (std::lock_guard/std::unique_lock equivalent
/// the analysis understands). Supports temporary release + reacquire —
/// the scheduler's runner loop drops the admission lock while a query
/// body runs — which Clang models as a relockable scoped capability.
class HJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HJ_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() HJ_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily release / reacquire within the scope. The destructor
  /// only unlocks if the lock is currently held.
  void Unlock() HJ_RELEASE() { lock_.unlock(); }
  void Lock() HJ_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with MutexLock. Wait() releases and
/// reacquires the underlying mutex internally; from the analysis's view
/// the capability is held across the call (the standard approximation:
/// the caller re-checks its predicate in a loop with the lock held).
///
/// Predicates are deliberately NOT taken as lambdas: a lambda body is
/// analyzed as a separate function that does not hold the mutex, so
/// reading HJ_GUARDED_BY state inside one would trip -Wthread-safety.
/// Write explicit `while (!pred) cv.Wait(lock);` loops instead — the
/// reads then happen in the scope that provably holds the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Returns false iff the wait ended because `deadline` passed
  /// (spurious wakeups and notifications both return true); callers
  /// re-check their predicate either way.
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_MUTEX_H_
