#ifndef HASHJOIN_UTIL_TIMER_H_
#define HASHJOIN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hashjoin {

/// Monotonic wall-clock stopwatch used by the real-hardware measurement
/// paths (the paper used gettimeofday + the processor cycle counter).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer: sums the durations of Start()/Stop() windows.
/// Used for per-thread I/O stall accounting in the buffer manager.
class StallTimer {
 public:
  void Start() { window_.Restart(); }
  void Stop() { total_ns_ += window_.ElapsedNanos(); }

  double TotalSeconds() const { return double(total_ns_) * 1e-9; }
  int64_t TotalNanos() const { return total_ns_; }
  void Reset() { total_ns_ = 0; }

 private:
  WallTimer window_;
  int64_t total_ns_ = 0;
};

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_TIMER_H_
