#ifndef HASHJOIN_UTIL_BITOPS_H_
#define HASHJOIN_UTIL_BITOPS_H_

#include <cstdint>
#include <numeric>

namespace hashjoin {

/// True iff v is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v must be >= 1 and representable).
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// log2 of a power of two.
constexpr uint32_t Log2(uint64_t v) {
  uint32_t r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

/// True iff a and b share no common factor (gcd == 1). The GRACE driver
/// requires the hash table size to be relatively prime to the number of
/// partitions so partition and bucket assignment don't correlate (paper
/// section 7.1).
constexpr bool RelativelyPrime(uint64_t a, uint64_t b) {
  return std::gcd(a, b) == 1;
}

/// Smallest value >= v that is relatively prime to m (and odd, to be a
/// decent modulus). Used to pick hash table sizes.
inline uint64_t NextRelativelyPrime(uint64_t v, uint64_t m) {
  if (v < 3) v = 3;
  if (v % 2 == 0) ++v;
  while (!RelativelyPrime(v, m)) v += 2;
  return v;
}

/// Rounds v up to a multiple of alignment (alignment must be a power of 2).
constexpr uint64_t RoundUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_BITOPS_H_
