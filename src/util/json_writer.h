#ifndef HASHJOIN_UTIL_JSON_WRITER_H_
#define HASHJOIN_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hashjoin {

/// Minimal JSON document model used by the bench harness: the
/// `BenchReporter` serializes one `BENCH_<bench>.json` per run, and
/// `tools/bench_diff` parses two of them back to compare. Objects keep
/// insertion order so emitted files stay diffable; numbers distinguish
/// integers (exact 64-bit counters) from doubles (seconds, ratios).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  JsonValue(int v) : type_(Type::kInt), int_(v) {}     // NOLINT
  JsonValue(int64_t v) : type_(Type::kInt), int_(v) {}  // NOLINT
  JsonValue(uint32_t v) : type_(Type::kInt), int_(int64_t(v)) {}  // NOLINT
  JsonValue(uint64_t v) : type_(Type::kInt), int_(int64_t(v)) {}  // NOLINT
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}  // NOLINT
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return type_ == Type::kDouble ? int64_t(double_) : int_;
  }
  double AsDouble() const {
    return type_ == Type::kInt ? double(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  // --- array ---
  JsonValue& Append(JsonValue v);
  size_t size() const {
    return type_ == Type::kArray ? array_.size() : members_.size();
  }
  const JsonValue& at(size_t i) const { return array_[i]; }
  JsonValue& at(size_t i) { return array_[i]; }
  const std::vector<JsonValue>& items() const { return array_; }

  // --- object (insertion-ordered; Set replaces an existing key) ---
  JsonValue& Set(const std::string& key, JsonValue v);
  /// Member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  JsonValue* FindMutable(const std::string& key) {
    return const_cast<JsonValue*>(
        static_cast<const JsonValue*>(this)->Find(key));
  }
  /// Dotted-path lookup through nested objects ("wall_seconds.median").
  const JsonValue* FindPath(const std::string& dotted_path) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Serializes with 2-space indentation per level (indent 0 = compact).
  std::string Dump(int indent = 2) const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static StatusOr<JsonValue> Parse(const std::string& text);

  /// Escapes `s` as the contents of a JSON string literal (no quotes).
  static std::string Escape(const std::string& s);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Writes `v.Dump()` to `path` atomically enough for bench output (write
/// then rename would be overkill; this truncates and writes).
Status WriteJsonFile(const std::string& path, const JsonValue& v);

/// Reads and parses a JSON file.
StatusOr<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace hashjoin

#endif  // HASHJOIN_UTIL_JSON_WRITER_H_
