#ifndef HASHJOIN_MODEL_COST_MODEL_H_
#define HASHJOIN_MODEL_COST_MODEL_H_

#include <cstdint>
#include <vector>

namespace hashjoin {
namespace model {

/// Machine parameters of the generalized prefetching models (Table 1):
/// T is the full latency of a cache miss; Tnext the additional latency of
/// a pipelined miss (the inverse of memory bandwidth).
///
/// `max_outstanding` is outside the paper's model: the measured number of
/// misses the memory system can keep in flight per core (load fill buffer
/// / MSHR capacity). 0 means unknown/unmeasured, in which case only the
/// Theorem 1/2 bounds apply.
struct MachineParams {
  uint32_t full_latency = 150;    // T
  uint32_t bandwidth_gap = 10;    // Tnext
  uint32_t max_outstanding = 0;   // LFB/MSHR ceiling; 0 = unknown
};

/// Per-stage execution times C0..Ck of the processing of one element,
/// split at its k dependent memory references (Figure 3(c)).
struct CodeCosts {
  std::vector<uint32_t> c;  // size k+1; c[i] == Ci

  uint32_t k() const { return uint32_t(c.size()) - 1; }
};

/// Generalized model of group prefetching (§4.2, §4.3, Theorem 1).
class GroupPrefetchModel {
 public:
  /// Theorem 1's sufficient condition for fully hiding all cache miss
  /// latencies at group size G:
  ///   (G-1) * C0 >= T   and   (G-1) * max{Ci, Tnext} >= T, i = 1..k.
  static bool ConditionHolds(const CodeCosts& costs,
                             const MachineParams& machine, uint32_t group);

  /// Smallest G satisfying Theorem 1, or 0 if none <= max_group exists
  /// (e.g. C0 == 0, where the first miss can never be hidden; §5.4).
  /// The paper picks the smallest feasible G to minimize the number of
  /// concurrent prefetches and hence conflict misses (§4.2).
  static uint32_t MinGroupSize(const CodeCosts& costs,
                               const MachineParams& machine,
                               uint32_t max_group = 4096);

  /// Evaluates the critical path of processing `num_elements` elements
  /// (Figure 4's DAG: instruction-flow, latency, and bandwidth edges),
  /// assuming every memory reference misses. Used to predict runtimes
  /// and to validate Theorem 1 (when the condition holds, the latency
  /// edges never bind and runtime is busy-time only).
  static uint64_t CriticalPathCycles(const CodeCosts& costs,
                                     const MachineParams& machine,
                                     uint32_t group, uint64_t num_elements,
                                     uint32_t prefetch_issue_cost = 1);
};

/// Generalized model of software-pipelined prefetching (§5.1, §5.2,
/// Theorem 2).
class SwpPrefetchModel {
 public:
  /// Theorem 2's sufficient condition at prefetch distance D:
  ///   D * (max{C0+Ck, Tnext} + sum_{i=1..k-1} max{Ci, Tnext}) >= T.
  static bool ConditionHolds(const CodeCosts& costs,
                             const MachineParams& machine,
                             uint32_t distance);

  /// Smallest D satisfying Theorem 2, or 0 if none <= max_distance
  /// exists. §5.1 argues a feasible D "always exists" because the
  /// left-hand side grows without bound in D — true mathematically, but
  /// the implementation caps the search (a D beyond max_distance needs a
  /// state array larger than the cache and is useless in practice), and
  /// degenerate inputs (Tnext = 0 with zero stage costs) have no
  /// feasible D at all. Callers configuring a kernel MUST handle the 0
  /// sentinel — use ChooseParams() for a clamped, warning-logging
  /// selection. The smallest feasible D minimizes concurrent prefetches,
  /// like G above.
  static uint32_t MinDistance(const CodeCosts& costs,
                              const MachineParams& machine,
                              uint32_t max_distance = 4096);

  /// Size of the circular state array the implementation needs: the
  /// smallest power of two >= k*D + 1 (§5.3).
  static uint32_t StateArraySize(uint32_t k, uint32_t distance);

  /// Critical path of the steady-state pipeline over `num_elements`
  /// elements (Figure 8's DAG), assuming every reference misses.
  static uint64_t CriticalPathCycles(const CodeCosts& costs,
                                     const MachineParams& machine,
                                     uint32_t distance,
                                     uint64_t num_elements,
                                     uint32_t prefetch_issue_cost = 1);
};

/// Exposed cache-miss cycles of the naive one-element-per-iteration loop
/// (Figure 3(c)): every one of the k references stalls for T.
uint64_t BaselineCycles(const CodeCosts& costs, const MachineParams& machine,
                        uint64_t num_elements);

/// A feasibility-checked (G, D) selection. `*_feasible` records whether
/// Theorem 1 / Theorem 2 had a solution within the search caps; when
/// not, the corresponding parameter is the caller-supplied fallback.
/// `*_lfb_clamped` records that the theorem (or fallback) value exceeded
/// `MachineParams::max_outstanding` and was reduced to fit it; the
/// feasibility flags always describe the pre-clamp theorem outcome.
struct ParamChoice {
  uint32_t group_size = 0;
  uint32_t prefetch_distance = 0;
  bool group_feasible = false;
  bool swp_feasible = false;
  bool group_lfb_clamped = false;
  bool swp_lfb_clamped = false;
};

/// Picks the minimum feasible G and D for (costs, machine), resolving
/// the 0 "infeasible" sentinels of MinGroupSize/MinDistance to the given
/// fallbacks (with a logged warning). This is the one call site allowed
/// to turn model output directly into KernelParams: G=0 would make the
/// group kernels process empty groups and D=0 would collapse the
/// software pipeline to a zero-length state array.
///
/// When `machine.max_outstanding > 0`, the result is additionally clamped
/// against the LFB/MSHR ceiling: a group issues up to G prefetches per
/// stage and the software pipeline keeps up to k*D lines in flight, so
///   G <= max_outstanding   and   D <= max_outstanding / k
/// (both floored at 1). Theorem 1/2 give *sufficient* depths for hiding
/// latency; exceeding the machine's outstanding-miss capacity only queues
/// prefetches behind full fill buffers and evicts earlier lines (§4.2's
/// conflict-miss argument), so the ceiling wins.
ParamChoice ChooseParams(const CodeCosts& costs, const MachineParams& machine,
                         uint32_t fallback_group = 19,
                         uint32_t fallback_distance = 1,
                         uint32_t max_group = 4096,
                         uint32_t max_distance = 4096);

}  // namespace model
}  // namespace hashjoin

#endif  // HASHJOIN_MODEL_COST_MODEL_H_
