#include "model/cost_model.h"

#include <algorithm>

#include "util/bitops.h"
#include "util/logging.h"

namespace hashjoin {
namespace model {

namespace {
uint64_t MaxU(uint64_t a, uint64_t b) { return a > b ? a : b; }
}  // namespace

bool GroupPrefetchModel::ConditionHolds(const CodeCosts& costs,
                                        const MachineParams& machine,
                                        uint32_t group) {
  HJ_CHECK(costs.c.size() >= 2) << "need at least C0 and C1 (k >= 1)";
  if (group < 2) return false;
  uint64_t g1 = group - 1;
  if (g1 * costs.c[0] < machine.full_latency) return false;
  for (size_t i = 1; i < costs.c.size(); ++i) {
    uint64_t per = std::max<uint64_t>(costs.c[i], machine.bandwidth_gap);
    if (g1 * per < machine.full_latency) return false;
  }
  return true;
}

uint32_t GroupPrefetchModel::MinGroupSize(const CodeCosts& costs,
                                          const MachineParams& machine,
                                          uint32_t max_group) {
  for (uint32_t g = 2; g <= max_group; ++g) {
    if (ConditionHolds(costs, machine, g)) return g;
  }
  return 0;
}

uint64_t GroupPrefetchModel::CriticalPathCycles(const CodeCosts& costs,
                                                const MachineParams& machine,
                                                uint32_t group,
                                                uint64_t num_elements,
                                                uint32_t prefetch_issue_cost) {
  HJ_CHECK(group >= 1);
  const uint32_t k = costs.k();
  // Evaluates Figure 4's DAG for one group of size g, returning its span.
  auto group_span = [&](uint32_t g) -> uint64_t {
    std::vector<uint64_t> prefetch_done(g, 0);  // P vertex time, prev row
    uint64_t t = 0;
    // Row 0: code 0 + prefetch issue per element; no visits.
    for (uint32_t x = 0; x < g; ++x) {
      t += costs.c[0] + prefetch_issue_cost;
      prefetch_done[x] = t;
    }
    // Rows 1..k: visit m_l, run code l, prefetch m_{l+1} (except row k).
    for (uint32_t l = 1; l <= k; ++l) {
      uint64_t last_visit = 0;
      bool have_last_visit = false;
      for (uint32_t x = 0; x < g; ++x) {
        uint64_t start = MaxU(t, prefetch_done[x] + machine.full_latency);
        if (have_last_visit) {
          start = MaxU(start, last_visit + machine.bandwidth_gap);
        }
        last_visit = start;
        have_last_visit = true;
        uint32_t code = costs.c[l] + (l < k ? prefetch_issue_cost : 0);
        t = start + code;
        prefetch_done[x] = t;
      }
    }
    return t;
  };

  uint64_t full_groups = num_elements / group;
  uint64_t rest = num_elements % group;
  uint64_t total = 0;
  if (full_groups > 0) total += full_groups * group_span(group);
  if (rest > 0) total += group_span(uint32_t(rest));
  return total;
}

bool SwpPrefetchModel::ConditionHolds(const CodeCosts& costs,
                                      const MachineParams& machine,
                                      uint32_t distance) {
  HJ_CHECK(costs.c.size() >= 2);
  if (distance < 1) return false;
  const uint32_t k = costs.k();
  uint64_t row = std::max<uint64_t>(costs.c[0] + costs.c[k],
                                    machine.bandwidth_gap);
  for (uint32_t i = 1; i + 1 <= k; ++i) {
    row += std::max<uint64_t>(costs.c[i], machine.bandwidth_gap);
  }
  return uint64_t(distance) * row >= machine.full_latency;
}

uint32_t SwpPrefetchModel::MinDistance(const CodeCosts& costs,
                                       const MachineParams& machine,
                                       uint32_t max_distance) {
  for (uint32_t d = 1; d <= max_distance; ++d) {
    if (ConditionHolds(costs, machine, d)) return d;
  }
  return 0;
}

uint32_t SwpPrefetchModel::StateArraySize(uint32_t k, uint32_t distance) {
  return uint32_t(NextPowerOfTwo(uint64_t(k) * distance + 1));
}

uint64_t SwpPrefetchModel::CriticalPathCycles(const CodeCosts& costs,
                                              const MachineParams& machine,
                                              uint32_t distance,
                                              uint64_t num_elements,
                                              uint32_t prefetch_issue_cost) {
  HJ_CHECK(distance >= 1);
  const uint32_t k = costs.k();
  const uint64_t n = num_elements;
  if (n == 0) return 0;
  // prefetch_done[l][i]: completion of the prefetch for m_{l+1} of
  // element i, issued at the end of its stage-l code.
  std::vector<std::vector<uint64_t>> prefetch_done(
      k, std::vector<uint64_t>(n, 0));
  uint64_t t = 0;
  uint64_t last_visit = 0;
  bool have_last_visit = false;
  // Iteration j runs stage 0 of element j, stage l of element j - l*D.
  uint64_t last_iter = (n - 1) + uint64_t(k) * distance;
  for (uint64_t j = 0; j <= last_iter; ++j) {
    if (j < n) {
      t += costs.c[0] + prefetch_issue_cost;
      prefetch_done[0][j] = t;
    }
    for (uint32_t l = 1; l <= k; ++l) {
      uint64_t delay = uint64_t(l) * distance;
      if (j < delay) break;
      uint64_t e = j - delay;
      if (e >= n) continue;
      uint64_t start =
          MaxU(t, prefetch_done[l - 1][e] + machine.full_latency);
      if (have_last_visit) {
        start = MaxU(start, last_visit + machine.bandwidth_gap);
      }
      last_visit = start;
      have_last_visit = true;
      uint32_t code = costs.c[l] + (l < k ? prefetch_issue_cost : 0);
      t = start + code;
      if (l < k) prefetch_done[l][e] = t;
    }
  }
  return t;
}

ParamChoice ChooseParams(const CodeCosts& costs, const MachineParams& machine,
                         uint32_t fallback_group, uint32_t fallback_distance,
                         uint32_t max_group, uint32_t max_distance) {
  ParamChoice choice;
  uint32_t g =
      GroupPrefetchModel::MinGroupSize(costs, machine, max_group);
  choice.group_feasible = g != 0;
  if (g == 0) {
    HJ_LOG_ONCE(Warning)
        << "Theorem 1 has no feasible group size <= " << max_group
        << " for T=" << machine.full_latency << " (C0=" << costs.c[0]
        << "); falling back to G=" << fallback_group
        << " (further occurrences suppressed)";
    g = fallback_group;
  }
  uint32_t d =
      SwpPrefetchModel::MinDistance(costs, machine, max_distance);
  choice.swp_feasible = d != 0;
  if (d == 0) {
    HJ_LOG_ONCE(Warning)
        << "Theorem 2 has no feasible prefetch distance <= " << max_distance
        << " for T=" << machine.full_latency << "; falling back to D="
        << fallback_distance << " (further occurrences suppressed)";
    d = fallback_distance;
  }
  // The LFB/MSHR ceiling overrides the theorems: depths the memory system
  // cannot sustain only queue prefetches behind full fill buffers.
  if (machine.max_outstanding > 0) {
    const uint32_t cap = std::max(1u, machine.max_outstanding);
    if (g > cap) {
      g = cap;
      choice.group_lfb_clamped = true;
    }
    const uint32_t dcap = std::max(1u, cap / std::max(1u, costs.k()));
    if (d > dcap) {
      d = dcap;
      choice.swp_lfb_clamped = true;
    }
  }
  choice.group_size = g;
  choice.prefetch_distance = d;
  return choice;
}

uint64_t BaselineCycles(const CodeCosts& costs, const MachineParams& machine,
                        uint64_t num_elements) {
  uint64_t per = 0;
  for (uint32_t c : costs.c) per += c;
  per += uint64_t(costs.k()) * machine.full_latency;
  return per * num_elements;
}

}  // namespace model
}  // namespace hashjoin
