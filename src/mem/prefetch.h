#ifndef HASHJOIN_MEM_PREFETCH_H_
#define HASHJOIN_MEM_PREFETCH_H_

#include <cstddef>
#include <cstdint>

#include "util/aligned.h"

namespace hashjoin {

/// Portable wrapper around the non-binding software prefetch instruction.
/// On the paper's platform this was a gcc inline-asm Alpha prefetch; here we
/// use __builtin_prefetch which lowers to PREFETCHT0 on x86.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

/// Prefetch with write intent (PREFETCHW where available).
inline void PrefetchWrite(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

/// Prefetches every cache line of [addr, addr+bytes). Used by the simple
/// prefetching scheme, e.g. to pull a whole input page into cache after a
/// disk read (paper section 6).
inline void PrefetchRange(const void* addr, size_t bytes) {
  const char* p = static_cast<const char*>(addr);
  const char* end = p + bytes;
  for (; p < end; p += kCacheLineSize) PrefetchRead(p);
}

}  // namespace hashjoin

#endif  // HASHJOIN_MEM_PREFETCH_H_
