#ifndef HASHJOIN_MEM_MEMORY_MODEL_H_
#define HASHJOIN_MEM_MEMORY_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "mem/prefetch.h"
#include "simcache/memory_sim.h"
#include "simcache/sim_config.h"

namespace hashjoin {

/// The join and partition kernels are templated over a *memory model*
/// policy with this interface:
///
///   void Busy(uint32_t cycles);            // charge computation time
///   void Read(const void* p, size_t n);    // demand read reference
///   void Write(const void* p, size_t n);   // demand write reference
///   void Prefetch(const void* p, size_t n);// software prefetch
///   void Branch(uint32_t site, bool taken);// conditional outcome
///   const sim::SimConfig& config();        // cost constants
///   static constexpr bool kSimulated;
///
/// With RealMemory the policy compiles down to the bare prefetch
/// intrinsics (everything else is a no-op the optimizer removes), so the
/// same kernel body serves real-hardware benchmarking. With SimMemory the
/// event stream drives the simcache model and yields the paper's cycle
/// breakdowns.
struct RealMemory {
  static constexpr bool kSimulated = false;

  void Busy(uint32_t) {}
  void Read(const void*, size_t) {}
  void Write(const void*, size_t) {}
  void Prefetch(const void* p, size_t n = 1) {
    if (n <= kCacheLineSize) {
      PrefetchRead(p);
    } else {
      PrefetchRange(p, n);
    }
  }
  void Branch(uint32_t, bool) {}

  const sim::SimConfig& config() const {
    static const sim::SimConfig kDefault{};
    return kDefault;
  }
};

/// Adapter feeding the kernels' event stream into a MemorySim.
class SimMemory {
 public:
  static constexpr bool kSimulated = true;

  explicit SimMemory(sim::MemorySim* sim) : sim_(sim) {}

  void Busy(uint32_t cycles) { sim_->Busy(cycles); }
  void Read(const void* p, size_t n) { sim_->Access(p, n, /*write=*/false); }
  void Write(const void* p, size_t n) { sim_->Access(p, n, /*write=*/true); }
  void Prefetch(const void* p, size_t n = 1) { sim_->Prefetch(p, n); }
  void Branch(uint32_t site, bool taken) { sim_->Branch(site, taken); }

  const sim::SimConfig& config() const { return sim_->config(); }

  sim::MemorySim* sim() const { return sim_; }

 private:
  sim::MemorySim* sim_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_MEM_MEMORY_MODEL_H_
