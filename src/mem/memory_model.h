#ifndef HASHJOIN_MEM_MEMORY_MODEL_H_
#define HASHJOIN_MEM_MEMORY_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/prefetch.h"
#include "simcache/memory_sim.h"
#include "simcache/sim_config.h"

namespace hashjoin {

/// The join and partition kernels are templated over a *memory model*
/// policy with this interface:
///
///   void Busy(uint32_t cycles);            // charge computation time
///   void Read(const void* p, size_t n);    // demand read reference
///   void Write(const void* p, size_t n);   // demand write reference
///   void Prefetch(const void* p, size_t n);// software prefetch
///   void Branch(uint32_t site, bool taken);// conditional outcome
///   const sim::SimConfig& config();        // cost constants
///   static constexpr bool kSimulated;
///
/// With RealMemory the policy compiles down to the bare prefetch
/// intrinsics (everything else is a no-op the optimizer removes), so the
/// same kernel body serves real-hardware benchmarking. With SimMemory the
/// event stream drives the simcache model and yields the paper's cycle
/// breakdowns.
struct RealMemory {
  static constexpr bool kSimulated = false;

  void Busy(uint32_t) {}
  void Read(const void*, size_t) {}
  void Write(const void*, size_t) {}
  void Prefetch(const void* p, size_t n = 1) {
    if (n <= kCacheLineSize) {
      PrefetchRead(p);
    } else {
      PrefetchRange(p, n);
    }
  }
  void Branch(uint32_t, bool) {}

  const sim::SimConfig& config() const {
    static const sim::SimConfig kDefault{};
    return kDefault;
  }
};

/// Adapter feeding the kernels' event stream into a MemorySim.
class SimMemory {
 public:
  static constexpr bool kSimulated = true;

  explicit SimMemory(sim::MemorySim* sim) : sim_(sim) {}

  void Busy(uint32_t cycles) { sim_->Busy(cycles); }
  void Read(const void* p, size_t n) { sim_->Access(p, n, /*write=*/false); }
  void Write(const void* p, size_t n) { sim_->Access(p, n, /*write=*/true); }
  void Prefetch(const void* p, size_t n = 1) { sim_->Prefetch(p, n); }
  void Branch(uint32_t site, bool taken) { sim_->Branch(site, taken); }

  const sim::SimConfig& config() const { return sim_->config(); }

  sim::MemorySim* sim() const { return sim_; }

 private:
  sim::MemorySim* sim_;
};

/// Per-worker memory models for the morsel-parallel executor. Kernels
/// stay single-threaded internally; each worker thread records into its
/// own model instance, and MergeInto folds the workers' counters into
/// the main model after the parallel phase so windowed measurements on
/// the main model stay exact. For RealMemory the instances are free; for
/// SimMemory each worker gets its own MemorySim (own simulated caches,
/// TLB, and clock — the model of one core per worker).
template <typename MM>
class WorkerMemorySet;

template <>
class WorkerMemorySet<RealMemory> {
 public:
  WorkerMemorySet(RealMemory& /*main*/, uint32_t num_workers)
      : models_(num_workers) {}

  RealMemory& model(uint32_t worker) { return models_[worker]; }
  sim::SimStats WorkerStats(uint32_t) const { return sim::SimStats{}; }
  void MergeInto(RealMemory&) {}

 private:
  std::vector<RealMemory> models_;
};

template <>
class WorkerMemorySet<SimMemory> {
 public:
  WorkerMemorySet(SimMemory& main, uint32_t num_workers) {
    sims_.reserve(num_workers);
    models_.reserve(num_workers);
    for (uint32_t i = 0; i < num_workers; ++i) {
      sims_.push_back(
          std::make_unique<sim::MemorySim>(main.sim()->config()));
      models_.emplace_back(sims_.back().get());
    }
  }

  SimMemory& model(uint32_t worker) { return models_[worker]; }

  /// Counters a worker accumulated so far (per-thread breakdowns).
  sim::SimStats WorkerStats(uint32_t worker) const {
    return sims_[worker]->stats();
  }

  void MergeInto(SimMemory& main) {
    for (auto& sim : sims_) main.sim()->AddStats(sim->stats());
  }

 private:
  std::vector<std::unique_ptr<sim::MemorySim>> sims_;
  std::vector<SimMemory> models_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_MEM_MEMORY_MODEL_H_
