#ifndef HASHJOIN_HASH_CHAINED_HASH_TABLE_H_
#define HASHJOIN_HASH_CHAINED_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "util/aligned.h"

namespace hashjoin {

/// A cell of a chained bucket: hash code, tuple pointer, and the next
/// pointer that makes the structure a linked list.
struct ChainedCell {
  uint32_t hash = 0;
  uint32_t reserved = 0;
  const uint8_t* tuple = nullptr;
  ChainedCell* next = nullptr;
};

/// Classic chained bucket hashing — the structure the paper's hash table
/// (Figure 2) deliberately improves upon (§3 footnote 3): every probe
/// chases a linked list, each hop a dependent memory reference whose
/// address is unknown until the previous cell arrives. Included as the
/// experimental contrast for the pointer-chasing problem: naive
/// prefetching cannot help it, and neither group nor software-pipelined
/// prefetching can pipeline *within* one chain.
class ChainedHashTable {
 public:
  explicit ChainedHashTable(uint64_t num_buckets);

  ChainedHashTable(const ChainedHashTable&) = delete;
  ChainedHashTable& operator=(const ChainedHashTable&) = delete;

  uint64_t num_buckets() const { return num_buckets_; }
  uint64_t num_tuples() const { return num_tuples_; }

  uint64_t BucketIndex(uint32_t hash) const { return hash % num_buckets_; }
  ChainedCell* head(uint64_t index) { return heads_[index]; }
  const ChainedCell* head(uint64_t index) const { return heads_[index]; }

  /// Address of the bucket's head slot (for memory-model accounting).
  const ChainedCell* const* head_slot(uint64_t index) const {
    return &heads_[index];
  }

  /// Push-front insert (order within a bucket is immaterial).
  void Insert(uint32_t hash, const uint8_t* tuple);

  /// Invokes f(tuple) for every cell whose hash code matches.
  template <typename F>
  void Probe(uint32_t hash, F&& f) const {
    for (const ChainedCell* c = heads_[BucketIndex(hash)]; c != nullptr;
         c = c->next) {
      if (c->hash == hash) f(c->tuple);
    }
  }

  uint64_t CountTuplesSlow() const;

 private:
  ChainedCell* ArenaAlloc();

  uint64_t num_buckets_;
  std::vector<ChainedCell*> heads_;
  std::vector<AlignedBuffer<ChainedCell>> arena_blocks_;
  uint64_t arena_used_ = 0;
  uint64_t arena_capacity_ = 0;
  uint64_t num_tuples_ = 0;
};

}  // namespace hashjoin

#endif  // HASHJOIN_HASH_CHAINED_HASH_TABLE_H_
