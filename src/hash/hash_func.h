#ifndef HASHJOIN_HASH_HASH_FUNC_H_
#define HASHJOIN_HASH_HASH_FUNC_H_

#include <cstddef>
#include <cstdint>

namespace hashjoin {

/// Simple XOR-and-shift hash converting join keys of any length to 4-byte
/// hash codes (paper §7.1). Hash codes serve two roles: partition number
/// (code % num_partitions) in the partition phase and bucket number
/// (code % table_size) in the join phase, so the implementation mixes
/// bits well in both the low and high halves.
uint32_t HashBytes(const void* key, size_t length);

/// Fast path for 4-byte integer keys (the experiment schema).
inline uint32_t HashKey32(uint32_t key) {
  uint32_t h = key;
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

}  // namespace hashjoin

#endif  // HASHJOIN_HASH_HASH_FUNC_H_
