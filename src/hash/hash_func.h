#ifndef HASHJOIN_HASH_HASH_FUNC_H_
#define HASHJOIN_HASH_HASH_FUNC_H_

#include <cstddef>
#include <cstdint>

namespace hashjoin {

/// Simple XOR-and-shift hash converting join keys of any length to 4-byte
/// hash codes (paper §7.1). Hash codes serve two roles: partition number
/// (code % num_partitions) in the partition phase and bucket number
/// (code % table_size) in the join phase, so the implementation mixes
/// bits well in both the low and high halves.
uint32_t HashBytes(const void* key, size_t length);

/// Fast path for 4-byte integer keys (the experiment schema).
inline uint32_t HashKey32(uint32_t key) {
  uint32_t h = key;
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

/// Seed-salted rehash for recursive repartitioning of skewed partitions.
/// Level L's partition function must be independent of levels 0..L-1:
/// every tuple of an overflowing partition already agrees on
/// hash % fan_out, so re-splitting with the same function would put the
/// whole partition into one sub-partition again. Mixing a per-level salt
/// through the finalizer decorrelates the levels while staying a pure
/// function of the memoized hash code (no key re-read needed).
inline uint32_t SaltedRehash(uint32_t hash, uint32_t level) {
  return HashKey32(hash ^ (0x9E3779B9u * (level + 1)));
}

}  // namespace hashjoin

#endif  // HASHJOIN_HASH_HASH_FUNC_H_
