#include "hash/hash_func.h"

#include <cstring>

namespace hashjoin {

uint32_t HashBytes(const void* key, size_t length) {
  const uint8_t* p = static_cast<const uint8_t*>(key);
  uint32_t h = 0x811c9dc5u;
  // Word-at-a-time XOR + rotate, finalized with avalanche shifts.
  while (length >= 4) {
    uint32_t w;
    std::memcpy(&w, p, 4);
    h ^= w;
    h = (h << 5) | (h >> 27);
    h *= 0x9e3779b1u;
    p += 4;
    length -= 4;
  }
  while (length > 0) {
    h ^= *p++;
    h = (h << 5) | (h >> 27);
    --length;
  }
  h ^= h >> 15;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  return h;
}

}  // namespace hashjoin
