#ifndef HASHJOIN_HASH_HASH_TABLE_H_
#define HASHJOIN_HASH_HASH_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/aligned.h"

namespace hashjoin {

/// One entry of a bucket's hash-cell array: the memoized 4-byte hash code
/// (a cheap filter before the real key comparison) and the build tuple
/// pointer. Exactly the paper's "hash cell" (Figure 2).
struct HashCell {
  uint32_t hash = 0;
  uint32_t reserved = 0;  // alignment padding, keeps cells 16 bytes
  const uint8_t* tuple = nullptr;
};
static_assert(sizeof(HashCell) == 16);

/// A hash bucket header (Figure 2): holds one inline hash cell — so a
/// bucket with a single tuple needs no extra memory reference — plus the
/// pointer/size of a dynamically grown hash-cell array for the rest.
/// `owner` supports the prefetching kernels' read-write conflict
/// protocols: 0 means free; group prefetching sets it to a sentinel busy
/// mark, software-pipelined prefetching stores 1 + the state-array index
/// of the in-flight inserting tuple (§4.4, §5.3).
struct BucketHeader {
  uint32_t hash = 0;             // inline cell: hash code
  uint32_t count = 0;            // total tuples in this bucket
  const uint8_t* tuple = nullptr;  // inline cell: build tuple
  HashCell* array = nullptr;     // cells for tuples 2..count
  uint32_t capacity = 0;         // allocated entries in `array`
  uint32_t owner = 0;            // conflict-protocol field (see above)
};
static_assert(sizeof(BucketHeader) == 32);

/// The paper's in-memory join-phase hash table: an array of bucket
/// headers and per-bucket cell arrays carved from an arena. This improves
/// on chained bucket hashing by replacing linked lists with arrays,
/// avoiding pointer chasing (§3 footnote 3).
///
/// The prefetching kernels intentionally access `buckets()` and
/// `GrowArray()` directly: their code stages interleave partial hash
/// table visits of many tuples, which no encapsulated Insert()/Probe()
/// call could express. The encapsulated methods below are the reference
/// implementation used by the baseline kernels and by tests as an oracle.
class HashTable {
 public:
  /// Creates a table with `num_buckets` buckets. The GRACE driver picks
  /// num_buckets relatively prime to the partition count (§7.1).
  explicit HashTable(uint64_t num_buckets);

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  uint64_t num_buckets() const { return num_buckets_; }
  uint64_t num_tuples() const { return num_tuples_; }

  uint64_t BucketIndex(uint32_t hash) const { return hash % num_buckets_; }
  BucketHeader* bucket(uint64_t index) { return &buckets_[index]; }
  const BucketHeader* bucket(uint64_t index) const {
    return &buckets_[index];
  }

  /// Reference insert (baseline kernels / test oracle).
  void Insert(uint32_t hash, const uint8_t* tuple);

  /// Reference probe: invokes f(build_tuple) for every cell whose hash
  /// code equals `hash`. Callers still compare full keys.
  template <typename F>
  void Probe(uint32_t hash, F&& f) const {
    const BucketHeader* b = bucket(BucketIndex(hash));
    if (b->count == 0) return;
    if (b->hash == hash) f(b->tuple);
    for (uint32_t i = 0; i + 1 < b->count; ++i) {
      if (b->array[i].hash == hash) f(b->array[i].tuple);
    }
  }

  /// Ensures the bucket's cell array can hold one more cell; returns the
  /// (possibly moved) array. Exposed for the prefetching kernels.
  HashCell* EnsureArrayCapacity(BucketHeader* b);

  /// Appends a cell to a bucket that already holds its inline cell.
  /// Callers guarantee b->count >= 1.
  void AppendCell(BucketHeader* b, uint32_t hash, const uint8_t* tuple);

  /// Counts tuples by walking every bucket (test invariant helper).
  uint64_t CountTuplesSlow() const;

  /// Approximate bytes a table of `tuples` tuples will occupy; the GRACE
  /// driver uses this to size partitions against the memory budget.
  static uint64_t EstimateBytes(uint64_t tuples);

  /// Empties all buckets, retaining bucket array memory.
  void Reset();

  void BumpTupleCount() { ++num_tuples_; }

 private:
  HashCell* ArenaAlloc(uint32_t cells);

  uint64_t num_buckets_;
  AlignedBuffer<BucketHeader> buckets_;
  std::vector<AlignedBuffer<HashCell>> arena_blocks_;
  uint64_t arena_used_ = 0;      // cells used in the current block
  uint64_t arena_capacity_ = 0;  // cells in the current block
  uint64_t num_tuples_ = 0;
};

}  // namespace hashjoin

#endif  // HASHJOIN_HASH_HASH_TABLE_H_
