#include "hash/hash_table.h"

#include <cstring>

#include "util/logging.h"

namespace hashjoin {

namespace {
// Cells per arena block: 64K cells = 1MB blocks.
constexpr uint64_t kArenaBlockCells = 64 * 1024;
// Initial cell-array capacity when a bucket overflows its inline cell.
constexpr uint32_t kInitialArrayCapacity = 4;
}  // namespace

HashTable::HashTable(uint64_t num_buckets) : num_buckets_(num_buckets) {
  HJ_CHECK(num_buckets_ > 0);
  buckets_ = MakeAlignedBuffer<BucketHeader>(num_buckets_, kCacheLineSize);
  for (uint64_t i = 0; i < num_buckets_; ++i) buckets_[i] = BucketHeader{};
}

HashCell* HashTable::ArenaAlloc(uint32_t cells) {
  if (arena_used_ + cells > arena_capacity_) {
    uint64_t block = std::max<uint64_t>(kArenaBlockCells, cells);
    arena_blocks_.push_back(MakeAlignedBuffer<HashCell>(block));
    arena_used_ = 0;
    arena_capacity_ = block;
  }
  HashCell* p = arena_blocks_.back().get() + arena_used_;
  arena_used_ += cells;
  return p;
}

HashCell* HashTable::EnsureArrayCapacity(BucketHeader* b) {
  // Cells beyond the inline one live in the array: `count - 1` of them.
  uint32_t in_array = b->count > 0 ? b->count - 1 : 0;
  if (b->array == nullptr) {
    b->array = ArenaAlloc(kInitialArrayCapacity);
    b->capacity = kInitialArrayCapacity;
  } else if (in_array == b->capacity) {
    uint32_t new_cap = b->capacity * 2;
    HashCell* bigger = ArenaAlloc(new_cap);
    std::memcpy(bigger, b->array, size_t(in_array) * sizeof(HashCell));
    b->array = bigger;
    b->capacity = new_cap;
  }
  return b->array;
}

void HashTable::AppendCell(BucketHeader* b, uint32_t hash,
                           const uint8_t* tuple) {
  HJ_DCHECK(b->count >= 1);
  EnsureArrayCapacity(b);
  HashCell* cell = &b->array[b->count - 1];
  cell->hash = hash;
  cell->tuple = tuple;
  ++b->count;
  ++num_tuples_;
}

void HashTable::Insert(uint32_t hash, const uint8_t* tuple) {
  BucketHeader* b = bucket(BucketIndex(hash));
  if (b->count == 0) {
    b->hash = hash;
    b->tuple = tuple;
    b->count = 1;
    ++num_tuples_;
    return;
  }
  AppendCell(b, hash, tuple);
}

uint64_t HashTable::CountTuplesSlow() const {
  uint64_t n = 0;
  for (uint64_t i = 0; i < num_buckets_; ++i) n += buckets_[i].count;
  return n;
}

uint64_t HashTable::EstimateBytes(uint64_t tuples) {
  // One bucket header per tuple (load factor ~1) plus an average of one
  // cell of arena space per tuple (most buckets hold 1-2 tuples).
  return tuples * (sizeof(BucketHeader) + sizeof(HashCell));
}

void HashTable::Reset() {
  for (uint64_t i = 0; i < num_buckets_; ++i) buckets_[i] = BucketHeader{};
  arena_blocks_.clear();
  arena_used_ = 0;
  arena_capacity_ = 0;
  num_tuples_ = 0;
}

}  // namespace hashjoin
