#include "hash/chained_hash_table.h"

#include "util/logging.h"
#include "util/random.h"

namespace hashjoin {

namespace {
constexpr uint64_t kArenaBlockCells = 64 * 1024;
}  // namespace

ChainedHashTable::ChainedHashTable(uint64_t num_buckets)
    : num_buckets_(num_buckets), heads_(num_buckets, nullptr) {
  HJ_CHECK(num_buckets_ > 0);
}

ChainedCell* ChainedHashTable::ArenaAlloc() {
  if (arena_used_ == arena_capacity_) {
    arena_blocks_.push_back(MakeAlignedBuffer<ChainedCell>(kArenaBlockCells));
    arena_used_ = 0;
    arena_capacity_ = kArenaBlockCells;
  }
  return arena_blocks_.back().get() + arena_used_++;
}

void ChainedHashTable::Insert(uint32_t hash, const uint8_t* tuple) {
  ChainedCell* cell = ArenaAlloc();
  cell->hash = hash;
  cell->tuple = tuple;
  uint64_t idx = BucketIndex(hash);
  cell->next = heads_[idx];
  heads_[idx] = cell;
  ++num_tuples_;
}

uint64_t ChainedHashTable::CountTuplesSlow() const {
  uint64_t n = 0;
  for (const ChainedCell* head : heads_) {
    for (const ChainedCell* c = head; c != nullptr; c = c->next) ++n;
  }
  return n;
}

}  // namespace hashjoin
