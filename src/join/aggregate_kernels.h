#ifndef HASHJOIN_JOIN_AGGREGATE_KERNELS_H_
#define HASHJOIN_JOIN_AGGREGATE_KERNELS_H_

#include <algorithm>
#include <cstring>
#include <deque>
#include <vector>

#include "hash/hash_func.h"
#include "hash/hash_table.h"
#include "join/join_common.h"
#include "model/cost_model.h"
#include "simcache/sim_config.h"
#include "storage/relation.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace hashjoin {

/// Aggregation-loop stage costs for the generalized prefetching models:
/// stage 0 hashes the key, stage 1 visits the accumulator cell (the one
/// dependent reference, k = 1). The canonical cost vector for tuning the
/// aggregation kernels' group size / prefetch distance with
/// model::ChooseParams — shared by AggregateOperator's auto-tune path
/// and the real_agg bench.
inline model::CodeCosts AggregateCodeCosts() {
  sim::SimConfig def;
  return model::CodeCosts{
      {def.cost_hash, def.cost_visit_cell + def.cost_key_compare}};
}

/// Hash-based group-by aggregation accelerated with the paper's
/// prefetching techniques — the extension the conclusions call out
/// ("our techniques can improve other hash-based algorithms such as
/// hash-based group-by and aggregation"). Groups by the 4-byte key at
/// offset 0 and maintains COUNT(*) and SUM over an 8-byte signed value
/// at a caller-chosen offset.
struct AggState {
  uint32_t key = 0;
  uint32_t pad = 0;
  uint64_t count = 0;
  int64_t sum = 0;
};

/// Aggregation hash table: reuses the join-phase bucket structure, with
/// cells pointing at AggState records in a stable arena.
class HashAggTable {
 public:
  explicit HashAggTable(uint64_t num_buckets) : table_(num_buckets) {}

  HashTable& table() { return table_; }
  const HashTable& table() const { return table_; }

  /// Allocates a zeroed group state (stable address).
  AggState* NewState(uint32_t key) {
    states_.push_back(AggState{});
    states_.back().key = key;
    return &states_.back();
  }

  uint64_t num_groups() const { return states_.size(); }

  /// Invokes f(const AggState&) for every group.
  template <typename F>
  void ForEachGroup(F&& f) const {
    for (const AggState& s : states_) f(s);
  }

  /// Finds a group's state (test helper); nullptr if absent.
  const AggState* Find(uint32_t key) const {
    const AggState* found = nullptr;
    table_.Probe(HashKey32(key), [&](const uint8_t* p) {
      const AggState* s = reinterpret_cast<const AggState*>(p);
      if (s->key == key) found = s;
    });
    return found;
  }

 private:
  HashTable table_;
  std::deque<AggState> states_;  // deque: stable addresses across growth
};

/// Per-tuple pipeline state for the prefetched aggregation loops.
struct AggPipelineState {
  uint32_t hash = 0;
  uint32_t key = 0;
  int64_t value = 0;
  AggState* state = nullptr;

  /// Clears the per-tuple fields before a new tuple occupies this state
  /// slot (stage 0); shared by every scheme (see ProbeState).
  void ResetForTuple() {
    value = 0;
    state = nullptr;
  }
};

/// Stage 0 of aggregation, shared by every scheme: pull the next input
/// tuple, read its key and value, hash, and (when `prefetch` is set)
/// prefetch the input page on entry and the bucket header the visit
/// stage will touch. Returns false at end of input.
template <typename MM>
inline bool AggStage0(MM& mm, TupleCursor& cursor, AggPipelineState& st,
                      uint32_t value_offset, HashTable& ht, bool prefetch) {
  const auto& cfg = mm.config();
  const SlottedPage::Slot* slot;
  const uint8_t* tuple;
  bool new_page = false;
  if (!cursor.Next(&slot, &tuple, &new_page)) return false;
  if (prefetch && new_page) {
    mm.Prefetch(cursor.CurrentPageData(), cursor.page_size());
  }
  mm.Read(slot, sizeof(SlottedPage::Slot));
  st.ResetForTuple();
  mm.Read(tuple, 4);
  std::memcpy(&st.key, tuple, 4);
  st.hash = HashKey32(st.key);
  mm.Busy(cfg.cost_hash * 2);
  if (value_offset + 8 <= slot->length) {
    mm.Read(tuple + value_offset, 8);
    std::memcpy(&st.value, tuple + value_offset, 8);
  }
  if (prefetch) {
    mm.Prefetch(ht.bucket(ht.BucketIndex(st.hash)), sizeof(BucketHeader));
  }
  return true;
}

/// Locates (or creates) the group state for one tuple. The bucket and
/// its cells are resident after the visit, so creation completes inside
/// this stage — unlike join building, aggregation needs no busy-flag
/// protocol: a second tuple of the same group later in the stage loop
/// simply finds the freshly created state.
template <typename MM>
inline AggState* AggVisitBucket(MM& mm, HashAggTable* agg, uint32_t hash,
                                uint32_t key) {
  const auto& cfg = mm.config();
  HashTable& ht = agg->table();
  BucketHeader* b = ht.bucket(ht.BucketIndex(hash));
  mm.Read(b, sizeof(BucketHeader));
  mm.Busy(cfg.cost_visit_header);
  if (b->count > 0) {
    if (b->hash == hash) {
      AggState* s =
          reinterpret_cast<AggState*>(const_cast<uint8_t*>(b->tuple));
      mm.Read(&s->key, sizeof(s->key));
      if (s->key == key) return s;
    }
    if (b->count > 1) {
      uint32_t n = b->count - 1;
      mm.Read(b->array, size_t(n) * sizeof(HashCell));
      mm.Busy(cfg.cost_visit_cell * n);
      for (uint32_t i = 0; i < n; ++i) {
        if (b->array[i].hash != hash) continue;
        AggState* s = reinterpret_cast<AggState*>(
            const_cast<uint8_t*>(b->array[i].tuple));
        mm.Read(&s->key, sizeof(s->key));
        if (s->key == key) return s;
      }
    }
  }
  AggState* s = agg->NewState(key);
  ht.Insert(hash, reinterpret_cast<const uint8_t*>(s));
  mm.Write(b, sizeof(BucketHeader));
  mm.Busy(cfg.cost_slot_bookkeeping);
  return s;
}

/// One accumulator update (the second dependent reference, m2).
template <typename MM>
inline void AggUpdate(MM& mm, AggPipelineState& st) {
  const auto& cfg = mm.config();
  mm.Read(st.state, sizeof(AggState));
  st.state->count += 1;
  st.state->sum += st.value;
  mm.Write(st.state, sizeof(AggState));
  mm.Busy(cfg.cost_slot_bookkeeping);
}

/// Baseline hash aggregation: one tuple per iteration, no prefetching.
template <typename MM>
void AggregateBaseline(MM& mm, const Relation& input, uint32_t value_offset,
                       HashAggTable* agg) {
  TupleCursor cursor(input);
  AggPipelineState st;
  while (AggStage0(mm, cursor, st, value_offset, agg->table(),
                   /*prefetch=*/false)) {
    st.state = AggVisitBucket(mm, agg, st.hash, st.key);
    AggUpdate(mm, st);
  }
}

/// Simple prefetching for aggregation: the stage-0 input-page prefetch
/// plus the just-in-time bucket prefetch, issued immediately before the
/// visit (same idea — and same limitation — as ProbeSimple).
template <typename MM>
void AggregateSimple(MM& mm, const Relation& input, uint32_t value_offset,
                     HashAggTable* agg) {
  TupleCursor cursor(input);
  AggPipelineState st;
  while (AggStage0(mm, cursor, st, value_offset, agg->table(),
                   /*prefetch=*/true)) {
    st.state = AggVisitBucket(mm, agg, st.hash, st.key);
    AggUpdate(mm, st);
  }
}

/// Group-prefetched hash aggregation (k = 2): stage 0 hashes a group of
/// tuples and prefetches their buckets; stage 1 visits buckets, resolves
/// or creates the group states, and prefetches them; stage 2 updates the
/// accumulators.
template <typename MM>
void AggregateGroup(MM& mm, const Relation& input, uint32_t value_offset,
                    HashAggTable* agg, uint32_t group_size) {
  const auto& cfg = mm.config();
  const uint32_t group = std::max(1u, group_size);
  TupleCursor cursor(input);
  std::vector<AggPipelineState> states(group);
  HashTable& ht = agg->table();
  bool more = true;
  while (more) {
    uint32_t g = 0;
    while (g < group) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      if (!AggStage0(mm, cursor, states[g], value_offset, ht,
                     /*prefetch=*/true)) {
        more = false;
        break;
      }
      ++g;
    }
    for (uint32_t i = 0; i < g; ++i) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      states[i].state =
          AggVisitBucket(mm, agg, states[i].hash, states[i].key);
      mm.Prefetch(states[i].state, sizeof(AggState));
    }
    for (uint32_t i = 0; i < g; ++i) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      AggUpdate(mm, states[i]);
    }
  }
}

/// Software-pipelined hash aggregation (k = 2): iteration j runs stage 0
/// of tuple j, the bucket visit of tuple j-D, and the accumulator update
/// of tuple j-2D, with the circular state array of §5.3. Group creation
/// completes inside the bucket-visit stage (see AggVisitBucket), so —
/// unlike join building — no waiting queue is needed: a later tuple of
/// the same group observes the created state.
template <typename MM>
void AggregateSwp(MM& mm, const Relation& input, uint32_t value_offset,
                  HashAggTable* agg, uint32_t prefetch_distance) {
  const auto& cfg = mm.config();
  const uint64_t d = std::max(1u, prefetch_distance);
  const uint64_t ring = NextPowerOfTwo(2 * d + 1);
  const uint64_t mask = ring - 1;
  TupleCursor cursor(input);
  std::vector<AggPipelineState> states(ring);
  HashTable& ht = agg->table();

  uint64_t n = UINT64_MAX;
  uint64_t issued = 0;
  for (uint64_t j = 0;; ++j) {
    mm.Busy(cfg.cost_stage_overhead_spp);
    if (j < n) {
      if (AggStage0(mm, cursor, states[j & mask], value_offset, ht,
                    /*prefetch=*/true)) {
        ++issued;
      } else {
        n = issued;
      }
    }
    if (j >= d && j - d < n) {
      mm.Busy(cfg.cost_stage_overhead_spp);
      AggPipelineState& st = states[(j - d) & mask];
      st.state = AggVisitBucket(mm, agg, st.hash, st.key);
      mm.Prefetch(st.state, sizeof(AggState));
    }
    if (j >= 2 * d && j - 2 * d < n) {
      mm.Busy(cfg.cost_stage_overhead_spp);
      AggUpdate(mm, states[(j - 2 * d) & mask]);
    }
    if (n != UINT64_MAX && j >= 2 * d && j - 2 * d + 1 >= n) break;
  }
}

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_AGGREGATE_KERNELS_H_
