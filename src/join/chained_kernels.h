#ifndef HASHJOIN_JOIN_CHAINED_KERNELS_H_
#define HASHJOIN_JOIN_CHAINED_KERNELS_H_

#include <cstring>

#include "hash/chained_hash_table.h"
#include "hash/hash_func.h"
#include "join/join_common.h"
#include "storage/relation.h"

namespace hashjoin {

/// Builds a chained-bucket hash table from a partition (no prefetching:
/// the insert path is one dependent reference to the bucket head slot).
template <typename MM>
void BuildChained(MM& mm, const Relation& build, ChainedHashTable* ht,
                  HashCodeMode hash_mode = HashCodeMode::kMemoized) {
  const auto& cfg = mm.config();
  TupleCursor cursor(build);
  const SlottedPage::Slot* slot;
  const uint8_t* tuple;
  while (cursor.Next(&slot, &tuple)) {
    mm.Read(slot, sizeof(SlottedPage::Slot));
    uint32_t hash;
    if (hash_mode == HashCodeMode::kMemoized) {
      hash = slot->hash_code;
      mm.Busy(cfg.cost_slot_bookkeeping);
    } else {
      uint32_t key;
      mm.Read(tuple, 4);
      std::memcpy(&key, tuple, 4);
      hash = HashKey32(key);
      mm.Busy(cfg.cost_hash);
    }
    mm.Busy(cfg.cost_hash);
    uint64_t idx = ht->BucketIndex(hash);
    // Head slot read-modify-write plus the new cell's initialization.
    mm.Read(ht->head_slot(idx), sizeof(void*));
    ht->Insert(hash, tuple);
    mm.Write(ht->head_slot(idx), sizeof(void*));
    mm.Write(ht->head(idx), sizeof(ChainedCell));
    mm.Busy(cfg.cost_visit_header);
  }
}

/// How the chained probe attempts to prefetch.
enum class ChainedPrefetch {
  kNone,      // plain pointer chasing
  kNextCell,  // the §3 "naive" idea: prefetch c->next while visiting c
};

/// Probes a chained-bucket table one tuple at a time. With kNextCell it
/// issues the naive within-visit prefetch the paper's §3 argues cannot
/// work: the next cell's address is only known once the current cell has
/// already arrived, so the prefetch overlaps nothing but the hash-code
/// comparison. This kernel exists to measure that argument.
template <typename MM>
uint64_t ProbeChained(MM& mm, const Relation& probe,
                      const ChainedHashTable& ht, uint32_t build_tuple_size,
                      ChainedPrefetch prefetch_mode, Relation* out,
                      HashCodeMode hash_mode = HashCodeMode::kMemoized) {
  const auto& cfg = mm.config();
  uint32_t probe_tuple_size = probe.schema().fixed_size();
  OutputSink sink(out);
  TupleCursor cursor(probe);
  const SlottedPage::Slot* slot;
  const uint8_t* tuple;
  uint64_t outputs = 0;
  while (cursor.Next(&slot, &tuple)) {
    mm.Read(slot, sizeof(SlottedPage::Slot));
    uint32_t hash;
    if (hash_mode == HashCodeMode::kMemoized) {
      hash = slot->hash_code;
      mm.Busy(cfg.cost_slot_bookkeeping);
    } else {
      uint32_t key;
      mm.Read(tuple, 4);
      std::memcpy(&key, tuple, 4);
      hash = HashKey32(key);
      mm.Busy(cfg.cost_hash);
    }
    mm.Busy(cfg.cost_hash);
    for (const ChainedCell* c = ht.head(ht.BucketIndex(hash));
         c != nullptr; c = c->next) {
      mm.Read(c, sizeof(ChainedCell));
      if (prefetch_mode == ChainedPrefetch::kNextCell &&
          c->next != nullptr) {
        // Naive: by the time this issues, the cell is already here; the
        // prefetch can only overlap the comparison below (§3).
        mm.Prefetch(c->next, sizeof(ChainedCell));
      }
      mm.Busy(cfg.cost_visit_cell);
      bool match = (c->hash == hash);
      mm.Branch(kBranchCellHashMatch, match);
      if (!match) continue;
      mm.Read(c->tuple, build_tuple_size);
      mm.Busy(cfg.cost_key_compare);
      if (std::memcmp(c->tuple, tuple, 4) != 0) continue;
      uint16_t out_size = uint16_t(build_tuple_size + probe_tuple_size);
      uint8_t* dst = sink.Alloc(out_size);
      std::memcpy(dst, c->tuple, build_tuple_size);
      std::memcpy(dst + build_tuple_size, tuple, probe_tuple_size);
      mm.Write(dst, out_size);
      mm.Busy(cfg.cost_tuple_copy_per_line *
              ((out_size + kCacheLineSize - 1) / kCacheLineSize));
      ++outputs;
    }
  }
  sink.Final();
  return outputs;
}

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_CHAINED_KERNELS_H_
