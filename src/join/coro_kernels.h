#ifndef HASHJOIN_JOIN_CORO_KERNELS_H_
#define HASHJOIN_JOIN_CORO_KERNELS_H_

// Coroutine-interleaved execution policy (AMAC-style): W long-lived
// tuple chains share one input cursor, each chain running the same
// stage functions as the hand-scheduled schemes with a co_await
// suspension at every stage boundary. A round-robin scheduler resumes
// the chains in turn, so between a chain's prefetch and its dependent
// access every other chain executes one stage — the same overlap the
// paper builds by strip-mining (§4) or software-pipelining (§5), but
// with the per-tuple state machine kept implicit in the coroutine
// frame. See "Asynchronous Memory Access Chaining" and "Interleaving
// with Coroutines" (PAPERS.md); DESIGN.md "Execution policies".
//
// Everything here compiles only when the toolchain supports C++20
// coroutines (HASHJOIN_HAS_COROUTINES, probed by CMake); otherwise the
// kCoro scheme reports unavailable and the dispatchers in exec_policy.h
// refuse it.

#include "join/aggregate_kernels.h"
#include "join/build_kernels.h"
#include "join/join_common.h"
#include "join/partition_kernels.h"
#include "join/probe_kernels.h"
#include "util/logging.h"

#if HASHJOIN_HAS_COROUTINES

#include <coroutine>
#include <exception>
#include <utility>
#include <vector>

namespace hashjoin {

/// Minimal coroutine task for the kernel chains: lazily started (the
/// scheduler's first Resume runs stage 0), suspends at co_await
/// NextStage{}, and keeps the frame alive after completion so done() is
/// observable. Move-only; the destructor frees the frame.
class KernelCoro {
 public:
  /// The stage-boundary awaiter. hjlint's prefetch-stage-discipline rule
  /// treats a `co_await` line as the end of a stage segment.
  using NextStage = std::suspend_always;

  struct promise_type {
    KernelCoro get_return_object() {
      return KernelCoro(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };

  KernelCoro() = default;
  explicit KernelCoro(std::coroutine_handle<promise_type> h) : handle_(h) {}
  KernelCoro(KernelCoro&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  KernelCoro& operator=(KernelCoro&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  KernelCoro(const KernelCoro&) = delete;
  KernelCoro& operator=(const KernelCoro&) = delete;
  ~KernelCoro() {
    if (handle_) handle_.destroy();
  }

  bool done() const { return !handle_ || handle_.done(); }

  /// Runs the chain up to its next co_await (one stage).
  void Resume() { handle_.resume(); }

 private:
  std::coroutine_handle<promise_type> handle_;
};

/// Round-robin scheduler over `width` chains: every live chain executes
/// exactly one stage per sweep, so a chain that prefetched and suspended
/// gets width-1 stages of other chains' work between its prefetch and
/// its dependent access. Charges cost_stage_overhead_coro per resume —
/// the scheduler dispatch plus the frame switch a suspension implies.
template <typename MM, typename MakeChain>
void RunCoroPipeline(MM& mm, uint32_t width, MakeChain&& make_chain) {
  width = std::max(1u, width);
  const auto& cfg = mm.config();
  std::vector<KernelCoro> chains;
  chains.reserve(width);
  for (uint32_t i = 0; i < width; ++i) chains.push_back(make_chain(i));
  uint32_t live = width;
  while (live > 0) {
    for (KernelCoro& chain : chains) {
      if (chain.done()) continue;
      mm.Busy(cfg.cost_stage_overhead_coro);
      chain.Resume();
      if (chain.done()) --live;
    }
  }
}

/// One probe chain: pulls tuples from the shared cursor until the input
/// is exhausted, suspending between the probe stages. A chain's stage 3
/// and its next tuple's stage 0 share a resume, as in AMAC's FINISHED
/// transition.
template <typename MM>
KernelCoro ProbeChain(ProbeContext<MM>& ctx, ProbeState& st) {
  while (ProbeStage0(ctx, st, /*prefetch=*/true)) {
    co_await KernelCoro::NextStage{};
    ProbeStage1(ctx, st, /*prefetch=*/true);
    co_await KernelCoro::NextStage{};
    ProbeStage2(ctx, st, /*prefetch=*/true);
    co_await KernelCoro::NextStage{};
    ProbeStage3(ctx, st);
  }
}

/// Coroutine-interleaved probing. Interleave width W comes from the
/// effective group size (the drivers feed it from model::ChooseParams or
/// an online tuner — the same Theorem-1 sizing GP uses: W concurrent
/// chains hide the same latency G concurrent group slots do). W is fixed
/// for the life of the pipeline; live overrides apply at pass start.
template <typename MM>
uint64_t ProbeCoro(MM& mm, const Relation& probe, const HashTable& ht,
                   uint32_t build_tuple_size, const KernelParams& params,
                   Relation* out, ProbeStats* stats = nullptr) {
  const uint32_t width = params.EffectiveGroupSize();
  ProbeContext<MM> ctx(&mm, &ht, build_tuple_size,
                       probe.schema().fixed_size(), probe, out, params);
  std::vector<ProbeState> states(width);
  RunCoroPipeline(mm, width,
                  [&](uint32_t i) { return ProbeChain(ctx, states[i]); });
  return FinishProbe(ctx, stats);
}

/// One build chain. A busy bucket (owned by another in-flight chain)
/// suspends and retries: the owner is resumed before this chain's next
/// retry — round-robin guarantees it — and its stage 2 releases the
/// bucket, so the retry loop always terminates. This is the coroutine
/// analogue of §5.3's waiting queue, with the scheduler's sweep standing
/// in for the explicit queue links.
template <typename MM>
KernelCoro BuildChain(BuildContext<MM>& ctx, BuildState& st,
                      uint32_t owner_tag) {
  while (BuildStage0(ctx, st, /*prefetch=*/true)) {
    co_await KernelCoro::NextStage{};
    while (!BuildStage1(ctx, st, /*prefetch=*/true, owner_tag)) {
      co_await KernelCoro::NextStage{};
    }
    co_await KernelCoro::NextStage{};
    BuildStage2(ctx, st);
  }
}

/// Coroutine-interleaved hash-table build.
template <typename MM>
void BuildCoro(MM& mm, const Relation& build, HashTable* ht,
               const KernelParams& params) {
  const uint32_t width = params.EffectiveGroupSize();
  BuildContext<MM> ctx(&mm, ht, build, params.hash_mode);
  std::vector<BuildState> states(width);
  RunCoroPipeline(mm, width, [&](uint32_t i) {
    return BuildChain(ctx, states[i], /*owner_tag=*/i + 1);
  });
}

/// One partition chain. A full output page with copies still in flight
/// suspends until the owning chains' stage 2s drain `pending`; with no
/// copies in flight the page is flushed and the claim retried inline
/// (the same protocol PartitionSwp applies through its waiting queue).
template <typename MM>
KernelCoro PartitionChain(PartitionContext<MM>& ctx, PartitionState& st) {
  while (PartitionStage0(ctx, st, /*prefetch=*/true,
                         /*prefetch_input_pages=*/true)) {
    co_await KernelCoro::NextStage{};
    while (!PartitionStage1(ctx, st, /*prefetch=*/true)) {
      if (st.sink->pending == 0) {
        AccountedFlush(ctx, st.sink);
        bool ok = PartitionStage1(ctx, st, /*prefetch=*/true);
        HJ_CHECK(ok);
        break;
      }
      co_await KernelCoro::NextStage{};
    }
    co_await KernelCoro::NextStage{};
    PartitionStage2(ctx, st);
  }
}

/// Coroutine-interleaved partitioning.
template <typename MM>
void PartitionCoro(MM& mm, const Relation& input, PartitionSinkSet* sinks,
                   uint32_t num_partitions, const KernelParams& params,
                   uint32_t hash_divisor = 1, PageRange range = PageRange{}) {
  const uint32_t width = params.EffectiveGroupSize();
  PartitionContext<MM> ctx(&mm, sinks, num_partitions, input, hash_divisor,
                           range);
  std::vector<PartitionState> states(width);
  RunCoroPipeline(mm, width,
                  [&](uint32_t i) { return PartitionChain(ctx, states[i]); });
  sinks->FinalFlushAll();
}

/// One aggregation chain (k = 2: bucket visit, accumulator update).
template <typename MM>
KernelCoro AggChain(MM& mm, TupleCursor& cursor, AggPipelineState& st,
                    uint32_t value_offset, HashAggTable* agg) {
  while (AggStage0(mm, cursor, st, value_offset, agg->table(),
                   /*prefetch=*/true)) {
    co_await KernelCoro::NextStage{};
    st.state = AggVisitBucket(mm, agg, st.hash, st.key);
    mm.Prefetch(st.state, sizeof(AggState));
    co_await KernelCoro::NextStage{};
    AggUpdate(mm, st);
  }
}

/// Coroutine-interleaved hash aggregation.
template <typename MM>
void AggregateCoro(MM& mm, const Relation& input, uint32_t value_offset,
                   HashAggTable* agg, uint32_t width) {
  width = std::max(1u, width);
  TupleCursor cursor(input);
  std::vector<AggPipelineState> states(width);
  RunCoroPipeline(mm, width, [&](uint32_t i) {
    return AggChain(mm, cursor, states[i], value_offset, agg);
  });
}

}  // namespace hashjoin

#endif  // HASHJOIN_HAS_COROUTINES

#endif  // HASHJOIN_JOIN_CORO_KERNELS_H_
