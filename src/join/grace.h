#ifndef HASHJOIN_JOIN_GRACE_H_
#define HASHJOIN_JOIN_GRACE_H_

#include <cstdint>
#include <vector>

#include "join/build_kernels.h"
#include "join/join_common.h"
#include "join/partition_kernels.h"
#include "join/probe_kernels.h"
#include "mem/memory_model.h"
#include "model/cost_model.h"
#include "storage/relation.h"
#include "util/bitops.h"
#include "util/timer.h"

namespace hashjoin {

/// Configuration of a full GRACE hash join run.
struct GraceConfig {
  /// Memory available to the join phase: a build partition plus its hash
  /// table must fit (the paper's experiments use 50MB at a 50:1
  /// memory:cache ratio, §7.1).
  uint64_t memory_budget = 50ull << 20;

  Scheme partition_scheme = Scheme::kGroup;
  Scheme join_scheme = Scheme::kGroup;
  KernelParams partition_params;
  KernelParams join_params;

  /// Use the §7.4 combined partition scheme (simple prefetching while
  /// output buffers fit in L2, `partition_scheme` beyond) instead of a
  /// fixed partition scheme.
  bool combined_partition = true;
  uint32_t l2_bytes = 1 << 20;

  /// Cache partitioning comparison modes (§7.5). kDirect generates
  /// cache-sized partitions straight from the I/O partition phase;
  /// kTwoStep first makes memory-sized partitions, then re-partitions
  /// each pair in memory as a join-phase preprocessing step.
  enum class CacheMode { kNone, kDirect, kTwoStep };
  CacheMode cache_mode = CacheMode::kNone;

  /// Target size of a cache partition plus its hash table. Somewhat
  /// below L2 capacity so the working set truly fits.
  uint64_t cache_budget = 768 * 1024;

  uint32_t page_size = kDefaultPageSize;

  /// Force a partition count (0 = derive from the memory budget).
  uint32_t forced_num_partitions = 0;

  /// Storage managers handle only limited numbers of concurrently active
  /// partitions (§7.5 cites "hundreds" for IBM DB2). 0 = unlimited; a
  /// positive cap triggers multi-pass partitioning when the required
  /// partition count exceeds it. Supports up to cap² final partitions.
  uint32_t max_active_partitions = 0;
};

/// Partition count such that one partition of `data_bytes` total bytes
/// plus its hash table fits in `budget` bytes.
uint32_t ComputeNumPartitions(uint64_t num_tuples, uint64_t data_bytes,
                              uint64_t budget);

/// Hash table bucket count for a partition: close to its tuple count and
/// relatively prime to the partition count, so bucket assignment stays
/// uniform although all hash codes in partition p are congruent to p
/// (§7.1).
uint64_t ChooseBucketCount(uint64_t partition_tuples,
                           uint32_t num_partitions);

/// Schema of the join output: build columns followed by probe columns.
Schema ConcatSchema(const Schema& build, const Schema& probe);

namespace internal_grace {

/// Runs `fn` and returns its wall time plus (for simulated memory
/// models) the simulator-cycle delta.
template <typename MM, typename Fn>
PhaseResult MeasurePhase(MM& mm, Fn&& fn) {
  PhaseResult r;
  sim::SimStats before;
  if constexpr (MM::kSimulated) before = mm.sim()->stats();
  WallTimer timer;
  fn();
  r.wall_seconds = timer.ElapsedSeconds();
  if constexpr (MM::kSimulated) r.sim = mm.sim()->stats() - before;
  return r;
}

}  // namespace internal_grace

namespace internal_grace {

/// Runs one partition pass with the configured scheme.
template <typename MM>
void RunOnePass(MM& mm, const GraceConfig& config, const Relation& input,
                std::vector<Relation>* dests, uint32_t parts,
                uint32_t divisor) {
  PartitionSinkSet sinks(dests, config.page_size);
  if (config.combined_partition) {
    PartitionCombined(mm, input, &sinks, parts, config.partition_params,
                      config.l2_bytes, config.partition_scheme, divisor);
  } else {
    PartitionRelation(mm, config.partition_scheme, input, &sinks, parts,
                      config.partition_params, divisor);
  }
}

}  // namespace internal_grace

/// Pass structure chosen for a required partition count under an
/// active-partition cap.
struct PartitionPlan {
  uint32_t pass1 = 1;  // coarse partitions (hash % pass1)
  uint32_t pass2 = 1;  // partitions per coarse one ((hash / pass1) % pass2)
  uint32_t FinalParts() const { return pass1 * pass2; }
  bool MultiPass() const { return pass1 > 1 && pass2 > 1; }
};

/// Splits `wanted` partitions into at most `max_active` active ones per
/// pass (single pass when it already fits; cap = 0 means unlimited).
PartitionPlan PlanPartitionPasses(uint32_t wanted, uint32_t max_active);

/// Partitions `input` into plan.FinalParts() partitions, honoring the
/// active-partition cap via a second in-storage pass when needed
/// (§7.5's alternative to giving up beyond ~1000 partitions). Final
/// partition p1 * pass2 + p2 holds tuples with hash % pass1 == p1 and
/// (hash / pass1) % pass2 == p2 — identical for build and probe, so
/// pairs still align.
template <typename MM>
void PartitionWithPlan(MM& mm, const GraceConfig& config,
                       const Relation& input, const PartitionPlan& plan,
                       std::vector<Relation>* out) {
  out->clear();
  if (!plan.MultiPass()) {
    uint32_t parts = plan.FinalParts();
    for (uint32_t p = 0; p < parts; ++p) {
      out->emplace_back(input.schema(), config.page_size);
    }
    internal_grace::RunOnePass(mm, config, input, out, parts, 1);
    return;
  }
  std::vector<Relation> coarse;
  for (uint32_t p = 0; p < plan.pass1; ++p) {
    coarse.emplace_back(input.schema(), config.page_size);
  }
  internal_grace::RunOnePass(mm, config, input, &coarse, plan.pass1, 1);
  for (uint32_t p1 = 0; p1 < plan.pass1; ++p1) {
    std::vector<Relation> fine;
    for (uint32_t p2 = 0; p2 < plan.pass2; ++p2) {
      fine.emplace_back(input.schema(), config.page_size);
    }
    internal_grace::RunOnePass(mm, config, coarse[p1], &fine, plan.pass2,
                               plan.pass1);
    coarse[p1].Clear();
    for (auto& f : fine) out->push_back(std::move(f));
  }
}

/// Joins one (build partition, probe partition) pair entirely in memory:
/// builds the hash table with `join_scheme`, then probes. Returns the
/// number of output tuples appended to `out`.
template <typename MM>
uint64_t JoinPartitionPair(MM& mm, Scheme scheme, const Relation& build_part,
                           const Relation& probe_part,
                           const KernelParams& params,
                           uint32_t num_partitions, Relation* out) {
  if (build_part.num_tuples() == 0 || probe_part.num_tuples() == 0) {
    return 0;
  }
  HashTable ht(ChooseBucketCount(build_part.num_tuples(), num_partitions));
  BuildPartition(mm, scheme, build_part, &ht, params);
  return ProbePartition(mm, scheme, probe_part, ht,
                        build_part.schema().fixed_size(), params, out);
}

/// The full GRACE hash join (§2): an I/O partition phase dividing both
/// relations into memory-sized (or cache-sized, for the §7.5 comparison
/// modes) partitions, followed by a join phase processing each pair with
/// in-memory hash tables. `output` receives the concatenated result
/// tuples; pass nullptr to count matches without retaining them.
template <typename MM>
JoinResult GraceHashJoin(MM& mm, const Relation& build,
                         const Relation& probe, const GraceConfig& config,
                         Relation* output) {
  JoinResult result;

  // --- sizing ---
  uint64_t budget = config.memory_budget;
  if (config.cache_mode == GraceConfig::CacheMode::kDirect) {
    budget = config.cache_budget;
  }
  uint32_t wanted_parts =
      config.forced_num_partitions != 0
          ? config.forced_num_partitions
          : ComputeNumPartitions(build.num_tuples(), build.data_bytes(),
                                 budget);
  PartitionPlan plan =
      PlanPartitionPasses(wanted_parts, config.max_active_partitions);
  uint32_t num_parts = plan.FinalParts();
  result.num_partitions = num_parts;

  Relation discard(ConcatSchema(build.schema(), probe.schema()),
                   config.page_size);
  Relation* out = output != nullptr ? output : &discard;

  // --- partition phase (both relations) ---
  std::vector<Relation> build_parts;
  std::vector<Relation> probe_parts;
  result.partition_phase = internal_grace::MeasurePhase(mm, [&] {
    PartitionWithPlan(mm, config, build, plan, &build_parts);
    PartitionWithPlan(mm, config, probe, plan, &probe_parts);
  });
  result.partition_phase.tuples_processed =
      build.num_tuples() + probe.num_tuples();

  // --- join phase ---
  result.join_phase = internal_grace::MeasurePhase(mm, [&] {
    for (uint32_t p = 0; p < num_parts; ++p) {
      if (config.cache_mode == GraceConfig::CacheMode::kTwoStep) {
        // Second, in-memory partition pass to cache-sized partitions
        // (join-phase preprocessing, §7.5 "two-step cache").
        uint32_t sub_parts = ComputeNumPartitions(
            build_parts[p].num_tuples(), build_parts[p].data_bytes(),
            config.cache_budget);
        std::vector<Relation> sub_build;
        std::vector<Relation> sub_probe;
        for (uint32_t s = 0; s < sub_parts; ++s) {
          sub_build.emplace_back(build.schema(), config.page_size);
          sub_probe.emplace_back(probe.schema(), config.page_size);
        }
        {
          PartitionSinkSet sinks(&sub_build, config.page_size);
          PartitionCombined(mm, build_parts[p], &sinks, sub_parts,
                            config.partition_params, config.l2_bytes,
                            config.partition_scheme);
        }
        {
          PartitionSinkSet sinks(&sub_probe, config.page_size);
          PartitionCombined(mm, probe_parts[p], &sinks, sub_parts,
                            config.partition_params, config.l2_bytes,
                            config.partition_scheme);
        }
        for (uint32_t s = 0; s < sub_parts; ++s) {
          result.output_tuples += JoinPartitionPair(
              mm, config.join_scheme, sub_build[s], sub_probe[s],
              config.join_params, sub_parts, out);
        }
      } else {
        result.output_tuples += JoinPartitionPair(
            mm, config.join_scheme, build_parts[p], probe_parts[p],
            config.join_params, num_parts, out);
      }
      if (output == nullptr) discard.Clear();
    }
  });
  result.join_phase.tuples_processed =
      build.num_tuples() + probe.num_tuples();
  return result;
}

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_GRACE_H_
