#ifndef HASHJOIN_JOIN_GRACE_H_
#define HASHJOIN_JOIN_GRACE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <vector>

#include "cache/hash_table_cache.h"
#include "join/exec_policy.h"
#include "join/join_common.h"
#include "mem/memory_model.h"
#include "model/cost_model.h"
#include "storage/relation.h"
#include "util/bitops.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hashjoin {

/// Configuration of a full GRACE hash join run.
struct GraceConfig {
  /// Memory available to the join phase: a build partition plus its hash
  /// table must fit (the paper's experiments use 50MB at a 50:1
  /// memory:cache ratio, §7.1).
  uint64_t memory_budget = 50ull << 20;

  Scheme partition_scheme = Scheme::kGroup;
  Scheme join_scheme = Scheme::kGroup;
  KernelParams partition_params;
  KernelParams join_params;

  /// Use the §7.4 combined partition scheme (simple prefetching while
  /// output buffers fit in L2, `partition_scheme` beyond) instead of a
  /// fixed partition scheme.
  bool combined_partition = true;
  uint32_t l2_bytes = 1 << 20;

  /// Cache partitioning comparison modes (§7.5). kDirect generates
  /// cache-sized partitions straight from the I/O partition phase;
  /// kTwoStep first makes memory-sized partitions, then re-partitions
  /// each pair in memory as a join-phase preprocessing step.
  enum class CacheMode { kNone, kDirect, kTwoStep };
  CacheMode cache_mode = CacheMode::kNone;

  /// Target size of a cache partition plus its hash table. Somewhat
  /// below L2 capacity so the working set truly fits.
  uint64_t cache_budget = 768 * 1024;

  uint32_t page_size = kDefaultPageSize;

  /// Force a partition count (0 = derive from the memory budget).
  uint32_t forced_num_partitions = 0;

  /// Let HybridHashJoin run with a single partition (everything built
  /// and probed in place, nothing spilled) when the sizing says the
  /// whole build fits the budget. Off by default — the classic hybrid
  /// shape always keeps at least one spilled partition — but a caller
  /// joining a partition that is already the product of partitioning
  /// (recursion depth >= 1) should set this so a level that fits in the
  /// grant finishes in memory instead of spilling again.
  bool hybrid_allow_single_partition = false;

  /// Storage managers handle only limited numbers of concurrently active
  /// partitions (§7.5 cites "hundreds" for IBM DB2). 0 = unlimited; a
  /// positive cap triggers multi-pass partitioning when the required
  /// partition count exceeds it. Supports up to cap² final partitions.
  uint32_t max_active_partitions = 0;

  /// Worker threads of the morsel-parallel executor (1 = the paper's
  /// serial path, byte-for-byte unchanged). The join phase dispatches
  /// (build, probe) partition pairs as morsels, largest first; the
  /// partition phase splits each input's pages across workers, each with
  /// its own PartitionSinkSet, and concatenates per-worker partitions at
  /// the end. Prefetch-scheme correctness is unaffected: each worker
  /// runs the unchanged single-threaded kernels on disjoint data.
  uint32_t num_threads = 1;

  /// Shared executor: one fair-share group of a pool the join service
  /// shares across all admitted queries. When set it takes precedence
  /// over `num_threads` (its worker count sizes per-worker state) and no
  /// per-invocation pool is created. Must outlive the join call.
  PoolExecutor* executor = nullptr;

  /// Live memory budget (bytes) supplied by a scheduler's memory-broker
  /// grant. When set and returning non-zero it overrides
  /// `memory_budget` at sizing time, so an admitted query partitioned
  /// under the grant it actually holds rather than a static default.
  std::function<uint64_t()> dynamic_budget;

  /// Cross-query hash-table cache (not owned; must outlive the call).
  /// When set and the sizing collapses to a single partition, the join
  /// consults the cache under `cache_key` before the build phase: a hit
  /// pins the cached table and probes it directly (any scheme,
  /// including kCoro), skipping both the partition and build phases; a
  /// miss runs normally and offers the freshly built table back.
  /// Multi-partition plans bypass the cache — a partitioned build is
  /// not reusable as one table.
  cache::HashTableCache* table_cache = nullptr;
  cache::CacheKey cache_key;
};

/// The budget sizing decisions should honor right now: the broker grant
/// when one is wired in, the static configuration otherwise.
inline uint64_t EffectiveMemoryBudget(const GraceConfig& config) {
  if (config.dynamic_budget) {
    uint64_t live = config.dynamic_budget();
    if (live > 0) return live;
  }
  return config.memory_budget;
}

/// Partition count such that one partition of `data_bytes` total bytes
/// plus its hash table fits in `budget` bytes.
uint32_t ComputeNumPartitions(uint64_t num_tuples, uint64_t data_bytes,
                              uint64_t budget);

/// Hash table bucket count for a partition: close to its tuple count and
/// relatively prime to the partition count, so bucket assignment stays
/// uniform although all hash codes in partition p are congruent to p
/// (§7.1). For two-step cache partitioning the caller passes the product
/// of both level counts: a sub-partition's hash codes are constrained
/// modulo num_parts * sub_parts.
uint64_t ChooseBucketCount(uint64_t partition_tuples,
                           uint64_t num_partitions);

/// Schema of the join output: build columns followed by probe columns.
Schema ConcatSchema(const Schema& build, const Schema& probe);

namespace internal_grace {

/// Runs `fn` and returns its wall time plus (for simulated memory
/// models) the simulator-cycle delta.
template <typename MM, typename Fn>
PhaseResult MeasurePhase(MM& mm, Fn&& fn) {
  PhaseResult r;
  sim::SimStats before;
  if constexpr (MM::kSimulated) before = mm.sim()->stats();
  WallTimer timer;
  fn();
  r.wall_seconds = timer.ElapsedSeconds();
  if constexpr (MM::kSimulated) r.sim = mm.sim()->stats() - before;
  return r;
}

/// Runs one partition pass with the configured scheme over `range` of
/// the input (the full relation by default).
template <typename MM>
void RunOnePass(MM& mm, const GraceConfig& config, const Relation& input,
                std::vector<Relation>* dests, uint32_t parts,
                uint32_t divisor, PageRange range = PageRange{}) {
  PartitionSinkSet sinks(dests, config.page_size);
  if (config.combined_partition) {
    PartitionCombined(mm, input, &sinks, parts, config.partition_params,
                      config.l2_bytes, config.partition_scheme, divisor,
                      range);
  } else {
    PartitionRelation(mm, config.partition_scheme, input, &sinks, parts,
                      config.partition_params, divisor, range);
  }
}

/// Parallel single partition pass: each worker partitions a disjoint
/// contiguous page range of the input through its own PartitionSinkSet
/// and memory model, then the per-worker partitions are concatenated
/// (the "final sink merge") in worker order, keeping results
/// deterministic for a fixed thread count.
template <typename MM>
void ParallelOnePass(PoolExecutor& pool, WorkerMemorySet<MM>& wmem,
                     const GraceConfig& config, const Relation& input,
                     std::vector<Relation>* dests, uint32_t parts,
                     uint32_t divisor) {
  const uint32_t workers = pool.num_workers();
  const size_t pages = input.num_pages();
  const size_t chunk = (pages + workers - 1) / workers;

  // Per-worker destination sets, indexed [worker][partition].
  std::vector<std::vector<Relation>> locals(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    locals[w].reserve(parts);
    for (uint32_t p = 0; p < parts; ++p) {
      locals[w].emplace_back(input.schema(), config.page_size);
    }
  }
  for (uint32_t w = 0; w < workers; ++w) {
    PageRange range{std::min(size_t(w) * chunk, pages),
                    std::min((size_t(w) + 1) * chunk, pages)};
    if (range.begin >= range.end) continue;
    pool.Submit([&, range](uint32_t wid) {
      // The page split fixes which input chunk this task covers; sinks
      // and the memory model are per-*worker*, so a stolen task still
      // writes only worker-local state.
      RunOnePass(wmem.model(wid), config, input, &locals[wid], parts,
                 divisor, range);
    });
  }
  pool.Wait();
  for (uint32_t w = 0; w < workers; ++w) {
    for (uint32_t p = 0; p < parts; ++p) {
      (*dests)[p].Absorb(&locals[w][p]);
    }
  }
}

}  // namespace internal_grace

/// Pass structure chosen for a required partition count under an
/// active-partition cap.
struct PartitionPlan {
  uint32_t pass1 = 1;  // coarse partitions (hash % pass1)
  uint32_t pass2 = 1;  // partitions per coarse one ((hash / pass1) % pass2)
  uint32_t FinalParts() const { return pass1 * pass2; }
  bool MultiPass() const { return pass1 > 1 && pass2 > 1; }
};

/// Splits `wanted` partitions into at most `max_active` active ones per
/// pass (single pass when it already fits; cap = 0 means unlimited).
PartitionPlan PlanPartitionPasses(uint32_t wanted, uint32_t max_active);

/// Partitions `input` into plan.FinalParts() partitions, honoring the
/// active-partition cap via a second in-storage pass when needed
/// (§7.5's alternative to giving up beyond ~1000 partitions). Final
/// partition p1 * pass2 + p2 holds tuples with hash % pass1 == p1 and
/// (hash / pass1) % pass2 == p2 — identical for build and probe, so
/// pairs still align.
///
/// With a thread pool (`pool` non-null), the first pass splits the input
/// pages across workers; a multi-pass plan's second pass runs one coarse
/// partition per morsel.
template <typename MM>
void PartitionWithPlan(MM& mm, const GraceConfig& config,
                       const Relation& input, const PartitionPlan& plan,
                       std::vector<Relation>* out,
                       PoolExecutor* pool = nullptr,
                       WorkerMemorySet<MM>* wmem = nullptr) {
  out->clear();
  if (!plan.MultiPass()) {
    uint32_t parts = plan.FinalParts();
    for (uint32_t p = 0; p < parts; ++p) {
      out->emplace_back(input.schema(), config.page_size);
    }
    if (pool != nullptr) {
      internal_grace::ParallelOnePass(*pool, *wmem, config, input, out,
                                      parts, 1);
    } else {
      internal_grace::RunOnePass(mm, config, input, out, parts, 1);
    }
    return;
  }
  std::vector<Relation> coarse;
  for (uint32_t p = 0; p < plan.pass1; ++p) {
    coarse.emplace_back(input.schema(), config.page_size);
  }
  if (pool != nullptr) {
    internal_grace::ParallelOnePass(*pool, *wmem, config, input, &coarse,
                                    plan.pass1, 1);
  } else {
    internal_grace::RunOnePass(mm, config, input, &coarse, plan.pass1, 1);
  }
  for (uint32_t p = 0; p < plan.FinalParts(); ++p) {
    out->emplace_back(input.schema(), config.page_size);
  }
  auto second_pass = [&](MM& pass_mm, uint32_t p1) {
    std::vector<Relation> fine;
    for (uint32_t p2 = 0; p2 < plan.pass2; ++p2) {
      fine.emplace_back(input.schema(), config.page_size);
    }
    internal_grace::RunOnePass(pass_mm, config, coarse[p1], &fine,
                               plan.pass2, plan.pass1);
    coarse[p1].Clear();
    for (uint32_t p2 = 0; p2 < plan.pass2; ++p2) {
      (*out)[p1 * plan.pass2 + p2] = std::move(fine[p2]);
    }
  };
  if (pool != nullptr) {
    // Each coarse partition is an independent morsel writing disjoint
    // `out` slots.
    for (uint32_t p1 = 0; p1 < plan.pass1; ++p1) {
      pool->Submit([&, p1](uint32_t wid) {
        second_pass(wmem->model(wid), p1);
      });
    }
    pool->Wait();
  } else {
    for (uint32_t p1 = 0; p1 < plan.pass1; ++p1) second_pass(mm, p1);
  }
}

/// Joins one (build partition, probe partition) pair entirely in memory:
/// builds the hash table with `join_scheme`, then probes. Returns the
/// number of output tuples appended to `out`. `hash_constraint` is the
/// modulus all hash codes of this partition are constrained by (the
/// partition count, or both level counts multiplied for two-step cache
/// partitioning); the bucket count is chosen relatively prime to it.
template <typename MM>
uint64_t JoinPartitionPair(MM& mm, Scheme scheme, const Relation& build_part,
                           const Relation& probe_part,
                           const KernelParams& params,
                           uint64_t hash_constraint, Relation* out) {
  if (build_part.num_tuples() == 0 || probe_part.num_tuples() == 0) {
    return 0;
  }
  HashTable ht(ChooseBucketCount(build_part.num_tuples(), hash_constraint));
  BuildPartition(mm, scheme, build_part, &ht, params);
  return ProbePartition(mm, scheme, probe_part, ht,
                        build_part.schema().fixed_size(), params, out);
}

/// The two-step cache mode's join-phase preprocessing (§7.5): an
/// in-memory partition pass splitting one memory-sized pair into
/// cache-sized sub-partition pairs. Every tuple of partition p already
/// satisfies hash % num_parts == p, so the sub-partition number must
/// come from the *quotient* hash / num_parts — splitting on
/// hash % sub_parts would leave sub-partitions skewed or empty whenever
/// sub_parts shares a factor with num_parts. Returns the sub-partition
/// count.
template <typename MM>
uint32_t TwoStepSubPartition(MM& mm, const GraceConfig& config,
                             uint32_t num_parts, const Relation& build_part,
                             const Relation& probe_part,
                             std::vector<Relation>* sub_build,
                             std::vector<Relation>* sub_probe) {
  uint32_t sub_parts = ComputeNumPartitions(build_part.num_tuples(),
                                            build_part.data_bytes(),
                                            config.cache_budget);
  sub_build->clear();
  sub_probe->clear();
  for (uint32_t s = 0; s < sub_parts; ++s) {
    sub_build->emplace_back(build_part.schema(), config.page_size);
    sub_probe->emplace_back(probe_part.schema(), config.page_size);
  }
  {
    PartitionSinkSet sinks(sub_build, config.page_size);
    PartitionCombined(mm, build_part, &sinks, sub_parts,
                      config.partition_params, config.l2_bytes,
                      config.partition_scheme,
                      /*hash_divisor=*/num_parts);
  }
  {
    PartitionSinkSet sinks(sub_probe, config.page_size);
    PartitionCombined(mm, probe_part, &sinks, sub_parts,
                      config.partition_params, config.l2_bytes,
                      config.partition_scheme,
                      /*hash_divisor=*/num_parts);
  }
  return sub_parts;
}

/// Join-phase work for one partition pair, including the two-step cache
/// mode's in-memory re-partition preprocessing (§7.5). This is the unit
/// the parallel executor dispatches as a morsel.
template <typename MM>
uint64_t JoinGracePartition(MM& mm, const GraceConfig& config,
                            uint32_t num_parts, const Relation& build_part,
                            const Relation& probe_part, Relation* out) {
  if (config.cache_mode != GraceConfig::CacheMode::kTwoStep) {
    return JoinPartitionPair(mm, config.join_scheme, build_part,
                             probe_part, config.join_params, num_parts,
                             out);
  }
  std::vector<Relation> sub_build;
  std::vector<Relation> sub_probe;
  uint32_t sub_parts = TwoStepSubPartition(mm, config, num_parts,
                                           build_part, probe_part,
                                           &sub_build, &sub_probe);
  uint64_t produced = 0;
  for (uint32_t s = 0; s < sub_parts; ++s) {
    // Sub-partition hash codes are constrained modulo both levels.
    produced += JoinPartitionPair(mm, config.join_scheme, sub_build[s],
                                  sub_probe[s], config.join_params,
                                  uint64_t(num_parts) * sub_parts, out);
  }
  return produced;
}

/// The full GRACE hash join (§2): an I/O partition phase dividing both
/// relations into memory-sized (or cache-sized, for the §7.5 comparison
/// modes) partitions, followed by a join phase processing each pair with
/// in-memory hash tables. `output` receives the concatenated result
/// tuples; pass nullptr to count matches without retaining them.
///
/// With config.num_threads > 1 both phases run on a work-stealing pool:
/// partition pairs become morsels sorted largest-first (bounding tail
/// latency under partition-size skew), every worker records into its own
/// memory model and output sink, and worker results are merged after
/// each phase — so output counts and simulated totals are independent of
/// the thread count.
template <typename MM>
JoinResult GraceHashJoin(MM& mm, const Relation& build,
                         const Relation& probe, const GraceConfig& config,
                         Relation* output) {
  JoinResult result;

  // Executor: a shared fair-share group when the service supplies one,
  // a private per-invocation pool otherwise. All per-worker state below
  // is sized by the executor's worker count.
  std::unique_ptr<PoolExecutor> owned_pool;
  PoolExecutor* pool = config.executor;
  if (pool == nullptr && std::max(1u, config.num_threads) > 1) {
    owned_pool = std::make_unique<PoolExecutor>(config.num_threads);
    pool = owned_pool.get();
  }
  const uint32_t threads = pool != nullptr ? pool->num_workers() : 1;

  // --- sizing ---
  uint64_t budget = EffectiveMemoryBudget(config);
  if (config.cache_mode == GraceConfig::CacheMode::kDirect) {
    budget = config.cache_budget;
  }
  uint32_t wanted_parts =
      config.forced_num_partitions != 0
          ? config.forced_num_partitions
          : ComputeNumPartitions(build.num_tuples(), build.data_bytes(),
                                 budget);
  PartitionPlan plan =
      PlanPartitionPasses(wanted_parts, config.max_active_partitions);
  uint32_t num_parts = plan.FinalParts();
  result.num_partitions = num_parts;

  Relation discard(ConcatSchema(build.schema(), probe.schema()),
                   config.page_size);
  Relation* out = output != nullptr ? output : &discard;

  // --- cache consult (single-partition plans only) ---
  // A hit pins the cached table and probes the *unpartitioned* probe
  // relation directly: with one partition the partition pass is a pure
  // copy, so tuple order — and hence the output byte stream — is
  // identical to the uncached path.
  const bool cache_eligible =
      config.table_cache != nullptr && num_parts == 1 &&
      config.cache_mode == GraceConfig::CacheMode::kNone &&
      build.num_tuples() > 0;
  if (cache_eligible) {
    cache::PinnedTable pinned =
        config.table_cache->Acquire(config.cache_key);
    if (pinned) {
      result.cache_hit = true;
      result.join_phase = internal_grace::MeasurePhase(mm, [&] {
        result.output_tuples = ProbePartition(
            mm, config.join_scheme, probe, pinned.table(),
            pinned.build().schema().fixed_size(), config.join_params,
            out);
      });
      result.join_phase.tuples_processed = probe.num_tuples();
      return result;
    }
  }

  // --- partition phase (both relations) ---
  std::vector<Relation> build_parts;
  std::vector<Relation> probe_parts;
  result.partition_phase = internal_grace::MeasurePhase(mm, [&] {
    if (pool != nullptr) {
      WorkerMemorySet<MM> wmem(mm, threads);
      PartitionWithPlan(mm, config, build, plan, &build_parts, pool,
                        &wmem);
      PartitionWithPlan(mm, config, probe, plan, &probe_parts, pool,
                        &wmem);
      wmem.MergeInto(mm);
    } else {
      PartitionWithPlan(mm, config, build, plan, &build_parts);
      PartitionWithPlan(mm, config, probe, plan, &probe_parts);
    }
  });
  result.partition_phase.tuples_processed =
      build.num_tuples() + probe.num_tuples();

  // --- join phase ---
  if (cache_eligible) {
    // Cache miss on a single-partition plan: build + probe as usual,
    // but keep the table (and its build partition, which owns the
    // tuple bytes the table points into) alive and offer both to the
    // cache instead of destroying them with the stack frame.
    result.join_phase = internal_grace::MeasurePhase(mm, [&] {
      Relation& build_part = build_parts[0];
      auto ht = std::make_unique<HashTable>(
          ChooseBucketCount(build_part.num_tuples(), 1));
      BuildPartition(mm, config.join_scheme, build_part, ht.get(),
                     config.join_params);
      result.output_tuples = ProbePartition(
          mm, config.join_scheme, probe_parts[0], *ht,
          build_part.schema().fixed_size(), config.join_params, out);
      auto shared_build =
          std::make_shared<Relation>(std::move(build_part));
      config.table_cache->Offer(config.cache_key,
                                std::move(shared_build), std::move(ht));
    });
    result.join_phase.tuples_processed =
        build.num_tuples() + probe.num_tuples();
    return result;
  }
  result.join_phase = internal_grace::MeasurePhase(mm, [&] {
    if (pool == nullptr) {
      for (uint32_t p = 0; p < num_parts; ++p) {
        result.output_tuples += JoinGracePartition(
            mm, config, num_parts, build_parts[p], probe_parts[p], out);
        if (output == nullptr) discard.Clear();
      }
      return;
    }
    // Morsel schedule: one task per (build, probe) partition pair,
    // largest pairs first so a straggler partition starts early and the
    // tail under skew is bounded by one morsel, not one thread's share.
    std::vector<uint32_t> order(num_parts);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      uint64_t sa = build_parts[a].data_bytes() + probe_parts[a].data_bytes();
      uint64_t sb = build_parts[b].data_bytes() + probe_parts[b].data_bytes();
      if (sa != sb) return sa > sb;
      return a < b;
    });
    WorkerMemorySet<MM> wmem(mm, threads);
    std::vector<Relation> worker_out;
    std::vector<uint64_t> worker_counts(threads, 0);
    worker_out.reserve(threads);
    for (uint32_t w = 0; w < threads; ++w) {
      worker_out.emplace_back(out->schema(), out->page_size());
    }
    for (uint32_t p : order) {
      pool->Submit([&, p](uint32_t wid) {
        worker_counts[wid] += JoinGracePartition(
            wmem.model(wid), config, num_parts, build_parts[p],
            probe_parts[p], &worker_out[wid]);
        if (output == nullptr) worker_out[wid].Clear();
      });
    }
    pool->Wait();
    for (uint32_t w = 0; w < threads; ++w) {
      result.output_tuples += worker_counts[w];
      if (output != nullptr) output->Absorb(&worker_out[w]);
      if constexpr (MM::kSimulated) {
        result.per_thread_join_sim.push_back(wmem.WorkerStats(w));
      }
    }
    wmem.MergeInto(mm);
  });
  result.join_phase.tuples_processed =
      build.num_tuples() + probe.num_tuples();
  return result;
}

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_GRACE_H_
