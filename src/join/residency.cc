#include "join/residency.h"

#include <utility>

#include "util/logging.h"

namespace hashjoin {

PartitionResidency::PartitionResidency(
    uint32_t num_partitions, uint32_t page_size,
    std::function<uint64_t(uint64_t)> table_cost)
    : parts_(num_partitions),
      page_size_(page_size),
      table_cost_(std::move(table_cost)) {
  HJ_CHECK(num_partitions >= 1);
  HJ_CHECK(table_cost_ != nullptr);
}

void PartitionResidency::AddPage(uint32_t p, std::vector<uint8_t> page,
                                 uint64_t tuples) {
  PartState& ps = parts_[p];
  HJ_CHECK(ps.resident) << "AddPage on a spilled partition";
  ps.pages.push_back(std::move(page));
  ps.tuples += tuples;
}

uint64_t PartitionResidency::ResidentBytes() const {
  uint64_t total = 0;
  for (uint32_t p = 0; p < parts_.size(); ++p) {
    if (parts_[p].resident) total += PartitionCost(p);
  }
  return total;
}

uint64_t PartitionResidency::PartitionCost(uint32_t p) const {
  const PartState& ps = parts_[p];
  if (ps.tuples == 0 && ps.pages.empty()) return 0;
  return ps.pages.size() * uint64_t(page_size_) + table_cost_(ps.tuples);
}

int PartitionResidency::PickVictim(uint64_t needed) const {
  int best = -1;
  bool best_sufficient = false;
  uint64_t best_tuples = 0;
  uint64_t best_cost = 0;
  for (uint32_t p = 0; p < parts_.size(); ++p) {
    const PartState& ps = parts_[p];
    if (!ps.resident || ps.pages.empty()) continue;
    const uint64_t cost = PartitionCost(p);
    const bool sufficient = cost >= needed;
    bool take;
    if (best < 0) {
      take = true;
    } else if (sufficient != best_sufficient) {
      // A single victim that frees enough beats any that does not.
      take = sufficient;
    } else if (sufficient) {
      // Among sufficient victims, lose the fewest in-memory tuples.
      take = ps.tuples < best_tuples;
    } else {
      // No single victim suffices: take the biggest step toward the
      // target so the fewest partitions get evicted overall.
      take = cost > best_cost;
    }
    if (take) {
      best = int(p);
      best_sufficient = sufficient;
      best_tuples = ps.tuples;
      best_cost = cost;
    }
  }
  return best;
}

std::vector<std::vector<uint8_t>> PartitionResidency::Evict(uint32_t p) {
  PartState& ps = parts_[p];
  HJ_CHECK(ps.resident) << "Evict on an already-spilled partition";
  ps.resident = false;
  ps.spill_seq = next_spill_seq_++;
  return std::move(ps.pages);
}

int PartitionResidency::LastSpilled() const {
  int best = -1;
  uint64_t best_seq = 0;
  for (uint32_t p = 0; p < parts_.size(); ++p) {
    const PartState& ps = parts_[p];
    if (ps.resident) continue;
    if (ps.spill_seq > best_seq) {
      best_seq = ps.spill_seq;
      best = int(p);
    }
  }
  return best;
}

void PartitionResidency::Readmit(uint32_t p,
                                 std::vector<std::vector<uint8_t>> pages,
                                 uint64_t tuples) {
  PartState& ps = parts_[p];
  HJ_CHECK(!ps.resident) << "Readmit on a resident partition";
  ps.resident = true;
  ps.pages = std::move(pages);
  ps.tuples = tuples;
}

}  // namespace hashjoin
