#include "join/grace_disk.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "hash/hash_func.h"
#include "hash/hash_table.h"
#include "join/grace.h"
#include "storage/slotted_page.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hashjoin {

namespace {

/// Probes one slot of a partition page against the build table, counting
/// key matches. Shared by every execution policy below, so the policies
/// differ only in prefetch scheduling, never in what a probe observes.
inline void ProbeSlotCounting(const HashTable& ht, SlottedPage& pg, int s,
                              uint64_t* matches) {
  uint16_t len;
  const uint8_t* t = pg.GetTuple(s, &len);
  uint32_t key;
  std::memcpy(&key, t, 4);
  ht.Probe(pg.GetHashCode(s), [&](const uint8_t* bt) {
    uint32_t bkey;
    std::memcpy(&bkey, bt, 4);
    if (bkey == key) ++*matches;
  });
}

inline const BucketHeader* SlotBucket(const HashTable& ht,
                                      const SlottedPage& pg, int s) {
  return ht.bucket(ht.BucketIndex(pg.GetHashCode(s)));
}

#if HASHJOIN_HAS_COROUTINES
/// One probe chain over the page's slots: hash/prefetch, suspend, probe.
KernelCoro ProbePageChain(RealMemory& mm, const HashTable& ht,
                          SlottedPage& pg, int& next, uint64_t* matches) {
  while (next < pg.slot_count()) {
    const int s = next++;
    mm.Prefetch(SlotBucket(ht, pg, s), sizeof(BucketHeader));
    co_await KernelCoro::NextStage{};
    ProbeSlotCounting(ht, pg, s, matches);
  }
}
#endif

/// Count-only probe of one partition page under the disk join's
/// configured execution policy. Slots are probed in order under every
/// policy (group pass 2, SPP stage 2, and the coroutine chains all
/// preserve slot order within their visit), so the tally is
/// scheme-independent.
void ProbePageCounting(const HashTable& ht, SlottedPage& pg, Scheme scheme,
                       const KernelParams& params, uint64_t* matches) {
  RealMemory mm;
  const int n = pg.slot_count();
  switch (scheme) {
    case Scheme::kBaseline:
      for (int s = 0; s < n; ++s) ProbeSlotCounting(ht, pg, s, matches);
      return;
    case Scheme::kSimple:
      // Just-in-time bucket prefetch right before the visit (§7.1).
      for (int s = 0; s < n; ++s) {
        mm.Prefetch(SlotBucket(ht, pg, s), sizeof(BucketHeader));
        ProbeSlotCounting(ht, pg, s, matches);
      }
      return;
    case Scheme::kGroup: {
      const int group = int(params.EffectiveGroupSize());
      for (int base = 0; base < n; base += group) {
        const int g = std::min(group, n - base);
        for (int i = 0; i < g; ++i) {
          mm.Prefetch(SlotBucket(ht, pg, base + i), sizeof(BucketHeader));
        }
        for (int i = 0; i < g; ++i) {
          ProbeSlotCounting(ht, pg, base + i, matches);
        }
      }
      return;
    }
    case Scheme::kSwp: {
      const int d = int(params.EffectiveDistance());
      for (int s = 0; s < std::min(d, n); ++s) {
        mm.Prefetch(SlotBucket(ht, pg, s), sizeof(BucketHeader));
      }
      for (int j = 0; j < n; ++j) {
        if (j + d < n) {
          mm.Prefetch(SlotBucket(ht, pg, j + d), sizeof(BucketHeader));
        }
        ProbeSlotCounting(ht, pg, j, matches);
      }
      return;
    }
    case Scheme::kCoro: {
#if HASHJOIN_HAS_COROUTINES
      int next = 0;
      RunCoroPipeline(mm, params.EffectiveGroupSize(), [&](uint32_t) {
        return ProbePageChain(mm, ht, pg, next, matches);
      });
      return;
#else
      HJ_CHECK(SchemeAvailable(scheme))
          << "disk join configured with the coro scheme on a toolchain "
             "without C++20 coroutines";
      return;
#endif
    }
  }
}

}  // namespace

DiskGraceJoin::DiskGraceJoin(BufferManager* bm, const DiskJoinConfig& config)
    : bm_(bm), config_(config), page_size_(bm->config().disk.page_size) {
  HJ_CHECK(config_.num_partitions >= 1);
  HJ_CHECK(config_.overflow_fanout >= 2);
  if (config_.initial_grant_bytes != 0) {
    peak_budget_ = config_.initial_grant_bytes;
    trough_budget_ = config_.initial_grant_bytes;
  }
}

DiskGraceJoin::DiskGraceJoin(BufferManager* bm, uint32_t num_partitions)
    : DiskGraceJoin(bm, [&] {
        DiskJoinConfig c;
        c.num_partitions = num_partitions;
        return c;
      }()) {}

template <typename Fn>
DiskPhaseStats DiskGraceJoin::Measure(Fn&& fn) {
  std::vector<double> busy_before = bm_->DiskBusySeconds();
  double stall_before = bm_->main_stall_seconds();
  WallTimer timer;
  fn();
  DiskPhaseStats stats;
  stats.elapsed_seconds = timer.ElapsedSeconds();
  std::vector<double> busy_after = bm_->DiskBusySeconds();
  for (size_t i = 0; i < busy_after.size(); ++i) {
    stats.max_disk_seconds =
        std::max(stats.max_disk_seconds, busy_after[i] - busy_before[i]);
  }
  stats.main_wait_seconds = bm_->main_stall_seconds() - stall_before;
  return stats;
}

void DiskGraceJoin::QueueWritePage(BufferManager::FileId file,
                                   uint64_t page_index,
                                   uint8_t* page_bytes) {
  SlottedPage pg = SlottedPage::Attach(page_bytes);
  FileStats& fs = file_stats_[file];
  for (int s = 0; s < pg.slot_count(); ++s) {
    uint16_t len = 0;
    const uint8_t* t = pg.GetTuple(s, &len);
    fs.data_bytes += len;
    // Histogram + uniformity sampling for the adaptive fan-out and the
    // block-nested-loop detector. Level-0 routing hashes the 4-byte key,
    // and partition files memoize exactly that hash, so one key hash
    // serves both consumers.
    uint32_t key;
    std::memcpy(&key, t, 4);
    const uint32_t hash = HashKey32(key);
    ++fs.hist[hash % FileStats::kHistBins];
    if (!fs.has_tuples) {
      fs.first_hash = hash;
      fs.has_tuples = true;
    } else if (hash != fs.first_hash) {
      fs.uniform_hash = false;
    }
  }
  fs.tuples += pg.slot_count();
  if (config_.page_checksums) pg.StampChecksum();
  bm_->WritePageAsync(file, page_index, page_bytes);
}

Status DiskGraceJoin::VerifyPage(const uint8_t* page_bytes) const {
  if (!config_.page_checksums) return Status::OK();
  SlottedPage pg = SlottedPage::Attach(const_cast<uint8_t*>(page_bytes));
  if (!pg.VerifyChecksum()) {
    return Status::DataLoss(
        "slotted page failed end-to-end checksum verification");
  }
  return Status::OK();
}

StatusOr<BufferManager::FileId> DiskGraceJoin::StoreRelation(
    const Relation& rel) {
  if (rel.page_size() != page_size_) {
    return Status::InvalidArgument(
        "relation pages must match the disk page size");
  }
  auto file = bm_->CreateFile();
  // The relation is const, so checksums are stamped on a scratch copy of
  // each page (WritePageAsync copies again into its own queue entry; the
  // extra copy only affects this load utility, not the join phases).
  std::vector<uint8_t> scratch(page_size_);
  for (size_t p = 0; p < rel.num_pages(); ++p) {
    std::memcpy(scratch.data(), rel.page(p).data(), page_size_);
    QueueWritePage(file, p, scratch.data());
  }
  HJ_RETURN_IF_ERROR(bm_->FlushWrites());
  return file;
}

Status DiskGraceJoin::PartitionInto(
    BufferManager::FileId input,
    const std::vector<BufferManager::FileId>& outs, uint32_t fanout,
    uint32_t level) {
  if (level_tally_.size() <= level) level_tally_.resize(level + 1);
  SpillLevelStats& lv = level_tally_[level];
  lv.level = level;
  lv.partitions_written += fanout;
  WallTimer level_timer;
  std::vector<std::vector<uint8_t>> bufs(fanout);
  std::vector<SlottedPage> views(fanout);
  std::vector<uint64_t> next_page(fanout, 0);
  for (uint32_t p = 0; p < fanout; ++p) {
    bufs[p].resize(page_size_);
    views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
  }
  auto flush = [&](uint32_t p) {
    QueueWritePage(outs[p], next_page[p]++, bufs[p].data());
    views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
  };
  auto scan = bm_->OpenScan(input);
  const uint8_t* page = nullptr;
  while (true) {
    HJ_RETURN_IF_ERROR(scan.NextPage(&page));
    if (page == nullptr) break;
    HJ_RETURN_IF_ERROR(VerifyPage(page));
    // The scan buffer is recycled on the next NextPage(), but tuples are
    // fully copied into output buffers within this iteration.
    SlottedPage in = SlottedPage::Attach(const_cast<uint8_t*>(page));
    for (int s = 0; s < in.slot_count(); ++s) {
      uint16_t len = 0;
      const uint8_t* tuple = in.GetTuple(s, &len);
      // Level 0 hashes the key; deeper levels reroute the memoized hash
      // code through the level-salted rehash (every tuple here already
      // agrees on hash % parent_fanout, so reusing the plain hash would
      // put the whole partition into one sub-partition again). The
      // *original* hash code is memoized either way — the join phase and
      // further recursion levels both derive from it.
      uint32_t hash;
      if (level == 0) {
        uint32_t key;
        std::memcpy(&key, tuple, 4);
        hash = HashKey32(key);
      } else {
        hash = in.GetHashCode(s);
      }
      ++lv.tuples;
      lv.bytes_written += len;
      ++lv.hist[hash % SpillLevelStats::kHistBins];
      uint32_t p = (level == 0 ? hash : SaltedRehash(hash, level)) % fanout;
      if (views[p].AddTuple(tuple, len, hash) < 0) {
        flush(p);
        int idx = views[p].AddTuple(tuple, len, hash);
        HJ_CHECK(idx >= 0);
      }
    }
  }
  for (uint32_t p = 0; p < fanout; ++p) {
    if (views[p].slot_count() > 0) flush(p);
  }
  lv.partition_seconds += level_timer.ElapsedSeconds();
  return bm_->FlushWrites();
}

StatusOr<std::vector<BufferManager::FileId>> DiskGraceJoin::Partition(
    BufferManager::FileId input, DiskPhaseStats* stats) {
  return Partition(input, stats,
                   ChooseFanout(input, /*level=*/0, EffectiveBudget()));
}

StatusOr<std::vector<BufferManager::FileId>> DiskGraceJoin::Partition(
    BufferManager::FileId input, DiskPhaseStats* stats, uint32_t fanout) {
  HJ_CHECK(fanout >= 1);
  std::vector<BufferManager::FileId> part_files(fanout);
  for (uint32_t p = 0; p < fanout; ++p) {
    part_files[p] = bm_->CreateFile();
  }
  Status st;
  DiskPhaseStats measured = Measure([&] {
    st = PartitionInto(input, part_files, fanout, /*level=*/0);
  });
  if (stats != nullptr) *stats = measured;
  if (!st.ok()) return st;
  return part_files;
}

uint64_t DiskGraceJoin::EffectiveBudget() {
  uint64_t budget = config_.memory_budget;
  if (config_.dynamic_budget) {
    uint64_t live = config_.dynamic_budget();
    if (live > 0) budget = live;
  }
  if (budget != 0) {
    peak_budget_ = std::max(peak_budget_, budget);
    trough_budget_ = std::min(trough_budget_, budget);
  }
  return budget;
}

void DiskGraceJoin::RecordDegrade(DegradeReason reason) {
  switch (reason) {
    case DegradeReason::kRoleReversal:
      ++tally_.role_reversals;
      break;
    case DegradeReason::kRecursiveSplit:
      ++tally_.recursive_splits;
      break;
    case DegradeReason::kChunkedBuild:
      ++tally_.chunked_fallbacks;
      break;
    case DegradeReason::kBlockNestedLoop:
      ++tally_.bnl_fallbacks;
      break;
    case DegradeReason::kVictimSpill:
      ++tally_.victim_spills;
      break;
    case DegradeReason::kVictimUnspill:
      ++tally_.victim_unspills;
      break;
  }
}

void DiskGraceJoin::ReverseRoles(BufferManager::FileId* build,
                                 BufferManager::FileId* probe) {
  std::swap(*build, *probe);
}

bool DiskGraceJoin::UniformHash(BufferManager::FileId file) const {
  auto it = file_stats_.find(file);
  if (it == file_stats_.end() || !it->second.has_tuples) return false;
  return it->second.uniform_hash;
}

uint32_t DiskGraceJoin::ChooseFanout(BufferManager::FileId input,
                                     uint32_t level, uint64_t budget) const {
  const uint32_t fallback =
      level == 0 ? config_.num_partitions : config_.overflow_fanout;
  if (!config_.adaptive_fanout || budget == 0) return fallback;
  auto it = file_stats_.find(input);
  if (it == file_stats_.end() || it->second.tuples == 0) return fallback;
  const FileStats& fs = it->second;
  if (level > 0) {
    // Deeper levels route on the level-salted rehash, which the key-hash
    // histogram cannot project. Size the sub-fanout from the observed
    // overflow of the partition being split: the smallest split whose
    // even shares fit the budget, plus one part of headroom for the
    // residual imbalance.
    const uint64_t need = EstimateBuildBytes(input);
    const uint64_t want = need / budget + 2;
    const uint64_t cap = std::max(config_.overflow_fanout, 2u);
    return uint32_t(std::min<uint64_t>(std::max<uint64_t>(want, 2), cap));
  }
  // Level 0 routes on hash % fanout, so for any fan-out dividing the
  // histogram bin count, bin j lands in partition j % fanout and the
  // largest partition's tuple count projects exactly. Pick the smallest
  // power-of-two candidate whose projected largest build fits the
  // budget — fewer partitions mean a larger in-memory hybrid fraction
  // and fewer half-empty output buffers.
  const double avg_bytes = double(fs.data_bytes) / double(fs.tuples);
  for (uint32_t f = 1; f <= FileStats::kHistBins; f *= 2) {
    if (f > config_.max_fanout) break;
    uint64_t largest = 0;
    for (uint32_t r = 0; r < f; ++r) {
      uint64_t tuples = 0;
      for (uint32_t j = r; j < FileStats::kHistBins; j += f) {
        tuples += fs.hist[j];
      }
      largest = std::max(largest, tuples);
    }
    // Projected in-memory cost of the largest partition: its data plus
    // slot overhead (the 9/8 slack), page-rounded, plus its hash table.
    const uint64_t bytes = uint64_t(double(largest) * avg_bytes) * 9 / 8;
    const uint64_t pages = bytes / page_size_ + 1;
    const uint64_t need =
        pages * uint64_t(page_size_) + HashTable::EstimateBytes(largest);
    if (need <= budget) return f;
  }
  return std::min(config_.max_fanout, FileStats::kHistBins);
}

uint64_t DiskGraceJoin::EstimateBuildBytes(BufferManager::FileId file) const {
  uint64_t tuples = 0;
  auto it = file_stats_.find(file);
  if (it != file_stats_.end()) tuples = it->second.tuples;
  return bm_->FileBytes(file) + HashTable::EstimateBytes(tuples);
}

void DiskGraceJoin::NoteBuildBytes(uint64_t pages, uint64_t tuples) {
  uint64_t bytes =
      pages * uint64_t(page_size_) + HashTable::EstimateBytes(tuples);
  tally_.max_build_bytes = std::max(tally_.max_build_bytes, bytes);
}

Status DiskGraceJoin::BuildAndProbe(
    const std::vector<std::vector<uint8_t>>& build_pages,
    uint64_t build_tuples, BufferManager::FileId probe, uint64_t* matches) {
  if (build_tuples == 0) return Status::OK();
  NoteBuildBytes(build_pages.size(), build_tuples);
  // The bucket count only needs to be relatively prime to the moduli the
  // hash codes are constrained by; the initial partition count covers the
  // common case, and recursion levels use an independent (salted) hash.
  HashTable ht(ChooseBucketCount(build_tuples, config_.num_partitions));
  for (const auto& bytes : build_pages) {
    SlottedPage pg =
        SlottedPage::Attach(const_cast<uint8_t*>(bytes.data()));
    for (int s = 0; s < pg.slot_count(); ++s) {
      uint16_t len;
      const uint8_t* t = pg.GetTuple(s, &len);
      ht.Insert(pg.GetHashCode(s), t);
    }
  }
  auto scan = bm_->OpenScan(probe);
  const uint8_t* page = nullptr;
  while (true) {
    HJ_RETURN_IF_ERROR(scan.NextPage(&page));
    if (page == nullptr) break;
    HJ_RETURN_IF_ERROR(VerifyPage(page));
    SlottedPage pg = SlottedPage::Attach(const_cast<uint8_t*>(page));
    ProbePageCounting(ht, pg, config_.join_scheme, config_.join_params,
                      matches);
  }
  return Status::OK();
}

Status DiskGraceJoin::JoinChunked(BufferManager::FileId build,
                                  BufferManager::FileId probe,
                                  uint64_t* matches) {
  std::vector<std::vector<uint8_t>> chunk;
  uint64_t chunk_tuples = 0;
  auto scan = bm_->OpenScan(build);
  const uint8_t* page = nullptr;
  while (true) {
    HJ_RETURN_IF_ERROR(scan.NextPage(&page));
    if (page == nullptr) break;
    HJ_RETURN_IF_ERROR(VerifyPage(page));
    uint64_t page_tuples =
        SlottedPage::Attach(const_cast<uint8_t*>(page)).slot_count();
    // Re-read the live budget per page: a broker revoke mid-chunk
    // flushes the chunk earlier, a re-grown grant admits more pages.
    const uint64_t budget = EffectiveBudget();
    // Join the accumulated chunk before this page would push it over the
    // budget. A chunk always holds at least one page, so even a budget
    // smaller than one page's build cost makes progress (that single
    // chunk is the unavoidable minimum working set).
    uint64_t prospective = (chunk.size() + 1) * uint64_t(page_size_) +
                           HashTable::EstimateBytes(chunk_tuples +
                                                    page_tuples);
    if (budget != 0 && prospective > budget && !chunk.empty()) {
      HJ_RETURN_IF_ERROR(BuildAndProbe(chunk, chunk_tuples, probe, matches));
      chunk.clear();
      chunk_tuples = 0;
    }
    chunk.emplace_back(page, page + page_size_);
    chunk_tuples += page_tuples;
  }
  if (!chunk.empty()) {
    HJ_RETURN_IF_ERROR(BuildAndProbe(chunk, chunk_tuples, probe, matches));
  }
  return Status::OK();
}

Status DiskGraceJoin::JoinInMemory(BufferManager::FileId build,
                                   BufferManager::FileId probe,
                                   uint64_t* matches) {
  // Load the build partition (pages must outlive the hash table) and
  // stream the probe partition against it.
  std::vector<std::vector<uint8_t>> pages;
  pages.reserve(bm_->FileNumPages(build));
  uint64_t tuples = 0;
  {
    auto scan = bm_->OpenScan(build);
    const uint8_t* page = nullptr;
    while (true) {
      HJ_RETURN_IF_ERROR(scan.NextPage(&page));
      if (page == nullptr) break;
      HJ_RETURN_IF_ERROR(VerifyPage(page));
      pages.emplace_back(page, page + page_size_);
      tuples += SlottedPage::Attach(pages.back().data()).slot_count();
    }
  }
  return BuildAndProbe(pages, tuples, probe, matches);
}

Status DiskGraceJoin::RecurseSplit(
    BufferManager::FileId probe,
    const std::vector<BufferManager::FileId>& sub_build, uint32_t fanout,
    uint32_t depth, uint64_t* matches) {
  tally_.deepest_recursion = std::max(tally_.deepest_recursion, depth + 1);
  std::vector<BufferManager::FileId> sub_probe(fanout);
  for (uint32_t p = 0; p < fanout; ++p) {
    sub_probe[p] = bm_->CreateFile();
  }
  HJ_RETURN_IF_ERROR(PartitionInto(probe, sub_probe, fanout, depth + 1));
  for (uint32_t p = 0; p < fanout; ++p) {
    HJ_RETURN_IF_ERROR(
        JoinPartitionPair(sub_build[p], sub_probe[p], depth + 1, matches));
  }
  return Status::OK();
}

Status DiskGraceJoin::JoinBlockNestedLoop(BufferManager::FileId build,
                                          BufferManager::FileId probe,
                                          uint64_t* matches) {
  // Single-hash partition: a hash table would be one long chain probed
  // by every tuple, so compare the 4-byte keys directly. Blocks are raw
  // build pages with no table overhead, so a block holds strictly more
  // tuples than a chunk would — and each block costs one probe scan.
  std::vector<std::vector<uint8_t>> block;
  auto probe_block = [&]() -> Status {
    if (block.empty()) return Status::OK();
    NoteBuildBytes(block.size(), 0);
    auto pscan = bm_->OpenScan(probe);
    const uint8_t* ppage = nullptr;
    while (true) {
      HJ_RETURN_IF_ERROR(pscan.NextPage(&ppage));
      if (ppage == nullptr) break;
      HJ_RETURN_IF_ERROR(VerifyPage(ppage));
      SlottedPage pp = SlottedPage::Attach(const_cast<uint8_t*>(ppage));
      for (int ps = 0; ps < pp.slot_count(); ++ps) {
        uint16_t plen = 0;
        const uint8_t* pt = pp.GetTuple(ps, &plen);
        uint32_t pkey;
        std::memcpy(&pkey, pt, 4);
        for (const auto& bytes : block) {
          SlottedPage bp =
              SlottedPage::Attach(const_cast<uint8_t*>(bytes.data()));
          for (int bs = 0; bs < bp.slot_count(); ++bs) {
            uint16_t blen = 0;
            const uint8_t* bt = bp.GetTuple(bs, &blen);
            uint32_t bkey;
            std::memcpy(&bkey, bt, 4);
            if (bkey == pkey) ++*matches;
          }
        }
      }
    }
    return Status::OK();
  };
  auto scan = bm_->OpenScan(build);
  const uint8_t* page = nullptr;
  while (true) {
    HJ_RETURN_IF_ERROR(scan.NextPage(&page));
    if (page == nullptr) break;
    HJ_RETURN_IF_ERROR(VerifyPage(page));
    // Per-page budget poll, like the chunked build: a revoke shrinks
    // the current block, a re-grant widens the next one.
    const uint64_t budget = EffectiveBudget();
    if (budget != 0 && !block.empty() &&
        (block.size() + 1) * uint64_t(page_size_) > budget) {
      HJ_RETURN_IF_ERROR(probe_block());
      block.clear();
    }
    block.emplace_back(page, page + page_size_);
  }
  return probe_block();
}

Status DiskGraceJoin::JoinPartitionPair(BufferManager::FileId build,
                                        BufferManager::FileId probe,
                                        uint32_t depth, uint64_t* matches) {
  // Inner join: an empty side means no matches, whichever side it is.
  if (bm_->FileNumPages(build) == 0 || bm_->FileNumPages(probe) == 0) {
    return Status::OK();
  }
  const uint64_t budget = EffectiveBudget();
  const uint64_t need = EstimateBuildBytes(build);
  if (budget == 0 || need <= budget) {
    // Fits now — but if it would NOT have fit at the lowest budget this
    // join has been squeezed to, a grant re-growth recovered in-memory
    // work that a revoke had condemned to spill ("un-spill").
    if (budget != 0 && need > trough_budget_) ++tally_.regrant_unspills;
    return JoinInMemory(build, probe, matches);
  }

  // Ladder rung 1 — role reversal: the planned build side turned out
  // too big, but if the probe side fits, joining from the other end
  // avoids spilling entirely. Counting is side-symmetric, so only the
  // memory plan changes.
  if (config_.role_reversal && EstimateBuildBytes(probe) <= budget) {
    RecordDegrade(DegradeReason::kRoleReversal);
    ReverseRoles(&build, &probe);
    return JoinInMemory(build, probe, matches);
  }

  // Spilling — and if the partition would have fit at the peak budget,
  // this spill exists only because a revoke shrank the grant.
  if (need <= peak_budget_) ++tally_.revoke_spills;

  // Ladder rung 2 — recursive repartition with the next level's salted
  // hash. A single-hash partition re-hashes into one sub-partition no
  // matter the salt, so it skips recursion outright; the no-progress
  // check below catches the skewed-but-not-uniform shapes.
  if (depth < config_.max_recursion_depth && !UniformHash(build)) {
    const uint64_t build_pages = bm_->FileNumPages(build);
    const uint32_t fanout = ChooseFanout(build, depth + 1, budget);
    std::vector<BufferManager::FileId> sub_build(fanout);
    for (uint32_t p = 0; p < fanout; ++p) sub_build[p] = bm_->CreateFile();
    HJ_RETURN_IF_ERROR(PartitionInto(build, sub_build, fanout, depth + 1));
    uint64_t largest = 0;
    for (uint32_t p = 0; p < fanout; ++p) {
      largest = std::max(largest, bm_->FileNumPages(sub_build[p]));
    }
    if (largest < build_pages) {
      RecordDegrade(DegradeReason::kRecursiveSplit);
      return RecurseSplit(probe, sub_build, fanout, depth, matches);
    }
  }

  // Rungs 3 and 4 hold one side in budget-sized pieces and re-scan the
  // other per piece — so work off whichever side is cheaper to hold.
  if (config_.role_reversal && EstimateBuildBytes(probe) < need) {
    RecordDegrade(DegradeReason::kRoleReversal);
    ReverseRoles(&build, &probe);
  }

  // Ladder rung 4 (last resort, checked first because it is a shape,
  // not a size): every build tuple shares one hash code, so each chunk
  // hash table would degenerate to a single chain — the block nested
  // loop does the same comparisons without the table overhead.
  if (UniformHash(build)) {
    RecordDegrade(DegradeReason::kBlockNestedLoop);
    return JoinBlockNestedLoop(build, probe, matches);
  }

  // Ladder rung 3 — chunked multipass build past the depth cap.
  RecordDegrade(DegradeReason::kChunkedBuild);
  return JoinChunked(build, probe, matches);
}

/// Mutable bookkeeping of one hybrid Join() pass, shared by the driver
/// and its spill/un-spill helpers. The residency object owns the
/// resident pages; this owns the files, write cursors, and hash tables.
struct DiskGraceJoin::HybridState {
  std::vector<BufferManager::FileId> build_files;
  std::vector<uint64_t> build_next_page;
  /// File holds the COMPLETE build partition (safe to re-read, and a
  /// second eviction of a re-admitted partition skips re-writing).
  std::vector<char> build_on_disk;
  std::vector<BufferManager::FileId> probe_files;
  std::vector<char> probe_created;
  std::vector<uint64_t> probe_next_page;
  std::vector<std::unique_ptr<HashTable>> tables;
  /// False during the build partition pass (an evicted partition's file
  /// is still growing), true once the pass is complete.
  bool probe_pass = false;
};

Status DiskGraceJoin::SpillVictim(PartitionResidency* res, uint32_t victim,
                                  HybridState* st) {
  std::vector<std::vector<uint8_t>> pages = res->Evict(victim);
  if (!st->build_on_disk[victim]) {
    // First eviction: write the resident pages out. During the build
    // pass the partition's remaining tuples will go straight to the
    // file, completing it by end of pass; a partition evicted during
    // the probe pass is complete the moment these writes land.
    for (auto& pg : pages) {
      QueueWritePage(st->build_files[victim], st->build_next_page[victim]++,
                     pg.data());
    }
    if (st->probe_pass) st->build_on_disk[victim] = 1;
  }
  // else: the file already holds the whole partition (this residency
  // came from an un-spill) and dropping the pages costs no I/O.
  st->tables[victim].reset();
  return Status::OK();
}

Status DiskGraceJoin::EnforceResidencyBudget(PartitionResidency* res,
                                             HybridState* st) {
  uint64_t target = EffectiveBudget();
  // Consume a pending revoke hint: the grant's revoke listener stored
  // the post-revoke size the moment the broker took the memory, which
  // can be tighter than the budget poll above observes (and arrives
  // without waiting for the next poll).
  const uint64_t hint =
      revoke_hint_.exchange(UINT64_MAX, std::memory_order_relaxed);
  if (hint != UINT64_MAX && hint != 0) {
    peak_budget_ = std::max(peak_budget_, hint);
    trough_budget_ = std::min(trough_budget_, hint);
    if (target == 0 || hint < target) target = hint;
  }
  if (target == 0) return Status::OK();  // unlimited
  while (res->ResidentBytes() > target) {
    const int victim = res->PickVictim(res->ResidentBytes() - target);
    if (victim < 0) break;  // minimum working set: nothing left to evict
    if (target < peak_budget_) ++tally_.revoke_spills;
    RecordDegrade(DegradeReason::kVictimSpill);
    HJ_RETURN_IF_ERROR(SpillVictim(res, uint32_t(victim), st));
  }
  return Status::OK();
}

Status DiskGraceJoin::UnspillPartition(PartitionResidency* res, uint32_t p,
                                       HybridState* st) {
  std::vector<std::vector<uint8_t>> pages;
  uint64_t tuples = 0;
  auto scan = bm_->OpenScan(st->build_files[p]);
  const uint8_t* page = nullptr;
  while (true) {
    HJ_RETURN_IF_ERROR(scan.NextPage(&page));
    if (page == nullptr) break;
    HJ_RETURN_IF_ERROR(VerifyPage(page));
    pages.emplace_back(page, page + page_size_);
    tuples += SlottedPage::Attach(pages.back().data()).slot_count();
  }
  res->Readmit(p, std::move(pages), tuples);
  return Status::OK();
}

Status DiskGraceJoin::MaybeUnspill(PartitionResidency* res, HybridState* st) {
  // Inverse spill order: the latest victim went out at the lowest
  // budget, so it is the cheapest to bring back and the most likely to
  // fit a partial re-grant.
  bool flushed = false;
  while (true) {
    const int p = res->LastSpilled();
    if (p < 0) break;
    const uint64_t budget = EffectiveBudget();
    if (budget != 0) {
      const uint64_t cost = EstimateBuildBytes(st->build_files[p]);
      if (res->ResidentBytes() + cost > budget) break;
    }
    if (!flushed) {
      // The partition files were written asynchronously; settle them
      // once before the first read-back.
      HJ_RETURN_IF_ERROR(bm_->FlushWrites());
      flushed = true;
    }
    if (budget > trough_budget_) ++tally_.regrant_unspills;
    RecordDegrade(DegradeReason::kVictimUnspill);
    HJ_RETURN_IF_ERROR(UnspillPartition(res, uint32_t(p), st));
  }
  return Status::OK();
}

Status DiskGraceJoin::JoinHybrid(BufferManager::FileId build,
                                 BufferManager::FileId probe, uint32_t fanout,
                                 DiskJoinResult* result) {
  HybridState st;
  st.build_files.resize(fanout);
  st.build_next_page.assign(fanout, 0);
  st.build_on_disk.assign(fanout, 0);
  st.probe_files.assign(fanout, 0);
  st.probe_created.assign(fanout, 0);
  st.probe_next_page.assign(fanout, 0);
  st.tables.resize(fanout);
  for (uint32_t p = 0; p < fanout; ++p) st.build_files[p] = bm_->CreateFile();

  // Revoke hint wiring: learn post-revoke grant sizes the moment they
  // happen, instead of at the next budget poll. The listener only
  // stores to an atomic (per the SetRevokeListener contract it must not
  // call back into the broker), and is uninstalled on every exit path
  // because the closure captures `this`.
  revoke_hint_.store(UINT64_MAX, std::memory_order_relaxed);
  struct ListenerGuard {
    const DiskJoinConfig* config;
    ~ListenerGuard() {
      if (config->install_revoke_listener) config->install_revoke_listener({});
    }
  } guard{&config_};
  if (config_.install_revoke_listener) {
    config_.install_revoke_listener([this](uint64_t new_bytes) {
      revoke_hint_.store(new_bytes, std::memory_order_relaxed);
    });
  }

  uint64_t matches = 0;
  std::vector<char> spilled(fanout, 0);
  Status pass_st;
  {
    PartitionResidency res(fanout, page_size_, [](uint64_t tuples) {
      return HashTable::EstimateBytes(tuples);
    });

    // ---- Build pass: partition the build input, keeping partitions
    // resident until the live budget forces smallest-loss victims out.
    result->partition_phase = Measure([&] {
      pass_st = [&]() -> Status {
        std::vector<std::vector<uint8_t>> bufs(fanout);
        std::vector<SlottedPage> views(fanout);
        for (uint32_t p = 0; p < fanout; ++p) {
          bufs[p].resize(page_size_);
          views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
        }
        // Routes one full working page to residency or disk, then lets
        // the budget claim victims at this page boundary.
        auto emit = [&](uint32_t p) -> Status {
          if (res.resident(p)) {
            const uint64_t page_tuples = views[p].slot_count();
            res.AddPage(p, std::move(bufs[p]), page_tuples);
            bufs[p] = std::vector<uint8_t>(page_size_);
          } else {
            QueueWritePage(st.build_files[p], st.build_next_page[p]++,
                           bufs[p].data());
          }
          views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
          return EnforceResidencyBudget(&res, &st);
        };
        auto scan = bm_->OpenScan(build);
        const uint8_t* page = nullptr;
        while (true) {
          HJ_RETURN_IF_ERROR(scan.NextPage(&page));
          if (page == nullptr) break;
          HJ_RETURN_IF_ERROR(VerifyPage(page));
          SlottedPage in = SlottedPage::Attach(const_cast<uint8_t*>(page));
          for (int s = 0; s < in.slot_count(); ++s) {
            uint16_t len = 0;
            const uint8_t* tuple = in.GetTuple(s, &len);
            uint32_t key;
            std::memcpy(&key, tuple, 4);
            const uint32_t hash = HashKey32(key);
            const uint32_t p = hash % fanout;
            if (views[p].AddTuple(tuple, len, hash) < 0) {
              HJ_RETURN_IF_ERROR(emit(p));
              const int idx = views[p].AddTuple(tuple, len, hash);
              HJ_CHECK(idx >= 0);
            }
          }
        }
        for (uint32_t p = 0; p < fanout; ++p) {
          if (views[p].slot_count() > 0) HJ_RETURN_IF_ERROR(emit(p));
        }
        return bm_->FlushWrites();
      }();
    });
    HJ_RETURN_IF_ERROR(pass_st);
    // Every partition evicted during the pass kept receiving its
    // remaining tuples directly, so the spilled files are complete now.
    for (uint32_t p = 0; p < fanout; ++p) {
      if (!res.resident(p)) st.build_on_disk[p] = 1;
    }
    st.probe_pass = true;

    // ---- Un-spill window: with the build files complete, re-admit
    // spilled partitions while the (possibly re-grown) budget allows.
    HJ_RETURN_IF_ERROR(MaybeUnspill(&res, &st));

    // ---- Probe pass: hash tables over the resident partitions, probe
    // them on the fly (the hybrid fraction — zero join-phase I/O);
    // tuples of spilled partitions go to probe partition files. The
    // resident probe is the plain per-tuple path; spilled pairs use the
    // configured execution policy in the join phase below.
    result->probe_partition_phase = Measure([&] {
      pass_st = [&]() -> Status {
        for (uint32_t p = 0; p < fanout; ++p) {
          if (!res.resident(p) || res.tuples(p) == 0) continue;
          NoteBuildBytes(res.pages(p).size(), res.tuples(p));
          auto ht = std::make_unique<HashTable>(
              ChooseBucketCount(res.tuples(p), fanout));
          for (const auto& bytes : res.pages(p)) {
            SlottedPage pg =
                SlottedPage::Attach(const_cast<uint8_t*>(bytes.data()));
            for (int s = 0; s < pg.slot_count(); ++s) {
              uint16_t len = 0;
              const uint8_t* t = pg.GetTuple(s, &len);
              ht->Insert(pg.GetHashCode(s), t);
            }
          }
          st.tables[p] = std::move(ht);
        }
        std::vector<std::vector<uint8_t>> bufs(fanout);
        std::vector<SlottedPage> views(fanout);
        for (uint32_t p = 0; p < fanout; ++p) {
          bufs[p].resize(page_size_);
          views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
        }
        auto spill_probe = [&](uint32_t p) {
          if (!st.probe_created[p]) {
            st.probe_files[p] = bm_->CreateFile();
            st.probe_created[p] = 1;
          }
          QueueWritePage(st.probe_files[p], st.probe_next_page[p]++,
                         bufs[p].data());
          views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
        };
        auto scan = bm_->OpenScan(probe);
        const uint8_t* page = nullptr;
        while (true) {
          HJ_RETURN_IF_ERROR(scan.NextPage(&page));
          if (page == nullptr) break;
          HJ_RETURN_IF_ERROR(VerifyPage(page));
          // A revoke mid-probe demotes victims here, at the page
          // boundary. That is safe because each probe tuple is probed
          // exactly once: tuples already probed against the demoted
          // partition stand, and the partition's remaining probe tuples
          // are routed to its probe file and joined from disk.
          HJ_RETURN_IF_ERROR(EnforceResidencyBudget(&res, &st));
          SlottedPage in = SlottedPage::Attach(const_cast<uint8_t*>(page));
          for (int s = 0; s < in.slot_count(); ++s) {
            uint16_t len = 0;
            const uint8_t* tuple = in.GetTuple(s, &len);
            uint32_t key;
            std::memcpy(&key, tuple, 4);
            const uint32_t hash = HashKey32(key);
            const uint32_t p = hash % fanout;
            if (res.resident(p)) {
              if (st.tables[p] != nullptr) {
                st.tables[p]->Probe(hash, [&](const uint8_t* bt) {
                  uint32_t bkey;
                  std::memcpy(&bkey, bt, 4);
                  if (bkey == key) ++matches;
                });
              }
            } else if (views[p].AddTuple(tuple, len, hash) < 0) {
              spill_probe(p);
              const int idx = views[p].AddTuple(tuple, len, hash);
              HJ_CHECK(idx >= 0);
            }
          }
        }
        for (uint32_t p = 0; p < fanout; ++p) {
          if (views[p].slot_count() > 0) spill_probe(p);
        }
        return bm_->FlushWrites();
      }();
    });
    HJ_RETURN_IF_ERROR(pass_st);
    for (uint32_t p = 0; p < fanout; ++p) {
      spilled[p] = res.resident(p) ? 0 : 1;
    }
  }  // residency scope: resident pages released before the join phase
  for (uint32_t p = 0; p < fanout; ++p) st.tables[p].reset();

  // ---- Join phase: only the spilled pairs touch disk again; each one
  // descends the degradation ladder as needed.
  result->join_phase = Measure([&] {
    pass_st = [&]() -> Status {
      for (uint32_t p = 0; p < fanout; ++p) {
        if (!spilled[p]) continue;
        if (!st.probe_created[p]) {
          // No probe tuple hashed here; an empty file keeps the pair
          // aligned (the ladder short-circuits empty sides).
          st.probe_files[p] = bm_->CreateFile();
          st.probe_created[p] = 1;
        }
        HJ_RETURN_IF_ERROR(JoinPartitionPair(st.build_files[p],
                                             st.probe_files[p], /*depth=*/0,
                                             &matches));
      }
      return Status::OK();
    }();
  });
  HJ_RETURN_IF_ERROR(pass_st);
  result->output_tuples = matches;
  return Status::OK();
}

StatusOr<uint64_t> DiskGraceJoin::JoinPartitions(
    const std::vector<BufferManager::FileId>& build_parts,
    const std::vector<BufferManager::FileId>& probe_parts,
    DiskPhaseStats* stats) {
  if (build_parts.size() != probe_parts.size()) {
    return Status::InvalidArgument(
        "build/probe partition counts must match");
  }
  uint64_t matches = 0;
  Status st;
  DiskPhaseStats measured = Measure([&] {
    for (size_t p = 0; p < build_parts.size(); ++p) {
      st = JoinPartitionPair(build_parts[p], probe_parts[p], /*depth=*/0,
                             &matches);
      if (!st.ok()) return;
    }
  });
  if (stats != nullptr) *stats = measured;
  if (!st.ok()) return st;
  return matches;
}

StatusOr<DiskJoinResult> DiskGraceJoin::Join(BufferManager::FileId build,
                                             BufferManager::FileId probe) {
  DiskJoinResult result;
  // Seed the peak/trough watermarks with the budget granted at join
  // start: sizing decisions only run in the join phase, so without this
  // a grant revoked during the partition phase would never register as
  // "once larger" and its spills would misclassify as plain skew.
  EffectiveBudget();
  const IoRecoveryStats io_before = bm_->recovery_stats();
  const DiskJoinRecovery tally_before = tally_;
  const std::vector<SpillLevelStats> levels_before = level_tally_;
  // One fan-out decision for both relations (pairs must align), made
  // from the build side's observed statistics — StoreRelation sampled
  // its key-hash histogram while writing the input file.
  const uint32_t fanout =
      ChooseFanout(build, /*level=*/0, EffectiveBudget());
  result.num_partitions = fanout;
  if (config_.hybrid_residency) {
    HJ_RETURN_IF_ERROR(JoinHybrid(build, probe, fanout, &result));
  } else {
    HJ_ASSIGN_OR_RETURN(auto build_parts,
                        Partition(build, &result.partition_phase, fanout));
    HJ_ASSIGN_OR_RETURN(
        auto probe_parts,
        Partition(probe, &result.probe_partition_phase, fanout));
    HJ_ASSIGN_OR_RETURN(
        result.output_tuples,
        JoinPartitions(build_parts, probe_parts, &result.join_phase));
  }
  const IoRecoveryStats io_after = bm_->recovery_stats();
  result.recovery.read_retries = io_after.read_retries - io_before.read_retries;
  result.recovery.write_retries =
      io_after.write_retries - io_before.write_retries;
  result.recovery.checksum_failures =
      io_after.checksum_failures - io_before.checksum_failures;
  result.recovery.write_verify_failures =
      io_after.write_verify_failures - io_before.write_verify_failures;
  result.recovery.injected_faults =
      io_after.injected_faults - io_before.injected_faults;
  result.recovery.recursive_splits =
      tally_.recursive_splits - tally_before.recursive_splits;
  result.recovery.chunked_fallbacks =
      tally_.chunked_fallbacks - tally_before.chunked_fallbacks;
  result.recovery.deepest_recursion = tally_.deepest_recursion;
  result.recovery.max_build_bytes = tally_.max_build_bytes;
  result.recovery.revoke_spills =
      tally_.revoke_spills - tally_before.revoke_spills;
  result.recovery.regrant_unspills =
      tally_.regrant_unspills - tally_before.regrant_unspills;
  result.recovery.role_reversals =
      tally_.role_reversals - tally_before.role_reversals;
  result.recovery.bnl_fallbacks =
      tally_.bnl_fallbacks - tally_before.bnl_fallbacks;
  result.recovery.victim_spills =
      tally_.victim_spills - tally_before.victim_spills;
  result.recovery.victim_unspills =
      tally_.victim_unspills - tally_before.victim_unspills;
  // Per-level split statistics, diffed like the recovery tally so each
  // Join() reports only its own partitioning work.
  for (size_t l = 0; l < level_tally_.size(); ++l) {
    SpillLevelStats diff = level_tally_[l];
    if (l < levels_before.size()) {
      const SpillLevelStats& before = levels_before[l];
      diff.partitions_written -= before.partitions_written;
      diff.tuples -= before.tuples;
      diff.bytes_written -= before.bytes_written;
      diff.partition_seconds -= before.partition_seconds;
      for (uint32_t b = 0; b < SpillLevelStats::kHistBins; ++b) {
        diff.hist[b] -= before.hist[b];
      }
    }
    if (diff.tuples != 0 || diff.partitions_written != 0) {
      result.spill_levels.push_back(diff);
    }
  }
  return result;
}

}  // namespace hashjoin
