#include "join/grace_disk.h"

#include <cstring>

#include "hash/hash_func.h"
#include "hash/hash_table.h"
#include "join/grace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hashjoin {

DiskGraceJoin::DiskGraceJoin(BufferManager* bm, uint32_t num_partitions)
    : bm_(bm),
      num_partitions_(num_partitions),
      page_size_(bm->config().disk.page_size) {
  HJ_CHECK(num_partitions_ >= 1);
}

template <typename Fn>
DiskPhaseStats DiskGraceJoin::Measure(Fn&& fn) {
  std::vector<double> busy_before = bm_->DiskBusySeconds();
  double stall_before = bm_->main_stall_seconds();
  WallTimer timer;
  fn();
  DiskPhaseStats stats;
  stats.elapsed_seconds = timer.ElapsedSeconds();
  std::vector<double> busy_after = bm_->DiskBusySeconds();
  for (size_t i = 0; i < busy_after.size(); ++i) {
    stats.max_disk_seconds =
        std::max(stats.max_disk_seconds, busy_after[i] - busy_before[i]);
  }
  stats.main_wait_seconds = bm_->main_stall_seconds() - stall_before;
  return stats;
}

BufferManager::FileId DiskGraceJoin::StoreRelation(const Relation& rel) {
  HJ_CHECK(rel.page_size() == page_size_)
      << "relation pages must match the disk page size";
  auto file = bm_->CreateFile();
  for (size_t p = 0; p < rel.num_pages(); ++p) {
    bm_->WritePageAsync(file, p, rel.page(p).data());
  }
  bm_->FlushWrites();
  return file;
}

std::vector<BufferManager::FileId> DiskGraceJoin::Partition(
    BufferManager::FileId input, DiskPhaseStats* stats) {
  std::vector<BufferManager::FileId> part_files(num_partitions_);
  auto run = [&] {
    std::vector<std::vector<uint8_t>> bufs(num_partitions_);
    std::vector<SlottedPage> views(num_partitions_);
    std::vector<uint64_t> next_page(num_partitions_, 0);
    for (uint32_t p = 0; p < num_partitions_; ++p) {
      part_files[p] = bm_->CreateFile();
      bufs[p].resize(page_size_);
      views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
    }
    auto flush = [&](uint32_t p) {
      bm_->WritePageAsync(part_files[p], next_page[p]++, bufs[p].data());
      views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
    };
    auto scan = bm_->OpenScan(input);
    while (const uint8_t* page = scan.NextPage()) {
      // The scan buffer is recycled on the next NextPage(), but tuples
      // are fully copied into output buffers within this iteration.
      SlottedPage in = SlottedPage::Attach(const_cast<uint8_t*>(page));
      for (int s = 0; s < in.slot_count(); ++s) {
        uint16_t len = 0;
        const uint8_t* tuple = in.GetTuple(s, &len);
        uint32_t key;
        std::memcpy(&key, tuple, 4);
        uint32_t hash = HashKey32(key);
        uint32_t p = hash % num_partitions_;
        if (views[p].AddTuple(tuple, len, hash) < 0) {
          flush(p);
          int idx = views[p].AddTuple(tuple, len, hash);
          HJ_CHECK(idx >= 0);
        }
      }
    }
    for (uint32_t p = 0; p < num_partitions_; ++p) {
      if (views[p].slot_count() > 0) flush(p);
    }
    bm_->FlushWrites();
  };
  DiskPhaseStats measured = Measure(run);
  if (stats != nullptr) *stats = measured;
  return part_files;
}

uint64_t DiskGraceJoin::JoinPartitions(
    const std::vector<BufferManager::FileId>& build_parts,
    const std::vector<BufferManager::FileId>& probe_parts,
    DiskPhaseStats* stats) {
  HJ_CHECK(build_parts.size() == probe_parts.size());
  uint64_t matches = 0;
  auto run = [&] {
    for (size_t p = 0; p < build_parts.size(); ++p) {
      // Load the build partition; its pages must outlive the hash table.
      std::vector<std::vector<uint8_t>> pages;
      uint64_t tuples = 0;
      {
        auto scan = bm_->OpenScan(build_parts[p]);
        while (const uint8_t* page = scan.NextPage()) {
          pages.emplace_back(page, page + page_size_);
          tuples += SlottedPage::Attach(pages.back().data()).slot_count();
        }
      }
      if (tuples == 0) continue;
      HashTable ht(
          ChooseBucketCount(tuples, uint32_t(build_parts.size())));
      for (auto& bytes : pages) {
        SlottedPage pg = SlottedPage::Attach(bytes.data());
        for (int s = 0; s < pg.slot_count(); ++s) {
          uint16_t len;
          const uint8_t* t = pg.GetTuple(s, &len);
          ht.Insert(pg.GetHashCode(s), t);
        }
      }
      auto scan = bm_->OpenScan(probe_parts[p]);
      while (const uint8_t* page = scan.NextPage()) {
        SlottedPage pg = SlottedPage::Attach(const_cast<uint8_t*>(page));
        for (int s = 0; s < pg.slot_count(); ++s) {
          uint16_t len;
          const uint8_t* t = pg.GetTuple(s, &len);
          uint32_t key;
          std::memcpy(&key, t, 4);
          ht.Probe(pg.GetHashCode(s), [&](const uint8_t* bt) {
            uint32_t bkey;
            std::memcpy(&bkey, bt, 4);
            if (bkey == key) ++matches;
          });
        }
      }
    }
  };
  DiskPhaseStats measured = Measure(run);
  if (stats != nullptr) *stats = measured;
  return matches;
}

DiskJoinResult DiskGraceJoin::Join(BufferManager::FileId build,
                                   BufferManager::FileId probe) {
  DiskJoinResult result;
  result.num_partitions = num_partitions_;
  auto build_parts = Partition(build, &result.partition_phase);
  auto probe_parts = Partition(probe, &result.probe_partition_phase);
  result.output_tuples =
      JoinPartitions(build_parts, probe_parts, &result.join_phase);
  return result;
}

}  // namespace hashjoin
