#include "join/grace_disk.h"

#include <algorithm>
#include <cstring>

#include "hash/hash_func.h"
#include "hash/hash_table.h"
#include "join/grace.h"
#include "storage/slotted_page.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hashjoin {

namespace {

/// Probes one slot of a partition page against the build table, counting
/// key matches. Shared by every execution policy below, so the policies
/// differ only in prefetch scheduling, never in what a probe observes.
inline void ProbeSlotCounting(const HashTable& ht, SlottedPage& pg, int s,
                              uint64_t* matches) {
  uint16_t len;
  const uint8_t* t = pg.GetTuple(s, &len);
  uint32_t key;
  std::memcpy(&key, t, 4);
  ht.Probe(pg.GetHashCode(s), [&](const uint8_t* bt) {
    uint32_t bkey;
    std::memcpy(&bkey, bt, 4);
    if (bkey == key) ++*matches;
  });
}

inline const BucketHeader* SlotBucket(const HashTable& ht,
                                      const SlottedPage& pg, int s) {
  return ht.bucket(ht.BucketIndex(pg.GetHashCode(s)));
}

#if HASHJOIN_HAS_COROUTINES
/// One probe chain over the page's slots: hash/prefetch, suspend, probe.
KernelCoro ProbePageChain(RealMemory& mm, const HashTable& ht,
                          SlottedPage& pg, int& next, uint64_t* matches) {
  while (next < pg.slot_count()) {
    const int s = next++;
    mm.Prefetch(SlotBucket(ht, pg, s), sizeof(BucketHeader));
    co_await KernelCoro::NextStage{};
    ProbeSlotCounting(ht, pg, s, matches);
  }
}
#endif

/// Count-only probe of one partition page under the disk join's
/// configured execution policy. Slots are probed in order under every
/// policy (group pass 2, SPP stage 2, and the coroutine chains all
/// preserve slot order within their visit), so the tally is
/// scheme-independent.
void ProbePageCounting(const HashTable& ht, SlottedPage& pg, Scheme scheme,
                       const KernelParams& params, uint64_t* matches) {
  RealMemory mm;
  const int n = pg.slot_count();
  switch (scheme) {
    case Scheme::kBaseline:
      for (int s = 0; s < n; ++s) ProbeSlotCounting(ht, pg, s, matches);
      return;
    case Scheme::kSimple:
      // Just-in-time bucket prefetch right before the visit (§7.1).
      for (int s = 0; s < n; ++s) {
        mm.Prefetch(SlotBucket(ht, pg, s), sizeof(BucketHeader));
        ProbeSlotCounting(ht, pg, s, matches);
      }
      return;
    case Scheme::kGroup: {
      const int group = int(std::max(1u, params.group_size));
      for (int base = 0; base < n; base += group) {
        const int g = std::min(group, n - base);
        for (int i = 0; i < g; ++i) {
          mm.Prefetch(SlotBucket(ht, pg, base + i), sizeof(BucketHeader));
        }
        for (int i = 0; i < g; ++i) {
          ProbeSlotCounting(ht, pg, base + i, matches);
        }
      }
      return;
    }
    case Scheme::kSwp: {
      const int d = int(std::max(1u, params.prefetch_distance));
      for (int s = 0; s < std::min(d, n); ++s) {
        mm.Prefetch(SlotBucket(ht, pg, s), sizeof(BucketHeader));
      }
      for (int j = 0; j < n; ++j) {
        if (j + d < n) {
          mm.Prefetch(SlotBucket(ht, pg, j + d), sizeof(BucketHeader));
        }
        ProbeSlotCounting(ht, pg, j, matches);
      }
      return;
    }
    case Scheme::kCoro: {
#if HASHJOIN_HAS_COROUTINES
      int next = 0;
      RunCoroPipeline(mm, std::max(1u, params.group_size), [&](uint32_t) {
        return ProbePageChain(mm, ht, pg, next, matches);
      });
      return;
#else
      HJ_CHECK(SchemeAvailable(scheme))
          << "disk join configured with the coro scheme on a toolchain "
             "without C++20 coroutines";
      return;
#endif
    }
  }
}

}  // namespace

DiskGraceJoin::DiskGraceJoin(BufferManager* bm, const DiskJoinConfig& config)
    : bm_(bm), config_(config), page_size_(bm->config().disk.page_size) {
  HJ_CHECK(config_.num_partitions >= 1);
  HJ_CHECK(config_.overflow_fanout >= 2);
  if (config_.initial_grant_bytes != 0) {
    peak_budget_ = config_.initial_grant_bytes;
    trough_budget_ = config_.initial_grant_bytes;
  }
}

DiskGraceJoin::DiskGraceJoin(BufferManager* bm, uint32_t num_partitions)
    : DiskGraceJoin(bm, [&] {
        DiskJoinConfig c;
        c.num_partitions = num_partitions;
        return c;
      }()) {}

template <typename Fn>
DiskPhaseStats DiskGraceJoin::Measure(Fn&& fn) {
  std::vector<double> busy_before = bm_->DiskBusySeconds();
  double stall_before = bm_->main_stall_seconds();
  WallTimer timer;
  fn();
  DiskPhaseStats stats;
  stats.elapsed_seconds = timer.ElapsedSeconds();
  std::vector<double> busy_after = bm_->DiskBusySeconds();
  for (size_t i = 0; i < busy_after.size(); ++i) {
    stats.max_disk_seconds =
        std::max(stats.max_disk_seconds, busy_after[i] - busy_before[i]);
  }
  stats.main_wait_seconds = bm_->main_stall_seconds() - stall_before;
  return stats;
}

void DiskGraceJoin::QueueWritePage(BufferManager::FileId file,
                                   uint64_t page_index,
                                   uint8_t* page_bytes) {
  SlottedPage pg = SlottedPage::Attach(page_bytes);
  FileStats& fs = file_stats_[file];
  for (int s = 0; s < pg.slot_count(); ++s) {
    fs.data_bytes += pg.GetSlot(s)->length;
  }
  fs.tuples += pg.slot_count();
  if (config_.page_checksums) pg.StampChecksum();
  bm_->WritePageAsync(file, page_index, page_bytes);
}

Status DiskGraceJoin::VerifyPage(const uint8_t* page_bytes) const {
  if (!config_.page_checksums) return Status::OK();
  SlottedPage pg = SlottedPage::Attach(const_cast<uint8_t*>(page_bytes));
  if (!pg.VerifyChecksum()) {
    return Status::DataLoss(
        "slotted page failed end-to-end checksum verification");
  }
  return Status::OK();
}

StatusOr<BufferManager::FileId> DiskGraceJoin::StoreRelation(
    const Relation& rel) {
  if (rel.page_size() != page_size_) {
    return Status::InvalidArgument(
        "relation pages must match the disk page size");
  }
  auto file = bm_->CreateFile();
  // The relation is const, so checksums are stamped on a scratch copy of
  // each page (WritePageAsync copies again into its own queue entry; the
  // extra copy only affects this load utility, not the join phases).
  std::vector<uint8_t> scratch(page_size_);
  for (size_t p = 0; p < rel.num_pages(); ++p) {
    std::memcpy(scratch.data(), rel.page(p).data(), page_size_);
    QueueWritePage(file, p, scratch.data());
  }
  HJ_RETURN_IF_ERROR(bm_->FlushWrites());
  return file;
}

Status DiskGraceJoin::PartitionInto(
    BufferManager::FileId input,
    const std::vector<BufferManager::FileId>& outs, uint32_t fanout,
    uint32_t level) {
  std::vector<std::vector<uint8_t>> bufs(fanout);
  std::vector<SlottedPage> views(fanout);
  std::vector<uint64_t> next_page(fanout, 0);
  for (uint32_t p = 0; p < fanout; ++p) {
    bufs[p].resize(page_size_);
    views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
  }
  auto flush = [&](uint32_t p) {
    QueueWritePage(outs[p], next_page[p]++, bufs[p].data());
    views[p] = SlottedPage::Format(bufs[p].data(), page_size_);
  };
  auto scan = bm_->OpenScan(input);
  const uint8_t* page = nullptr;
  while (true) {
    HJ_RETURN_IF_ERROR(scan.NextPage(&page));
    if (page == nullptr) break;
    HJ_RETURN_IF_ERROR(VerifyPage(page));
    // The scan buffer is recycled on the next NextPage(), but tuples are
    // fully copied into output buffers within this iteration.
    SlottedPage in = SlottedPage::Attach(const_cast<uint8_t*>(page));
    for (int s = 0; s < in.slot_count(); ++s) {
      uint16_t len = 0;
      const uint8_t* tuple = in.GetTuple(s, &len);
      // Level 0 hashes the key; deeper levels reroute the memoized hash
      // code through the level-salted rehash (every tuple here already
      // agrees on hash % parent_fanout, so reusing the plain hash would
      // put the whole partition into one sub-partition again). The
      // *original* hash code is memoized either way — the join phase and
      // further recursion levels both derive from it.
      uint32_t hash;
      if (level == 0) {
        uint32_t key;
        std::memcpy(&key, tuple, 4);
        hash = HashKey32(key);
      } else {
        hash = in.GetHashCode(s);
      }
      uint32_t p = (level == 0 ? hash : SaltedRehash(hash, level)) % fanout;
      if (views[p].AddTuple(tuple, len, hash) < 0) {
        flush(p);
        int idx = views[p].AddTuple(tuple, len, hash);
        HJ_CHECK(idx >= 0);
      }
    }
  }
  for (uint32_t p = 0; p < fanout; ++p) {
    if (views[p].slot_count() > 0) flush(p);
  }
  return bm_->FlushWrites();
}

StatusOr<std::vector<BufferManager::FileId>> DiskGraceJoin::Partition(
    BufferManager::FileId input, DiskPhaseStats* stats) {
  std::vector<BufferManager::FileId> part_files(config_.num_partitions);
  for (uint32_t p = 0; p < config_.num_partitions; ++p) {
    part_files[p] = bm_->CreateFile();
  }
  Status st;
  DiskPhaseStats measured = Measure([&] {
    st = PartitionInto(input, part_files, config_.num_partitions,
                       /*level=*/0);
  });
  if (stats != nullptr) *stats = measured;
  if (!st.ok()) return st;
  return part_files;
}

uint64_t DiskGraceJoin::EffectiveBudget() {
  uint64_t budget = config_.memory_budget;
  if (config_.dynamic_budget) {
    uint64_t live = config_.dynamic_budget();
    if (live > 0) budget = live;
  }
  if (budget != 0) {
    peak_budget_ = std::max(peak_budget_, budget);
    trough_budget_ = std::min(trough_budget_, budget);
  }
  return budget;
}

uint64_t DiskGraceJoin::EstimateBuildBytes(BufferManager::FileId file) const {
  uint64_t tuples = 0;
  auto it = file_stats_.find(file);
  if (it != file_stats_.end()) tuples = it->second.tuples;
  return bm_->FileNumPages(file) * uint64_t(page_size_) +
         HashTable::EstimateBytes(tuples);
}

void DiskGraceJoin::NoteBuildBytes(uint64_t pages, uint64_t tuples) {
  uint64_t bytes =
      pages * uint64_t(page_size_) + HashTable::EstimateBytes(tuples);
  tally_.max_build_bytes = std::max(tally_.max_build_bytes, bytes);
}

Status DiskGraceJoin::BuildAndProbe(
    const std::vector<std::vector<uint8_t>>& build_pages,
    uint64_t build_tuples, BufferManager::FileId probe, uint64_t* matches) {
  if (build_tuples == 0) return Status::OK();
  NoteBuildBytes(build_pages.size(), build_tuples);
  // The bucket count only needs to be relatively prime to the moduli the
  // hash codes are constrained by; the initial partition count covers the
  // common case, and recursion levels use an independent (salted) hash.
  HashTable ht(ChooseBucketCount(build_tuples, config_.num_partitions));
  for (const auto& bytes : build_pages) {
    SlottedPage pg =
        SlottedPage::Attach(const_cast<uint8_t*>(bytes.data()));
    for (int s = 0; s < pg.slot_count(); ++s) {
      uint16_t len;
      const uint8_t* t = pg.GetTuple(s, &len);
      ht.Insert(pg.GetHashCode(s), t);
    }
  }
  auto scan = bm_->OpenScan(probe);
  const uint8_t* page = nullptr;
  while (true) {
    HJ_RETURN_IF_ERROR(scan.NextPage(&page));
    if (page == nullptr) break;
    HJ_RETURN_IF_ERROR(VerifyPage(page));
    SlottedPage pg = SlottedPage::Attach(const_cast<uint8_t*>(page));
    ProbePageCounting(ht, pg, config_.join_scheme, config_.join_params,
                      matches);
  }
  return Status::OK();
}

Status DiskGraceJoin::JoinChunked(BufferManager::FileId build,
                                  BufferManager::FileId probe,
                                  uint64_t* matches) {
  ++tally_.chunked_fallbacks;
  std::vector<std::vector<uint8_t>> chunk;
  uint64_t chunk_tuples = 0;
  auto scan = bm_->OpenScan(build);
  const uint8_t* page = nullptr;
  while (true) {
    HJ_RETURN_IF_ERROR(scan.NextPage(&page));
    if (page == nullptr) break;
    HJ_RETURN_IF_ERROR(VerifyPage(page));
    uint64_t page_tuples =
        SlottedPage::Attach(const_cast<uint8_t*>(page)).slot_count();
    // Re-read the live budget per page: a broker revoke mid-chunk
    // flushes the chunk earlier, a re-grown grant admits more pages.
    const uint64_t budget = EffectiveBudget();
    // Join the accumulated chunk before this page would push it over the
    // budget. A chunk always holds at least one page, so even a budget
    // smaller than one page's build cost makes progress (that single
    // chunk is the unavoidable minimum working set).
    uint64_t prospective = (chunk.size() + 1) * uint64_t(page_size_) +
                           HashTable::EstimateBytes(chunk_tuples +
                                                    page_tuples);
    if (budget != 0 && prospective > budget && !chunk.empty()) {
      HJ_RETURN_IF_ERROR(BuildAndProbe(chunk, chunk_tuples, probe, matches));
      chunk.clear();
      chunk_tuples = 0;
    }
    chunk.emplace_back(page, page + page_size_);
    chunk_tuples += page_tuples;
  }
  if (!chunk.empty()) {
    HJ_RETURN_IF_ERROR(BuildAndProbe(chunk, chunk_tuples, probe, matches));
  }
  return Status::OK();
}

Status DiskGraceJoin::JoinPartitionPair(BufferManager::FileId build,
                                        BufferManager::FileId probe,
                                        uint32_t depth, uint64_t* matches) {
  const uint64_t budget = EffectiveBudget();
  const uint64_t build_pages = bm_->FileNumPages(build);
  const uint64_t need = EstimateBuildBytes(build);
  if (budget == 0 || need <= budget) {
    // Fits now — but if it would NOT have fit at the lowest budget this
    // join has been squeezed to, a grant re-growth recovered in-memory
    // work that a revoke had condemned to spill ("un-spill").
    if (budget != 0 && need > trough_budget_) ++tally_.regrant_unspills;
    // Fits: load the build partition (pages must outlive the hash table)
    // and stream the probe partition against it.
    std::vector<std::vector<uint8_t>> pages;
    pages.reserve(build_pages);
    uint64_t tuples = 0;
    {
      auto scan = bm_->OpenScan(build);
      const uint8_t* page = nullptr;
      while (true) {
        HJ_RETURN_IF_ERROR(scan.NextPage(&page));
        if (page == nullptr) break;
        HJ_RETURN_IF_ERROR(VerifyPage(page));
        pages.emplace_back(page, page + page_size_);
        tuples += SlottedPage::Attach(pages.back().data()).slot_count();
      }
    }
    return BuildAndProbe(pages, tuples, probe, matches);
  }

  // Spilling — and if the partition would have fit at the peak budget,
  // this spill exists only because a revoke shrank the grant.
  if (need <= peak_budget_) ++tally_.revoke_spills;

  if (depth < config_.max_recursion_depth) {
    // Over budget: re-split the build side with the next level's salted
    // hash and check that the split actually helped. A partition of one
    // giant key re-hashes into a single sub-partition no matter the
    // salt — recursing on it would burn all remaining levels for
    // nothing, so no-progress splits go straight to the chunked build.
    const uint32_t fanout = config_.overflow_fanout;
    std::vector<BufferManager::FileId> sub_build(fanout);
    for (uint32_t p = 0; p < fanout; ++p) sub_build[p] = bm_->CreateFile();
    HJ_RETURN_IF_ERROR(PartitionInto(build, sub_build, fanout, depth + 1));
    uint64_t largest = 0;
    for (uint32_t p = 0; p < fanout; ++p) {
      largest = std::max(largest, bm_->FileNumPages(sub_build[p]));
    }
    if (largest < build_pages) {
      ++tally_.recursive_splits;
      tally_.deepest_recursion =
          std::max(tally_.deepest_recursion, depth + 1);
      std::vector<BufferManager::FileId> sub_probe(fanout);
      for (uint32_t p = 0; p < fanout; ++p) {
        sub_probe[p] = bm_->CreateFile();
      }
      HJ_RETURN_IF_ERROR(
          PartitionInto(probe, sub_probe, fanout, depth + 1));
      for (uint32_t p = 0; p < fanout; ++p) {
        HJ_RETURN_IF_ERROR(JoinPartitionPair(sub_build[p], sub_probe[p],
                                             depth + 1, matches));
      }
      return Status::OK();
    }
  }
  return JoinChunked(build, probe, matches);
}

StatusOr<uint64_t> DiskGraceJoin::JoinPartitions(
    const std::vector<BufferManager::FileId>& build_parts,
    const std::vector<BufferManager::FileId>& probe_parts,
    DiskPhaseStats* stats) {
  if (build_parts.size() != probe_parts.size()) {
    return Status::InvalidArgument(
        "build/probe partition counts must match");
  }
  uint64_t matches = 0;
  Status st;
  DiskPhaseStats measured = Measure([&] {
    for (size_t p = 0; p < build_parts.size(); ++p) {
      st = JoinPartitionPair(build_parts[p], probe_parts[p], /*depth=*/0,
                             &matches);
      if (!st.ok()) return;
    }
  });
  if (stats != nullptr) *stats = measured;
  if (!st.ok()) return st;
  return matches;
}

StatusOr<DiskJoinResult> DiskGraceJoin::Join(BufferManager::FileId build,
                                             BufferManager::FileId probe) {
  DiskJoinResult result;
  result.num_partitions = config_.num_partitions;
  // Seed the peak/trough watermarks with the budget granted at join
  // start: sizing decisions only run in the join phase, so without this
  // a grant revoked during the partition phase would never register as
  // "once larger" and its spills would misclassify as plain skew.
  EffectiveBudget();
  const IoRecoveryStats io_before = bm_->recovery_stats();
  const DiskJoinRecovery tally_before = tally_;
  HJ_ASSIGN_OR_RETURN(auto build_parts,
                      Partition(build, &result.partition_phase));
  HJ_ASSIGN_OR_RETURN(auto probe_parts,
                      Partition(probe, &result.probe_partition_phase));
  HJ_ASSIGN_OR_RETURN(
      result.output_tuples,
      JoinPartitions(build_parts, probe_parts, &result.join_phase));
  const IoRecoveryStats io_after = bm_->recovery_stats();
  result.recovery.read_retries = io_after.read_retries - io_before.read_retries;
  result.recovery.write_retries =
      io_after.write_retries - io_before.write_retries;
  result.recovery.checksum_failures =
      io_after.checksum_failures - io_before.checksum_failures;
  result.recovery.write_verify_failures =
      io_after.write_verify_failures - io_before.write_verify_failures;
  result.recovery.injected_faults =
      io_after.injected_faults - io_before.injected_faults;
  result.recovery.recursive_splits =
      tally_.recursive_splits - tally_before.recursive_splits;
  result.recovery.chunked_fallbacks =
      tally_.chunked_fallbacks - tally_before.chunked_fallbacks;
  result.recovery.deepest_recursion = tally_.deepest_recursion;
  result.recovery.max_build_bytes = tally_.max_build_bytes;
  result.recovery.revoke_spills =
      tally_.revoke_spills - tally_before.revoke_spills;
  result.recovery.regrant_unspills =
      tally_.regrant_unspills - tally_before.regrant_unspills;
  return result;
}

}  // namespace hashjoin
