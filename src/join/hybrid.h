#ifndef HASHJOIN_JOIN_HYBRID_H_
#define HASHJOIN_JOIN_HYBRID_H_

#include <vector>

#include "join/grace.h"

namespace hashjoin {

/// Partition count of a hybrid hash join: the forced count if set, the
/// memory-budget sizing otherwise, clamped to at least 2 — hybrid's
/// structure needs partition 0 (built in place) plus at least one spilled
/// partition, even when the whole build would fit in memory. Sizing
/// honors a live broker grant (`config.dynamic_budget`) when one is
/// wired in: a query admitted under a small grant spills more partitions
/// up front instead of overrunning its share.
///
/// `allow_single_partition` relaxes the clamp to 1 for inputs that are
/// already one partition of a parent join (recursion depth >= 1): there
/// the "at least one spilled partition" invariant is the parent's
/// business, and re-spilling a level that fits the grant would turn a
/// finished join into gratuitous I/O. With count 1 everything routes to
/// the in-place partition 0 and the spilled-partition loops are empty.
inline uint32_t HybridPartitionCount(uint64_t build_tuples,
                                     uint64_t build_bytes,
                                     const GraceConfig& config,
                                     bool allow_single_partition = false) {
  uint32_t num_parts =
      config.forced_num_partitions != 0
          ? config.forced_num_partitions
          : ComputeNumPartitions(build_tuples, build_bytes,
                                 EffectiveMemoryBudget(config));
  const uint32_t min_parts = allow_single_partition ? 1 : 2;
  return num_parts < min_parts ? min_parts : num_parts;
}

/// Hybrid hash join [DeWitt et al.], one of the GRACE refinements the
/// paper's §2 says its techniques apply to: partition 0 never touches
/// intermediate storage. During the build relation's partition pass its
/// partition-0 tuples go straight into an in-memory hash table; during
/// the probe relation's pass its partition-0 tuples probe that table
/// immediately. The remaining partitions are joined as in GRACE, with
/// the configured prefetching scheme. The two partition passes use the
/// serial kernels with simple input prefetching (group-prefetching the
/// two interleaved pipelines — partitioning and joining — is possible
/// but out of scope; see DESIGN.md).
template <typename MM>
JoinResult HybridHashJoin(MM& mm, const Relation& build,
                          const Relation& probe, const GraceConfig& config,
                          Relation* output) {
  JoinResult result;
  uint32_t num_parts =
      HybridPartitionCount(build.num_tuples(), build.data_bytes(), config,
                           config.hybrid_allow_single_partition);
  result.num_partitions = num_parts;

  Relation discard(ConcatSchema(build.schema(), probe.schema()),
                   config.page_size);
  Relation* out = output != nullptr ? output : &discard;

  // Partition-0 hash table, sized for its expected share of the build.
  HashTable ht(
      ChooseBucketCount(build.num_tuples() / num_parts + 1, num_parts));

  std::vector<Relation> build_parts;
  std::vector<Relation> probe_parts;
  for (uint32_t p = 0; p + 1 < num_parts; ++p) {
    build_parts.emplace_back(build.schema(), config.page_size);
    probe_parts.emplace_back(probe.schema(), config.page_size);
  }

  const auto& cfg = mm.config();
  result.partition_phase = internal_grace::MeasurePhase(mm, [&] {
    // --- build pass: partition 0 builds in place, the rest spill ---
    {
      PartitionSinkSet sinks(&build_parts, config.page_size);
      PartitionContext<MM> pctx(&mm, &sinks, num_parts, build);
      BuildContext<MM> bctx(&mm, &ht, build, HashCodeMode::kCompute);
      TupleCursor cursor(build);
      const SlottedPage::Slot* slot;
      const uint8_t* tuple;
      bool new_page = false;
      while (cursor.Next(&slot, &tuple, &new_page)) {
        if (new_page) {
          mm.Prefetch(cursor.CurrentPageData(), cursor.page_size());
        }
        mm.Read(slot, sizeof(SlottedPage::Slot));
        uint32_t key;
        mm.Read(tuple, 4);
        std::memcpy(&key, tuple, 4);
        uint32_t hash = HashKey32(key);
        mm.Busy(cfg.cost_hash * 2);
        uint32_t p = hash % num_parts;
        if (p == 0) {
          BuildInsertSerial(bctx, tuple, hash);
        } else {
          PartitionState st;
          st.tuple = tuple;
          st.length = slot->length;
          st.hash = hash;
          st.sink = sinks.sink(p - 1);
          PartitionInsertSerial(pctx, st);
        }
      }
      sinks.FinalFlushAll();
    }
    // --- probe pass: partition 0 probes immediately, the rest spill ---
    {
      PartitionSinkSet sinks(&probe_parts, config.page_size);
      PartitionContext<MM> pctx(&mm, &sinks, num_parts, probe);
      ProbeContext<MM> octx(&mm, &ht, build.schema().fixed_size(),
                            probe.schema().fixed_size(), probe, out,
                            config.join_params);
      TupleCursor cursor(probe);
      const SlottedPage::Slot* slot;
      const uint8_t* tuple;
      bool new_page = false;
      while (cursor.Next(&slot, &tuple, &new_page)) {
        if (new_page) {
          mm.Prefetch(cursor.CurrentPageData(), cursor.page_size());
        }
        mm.Read(slot, sizeof(SlottedPage::Slot));
        uint32_t key;
        mm.Read(tuple, 4);
        std::memcpy(&key, tuple, 4);
        uint32_t hash = HashKey32(key);
        mm.Busy(cfg.cost_hash * 2);
        uint32_t p = hash % num_parts;
        if (p == 0) {
          ProbeState st;
          st.tuple = tuple;
          st.hash = hash;
          st.bucket = ht.bucket(ht.BucketIndex(hash));
          st.alive = true;
          ProbeStage1(octx, st, /*prefetch=*/false);
          ProbeStage2(octx, st, false);
          ProbeStage3(octx, st);
        } else {
          PartitionState st;
          st.tuple = tuple;
          st.length = slot->length;
          st.hash = hash;
          st.sink = sinks.sink(p - 1);
          PartitionInsertSerial(pctx, st);
        }
      }
      sinks.FinalFlushAll();
      octx.sink.Final();
      result.output_tuples += octx.output_count;
    }
  });
  result.partition_phase.tuples_processed =
      build.num_tuples() + probe.num_tuples();

  // --- join phase over the spilled partitions, exactly as in GRACE ---
  result.join_phase = internal_grace::MeasurePhase(mm, [&] {
    for (uint32_t p = 0; p + 1 < num_parts; ++p) {
      result.output_tuples += JoinPartitionPair(
          mm, config.join_scheme, build_parts[p], probe_parts[p],
          config.join_params, num_parts, out);
      if (output == nullptr) discard.Clear();
    }
  });
  return result;
}

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_HYBRID_H_
