#ifndef HASHJOIN_JOIN_BUILD_KERNELS_H_
#define HASHJOIN_JOIN_BUILD_KERNELS_H_

#include <algorithm>
#include <cstring>
#include <vector>

#include "hash/hash_func.h"
#include "hash/hash_table.h"
#include "join/join_common.h"
#include "storage/relation.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace hashjoin {

/// Shared context of one hash-table build pass over a partition.
template <typename MM>
struct BuildContext {
  MM* mm;
  HashTable* ht;
  HashCodeMode hash_mode;
  TupleCursor cursor;

  BuildContext(MM* mm_in, HashTable* ht_in, const Relation& build,
               HashCodeMode mode)
      : mm(mm_in), ht(ht_in), hash_mode(mode), cursor(build) {}
};

/// Per-tuple pipeline state for the prefetching build kernels. The
/// `next_waiting` field threads the software-pipelined scheme's waiting
/// queue for busy buckets through the states themselves (§5.3).
struct BuildState {
  const uint8_t* tuple = nullptr;
  uint32_t hash = 0;
  BucketHeader* bucket = nullptr;
  bool append_pending = false;  // cell-array write still owed (stage 2)
  int32_t next_waiting = -1;    // SPP waiting queue link (state index)
  int32_t waiting_head = -1;    // SPP: head of tuples waiting on my bucket

  /// Clears the per-tuple fields before a new tuple occupies this state
  /// slot (stage 0); shared by every scheme (see ProbeState).
  void ResetForTuple() {
    append_pending = false;
    next_waiting = -1;
    waiting_head = -1;
  }
};

/// Accounts the (rare) cell-array growth a bucket insert may trigger:
/// allocating a bigger array and copying the old cells.
template <typename MM>
inline void BuildEnsureCapacity(BuildContext<MM>& ctx, BucketHeader* b) {
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  uint32_t in_array = b->count > 0 ? b->count - 1 : 0;
  bool grows = (b->array == nullptr || in_array == b->capacity);
  if (!grows) return;
  HashCell* old = b->array;
  ctx.ht->EnsureArrayCapacity(b);
  if (old != nullptr && in_array > 0) {
    mm.Read(old, size_t(in_array) * sizeof(HashCell));
    mm.Write(b->array, size_t(in_array) * sizeof(HashCell));
    mm.Busy(uint32_t(
        cfg.cost_tuple_copy_per_line *
        ((in_array * uint32_t(sizeof(HashCell)) + kCacheLineSize - 1) /
         kCacheLineSize)));
  }
  mm.Busy(cfg.cost_slot_bookkeeping);
}

/// Inserts one tuple start-to-finish with no prefetching — the baseline
/// path, and also the conflict-resolution path both prefetching schemes
/// fall back to once the bucket is known to be cached (§4.4: "the
/// previous access has also warmed up the cache ... so we insert the
/// delayed tuple without prefetching").
template <typename MM>
inline void BuildInsertSerial(BuildContext<MM>& ctx, const uint8_t* tuple,
                              uint32_t hash) {
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  BucketHeader* b = ctx.ht->bucket(ctx.ht->BucketIndex(hash));
  mm.Read(b, sizeof(BucketHeader));
  mm.Busy(cfg.cost_visit_header);
  bool empty = (b->count == 0);
  mm.Branch(kBranchBucketEmpty, empty);
  if (empty) {
    b->hash = hash;
    b->tuple = tuple;
    b->count = 1;
    mm.Write(b, sizeof(BucketHeader));
    ctx.ht->BumpTupleCount();
    return;
  }
  BuildEnsureCapacity(ctx, b);
  HashCell* cell = &b->array[b->count - 1];
  cell->hash = hash;
  cell->tuple = tuple;
  ++b->count;
  mm.Write(cell, sizeof(HashCell));
  mm.Write(b, sizeof(BucketHeader));
  mm.Busy(cfg.cost_visit_cell);
  ctx.ht->BumpTupleCount();
}

/// Code 0 of building: pull the next build tuple, obtain its hash code,
/// compute the bucket. Returns false at end of input.
template <typename MM>
inline bool BuildStage0(BuildContext<MM>& ctx, BuildState& st,
                        bool prefetch) {
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  const SlottedPage::Slot* slot = nullptr;
  bool new_page = false;
  if (!ctx.cursor.Next(&slot, &st.tuple, &new_page)) return false;
  if (prefetch && new_page) {
    mm.Prefetch(ctx.cursor.CurrentPageData(), ctx.cursor.page_size());
  }
  mm.Read(slot, sizeof(SlottedPage::Slot));
  if (ctx.hash_mode == HashCodeMode::kMemoized) {
    st.hash = slot->hash_code;
    mm.Busy(cfg.cost_slot_bookkeeping);
  } else {
    uint32_t key;
    mm.Read(st.tuple, 4);
    std::memcpy(&key, st.tuple, 4);
    st.hash = HashKey32(key);
    mm.Busy(cfg.cost_hash);
  }
  st.bucket = ctx.ht->bucket(ctx.ht->BucketIndex(st.hash));
  mm.Busy(cfg.cost_hash);
  st.ResetForTuple();
  if (prefetch) mm.Prefetch(st.bucket, sizeof(BucketHeader));
  return true;
}

/// Code 1 of building: visit the bucket header. Empty buckets complete
/// inline (the single hash cell lives in the header, Figure 2); others
/// acquire the bucket (owner flag), size the cell array, and prefetch the
/// cell slot that stage 2 will write. Returns false if the bucket was
/// busy — the caller applies its scheme's conflict protocol (§4.4/§5.3).
template <typename MM>
inline bool BuildStage1(BuildContext<MM>& ctx, BuildState& st,
                        bool prefetch, uint32_t owner_tag) {
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  BucketHeader* b = st.bucket;
  mm.Read(b, sizeof(BucketHeader));
  mm.Busy(cfg.cost_visit_header);
  bool busy = (b->owner != 0);
  mm.Branch(kBranchBucketBusy, busy);
  if (busy) return false;
  bool empty = (b->count == 0);
  mm.Branch(kBranchBucketEmpty, empty);
  if (empty) {
    b->hash = st.hash;
    b->tuple = st.tuple;
    b->count = 1;
    mm.Write(b, sizeof(BucketHeader));
    ctx.ht->BumpTupleCount();
    return true;
  }
  b->owner = owner_tag;
  BuildEnsureCapacity(ctx, b);
  st.append_pending = true;
  if (prefetch) {
    mm.Prefetch(&b->array[b->count - 1], sizeof(HashCell));
  }
  return true;
}

/// Code 2 of building: write the hash cell, publish the new count, and
/// release the bucket.
template <typename MM>
inline void BuildStage2(BuildContext<MM>& ctx, BuildState& st) {
  if (!st.append_pending) return;
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  BucketHeader* b = st.bucket;
  HashCell* cell = &b->array[b->count - 1];
  cell->hash = st.hash;
  cell->tuple = st.tuple;
  ++b->count;
  b->owner = 0;
  mm.Write(cell, sizeof(HashCell));
  mm.Write(b, sizeof(BucketHeader));
  mm.Busy(cfg.cost_visit_cell);
  ctx.ht->BumpTupleCount();
  st.append_pending = false;
}

/// GRACE baseline build.
template <typename MM>
void BuildBaseline(MM& mm, const Relation& build, HashTable* ht,
                   const KernelParams& params) {
  BuildContext<MM> ctx(&mm, ht, build, params.hash_mode);
  BuildState st;
  while (BuildStage0(ctx, st, /*prefetch=*/false)) {
    BuildInsertSerial(ctx, st.tuple, st.hash);
  }
}

/// Simple prefetching build: whole-input-page prefetch plus a
/// just-in-time bucket prefetch.
template <typename MM>
void BuildSimple(MM& mm, const Relation& build, HashTable* ht,
                 const KernelParams& params) {
  BuildContext<MM> ctx(&mm, ht, build, params.hash_mode);
  BuildState st;
  // A prefetching stage 0 is exactly the simple scheme: the wholesale
  // input-page prefetch plus the just-in-time bucket prefetch ahead of
  // the serial insert.
  while (BuildStage0(ctx, st, /*prefetch=*/true)) {
    BuildInsertSerial(ctx, st.tuple, st.hash);
  }
}

/// Group prefetching build (§4.4). Tuples that hash to a bucket another
/// tuple of the same group is still updating are delayed to the end of
/// the group body, where the bucket is guaranteed released (and cached).
template <typename MM>
void BuildGroup(MM& mm, const Relation& build, HashTable* ht,
                const KernelParams& params) {
  uint32_t group = params.EffectiveGroupSize();
  BuildContext<MM> ctx(&mm, ht, build, params.hash_mode);
  const auto& cfg = mm.config();
  std::vector<BuildState> states(group);
  std::vector<uint32_t> delayed;
  delayed.reserve(group);
  bool more = true;
  // Group prefetching can tolerate any number of delayed tuples (skewed
  // keys); `delayed` holds state indices, processed serially below.
  while (more) {
    // Group boundary: adopt a live-tuned G while no tuple is in flight.
    const uint32_t next_group = params.EffectiveGroupSize();
    if (next_group != group) {
      group = next_group;
      states.resize(group);
      delayed.reserve(group);
    }
    uint32_t g = 0;
    while (g < group) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      if (!BuildStage0(ctx, states[g], /*prefetch=*/true)) {
        more = false;
        break;
      }
      ++g;
    }
    delayed.clear();
    for (uint32_t i = 0; i < g; ++i) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      if (!BuildStage1(ctx, states[i], /*prefetch=*/true,
                       /*owner_tag=*/1)) {
        delayed.push_back(i);
      }
    }
    for (uint32_t i = 0; i < g; ++i) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      BuildStage2(ctx, states[i]);
    }
    // Natural group boundary: every in-flight bucket update finished, so
    // delayed tuples insert serially without prefetching (§4.4).
    for (uint32_t idx : delayed) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      BuildInsertSerial(ctx, states[idx].tuple, states[idx].hash);
    }
  }
}

/// Software-pipelined build (§5.3). Conflicting tuples join a waiting
/// queue threaded through the state array; when the owning tuple's final
/// stage releases the bucket, its waiters complete serially against the
/// now-cached bucket.
template <typename MM>
void BuildSwp(MM& mm, const Relation& build, HashTable* ht,
              const KernelParams& params) {
  // Live-tuned D is adopted once per pass: ring size, stage offsets, and
  // the waiting-queue state indices all depend on it.
  const uint64_t d = params.EffectiveDistance();
  constexpr uint32_t kStages = 2;  // k = 2 dependent references
  BuildContext<MM> ctx(&mm, ht, build, params.hash_mode);
  const auto& cfg = mm.config();
  const uint64_t ring = NextPowerOfTwo(kStages * d + 1);
  const uint64_t mask = ring - 1;
  std::vector<BuildState> states(ring);

  auto drain_waiters = [&](BuildState& owner_state) {
    int32_t w = owner_state.waiting_head;
    owner_state.waiting_head = -1;
    while (w >= 0) {
      BuildState& ws = states[w];
      mm.Busy(cfg.cost_stage_overhead_spp);
      BuildInsertSerial(ctx, ws.tuple, ws.hash);
      w = ws.next_waiting;
      ws.next_waiting = -1;
    }
  };

  uint64_t n = UINT64_MAX;
  uint64_t issued = 0;
  for (uint64_t j = 0;; ++j) {
    mm.Busy(cfg.cost_stage_overhead_spp);
    if (j < n) {
      BuildState& st = states[j & mask];
      if (BuildStage0(ctx, st, /*prefetch=*/true)) {
        ++issued;
      } else {
        n = issued;
      }
    }
    if (j >= d && j - d < n) {
      mm.Busy(cfg.cost_stage_overhead_spp);
      uint64_t e = (j - d) & mask;
      BuildState& st = states[e];
      uint32_t tag = uint32_t(e) + 1;
      if (!BuildStage1(ctx, st, /*prefetch=*/true, tag)) {
        // Busy bucket: append to the owner's waiting queue (§5.3).
        BuildState& owner = states[st.bucket->owner - 1];
        st.next_waiting = owner.waiting_head;
        owner.waiting_head = int32_t(e);
      }
    }
    if (j >= 2 * d && j - 2 * d < n) {
      mm.Busy(cfg.cost_stage_overhead_spp);
      BuildState& st = states[(j - 2 * d) & mask];
      bool had_append = st.append_pending;
      BuildStage2(ctx, st);
      if (had_append || st.waiting_head >= 0) drain_waiters(st);
    }
    if (n != UINT64_MAX && j >= 2 * d && j - 2 * d + 1 >= n) break;
  }
  return;
}

// The Scheme dispatcher (BuildPartition) lives in exec_policy.h.

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_BUILD_KERNELS_H_
