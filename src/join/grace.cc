#include "join/grace.h"

#include "hash/hash_table.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace hashjoin {

namespace {

// The one scheme <-> name table (ISSUE 6): SchemeName, ParseScheme,
// SchemeNameList, and AllSchemes all read it, so adding a scheme here is
// the single registration point.
struct SchemeEntry {
  Scheme scheme;
  const char* name;
};

constexpr SchemeEntry kSchemeTable[] = {
    {Scheme::kBaseline, "baseline"}, {Scheme::kSimple, "simple"},
    {Scheme::kGroup, "group"},       {Scheme::kSwp, "swp"},
    {Scheme::kCoro, "coro"},
};

}  // namespace

const char* SchemeName(Scheme s) {
  for (const SchemeEntry& e : kSchemeTable) {
    if (e.scheme == s) return e.name;
  }
  return "?";
}

bool ParseScheme(const std::string& name, Scheme* out) {
  for (const SchemeEntry& e : kSchemeTable) {
    if (name == e.name) {
      *out = e.scheme;
      return true;
    }
  }
  return false;
}

std::string SchemeNameList() {
  std::string list;
  for (const SchemeEntry& e : kSchemeTable) {
    if (!list.empty()) list += ", ";
    list += e.name;
  }
  return list;
}

bool SchemeAvailable(Scheme s) {
  if (s == Scheme::kCoro) return HASHJOIN_HAS_COROUTINES != 0;
  return true;
}

std::vector<Scheme> AllSchemes() {
  std::vector<Scheme> out;
  for (const SchemeEntry& e : kSchemeTable) {
    if (SchemeAvailable(e.scheme)) out.push_back(e.scheme);
  }
  return out;
}

uint32_t ComputeNumPartitions(uint64_t num_tuples, uint64_t data_bytes,
                              uint64_t budget) {
  HJ_CHECK(budget > 0);
  uint64_t total = data_bytes + HashTable::EstimateBytes(num_tuples);
  uint64_t parts = (total + budget - 1) / budget;
  if (parts == 0) parts = 1;
  return uint32_t(parts);
}

PartitionPlan PlanPartitionPasses(uint32_t wanted, uint32_t max_active) {
  if (wanted == 0) wanted = 1;
  PartitionPlan plan;
  if (max_active == 0 || wanted <= max_active) {
    plan.pass1 = 1;
    plan.pass2 = wanted;
    return plan;
  }
  plan.pass1 = (wanted + max_active - 1) / max_active;
  HJ_CHECK(plan.pass1 <= max_active)
      << "partition count " << wanted << " exceeds cap^2";
  plan.pass2 = (wanted + plan.pass1 - 1) / plan.pass1;
  return plan;
}

uint64_t ChooseBucketCount(uint64_t partition_tuples,
                           uint64_t num_partitions) {
  uint64_t target = std::max<uint64_t>(partition_tuples, 3);
  return NextRelativelyPrime(target, num_partitions);
}

Schema ConcatSchema(const Schema& build, const Schema& probe) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < build.num_attrs(); ++i) {
    Attribute a = build.attr(i);
    a.name = "b_" + a.name;
    attrs.push_back(a);
  }
  for (size_t i = 0; i < probe.num_attrs(); ++i) {
    Attribute a = probe.attr(i);
    a.name = "p_" + a.name;
    attrs.push_back(a);
  }
  return Schema(std::move(attrs));
}

}  // namespace hashjoin
