#ifndef HASHJOIN_JOIN_PARTITION_KERNELS_H_
#define HASHJOIN_JOIN_PARTITION_KERNELS_H_

#include <algorithm>
#include <cstring>
#include <vector>

#include "hash/hash_func.h"
#include "join/join_common.h"
#include "storage/relation.h"
#include "util/aligned.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace hashjoin {

/// One partition's output buffer: a single active page whose bookkeeping
/// (tuple count, bump offset) lives in this descriptor — not in the page
/// — so the partition kernels' first dependent reference (m1) is one
/// cache line computable from the partition number, exactly the paper's
/// §6 structure. When the page fills it is "written out": ownership
/// moves to the destination relation (modeling the async disk write that
/// recycles the buffer) and a fresh page is installed.
///
/// Fields are public: the prefetching kernels interleave partially
/// complete visits across tuples, which an encapsulating method could
/// not express (same rationale as BucketHeader).
struct alignas(kCacheLineSize) PartitionSink {
  uint8_t* page = nullptr;       // active page base
  uint16_t slot_count = 0;
  uint16_t free_offset = 0;
  uint32_t pending = 0;          // allocated but not yet copied (SPP)
  int32_t waiting_head = -1;     // SPP waiting queue (state index)
  Relation* dest = nullptr;

  /// Space left for one `length`-byte tuple plus its slot entry.
  bool HasRoom(uint16_t length, uint32_t page_size) const {
    uint32_t used =
        free_offset +
        (uint32_t(slot_count) + 1) * uint32_t(sizeof(SlottedPage::Slot));
    return used + length <= page_size;
  }
};

/// Manages the P sinks of one partition pass.
class PartitionSinkSet {
 public:
  PartitionSinkSet(std::vector<Relation>* dests, uint32_t page_size)
      : page_size_(page_size) {
    sinks_ = MakeAlignedBuffer<PartitionSink>(dests->size());
    num_sinks_ = dests->size();
    for (size_t i = 0; i < num_sinks_; ++i) {
      sinks_[i] = PartitionSink{};
      sinks_[i].dest = &(*dests)[i];
      InstallFreshPage(&sinks_[i]);
    }
  }

  PartitionSink* sink(uint32_t p) { return &sinks_[p]; }
  uint32_t page_size() const { return page_size_; }

  /// Allocates space for a tuple in the sink's active page; returns the
  /// destination address and records the slot, or nullptr when the page
  /// is full (the caller applies its scheme's conflict protocol).
  uint8_t* TryAlloc(PartitionSink* s, uint16_t length, uint32_t hash_code,
                    SlottedPage::Slot** slot_out) {
    if (!s->HasRoom(length, page_size_)) return nullptr;
    SlottedPage::Slot* slot =
        reinterpret_cast<SlottedPage::Slot*>(s->page + page_size_) - 1 -
        s->slot_count;
    slot->offset = s->free_offset;
    slot->length = length;
    slot->hash_code = hash_code;
    uint8_t* dst = s->page + s->free_offset;
    s->free_offset = uint16_t(s->free_offset + length);
    ++s->slot_count;
    if (slot_out != nullptr) *slot_out = slot;
    return dst;
  }

  /// Writes the page header and "writes out" the full page: the bytes
  /// are copied to the destination relation and the buffer is reused for
  /// the next page. On the paper's system this is an asynchronous disk
  /// write (DMA) that recycles the buffer — which is exactly why, with
  /// few partitions, the active buffers stay cache-resident and simple
  /// prefetching suffices (§7.4). Callers must ensure every allocated
  /// tuple has been copied before flushing (the read-write conflict,
  /// §6), and account only the header write, not the DMA.
  void Flush(PartitionSink* s) {
    SlottedPage::PageHeader* h =
        reinterpret_cast<SlottedPage::PageHeader*>(s->page);
    h->slot_count = s->slot_count;
    h->free_offset = s->free_offset;
    h->page_size = page_size_;
    s->dest->AppendCopiedPage(s->page);
    s->slot_count = 0;
    s->free_offset = sizeof(SlottedPage::PageHeader);
  }

  /// Flushes every sink's partial page (end of the partition pass) and
  /// releases the buffers.
  void FinalFlushAll() {
    for (size_t i = 0; i < num_sinks_; ++i) {
      PartitionSink* s = &sinks_[i];
      HJ_CHECK(s->pending == 0);
      HJ_CHECK(s->waiting_head == -1);
      if (s->slot_count > 0) Flush(s);
      AlignedFree(s->page);
      s->page = nullptr;
    }
  }

 private:
  void InstallFreshPage(PartitionSink* s) {
    s->page = static_cast<uint8_t*>(AlignedAlloc(page_size_, page_size_));
    s->slot_count = 0;
    s->free_offset = sizeof(SlottedPage::PageHeader);
  }

  uint32_t page_size_;
  AlignedBuffer<PartitionSink> sinks_;
  size_t num_sinks_ = 0;
};

/// Shared context of one partition pass. `hash_divisor` supports
/// multi-pass partitioning (when a storage manager caps the number of
/// active partitions, §7.5): pass 1 splits on hash % P1, pass 2 on
/// (hash / P1) % P2, giving a consistent final partition id
/// p1 * P2 + p2 on both relations.
template <typename MM>
struct PartitionContext {
  MM* mm;
  PartitionSinkSet* sinks;
  uint32_t num_partitions;
  uint32_t hash_divisor;
  TupleCursor cursor;

  PartitionContext(MM* mm_in, PartitionSinkSet* sinks_in, uint32_t p,
                   const Relation& input, uint32_t divisor = 1,
                   PageRange range = PageRange{})
      : mm(mm_in),
        sinks(sinks_in),
        num_partitions(p),
        hash_divisor(divisor == 0 ? 1 : divisor),
        cursor(input, range.begin, range.end) {}
};

/// Per-tuple pipeline state for the prefetching partition kernels.
struct PartitionState {
  const uint8_t* tuple = nullptr;
  uint16_t length = 0;
  uint32_t hash = 0;
  PartitionSink* sink = nullptr;
  uint8_t* dst = nullptr;             // copy destination (stage 2)
  SlottedPage::Slot* slot = nullptr;  // slot entry to fill (stage 2)
  bool copy_pending = false;
  int32_t next_waiting = -1;  // SPP waiting queue link

  /// Clears the per-tuple fields before a new tuple occupies this state
  /// slot (stage 0); shared by every scheme (see ProbeState).
  void ResetForTuple() {
    dst = nullptr;
    slot = nullptr;
    copy_pending = false;
    next_waiting = -1;
  }
};

/// Code 0 of partitioning: read the next input tuple's key, compute the
/// 4-byte hash code (memoized into the output slot later) and the
/// partition number, and prefetch the sink descriptor.
template <typename MM>
inline bool PartitionStage0(PartitionContext<MM>& ctx, PartitionState& st,
                            bool prefetch, bool prefetch_input_pages) {
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  const SlottedPage::Slot* slot = nullptr;
  bool new_page = false;
  if (!ctx.cursor.Next(&slot, &st.tuple, &new_page)) return false;
  if (prefetch_input_pages && new_page) {
    mm.Prefetch(ctx.cursor.CurrentPageData(), ctx.cursor.page_size());
  }
  mm.Read(slot, sizeof(SlottedPage::Slot));
  st.length = slot->length;
  uint32_t key;
  mm.Read(st.tuple, 4);
  std::memcpy(&key, st.tuple, 4);
  st.hash = HashKey32(key);
  mm.Busy(cfg.cost_hash);
  uint32_t p = (st.hash / ctx.hash_divisor) % ctx.num_partitions;
  mm.Busy(cfg.cost_hash);  // the partition-number integer divide
  st.sink = ctx.sinks->sink(p);
  st.ResetForTuple();
  if (prefetch) mm.Prefetch(st.sink, sizeof(PartitionSink));
  return true;
}

/// Code 1 of partitioning: visit the sink descriptor and claim space in
/// the active output page, prefetching the tuple destination and slot
/// entry that stage 2 will write. Returns false when the page is full —
/// the caller applies its scheme's conflict protocol (§6).
template <typename MM>
inline bool PartitionStage1(PartitionContext<MM>& ctx, PartitionState& st,
                            bool prefetch) {
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  mm.Read(st.sink, sizeof(PartitionSink));
  mm.Busy(cfg.cost_slot_bookkeeping);
  st.dst = ctx.sinks->TryAlloc(st.sink, st.length, st.hash, &st.slot);
  bool full = (st.dst == nullptr);
  mm.Branch(kBranchBufferFull, full);
  if (full) return false;
  mm.Write(st.sink, sizeof(PartitionSink));
  ++st.sink->pending;
  st.copy_pending = true;
  if (prefetch) {
    mm.Prefetch(st.dst, st.length);
    mm.Prefetch(st.slot, sizeof(SlottedPage::Slot));
  }
  return true;
}

/// Code 2 of partitioning: copy the tuple into the output page (the slot
/// entry itself was written at claim time; the paper likewise splits the
/// buffer update from the bulk copy).
template <typename MM>
inline void PartitionStage2(PartitionContext<MM>& ctx, PartitionState& st) {
  if (!st.copy_pending) return;
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  std::memcpy(st.dst, st.tuple, st.length);
  mm.Read(st.tuple, st.length);
  mm.Write(st.dst, st.length);
  mm.Write(st.slot, sizeof(SlottedPage::Slot));
  mm.Busy(uint32_t(cfg.cost_tuple_copy_per_line *
                   ((st.length + kCacheLineSize - 1) / kCacheLineSize)));
  --st.sink->pending;
  st.copy_pending = false;
}

/// Writes out a full page with simulator accounting: the page header
/// write plus the descriptor reset.
template <typename MM>
inline void AccountedFlush(PartitionContext<MM>& ctx, PartitionSink* s) {
  MM& mm = *ctx.mm;
  mm.Write(s->page, sizeof(SlottedPage::PageHeader));
  mm.Busy(mm.config().cost_slot_bookkeeping);
  ctx.sinks->Flush(s);
}

/// Serial insert used by the baseline/simple schemes and by the conflict
/// fallback paths: flushes the full page on the spot (safe because no
/// earlier copies are outstanding when it is called).
template <typename MM>
inline void PartitionInsertSerial(PartitionContext<MM>& ctx,
                                  PartitionState& st) {
  if (!PartitionStage1(ctx, st, /*prefetch=*/false)) {
    HJ_CHECK(st.sink->pending == 0);
    AccountedFlush(ctx, st.sink);
    bool ok = PartitionStage1(ctx, st, false);
    HJ_CHECK(ok);
  }
  PartitionStage2(ctx, st);
}

/// GRACE baseline partitioning.
template <typename MM>
void PartitionBaseline(MM& mm, const Relation& input,
                       PartitionSinkSet* sinks, uint32_t num_partitions,
                       const KernelParams& params,
                       uint32_t hash_divisor = 1,
                       PageRange range = PageRange{}) {
  PartitionContext<MM> ctx(&mm, sinks, num_partitions, input,
                           hash_divisor, range);
  PartitionState st;
  while (PartitionStage0(ctx, st, /*prefetch=*/false,
                         /*prefetch_input_pages=*/false)) {
    PartitionInsertSerial(ctx, st);
  }
  sinks->FinalFlushAll();
}

/// Simple prefetching (§6): prefetch each input page wholesale; with few
/// partitions the output buffers stay cached and this is all that is
/// needed. Also issues a just-in-time sink prefetch.
template <typename MM>
void PartitionSimple(MM& mm, const Relation& input, PartitionSinkSet* sinks,
                     uint32_t num_partitions, const KernelParams& params,
                     uint32_t hash_divisor = 1,
                     PageRange range = PageRange{}) {
  PartitionContext<MM> ctx(&mm, sinks, num_partitions, input,
                           hash_divisor, range);
  PartitionState st;
  while (PartitionStage0(ctx, st, /*prefetch=*/true,
                         /*prefetch_input_pages=*/true)) {
    PartitionInsertSerial(ctx, st);
  }
  sinks->FinalFlushAll();
}

/// Group prefetching for the partition phase (§6): tuples that hit a full
/// output page are delayed to the group boundary, when every claimed copy
/// into that page has completed.
template <typename MM>
void PartitionGroup(MM& mm, const Relation& input, PartitionSinkSet* sinks,
                    uint32_t num_partitions, const KernelParams& params,
                    uint32_t hash_divisor = 1,
                    PageRange range = PageRange{}) {
  uint32_t group = params.EffectiveGroupSize();
  PartitionContext<MM> ctx(&mm, sinks, num_partitions, input,
                           hash_divisor, range);
  const auto& cfg = mm.config();
  std::vector<PartitionState> states(group);
  std::vector<uint32_t> delayed;
  delayed.reserve(group);
  bool more = true;
  while (more) {
    // Group boundary: adopt a live-tuned G while no tuple is in flight.
    const uint32_t next_group = params.EffectiveGroupSize();
    if (next_group != group) {
      group = next_group;
      states.resize(group);
      delayed.reserve(group);
    }
    uint32_t g = 0;
    while (g < group) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      if (!PartitionStage0(ctx, states[g], /*prefetch=*/true,
                           /*prefetch_input_pages=*/true)) {
        more = false;
        break;
      }
      ++g;
    }
    delayed.clear();
    for (uint32_t i = 0; i < g; ++i) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      if (!PartitionStage1(ctx, states[i], /*prefetch=*/true)) {
        delayed.push_back(i);
      }
    }
    for (uint32_t i = 0; i < g; ++i) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      PartitionStage2(ctx, states[i]);
    }
    // Group boundary: all copies done, full pages can be written out and
    // the delayed tuples processed serially (§6).
    for (uint32_t idx : delayed) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      PartitionInsertSerial(ctx, states[idx]);
    }
  }
  sinks->FinalFlushAll();
}

/// Software-pipelined prefetching for the partition phase (§6): a tuple
/// hitting a full page whose claimed copies are still in flight joins the
/// sink's waiting queue; the copy that drains `pending` to zero flushes
/// the page and completes the waiters.
template <typename MM>
void PartitionSwp(MM& mm, const Relation& input, PartitionSinkSet* sinks,
                  uint32_t num_partitions, const KernelParams& params,
                  uint32_t hash_divisor = 1,
                  PageRange range = PageRange{}) {
  // Live-tuned D is adopted once per pass: ring size, stage offsets, and
  // the sinks' waiting-queue state indices all depend on it.
  const uint64_t d = params.EffectiveDistance();
  constexpr uint32_t kStages = 2;  // k = 2 dependent references
  PartitionContext<MM> ctx(&mm, sinks, num_partitions, input,
                           hash_divisor, range);
  const auto& cfg = mm.config();
  const uint64_t ring = NextPowerOfTwo(kStages * d + 1);
  const uint64_t mask = ring - 1;
  std::vector<PartitionState> states(ring);

  auto drain_waiters = [&](PartitionSink* sink) {
    while (sink->pending == 0 && sink->waiting_head >= 0) {
      PartitionState& ws = states[sink->waiting_head];
      sink->waiting_head = ws.next_waiting;
      ws.next_waiting = -1;
      mm.Busy(cfg.cost_stage_overhead_spp);
      PartitionInsertSerial(ctx, ws);
    }
  };

  uint64_t n = UINT64_MAX;
  uint64_t issued = 0;
  for (uint64_t j = 0;; ++j) {
    if (j < n) {
      // Stage-0 slot overhead: charged only while tuples are still being
      // issued, so the pipeline drain does not inflate short inputs.
      mm.Busy(cfg.cost_stage_overhead_spp);
      PartitionState& st = states[j & mask];
      if (PartitionStage0(ctx, st, /*prefetch=*/true,
                          /*prefetch_input_pages=*/true)) {
        ++issued;
      } else {
        n = issued;
      }
    }
    if (j >= d && j - d < n) {
      mm.Busy(cfg.cost_stage_overhead_spp);
      uint64_t e = (j - d) & mask;
      PartitionState& st = states[e];
      if (!PartitionStage1(ctx, st, /*prefetch=*/true)) {
        if (st.sink->pending == 0) {
          // No copies in flight: flush immediately and retry.
          AccountedFlush(ctx, st.sink);
          bool ok = PartitionStage1(ctx, st, true);
          HJ_CHECK(ok);
        } else {
          st.next_waiting = st.sink->waiting_head;
          st.sink->waiting_head = int32_t(e);
        }
      }
    }
    if (j >= 2 * d && j - 2 * d < n) {
      mm.Busy(cfg.cost_stage_overhead_spp);
      PartitionState& st = states[(j - 2 * d) & mask];
      PartitionSink* sink = st.sink;
      PartitionStage2(ctx, st);
      if (sink != nullptr) drain_waiters(sink);
    }
    // Drain window ends at the actual issued count: the last real tuple
    // (n-1) finishes stage 2 at j = n - 1 + 2D, and an empty input needs
    // no drain at all.
    if (n != UINT64_MAX && (n == 0 || j + 1 >= n + 2 * d)) break;
  }
  sinks->FinalFlushAll();
}

// The Scheme dispatchers (PartitionRelation, PartitionCombined) live in
// exec_policy.h.

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_PARTITION_KERNELS_H_
