#ifndef HASHJOIN_JOIN_PROBE_KERNELS_H_
#define HASHJOIN_JOIN_PROBE_KERNELS_H_

#include <algorithm>
#include <cstring>
#include <vector>

#include "hash/hash_func.h"
#include "hash/hash_table.h"
#include "join/join_common.h"
#include "storage/relation.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace hashjoin {

/// Shared context of one probe pass over a partition.
template <typename MM>
struct ProbeContext {
  MM* mm;
  const HashTable* ht;
  uint32_t build_tuple_size;
  uint32_t probe_tuple_size;
  OutputSink sink;
  HashCodeMode hash_mode;
  bool prefetch_output;
  TupleCursor cursor;
  uint64_t output_count = 0;
  /// Bytes of output already claimed by earlier stage-2 prefetches but
  /// not yet written: later tuples of a group project their output-tail
  /// prefetch past them.
  uint64_t pending_out_bytes = 0;
  /// Cache lines covered by stage-2 output-tail prefetches, counted with
  /// the simulator's per-line convention — the kernel-side ledger the
  /// crosscheck tests compare against the sim's prefetches_issued.
  uint64_t claimed_prefetch_lines = 0;

  ProbeContext(MM* mm_in, const HashTable* ht_in, uint32_t build_size,
               uint32_t probe_size, const Relation& probe, Relation* out_in,
               const KernelParams& params)
      : mm(mm_in),
        ht(ht_in),
        build_tuple_size(build_size),
        probe_tuple_size(probe_size),
        sink(out_in),
        hash_mode(params.hash_mode),
        prefetch_output(params.prefetch_output),
        cursor(probe) {}
};

/// Per-tuple pipeline state for the group / software-pipelined probing
/// kernels (§4.4: "we keep state information for the G tuples of a
/// group"; §5.3 uses a circular array of the same states).
struct ProbeState {
  static constexpr uint32_t kMaxCand = 6;

  const uint8_t* tuple = nullptr;
  uint32_t hash = 0;
  const BucketHeader* bucket = nullptr;
  bool alive = false;       // bucket non-empty, still needs processing
  bool has_array = false;   // must scan the bucket's cell array
  bool overflow = false;    // more hash matches than kMaxCand
  const uint8_t* inline_cand = nullptr;  // inline cell hash-matched
  uint32_t ncand = 0;
  const uint8_t* cand[kMaxCand] = {};  // hash-matched array cells
  uint32_t projected_out = 0;  // outputs whose tail lines were prefetched

  /// Clears the per-tuple fields before a new tuple occupies this state
  /// slot (stage 0). The one reset definition every scheme shares: the
  /// hand-copied reset list this replaces drifted once already (PR 1's
  /// projected_out leak).
  void ResetForTuple() {
    alive = true;
    has_array = false;
    overflow = false;
    inline_cand = nullptr;
    ncand = 0;
    projected_out = 0;
  }
};

/// Per-pass accounting surfaced by the probe kernels (optional out
/// parameter): the kernel-side ledger the scheme-equivalence and
/// simulator crosscheck tests compare across schemes.
struct ProbeStats {
  uint64_t output_tuples = 0;
  /// Cache lines of output tail claimed by stage-2 prefetches.
  uint64_t claimed_prefetch_lines = 0;
  /// Bytes claimed by stage 2 but never released by a stage 3 when the
  /// pass ended; any nonzero value means a scheme dropped a state
  /// mid-pipeline.
  uint64_t leaked_out_bytes = 0;
};

/// End of a probe pass: flush the sink, surface the pass accounting, and
/// check that every stage-2 output claim was released by its stage 3.
template <typename MM>
inline uint64_t FinishProbe(ProbeContext<MM>& ctx, ProbeStats* stats) {
  ctx.sink.Final();
  HJ_DCHECK(ctx.pending_out_bytes == 0);
  if (stats != nullptr) {
    stats->output_tuples = ctx.output_count;
    stats->claimed_prefetch_lines = ctx.claimed_prefetch_lines;
    stats->leaked_out_bytes = ctx.pending_out_bytes;
  }
  return ctx.output_count;
}

/// Compares full join keys and emits the concatenated output tuple on a
/// real match. Returns 1 if an output tuple was produced.
template <typename MM>
inline uint64_t ProbeCompareAndEmit(ProbeContext<MM>& ctx,
                                    const uint8_t* build_tuple,
                                    const uint8_t* probe_tuple) {
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  // Visit the matching build tuple: full key comparison needs its key,
  // and emission copies its payload.
  mm.Read(build_tuple, ctx.build_tuple_size);
  mm.Busy(cfg.cost_key_compare);
  bool equal = std::memcmp(build_tuple, probe_tuple, 4) == 0;
  mm.Branch(kBranchKeyEqual, equal);
  if (!equal) return 0;

  uint16_t out_size =
      uint16_t(ctx.build_tuple_size + ctx.probe_tuple_size);
  uint8_t* dst = ctx.sink.Alloc(out_size);
  mm.Busy(cfg.cost_slot_bookkeeping);
  mm.Read(probe_tuple, ctx.probe_tuple_size);
  std::memcpy(dst, build_tuple, ctx.build_tuple_size);
  std::memcpy(dst + ctx.build_tuple_size, probe_tuple,
              ctx.probe_tuple_size);
  mm.Write(dst, out_size);
  mm.Busy(uint32_t(cfg.cost_tuple_copy_per_line *
                   ((out_size + kCacheLineSize - 1) / kCacheLineSize)));
  ++ctx.output_count;
  return 1;
}

/// Code 0: pull the next probe tuple, obtain its hash code (memoized in
/// the page slot or recomputed), and compute the bucket number. Returns
/// false when the input is exhausted. When `prefetch` is set, issues the
/// prefetch for the bucket header (the stage-1 visit) and — entering a
/// new input page — for the page itself (sequential input, so this is
/// the cheap part of what the simple scheme does).
template <typename MM>
inline bool ProbeStage0(ProbeContext<MM>& ctx, ProbeState& st,
                        bool prefetch) {
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  const SlottedPage::Slot* slot = nullptr;
  bool new_page = false;
  if (!ctx.cursor.Next(&slot, &st.tuple, &new_page)) return false;
  if (prefetch && new_page) {
    mm.Prefetch(ctx.cursor.CurrentPageData(), ctx.cursor.page_size());
  }
  mm.Read(slot, sizeof(SlottedPage::Slot));
  if (ctx.hash_mode == HashCodeMode::kMemoized) {
    st.hash = slot->hash_code;
    mm.Busy(cfg.cost_slot_bookkeeping);
  } else {
    uint32_t key;
    mm.Read(st.tuple, 4);
    std::memcpy(&key, st.tuple, 4);
    st.hash = HashKey32(key);
    mm.Busy(cfg.cost_hash);
  }
  // Bucket number: hash code modulo table size (an integer divide).
  st.bucket = ctx.ht->bucket(ctx.ht->BucketIndex(st.hash));
  mm.Busy(cfg.cost_hash);
  st.ResetForTuple();
  if (prefetch) mm.Prefetch(st.bucket, sizeof(BucketHeader));
  return true;
}

/// Code 1: visit the bucket header; classify the bucket (empty / inline
/// cell only / cell array) and prefetch what stage 2 will touch.
template <typename MM>
inline void ProbeStage1(ProbeContext<MM>& ctx, ProbeState& st,
                        bool prefetch) {
  if (!st.alive) return;
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  const BucketHeader* b = st.bucket;
  mm.Read(b, sizeof(BucketHeader));
  mm.Busy(cfg.cost_visit_header);
  bool empty = (b->count == 0);
  mm.Branch(kBranchBucketEmpty, empty);
  if (empty) {
    st.alive = false;
    return;
  }
  bool inline_match = (b->hash == st.hash);
  mm.Branch(kBranchInlineHashMatch, inline_match);
  if (inline_match) {
    st.inline_cand = b->tuple;
    if (prefetch) mm.Prefetch(b->tuple, ctx.build_tuple_size);
  }
  st.has_array = (b->count > 1);
  mm.Branch(kBranchHasArray, st.has_array);
  if (st.has_array && prefetch) {
    mm.Prefetch(b->array, size_t(b->count - 1) * sizeof(HashCell));
  }
}

/// Code 2: visit the cell array, filter by hash code, and prefetch the
/// matching build tuples (multiple independent prefetches, §4.4). Also
/// prefetches the output tail the emissions of stage 3 will write.
template <typename MM>
inline void ProbeStage2(ProbeContext<MM>& ctx, ProbeState& st,
                        bool prefetch) {
  if (!st.alive) return;
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  if (st.has_array) {
    const BucketHeader* b = st.bucket;
    uint32_t n = b->count - 1;
    mm.Read(b->array, size_t(n) * sizeof(HashCell));
    mm.Busy(cfg.cost_visit_cell * n);
    for (uint32_t i = 0; i < n; ++i) {
      bool match = (b->array[i].hash == st.hash);
      mm.Branch(kBranchCellHashMatch, match);
      if (!match) continue;
      if (st.ncand < ProbeState::kMaxCand) {
        st.cand[st.ncand++] = b->array[i].tuple;
        if (prefetch) {
          mm.Prefetch(b->array[i].tuple, ctx.build_tuple_size);
        }
      } else {
        st.overflow = true;
      }
    }
  }
  if (prefetch && ctx.prefetch_output &&
      (st.inline_cand != nullptr || st.ncand > 0)) {
    // Project the output tail past the outputs earlier tuples of the
    // group claimed but have not written yet; approximate across page
    // switches (prefetch hints need not be exact).
    const uint8_t* tail = ctx.sink.PeekAddr();
    if (tail != nullptr) {
      uint32_t out_size = ctx.build_tuple_size + ctx.probe_tuple_size;
      uint32_t cands = st.ncand + (st.inline_cand != nullptr ? 1 : 0);
      const uint8_t* dst = tail + ctx.pending_out_bytes;
      const size_t bytes = size_t(out_size) * cands;
      mm.Prefetch(dst, bytes);
      // Ledger entry mirroring MemorySim::Prefetch's line loop, so the
      // claimed count is comparable to the sim's prefetches_issued.
      const uint64_t a = reinterpret_cast<uintptr_t>(dst);
      ctx.claimed_prefetch_lines +=
          (a + bytes - 1) / cfg.line_size - a / cfg.line_size + 1;
      st.projected_out = cands;
      ctx.pending_out_bytes += uint64_t(out_size) * cands;
    }
  }
}

/// Code 3: visit candidate build tuples, compare keys, produce outputs.
template <typename MM>
inline void ProbeStage3(ProbeContext<MM>& ctx, ProbeState& st) {
  if (!st.alive) return;
  MM& mm = *ctx.mm;
  const auto& cfg = mm.config();
  if (st.inline_cand != nullptr) {
    ProbeCompareAndEmit(ctx, st.inline_cand, st.tuple);
  }
  if (st.overflow) {
    // Rare: more hash matches than the candidate buffer holds. Rescan
    // the (now cached) array and emit for every hash match.
    const BucketHeader* b = st.bucket;
    uint32_t n = b->count - 1;
    mm.Read(b->array, size_t(n) * sizeof(HashCell));
    mm.Busy(cfg.cost_visit_cell * n);
    for (uint32_t i = 0; i < n; ++i) {
      if (b->array[i].hash == st.hash) {
        ProbeCompareAndEmit(ctx, b->array[i].tuple, st.tuple);
      }
    }
  } else {
    for (uint32_t i = 0; i < st.ncand; ++i) {
      ProbeCompareAndEmit(ctx, st.cand[i], st.tuple);
    }
  }
  // Release exactly what this tuple's stage 2 claimed. A tuple that
  // took the bucket-empty early exit in stage 1 never reaches stage 2,
  // so its projected_out is still 0 and this is a no-op — the audit
  // invariant: stage-2 claims and stage-3 releases pair up one to one,
  // across every interleaving the schemes produce.
  const uint64_t claimed = uint64_t(st.projected_out) *
                           (ctx.build_tuple_size + ctx.probe_tuple_size);
  HJ_DCHECK(ctx.pending_out_bytes >= claimed);
  ctx.pending_out_bytes -= claimed;
  st.projected_out = 0;
  st.alive = false;
}

/// GRACE baseline probing: one tuple per iteration, no prefetching
/// (Figure 3(a) generalized to the real multi-code-path algorithm).
template <typename MM>
uint64_t ProbeBaseline(MM& mm, const Relation& probe, const HashTable& ht,
                       uint32_t build_tuple_size, const KernelParams& params,
                       Relation* out, ProbeStats* stats = nullptr) {
  ProbeContext<MM> ctx(&mm, &ht, build_tuple_size,
                       probe.schema().fixed_size(), probe, out,
                       params);
  ProbeState st;
  while (ProbeStage0(ctx, st, /*prefetch=*/false)) {
    ProbeStage1(ctx, st, false);
    ProbeStage2(ctx, st, false);
    ProbeStage3(ctx, st);
  }
  return FinishProbe(ctx, stats);
}

/// Simple prefetching (§7.1): prefetch each input page wholesale when the
/// scan enters it, and issue a just-in-time prefetch of the bucket
/// header. The hash-table references stay unprefetched — their addresses
/// only become known moments before the visit (the pointer-chasing
/// problem, §3) — which is why the paper measures only a 1.1-1.2X gain.
template <typename MM>
uint64_t ProbeSimple(MM& mm, const Relation& probe, const HashTable& ht,
                     uint32_t build_tuple_size, const KernelParams& params,
                     Relation* out, ProbeStats* stats = nullptr) {
  ProbeContext<MM> ctx(&mm, &ht, build_tuple_size,
                       probe.schema().fixed_size(), probe, out,
                       params);
  ProbeState st;
  // A prefetching stage 0 is exactly the simple scheme: the wholesale
  // input-page prefetch on page entry plus the just-in-time bucket
  // prefetch, issued immediately before the stage-1 visit so its
  // latency is barely overlapped.
  while (ProbeStage0(ctx, st, /*prefetch=*/true)) {
    ProbeStage1(ctx, st, /*prefetch=*/false);
    ProbeStage2(ctx, st, false);
    ProbeStage3(ctx, st);
  }
  return FinishProbe(ctx, stats);
}

/// Group prefetching (§4): strip-mine the probe loop into groups of G
/// tuples and run each code stage for the whole group, prefetching the
/// next stage's references (Figure 3(b)/(d)).
template <typename MM>
uint64_t ProbeGroup(MM& mm, const Relation& probe, const HashTable& ht,
                    uint32_t build_tuple_size, const KernelParams& params,
                    Relation* out, ProbeStats* stats = nullptr) {
  uint32_t group = params.EffectiveGroupSize();
  ProbeContext<MM> ctx(&mm, &ht, build_tuple_size,
                       probe.schema().fixed_size(), probe, out,
                       params);
  const auto& cfg = mm.config();
  std::vector<ProbeState> states(group);
  bool more = true;
  while (more) {
    // Group boundary: the safe point to adopt a live-tuned G — no tuple
    // is mid-pipeline, so resizing the state array loses nothing.
    const uint32_t next_group = params.EffectiveGroupSize();
    if (next_group != group) {
      group = next_group;
      states.resize(group);
    }
    uint32_t g = 0;
    while (g < group) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      if (!ProbeStage0(ctx, states[g], /*prefetch=*/true)) {
        more = false;
        break;
      }
      ++g;
    }
    for (uint32_t i = 0; i < g; ++i) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      ProbeStage1(ctx, states[i], true);
    }
    for (uint32_t i = 0; i < g; ++i) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      ProbeStage2(ctx, states[i], true);
    }
    for (uint32_t i = 0; i < g; ++i) {
      mm.Busy(cfg.cost_stage_overhead_gp);
      ProbeStage3(ctx, states[i]);
    }
  }
  return FinishProbe(ctx, stats);
}

/// Software-pipelined prefetching (§5): each iteration runs stage 0 of
/// tuple j, stage 1 of tuple j-D, ..., stage 3 of tuple j-3D, with the
/// per-tuple states in a power-of-two circular array indexed by bit
/// masking (§5.3).
template <typename MM>
uint64_t ProbeSwp(MM& mm, const Relation& probe, const HashTable& ht,
                  uint32_t build_tuple_size, const KernelParams& params,
                  Relation* out, ProbeStats* stats = nullptr) {
  // Live-tuned D is adopted once per pass: the ring size and the stage
  // offsets are derived from it, so it cannot change mid-pipeline.
  const uint64_t d = params.EffectiveDistance();
  constexpr uint32_t kStages = 3;  // k = 3 dependent references
  ProbeContext<MM> ctx(&mm, &ht, build_tuple_size,
                       probe.schema().fixed_size(), probe, out,
                       params);
  const auto& cfg = mm.config();
  const uint64_t ring = NextPowerOfTwo(kStages * d + 1);
  const uint64_t mask = ring - 1;
  std::vector<ProbeState> states(ring);

  uint64_t n = UINT64_MAX;  // learned when the input runs out
  uint64_t issued = 0;
  for (uint64_t j = 0;; ++j) {
    if (j < n) {
      // Stage-0 slot overhead: charged only while tuples are still being
      // issued, so the pipeline drain does not inflate short inputs.
      mm.Busy(cfg.cost_stage_overhead_spp);
      ProbeState& st = states[j & mask];
      if (ProbeStage0(ctx, st, /*prefetch=*/true)) {
        ++issued;
      } else {
        n = issued;
      }
    }
    if (j >= d && j - d < n) {
      mm.Busy(cfg.cost_stage_overhead_spp);
      ProbeStage1(ctx, states[(j - d) & mask], true);
    }
    if (j >= 2 * d && j - 2 * d < n) {
      mm.Busy(cfg.cost_stage_overhead_spp);
      ProbeStage2(ctx, states[(j - 2 * d) & mask], true);
    }
    if (j >= 3 * d && j - 3 * d < n) {
      mm.Busy(cfg.cost_stage_overhead_spp);
      ProbeStage3(ctx, states[(j - 3 * d) & mask]);
    }
    // Drain window ends at the actual issued count: the last real tuple
    // (n-1) finishes stage 3 at j = n - 1 + 3D, and an empty input needs
    // no drain at all.
    if (n != UINT64_MAX && (n == 0 || j + 1 >= n + 3 * d)) break;
  }
  return FinishProbe(ctx, stats);
}

// The Scheme dispatcher (ProbePartition) lives in exec_policy.h, which
// layers every execution policy — including the coroutine one — over
// these stage functions.

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_PROBE_KERNELS_H_
