#ifndef HASHJOIN_JOIN_GRACE_DISK_H_
#define HASHJOIN_JOIN_GRACE_DISK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "join/join_common.h"
#include "join/residency.h"
#include "storage/buffer_manager.h"
#include "storage/relation.h"
#include "util/status.h"

namespace hashjoin {

/// Wall-clock measurements of one disk-backed phase (the Figure 9
/// quantities): total elapsed time, the largest per-disk transfer time
/// ("worker I/O"), and the time the main thread blocked on I/O.
struct DiskPhaseStats {
  double elapsed_seconds = 0;
  double max_disk_seconds = 0;
  double main_wait_seconds = 0;
};

/// What one recursion level of the partition pass actually did: the
/// realized spill cost (tuples and bytes rewritten, wall seconds spent
/// splitting) plus the key-hash histogram observed while routing. Level
/// 0 is the initial fan-out pass; level L >= 1 is the L-th recursive
/// repartition, so a non-empty level 1 means skew or memory pressure
/// forced re-splitting. Persisted into QueryStats so a scheduler can
/// negotiate grants for repeat queries from realized costs, and so the
/// cache's eviction policy can price a rebuild with measured (not just
/// modeled) numbers.
struct SpillLevelStats {
  static constexpr uint32_t kHistBins = 64;
  uint32_t level = 0;
  /// Output partition files opened at this level (sum over split passes).
  uint64_t partitions_written = 0;
  /// Tuples / payload bytes rewritten at this level — the realized
  /// spill cost in data volume.
  uint64_t tuples = 0;
  uint64_t bytes_written = 0;
  /// Wall seconds spent inside this level's split passes.
  double partition_seconds = 0;
  /// Key-hash histogram (original memoized hash % kHistBins) of every
  /// tuple routed at this level.
  std::array<uint64_t, kHistBins> hist{};

  /// Largest bin's share of all routed tuples (1.0 / kHistBins for a
  /// perfectly uniform input; near 1.0 for a single hot key).
  double MaxBinFraction() const {
    uint64_t max_bin = 0;
    for (uint64_t b : hist) max_bin = b > max_bin ? b : max_bin;
    return tuples == 0 ? 0.0 : double(max_bin) / double(tuples);
  }

  /// Bins that received at least one tuple.
  uint32_t NonzeroBins() const {
    uint32_t n = 0;
    for (uint64_t b : hist) n += b != 0 ? 1 : 0;
    return n;
  }
};

/// Configuration of the disk-backed GRACE join's resilience layer.
struct DiskJoinConfig {
  /// Initial partition fan-out of the I/O partition phase. With
  /// `adaptive_fanout` this is only the fallback when no input
  /// statistics exist yet (e.g. the Partition() API called on a file
  /// this join did not write).
  uint32_t num_partitions = 8;

  /// Memory available to one in-memory build (partition pages + hash
  /// table), in bytes. 0 = unlimited (the paper's perfect-balance
  /// assumption). With a budget, a build partition that does not fit
  /// descends the degradation ladder (role reversal, recursive
  /// repartition, chunked build, block nested loop) instead of
  /// overrunning memory.
  uint64_t memory_budget = 0;

  /// Sub-partition fan-out of each recursive repartition level (upper
  /// bound when `adaptive_fanout` re-decides per level).
  uint32_t overflow_fanout = 8;

  /// Levels of recursive repartitioning allowed before falling back to
  /// the chunked build. 0 disables recursion entirely.
  uint32_t max_recursion_depth = 4;

  /// Stamp a SlottedPage checksum into every page this join writes and
  /// verify it on every page it reads back — an end-to-end integrity
  /// check across the full I/O path, on top of the buffer manager's
  /// per-page CRC.
  bool page_checksums = true;

  /// Live memory budget (bytes) from a scheduler's memory-broker grant.
  /// When set and returning non-zero it overrides `memory_budget` and is
  /// re-read at every sizing decision — so a broker revoke mid-join
  /// forces subsequent build partitions to spill (recursive repartition
  /// or chunked build), and a re-grown grant lets them run in memory
  /// again. The function must be safe to call from the joining thread at
  /// any time (a relaxed atomic read of the grant is the intended
  /// implementation).
  std::function<uint64_t()> dynamic_budget;

  /// Execution policy of the join phase's in-memory probe loop (the
  /// count-only probe over loaded partition pages). Every policy visits
  /// the slots of a page in order, so the match count — and every other
  /// observable — is scheme-independent; the scheme only decides how
  /// bucket prefetches interleave with the probes.
  Scheme join_scheme = Scheme::kGroup;

  /// G / D / coroutine interleave width for `join_scheme`.
  KernelParams join_params;

  /// The grant size at admission, bytes (`MemoryGrant::initial_bytes()`).
  /// Seeds the peak/trough watermarks the revoke/un-spill classification
  /// compares against: without it, a grant revoked before the join's
  /// first sizing decision (e.g. while this query was still writing its
  /// partitions) would never register as "once larger", and the spills
  /// it forces would misclassify as plain skew overflow. 0 = seed from
  /// the first budget the join observes.
  uint64_t initial_grant_bytes = 0;

  /// Re-decide the partition fan-out from observed input instead of the
  /// static counts above: level 0 projects per-fanout partition sizes
  /// from the key-hash histogram sampled while the input file was
  /// written, each recursion level sizes its sub-fanout from the actual
  /// overflow of the partition being split. Off by default — callers
  /// that planned around a fixed `num_partitions` keep exact behavior.
  bool adaptive_fanout = false;

  /// Ceiling on the adaptive level-0 fan-out (power of two, at most the
  /// histogram bin count FileStats::kHistBins).
  uint32_t max_fanout = 64;

  /// When a build partition does not fit the budget but its probe
  /// partition would, swap the two before the join pass — the memory
  /// ladder works off the smaller side no matter which relation it came
  /// from. Match counts are side-symmetric (the probe counts key-equal
  /// pairs), so reversal changes only the memory/I/O plan, never the
  /// result.
  bool role_reversal = true;

  /// Run Join() as a true hybrid: keep every build partition in memory
  /// through the partition pass, evict smallest-loss victims only when
  /// the live budget demands it, un-spill in inverse order when it
  /// re-grows, and probe resident partitions on the fly (zero I/O for
  /// the resident fraction). Off by default — the classic
  /// partition-everything GRACE pipeline is kept for callers that want
  /// the paper's Figure 9 shape.
  bool hybrid_residency = false;

  /// Installs this join's revoke listener on the caller's grant (e.g.
  /// `[&grant](auto fn) { grant.SetRevokeListener(std::move(fn)); }`).
  /// The hybrid join uses it to learn the post-revoke grant size at the
  /// moment of the revoke and evict victims at the next page boundary,
  /// instead of discovering the squeeze at its next budget poll. The
  /// join installs an empty listener on exit (the hint closure captures
  /// `this`), and the listener itself only stores to an atomic — it
  /// never calls back into the broker, per the SetRevokeListener
  /// contract.
  std::function<void(std::function<void(uint64_t)>)> install_revoke_listener;
};

/// Recovery actions taken during one Join() call; all zero on a clean,
/// well-balanced run. The I/O counters are diffs of the buffer manager's
/// cumulative stats; the skew counters are tallied by the join itself.
/// Every rung of the degradation ladder (DegradeReason) lands in exactly
/// one of the reason counters below — RecordDegrade is the single
/// chokepoint — so the counters fully classify *why* a join degraded.
struct DiskJoinRecovery {
  uint64_t read_retries = 0;
  uint64_t write_retries = 0;
  uint64_t checksum_failures = 0;
  uint64_t write_verify_failures = 0;
  uint64_t injected_faults = 0;
  /// Build partitions that exceeded the budget and were split again.
  uint64_t recursive_splits = 0;
  /// Oversized partitions joined with the chunked multipass build after
  /// the depth cap (or a no-progress split on a skewed partition).
  uint64_t chunked_fallbacks = 0;
  /// Deepest recursive repartition level reached (0 = none needed).
  uint32_t deepest_recursion = 0;
  /// Largest memory actually committed to one in-memory build (chunk
  /// pages + estimated hash table); never exceeds the budget when one is
  /// set.
  uint64_t max_build_bytes = 0;
  /// Build partitions spilled (split, chunked, or evicted) ONLY because
  /// the live grant shrank below the peak budget this join has seen —
  /// i.e. spills a broker revoke forced, as opposed to plain skew
  /// overflow.
  uint64_t revoke_spills = 0;
  /// Build partitions joined fully in memory that would have spilled at
  /// the lowest budget seen — i.e. in-memory work a grant re-growth
  /// ("un-spill") recovered after an earlier revoke.
  uint64_t regrant_unspills = 0;
  /// Partition pairs whose build/probe roles were swapped because the
  /// original probe side was the cheaper one to hold in memory.
  uint64_t role_reversals = 0;
  /// Single-hash partitions joined with the block nested loop (the one
  /// shape no amount of splitting or chunk-table building helps).
  uint64_t bnl_fallbacks = 0;
  /// Resident hybrid partitions evicted by the smallest-loss policy
  /// when the live budget shrank below the resident set.
  uint64_t victim_spills = 0;
  /// Spilled hybrid partitions re-admitted (inverse spill order) after
  /// the budget re-grew.
  uint64_t victim_unspills = 0;
};

/// Result of a full disk-backed join.
struct DiskJoinResult {
  DiskPhaseStats partition_phase;  // build relation only, as in Fig 9(a)
  DiskPhaseStats probe_partition_phase;
  DiskPhaseStats join_phase;
  uint64_t output_tuples = 0;
  uint32_t num_partitions = 0;
  DiskJoinRecovery recovery;
  /// Per-recursion-level partitioning statistics of this Join() call
  /// (diffed from the join's cumulative tally, like `recovery`). Entry
  /// order is by level; levels with no activity are omitted.
  std::vector<SpillLevelStats> spill_levels;
};

/// GRACE hash join over striped page files (§7.2's real-machine setup):
/// the partition phase streams the input file through the buffer
/// manager's read-ahead scan, hashes each tuple, copies it into a
/// per-partition output page, and writes full pages back in the
/// background; the join phase loads each build partition into a hash
/// table (reusing the memoized hash codes stored in the partition page
/// slots) and streams the probe partition against it. CPU work runs on
/// real memory; I/O runs on the simulated disk array.
///
/// Every fallible path returns a Status: transient I/O faults are
/// absorbed by the buffer manager's retry layer, and only exhausted
/// retries or detected corruption (kDataLoss) surface here.
///
/// A build partition that overflows the budget descends the degradation
/// ladder (DESIGN.md §11), each rung recorded through RecordDegrade:
///   1. role reversal — join the probe side instead if it fits;
///   2. recursive repartition with a level-salted hash (SaltedRehash),
///      with the fan-out re-decided per level under `adaptive_fanout`;
///   3. chunked multipass build past the depth cap;
///   4. block nested loop when the partition is a single hash code (the
///      shape neither splitting nor chunk hash tables can help).
/// With `hybrid_residency`, Join() additionally keeps partitions in
/// memory until a revoke evicts smallest-loss victims (PartitionResidency)
/// and probes the resident fraction with zero join-phase I/O.
class DiskGraceJoin {
 public:
  /// `bm` must outlive this object.
  DiskGraceJoin(BufferManager* bm, const DiskJoinConfig& config);

  /// Convenience: default config with `num_partitions` (legacy callers).
  DiskGraceJoin(BufferManager* bm, uint32_t num_partitions);

  /// Writes a memory-resident relation out as a striped page file.
  StatusOr<BufferManager::FileId> StoreRelation(const Relation& rel);

  /// Partitions `input` (a StoreRelation file) into per-partition files;
  /// fills `stats` (optional) with this pass's I/O measurements. The
  /// fan-out is `config().num_partitions`, or histogram-derived under
  /// `adaptive_fanout`.
  StatusOr<std::vector<BufferManager::FileId>> Partition(
      BufferManager::FileId input, DiskPhaseStats* stats);

  /// Same, with an explicit fan-out (Join() partitions both relations
  /// with the fan-out it chose from the build side, so pairs align).
  StatusOr<std::vector<BufferManager::FileId>> Partition(
      BufferManager::FileId input, DiskPhaseStats* stats, uint32_t fanout);

  /// Joins partition-file pairs, returning the match count. Oversized
  /// build partitions descend the degradation ladder as configured.
  StatusOr<uint64_t> JoinPartitions(
      const std::vector<BufferManager::FileId>& build_parts,
      const std::vector<BufferManager::FileId>& probe_parts,
      DiskPhaseStats* stats);

  /// Full join of two stored relations.
  StatusOr<DiskJoinResult> Join(BufferManager::FileId build,
                                BufferManager::FileId probe);

  const DiskJoinConfig& config() const { return config_; }

 private:
  /// Per-file bookkeeping the sizing decisions need without re-reading
  /// the file: every file this join writes is recorded here. The
  /// key-hash histogram feeds the adaptive fan-out choice (level 0
  /// routes on hash % fanout, so for any fan-out dividing kHistBins the
  /// per-partition tuple counts project exactly from the bins); the
  /// uniform-hash flag detects the single-giant-key partitions only the
  /// block nested loop can handle.
  struct FileStats {
    static constexpr uint32_t kHistBins = 64;
    uint64_t tuples = 0;
    uint64_t data_bytes = 0;
    std::array<uint64_t, kHistBins> hist{};
    uint32_t first_hash = 0;
    bool has_tuples = false;
    bool uniform_hash = true;  // every tuple shares one hash code
  };

  struct HybridState;  // hybrid-pass bookkeeping; defined in grace_disk.cc

  template <typename Fn>
  DiskPhaseStats Measure(Fn&& fn);

  /// The budget to size the next in-memory build by: the live grant when
  /// wired, the static config otherwise. Maintains the peak/trough
  /// watermarks the revoke/un-spill accounting compares against.
  uint64_t EffectiveBudget();

  /// The single chokepoint for degradation-ladder accounting: every
  /// rung (reversal, split, chunk, BNL, victim spill/un-spill)
  /// increments exactly one DiskJoinRecovery counter here. hjlint's
  /// recovery-ledger-discipline rule pins each ladder action to one
  /// adjacent RecordDegrade call.
  void RecordDegrade(DegradeReason reason);

  /// Fan-out for (re)partitioning `input` at `level`: the static config
  /// counts, or — under `adaptive_fanout` — the histogram projection
  /// (level 0) / observed-overflow sizing (level >= 1).
  uint32_t ChooseFanout(BufferManager::FileId input, uint32_t level,
                        uint64_t budget) const;

  /// Swaps the build/probe roles of a partition-file pair. Counting is
  /// side-symmetric, so only the memory/I/O plan changes.
  static void ReverseRoles(BufferManager::FileId* build,
                           BufferManager::FileId* probe);

  /// Whether every tuple of `file` shares one hash code (recursive
  /// splitting cannot make progress on such a partition).
  bool UniformHash(BufferManager::FileId file) const;

  /// Stamps (if configured) and queues one page write, tallying stats.
  /// Fire-and-forget: write errors surface at the next FlushWrites.
  void QueueWritePage(BufferManager::FileId file, uint64_t page_index,
                      uint8_t* page_bytes);
  /// End-to-end verification of a page read back from storage.
  Status VerifyPage(const uint8_t* page_bytes) const;

  /// Splits `input` into `fanout` files. Level 0 hashes the 4-byte key;
  /// level >= 1 reroutes on SaltedRehash of the memoized hash code. The
  /// original hash code is memoized in the output slots either way.
  Status PartitionInto(BufferManager::FileId input,
                       const std::vector<BufferManager::FileId>& outs,
                       uint32_t fanout, uint32_t level);

  /// Estimated bytes to join `file`'s pages in memory (pages + table).
  uint64_t EstimateBuildBytes(BufferManager::FileId file) const;

  /// Joins one (build, probe) partition-file pair at recursion `depth`,
  /// adding matches to `*matches` — the degradation ladder lives here.
  Status JoinPartitionPair(BufferManager::FileId build,
                           BufferManager::FileId probe, uint32_t depth,
                           uint64_t* matches);

  /// Ladder rung 0 (no degradation): load the build partition and
  /// stream the probe partition against its hash table.
  Status JoinInMemory(BufferManager::FileId build,
                      BufferManager::FileId probe, uint64_t* matches);

  /// Ladder rung 2: re-split the pair at `depth + 1` over `sub_build`
  /// (already partitioned) and recurse on each sub-pair.
  Status RecurseSplit(BufferManager::FileId probe,
                      const std::vector<BufferManager::FileId>& sub_build,
                      uint32_t fanout, uint32_t depth, uint64_t* matches);

  /// Ladder rung 3: stream the build partition in budget-sized chunks,
  /// probing the full probe partition against each chunk's hash table
  /// (multipass chunked build).
  Status JoinChunked(BufferManager::FileId build,
                     BufferManager::FileId probe, uint64_t* matches);

  /// Ladder rung 4 (last resort): single-hash build partition — a hash
  /// table would be one long chain, so compare keys directly, build
  /// block by budget-sized block against one probe scan each.
  Status JoinBlockNestedLoop(BufferManager::FileId build,
                             BufferManager::FileId probe, uint64_t* matches);

  /// Builds a hash table over loaded pages and streams the probe file
  /// against it.
  Status BuildAndProbe(const std::vector<std::vector<uint8_t>>& build_pages,
                       uint64_t build_tuples, BufferManager::FileId probe,
                       uint64_t* matches);

  /// Hybrid (residency-managed) whole-join driver; see Join().
  Status JoinHybrid(BufferManager::FileId build, BufferManager::FileId probe,
                    uint32_t fanout, DiskJoinResult* result);

  /// Evicts smallest-loss victims until the resident set fits the live
  /// budget (or the revoke-hint target, whichever is tighter).
  Status EnforceResidencyBudget(PartitionResidency* res, HybridState* st);

  /// Writes one evicted partition's pages to its file (unless the file
  /// already holds the full partition) and drops its hash table.
  Status SpillVictim(PartitionResidency* res, uint32_t victim,
                     HybridState* st);

  /// Re-admits spilled partitions in inverse spill order while the
  /// budget headroom lasts.
  Status MaybeUnspill(PartitionResidency* res, HybridState* st);

  /// Reads partition `p`'s file back into residency.
  Status UnspillPartition(PartitionResidency* res, uint32_t p,
                          HybridState* st);

  void NoteBuildBytes(uint64_t pages, uint64_t tuples);

  BufferManager* bm_;
  DiskJoinConfig config_;
  uint32_t page_size_;
  std::unordered_map<BufferManager::FileId, FileStats> file_stats_;
  DiskJoinRecovery tally_;  // cumulative skew/recovery tallies
  /// Cumulative per-level split statistics, indexed by recursion level;
  /// Join() diffs a snapshot into DiskJoinResult::spill_levels.
  std::vector<SpillLevelStats> level_tally_;
  /// Largest / smallest non-zero effective budget observed so far; the
  /// deltas against the live value classify spills as revoke-forced and
  /// in-memory builds as un-spilled.
  uint64_t peak_budget_ = 0;
  uint64_t trough_budget_ = UINT64_MAX;
  /// Post-revoke grant size pushed by the broker's revoke listener
  /// (UINT64_MAX = no pending hint); consumed at page boundaries by the
  /// hybrid pass. Written from the revoking thread, read from the
  /// joining thread — hence the atomic.
  std::atomic<uint64_t> revoke_hint_{UINT64_MAX};
};

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_GRACE_DISK_H_
