#ifndef HASHJOIN_JOIN_GRACE_DISK_H_
#define HASHJOIN_JOIN_GRACE_DISK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "join/join_common.h"
#include "storage/buffer_manager.h"
#include "storage/relation.h"
#include "util/status.h"

namespace hashjoin {

/// Wall-clock measurements of one disk-backed phase (the Figure 9
/// quantities): total elapsed time, the largest per-disk transfer time
/// ("worker I/O"), and the time the main thread blocked on I/O.
struct DiskPhaseStats {
  double elapsed_seconds = 0;
  double max_disk_seconds = 0;
  double main_wait_seconds = 0;
};

/// Configuration of the disk-backed GRACE join's resilience layer.
struct DiskJoinConfig {
  /// Initial partition fan-out of the I/O partition phase.
  uint32_t num_partitions = 8;

  /// Memory available to one in-memory build (partition pages + hash
  /// table), in bytes. 0 = unlimited (the paper's perfect-balance
  /// assumption). With a budget, a build partition that does not fit is
  /// recursively repartitioned and, past the depth cap, joined with the
  /// chunked multipass build — so skew degrades gracefully instead of
  /// overrunning memory.
  uint64_t memory_budget = 0;

  /// Sub-partition fan-out of each recursive repartition level.
  uint32_t overflow_fanout = 8;

  /// Levels of recursive repartitioning allowed before falling back to
  /// the chunked build. 0 disables recursion entirely.
  uint32_t max_recursion_depth = 4;

  /// Stamp a SlottedPage checksum into every page this join writes and
  /// verify it on every page it reads back — an end-to-end integrity
  /// check across the full I/O path, on top of the buffer manager's
  /// per-page CRC.
  bool page_checksums = true;

  /// Live memory budget (bytes) from a scheduler's memory-broker grant.
  /// When set and returning non-zero it overrides `memory_budget` and is
  /// re-read at every sizing decision — so a broker revoke mid-join
  /// forces subsequent build partitions to spill (recursive repartition
  /// or chunked build), and a re-grown grant lets them run in memory
  /// again. The function must be safe to call from the joining thread at
  /// any time (a relaxed atomic read of the grant is the intended
  /// implementation).
  std::function<uint64_t()> dynamic_budget;

  /// Execution policy of the join phase's in-memory probe loop (the
  /// count-only probe over loaded partition pages). Every policy visits
  /// the slots of a page in order, so the match count — and every other
  /// observable — is scheme-independent; the scheme only decides how
  /// bucket prefetches interleave with the probes.
  Scheme join_scheme = Scheme::kGroup;

  /// G / D / coroutine interleave width for `join_scheme`.
  KernelParams join_params;

  /// The grant size at admission, bytes (`MemoryGrant::initial_bytes()`).
  /// Seeds the peak/trough watermarks the revoke/un-spill classification
  /// compares against: without it, a grant revoked before the join's
  /// first sizing decision (e.g. while this query was still writing its
  /// partitions) would never register as "once larger", and the spills
  /// it forces would misclassify as plain skew overflow. 0 = seed from
  /// the first budget the join observes.
  uint64_t initial_grant_bytes = 0;
};

/// Recovery actions taken during one Join() call; all zero on a clean,
/// well-balanced run. The I/O counters are diffs of the buffer manager's
/// cumulative stats; the skew counters are tallied by the join itself.
struct DiskJoinRecovery {
  uint64_t read_retries = 0;
  uint64_t write_retries = 0;
  uint64_t checksum_failures = 0;
  uint64_t write_verify_failures = 0;
  uint64_t injected_faults = 0;
  /// Build partitions that exceeded the budget and were split again.
  uint64_t recursive_splits = 0;
  /// Oversized partitions joined with the chunked multipass build after
  /// the depth cap (or a no-progress split, e.g. one giant key).
  uint64_t chunked_fallbacks = 0;
  /// Deepest recursive repartition level reached (0 = none needed).
  uint32_t deepest_recursion = 0;
  /// Largest memory actually committed to one in-memory build (chunk
  /// pages + estimated hash table); never exceeds the budget when one is
  /// set.
  uint64_t max_build_bytes = 0;
  /// Build partitions spilled (split or chunked) ONLY because the live
  /// grant shrank below the peak budget this join has seen — i.e. spills
  /// a broker revoke forced, as opposed to plain skew overflow.
  uint64_t revoke_spills = 0;
  /// Build partitions joined fully in memory that would have spilled at
  /// the lowest budget seen — i.e. in-memory work a grant re-growth
  /// ("un-spill") recovered after an earlier revoke.
  uint64_t regrant_unspills = 0;
};

/// Result of a full disk-backed join.
struct DiskJoinResult {
  DiskPhaseStats partition_phase;  // build relation only, as in Fig 9(a)
  DiskPhaseStats probe_partition_phase;
  DiskPhaseStats join_phase;
  uint64_t output_tuples = 0;
  uint32_t num_partitions = 0;
  DiskJoinRecovery recovery;
};

/// GRACE hash join over striped page files (§7.2's real-machine setup):
/// the partition phase streams the input file through the buffer
/// manager's read-ahead scan, hashes each tuple, copies it into a
/// per-partition output page, and writes full pages back in the
/// background; the join phase loads each build partition into a hash
/// table (reusing the memoized hash codes stored in the partition page
/// slots) and streams the probe partition against it. CPU work runs on
/// real memory; I/O runs on the simulated disk array.
///
/// Every fallible path returns a Status: transient I/O faults are
/// absorbed by the buffer manager's retry layer, and only exhausted
/// retries or detected corruption (kDataLoss) surface here. Build
/// partitions that overflow `memory_budget` are recursively repartitioned
/// with a seed-salted hash (SaltedRehash) and, past the depth cap,
/// joined with a chunked multipass build — mirroring the hybrid join's
/// spill logic, but driven by observed (not predicted) partition sizes.
class DiskGraceJoin {
 public:
  /// `bm` must outlive this object.
  DiskGraceJoin(BufferManager* bm, const DiskJoinConfig& config);

  /// Convenience: default config with `num_partitions` (legacy callers).
  DiskGraceJoin(BufferManager* bm, uint32_t num_partitions);

  /// Writes a memory-resident relation out as a striped page file.
  StatusOr<BufferManager::FileId> StoreRelation(const Relation& rel);

  /// Partitions `input` (a StoreRelation file) into per-partition files;
  /// fills `stats` (optional) with this pass's I/O measurements.
  StatusOr<std::vector<BufferManager::FileId>> Partition(
      BufferManager::FileId input, DiskPhaseStats* stats);

  /// Joins partition-file pairs, returning the match count. Oversized
  /// build partitions recurse / fall back as configured.
  StatusOr<uint64_t> JoinPartitions(
      const std::vector<BufferManager::FileId>& build_parts,
      const std::vector<BufferManager::FileId>& probe_parts,
      DiskPhaseStats* stats);

  /// Full join of two stored relations.
  StatusOr<DiskJoinResult> Join(BufferManager::FileId build,
                                BufferManager::FileId probe);

  const DiskJoinConfig& config() const { return config_; }

 private:
  /// Per-file bookkeeping the sizing decisions need without re-reading
  /// the file: every file this join writes is recorded here.
  struct FileStats {
    uint64_t tuples = 0;
    uint64_t data_bytes = 0;
  };

  template <typename Fn>
  DiskPhaseStats Measure(Fn&& fn);

  /// The budget to size the next in-memory build by: the live grant when
  /// wired, the static config otherwise. Maintains the peak/trough
  /// watermarks the revoke/un-spill accounting compares against.
  uint64_t EffectiveBudget();

  /// Stamps (if configured) and queues one page write, tallying stats.
  /// Fire-and-forget: write errors surface at the next FlushWrites.
  void QueueWritePage(BufferManager::FileId file, uint64_t page_index,
                      uint8_t* page_bytes);
  /// End-to-end verification of a page read back from storage.
  Status VerifyPage(const uint8_t* page_bytes) const;

  /// Splits `input` into `fanout` files. Level 0 hashes the 4-byte key;
  /// level >= 1 reroutes on SaltedRehash of the memoized hash code. The
  /// original hash code is memoized in the output slots either way.
  Status PartitionInto(BufferManager::FileId input,
                       const std::vector<BufferManager::FileId>& outs,
                       uint32_t fanout, uint32_t level);

  /// Estimated bytes to join `file`'s pages in memory (pages + table).
  uint64_t EstimateBuildBytes(BufferManager::FileId file) const;

  /// Joins one (build, probe) partition-file pair at recursion `depth`,
  /// adding matches to `*matches`.
  Status JoinPartitionPair(BufferManager::FileId build,
                           BufferManager::FileId probe, uint32_t depth,
                           uint64_t* matches);

  /// Depth-cap fallback: stream the build partition in budget-sized
  /// chunks, probing the full probe partition against each chunk's hash
  /// table (multipass chunked build).
  Status JoinChunked(BufferManager::FileId build,
                     BufferManager::FileId probe, uint64_t* matches);

  /// Builds a hash table over loaded pages and streams the probe file
  /// against it.
  Status BuildAndProbe(const std::vector<std::vector<uint8_t>>& build_pages,
                       uint64_t build_tuples, BufferManager::FileId probe,
                       uint64_t* matches);

  void NoteBuildBytes(uint64_t pages, uint64_t tuples);

  BufferManager* bm_;
  DiskJoinConfig config_;
  uint32_t page_size_;
  std::unordered_map<BufferManager::FileId, FileStats> file_stats_;
  DiskJoinRecovery tally_;  // cumulative skew/recovery tallies
  /// Largest / smallest non-zero effective budget observed so far; the
  /// deltas against the live value classify spills as revoke-forced and
  /// in-memory builds as un-spilled.
  uint64_t peak_budget_ = 0;
  uint64_t trough_budget_ = UINT64_MAX;
};

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_GRACE_DISK_H_
