#ifndef HASHJOIN_JOIN_GRACE_DISK_H_
#define HASHJOIN_JOIN_GRACE_DISK_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/relation.h"

namespace hashjoin {

/// Wall-clock measurements of one disk-backed phase (the Figure 9
/// quantities): total elapsed time, the largest per-disk transfer time
/// ("worker I/O"), and the time the main thread blocked on I/O.
struct DiskPhaseStats {
  double elapsed_seconds = 0;
  double max_disk_seconds = 0;
  double main_wait_seconds = 0;
};

/// Result of a full disk-backed join.
struct DiskJoinResult {
  DiskPhaseStats partition_phase;  // build relation only, as in Fig 9(a)
  DiskPhaseStats probe_partition_phase;
  DiskPhaseStats join_phase;
  uint64_t output_tuples = 0;
  uint32_t num_partitions = 0;
};

/// GRACE hash join over striped page files (§7.2's real-machine setup):
/// the partition phase streams the input file through the buffer
/// manager's read-ahead scan, hashes each tuple, copies it into a
/// per-partition output page, and writes full pages back in the
/// background; the join phase loads each build partition into a hash
/// table (reusing the memoized hash codes stored in the partition page
/// slots) and streams the probe partition against it. CPU work runs on
/// real memory; I/O runs on the simulated disk array.
class DiskGraceJoin {
 public:
  /// `bm` must outlive this object.
  DiskGraceJoin(BufferManager* bm, uint32_t num_partitions);

  /// Writes a memory-resident relation out as a striped page file.
  BufferManager::FileId StoreRelation(const Relation& rel);

  /// Partitions `input` into per-partition files; fills `stats`
  /// (optional) with this pass's I/O measurements.
  std::vector<BufferManager::FileId> Partition(BufferManager::FileId input,
                                               DiskPhaseStats* stats);

  /// Joins partition-file pairs, returning the match count.
  uint64_t JoinPartitions(
      const std::vector<BufferManager::FileId>& build_parts,
      const std::vector<BufferManager::FileId>& probe_parts,
      DiskPhaseStats* stats);

  /// Full join of two stored relations.
  DiskJoinResult Join(BufferManager::FileId build,
                      BufferManager::FileId probe);

 private:
  template <typename Fn>
  DiskPhaseStats Measure(Fn&& fn);

  BufferManager* bm_;
  uint32_t num_partitions_;
  uint32_t page_size_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_GRACE_DISK_H_
