#ifndef HASHJOIN_JOIN_JOIN_COMMON_H_
#define HASHJOIN_JOIN_JOIN_COMMON_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "simcache/stats.h"
#include "storage/relation.h"
#include "util/aligned.h"
#include "util/logging.h"

namespace hashjoin {

// Compile-feature gate for the coroutine execution policy. CMake probes
// the toolchain with check_cxx_source_compiles and defines the macro to
// 0 or 1; a build outside CMake falls back to the compiler's own
// feature-test macro so plain `g++ -std=c++20` still works.
#ifndef HASHJOIN_HAS_COROUTINES
#if defined(__cpp_impl_coroutine) && __has_include(<coroutine>)
#define HASHJOIN_HAS_COROUTINES 1
#else
#define HASHJOIN_HAS_COROUTINES 0
#endif
#endif

/// The CPU-cache execution policies for both phases: the four the paper
/// compares (§7.1) — the GRACE baseline, straightforward ("simple")
/// prefetching, group prefetching (§4), and software-pipelined
/// prefetching (§5) — plus the modern AMAC-style coroutine interleaving
/// the paper's hand-scheduled state machines anticipate (coro_kernels.h).
enum class Scheme {
  kBaseline,
  kSimple,
  kGroup,
  kSwp,
  kCoro,
};

// Scheme <-> name round-trips below share one table in grace.cc; bench
// drivers and tests must not hardcode their own scheme-string lists.

const char* SchemeName(Scheme s);

/// Parses a scheme name ("baseline", "simple", "group", "swp", "coro").
/// Returns false — without touching `*out` — on an unknown name; callers
/// surfacing the failure to users should print SchemeNameList().
bool ParseScheme(const std::string& name, Scheme* out);

/// Comma-separated list of every valid scheme name, for error messages.
std::string SchemeNameList();

/// Whether this build can execute `s`: false only for kCoro on a
/// toolchain without C++20 coroutine support (see the CMake gate).
bool SchemeAvailable(Scheme s);

/// Every scheme this build can execute, in table order. Bench drivers
/// iterate this so a newly added scheme shows up everywhere at once.
std::vector<Scheme> AllSchemes();

/// Why the disk join left the plain in-memory path for one partition —
/// the rungs of the graceful-degradation ladder (DESIGN.md §11). Every
/// rung increments exactly one `DiskJoinRecovery` counter through
/// `DiskGraceJoin::RecordDegrade`, so a degraded join is always fully
/// classified by reason; hjlint's recovery-ledger-discipline rule pins
/// the pairing of each ladder action with its RecordDegrade call.
enum class DegradeReason {
  kRoleReversal,     ///< probe side fit (or was cheaper); sides swapped
  kRecursiveSplit,   ///< partition re-split with the next salted hash
  kChunkedBuild,     ///< budget-sized build chunks, probe re-scanned
  kBlockNestedLoop,  ///< single-hash partition: no table, block loop
  kVictimSpill,      ///< resident partition evicted (smallest-loss policy)
  kVictimUnspill,    ///< spilled partition re-loaded after a re-grant
};

/// How the join phase obtains hash codes: reuse the 4-byte codes the
/// partition phase memoized in the page slot area (§7.1 optimization), or
/// recompute them from the join keys (the ablation).
enum class HashCodeMode {
  kMemoized,
  kCompute,
};

/// Live G/D overrides published by an online tuner (tune::PrefetchTuner
/// glue in the benches) and consumed by the kernels at batch boundaries.
/// 0 means "no override: use the static KernelParams value". Writers
/// Publish() between batches; readers load with acquire at safe
/// re-read points only — group kernels at each group boundary, pipelined
/// and coroutine kernels at pass start (their ring size / chain count is
/// fixed for the life of a pass).
struct LiveTuning {
  std::atomic<uint32_t> group_size{0};
  std::atomic<uint32_t> prefetch_distance{0};

  void Publish(uint32_t g, uint32_t d) {
    group_size.store(g, std::memory_order_release);
    prefetch_distance.store(d, std::memory_order_release);
  }
};

/// Tuning parameters shared by the prefetching kernels.
///
/// Kernels must read G and D through EffectiveGroupSize() /
/// EffectiveDistance() — the policy/tuner handoff — never through the
/// raw members, so an attached LiveTuning override reaches every scheme
/// uniformly (hjlint's tuned-depth-handoff rule pins the bench side of
/// this contract).
struct KernelParams {
  uint32_t group_size = 19;        // G; the paper's optimum at T=150
  uint32_t prefetch_distance = 1;  // D; the paper's optimum at T=150
  HashCodeMode hash_mode = HashCodeMode::kMemoized;
  /// Prefetch the output tail the emit stage will write (ablatable).
  bool prefetch_output = true;
  /// Optional online-tuner override channel; not owned. nullptr (the
  /// default) preserves purely static behavior.
  const LiveTuning* live = nullptr;

  /// G as the kernels should use it right now: the live override when
  /// one is attached and published, else the static member; never 0.
  uint32_t EffectiveGroupSize() const {
    if (live != nullptr) {
      uint32_t g = live->group_size.load(std::memory_order_acquire);
      if (g != 0) return g;
    }
    return std::max(1u, group_size);
  }

  /// D as the kernels should use it right now; never 0.
  uint32_t EffectiveDistance() const {
    if (live != nullptr) {
      uint32_t d = live->prefetch_distance.load(std::memory_order_acquire);
      if (d != 0) return d;
    }
    return std::max(1u, prefetch_distance);
  }
};

/// Per-phase measurement: simulated cycle breakdown (when run against
/// SimMemory) plus real wall time (always collected).
struct PhaseResult {
  sim::SimStats sim;
  double wall_seconds = 0;
  uint64_t tuples_processed = 0;
};

/// Result of a full GRACE hash join.
struct JoinResult {
  PhaseResult partition_phase;
  PhaseResult join_phase;  // includes any in-memory re-partition step
  uint64_t output_tuples = 0;
  uint32_t num_partitions = 0;
  /// The build phase was skipped because a cached hash table was pinned
  /// (GraceConfig::table_cache hit); partition_phase is empty too — the
  /// probe ran directly against the cached table.
  bool cache_hit = false;
  /// Join-phase counters per worker thread (simulated runs with
  /// num_threads > 1 only): each worker's share of the merged stats, for
  /// per-thread stall breakdowns and load-balance analysis.
  std::vector<sim::SimStats> per_thread_join_sim;
};

/// Half-open page range of an input relation. The default covers the
/// whole relation; the parallel partition phase splits an input into
/// one disjoint range per worker.
struct PageRange {
  size_t begin = 0;
  size_t end = SIZE_MAX;
};

/// Streams (slot, tuple) pairs over a relation's pages in order. The
/// kernels use it to pull tuples one at a time regardless of page
/// boundaries, and to learn when a new input page begins (the simple
/// prefetching scheme prefetches whole input pages, §6).
class TupleCursor {
 public:
  explicit TupleCursor(const Relation& rel)
      : rel_(&rel), page_index_(0), end_page_(rel.num_pages()) {}

  /// Cursor over the half-open page range [begin_page, end_page). The
  /// parallel partition phase hands each worker a disjoint page range of
  /// the same input relation.
  TupleCursor(const Relation& rel, size_t begin_page, size_t end_page)
      : rel_(&rel),
        page_index_(begin_page),
        end_page_(end_page < rel.num_pages() ? end_page
                                             : rel.num_pages()) {}

  /// Advances to the next tuple. Returns false at end of relation.
  /// `*new_page` (optional) is set true when this tuple is the first of
  /// a page.
  bool Next(const SlottedPage::Slot** slot, const uint8_t** tuple,
            bool* new_page = nullptr) {
    while (true) {
      if (page_index_ >= end_page_) return false;
      const SlottedPage page = rel_->page(page_index_);
      if (slot_index_ >= page.slot_count()) {
        ++page_index_;
        slot_index_ = 0;
        continue;
      }
      if (new_page != nullptr) *new_page = (slot_index_ == 0);
      const SlottedPage::Slot* s = page.GetSlot(slot_index_);
      *slot = s;
      *tuple = page.data() + s->offset;
      ++slot_index_;
      return true;
    }
  }

  /// Base address and size of the current page (for page prefetching).
  const uint8_t* CurrentPageData() const {
    return rel_->page(page_index_).data();
  }
  uint32_t page_size() const { return rel_->page_size(); }

 private:
  const Relation* rel_;
  size_t page_index_ = 0;
  size_t end_page_ = 0;
  int slot_index_ = 0;
};

/// Join-output staging buffer: emissions land in one recycled page-sized
/// buffer; full pages are handed off to the destination relation by an
/// uncharged copy, modeling the paper's pipelined query processing where
/// output buffers are sent to the parent operator (or disk) and reused.
/// Reuse keeps the output working set cache-resident, so — like the
/// paper's machine — the join phase's cache misses are dominated by hash
/// table visits, not by output stores.
class OutputSink {
 public:
  explicit OutputSink(Relation* dest)
      : dest_(dest), page_size_(dest->page_size()) {
    buffer_ = MakeAlignedBuffer<uint8_t>(page_size_, page_size_);
    view_ = SlottedPage::Format(buffer_.get(), page_size_);
  }

  OutputSink(const OutputSink&) = delete;
  OutputSink& operator=(const OutputSink&) = delete;

  /// Reserves space for one output tuple in the staging buffer, writing
  /// out the buffer first if full.
  uint8_t* Alloc(uint16_t length) {
    uint8_t* dst = view_.AllocTuple(length, 0, nullptr);
    if (dst == nullptr) {
      Flush();
      dst = view_.AllocTuple(length, 0, nullptr);
      HJ_CHECK(dst != nullptr) << "output tuple larger than a page";
    }
    return dst;
  }

  /// Where the next Alloc will land (prefetch hint).
  const uint8_t* PeekAddr() const {
    return buffer_.get() +
           reinterpret_cast<const SlottedPage::PageHeader*>(buffer_.get())
               ->free_offset;
  }

  /// Sends the partial buffer to the destination (end of a probe pass).
  void Final() {
    if (view_.slot_count() > 0) Flush();
  }

 private:
  void Flush() {
    dest_->AppendCopiedPage(buffer_.get());
    view_ = SlottedPage::Format(buffer_.get(), page_size_);
  }

  Relation* dest_;
  uint32_t page_size_;
  AlignedBuffer<uint8_t> buffer_;
  SlottedPage view_;
};

/// Branch-site ids used with the memory model's branch predictor; one id
/// per static conditional in the kernels.
enum BranchSite : uint32_t {
  kBranchBucketEmpty = 1,
  kBranchInlineHashMatch,
  kBranchHasArray,
  kBranchCellHashMatch,
  kBranchKeyEqual,
  kBranchBucketBusy,
  kBranchBufferFull,
  kBranchStateDispatch,
};

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_JOIN_COMMON_H_
