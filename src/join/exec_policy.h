#ifndef HASHJOIN_JOIN_EXEC_POLICY_H_
#define HASHJOIN_JOIN_EXEC_POLICY_H_

// Execution-policy dispatch: one Scheme-switched entry point per kernel
// family (partition, build, probe, aggregate), layering the baseline,
// simple, group (§4), software-pipelined (§5), and coroutine policies
// over the shared stage functions. This mirrors the RealMemory/SimMemory
// split one level up: the stage functions fix *what* a tuple's visit
// does, a policy fixes *when* each stage runs relative to other tuples.
//
// The coroutine policy compiles only on toolchains with C++20 coroutine
// support; elsewhere Scheme::kCoro reports unavailable (SchemeAvailable)
// and dispatching it dies with a check failure rather than silently
// falling back to a different policy.

#include "join/aggregate_kernels.h"
#include "join/build_kernels.h"
#include "join/coro_kernels.h"
#include "join/join_common.h"
#include "join/partition_kernels.h"
#include "join/probe_kernels.h"
#include "util/logging.h"

namespace hashjoin {

/// Dies with a diagnostic when a scheme that did not compile into this
/// binary is dispatched (today only kCoro, on pre-coroutine toolchains).
inline void RequireSchemeCompiled(Scheme scheme) {
  HJ_CHECK(SchemeAvailable(scheme))
      << "scheme '" << SchemeName(scheme)
      << "' was not compiled into this binary (toolchain lacks C++20 "
         "coroutines)";
}

/// Dispatches partitioning on scheme.
template <typename MM>
void PartitionRelation(MM& mm, Scheme scheme, const Relation& input,
                       PartitionSinkSet* sinks, uint32_t num_partitions,
                       const KernelParams& params,
                       uint32_t hash_divisor = 1,
                       PageRange range = PageRange{}) {
  RequireSchemeCompiled(scheme);
  switch (scheme) {
    case Scheme::kBaseline:
      return PartitionBaseline(mm, input, sinks, num_partitions, params,
                               hash_divisor, range);
    case Scheme::kSimple:
      return PartitionSimple(mm, input, sinks, num_partitions, params,
                             hash_divisor, range);
    case Scheme::kGroup:
      return PartitionGroup(mm, input, sinks, num_partitions, params,
                            hash_divisor, range);
    case Scheme::kSwp:
      return PartitionSwp(mm, input, sinks, num_partitions, params,
                          hash_divisor, range);
    case Scheme::kCoro:
#if HASHJOIN_HAS_COROUTINES
      return PartitionCoro(mm, input, sinks, num_partitions, params,
                           hash_divisor, range);
#else
      return;  // unreachable: RequireSchemeCompiled checked
#endif
  }
}

/// Combined scheme (§7.4): simple prefetching while the output buffers
/// fit in the L2 cache, group / software-pipelined / coroutine
/// interleaving beyond.
template <typename MM>
void PartitionCombined(MM& mm, const Relation& input,
                       PartitionSinkSet* sinks, uint32_t num_partitions,
                       const KernelParams& params, uint32_t l2_bytes,
                       Scheme large_scheme = Scheme::kGroup,
                       uint32_t hash_divisor = 1,
                       PageRange range = PageRange{}) {
  uint64_t working_set =
      uint64_t(num_partitions) *
      (sinks->page_size() + sizeof(PartitionSink));
  // Only a fraction of L2 is effectively available to the output
  // buffers: the input stream and miscellaneous structures continuously
  // pollute it (the paper's "other miscellaneous data structures").
  if (working_set <= l2_bytes / 4) {
    PartitionSimple(mm, input, sinks, num_partitions, params,
                    hash_divisor, range);
  } else if (large_scheme == Scheme::kSwp ||
             large_scheme == Scheme::kCoro) {
    PartitionRelation(mm, large_scheme, input, sinks, num_partitions,
                      params, hash_divisor, range);
  } else {
    PartitionGroup(mm, input, sinks, num_partitions, params, hash_divisor,
                   range);
  }
}

/// Dispatches hash-table building on scheme.
template <typename MM>
void BuildPartition(MM& mm, Scheme scheme, const Relation& build,
                    HashTable* ht, const KernelParams& params) {
  RequireSchemeCompiled(scheme);
  switch (scheme) {
    case Scheme::kBaseline:
      return BuildBaseline(mm, build, ht, params);
    case Scheme::kSimple:
      return BuildSimple(mm, build, ht, params);
    case Scheme::kGroup:
      return BuildGroup(mm, build, ht, params);
    case Scheme::kSwp:
      return BuildSwp(mm, build, ht, params);
    case Scheme::kCoro:
#if HASHJOIN_HAS_COROUTINES
      return BuildCoro(mm, build, ht, params);
#else
      return;  // unreachable: RequireSchemeCompiled checked
#endif
  }
}

/// Dispatches probing on scheme. `stats` (optional) surfaces the pass's
/// output/claim accounting for the scheme-equivalence tests.
template <typename MM>
uint64_t ProbePartition(MM& mm, Scheme scheme, const Relation& probe,
                        const HashTable& ht, uint32_t build_tuple_size,
                        const KernelParams& params, Relation* out,
                        ProbeStats* stats = nullptr) {
  RequireSchemeCompiled(scheme);
  switch (scheme) {
    case Scheme::kBaseline:
      return ProbeBaseline(mm, probe, ht, build_tuple_size, params, out,
                           stats);
    case Scheme::kSimple:
      return ProbeSimple(mm, probe, ht, build_tuple_size, params, out,
                         stats);
    case Scheme::kGroup:
      return ProbeGroup(mm, probe, ht, build_tuple_size, params, out,
                        stats);
    case Scheme::kSwp:
      return ProbeSwp(mm, probe, ht, build_tuple_size, params, out, stats);
    case Scheme::kCoro:
#if HASHJOIN_HAS_COROUTINES
      return ProbeCoro(mm, probe, ht, build_tuple_size, params, out,
                       stats);
#else
      return 0;  // unreachable: RequireSchemeCompiled checked
#endif
  }
  return 0;
}

/// Dispatches hash aggregation on scheme. Group takes its strip size and
/// coro its interleave width from the effective (live-tuned or static)
/// group size; SPP takes the effective prefetch distance. The dispatch
/// is the pass boundary, so live overrides are adopted here.
template <typename MM>
void AggregateRelation(MM& mm, Scheme scheme, const Relation& input,
                       uint32_t value_offset, HashAggTable* agg,
                       const KernelParams& params) {
  RequireSchemeCompiled(scheme);
  switch (scheme) {
    case Scheme::kBaseline:
      return AggregateBaseline(mm, input, value_offset, agg);
    case Scheme::kSimple:
      return AggregateSimple(mm, input, value_offset, agg);
    case Scheme::kGroup:
      return AggregateGroup(mm, input, value_offset, agg,
                            params.EffectiveGroupSize());
    case Scheme::kSwp:
      return AggregateSwp(mm, input, value_offset, agg,
                          params.EffectiveDistance());
    case Scheme::kCoro:
#if HASHJOIN_HAS_COROUTINES
      return AggregateCoro(mm, input, value_offset, agg,
                           params.EffectiveGroupSize());
#else
      return;  // unreachable: RequireSchemeCompiled checked
#endif
  }
}

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_EXEC_POLICY_H_
