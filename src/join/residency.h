#ifndef HASHJOIN_JOIN_RESIDENCY_H_
#define HASHJOIN_JOIN_RESIDENCY_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace hashjoin {

/// Which build partitions of a hybrid join are held in memory, what each
/// one costs, and — under a shrinking grant — which one to give up next.
///
/// The hybrid join (DiskGraceJoin with `hybrid_residency`) starts every
/// partition resident and evicts on demand; this class is the pure
/// bookkeeping side of that policy. It owns the resident pages and the
/// spill ordering, but no I/O: the join evicts a partition by calling
/// Evict() and writing the returned pages itself, and re-admits one by
/// reading the file back and calling Readmit(). Keeping the policy free
/// of I/O makes the victim selection unit-testable in isolation.
///
/// Victim policy (smallest loss, DESIGN.md §11): among resident
/// partitions, prefer the one that frees the needed bytes on its own
/// while evicting the fewest build tuples; if no single partition frees
/// enough, take the largest so the fewest total evictions get there.
/// Un-spill runs in inverse spill order (latest victim first): later
/// victims were evicted at lower budgets, so they are the cheapest to
/// bring back and the most likely to fit a partial re-grant.
class PartitionResidency {
 public:
  /// `table_cost(tuples)` estimates the hash-table bytes a resident
  /// partition of that many tuples will need when it is built (the same
  /// estimator the join's budget checks use, so residency accounting and
  /// spill decisions agree).
  PartitionResidency(uint32_t num_partitions, uint32_t page_size,
                     std::function<uint64_t(uint64_t)> table_cost);

  /// Appends one full page (page_size bytes) to resident partition `p`.
  void AddPage(uint32_t p, std::vector<uint8_t> page, uint64_t tuples);

  bool resident(uint32_t p) const { return parts_[p].resident; }
  uint64_t tuples(uint32_t p) const { return parts_[p].tuples; }
  const std::vector<std::vector<uint8_t>>& pages(uint32_t p) const {
    return parts_[p].pages;
  }

  /// Bytes charged against the budget right now: pages plus projected
  /// hash table of every resident partition.
  uint64_t ResidentBytes() const;

  /// Bytes eviction of partition `p` would free.
  uint64_t PartitionCost(uint32_t p) const;

  /// Smallest-loss victim to free `needed` bytes, or -1 if nothing is
  /// resident with pages to give up.
  int PickVictim(uint64_t needed) const;

  /// Marks `p` spilled and surrenders its pages (tuple count is kept for
  /// later sizing). The caller writes the pages out.
  std::vector<std::vector<uint8_t>> Evict(uint32_t p);

  /// The most recently spilled partition (the first to un-spill), or -1
  /// if none are spilled.
  int LastSpilled() const;

  /// Re-admits a spilled partition with pages read back from its file.
  void Readmit(uint32_t p, std::vector<std::vector<uint8_t>> pages,
               uint64_t tuples);

  uint32_t num_partitions() const { return uint32_t(parts_.size()); }

 private:
  struct PartState {
    std::vector<std::vector<uint8_t>> pages;
    uint64_t tuples = 0;
    bool resident = true;
    uint64_t spill_seq = 0;  // valid while !resident; orders un-spill
  };

  std::vector<PartState> parts_;
  uint32_t page_size_;
  std::function<uint64_t(uint64_t)> table_cost_;
  uint64_t next_spill_seq_ = 1;
};

}  // namespace hashjoin

#endif  // HASHJOIN_JOIN_RESIDENCY_H_
