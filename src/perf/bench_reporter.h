#ifndef HASHJOIN_PERF_BENCH_REPORTER_H_
#define HASHJOIN_PERF_BENCH_REPORTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "perf/calibrate.h"
#include "perf/perf_counters.h"
#include "util/json_writer.h"
#include "util/status.h"

namespace hashjoin {
namespace perf {

/// Runs warm-up + repeated trials of a measured region and accumulates
/// one machine-readable JSON record per configuration, written as
/// `BENCH_<bench>.json`. All benches — real-hardware and simulator —
/// share the schema, so tools/bench_diff can compare any two runs:
///
///   {
///     "bench": "real_join",
///     "schema_version": 1,
///     "host": { "nproc": ..., "perf_event_paranoid": ...,
///               "counters_available": bool, ... },
///     "calibration": { ... } | null,      // --auto-tune only
///     "records": [ {
///        "name": "probe/group",           // unique per record
///        "config": { "scheme": ..., "G": ..., "D": ..., ... },
///        "trials": N,
///        "warmup": W,
///        "wall_seconds": { "median": s, "min": s, "mean": s,
///                          "all": [ ... ] },
///        "counters": { "cycles": ..., ... } | null,
///        "counters_unavailable": "reason"  // only when counters==null
///        ... bench-specific extras (sim stats, outputs, io_recovery)
///     } ]
///   }
///
/// Counter readings are per-trial; the reported value of each counter is
/// the median across trials (robust to one preempted trial). Counters
/// that never opened are null inside "counters"; if no counter opened at
/// all, "counters" itself is null and "counters_unavailable" explains
/// why — consumers must treat the two cases differently from zero.
class BenchReporter {
 public:
  struct Options {
    std::string bench_name;
    std::string output_path;  // default: BENCH_<bench_name>.json
    int warmup = 1;
    int trials = 5;
    bool collect_counters = true;
  };

  explicit BenchReporter(Options options);

  /// Whether hardware counters are live for this reporter.
  bool counters_available() const;

  /// Attaches the machine-calibration block (--auto-tune runs).
  void SetCalibration(const CalibrationResult& calibration);

  /// Measures one configuration: `setup` (optional, untimed) runs before
  /// every warm-up and trial; `body` is the timed+counted region. The
  /// returned reference points at the record just appended — callers add
  /// bench-specific fields (outputs, sim stats) to it. `config` becomes
  /// the record's "config" member.
  JsonValue& AddRecord(const std::string& name, JsonValue config,
                       const std::function<void()>& body,
                       const std::function<void()>& setup = nullptr);

  /// Appends a caller-built record verbatim (for measurements the
  /// trial harness cannot wrap, e.g. per-thread executor phases).
  JsonValue& AddRawRecord(JsonValue record);

  /// The document built so far.
  const JsonValue& doc() const { return doc_; }

  /// Writes the document to options.output_path.
  Status Write() const;

  /// output path actually in use.
  const std::string& output_path() const { return output_path_; }

 private:
  Options options_;
  std::string output_path_;
  PerfCounters counters_;
  JsonValue doc_;
};

}  // namespace perf
}  // namespace hashjoin

#endif  // HASHJOIN_PERF_BENCH_REPORTER_H_
