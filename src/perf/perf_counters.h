#ifndef HASHJOIN_PERF_PERF_COUNTERS_H_
#define HASHJOIN_PERF_PERF_COUNTERS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/json_writer.h"

namespace hashjoin {
namespace perf {

/// One hardware-counter reading over a Start()/Stop() window. Counters
/// that could not be opened on this host are absent (std::nullopt), not
/// zero — zero is a legitimate measurement. When the kernel multiplexed
/// the group (more counters than physical PMCs), values are scaled by
/// time_enabled/time_running and `scaled` is set.
struct CounterValues {
  std::optional<uint64_t> cycles;
  std::optional<uint64_t> instructions;
  std::optional<uint64_t> l1d_misses;
  std::optional<uint64_t> llc_misses;
  std::optional<uint64_t> dtlb_misses;
  std::optional<uint64_t> branch_misses;
  std::optional<uint64_t> stalled_cycles;  ///< backend stall cycles

  bool scaled = false;
  double running_fraction = 1.0;  // time_running / time_enabled
  uint64_t time_enabled_ns = 0;

  /// Instructions per cycle, when both counters were measured.
  std::optional<double> Ipc() const;

  /// {"cycles": N, ..., "scaled": bool} with `null` for absent counters,
  /// so the emitted JSON distinguishes "not measured" from 0 — the
  /// Ailamaki-style breakdown consumers need that distinction.
  JsonValue ToJson() const;
};

/// Grouped perf_event_open reader for the paper's measurement set
/// (cycles, instructions, L1D / LLC / dTLB / branch misses — the
/// counters behind Figures 1 and 9-19).
///
/// Degrades gracefully, in order of preference:
///  1. all seven counters in one group (read atomically, same window);
///  2. any openable subset (unsupported events are dropped per-event);
///  3. nothing at all (perf_event_paranoid >= 3, seccomp'd containers,
///     non-Linux): `available()` is false, Start()/Stop() are no-ops and
///     readings report every counter absent — benches keep working and
///     the JSON records carry an explicit unavailability marker.
///
/// Counting covers the calling thread (group reads are incompatible
/// with inheritance into spawned threads), user+kernel, excluded-hv,
/// which needs only perf_event_paranoid <= 2 (the common distro
/// default). Setting HJ_PERF_DISABLE=1 in the environment forces
/// the unavailable path; the bench-smoke tests use it to exercise both
/// schema variants on any host.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when at least one hardware counter opened.
  bool available() const { return available_; }

  /// Why no counters are available ("" when available()).
  const std::string& unavailable_reason() const { return reason_; }

  /// Names of the counters that actually opened, e.g. for logging.
  std::vector<std::string> ActiveCounterNames() const;

  /// Zeroes and enables the group.
  void Start();

  /// Disables the group and captures the reading (values()).
  void Stop();

  /// The reading captured by the last Stop().
  const CounterValues& values() const { return values_; }

  /// True when HJ_PERF_DISABLE=1 forces the unavailable path.
  static bool ForcedOff();

  /// Contents of /proc/sys/kernel/perf_event_paranoid, or -100 when the
  /// file is unreadable (non-Linux).
  static int ParanoidLevel();

 private:
  struct Event;  // pimpl'd: linux-only fields

  bool available_ = false;
  std::string reason_;
  std::vector<Event> events_;
  int group_fd_ = -1;
  CounterValues values_;
};

}  // namespace perf
}  // namespace hashjoin

#endif  // HASHJOIN_PERF_PERF_COUNTERS_H_
