#include "perf/perf_counters.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/logging.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hashjoin {
namespace perf {

std::optional<double> CounterValues::Ipc() const {
  if (!cycles.has_value() || !instructions.has_value() || *cycles == 0) {
    return std::nullopt;
  }
  return double(*instructions) / double(*cycles);
}

JsonValue CounterValues::ToJson() const {
  JsonValue o = JsonValue::Object();
  auto put = [&](const char* name, const std::optional<uint64_t>& v) {
    o.Set(name, v.has_value() ? JsonValue(*v) : JsonValue());
  };
  put("cycles", cycles);
  put("instructions", instructions);
  put("l1d_misses", l1d_misses);
  put("llc_misses", llc_misses);
  put("dtlb_misses", dtlb_misses);
  put("branch_misses", branch_misses);
  put("stalled_cycles", stalled_cycles);
  auto ipc = Ipc();
  o.Set("ipc", ipc.has_value() ? JsonValue(*ipc) : JsonValue());
  o.Set("scaled", scaled);
  o.Set("running_fraction", running_fraction);
  return o;
}

struct PerfCounters::Event {
  const char* name;
  int fd = -1;
  uint64_t id = 0;
  std::optional<uint64_t>* slot = nullptr;
};

bool PerfCounters::ForcedOff() {
  const char* v = std::getenv("HJ_PERF_DISABLE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

int PerfCounters::ParanoidLevel() {
  std::ifstream f("/proc/sys/kernel/perf_event_paranoid");
  int level = -100;
  if (f) f >> level;
  return level;
}

#if defined(__linux__)

namespace {

int PerfEventOpen(perf_event_attr* attr, int group_fd) {
  return int(syscall(SYS_perf_event_open, attr, /*pid=*/0, /*cpu=*/-1,
                     group_fd, /*flags=*/0));
}

perf_event_attr MakeAttr(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  // inherit=1 (counting spawned worker threads) is incompatible with
  // PERF_FORMAT_GROUP reads, so the group counts the calling thread
  // only; multi-threaded records carry wall time + per-thread sim stats
  // instead of a cross-thread counter sum.
  attr.inherit = 0;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                     PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

uint64_t CacheConfig(uint64_t cache, uint64_t op, uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

}  // namespace

PerfCounters::PerfCounters() {
  if (ForcedOff()) {
    reason_ = "disabled by HJ_PERF_DISABLE";
    return;
  }

  struct Spec {
    const char* name;
    uint32_t type;
    uint64_t config;
    std::optional<uint64_t> CounterValues::* slot;
  };
  const Spec specs[] = {
      {"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES,
       &CounterValues::cycles},
      {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
       &CounterValues::instructions},
      {"l1d_misses", PERF_TYPE_HW_CACHE,
       CacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS),
       &CounterValues::l1d_misses},
      {"llc_misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
       &CounterValues::llc_misses},
      {"dtlb_misses", PERF_TYPE_HW_CACHE,
       CacheConfig(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                   PERF_COUNT_HW_CACHE_RESULT_MISS),
       &CounterValues::dtlb_misses},
      {"branch_misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES,
       &CounterValues::branch_misses},
      {"stalled_cycles", PERF_TYPE_HARDWARE,
       PERF_COUNT_HW_STALLED_CYCLES_BACKEND, &CounterValues::stalled_cycles},
  };

  int first_errno = 0;
  for (const Spec& s : specs) {
    perf_event_attr attr = MakeAttr(s.type, s.config);
    int fd = PerfEventOpen(&attr, group_fd_);
    if (fd < 0) {
      if (first_errno == 0) first_errno = errno;
      continue;  // this event is unsupported here; keep the rest
    }
    Event e;
    e.name = s.name;
    e.fd = fd;
    e.slot = &(values_.*(s.slot));
    uint64_t id = 0;
    if (ioctl(fd, PERF_EVENT_IOC_ID, &id) == 0) {
      e.id = id;
    } else {
      close(fd);
      continue;
    }
    if (group_fd_ < 0) group_fd_ = fd;  // first success leads the group
    events_.push_back(e);
  }

  if (events_.empty()) {
    reason_ = std::string("perf_event_open failed: ") +
              std::strerror(first_errno) + " (perf_event_paranoid=" +
              std::to_string(ParanoidLevel()) + ")";
    return;
  }
  available_ = true;
}

PerfCounters::~PerfCounters() {
  for (Event& e : events_) {
    if (e.fd >= 0) close(e.fd);
  }
}

void PerfCounters::Start() {
  if (!available_) return;
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void PerfCounters::Stop() {
  // Reset values but keep slot wiring: slots point into values_.
  values_.scaled = false;
  values_.running_fraction = 1.0;
  values_.time_enabled_ns = 0;
  for (Event& e : events_) *e.slot = std::nullopt;
  if (!available_) return;

  ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);

  // PERF_FORMAT_GROUP layout:
  //   u64 nr; u64 time_enabled; u64 time_running; { u64 value; u64 id; }[nr]
  const size_t max_words = 3 + 2 * events_.size();
  std::vector<uint64_t> buf(max_words, 0);
  ssize_t n = read(group_fd_, buf.data(), buf.size() * sizeof(uint64_t));
  if (n < ssize_t(3 * sizeof(uint64_t))) {
    HJ_LOG(Warning) << "perf counter group read failed: "
                    << std::strerror(errno);
    return;
  }
  uint64_t nr = buf[0];
  uint64_t enabled = buf[1];
  uint64_t running = buf[2];
  values_.time_enabled_ns = enabled;
  double scale = 1.0;
  if (running > 0 && running < enabled) {
    values_.scaled = true;
    values_.running_fraction = double(running) / double(enabled);
    scale = double(enabled) / double(running);
  } else if (running == 0 && enabled > 0) {
    // Group never got scheduled on a PMU; report absence, not zeros.
    return;
  }
  for (uint64_t i = 0; i < nr && 3 + 2 * i + 1 < buf.size(); ++i) {
    uint64_t value = buf[3 + 2 * i];
    uint64_t id = buf[3 + 2 * i + 1];
    for (Event& e : events_) {
      if (e.id == id) {
        *e.slot = uint64_t(double(value) * scale);
        break;
      }
    }
  }
}

#else  // !__linux__

PerfCounters::PerfCounters() {
  reason_ = ForcedOff() ? "disabled by HJ_PERF_DISABLE"
                        : "perf_event_open is linux-only";
}

PerfCounters::~PerfCounters() = default;

void PerfCounters::Start() {}

void PerfCounters::Stop() {
  for (Event& e : events_) *e.slot = std::nullopt;
}

#endif  // __linux__

std::vector<std::string> PerfCounters::ActiveCounterNames() const {
  std::vector<std::string> names;
  names.reserve(events_.size());
  for (const Event& e : events_) names.emplace_back(e.name);
  return names;
}

}  // namespace perf
}  // namespace hashjoin
