#include "perf/calibrate.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "perf/perf_counters.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace hashjoin {
namespace perf {

JsonValue CalibrationResult::ToJson() const {
  JsonValue o = JsonValue::Object();
  o.Set("used_counters", used_counters);
  o.Set("cpu_ghz", cpu_ghz);
  o.Set("load_latency_ns", load_latency_ns);
  o.Set("line_gap_ns", line_gap_ns);
  o.Set("t_cycles", t_cycles);
  o.Set("tnext_cycles", tnext_cycles);
  o.Set("buffer_bytes", buffer_bytes);
  o.Set("max_outstanding", max_outstanding);
  return o;
}

namespace {

constexpr size_t kLineBytes = 64;

// One cache-line-sized chase node: the next-pointer is the only live
// word, so every step is one full cache line fetch with no spatial reuse.
struct alignas(kLineBytes) ChaseNode {
  ChaseNode* next;
  uint8_t pad[kLineBytes - sizeof(ChaseNode*)];
};

// Measurement window: wall nanoseconds plus (optionally) PMU cycles.
struct Window {
  double ns = 0;
  double cycles = 0;  // 0 when counters were unavailable
};

template <typename Fn>
Window TimeBestOf(PerfCounters* counters, int repeats, Fn&& fn) {
  Window best;
  for (int r = 0; r < repeats; ++r) {
    WallTimer timer;
    if (counters != nullptr) counters->Start();
    fn();
    if (counters != nullptr) counters->Stop();
    double ns = double(timer.ElapsedNanos());
    if (r == 0 || ns < best.ns) {
      best.ns = ns;
      best.cycles = 0;
      if (counters != nullptr && counters->values().cycles.has_value()) {
        best.cycles = double(*counters->values().cycles);
      }
    }
  }
  return best;
}

}  // namespace

CalibrationResult CalibrateMachine(const CalibrationOptions& options) {
  CalibrationResult result;
  const uint64_t num_nodes =
      std::max<uint64_t>(options.buffer_bytes / sizeof(ChaseNode), 16);
  result.buffer_bytes = num_nodes * sizeof(ChaseNode);

  // Sattolo's algorithm: a single cycle through all nodes, so the chase
  // visits every line exactly once per lap with no short cycles.
  std::vector<ChaseNode> nodes(num_nodes);
  std::vector<uint64_t> order(num_nodes);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(0xCA11B8);
  for (uint64_t i = num_nodes - 1; i > 0; --i) {
    uint64_t j = rng.NextBounded(i);  // j in [0, i)
    std::swap(order[i], order[j]);
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    nodes[order[i]].next = &nodes[order[(i + 1) % num_nodes]];
  }

  PerfCounters counters;
  PerfCounters* pmu = counters.available() ? &counters : nullptr;

  // --- T: dependent-load chase ---
  ChaseNode* cursor = &nodes[order[0]];
  const uint64_t steps = std::max<uint64_t>(options.chase_steps, 1024);
  ChaseNode* sink = nullptr;
  Window chase = TimeBestOf(pmu, 3, [&] {
    ChaseNode* p = cursor;
    for (uint64_t i = 0; i < steps; ++i) p = p->next;
    sink = p;
  });
  // Defeat dead-code elimination of the chase.
  if (sink == nullptr) HJ_LOG(Fatal) << "chase lost its cursor";
  cursor = sink;

  result.load_latency_ns = chase.ns / double(steps);
  if (chase.cycles > 0) {
    result.used_counters = true;
    result.cpu_ghz = chase.cycles / chase.ns;  // cycles per ns == GHz
    result.t_cycles = uint32_t(chase.cycles / double(steps) + 0.5);
  } else {
    result.cpu_ghz = options.fallback_ghz;
    result.t_cycles =
        uint32_t(result.load_latency_ns * result.cpu_ghz + 0.5);
  }

  // --- Tnext: sequential bandwidth sweep over the same buffer ---
  const uint64_t lines = num_nodes * (sizeof(ChaseNode) / kLineBytes);
  uint64_t checksum = 0;
  Window stream = TimeBestOf(pmu, int(std::max<uint64_t>(
                                      options.stream_passes, 1)),
                             [&] {
    const uint64_t* words =
        reinterpret_cast<const uint64_t*>(nodes.data());
    const uint64_t num_words =
        num_nodes * (sizeof(ChaseNode) / sizeof(uint64_t));
    uint64_t acc = 0;
    for (uint64_t w = 0; w < num_words; w += 8) acc += words[w];
    checksum += acc;
  });
  if (checksum == uint64_t(-1)) HJ_LOG(Info) << "";  // keep `acc` live

  result.line_gap_ns = stream.ns / double(lines);
  if (stream.cycles > 0) {
    result.tnext_cycles = uint32_t(stream.cycles / double(lines) + 0.5);
  } else {
    result.tnext_cycles =
        uint32_t(result.line_gap_ns * result.cpu_ghz + 0.5);
  }

  // --- max_outstanding: LFB/MSHR concurrency knee ---
  if (options.probe_lfb) {
    tune::LfbProbeOptions lfb = options.lfb;
    if (lfb.buffer_bytes == 0) lfb.buffer_bytes = options.buffer_bytes;
    result.max_outstanding = tune::ProbeLfbConcurrency(lfb).max_outstanding;
  }

  SanitizeCalibration(&result);
  return result;
}

void SanitizeCalibration(CalibrationResult* result) {
  // Tnext = 0 is the documented no-feasible-D degenerate input of
  // SwpPrefetchModel::MinDistance; truncation in the ns→cycles
  // conversion can produce it on fast-DRAM/low-GHz hosts.
  if (result->tnext_cycles == 0) result->tnext_cycles = 1;
  // A dependent miss can never be cheaper than a pipelined one.
  if (result->t_cycles < result->tnext_cycles) {
    result->t_cycles = result->tnext_cycles;
  }
  if (result->t_cycles == 0) result->t_cycles = 1;
}

model::ParamChoice TuneFromCalibration(const CalibrationResult& calibration,
                                       const model::CodeCosts& costs) {
  return model::ChooseParams(costs, calibration.ToMachineParams(),
                             /*fallback_group=*/19,
                             /*fallback_distance=*/1);
}

}  // namespace perf
}  // namespace hashjoin
