#include "perf/bench_reporter.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "util/logging.h"
#include "util/timer.h"

namespace hashjoin {
namespace perf {

namespace {

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

std::optional<uint64_t> MedianCounter(
    const std::vector<std::optional<uint64_t>>& per_trial) {
  std::vector<double> present;
  for (const auto& v : per_trial) {
    if (v.has_value()) present.push_back(double(*v));
  }
  if (present.empty()) return std::nullopt;
  return uint64_t(Median(std::move(present)));
}

}  // namespace

BenchReporter::BenchReporter(Options options)
    : options_(std::move(options)) {
  HJ_CHECK(!options_.bench_name.empty()) << "bench_name is required";
  HJ_CHECK(options_.trials >= 1);
  output_path_ = options_.output_path.empty()
                     ? "BENCH_" + options_.bench_name + ".json"
                     : options_.output_path;
  doc_ = JsonValue::Object();
  doc_.Set("bench", options_.bench_name);
  doc_.Set("schema_version", 1);
  JsonValue host = JsonValue::Object();
  host.Set("nproc", uint64_t(std::thread::hardware_concurrency()));
#if defined(__x86_64__)
  host.Set("arch", "x86_64");
#elif defined(__aarch64__)
  host.Set("arch", "aarch64");
#else
  host.Set("arch", "unknown");
#endif
  host.Set("perf_event_paranoid", int64_t(PerfCounters::ParanoidLevel()));
  bool avail = options_.collect_counters && counters_.available();
  host.Set("counters_available", avail);
  if (!avail) {
    host.Set("counters_unavailable_reason",
             options_.collect_counters ? counters_.unavailable_reason()
                                       : "disabled by caller");
  }
  doc_.Set("host", std::move(host));
  doc_.Set("calibration", JsonValue());
  doc_.Set("records", JsonValue::Array());
}

bool BenchReporter::counters_available() const {
  return options_.collect_counters && counters_.available();
}

void BenchReporter::SetCalibration(const CalibrationResult& calibration) {
  doc_.Set("calibration", calibration.ToJson());
}

JsonValue& BenchReporter::AddRecord(const std::string& name,
                                    JsonValue config,
                                    const std::function<void()>& body,
                                    const std::function<void()>& setup) {
  for (int w = 0; w < options_.warmup; ++w) {
    if (setup) setup();
    body();
  }

  std::vector<double> wall;
  wall.reserve(size_t(options_.trials));
  const char* counter_names[] = {"cycles",      "instructions",
                                 "l1d_misses",  "llc_misses",
                                 "dtlb_misses", "branch_misses"};
  std::vector<std::vector<std::optional<uint64_t>>> counter_trials(6);
  bool any_scaled = false;
  double min_running_fraction = 1.0;
  const bool use_counters = counters_available();

  for (int t = 0; t < options_.trials; ++t) {
    if (setup) setup();
    WallTimer timer;
    if (use_counters) counters_.Start();
    body();
    if (use_counters) counters_.Stop();
    wall.push_back(timer.ElapsedSeconds());
    if (use_counters) {
      const CounterValues& v = counters_.values();
      const std::optional<uint64_t>* slots[] = {
          &v.cycles,      &v.instructions, &v.l1d_misses,
          &v.llc_misses,  &v.dtlb_misses,  &v.branch_misses};
      for (int i = 0; i < 6; ++i) counter_trials[i].push_back(*slots[i]);
      any_scaled |= v.scaled;
      min_running_fraction =
          std::min(min_running_fraction, v.running_fraction);
    }
  }

  JsonValue record = JsonValue::Object();
  record.Set("name", name);
  record.Set("config", std::move(config));
  record.Set("trials", int64_t(options_.trials));
  record.Set("warmup", int64_t(options_.warmup));

  JsonValue wall_obj = JsonValue::Object();
  wall_obj.Set("median", Median(wall));
  wall_obj.Set("min", *std::min_element(wall.begin(), wall.end()));
  double mean = 0;
  for (double s : wall) mean += s;
  wall_obj.Set("mean", mean / double(wall.size()));
  JsonValue all = JsonValue::Array();
  for (double s : wall) all.Append(s);
  wall_obj.Set("all", std::move(all));
  record.Set("wall_seconds", std::move(wall_obj));

  if (use_counters) {
    JsonValue c = JsonValue::Object();
    bool any_present = false;
    for (int i = 0; i < 6; ++i) {
      auto median = MedianCounter(counter_trials[i]);
      any_present |= median.has_value();
      c.Set(counter_names[i],
            median.has_value() ? JsonValue(*median) : JsonValue());
    }
    if (any_present) {
      const JsonValue* cyc = c.Find("cycles");
      const JsonValue* ins = c.Find("instructions");
      if (cyc != nullptr && ins != nullptr && !cyc->is_null() &&
          !ins->is_null() && cyc->AsInt() > 0) {
        c.Set("ipc", double(ins->AsInt()) / double(cyc->AsInt()));
      }
      c.Set("scaled", any_scaled);
      c.Set("running_fraction", min_running_fraction);
      record.Set("counters", std::move(c));
    } else {
      record.Set("counters", JsonValue());
      record.Set("counters_unavailable",
                 "counter group never scheduled on a PMU");
    }
  } else {
    record.Set("counters", JsonValue());
    record.Set("counters_unavailable",
               options_.collect_counters ? counters_.unavailable_reason()
                                         : "disabled by caller");
  }

  return AddRawRecord(std::move(record));
}

JsonValue& BenchReporter::AddRawRecord(JsonValue record) {
  JsonValue* records = doc_.FindMutable("records");
  HJ_CHECK(records != nullptr);
  return records->Append(std::move(record));
}

Status BenchReporter::Write() const { return WriteJsonFile(output_path_, doc_); }

}  // namespace perf
}  // namespace hashjoin
