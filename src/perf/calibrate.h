#ifndef HASHJOIN_PERF_CALIBRATE_H_
#define HASHJOIN_PERF_CALIBRATE_H_

#include <cstdint>

#include "model/cost_model.h"
#include "tune/lfb_probe.h"
#include "util/json_writer.h"

namespace hashjoin {
namespace perf {

/// Host memory-system parameters measured by CalibrateMachine(): the
/// paper's T (full dependent-miss latency) and Tnext (pipelined-miss
/// gap, the inverse of memory bandwidth), expressed both in nanoseconds
/// (what the clock measures) and in cycles (what model::MachineParams
/// consumes).
struct CalibrationResult {
  bool used_counters = false;  // cycle counts from the PMU, not the TSC guess
  double cpu_ghz = 0;          // effective frequency during the chase
  double load_latency_ns = 0;  // dependent-load pointer chase, per load
  double line_gap_ns = 0;      // streaming read, per 64B cache line
  uint32_t t_cycles = 0;       // T  = load_latency_ns * cpu_ghz
  uint32_t tnext_cycles = 0;   // Tnext = line_gap_ns * cpu_ghz
  uint64_t buffer_bytes = 0;   // working-set size the chase ran over
  /// Measured LFB/MSHR outstanding-miss ceiling (tune::ProbeLfbConcurrency
  /// knee); 0 = not measured or the probe judged itself unreliable.
  uint32_t max_outstanding = 0;

  model::MachineParams ToMachineParams() const {
    return model::MachineParams{t_cycles, tnext_cycles, max_outstanding};
  }

  JsonValue ToJson() const;
};

/// Options for CalibrateMachine. The defaults walk a 64MB working set —
/// far beyond any LLC, so the chase measures DRAM latency; shrink
/// `buffer_bytes` in tests for speed (the numbers then reflect cache
/// latency, which is fine for exercising the pipeline).
struct CalibrationOptions {
  uint64_t buffer_bytes = 64ull << 20;
  uint64_t chase_steps = 2'000'000;   // dependent loads to time
  uint64_t stream_passes = 4;         // sequential sweeps to time
  /// Used to convert ns to cycles when no cycle counter is available
  /// (the PMU measures the true frequency when it is).
  double fallback_ghz = 3.0;
  /// Also run tune::ProbeLfbConcurrency and record the knee in
  /// `max_outstanding`. The probe's buffer defaults to `lfb.buffer_bytes`
  /// unless that is 0, in which case it inherits `buffer_bytes` above
  /// (so smoke configurations shrink both probes together).
  bool probe_lfb = true;
  tune::LfbProbeOptions lfb = [] {
    tune::LfbProbeOptions o;
    o.buffer_bytes = 0;  // inherit CalibrationOptions::buffer_bytes
    return o;
  }();
};

/// Measures T with a random-permutation pointer chase (each load's
/// address depends on the previous load — the paper's "dependent miss")
/// and Tnext with a hardware-prefetcher-friendly sequential sweep
/// (bandwidth-bound, so time per line is the pipelined gap). Cycle
/// conversion uses the PMU cycle counter when available, else
/// `fallback_ghz`. Deterministic for a fixed seed; wall-clock noise is
/// bounded by taking the fastest of 3 timing windows.
CalibrationResult CalibrateMachine(const CalibrationOptions& options = {});

/// Clamps a calibration to the model's documented-feasible domain:
/// Tnext >= 1 (MinDistance has no feasible D at Tnext = 0 with zero
/// stage costs — the truncation in the ns→cycles conversion can emit
/// exactly that on fast-DRAM/low-GHz hosts), T >= Tnext >= 1 (a
/// dependent miss can never be cheaper than a pipelined one).
/// CalibrateMachine applies this itself; it is public so synthetic or
/// deserialized calibrations get the same guarantee.
void SanitizeCalibration(CalibrationResult* result);

/// The measured-machine → kernel-parameter pipeline: calibration output
/// plus per-stage code costs go through Theorems 1 and 2
/// (model::ChooseParams), with the 0 "infeasible" sentinels clamped to
/// the paper's T=150 optima (G=19, D=1) and a warning logged.
model::ParamChoice TuneFromCalibration(const CalibrationResult& calibration,
                                       const model::CodeCosts& costs);

}  // namespace perf
}  // namespace hashjoin

#endif  // HASHJOIN_PERF_CALIBRATE_H_
