#ifndef HASHJOIN_STORAGE_SLOTTED_PAGE_H_
#define HASHJOIN_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <cstring>

namespace hashjoin {

/// Default page size; matches the paper's simulated machine (8KB pages).
inline constexpr uint32_t kDefaultPageSize = 8 * 1024;

/// A slotted page view over a caller-owned, page-sized byte buffer.
///
/// Layout:
///   [PageHeader][tuple data grows ->]   ...   [<- slot array grows]
///
/// Each slot records the tuple's offset/length *and a 4-byte hash code*.
/// Storing hash codes in the slot area of intermediate partitions is the
/// paper's §7.1 optimization: the partition phase computes each join
/// key's hash code once, memoizes it in the slot, and the join phase
/// reuses it instead of re-reading the key and re-hashing. The join
/// kernels read slots sequentially (cache friendly), then jump to tuple
/// bodies.
class SlottedPage {
 public:
  struct PageHeader {
    uint16_t slot_count;
    uint16_t free_offset;  // start of unused space (grows up)
    uint32_t page_size;
    /// CRC32 over the whole page with this field zeroed; stamped before
    /// a page goes to storage, verified after it comes back. 0 on pages
    /// that were never stamped (Format clears it).
    uint32_t checksum;
  };

  struct Slot {
    uint16_t offset;
    uint16_t length;
    uint32_t hash_code;  // memoized hash of the join key (may be 0)
  };

  SlottedPage() = default;
  explicit SlottedPage(void* buffer) : base_(static_cast<uint8_t*>(buffer)) {}

  /// Formats an empty page of `page_size` bytes in `buffer`.
  static SlottedPage Format(void* buffer, uint32_t page_size);

  /// Attaches to an already formatted page.
  static SlottedPage Attach(void* buffer) { return SlottedPage(buffer); }

  /// Appends a tuple; returns the slot index, or -1 if the page is full.
  int AddTuple(const void* data, uint16_t length, uint32_t hash_code = 0);

  /// Reserves space for a tuple of `length` bytes and returns a writable
  /// pointer to it (or nullptr if full). Lets the partition kernels copy
  /// field-by-field without a staging buffer.
  uint8_t* AllocTuple(uint16_t length, uint32_t hash_code, int* slot_index);

  uint16_t slot_count() const { return header()->slot_count; }
  uint32_t page_size() const { return header()->page_size; }

  const uint8_t* GetTuple(int slot, uint16_t* length) const;
  uint8_t* GetMutableTuple(int slot, uint16_t* length);
  uint32_t GetHashCode(int slot) const { return GetSlot(slot)->hash_code; }
  void SetHashCode(int slot, uint32_t code) {
    GetMutableSlot(slot)->hash_code = code;
  }

  /// Bytes still available for one more tuple (data + slot entry).
  uint32_t FreeSpace() const;

  /// CRC32 over the full page with the header checksum field treated as
  /// zero (so stamping does not change what is summed).
  uint32_t ComputeChecksum() const;

  /// Writes ComputeChecksum() into the header. Call after the last
  /// mutation, right before the page is handed to storage.
  void StampChecksum();

  /// True iff the stored checksum matches the page contents. Pages are
  /// mutated in memory after Format/AddTuple without re-stamping, so only
  /// call this on pages that round-tripped through storage.
  bool VerifyChecksum() const;

  /// Address of the slot array entry (used by prefetching kernels).
  const Slot* GetSlot(int i) const {
    return reinterpret_cast<const Slot*>(base_ + header()->page_size) - 1 - i;
  }

  uint8_t* data() { return base_; }
  const uint8_t* data() const { return base_; }

 private:
  const PageHeader* header() const {
    return reinterpret_cast<const PageHeader*>(base_);
  }
  PageHeader* mutable_header() {
    return reinterpret_cast<PageHeader*>(base_);
  }
  Slot* GetMutableSlot(int i) {
    return reinterpret_cast<Slot*>(base_ + header()->page_size) - 1 - i;
  }

  uint8_t* base_ = nullptr;
};

}  // namespace hashjoin

#endif  // HASHJOIN_STORAGE_SLOTTED_PAGE_H_
