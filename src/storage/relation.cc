#include "storage/relation.h"

#include "util/logging.h"

namespace hashjoin {

Relation::Relation(Schema schema, uint32_t page_size)
    : schema_(std::move(schema)), page_size_(page_size) {
  HJ_CHECK(page_size_ >= 256);
}

void Relation::AddPage() {
  // Page-aligned so the simulator's TLB model sees realistic page
  // boundaries.
  void* raw = AlignedAlloc(page_size_, page_size_);
  pages_.emplace_back(static_cast<uint8_t*>(raw));
  SlottedPage::Format(pages_.back().get(), page_size_);
  append_page_open_ = true;
}

uint8_t* Relation::AllocAppend(uint16_t length, uint32_t hash_code) {
  if (pages_.empty()) AddPage();
  SlottedPage pg = SlottedPage::Attach(pages_.back().get());
  uint8_t* dst = pg.AllocTuple(length, hash_code, nullptr);
  if (dst == nullptr) {
    AddPage();
    pg = SlottedPage::Attach(pages_.back().get());
    dst = pg.AllocTuple(length, hash_code, nullptr);
    HJ_CHECK(dst != nullptr) << "tuple larger than a page";
  }
  ++num_tuples_;
  data_bytes_ += length;
  return dst;
}

void Relation::Append(const void* data, uint16_t length,
                      uint32_t hash_code) {
  uint8_t* dst = AllocAppend(length, hash_code);
  std::memcpy(dst, data, length);
}

void Relation::AdoptPage(AlignedBuffer<uint8_t> page) {
  SlottedPage pg = SlottedPage::Attach(page.get());
  HJ_CHECK(pg.page_size() == page_size_);
  num_tuples_ += pg.slot_count();
  for (int s = 0; s < pg.slot_count(); ++s) {
    uint16_t len = 0;
    pg.GetTuple(s, &len);
    data_bytes_ += len;
  }
  // Keep the open append page (if any) last so AllocAppend keeps
  // filling it; otherwise adopted pages append in arrival order.
  if (append_page_open_ && !pages_.empty()) {
    pages_.insert(pages_.end() - 1, std::move(page));
  } else {
    pages_.push_back(std::move(page));
  }
}

void Relation::AppendCopiedPage(const void* page_bytes) {
  const SlottedPage src =
      SlottedPage::Attach(const_cast<void*>(page_bytes));
  HJ_CHECK(src.page_size() == page_size_);
  void* raw = AlignedAlloc(page_size_, page_size_);
  std::memcpy(raw, page_bytes, page_size_);
  AdoptPage(AlignedBuffer<uint8_t>(static_cast<uint8_t*>(raw)));
}

const uint8_t* Relation::PeekAppendAddr() const {
  if (pages_.empty() || !append_page_open_) return nullptr;
  const SlottedPage pg = page(pages_.size() - 1);
  // Mirrors SlottedPage::AllocTuple's bump pointer.
  return pg.data() +
         reinterpret_cast<const SlottedPage::PageHeader*>(pg.data())
             ->free_offset;
}

void Relation::Absorb(Relation* other) {
  HJ_CHECK(other != this);
  HJ_CHECK(other->page_size_ == page_size_);
  // Close our open append page: absorbed pages land after it, so it can
  // no longer be the AllocAppend target.
  append_page_open_ = false;
  for (auto& page : other->pages_) pages_.push_back(std::move(page));
  num_tuples_ += other->num_tuples_;
  data_bytes_ += other->data_bytes_;
  other->Clear();
}

void Relation::Clear() {
  pages_.clear();
  num_tuples_ = 0;
  data_bytes_ = 0;
  append_page_open_ = false;
}

}  // namespace hashjoin
