#include "storage/disk.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "util/logging.h"

namespace hashjoin {

SimulatedDisk::SimulatedDisk(const DiskConfig& config) : config_(config) {
  HJ_CHECK(config_.bandwidth_mb_per_s > 0);
  page_transfer_us_ =
      double(config_.page_size) / (config_.bandwidth_mb_per_s * 1e6) * 1e6 +
      config_.request_latency_us;
}

void SimulatedDisk::Reserve(uint64_t num_pages) {
  while (num_pages_ < num_pages) {
    void* raw = AlignedAlloc(config_.page_size, kCacheLineSize);
    store_.emplace_back(static_cast<uint8_t*>(raw));
    ++num_pages_;
  }
}

void SimulatedDisk::ChargeTransfer() {
  busy_us_ += static_cast<uint64_t>(page_transfer_us_);
  // Queue-server pacing: an idle disk does not bank time, and the sleep
  // debt is paid in chunks large enough to dodge timer granularity.
  double now_us = double(wall_.ElapsedNanos()) * 1e-3;
  if (virtual_us_ < now_us) virtual_us_ = now_us;
  virtual_us_ += page_transfer_us_;
  double debt_us = virtual_us_ - now_us;
  if (debt_us > 2000.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(debt_us)));
  }
}

Status SimulatedDisk::ReadPage(uint64_t page, void* dst) {
  if (page >= num_pages_) {
    return Status::OutOfRange("read past end of disk");
  }
  ChargeTransfer();
  std::memcpy(dst, store_[page].get(), config_.page_size);
  return Status::OK();
}

Status SimulatedDisk::WritePage(uint64_t page, const void* src) {
  if (page >= num_pages_) Reserve(page + 1);
  ChargeTransfer();
  std::memcpy(store_[page].get(), src, config_.page_size);
  return Status::OK();
}

}  // namespace hashjoin
