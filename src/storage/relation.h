#ifndef HASHJOIN_STORAGE_RELATION_H_
#define HASHJOIN_STORAGE_RELATION_H_

#include <cstdint>
#include <vector>

#include "storage/schema.h"
#include "storage/slotted_page.h"
#include "util/aligned.h"

namespace hashjoin {

/// An in-memory paged relation: a schema plus a sequence of slotted
/// pages. The CPU-performance experiments keep relations and intermediate
/// partitions memory-resident (the paper stores them as files "for
/// simplicity" and measures user-mode CPU time only; the I/O path is
/// exercised separately by the buffer manager and Figure 9).
class Relation {
 public:
  explicit Relation(Schema schema, uint32_t page_size = kDefaultPageSize);

  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  /// Appends a tuple, starting a new page when the current one is full.
  void Append(const void* data, uint16_t length, uint32_t hash_code = 0);

  /// Reserves space for a tuple and returns a writable pointer to it.
  uint8_t* AllocAppend(uint16_t length, uint32_t hash_code = 0);

  /// Takes ownership of an already-formatted page.
  void AdoptPage(AlignedBuffer<uint8_t> page);

  /// Copies an already-formatted page's bytes in (the partition phase
  /// "writes out" full output buffers this way, mirroring an async disk
  /// write that recycles the caller's buffer).
  void AppendCopiedPage(const void* page_bytes);

  /// Address where the next appended tuple's bytes will start if it fits
  /// in the current page (used only as a prefetch hint; a page switch may
  /// place the tuple elsewhere). Null if no page is open.
  const uint8_t* PeekAppendAddr() const;

  const Schema& schema() const { return schema_; }
  uint32_t page_size() const { return page_size_; }
  size_t num_pages() const { return pages_.size(); }
  uint64_t num_tuples() const { return num_tuples_; }

  /// Total tuple payload bytes (excluding page headers/slots).
  uint64_t data_bytes() const { return data_bytes_; }

  SlottedPage page(size_t i) {
    return SlottedPage::Attach(pages_[i].get());
  }
  const SlottedPage page(size_t i) const {
    return SlottedPage::Attach(const_cast<uint8_t*>(pages_[i].get()));
  }

  /// Calls f(tuple_ptr, length, hash_code) for every tuple in order.
  template <typename F>
  void ForEachTuple(F&& f) const {
    for (size_t p = 0; p < pages_.size(); ++p) {
      const SlottedPage pg = page(p);
      for (int s = 0; s < pg.slot_count(); ++s) {
        uint16_t len = 0;
        const uint8_t* t = pg.GetTuple(s, &len);
        f(t, len, pg.GetHashCode(s));
      }
    }
  }

  /// Moves every page of `other` to the end of this relation (schemas
  /// must match), leaving `other` empty. The parallel executor uses this
  /// to concatenate per-worker output sinks without copying.
  void Absorb(Relation* other);

  /// Drops all pages.
  void Clear();

 private:
  void AddPage();

  Schema schema_;
  uint32_t page_size_;
  std::vector<AlignedBuffer<uint8_t>> pages_;
  uint64_t num_tuples_ = 0;
  uint64_t data_bytes_ = 0;
  bool append_page_open_ = false;  // last page is the AllocAppend target
};

}  // namespace hashjoin

#endif  // HASHJOIN_STORAGE_RELATION_H_
