#include "storage/slotted_page.h"

#include <cstddef>

#include "util/checksum.h"
#include "util/logging.h"

namespace hashjoin {

SlottedPage SlottedPage::Format(void* buffer, uint32_t page_size) {
  HJ_CHECK(page_size >= sizeof(PageHeader) + sizeof(Slot));
  SlottedPage page(buffer);
  PageHeader* h = page.mutable_header();
  h->slot_count = 0;
  h->free_offset = sizeof(PageHeader);
  h->page_size = page_size;
  h->checksum = 0;
  return page;
}

uint32_t SlottedPage::ComputeChecksum() const {
  // Sum the page with the checksum field replaced by zeroes, chaining
  // the CRC across the three byte ranges.
  const size_t field_off = offsetof(PageHeader, checksum);
  const uint32_t zero = 0;
  uint32_t crc = Crc32(base_, field_off);
  crc = Crc32(&zero, sizeof(zero), crc);
  crc = Crc32(base_ + field_off + sizeof(zero),
              header()->page_size - field_off - sizeof(zero), crc);
  return crc;
}

void SlottedPage::StampChecksum() {
  mutable_header()->checksum = ComputeChecksum();
}

bool SlottedPage::VerifyChecksum() const {
  return header()->checksum == ComputeChecksum();
}

uint32_t SlottedPage::FreeSpace() const {
  const PageHeader* h = header();
  uint32_t slots_bytes = (h->slot_count + 1u) * sizeof(Slot);
  uint32_t used = h->free_offset + slots_bytes;
  return used >= h->page_size ? 0 : h->page_size - used;
}

uint8_t* SlottedPage::AllocTuple(uint16_t length, uint32_t hash_code,
                                 int* slot_index) {
  PageHeader* h = mutable_header();
  uint32_t needed = length;
  if (FreeSpace() < needed) return nullptr;
  int idx = h->slot_count;
  Slot* slot = GetMutableSlot(idx);
  slot->offset = h->free_offset;
  slot->length = length;
  slot->hash_code = hash_code;
  uint8_t* dst = base_ + h->free_offset;
  h->free_offset = static_cast<uint16_t>(h->free_offset + length);
  h->slot_count = static_cast<uint16_t>(h->slot_count + 1);
  if (slot_index != nullptr) *slot_index = idx;
  return dst;
}

int SlottedPage::AddTuple(const void* data, uint16_t length,
                          uint32_t hash_code) {
  int idx = -1;
  uint8_t* dst = AllocTuple(length, hash_code, &idx);
  if (dst == nullptr) return -1;
  std::memcpy(dst, data, length);
  return idx;
}

const uint8_t* SlottedPage::GetTuple(int slot, uint16_t* length) const {
  HJ_DCHECK(slot >= 0 && slot < header()->slot_count);
  const Slot* s = GetSlot(slot);
  if (length != nullptr) *length = s->length;
  return base_ + s->offset;
}

uint8_t* SlottedPage::GetMutableTuple(int slot, uint16_t* length) {
  HJ_DCHECK(slot >= 0 && slot < header()->slot_count);
  const Slot* s = GetSlot(slot);
  if (length != nullptr) *length = s->length;
  return base_ + s->offset;
}

}  // namespace hashjoin
