#include "storage/buffer_manager.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "util/checksum.h"
#include "util/logging.h"

namespace hashjoin {

uint32_t RetryPolicy::BackoffUs(uint32_t attempt) const {
  double us = double(initial_backoff_us) * std::pow(multiplier, attempt);
  if (us > double(max_backoff_us)) us = double(max_backoff_us);
  return uint32_t(us);
}

BufferManager::BufferManager(const BufferManagerConfig& config)
    : config_(config) {
  HJ_CHECK(config_.num_disks >= 1);
  HJ_CHECK(config_.stripe_unit_pages >= 1);
  HJ_CHECK(config_.io_prefetch_depth >= 1);
  HJ_CHECK(config_.retry.max_attempts >= 1);
  // A bounded retry loop can only outlast a bounded fault burst.
  if (config_.disk.fault.enabled()) {
    HJ_CHECK(config_.retry.max_attempts >
             config_.disk.fault.max_consecutive_faults)
        << "retry budget must exceed the injector's consecutive-fault cap";
  }
  for (uint32_t d = 0; d < config_.num_disks; ++d) {
    auto w = std::make_unique<DiskWorker>();
    w->disk = std::make_unique<FaultInjectingDisk>(config_.disk,
                                                   /*seed_salt=*/d + 1);
    if (config_.verify_writes) {
      void* raw = AlignedAlloc(config_.disk.page_size, kCacheLineSize);
      w->verify_scratch = AlignedBuffer<uint8_t>(static_cast<uint8_t*>(raw));
    }
    disks_.push_back(std::move(w));
  }
  for (auto& w : disks_) {
    w->thread = std::thread([this, worker = w.get()] { WorkerLoop(worker); });
  }
}

BufferManager::~BufferManager() {
  for (auto& w : disks_) {
    auto stop = std::make_unique<Request>();
    stop->type = Request::Type::kStop;
    {
      MutexLock lock(w->mu);
      w->queue.push_back(std::move(stop));
    }
    w->cv.NotifyOne();
  }
  for (auto& w : disks_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void BufferManager::Backoff(uint32_t attempt) {
  uint32_t us = config_.retry.BackoffUs(attempt);
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

Status BufferManager::ReadWithRetry(DiskWorker* w, const Request& req) {
  Status last;
  for (uint32_t attempt = 0; attempt < config_.retry.max_attempts;
       ++attempt) {
    bytes_read_.fetch_add(config_.disk.page_size, std::memory_order_relaxed);
    last = w->disk->ReadPage(req.disk_page, req.read_dst);
    if (!last.ok()) {
      if (last.code() != StatusCode::kIOError) return last;  // permanent
      if (attempt + 1 < config_.retry.max_attempts) {
        read_retries_.fetch_add(1, std::memory_order_relaxed);
        Backoff(attempt);
      }
      continue;
    }
    if (req.has_crc &&
        Crc32(req.read_dst, config_.disk.page_size) != req.expected_crc) {
      checksum_failures_.fetch_add(1, std::memory_order_relaxed);
      last = Status::DataLoss("page checksum mismatch");
      if (attempt + 1 < config_.retry.max_attempts) {
        read_retries_.fetch_add(1, std::memory_order_relaxed);
        Backoff(attempt);
      }
      continue;
    }
    return Status::OK();
  }
  return last;
}

Status BufferManager::RawReadWithRetry(DiskWorker* w, uint64_t disk_page,
                                       uint8_t* dst) {
  Status last;
  for (uint32_t attempt = 0; attempt < config_.retry.max_attempts;
       ++attempt) {
    bytes_read_.fetch_add(config_.disk.page_size, std::memory_order_relaxed);
    last = w->disk->ReadPage(disk_page, dst);
    if (last.ok() || last.code() != StatusCode::kIOError) return last;
    if (attempt + 1 < config_.retry.max_attempts) {
      read_retries_.fetch_add(1, std::memory_order_relaxed);
      Backoff(attempt);
    }
  }
  return last;
}

Status BufferManager::WriteWithRetry(DiskWorker* w, const Request& req) {
  Status last;
  for (uint32_t attempt = 0; attempt < config_.retry.max_attempts;
       ++attempt) {
    bytes_written_.fetch_add(config_.disk.page_size,
                             std::memory_order_relaxed);
    last = w->disk->WritePage(req.disk_page, req.write_data.get());
    if (!last.ok()) {
      if (last.code() != StatusCode::kIOError) return last;  // permanent
      if (attempt + 1 < config_.retry.max_attempts) {
        write_retries_.fetch_add(1, std::memory_order_relaxed);
        Backoff(attempt);
      }
      continue;
    }
    if (config_.verify_writes && req.has_crc) {
      // Read the page back and compare checksums before declaring the
      // write durable — the only way to catch a torn write, which
      // reports success.
      Status rb = RawReadWithRetry(w, req.disk_page, w->verify_scratch.get());
      if (!rb.ok()) return rb;
      if (Crc32(w->verify_scratch.get(), config_.disk.page_size) !=
          req.expected_crc) {
        write_verify_failures_.fetch_add(1, std::memory_order_relaxed);
        last = Status::DataLoss("write verification failed (torn page)");
        if (attempt + 1 < config_.retry.max_attempts) {
          write_retries_.fetch_add(1, std::memory_order_relaxed);
          Backoff(attempt);
        }
        continue;
      }
    }
    return Status::OK();
  }
  return last;
}

void BufferManager::WorkerLoop(DiskWorker* w) {
  for (;;) {
    std::unique_ptr<Request> req;
    {
      MutexLock lock(w->mu);
      while (w->queue.empty()) w->cv.Wait(lock);
      req = std::move(w->queue.front());
      w->queue.pop_front();
    }
    switch (req->type) {
      case Request::Type::kStop:
        return;
      case Request::Type::kRead:
        req->done.set_value(ReadWithRetry(w, *req));
        break;
      case Request::Type::kWrite: {
        Status s = WriteWithRetry(w, *req);
        if (!s.ok()) {
          MutexLock lock(writes_mu_);
          if (first_write_error_.ok()) first_write_error_ = s;
        }
        req->done.set_value(std::move(s));
        uint64_t left = pending_writes_.fetch_sub(1) - 1;
        if (left == 0) {
          // Taking writes_mu_ before notifying orders this decrement
          // with FlushWrites' predicate check — without it the notify
          // could fire between that check and the wait.
          MutexLock lock(writes_mu_);
          writes_cv_.NotifyAll();
        }
        break;
      }
    }
  }
}

BufferManager::FileId BufferManager::CreateFile() {
  MutexLock lock(files_mu_);
  files_.emplace_back();
  return FileId(files_.size() - 1);
}

uint64_t BufferManager::FileNumPages(FileId file) const {
  MutexLock lock(files_mu_);
  return files_[file].pages.size();
}

void BufferManager::WritePageAsync(FileId file, uint64_t page_index,
                                   const void* data) {
  uint32_t disk_id = DiskOf(file, page_index);
  DiskWorker* w = disks_[disk_id].get();
  auto req = std::make_unique<Request>();
  req->type = Request::Type::kWrite;
  void* copy = AlignedAlloc(config_.disk.page_size, kCacheLineSize);
  std::memcpy(copy, data, config_.disk.page_size);
  req->write_data = AlignedBuffer<uint8_t>(static_cast<uint8_t*>(copy));
  if (config_.checksum_pages) {
    req->expected_crc = Crc32(req->write_data.get(), config_.disk.page_size);
    req->has_crc = true;
  }
  {
    MutexLock lock(files_mu_);
    FileMeta& meta = files_[file];
    if (page_index < meta.pages.size()) {
      req->disk_page = meta.pages[page_index].disk_page;
      meta.pages[page_index].crc = req->expected_crc;
    } else {
      HJ_CHECK(page_index == meta.pages.size())
          << "file pages must be written densely";
      MutexLock wlock(w->mu);
      PagePlacement placement;
      placement.disk = disk_id;
      placement.disk_page = w->next_free_page++;
      placement.crc = req->expected_crc;
      req->disk_page = placement.disk_page;
      meta.pages.push_back(placement);
    }
  }
  pending_writes_.fetch_add(1);
  {
    MutexLock lock(w->mu);
    w->queue.push_back(std::move(req));
  }
  w->cv.NotifyOne();
}

Status BufferManager::FlushWrites() {
  WallTimer wait;
  MutexLock lock(writes_mu_);
  while (pending_writes_.load() != 0) writes_cv_.Wait(lock);
  main_stall_ns_.fetch_add(wait.ElapsedNanos());
  Status s = std::move(first_write_error_);
  first_write_error_ = Status::OK();
  return s;
}

std::future<Status> BufferManager::EnqueueRead(FileId file,
                                               uint64_t page_index,
                                               uint8_t* dst) {
  uint32_t disk_id;
  auto req = std::make_unique<Request>();
  req->type = Request::Type::kRead;
  req->read_dst = dst;
  {
    MutexLock lock(files_mu_);
    const FileMeta& meta = files_[file];
    HJ_CHECK(page_index < meta.pages.size()) << "read past end of file";
    disk_id = meta.pages[page_index].disk;
    req->disk_page = meta.pages[page_index].disk_page;
    if (config_.checksum_pages) {
      req->expected_crc = meta.pages[page_index].crc;
      req->has_crc = true;
    }
  }
  std::future<Status> fut = req->done.get_future();
  DiskWorker* w = disks_[disk_id].get();
  {
    MutexLock lock(w->mu);
    w->queue.push_back(std::move(req));
  }
  w->cv.NotifyOne();
  return fut;
}

std::vector<double> BufferManager::DiskBusySeconds() const {
  std::vector<double> result;
  result.reserve(disks_.size());
  for (const auto& w : disks_) result.push_back(w->disk->busy_seconds());
  return result;
}

double BufferManager::max_disk_busy_seconds() const {
  double mx = 0;
  for (const auto& w : disks_) {
    mx = std::max(mx, w->disk->busy_seconds());
  }
  return mx;
}

void BufferManager::SetReadAheadBudget(std::function<uint64_t()> bytes_fn) {
  auto holder =
      bytes_fn ? std::make_shared<const std::function<uint64_t()>>(
                     std::move(bytes_fn))
               : nullptr;
  MutexLock lock(readahead_mu_);
  readahead_budget_ = std::move(holder);
}

uint32_t BufferManager::ReadAheadWindow() {
  std::shared_ptr<const std::function<uint64_t()>> fn;
  {
    MutexLock lock(readahead_mu_);
    fn = readahead_budget_;
  }
  uint32_t depth = config_.io_prefetch_depth;
  if (fn == nullptr) return depth;
  uint64_t frames = (*fn)() / config_.disk.page_size;
  // Floor of 2: one frame holds the page the caller is consuming, one
  // keeps the scan moving — a zero grant must throttle, never wedge.
  uint32_t window = uint32_t(std::min<uint64_t>(frames, depth));
  if (window < 2) window = 2;
  if (window < depth) {
    readahead_throttles_.fetch_add(1, std::memory_order_relaxed);
  }
  return window;
}

IoRecoveryStats BufferManager::recovery_stats() const {
  IoRecoveryStats s;
  s.read_retries = read_retries_.load();
  s.write_retries = write_retries_.load();
  s.checksum_failures = checksum_failures_.load();
  s.write_verify_failures = write_verify_failures_.load();
  for (const auto& w : disks_) s.injected_faults += w->disk->injected_faults();
  s.bytes_read = bytes_read_.load();
  s.bytes_written = bytes_written_.load();
  return s;
}

uint64_t BufferManager::FileBytes(FileId file) const {
  return FileNumPages(file) * uint64_t(config_.disk.page_size);
}

BufferManager::Scanner::Scanner(BufferManager* bm, FileId file)
    : bm_(bm), file_(file), num_pages_(bm->FileNumPages(file)) {
  frames_.resize(bm_->config_.io_prefetch_depth);
  for (auto& f : frames_) {
    void* raw = AlignedAlloc(bm_->config_.disk.page_size, kCacheLineSize);
    f.buffer = AlignedBuffer<uint8_t>(static_cast<uint8_t*>(raw));
  }
  IssueReadAhead();
}

BufferManager::Scanner::~Scanner() {
  for (auto& f : frames_) {
    if (f.ready.valid()) f.ready.wait();
  }
}

void BufferManager::Scanner::IssueReadAhead() {
  // Leave one frame un-reissued: the page most recently handed to the
  // caller must stay valid until the next NextPage() call. The live
  // window re-shrinks under a broker budget (frames_ stays allocated at
  // full depth; only the in-flight count contracts).
  uint64_t window = bm_->ReadAheadWindow();
  while (next_to_issue_ < num_pages_ &&
         next_to_issue_ + 1 < next_to_return_ + window) {
    Frame& f = frames_[next_to_issue_ % frames_.size()];
    f.ready = bm_->EnqueueRead(file_, next_to_issue_, f.buffer.get());
    ++next_to_issue_;
  }
}

Status BufferManager::Scanner::NextPage(const uint8_t** page) {
  *page = nullptr;
  if (next_to_return_ >= num_pages_) return Status::OK();
  Frame& f = frames_[next_to_return_ % frames_.size()];
  // Only genuine not-ready waits count as main-thread I/O stall; a
  // ready future's get() is bookkeeping, not I/O.
  if (f.ready.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    WallTimer wait;
    f.ready.wait();
    bm_->main_stall_ns_.fetch_add(wait.ElapsedNanos());
  }
  HJ_RETURN_IF_ERROR(f.ready.get());
  ++next_to_return_;
  IssueReadAhead();
  *page = f.buffer.get();
  return Status::OK();
}

}  // namespace hashjoin
