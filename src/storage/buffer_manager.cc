#include "storage/buffer_manager.h"

#include <chrono>
#include <cstring>

#include "util/logging.h"

namespace hashjoin {

BufferManager::BufferManager(const BufferManagerConfig& config)
    : config_(config) {
  HJ_CHECK(config_.num_disks >= 1);
  HJ_CHECK(config_.stripe_unit_pages >= 1);
  HJ_CHECK(config_.io_prefetch_depth >= 1);
  for (uint32_t d = 0; d < config_.num_disks; ++d) {
    auto w = std::make_unique<DiskWorker>();
    w->disk = std::make_unique<SimulatedDisk>(config_.disk);
    disks_.push_back(std::move(w));
  }
  for (auto& w : disks_) {
    w->thread = std::thread([this, worker = w.get()] { WorkerLoop(worker); });
  }
}

BufferManager::~BufferManager() {
  for (auto& w : disks_) {
    auto stop = std::make_unique<Request>();
    stop->type = Request::Type::kStop;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->queue.push_back(std::move(stop));
    }
    w->cv.notify_one();
  }
  for (auto& w : disks_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void BufferManager::WorkerLoop(DiskWorker* w) {
  for (;;) {
    std::unique_ptr<Request> req;
    {
      std::unique_lock<std::mutex> lock(w->mu);
      w->cv.wait(lock, [&] { return !w->queue.empty(); });
      req = std::move(w->queue.front());
      w->queue.pop_front();
    }
    switch (req->type) {
      case Request::Type::kStop:
        return;
      case Request::Type::kRead:
        req->done.set_value(w->disk->ReadPage(req->disk_page, req->read_dst));
        break;
      case Request::Type::kWrite: {
        Status s = w->disk->WritePage(req->disk_page, req->write_data.get());
        req->done.set_value(std::move(s));
        uint64_t left = pending_writes_.fetch_sub(1) - 1;
        if (left == 0) {
          std::lock_guard<std::mutex> lock(writes_mu_);
          writes_cv_.notify_all();
        }
        break;
      }
    }
  }
}

BufferManager::FileId BufferManager::CreateFile() {
  std::lock_guard<std::mutex> lock(files_mu_);
  files_.emplace_back();
  return FileId(files_.size() - 1);
}

uint64_t BufferManager::FileNumPages(FileId file) const {
  std::lock_guard<std::mutex> lock(files_mu_);
  return files_[file].pages.size();
}

void BufferManager::WritePageAsync(FileId file, uint64_t page_index,
                                   const void* data) {
  uint32_t disk_id = DiskOf(file, page_index);
  DiskWorker* w = disks_[disk_id].get();
  uint64_t disk_page;
  {
    std::lock_guard<std::mutex> lock(files_mu_);
    FileMeta& meta = files_[file];
    if (page_index < meta.pages.size()) {
      disk_page = meta.pages[page_index].second;
    } else {
      HJ_CHECK(page_index == meta.pages.size())
          << "file pages must be written densely";
      std::lock_guard<std::mutex> wlock(w->mu);
      disk_page = w->next_free_page++;
      meta.pages.emplace_back(disk_id, disk_page);
    }
  }
  auto req = std::make_unique<Request>();
  req->type = Request::Type::kWrite;
  req->disk_page = disk_page;
  void* copy = AlignedAlloc(config_.disk.page_size, kCacheLineSize);
  std::memcpy(copy, data, config_.disk.page_size);
  req->write_data = AlignedBuffer<uint8_t>(static_cast<uint8_t*>(copy));
  pending_writes_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(w->mu);
    w->queue.push_back(std::move(req));
  }
  w->cv.notify_one();
}

void BufferManager::FlushWrites() {
  WallTimer wait;
  std::unique_lock<std::mutex> lock(writes_mu_);
  writes_cv_.wait(lock, [&] { return pending_writes_.load() == 0; });
  main_stall_ns_.fetch_add(wait.ElapsedNanos());
}

std::future<Status> BufferManager::EnqueueRead(FileId file,
                                               uint64_t page_index,
                                               uint8_t* dst) {
  uint32_t disk_id;
  uint64_t disk_page;
  {
    std::lock_guard<std::mutex> lock(files_mu_);
    const FileMeta& meta = files_[file];
    HJ_CHECK(page_index < meta.pages.size()) << "read past end of file";
    disk_id = meta.pages[page_index].first;
    disk_page = meta.pages[page_index].second;
  }
  auto req = std::make_unique<Request>();
  req->type = Request::Type::kRead;
  req->disk_page = disk_page;
  req->read_dst = dst;
  std::future<Status> fut = req->done.get_future();
  DiskWorker* w = disks_[disk_id].get();
  {
    std::lock_guard<std::mutex> lock(w->mu);
    w->queue.push_back(std::move(req));
  }
  w->cv.notify_one();
  return fut;
}

std::vector<double> BufferManager::DiskBusySeconds() const {
  std::vector<double> result;
  result.reserve(disks_.size());
  for (const auto& w : disks_) result.push_back(w->disk->busy_seconds());
  return result;
}

double BufferManager::max_disk_busy_seconds() const {
  double mx = 0;
  for (const auto& w : disks_) {
    mx = std::max(mx, w->disk->busy_seconds());
  }
  return mx;
}

BufferManager::Scanner::Scanner(BufferManager* bm, FileId file)
    : bm_(bm), file_(file), num_pages_(bm->FileNumPages(file)) {
  frames_.resize(bm_->config_.io_prefetch_depth);
  for (auto& f : frames_) {
    void* raw = AlignedAlloc(bm_->config_.disk.page_size, kCacheLineSize);
    f.buffer = AlignedBuffer<uint8_t>(static_cast<uint8_t*>(raw));
  }
  IssueReadAhead();
}

void BufferManager::Scanner::IssueReadAhead() {
  // Leave one frame un-reissued: the page most recently handed to the
  // caller must stay valid until the next NextPage() call.
  while (next_to_issue_ < num_pages_ &&
         next_to_issue_ + 1 < next_to_return_ + frames_.size()) {
    Frame& f = frames_[next_to_issue_ % frames_.size()];
    f.ready = bm_->EnqueueRead(file_, next_to_issue_, f.buffer.get());
    ++next_to_issue_;
  }
}

const uint8_t* BufferManager::Scanner::NextPage() {
  if (next_to_return_ >= num_pages_) return nullptr;
  Frame& f = frames_[next_to_return_ % frames_.size()];
  // Only genuine not-ready waits count as main-thread I/O stall; a
  // ready future's get() is bookkeeping, not I/O.
  if (f.ready.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    WallTimer wait;
    f.ready.wait();
    bm_->main_stall_ns_.fetch_add(wait.ElapsedNanos());
  }
  Status s = f.ready.get();
  HJ_CHECK_OK(s);
  ++next_to_return_;
  IssueReadAhead();
  return f.buffer.get();
}

}  // namespace hashjoin
