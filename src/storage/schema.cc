#include "storage/schema.h"

#include "util/logging.h"

namespace hashjoin {

namespace {
uint32_t FixedWidth(const Attribute& a) {
  switch (a.type) {
    case AttrType::kInt32:
      return 4;
    case AttrType::kInt64:
      return 8;
    case AttrType::kFixedChar:
      return a.length;
    case AttrType::kVarChar:
      return 4;  // u16 offset + u16 length slot within the tuple
  }
  return 0;
}
}  // namespace

Schema::Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {
  offsets_.reserve(attrs_.size());
  uint32_t off = 0;
  for (const Attribute& a : attrs_) {
    offsets_.push_back(off);
    off += FixedWidth(a);
    if (a.type == AttrType::kVarChar) has_varlen_ = true;
  }
  fixed_size_ = off;
}

Schema Schema::KeyPayload(uint32_t tuple_size) {
  HJ_CHECK(tuple_size >= 8) << "tuple must fit a 4B key + >=4B payload";
  std::vector<Attribute> attrs;
  attrs.push_back({"key", AttrType::kInt32, 4});
  attrs.push_back({"payload", AttrType::kFixedChar, tuple_size - 4});
  return Schema(std::move(attrs));
}

int Schema::FindAttr(const std::string& name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace hashjoin
