#ifndef HASHJOIN_STORAGE_BUFFER_MANAGER_H_
#define HASHJOIN_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "storage/disk.h"
#include "storage/fault_injection.h"
#include "util/aligned.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace hashjoin {

/// Bounded exponential backoff for transient I/O faults. An operation is
/// tried up to max_attempts times; attempt k sleeps
/// min(initial_backoff_us * multiplier^k, max_backoff_us) before
/// retrying. Only transient failures (kIOError, checksum mismatches) are
/// retried; permanent errors (kOutOfRange, ...) surface immediately.
struct RetryPolicy {
  uint32_t max_attempts = 6;
  uint32_t initial_backoff_us = 20;
  double multiplier = 2.0;
  uint32_t max_backoff_us = 2000;

  /// Microseconds to sleep before retry number `attempt` (0-based).
  uint32_t BackoffUs(uint32_t attempt) const;
};

/// Recovery-action counters of the fault-tolerant I/O path; all values
/// are cumulative since construction. Callers diff snapshots to get
/// per-phase numbers.
struct IoRecoveryStats {
  uint64_t read_retries = 0;    ///< reads re-issued after transient error
  uint64_t write_retries = 0;   ///< writes re-issued after transient error
  uint64_t checksum_failures = 0;  ///< read pages failing CRC (then retried)
  uint64_t write_verify_failures = 0;  ///< read-back mismatches (rewritten)
  uint64_t injected_faults = 0;  ///< faults the injector actually delivered
  /// Total transfer volume, counting every disk attempt (retries and
  /// write-verify read-backs included — this is traffic, not payload).
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

/// Buffer manager configuration (paper §7.2: relations striped across all
/// disks in 256KB units, a dedicated worker thread per disk, I/O
/// prefetching and background writing).
struct BufferManagerConfig {
  uint32_t num_disks = 4;
  DiskConfig disk;
  uint32_t stripe_unit_pages = 32;  // 32 x 8KB = 256KB stripe unit
  uint32_t io_prefetch_depth = 96;  // read-ahead window per scan (3 stripes,
                                    // so several disks stream in parallel)
  /// Per-page CRC32, computed when a page is queued for write and
  /// verified (with retries) when it is read back. Catches torn pages
  /// and corruption anywhere between the write queue and the read frame.
  bool checksum_pages = true;
  /// Read every written page back and compare checksums before declaring
  /// the write durable; mismatches trigger a rewrite. This is the
  /// defense against torn writes (which report success), at the price of
  /// one extra read per write — enable it when the device can tear
  /// pages, e.g. whenever fault.torn_page_rate > 0.
  bool verify_writes = false;
  /// Retry/backoff policy for transient faults and checksum mismatches.
  RetryPolicy retry;
};

/// Stripes page files across simulated disks, with one worker thread per
/// disk performing I/O on behalf of the main hash-join thread. Reads are
/// prefetched ahead of a sequential scan; writes are queued and retired
/// in the background, so I/O overlaps with computation as much as the
/// disks allow. Tracks the Figure-9 measurements: per-disk busy time and
/// the main thread's time blocked waiting for workers.
///
/// Fault tolerance: every page gets a CRC32 on write; reads verify it.
/// Transient device errors and checksum mismatches are retried with
/// bounded exponential backoff on the owning worker thread; only
/// exhausted retries surface a Status (kDataLoss for persistent
/// corruption) to the caller — reads via Scanner::NextPage, writes via
/// FlushWrites.
class BufferManager {
 public:
  using FileId = uint32_t;

  explicit BufferManager(const BufferManagerConfig& config);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Creates an empty striped file.
  FileId CreateFile() HJ_EXCLUDES(files_mu_);

  /// Appends/overwrites page `page_index`; the data is copied (and
  /// checksummed) synchronously, then written in the background. Pages
  /// of a file must be written densely (the hash join writes partitions
  /// sequentially). Write failures surface at the next FlushWrites.
  void WritePageAsync(FileId file, uint64_t page_index, const void* data)
      HJ_EXCLUDES(files_mu_);

  /// Blocks until every queued write has reached its disk. Returns the
  /// first write error since the previous FlushWrites (after retries
  /// were exhausted), OK otherwise.
  Status FlushWrites() HJ_EXCLUDES(writes_mu_);

  uint64_t FileNumPages(FileId file) const HJ_EXCLUDES(files_mu_);

  /// On-disk size of a file, bytes (pages are fixed-size, so this is
  /// FileNumPages * page_size). Partition-sizing decisions — role
  /// reversal, victim selection — compare actual file sizes through
  /// this instead of re-deriving the page math at every call site.
  uint64_t FileBytes(FileId file) const HJ_EXCLUDES(files_mu_);

  /// Sequential scan with read-ahead. Not thread-safe; one user at a time.
  class Scanner {
   public:
    Scanner(BufferManager* bm, FileId file);

    /// Drains in-flight read-ahead requests: a scan abandoned mid-file
    /// (e.g. after an I/O error) must not free frame buffers a disk
    /// worker is still writing into.
    ~Scanner();

    Scanner(Scanner&&) = default;

    /// Stores the next page's bytes (valid until the next call) in
    /// `*page`, or nullptr at end of file. Blocks only when read-ahead
    /// fell behind. A non-OK status (transient faults that survived all
    /// retries, or kDataLoss for corruption) ends the scan.
    Status NextPage(const uint8_t** page);

   private:
    void IssueReadAhead();

    BufferManager* bm_;
    FileId file_;
    uint64_t num_pages_;
    uint64_t next_to_issue_ = 0;
    uint64_t next_to_return_ = 0;
    struct Frame {
      AlignedBuffer<uint8_t> buffer;
      std::future<Status> ready;
    };
    std::vector<Frame> frames_;  // ring of io_prefetch_depth frames
  };

  Scanner OpenScan(FileId file) { return Scanner(this, file); }

  /// Seconds the calling (main) thread spent blocked on reads.
  double main_stall_seconds() const {
    return double(main_stall_ns_.load()) * 1e-9;
  }

  /// Largest per-disk transfer time — "maximum I/O stall time of all the
  /// background worker threads" in Figure 9.
  double max_disk_busy_seconds() const;

  /// Cumulative transfer time of each disk (callers diff snapshots to
  /// get per-phase utilization).
  std::vector<double> DiskBusySeconds() const;

  /// Cumulative recovery-action counters (callers diff snapshots).
  IoRecoveryStats recovery_stats() const;

  /// Installs (or clears, with an empty function) a live byte budget for
  /// scan read-ahead: each scan's in-flight window is capped at
  /// budget / page_size frames (floor 2, so scans always make progress,
  /// ceiling io_prefetch_depth). The scheduler's memory broker wires a
  /// grant fraction in here so a revoked query also stops hoarding frame
  /// memory. The function is called on the scanning thread per
  /// NextPage(); it must be cheap and thread-safe.
  void SetReadAheadBudget(std::function<uint64_t()> bytes_fn)
      HJ_EXCLUDES(readahead_mu_);

  /// Times a scan's read-ahead window was clamped below the configured
  /// depth by the budget (cumulative; callers diff snapshots).
  uint64_t readahead_throttles() const {
    return readahead_throttles_.load(std::memory_order_relaxed);
  }

  uint32_t num_disks() const { return uint32_t(disks_.size()); }
  const BufferManagerConfig& config() const { return config_; }

 private:
  struct Request {
    enum class Type { kRead, kWrite, kStop } type = Type::kStop;
    uint64_t disk_page = 0;
    uint8_t* read_dst = nullptr;             // kRead
    AlignedBuffer<uint8_t> write_data;       // kWrite (owned copy)
    uint32_t expected_crc = 0;
    bool has_crc = false;
    std::promise<Status> done;
  };

  struct DiskWorker {
    std::unique_ptr<FaultInjectingDisk> disk;
    std::thread thread;
    Mutex mu;
    CondVar cv;
    std::deque<std::unique_ptr<Request>> queue HJ_GUARDED_BY(mu);
    /// Simple sequential allocator.
    uint64_t next_free_page HJ_GUARDED_BY(mu) = 0;
    /// Write-verify read-back buffer; touched only by the owning worker
    /// thread, never concurrently (set up before the thread starts).
    AlignedBuffer<uint8_t> verify_scratch;
  };

  struct PagePlacement {
    uint32_t disk = 0;
    uint64_t disk_page = 0;
    uint32_t crc = 0;
  };

  struct FileMeta {
    std::vector<PagePlacement> pages;  // indexed by page_index
  };

  void WorkerLoop(DiskWorker* w);
  /// Frames a scan may keep in flight right now (see SetReadAheadBudget).
  uint32_t ReadAheadWindow() HJ_EXCLUDES(readahead_mu_);
  Status ReadWithRetry(DiskWorker* w, const Request& req);
  Status WriteWithRetry(DiskWorker* w, const Request& req);
  /// Plain device read retried on transient errors only (no checksum) —
  /// the write-verify read-back, which compares CRCs itself.
  Status RawReadWithRetry(DiskWorker* w, uint64_t disk_page, uint8_t* dst);
  void Backoff(uint32_t attempt);

  std::future<Status> EnqueueRead(FileId file, uint64_t page_index,
                                  uint8_t* dst) HJ_EXCLUDES(files_mu_);
  /// Stripe placement, staggered by file id so that small files (e.g.
  /// hundreds of partition outputs) spread over all disks instead of
  /// piling their first stripes onto disk 0.
  uint32_t DiskOf(FileId file, uint64_t page_index) const {
    return uint32_t((page_index / config_.stripe_unit_pages + file) %
                    disks_.size());
  }

  BufferManagerConfig config_;
  std::vector<std::unique_ptr<DiskWorker>> disks_;
  /// Lock order: files_mu_ before a DiskWorker's mu (WritePageAsync
  /// allocates a placement under both). No other pair nests.
  mutable Mutex files_mu_;
  std::vector<FileMeta> files_ HJ_GUARDED_BY(files_mu_);
  std::atomic<int64_t> main_stall_ns_{0};
  std::atomic<uint64_t> pending_writes_{0};
  Mutex writes_mu_;
  CondVar writes_cv_;
  Status first_write_error_ HJ_GUARDED_BY(writes_mu_);
  std::atomic<uint64_t> read_retries_{0};
  std::atomic<uint64_t> write_retries_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> write_verify_failures_{0};
  mutable Mutex readahead_mu_;
  std::shared_ptr<const std::function<uint64_t()>> readahead_budget_
      HJ_GUARDED_BY(readahead_mu_);
  std::atomic<uint64_t> readahead_throttles_{0};
};

}  // namespace hashjoin

#endif  // HASHJOIN_STORAGE_BUFFER_MANAGER_H_
