#ifndef HASHJOIN_STORAGE_BUFFER_MANAGER_H_
#define HASHJOIN_STORAGE_BUFFER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/disk.h"
#include "util/aligned.h"
#include "util/status.h"
#include "util/timer.h"

namespace hashjoin {

/// Buffer manager configuration (paper §7.2: relations striped across all
/// disks in 256KB units, a dedicated worker thread per disk, I/O
/// prefetching and background writing).
struct BufferManagerConfig {
  uint32_t num_disks = 4;
  DiskConfig disk;
  uint32_t stripe_unit_pages = 32;  // 32 x 8KB = 256KB stripe unit
  uint32_t io_prefetch_depth = 96;  // read-ahead window per scan (3 stripes,
                                    // so several disks stream in parallel)
};

/// Stripes page files across simulated disks, with one worker thread per
/// disk performing I/O on behalf of the main hash-join thread. Reads are
/// prefetched ahead of a sequential scan; writes are queued and retired
/// in the background, so I/O overlaps with computation as much as the
/// disks allow. Tracks the Figure-9 measurements: per-disk busy time and
/// the main thread's time blocked waiting for workers.
class BufferManager {
 public:
  using FileId = uint32_t;

  explicit BufferManager(const BufferManagerConfig& config);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Creates an empty striped file.
  FileId CreateFile();

  /// Appends/overwrites page `page_index`; the data is copied and written
  /// in the background. Pages of a file must be written densely (the hash
  /// join writes partitions sequentially).
  void WritePageAsync(FileId file, uint64_t page_index, const void* data);

  /// Blocks until every queued write has reached its disk.
  void FlushWrites();

  uint64_t FileNumPages(FileId file) const;

  /// Sequential scan with read-ahead. Not thread-safe; one user at a time.
  class Scanner {
   public:
    Scanner(BufferManager* bm, FileId file);

    /// Returns the next page's bytes (valid until the next call), or
    /// nullptr at end of file. Blocks only when read-ahead fell behind.
    const uint8_t* NextPage();

   private:
    void IssueReadAhead();

    BufferManager* bm_;
    FileId file_;
    uint64_t num_pages_;
    uint64_t next_to_issue_ = 0;
    uint64_t next_to_return_ = 0;
    struct Frame {
      AlignedBuffer<uint8_t> buffer;
      std::future<Status> ready;
    };
    std::vector<Frame> frames_;  // ring of io_prefetch_depth frames
  };

  Scanner OpenScan(FileId file) { return Scanner(this, file); }

  /// Seconds the calling (main) thread spent blocked on reads.
  double main_stall_seconds() const {
    return double(main_stall_ns_.load()) * 1e-9;
  }

  /// Largest per-disk transfer time — "maximum I/O stall time of all the
  /// background worker threads" in Figure 9.
  double max_disk_busy_seconds() const;

  /// Cumulative transfer time of each disk (callers diff snapshots to
  /// get per-phase utilization).
  std::vector<double> DiskBusySeconds() const;

  uint32_t num_disks() const { return uint32_t(disks_.size()); }
  const BufferManagerConfig& config() const { return config_; }

 private:
  struct Request {
    enum class Type { kRead, kWrite, kStop } type = Type::kStop;
    uint64_t disk_page = 0;
    uint8_t* read_dst = nullptr;             // kRead
    AlignedBuffer<uint8_t> write_data;       // kWrite (owned copy)
    std::promise<Status> done;
  };

  struct DiskWorker {
    std::unique_ptr<SimulatedDisk> disk;
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::unique_ptr<Request>> queue;
    uint64_t next_free_page = 0;  // simple sequential allocator
  };

  struct FileMeta {
    // page_index -> (disk, disk_page)
    std::vector<std::pair<uint32_t, uint64_t>> pages;
  };

  void WorkerLoop(DiskWorker* w);
  std::future<Status> EnqueueRead(FileId file, uint64_t page_index,
                                  uint8_t* dst);
  /// Stripe placement, staggered by file id so that small files (e.g.
  /// hundreds of partition outputs) spread over all disks instead of
  /// piling their first stripes onto disk 0.
  uint32_t DiskOf(FileId file, uint64_t page_index) const {
    return uint32_t((page_index / config_.stripe_unit_pages + file) %
                    disks_.size());
  }

  BufferManagerConfig config_;
  std::vector<std::unique_ptr<DiskWorker>> disks_;
  mutable std::mutex files_mu_;
  std::vector<FileMeta> files_;
  std::atomic<int64_t> main_stall_ns_{0};
  std::atomic<uint64_t> pending_writes_{0};
  std::mutex writes_mu_;
  std::condition_variable writes_cv_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_STORAGE_BUFFER_MANAGER_H_
