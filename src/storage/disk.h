#ifndef HASHJOIN_STORAGE_DISK_H_
#define HASHJOIN_STORAGE_DISK_H_

#include <cstdint>
#include <vector>

#include "util/aligned.h"
#include "util/status.h"
#include "util/timer.h"

namespace hashjoin {

/// Timing model for one simulated disk.
struct DiskConfig {
  /// Sustained sequential transfer rate. The paper's Seagate Cheetah
  /// X15 36LP peaks at 68 MB/s; the default is lower so the scaled-down
  /// workloads reproduce the same CPU-bound crossover shape.
  double bandwidth_mb_per_s = 40.0;
  /// Fixed per-request overhead (controller + sequential positioning).
  uint32_t request_latency_us = 50;
  uint32_t page_size = 8 * 1024;
};

/// A RAM-backed disk that charges transfer time by busy-waiting/sleeping.
/// This substitutes for the paper's raw SCSI partitions: Figure 9 needs
/// only the relative bandwidth of disks vs. the CPU, not real platters
/// (see DESIGN.md §3). Thread-safe for a single owning worker thread.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(const DiskConfig& config);

  /// Grows the disk to at least `num_pages` pages.
  void Reserve(uint64_t num_pages);

  /// Blocking page read into dst (page_size bytes); sleeps to model the
  /// transfer time.
  Status ReadPage(uint64_t page, void* dst);

  /// Blocking page write from src; sleeps to model the transfer time.
  Status WritePage(uint64_t page, const void* src);

  uint64_t num_pages() const { return num_pages_; }
  const DiskConfig& config() const { return config_; }

  /// Total seconds this disk spent transferring (its utilization).
  double busy_seconds() const { return busy_us_ * 1e-6; }

 private:
  void ChargeTransfer();

  DiskConfig config_;
  uint64_t num_pages_ = 0;
  std::vector<AlignedBuffer<uint8_t>> store_;  // one buffer per page
  uint64_t busy_us_ = 0;
  double page_transfer_us_ = 0;
  // Pacer state: the disk's virtual clock runs `page_transfer_us_` ahead
  // per request; sleeps amortize the debt in >=2ms chunks so OS timer
  // granularity does not inflate the effective service time.
  WallTimer wall_;
  double virtual_us_ = 0;
};

}  // namespace hashjoin

#endif  // HASHJOIN_STORAGE_DISK_H_
