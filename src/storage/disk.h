#ifndef HASHJOIN_STORAGE_DISK_H_
#define HASHJOIN_STORAGE_DISK_H_

#include <cstdint>
#include <vector>

#include "util/aligned.h"
#include "util/status.h"
#include "util/timer.h"

namespace hashjoin {

/// Deterministic fault-injection knobs for one simulated disk. All
/// injected faults are seeded, so a run with the same seed and the same
/// operation sequence injects the same faults — the fault-tolerance
/// tests rely on this to assert exact recovery counters.
struct FaultConfig {
  /// Probability a ReadPage returns a transient kIOError (no transfer).
  double read_error_rate = 0;
  /// Probability a WritePage returns a transient kIOError (no write).
  double write_error_rate = 0;
  /// Probability a WritePage tears: only the first half of the page
  /// reaches the platter, the rest is junk, and the call reports OK —
  /// silent corruption only a page checksum can catch.
  double torn_page_rate = 0;
  /// Seed of the per-disk fault RNG (the buffer manager salts it with
  /// the disk id so disks fault independently but reproducibly).
  uint64_t seed = 0x5EEDu;
  /// Upper bound on back-to-back injected faults of one kind, so a
  /// bounded retry loop is guaranteed to eventually see a clean
  /// operation. Keep below the retry policy's max_attempts.
  uint32_t max_consecutive_faults = 3;
  /// Scripted faults: per-disk operation indices (reads and writes
  /// share one counter) that return a transient error regardless of the
  /// probabilistic rates. Lets unit tests place a fault exactly.
  std::vector<uint64_t> scripted_error_ops;

  bool enabled() const {
    return read_error_rate > 0 || write_error_rate > 0 ||
           torn_page_rate > 0 || !scripted_error_ops.empty();
  }
};

/// Timing model for one simulated disk.
struct DiskConfig {
  /// Sustained sequential transfer rate. The paper's Seagate Cheetah
  /// X15 36LP peaks at 68 MB/s; the default is lower so the scaled-down
  /// workloads reproduce the same CPU-bound crossover shape.
  double bandwidth_mb_per_s = 40.0;
  /// Fixed per-request overhead (controller + sequential positioning).
  uint32_t request_latency_us = 50;
  uint32_t page_size = 8 * 1024;
  /// Fault injection (off by default: all rates zero, no script).
  FaultConfig fault;
};

/// A RAM-backed disk that charges transfer time by busy-waiting/sleeping.
/// This substitutes for the paper's raw SCSI partitions: Figure 9 needs
/// only the relative bandwidth of disks vs. the CPU, not real platters
/// (see DESIGN.md §3). Thread-safe for a single owning worker thread.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(const DiskConfig& config);

  /// Grows the disk to at least `num_pages` pages.
  void Reserve(uint64_t num_pages);

  /// Blocking page read into dst (page_size bytes); sleeps to model the
  /// transfer time.
  Status ReadPage(uint64_t page, void* dst);

  /// Blocking page write from src; sleeps to model the transfer time.
  Status WritePage(uint64_t page, const void* src);

  uint64_t num_pages() const { return num_pages_; }
  const DiskConfig& config() const { return config_; }

  /// Total seconds this disk spent transferring (its utilization).
  double busy_seconds() const { return double(busy_us_) * 1e-6; }

 private:
  void ChargeTransfer();

  DiskConfig config_;
  uint64_t num_pages_ = 0;
  std::vector<AlignedBuffer<uint8_t>> store_;  // one buffer per page
  uint64_t busy_us_ = 0;
  double page_transfer_us_ = 0;
  // Pacer state: the disk's virtual clock runs `page_transfer_us_` ahead
  // per request; sleeps amortize the debt in >=2ms chunks so OS timer
  // granularity does not inflate the effective service time.
  WallTimer wall_;
  double virtual_us_ = 0;
};

}  // namespace hashjoin

#endif  // HASHJOIN_STORAGE_DISK_H_
