#include "storage/fault_injection.h"

#include <cstring>

namespace hashjoin {

FaultInjectingDisk::FaultInjectingDisk(const DiskConfig& config,
                                       uint64_t seed_salt)
    : disk_(config),
      fault_(config.fault),
      rng_(config.fault.seed + seed_salt * 0x9E3779B97F4A7C15ULL),
      scripted_ops_(config.fault.scripted_error_ops.begin(),
                    config.fault.scripted_error_ops.end()) {
  if (fault_.torn_page_rate > 0) {
    void* raw = AlignedAlloc(config.page_size, kCacheLineSize);
    tear_scratch_ = AlignedBuffer<uint8_t>(static_cast<uint8_t*>(raw));
  }
}

bool FaultInjectingDisk::ShouldInjectError(double rate) {
  uint64_t op = op_index_++;
  bool scripted = !scripted_ops_.empty() && scripted_ops_.count(op) > 0;
  // Draw even when capped so the random sequence (and thus every later
  // fault) does not depend on how many retries earlier ops needed.
  bool probabilistic = rate > 0 && rng_.NextBool(rate);
  if (!scripted && !probabilistic) {
    consecutive_errors_ = 0;
    return false;
  }
  if (consecutive_errors_ >= fault_.max_consecutive_faults) {
    consecutive_errors_ = 0;
    return false;
  }
  ++consecutive_errors_;
  return true;
}

bool FaultInjectingDisk::ShouldInjectTear() {
  if (fault_.torn_page_rate <= 0 || !rng_.NextBool(fault_.torn_page_rate)) {
    consecutive_tears_ = 0;
    return false;
  }
  if (consecutive_tears_ >= fault_.max_consecutive_faults) {
    consecutive_tears_ = 0;
    return false;
  }
  ++consecutive_tears_;
  return true;
}

Status FaultInjectingDisk::ReadPage(uint64_t page, void* dst) {
  if (fault_.enabled() && ShouldInjectError(fault_.read_error_rate)) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected transient read error");
  }
  return disk_.ReadPage(page, dst);
}

Status FaultInjectingDisk::WritePage(uint64_t page, const void* src) {
  if (!fault_.enabled()) return disk_.WritePage(page, src);
  if (ShouldInjectError(fault_.write_error_rate)) {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected transient write error");
  }
  if (ShouldInjectTear()) {
    // Persist the first half, junk the rest, and *report success* — the
    // signature of a torn page. Detection is the checksum layer's job.
    const uint32_t page_size = disk_.config().page_size;
    std::memcpy(tear_scratch_.get(), src, page_size / 2);
    std::memset(tear_scratch_.get() + page_size / 2, 0xDE,
                page_size - page_size / 2);
    torn_writes_.fetch_add(1, std::memory_order_relaxed);
    return disk_.WritePage(page, tear_scratch_.get());
  }
  return disk_.WritePage(page, src);
}

}  // namespace hashjoin
