#ifndef HASHJOIN_STORAGE_FAULT_INJECTION_H_
#define HASHJOIN_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <unordered_set>

#include "storage/disk.h"
#include "util/aligned.h"
#include "util/random.h"
#include "util/status.h"

namespace hashjoin {

/// A SimulatedDisk wrapped with deterministic, seedable fault injection
/// (DiskConfig::fault). Three fault classes model the real failure modes
/// a disk join must survive:
///
///  * transient read errors  — ReadPage returns kIOError, nothing read;
///  * transient write errors — WritePage returns kIOError, nothing
///    written;
///  * torn writes            — WritePage persists only the first half of
///    the page, fills the rest with junk, and reports success. Only a
///    page checksum can detect this.
///
/// Faults can be probabilistic (seeded rates) or scripted (exact per-disk
/// operation indices). Back-to-back injected faults of one kind are
/// capped at max_consecutive_faults, so a retry loop with more attempts
/// than the cap is guaranteed to reach the underlying disk. With
/// fault.enabled() false the wrapper is a pass-through.
///
/// Thread model matches SimulatedDisk: one owning worker thread performs
/// I/O; the fault counters are atomics so other threads may snapshot
/// them concurrently.
class FaultInjectingDisk {
 public:
  /// `seed_salt` is mixed into the fault seed so each disk of an array
  /// faults independently but reproducibly.
  FaultInjectingDisk(const DiskConfig& config, uint64_t seed_salt = 0);

  void Reserve(uint64_t num_pages) { disk_.Reserve(num_pages); }

  Status ReadPage(uint64_t page, void* dst);
  Status WritePage(uint64_t page, const void* src);

  uint64_t num_pages() const { return disk_.num_pages(); }
  const DiskConfig& config() const { return disk_.config(); }
  double busy_seconds() const { return disk_.busy_seconds(); }

  /// Injected-fault counters (for stats plumbing and tests).
  uint64_t injected_read_errors() const { return read_errors_.load(); }
  uint64_t injected_write_errors() const { return write_errors_.load(); }
  uint64_t injected_torn_writes() const { return torn_writes_.load(); }
  uint64_t injected_faults() const {
    return read_errors_.load() + write_errors_.load() + torn_writes_.load();
  }

 private:
  /// One draw of the fault dice for the current operation; bumps the
  /// per-disk operation counter and enforces the consecutive-fault cap.
  bool ShouldInjectError(double rate);
  bool ShouldInjectTear();

  SimulatedDisk disk_;
  FaultConfig fault_;
  Rng rng_;
  std::unordered_set<uint64_t> scripted_ops_;
  uint64_t op_index_ = 0;
  uint32_t consecutive_errors_ = 0;
  uint32_t consecutive_tears_ = 0;
  AlignedBuffer<uint8_t> tear_scratch_;
  std::atomic<uint64_t> read_errors_{0};
  std::atomic<uint64_t> write_errors_{0};
  std::atomic<uint64_t> torn_writes_{0};
};

}  // namespace hashjoin

#endif  // HASHJOIN_STORAGE_FAULT_INJECTION_H_
