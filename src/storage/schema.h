#ifndef HASHJOIN_STORAGE_SCHEMA_H_
#define HASHJOIN_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace hashjoin {

/// Supported attribute types. The paper's workloads use a 4-byte join key
/// plus a fixed-length payload, but the page format also supports
/// variable-length attributes (§7.1: "slotted page structure ... fixed
/// length and variable length attributes").
enum class AttrType : uint8_t {
  kInt32,
  kInt64,
  kFixedChar,  // fixed-length byte string, length = `length` bytes
  kVarChar,    // variable-length, stored after the fixed-size prefix
};

/// One column of a schema.
struct Attribute {
  std::string name;
  AttrType type = AttrType::kInt32;
  uint32_t length = 4;  // bytes for kFixedChar; max bytes for kVarChar
};

/// Physical tuple layout: all fixed-size attributes (and 4-byte
/// offset/length slots for each varchar) form a fixed-size prefix;
/// varchar payloads follow. Keeps key access a constant-offset read,
/// which the join kernels rely on.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs);

  /// Convenience factory for the paper's experiment schema: a 4-byte
  /// integer join key named "key" plus one fixed payload column sized so
  /// the whole tuple is `tuple_size` bytes.
  static Schema KeyPayload(uint32_t tuple_size);

  size_t num_attrs() const { return attrs_.size(); }
  const Attribute& attr(size_t i) const { return attrs_[i]; }

  /// Byte offset of attribute i within the fixed-size prefix.
  uint32_t offset(size_t i) const { return offsets_[i]; }

  /// Size of the fixed prefix (== tuple size when no varchars).
  uint32_t fixed_size() const { return fixed_size_; }

  /// True if any attribute is kVarChar.
  bool has_varlen() const { return has_varlen_; }

  /// Index of the attribute named `name`, or -1.
  int FindAttr(const std::string& name) const;

 private:
  std::vector<Attribute> attrs_;
  std::vector<uint32_t> offsets_;
  uint32_t fixed_size_ = 0;
  bool has_varlen_ = false;
};

}  // namespace hashjoin

#endif  // HASHJOIN_STORAGE_SCHEMA_H_
