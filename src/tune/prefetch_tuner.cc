#include "tune/prefetch_tuner.h"

#include <algorithm>

namespace hashjoin {
namespace tune {

namespace {

uint32_t ClampDepth(uint32_t depth, uint32_t lo, uint32_t hi) {
  return std::min(std::max(depth, lo), hi);
}

// Ramp schedule: double while small, then grow 1.5x. Real depth-response
// curves have their optimum at moderate depth (Theorem-1 minima and the
// fig12 sweeps land in the 8..32 band); doubling past 8 jumps over it
// and the back-off can only return to the last power of two.
uint32_t NextRampDepth(uint32_t depth) {
  if (depth < 8) return depth * 2;
  return depth + std::max(1u, depth / 2);
}

}  // namespace

PrefetchTuner::PrefetchTuner(const TunerConfig& config) : config_(config) {
  config_.min_depth = std::max(1u, config_.min_depth);
  config_.max_depth = std::max(config_.min_depth, config_.max_depth);
  config_.stages_k = std::max(1u, config_.stages_k);
  depth_ = ClampDepth(config_.initial_depth, config_.min_depth, DepthCap());
  best_depth_ = depth_;
}

uint32_t PrefetchTuner::DepthCap() const {
  uint32_t cap = config_.max_depth;
  if (config_.max_outstanding > 0) {
    cap = std::min(cap, config_.max_outstanding);
  }
  return std::max(cap, config_.min_depth);
}

uint32_t PrefetchTuner::group_size() const { return depth_; }

uint32_t PrefetchTuner::prefetch_distance() const {
  return std::max(1u, depth_ / config_.stages_k);
}

bool PrefetchTuner::SetDepth(uint32_t depth) {
  depth = ClampDepth(depth, config_.min_depth, DepthCap());
  if (depth == depth_) return false;
  depth_ = depth;
  return true;
}

bool PrefetchTuner::OnBatch(const BatchReading& reading) {
  if (reading.tuples == 0 || reading.cycles <= 0) return false;
  ++batch_;
  const double cost = reading.cycles / double(reading.tuples);
  const double miss = reading.l1d_misses >= 0
                          ? reading.l1d_misses / double(reading.tuples)
                          : -1;
  const double stall = reading.stalled_cycles >= 0
                           ? reading.stalled_cycles / double(reading.tuples)
                           : -1;
  TunerSample sample;
  sample.batch = batch_;
  sample.depth = depth_;
  sample.group_size = group_size();
  sample.prefetch_distance = prefetch_distance();
  sample.cycles_per_tuple = cost;
  sample.misses_per_tuple = miss;
  sample.stalls_per_tuple = stall;
  trajectory_.push_back(sample);

  const bool cost_regressed =
      best_cost_ >= 0 && cost > best_cost_ * (1.0 + config_.cost_tolerance);
  const bool miss_regressed =
      miss >= 0 && best_miss_ >= 0 &&
      miss > best_miss_ * (1.0 + config_.miss_tolerance);
  const bool stall_regressed =
      stall >= 0 && best_stall_ >= 0 &&
      stall > best_stall_ * (1.0 + config_.stall_tolerance);
  const bool regressed = cost_regressed || miss_regressed || stall_regressed;

  bool changed = false;
  switch (state_) {
    case State::kWarmup: {
      ++warmup_seen_;
      if (warmup_seen_ >= std::max(1u, config_.warmup_batches)) {
        // Last warmup reading becomes the ramp baseline.
        best_cost_ = cost;
        best_miss_ = miss;
        best_stall_ = stall;
        best_depth_ = depth_;
        state_ = State::kRamp;
        if (depth_ < DepthCap()) {
          changed = SetDepth(NextRampDepth(depth_));
        } else {
          state_ = State::kConverged;
        }
      }
      break;
    }
    case State::kRamp: {
      if (regressed) {
        // One noisy batch must not end the ramp: hold the depth and
        // remeasure once; back off only if the retry regresses too.
        if (!ramp_retried_) {
          ramp_retried_ = true;
          break;
        }
        ramp_retried_ = false;
        // Confirmed: the previous (smaller) depth was better.
        changed = SetDepth(best_depth_);
        state_ = State::kConverged;
        break;
      }
      ramp_retried_ = false;
      if (best_cost_ < 0 || cost < best_cost_) {
        best_cost_ = cost;
        best_depth_ = depth_;
      }
      if (miss >= 0 && (best_miss_ < 0 || miss < best_miss_)) {
        best_miss_ = miss;
      }
      if (stall >= 0 && (best_stall_ < 0 || stall < best_stall_)) {
        best_stall_ = stall;
      }
      if (depth_ < DepthCap()) {
        changed = SetDepth(NextRampDepth(depth_));
      } else {
        state_ = State::kConverged;
      }
      break;
    }
    case State::kConverged: {
      // Batch noise must not move a converged depth: only an excursion
      // past the (wide) drift tolerance counts, and the reference is an
      // EWMA of accepted batches, not the minimum ever seen — a lucky
      // fast batch would otherwise wedge an unreachable baseline and
      // every later batch would read as a regression.
      const bool drifted =
          (best_cost_ >= 0 &&
           cost > best_cost_ * (1.0 + config_.drift_tolerance)) ||
          miss_regressed || stall_regressed;
      if (drifted) {
        ++converged_regressions_;
        if (converged_regressions_ >= config_.converged_patience) {
          // Persistent drift: shrink, forget the stale baseline, and
          // restart the ramp so the depth can climb back if shrinking
          // was the wrong response.
          changed = SetDepth(std::max(config_.min_depth, depth_ / 2));
          converged_regressions_ = 0;
          best_cost_ = -1;
          best_miss_ = -1;
          best_stall_ = -1;
          best_depth_ = depth_;
          ramp_retried_ = false;
          state_ = State::kRamp;
        }
      } else {
        converged_regressions_ = 0;
        best_cost_ = best_cost_ < 0 ? cost : 0.9 * best_cost_ + 0.1 * cost;
        if (miss >= 0) {
          best_miss_ = best_miss_ < 0 ? miss : 0.9 * best_miss_ + 0.1 * miss;
        }
        if (stall >= 0) {
          best_stall_ =
              best_stall_ < 0 ? stall : 0.9 * best_stall_ + 0.1 * stall;
        }
      }
      break;
    }
  }
  return changed;
}

}  // namespace tune
}  // namespace hashjoin
