#ifndef HASHJOIN_TUNE_LFB_PROBE_H_
#define HASHJOIN_TUNE_LFB_PROBE_H_

#include <cstdint>
#include <vector>

namespace hashjoin {
namespace tune {

/// Options for ProbeLfbConcurrency. The defaults walk a 64MB working set
/// (beyond any LLC, like CalibrateMachine's chase buffer) with enough
/// steps per chain that the fixed-cost setup is amortized away.
struct LfbProbeOptions {
  uint64_t buffer_bytes = 64ull << 20;
  uint64_t steps_per_chain = 100'000;  // dependent loads per cursor
  uint32_t max_chains = 24;            // largest K tried (capped at 32)
  int repeats = 3;                     // timing windows; fastest wins
  /// K is the knee when its throughput first reaches this fraction of
  /// the best observed throughput across all K.
  double knee_fraction = 0.9;
  /// If the single-chain latency per step is below this, the buffer was
  /// cache-resident (or latency-hidden some other way) and the probe
  /// cannot see the fill-buffer ceiling; max_outstanding is reported 0.
  double min_single_chain_ns = 15.0;
};

/// Result of the outstanding-miss concurrency probe.
struct LfbProbeResult {
  /// Measured number of misses the core keeps in flight before extra
  /// parallel chases stop adding throughput (the LFB/MSHR knee).
  /// 0 = unknown: the probe judged its own measurement unreliable.
  uint32_t max_outstanding = 0;
  double single_chain_ns = 0;      // per-step latency at K = 1
  double best_throughput = 0;      // lines per ns at the best K
  std::vector<double> throughput;  // lines per ns; index i is K = i+1
};

/// Measures per-core memory-level parallelism by timing K independent
/// pointer chases over one shared Sattolo cycle, for K = 1..max_chains.
/// Each chase is serially dependent, so K is exactly the number of
/// outstanding misses; aggregate throughput scales with K until the load
/// fill buffers / MSHRs are exhausted, then flattens. The knee of that
/// curve is the real ceiling on useful prefetch depth — Theorems 1 and 2
/// only bound the depth needed to hide latency, not what the memory
/// system can sustain. Deterministic layout (fixed-seed permutation);
/// wall-clock noise is bounded by taking the fastest of `repeats`.
LfbProbeResult ProbeLfbConcurrency(const LfbProbeOptions& options = {});

}  // namespace tune
}  // namespace hashjoin

#endif  // HASHJOIN_TUNE_LFB_PROBE_H_
