#ifndef HASHJOIN_TUNE_PREFETCH_TUNER_H_
#define HASHJOIN_TUNE_PREFETCH_TUNER_H_

#include <cstdint>
#include <vector>

namespace hashjoin {
namespace tune {

/// Configuration of the online depth controller.
struct TunerConfig {
  uint32_t initial_depth = 2;   // conservative slow-start depth
  uint32_t min_depth = 1;
  uint32_t max_depth = 64;      // further clamped by max_outstanding
  /// Measured LFB/MSHR ceiling (Calibration::max_outstanding); 0 means
  /// unknown, in which case only max_depth bounds the ramp.
  uint32_t max_outstanding = 0;
  /// Number of dependent references per element (CodeCosts::k()); maps
  /// depth to a prefetch distance D with k*D lines in flight.
  uint32_t stages_k = 3;
  uint32_t warmup_batches = 1;  // readings discarded before ramping
  /// Cost-per-tuple growth (relative to the best seen) tolerated before
  /// the ramp backs off to the best depth.
  double cost_tolerance = 0.05;
  /// L1D-miss-per-tuple growth tolerated before backing off. Misses per
  /// tuple rising while cycles hold is the early symptom of prefetched
  /// lines being evicted before use (§4.2's conflict-miss argument).
  double miss_tolerance = 0.25;
  /// Backend-stalled-cycles-per-tuple growth tolerated before backing
  /// off. Stall cycles rising while total cycles hold means the extra
  /// prefetch depth is saturating the memory subsystem (LFB contention)
  /// without yet showing up in end-to-end cost — the same early-warning
  /// role as `miss_tolerance`, from the other side of the cache.
  double stall_tolerance = 0.25;
  /// Cost growth relative to the converged baseline treated as workload
  /// drift rather than batch noise. Deliberately much wider than
  /// `cost_tolerance`: after convergence the baseline is held for the
  /// rest of the run, and reacting to ordinary run-to-run jitter would
  /// ratchet the depth down batch by batch.
  double drift_tolerance = 0.25;
  /// Consecutive drifting batches tolerated after convergence before
  /// the depth is halved and the ramp restarted (workload drift).
  uint32_t converged_patience = 2;
};

/// One batch's worth of live counter readings. `cycles` may be PMU
/// cycles or a wall-clock-derived estimate — the controller only
/// compares readings against each other, so any consistent unit works.
struct BatchReading {
  uint64_t tuples = 0;
  double cycles = 0;
  double l1d_misses = -1;      // < 0: counter unavailable this batch
  double stalled_cycles = -1;  // < 0: counter unavailable this batch
};

/// One trajectory entry: what the tuner held while a batch ran and what
/// the batch measured. Serialized into bench JSON records so sweeps can
/// plot online convergence against the offline-best depth.
struct TunerSample {
  uint32_t batch = 0;
  uint32_t depth = 0;
  uint32_t group_size = 0;
  uint32_t prefetch_distance = 0;
  double cycles_per_tuple = 0;
  double misses_per_tuple = -1;  // < 0: unavailable
  double stalls_per_tuple = -1;  // < 0: unavailable
};

/// Online feedback controller for prefetch depth, in the style of SMOL's
/// adaptive slow-start: begin at a conservative depth, grow it (2x while
/// below 8, then 1.5x — real optima sit at moderate depth and doubling
/// past 8 jumps over them) while per-batch cost does not regress, and
/// back off to the best depth observed once a regression is confirmed by
/// a retry batch (one noisy reading must not end the ramp), then hold.
/// While holding, the baseline is
/// tracked as an EWMA (noise-robust, unlike a minimum-ever) and only a
/// persistent excursion past the much wider `drift_tolerance` is
/// treated as workload drift: the depth is halved and the ramp
/// restarted, so the controller can climb back up if the halving was
/// wrong. Deterministic: state
/// advances only on OnBatch(), never on wall-clock time, so a recorded
/// counter stream replays to identical decisions.
///
/// The depth is one scalar; G and D are projections of it (G = depth,
/// D = depth / k floored at 1) so group and pipelined kernels ramp
/// together and both respect the same outstanding-miss budget.
class PrefetchTuner {
 public:
  enum class State { kWarmup, kRamp, kConverged };

  explicit PrefetchTuner(const TunerConfig& config = {});

  /// Feeds one batch's counters. Returns true if the depth changed, in
  /// which case the caller should republish group_size()/
  /// prefetch_distance() to its kernels. Batches with tuples == 0 or
  /// cycles <= 0 are ignored (no state advance).
  bool OnBatch(const BatchReading& reading);

  uint32_t depth() const { return depth_; }
  uint32_t group_size() const;
  uint32_t prefetch_distance() const;
  State state() const { return state_; }
  bool converged() const { return state_ == State::kConverged; }
  uint32_t batches() const { return batch_; }
  const std::vector<TunerSample>& trajectory() const { return trajectory_; }
  const TunerConfig& config() const { return config_; }

 private:
  uint32_t DepthCap() const;
  bool SetDepth(uint32_t depth);

  TunerConfig config_;
  State state_ = State::kWarmup;
  uint32_t depth_ = 1;
  uint32_t batch_ = 0;
  uint32_t warmup_seen_ = 0;
  uint32_t best_depth_ = 1;
  double best_cost_ = -1;   // < 0: no baseline yet
  double best_miss_ = -1;   // < 0: no miss baseline
  double best_stall_ = -1;  // < 0: no stall baseline
  bool ramp_retried_ = false;  // current depth already got its retry batch
  uint32_t converged_regressions_ = 0;
  std::vector<TunerSample> trajectory_;
};

}  // namespace tune
}  // namespace hashjoin

#endif  // HASHJOIN_TUNE_PREFETCH_TUNER_H_
