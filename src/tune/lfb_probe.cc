#include "tune/lfb_probe.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace hashjoin {
namespace tune {
namespace {

constexpr size_t kLineBytes = 64;
constexpr uint32_t kMaxChains = 32;

// One cache-line-sized chase node, same shape as CalibrateMachine's: the
// next-pointer is the only live word, so every step is a full-line miss.
struct alignas(kLineBytes) ChaseNode {
  ChaseNode* next;
  uint8_t pad[kLineBytes - sizeof(ChaseNode*)];
};

// K simultaneous dependent chases. K is a template parameter so the K
// cursors live in registers and the loop body is just K independent
// loads per step — the measured parallelism is exactly K outstanding
// misses, not K plus cursor-array traffic.
template <uint32_t K>
ChaseNode* ChaseK(ChaseNode* const* start, uint64_t steps) {
  ChaseNode* cur[K];
  for (uint32_t k = 0; k < K; ++k) cur[k] = start[k];
  for (uint64_t i = 0; i < steps; ++i) {
    for (uint32_t k = 0; k < K; ++k) cur[k] = cur[k]->next;
  }
  ChaseNode* sink = nullptr;
  for (uint32_t k = 0; k < K; ++k) {
    sink = (sink < cur[k]) ? cur[k] : sink;
  }
  return sink;
}

ChaseNode* RunChase(uint32_t chains, ChaseNode* const* start,
                    uint64_t steps) {
  switch (chains) {
#define HJ_LFB_CASE(K) \
  case K:              \
    return ChaseK<K>(start, steps);
    HJ_LFB_CASE(1)
    HJ_LFB_CASE(2)
    HJ_LFB_CASE(3)
    HJ_LFB_CASE(4)
    HJ_LFB_CASE(5)
    HJ_LFB_CASE(6)
    HJ_LFB_CASE(7)
    HJ_LFB_CASE(8)
    HJ_LFB_CASE(9)
    HJ_LFB_CASE(10)
    HJ_LFB_CASE(11)
    HJ_LFB_CASE(12)
    HJ_LFB_CASE(13)
    HJ_LFB_CASE(14)
    HJ_LFB_CASE(15)
    HJ_LFB_CASE(16)
    HJ_LFB_CASE(17)
    HJ_LFB_CASE(18)
    HJ_LFB_CASE(19)
    HJ_LFB_CASE(20)
    HJ_LFB_CASE(21)
    HJ_LFB_CASE(22)
    HJ_LFB_CASE(23)
    HJ_LFB_CASE(24)
    HJ_LFB_CASE(25)
    HJ_LFB_CASE(26)
    HJ_LFB_CASE(27)
    HJ_LFB_CASE(28)
    HJ_LFB_CASE(29)
    HJ_LFB_CASE(30)
    HJ_LFB_CASE(31)
    HJ_LFB_CASE(32)
#undef HJ_LFB_CASE
    default:
      HJ_LOG(Fatal) << "LFB probe chain count out of range: " << chains;
      return nullptr;
  }
}

}  // namespace

LfbProbeResult ProbeLfbConcurrency(const LfbProbeOptions& options) {
  LfbProbeResult result;
  const uint32_t max_chains =
      std::min(std::max(options.max_chains, 1u), kMaxChains);
  const uint64_t num_nodes = std::max<uint64_t>(
      options.buffer_bytes / sizeof(ChaseNode), 4 * max_chains);

  // Sattolo's algorithm: one cycle through all nodes (same seed family
  // as CalibrateMachine so layouts are reproducible run to run).
  std::vector<ChaseNode> nodes(num_nodes);
  std::vector<uint64_t> order(num_nodes);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(0x1FBC0DE);
  for (uint64_t i = num_nodes - 1; i > 0; --i) {
    uint64_t j = rng.NextBounded(i);  // j in [0, i)
    std::swap(order[i], order[j]);
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    nodes[order[i]].next = &nodes[order[(i + 1) % num_nodes]];
  }

  // Start cursors evenly spaced along the cycle so the K chases never
  // converge onto shared lines within a measurement window.
  std::vector<ChaseNode*> start(max_chains);
  const uint64_t steps = std::max<uint64_t>(options.steps_per_chain, 1024);
  const int repeats = std::max(options.repeats, 1);

  result.throughput.resize(max_chains, 0.0);
  ChaseNode* sink = nullptr;
  for (uint32_t chains = 1; chains <= max_chains; ++chains) {
    for (uint32_t k = 0; k < chains; ++k) {
      start[k] = &nodes[order[(uint64_t(k) * num_nodes) / chains]];
    }
    double best_ns = 0;
    for (int r = 0; r < repeats; ++r) {
      WallTimer timer;
      sink = RunChase(chains, start.data(), steps);
      double ns = double(timer.ElapsedNanos());
      if (r == 0 || ns < best_ns) best_ns = ns;
    }
    result.throughput[chains - 1] =
        double(steps) * double(chains) / std::max(best_ns, 1.0);
    if (chains == 1) {
      result.single_chain_ns = best_ns / double(steps);
    }
  }
  if (sink == nullptr) HJ_LOG(Fatal) << "LFB probe lost its cursors";

  result.best_throughput =
      *std::max_element(result.throughput.begin(), result.throughput.end());

  // A fast single chain means the buffer was cache-resident (tiny test
  // buffers, huge LLCs): the chases then bound on the core, not on fill
  // buffers, and the knee is meaningless. Report "unknown".
  if (result.single_chain_ns < options.min_single_chain_ns) {
    result.max_outstanding = 0;
    return result;
  }

  const double knee = options.knee_fraction * result.best_throughput;
  for (uint32_t chains = 1; chains <= max_chains; ++chains) {
    if (result.throughput[chains - 1] >= knee) {
      result.max_outstanding = chains;
      break;
    }
  }
  return result;
}

}  // namespace tune
}  // namespace hashjoin
