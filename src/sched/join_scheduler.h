#ifndef HASHJOIN_SCHED_JOIN_SCHEDULER_H_
#define HASHJOIN_SCHED_JOIN_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/hash_table_cache.h"
#include "sched/memory_broker.h"
#include "sched/query_context.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace hashjoin {

/// Join-service sizing knobs.
struct SchedulerConfig {
  /// Queries running at once. Each gets a dedicated runner thread (the
  /// query body blocks on grant acquisition and pool drains, so it must
  /// not occupy a pool worker) plus a fair-share group on the pool.
  uint32_t max_concurrent = 2;

  /// Admission-queue bound; a Submit() past this is rejected with
  /// kResourceExhausted — backpressure, never silent queuing.
  uint32_t max_queue = 8;

  /// Workers in the single work-stealing pool every admitted query's
  /// morsels share (instead of one pool per join).
  uint32_t pool_threads = 4;

  /// The memory broker's global grant budget, bytes.
  uint64_t memory_budget = 64ull << 20;

  /// Capacity of the cross-query hash-table cache, carved out of the
  /// broker budget as a lowest-priority revocable grant
  /// (GrantClass::kCache) — so cached tables shrink before any active
  /// join is squeezed. 0 disables the cache.
  uint64_t cache_bytes = 0;
};

/// One unit of admission: a named, prioritized query body plus its
/// memory-grant envelope.
struct JoinRequest {
  std::string name;

  /// Higher runs first; FIFO within a priority level.
  int priority = 0;

  /// Seconds from Submit() the query is worth starting; 0 = no deadline.
  /// A query still queued (or still waiting for its minimum grant) when
  /// the deadline passes completes with kDeadlineExceeded. A deadline
  /// never interrupts a query that already started running.
  double deadline_seconds = 0;

  /// Grant envelope passed to MemoryBroker::Acquire — the body is
  /// admitted with at least `min_grant_bytes` and at most
  /// `desired_grant_bytes`, and may be revoked down to the minimum while
  /// it runs.
  uint64_t min_grant_bytes = 1ull << 20;
  uint64_t desired_grant_bytes = 8ull << 20;

  /// The query. Runs on a runner thread with the grant held; returns its
  /// output tuple count or a Status. Long-running bodies should size
  /// in-memory structures off ctx.GrantFn() (wired into the join
  /// configs) so broker revokes translate into spilling. Morsel work
  /// goes through ctx.executor() — the shared pool's fair-share handle.
  std::function<StatusOr<uint64_t>(QueryContext& ctx)> body;
};

/// Admission control + execution for concurrent joins: a bounded
/// priority queue in front of `max_concurrent` runner threads, one
/// shared work-stealing ThreadPool fair-shared across the running
/// queries' morsels, and one MemoryBroker whose revocable grants bound
/// each query's memory.
///
/// Submit() is thread-safe and non-blocking: it returns the query id, or
/// kResourceExhausted when the queue is full (the backpressure signal —
/// callers retry or shed load). Completion is observed via WaitAll() /
/// Drain(); per-query outcomes (including failures) are QueryStats
/// records, never exceptions or crashes.
///
/// The destructor drains: queued queries still run. Reject first
/// (Submit checks a closed flag) — destruction with traffic in flight is
/// a caller bug only if callers keep submitting concurrently with it.
class JoinScheduler {
 public:
  explicit JoinScheduler(const SchedulerConfig& config);
  ~JoinScheduler();

  JoinScheduler(const JoinScheduler&) = delete;
  JoinScheduler& operator=(const JoinScheduler&) = delete;

  /// Queues `req`. Returns the query id, kResourceExhausted when the
  /// admission queue is full, kInvalidArgument for an empty body, or
  /// kFailedPrecondition after shutdown began.
  StatusOr<uint64_t> Submit(JoinRequest req) HJ_EXCLUDES(mu_, stats_mu_);

  /// Blocks until every admitted query has completed.
  void WaitAll() HJ_EXCLUDES(mu_);

  /// WaitAll(), then a snapshot of everything the service recorded.
  /// Callable repeatedly; later calls see later completions too.
  ServiceStats Drain() HJ_EXCLUDES(mu_, stats_mu_);

  MemoryBroker& broker() { return broker_; }
  ThreadPool& pool() { return pool_; }
  const SchedulerConfig& config() const { return config_; }

  /// The cross-query hash-table cache, or nullptr when
  /// `SchedulerConfig::cache_bytes` is 0. Query bodies reach it through
  /// their QueryContext.
  cache::HashTableCache* table_cache() { return cache_.get(); }

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  struct Entry {
    JoinRequest req;
    uint64_t id = 0;
    uint64_t seq = 0;  // submission order; FIFO tie-break
    TimePoint submit_time;
  };

  void RunnerLoop() HJ_EXCLUDES(mu_);
  void RunOne(Entry entry) HJ_EXCLUDES(mu_, stats_mu_);
  /// Files a finished query's record under stats_mu_. `counter` is the
  /// ServiceStats field to bump (completed/failed/deadline_expired).
  void Record(QueryStats stats, uint64_t ServiceStats::* counter)
      HJ_EXCLUDES(stats_mu_);

  SchedulerConfig config_;
  MemoryBroker broker_;
  ThreadPool pool_;

  /// Cache + its broker grant. Declared after broker_ so destruction
  /// releases the grant (and checks no table is still pinned) before
  /// the broker asserts that no grants are outstanding.
  std::unique_ptr<cache::HashTableCache> cache_;
  std::unique_ptr<MemoryGrant> cache_grant_;

  /// Admission state. Lock order: mu_ before stats_mu_ (Submit bumps
  /// the rejected/submitted tallies while holding the queue lock).
  Mutex mu_ HJ_ACQUIRED_BEFORE(stats_mu_);
  CondVar work_cv_;
  CondVar idle_cv_;
  std::vector<Entry> queue_ HJ_GUARDED_BY(mu_);
  bool stop_ HJ_GUARDED_BY(mu_) = false;
  uint32_t running_ HJ_GUARDED_BY(mu_) = 0;
  uint64_t next_id_ HJ_GUARDED_BY(mu_) = 1;
  uint64_t next_seq_ HJ_GUARDED_BY(mu_) = 0;

  Mutex stats_mu_;
  ServiceStats stats_ HJ_GUARDED_BY(stats_mu_);
  bool saw_submit_ HJ_GUARDED_BY(stats_mu_) = false;
  TimePoint first_submit_ HJ_GUARDED_BY(stats_mu_);
  TimePoint last_done_ HJ_GUARDED_BY(stats_mu_);

  std::vector<std::thread> runners_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_SCHED_JOIN_SCHEDULER_H_
