#include "sched/join_scheduler.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace hashjoin {

JoinScheduler::JoinScheduler(const SchedulerConfig& config)
    : config_(config),
      broker_(config.memory_budget),
      pool_(std::max(1u, config.pool_threads)) {
  HJ_CHECK(config_.max_concurrent >= 1);
  HJ_CHECK(config_.max_queue >= 1);
  if (config_.cache_bytes > 0) {
    // The cache is an ordinary broker client in the lowest-priority
    // class: a tiny irrevocable minimum (so the broker always has a
    // victim ordering, never a blocked admission on the cache's
    // account) and the full capacity as revocable surplus.
    cache_ = std::make_unique<cache::HashTableCache>(config_.cache_bytes);
    const uint64_t cache_min =
        std::min<uint64_t>(config_.cache_bytes, 64 * 1024);
    auto grant_or = broker_.Acquire(cache_min, config_.cache_bytes,
                                    /*timeout_seconds=*/0,
                                    GrantClass::kCache);
    HJ_CHECK(grant_or.ok())
        << "cache grant failed: " << grant_or.status().ToString();
    cache_grant_ = std::move(grant_or).value();
    cache_->SetCapacityFn(cache_grant_->BudgetFn());
    cache::HashTableCache* cache = cache_.get();
    cache_grant_->SetRevokeListener(
        [cache](uint64_t new_bytes) { cache->OnRevoke(new_bytes); });
  }
  runners_.reserve(config_.max_concurrent);
  for (uint32_t i = 0; i < config_.max_concurrent; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

JoinScheduler::~JoinScheduler() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : runners_) {
    if (t.joinable()) t.join();
  }
}

StatusOr<uint64_t> JoinScheduler::Submit(JoinRequest req) {
  if (!req.body) {
    return Status::InvalidArgument("join request has no body");
  }
  MutexLock lock(mu_);
  if (stop_) {
    return Status::FailedPrecondition("join scheduler is shutting down");
  }
  if (queue_.size() >= config_.max_queue) {
    MutexLock slock(stats_mu_);
    ++stats_.rejected;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(config_.max_queue) +
        " queued); retry or shed \"" + req.name + "\"");
  }
  Entry e;
  e.req = std::move(req);
  e.id = next_id_++;
  e.seq = next_seq_++;
  e.submit_time = std::chrono::steady_clock::now();
  {
    MutexLock slock(stats_mu_);
    ++stats_.submitted;
    if (!saw_submit_) {
      saw_submit_ = true;
      first_submit_ = e.submit_time;
    }
  }
  queue_.push_back(std::move(e));
  work_cv_.NotifyOne();
  return queue_.back().id;
}

void JoinScheduler::RunnerLoop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!stop_ && queue_.empty()) work_cv_.Wait(lock);
    if (queue_.empty()) {
      if (stop_) return;  // drained
      continue;
    }
    // Highest priority first, FIFO within a level. The queue is small
    // (max_queue entries), so a linear scan beats heap bookkeeping.
    size_t best = 0;
    for (size_t i = 1; i < queue_.size(); ++i) {
      if (queue_[i].req.priority > queue_[best].req.priority ||
          (queue_[i].req.priority == queue_[best].req.priority &&
           queue_[i].seq < queue_[best].seq)) {
        best = i;
      }
    }
    Entry entry = std::move(queue_[best]);
    queue_.erase(queue_.begin() + ptrdiff_t(best));
    ++running_;
    lock.Unlock();
    RunOne(std::move(entry));
    lock.Lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.NotifyAll();
  }
}

void JoinScheduler::RunOne(Entry entry) {
  const JoinRequest& req = entry.req;
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    entry.submit_time)
          .count();

  QueryStats qs;
  qs.query_id = entry.id;
  qs.name = req.name;
  qs.priority = req.priority;
  qs.queue_seconds = waited;

  // Deadline gate: a query not worth starting is dropped cleanly.
  double grant_timeout = -1;
  if (req.deadline_seconds > 0) {
    grant_timeout = req.deadline_seconds - waited;
    if (grant_timeout <= 0) {
      qs.status =
          Status::DeadlineExceeded("\"" + req.name +
                                   "\" expired in the admission queue");
      Record(std::move(qs), &ServiceStats::deadline_expired);
      return;
    }
  }

  WallTimer run_timer;
  auto grant_or = broker_.Acquire(req.min_grant_bytes,
                                  req.desired_grant_bytes, grant_timeout);
  if (!grant_or.ok()) {
    qs.status = grant_or.status();
    qs.run_seconds = run_timer.ElapsedSeconds();
    uint64_t ServiceStats::* bucket =
        qs.status.code() == StatusCode::kDeadlineExceeded
            ? &ServiceStats::deadline_expired
            : &ServiceStats::failed;
    Record(std::move(qs), bucket);
    return;
  }

  uint64_t ServiceStats::* counter = &ServiceStats::completed;
  {
    QueryContext ctx(entry.id, req.name, std::move(grant_or).value(),
                     &pool_, cache_.get());
    ctx.stats().priority = req.priority;
    ctx.stats().queue_seconds = waited;

    StatusOr<uint64_t> result = req.body(ctx);
    // Drain this query's pool group before touching stats or releasing
    // the grant: stragglers may still read both.
    ctx.executor().Wait();

    if (result.ok()) {
      ctx.stats().output_tuples = result.value();
      ctx.stats().status = Status::OK();
    } else {
      ctx.stats().status = result.status();
      counter = &ServiceStats::failed;
    }

    const MemoryGrant& grant = ctx.grant();
    ctx.stats().grant_initial_bytes = grant.initial_bytes();
    ctx.stats().grant_low_bytes = grant.low_watermark();
    ctx.stats().grant_final_bytes = grant.bytes();
    ctx.stats().grant_revokes = grant.revokes();
    ctx.stats().grant_regrows = grant.regrows();
    ctx.stats().run_seconds = run_timer.ElapsedSeconds();

    qs = std::move(ctx.stats());
  }  // ~QueryContext releases the grant; the broker redistributes.
  Record(std::move(qs), counter);
}

void JoinScheduler::Record(QueryStats stats,
                           uint64_t ServiceStats::* counter) {
  MutexLock lock(stats_mu_);
  stats_.*counter += 1;
  stats_.queries.push_back(std::move(stats));
  last_done_ = std::chrono::steady_clock::now();
}

void JoinScheduler::WaitAll() {
  MutexLock lock(mu_);
  while (!queue_.empty() || running_ != 0) idle_cv_.Wait(lock);
}

ServiceStats JoinScheduler::Drain() {
  WaitAll();
  MutexLock lock(stats_mu_);
  ServiceStats snapshot = stats_;
  if (saw_submit_ && !snapshot.queries.empty()) {
    snapshot.makespan_seconds =
        std::chrono::duration<double>(last_done_ - first_submit_).count();
  }
  return snapshot;
}

}  // namespace hashjoin
