#ifndef HASHJOIN_SCHED_MEMORY_BROKER_H_
#define HASHJOIN_SCHED_MEMORY_BROKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace hashjoin {

class MemoryBroker;

/// Revocation priority class of a grant. `kCache` marks memory that is
/// merely an optimization (the cross-query hash-table cache): when an
/// admission needs bytes, every kCache grant's surplus is drained before
/// any kNormal grant is touched, and released bytes re-grow kNormal
/// grants first — so cached tables are always sacrificed before an
/// active join is squeezed into its degradation ladder.
enum class GrantClass {
  kNormal,
  kCache,
};

/// One revocable memory reservation handed out by a MemoryBroker.
///
/// The broker may shrink the grant (down to its admission minimum) at any
/// time to admit another query, and re-grow it (up to its desired size)
/// when budget frees up. The owning query reads `bytes()` — a relaxed
/// atomic load, safe from any thread — at every sizing decision; wiring
/// `BudgetFn()` into `DiskJoinConfig::dynamic_budget` or
/// `GraceConfig::dynamic_budget` makes the join spill more partitions
/// after a revoke and build in memory again after a re-grow, with no
/// locking on the join's hot path.
///
/// Destroying (or Release()ing) the grant returns its bytes to the
/// broker, which redistributes them to shrunken grants and wakes blocked
/// Acquire() calls. The handle must outlive every closure obtained from
/// BudgetFn().
class MemoryGrant {
 public:
  ~MemoryGrant() { Release(); }

  MemoryGrant(const MemoryGrant&) = delete;
  MemoryGrant& operator=(const MemoryGrant&) = delete;

  /// Bytes currently granted (relaxed atomic; any thread).
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

  /// The live-budget closure to wire into a join config. Reads the grant
  /// on every call; the grant must outlive the closure.
  std::function<uint64_t()> BudgetFn() const {
    return [this] { return bytes(); };
  }

  /// Admission minimum / ceiling this grant was acquired with.
  uint64_t min_bytes() const { return min_bytes_; }
  uint64_t desired_bytes() const { return desired_bytes_; }

  /// Revocation priority class (see GrantClass).
  GrantClass grant_class() const { return class_; }

  /// Times the broker shrank / re-grew this grant.
  uint64_t revokes() const { return revokes_.load(std::memory_order_relaxed); }
  uint64_t regrows() const { return regrows_.load(std::memory_order_relaxed); }

  /// Bytes granted at acquisition, and the smallest size ever held —
  /// together with bytes() these describe the grant's whole history.
  uint64_t initial_bytes() const { return initial_bytes_; }
  uint64_t low_watermark() const {
    return low_watermark_.load(std::memory_order_relaxed);
  }

  /// Installs a callback invoked after each revoke with the new grant
  /// size. The polling-based spill path does not need this; it exists
  /// for callers that want to react eagerly (e.g. the hybrid join's
  /// victim eviction hint).
  ///
  /// Locking contract:
  ///  - The callback runs on the *revoking* thread (another query's
  ///    admission path) with no broker locks held. It must not call
  ///    back into the broker or this grant's Acquire/Release machinery
  ///    synchronously — not because it would deadlock today, but
  ///    because it would stall the other query's admission on work of
  ///    arbitrary duration. Store the value (an atomic) and return.
  ///  - If a revoke already fired before installation, the new listener
  ///    is invoked once immediately — from the *installing* thread,
  ///    outside the listener lock — with the live grant size, so a
  ///    late installer never misses the current value. That catch-up
  ///    call can race a concurrent revoke's notification, so the
  ///    callback must be safe to run from either thread at any time
  ///    (values may arrive out of order; treat the smallest recently
  ///    seen value as binding, or re-poll bytes()).
  void SetRevokeListener(std::function<void(uint64_t new_bytes)> fn);

  /// Returns all bytes to the broker. Idempotent; also run by the dtor.
  void Release();

 private:
  friend class MemoryBroker;
  MemoryGrant(MemoryBroker* broker, uint64_t bytes, uint64_t min_bytes,
              uint64_t desired_bytes, GrantClass grant_class)
      : broker_(broker),
        bytes_(bytes),
        min_bytes_(min_bytes),
        desired_bytes_(desired_bytes),
        class_(grant_class),
        initial_bytes_(bytes),
        low_watermark_(bytes) {}

  MemoryBroker* broker_;
  std::atomic<uint64_t> bytes_;
  const uint64_t min_bytes_;
  const uint64_t desired_bytes_;
  const GrantClass class_;
  const uint64_t initial_bytes_;
  std::atomic<uint64_t> low_watermark_;
  std::atomic<uint64_t> revokes_{0};
  std::atomic<uint64_t> regrows_{0};
  Mutex listener_mu_;
  std::function<void(uint64_t)> revoke_listener_ HJ_GUARDED_BY(listener_mu_);
};

/// Hands out revocable memory grants from one global budget.
///
/// Policy: a new query asks for [min_bytes, desired_bytes]. Free budget
/// is granted up to `desired`. If free budget cannot cover `min`, the
/// broker *revokes* surplus — bytes above other grants' admission minima,
/// largest surplus first — until `min` is covered; the shrunken queries
/// observe the smaller grant at their next sizing decision and spill.
/// Revocation never cuts a grant below its own minimum, so an Acquire
/// whose minimum exceeds free-plus-revocable blocks (bounded by its
/// timeout) until a release makes room. Released bytes are redistributed
/// to shrunken grants in acquisition order (oldest first), re-growing
/// them toward `desired` — the un-spill signal.
///
/// All methods are thread-safe.
class MemoryBroker {
 public:
  explicit MemoryBroker(uint64_t total_budget);
  ~MemoryBroker();

  MemoryBroker(const MemoryBroker&) = delete;
  MemoryBroker& operator=(const MemoryBroker&) = delete;

  /// Acquires a grant of `min_bytes`..`desired_bytes`, revoking other
  /// grants' surplus if needed (see class comment). Blocks up to
  /// `timeout_seconds` for budget to free up (negative = wait forever,
  /// 0 = fail immediately if `min_bytes` is not coverable right now).
  /// Errors: kInvalidArgument for min > desired or min == 0;
  /// kResourceExhausted when min_bytes exceeds the total budget (can
  /// never succeed); kDeadlineExceeded when the timeout passed first.
  ///
  /// `grant_class` sets the revocation priority: kCache grants lose
  /// their surplus before any kNormal grant is cut and re-grow last
  /// (see GrantClass).
  StatusOr<std::unique_ptr<MemoryGrant>> Acquire(
      uint64_t min_bytes, uint64_t desired_bytes,
      double timeout_seconds = -1,
      GrantClass grant_class = GrantClass::kNormal) HJ_EXCLUDES(mu_);

  uint64_t total_budget() const { return total_budget_; }

  /// Unreserved bytes right now.
  uint64_t free_bytes() const;

  /// Grants currently outstanding.
  uint64_t active_grants() const;

  /// Cumulative revoke / re-grow events across all grants.
  uint64_t total_revokes() const {
    return total_revokes_.load(std::memory_order_relaxed);
  }
  uint64_t total_regrows() const {
    return total_regrows_.load(std::memory_order_relaxed);
  }

  /// Cumulative bytes revoked from kCache grants — the "bytes the cache
  /// gave back under pressure" side of the reuse ledger.
  uint64_t cache_revoked_bytes() const {
    return cache_revoked_bytes_.load(std::memory_order_relaxed);
  }

  /// Times a kNormal grant was cut while some kCache grant still held
  /// revocable surplus. The class ordering makes this impossible, so a
  /// non-zero value means an active join was squeezed on the cache's
  /// account — the invariant `concurrent_bench --revoke-storm` gates on
  /// staying 0.
  uint64_t normal_revokes_with_cache_surplus() const {
    return normal_revokes_with_cache_surplus_.load(
        std::memory_order_relaxed);
  }

 private:
  friend class MemoryGrant;

  /// Returns `grant`'s bytes to the pool and redistributes.
  void ReleaseGrant(MemoryGrant* grant) HJ_EXCLUDES(mu_);

  /// Gives free bytes to shrunken grants (oldest first, up to desired)
  /// and wakes blocked Acquire() calls.
  void RedistributeLocked() HJ_REQUIRES(mu_);

  /// Sum of revocable surplus (bytes above min) across grants.
  uint64_t RevocableLocked() const HJ_REQUIRES(mu_);

  const uint64_t total_budget_;
  /// Lock order: mu_ before a grant's listener_mu_ (Acquire revokes a
  /// victim and snapshots its listener under both).
  mutable Mutex mu_;
  CondVar budget_cv_;
  uint64_t free_ HJ_GUARDED_BY(mu_) = 0;
  /// Acquisition order (oldest first = re-grow priority).
  std::vector<MemoryGrant*> grants_ HJ_GUARDED_BY(mu_);
  std::atomic<uint64_t> total_revokes_{0};
  std::atomic<uint64_t> total_regrows_{0};
  std::atomic<uint64_t> cache_revoked_bytes_{0};
  std::atomic<uint64_t> normal_revokes_with_cache_surplus_{0};
};

}  // namespace hashjoin

#endif  // HASHJOIN_SCHED_MEMORY_BROKER_H_
