#ifndef HASHJOIN_SCHED_QUERY_CONTEXT_H_
#define HASHJOIN_SCHED_QUERY_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/hash_table_cache.h"
#include "join/grace_disk.h"
#include "sched/memory_broker.h"
#include "storage/buffer_manager.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hashjoin {

/// Everything the service recorded about one submitted query — filled
/// partly by the scheduler (identity, timing, final status) and partly by
/// the query body itself (output count, spill/recovery counters). The
/// concurrent bench threads these into the JSON schema per query.
struct QueryStats {
  uint64_t query_id = 0;
  std::string name;
  int priority = 0;

  /// Final disposition. `status` is OK only for a completed query;
  /// queries that expired in the queue carry kDeadlineExceeded.
  Status status;

  /// Seconds from Submit() to the moment a runner picked the query up.
  double queue_seconds = 0;
  /// Seconds the query body ran (grant acquisition included).
  double run_seconds = 0;

  uint64_t output_tuples = 0;

  // --- grant history (copied from the MemoryGrant at completion) ---
  uint64_t grant_initial_bytes = 0;  ///< bytes held right after Acquire
  uint64_t grant_low_bytes = 0;      ///< smallest size a revoke forced
  uint64_t grant_final_bytes = 0;    ///< size when the query finished
  uint64_t grant_revokes = 0;        ///< times the broker shrank it
  uint64_t grant_regrows = 0;        ///< times the broker re-grew it

  // --- spill + I/O recovery, filled by the query body ---
  /// Skew/spill counters diffed from the query's DiskGraceJoin runs;
  /// revoke_spills > 0 is the "spilled because of a revoke" signal.
  DiskJoinRecovery recovery;
  /// I/O retry counters diffed from the query's BufferManager.
  IoRecoveryStats io;
  /// Scan read-ahead windows clamped by the grant (BufferManager diff).
  uint64_t readahead_throttles = 0;
  /// Per-level key-hash histograms and realized spill costs from the
  /// query's DiskGraceJoin runs (one entry per partitioning level that
  /// actually ran); feeds the cache's rebuild-cost estimates and the
  /// bench JSON skew summaries.
  std::vector<SpillLevelStats> spill_levels;
};

/// Service-level aggregate over one scheduler lifetime.
struct ServiceStats {
  uint64_t submitted = 0;         ///< Submit() calls that were admitted
  uint64_t rejected = 0;          ///< Submit() calls bounced off a full queue
  uint64_t completed = 0;         ///< queries that returned OK
  uint64_t failed = 0;            ///< queries that returned an error
  uint64_t deadline_expired = 0;  ///< queries dropped before running
  /// First Submit() to last completion, seconds.
  double makespan_seconds = 0;
  /// Per-query records in completion order (includes failed/expired).
  std::vector<QueryStats> queries;
};

/// Handed to a query body by the scheduler: the query's revocable memory
/// grant, its fair share of the shared worker pool, and the stats record
/// it should fill. The context (and thus the grant and executor) lives
/// until the body returns and its pool work is drained.
///
/// Deliberately unannotated/unlocked: a QueryContext is owned by
/// exactly one runner thread for its whole lifetime — the scheduler
/// constructs it, passes it to the body on that same thread, and drains
/// the pool group before reading stats back. Morsel tasks reach shared
/// state only through executor() (the pool's own synchronization) and
/// grant() (atomics inside MemoryGrant), never through this object.
class QueryContext {
 public:
  QueryContext(uint64_t query_id, std::string name,
               std::unique_ptr<MemoryGrant> grant, ThreadPool* shared_pool,
               cache::HashTableCache* table_cache = nullptr)
      : grant_(std::move(grant)),
        executor_(shared_pool),
        table_cache_(table_cache) {
    stats_.query_id = query_id;
    stats_.name = std::move(name);
  }

  uint64_t query_id() const { return stats_.query_id; }
  const std::string& name() const { return stats_.name; }

  /// Live grant size in bytes (relaxed atomic; any thread).
  uint64_t grant_bytes() const { return grant_->bytes(); }

  /// The closure to wire into `DiskJoinConfig::dynamic_budget` /
  /// `GraceConfig::dynamic_budget` and `SetReadAheadBudget`. Valid while
  /// this context lives.
  std::function<uint64_t()> GrantFn() const { return grant_->BudgetFn(); }

  /// The closure to wire into `DiskJoinConfig::install_revoke_listener`:
  /// lets the join (re)install its revoke listener on this query's grant
  /// without holding a reference to the grant itself. Valid while this
  /// context lives.
  std::function<void(std::function<void(uint64_t)>)> RevokeListenerInstaller() {
    return [this](std::function<void(uint64_t)> fn) {
      grant_->SetRevokeListener(std::move(fn));
    };
  }

  MemoryGrant& grant() { return *grant_; }

  /// This query's fair-share submission handle on the scheduler's shared
  /// work-stealing pool; pass as `GraceConfig::executor`.
  PoolExecutor& executor() { return executor_; }

  /// Mutable while the body runs; the body fills output/recovery fields.
  QueryStats& stats() { return stats_; }

  /// The service's cross-query hash-table cache; nullptr when the
  /// scheduler runs without one. Wire into `GraceConfig::table_cache`
  /// (with a CacheKey) to consult it before the build phase.
  cache::HashTableCache* table_cache() { return table_cache_; }

 private:
  std::unique_ptr<MemoryGrant> grant_;
  PoolExecutor executor_;
  cache::HashTableCache* table_cache_ = nullptr;
  QueryStats stats_;
};

}  // namespace hashjoin

#endif  // HASHJOIN_SCHED_QUERY_CONTEXT_H_
