#include "sched/memory_broker.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace hashjoin {

void MemoryGrant::SetRevokeListener(std::function<void(uint64_t)> fn) {
  std::function<void(uint64_t)> catch_up;
  {
    MutexLock lock(listener_mu_);
    revoke_listener_ = std::move(fn);
    // Catch-up: a listener installed after a revoke already fired would
    // otherwise wait forever for a notification that is not coming —
    // the broker only notifies at revoke time. Fire it once with the
    // live grant size, from this (installing) thread, outside the lock.
    if (revoke_listener_ != nullptr &&
        revokes_.load(std::memory_order_relaxed) > 0) {
      catch_up = revoke_listener_;
    }
  }
  if (catch_up != nullptr) catch_up(bytes());
}

void MemoryGrant::Release() {
  if (broker_ != nullptr) {
    broker_->ReleaseGrant(this);
    broker_ = nullptr;
  }
}

MemoryBroker::MemoryBroker(uint64_t total_budget)
    : total_budget_(total_budget), free_(total_budget) {
  HJ_CHECK(total_budget > 0) << "broker needs a non-zero budget";
}

MemoryBroker::~MemoryBroker() {
  MutexLock lock(mu_);
  HJ_CHECK(grants_.empty())
      << "MemoryBroker destroyed with grants outstanding";
}

uint64_t MemoryBroker::free_bytes() const {
  MutexLock lock(mu_);
  return free_;
}

uint64_t MemoryBroker::active_grants() const {
  MutexLock lock(mu_);
  return grants_.size();
}

uint64_t MemoryBroker::RevocableLocked() const {
  uint64_t surplus = 0;
  for (const MemoryGrant* g : grants_) {
    surplus += g->bytes() - g->min_bytes();
  }
  return surplus;
}

StatusOr<std::unique_ptr<MemoryGrant>> MemoryBroker::Acquire(
    uint64_t min_bytes, uint64_t desired_bytes, double timeout_seconds,
    GrantClass grant_class) {
  if (min_bytes == 0 || min_bytes > desired_bytes) {
    return Status::InvalidArgument(
        "grant needs 0 < min_bytes <= desired_bytes");
  }
  if (min_bytes > total_budget_) {
    return Status::ResourceExhausted(
        "grant minimum exceeds the broker's total budget");
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                timeout_seconds < 0 ? 0 : timeout_seconds));

  // Revokes to fire once the lock is dropped: (listener, new_bytes).
  std::vector<std::pair<std::function<void(uint64_t)>, uint64_t>> notify;
  std::unique_ptr<MemoryGrant> grant;
  {
    MutexLock lock(mu_);
    // Admission: wait until the minimum is coverable from free budget
    // plus other grants' revocable surplus. Written as an explicit
    // predicate loop (not a wait(lambda)) so the guarded reads of free_
    // and grants_ stay in this scope, which provably holds mu_.
    while (free_ + RevocableLocked() < min_bytes) {
      if (timeout_seconds == 0) {
        return Status::ResourceExhausted(
            "memory broker budget exhausted (non-blocking acquire)");
      }
      if (timeout_seconds < 0) {
        budget_cv_.Wait(lock);
      } else if (!budget_cv_.WaitUntil(lock, deadline) &&
                 free_ + RevocableLocked() < min_bytes) {
        return Status::DeadlineExceeded(
            "timed out waiting for a memory grant of " +
            std::to_string(min_bytes) + " bytes");
      }
    }

    // Take from free budget first — up to `desired`, no revocation.
    uint64_t take = std::min(free_, desired_bytes);
    free_ -= take;

    // Cover the rest of `min` by revoking surplus — kCache grants
    // first (cached tables are pure optimization; dropping them costs a
    // rebuild, not a spill), then kNormal, each largest-surplus-first
    // so the fewest queries are disturbed.
    while (take < min_bytes) {
      MemoryGrant* victim = nullptr;
      uint64_t best_surplus = 0;
      for (MemoryGrant* g : grants_) {
        if (g->grant_class() != GrantClass::kCache) continue;
        uint64_t surplus = g->bytes() - g->min_bytes();
        if (surplus > best_surplus) {
          best_surplus = surplus;
          victim = g;
        }
      }
      if (victim == nullptr) {
        for (MemoryGrant* g : grants_) {
          if (g->grant_class() != GrantClass::kNormal) continue;
          uint64_t surplus = g->bytes() - g->min_bytes();
          if (surplus > best_surplus) {
            best_surplus = surplus;
            victim = g;
          }
        }
        if (victim != nullptr) {
          // Ledger invariant: a kNormal cut with cache surplus left
          // would mean an active join paid for cache occupancy. The
          // selection order above makes this unreachable; the counter
          // is the proof the storm bench gates on.
          uint64_t cache_surplus = 0;
          for (const MemoryGrant* g : grants_) {
            if (g->grant_class() == GrantClass::kCache) {
              cache_surplus += g->bytes() - g->min_bytes();
            }
          }
          if (cache_surplus > 0) {
            normal_revokes_with_cache_surplus_.fetch_add(
                1, std::memory_order_relaxed);
          }
        }
      }
      HJ_CHECK(victim != nullptr) << "admission check promised surplus";
      uint64_t cut = std::min(best_surplus, min_bytes - take);
      if (victim->grant_class() == GrantClass::kCache) {
        cache_revoked_bytes_.fetch_add(cut, std::memory_order_relaxed);
      }
      uint64_t now_bytes = victim->bytes() - cut;
      victim->bytes_.store(now_bytes, std::memory_order_relaxed);
      uint64_t low = victim->low_watermark_.load(std::memory_order_relaxed);
      if (now_bytes < low) {
        victim->low_watermark_.store(now_bytes, std::memory_order_relaxed);
      }
      victim->revokes_.fetch_add(1, std::memory_order_relaxed);
      total_revokes_.fetch_add(1, std::memory_order_relaxed);
      {
        MutexLock llock(victim->listener_mu_);
        if (victim->revoke_listener_) {
          notify.emplace_back(victim->revoke_listener_, now_bytes);
        }
      }
      take += cut;
    }

    grant.reset(new MemoryGrant(this, take, min_bytes, desired_bytes,
                                grant_class));
    grants_.push_back(grant.get());
  }
  for (auto& [fn, new_bytes] : notify) fn(new_bytes);
  return grant;
}

void MemoryBroker::ReleaseGrant(MemoryGrant* grant) {
  MutexLock lock(mu_);
  auto it = std::find(grants_.begin(), grants_.end(), grant);
  HJ_CHECK(it != grants_.end()) << "double release of a memory grant";
  grants_.erase(it);
  free_ += grant->bytes();
  grant->bytes_.store(0, std::memory_order_relaxed);
  RedistributeLocked();
}

void MemoryBroker::RedistributeLocked() {
  // kNormal before kCache (active joins un-spill before the cache
  // re-inflates); within a class, oldest grant first — queries that
  // have waited (and spilled) longest get their memory back first.
  for (GrantClass cls : {GrantClass::kNormal, GrantClass::kCache}) {
    for (MemoryGrant* g : grants_) {
      if (free_ == 0) break;
      if (g->grant_class() != cls) continue;
      uint64_t want = g->desired_bytes() - g->bytes();
      if (want == 0) continue;
      uint64_t give = std::min(free_, want);
      free_ -= give;
      g->bytes_.fetch_add(give, std::memory_order_relaxed);
      g->regrows_.fetch_add(1, std::memory_order_relaxed);
      total_regrows_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  budget_cv_.NotifyAll();
}

}  // namespace hashjoin
