# Empty compiler generated dependencies file for groupby_agg.
# This may be replaced when dependencies are built.
