file(REMOVE_RECURSE
  "CMakeFiles/groupby_agg.dir/groupby_agg.cpp.o"
  "CMakeFiles/groupby_agg.dir/groupby_agg.cpp.o.d"
  "groupby_agg"
  "groupby_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupby_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
