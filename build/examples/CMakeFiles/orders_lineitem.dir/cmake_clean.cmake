file(REMOVE_RECURSE
  "CMakeFiles/orders_lineitem.dir/orders_lineitem.cpp.o"
  "CMakeFiles/orders_lineitem.dir/orders_lineitem.cpp.o.d"
  "orders_lineitem"
  "orders_lineitem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orders_lineitem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
