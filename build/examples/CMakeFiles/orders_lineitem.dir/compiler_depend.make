# Empty compiler generated dependencies file for orders_lineitem.
# This may be replaced when dependencies are built.
