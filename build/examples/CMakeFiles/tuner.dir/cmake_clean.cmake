file(REMOVE_RECURSE
  "CMakeFiles/tuner.dir/tuner.cpp.o"
  "CMakeFiles/tuner.dir/tuner.cpp.o.d"
  "tuner"
  "tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
