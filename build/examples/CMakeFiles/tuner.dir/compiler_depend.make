# Empty compiler generated dependencies file for tuner.
# This may be replaced when dependencies are built.
