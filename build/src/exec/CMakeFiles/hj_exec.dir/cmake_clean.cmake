file(REMOVE_RECURSE
  "CMakeFiles/hj_exec.dir/operators.cc.o"
  "CMakeFiles/hj_exec.dir/operators.cc.o.d"
  "libhj_exec.a"
  "libhj_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
