file(REMOVE_RECURSE
  "libhj_exec.a"
)
