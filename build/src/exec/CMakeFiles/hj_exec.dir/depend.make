# Empty dependencies file for hj_exec.
# This may be replaced when dependencies are built.
