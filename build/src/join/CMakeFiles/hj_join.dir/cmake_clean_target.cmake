file(REMOVE_RECURSE
  "libhj_join.a"
)
