file(REMOVE_RECURSE
  "CMakeFiles/hj_join.dir/grace.cc.o"
  "CMakeFiles/hj_join.dir/grace.cc.o.d"
  "CMakeFiles/hj_join.dir/grace_disk.cc.o"
  "CMakeFiles/hj_join.dir/grace_disk.cc.o.d"
  "libhj_join.a"
  "libhj_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
