# Empty compiler generated dependencies file for hj_join.
# This may be replaced when dependencies are built.
