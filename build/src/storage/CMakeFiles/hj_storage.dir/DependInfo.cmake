
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_manager.cc" "src/storage/CMakeFiles/hj_storage.dir/buffer_manager.cc.o" "gcc" "src/storage/CMakeFiles/hj_storage.dir/buffer_manager.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/storage/CMakeFiles/hj_storage.dir/disk.cc.o" "gcc" "src/storage/CMakeFiles/hj_storage.dir/disk.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/storage/CMakeFiles/hj_storage.dir/relation.cc.o" "gcc" "src/storage/CMakeFiles/hj_storage.dir/relation.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/hj_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/hj_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/storage/CMakeFiles/hj_storage.dir/slotted_page.cc.o" "gcc" "src/storage/CMakeFiles/hj_storage.dir/slotted_page.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
