file(REMOVE_RECURSE
  "libhj_storage.a"
)
