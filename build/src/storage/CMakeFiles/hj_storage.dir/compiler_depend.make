# Empty compiler generated dependencies file for hj_storage.
# This may be replaced when dependencies are built.
