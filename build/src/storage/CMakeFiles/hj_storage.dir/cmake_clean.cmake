file(REMOVE_RECURSE
  "CMakeFiles/hj_storage.dir/buffer_manager.cc.o"
  "CMakeFiles/hj_storage.dir/buffer_manager.cc.o.d"
  "CMakeFiles/hj_storage.dir/disk.cc.o"
  "CMakeFiles/hj_storage.dir/disk.cc.o.d"
  "CMakeFiles/hj_storage.dir/relation.cc.o"
  "CMakeFiles/hj_storage.dir/relation.cc.o.d"
  "CMakeFiles/hj_storage.dir/schema.cc.o"
  "CMakeFiles/hj_storage.dir/schema.cc.o.d"
  "CMakeFiles/hj_storage.dir/slotted_page.cc.o"
  "CMakeFiles/hj_storage.dir/slotted_page.cc.o.d"
  "libhj_storage.a"
  "libhj_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
