# Empty compiler generated dependencies file for hj_simcache.
# This may be replaced when dependencies are built.
