
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcache/cache.cc" "src/simcache/CMakeFiles/hj_simcache.dir/cache.cc.o" "gcc" "src/simcache/CMakeFiles/hj_simcache.dir/cache.cc.o.d"
  "/root/repo/src/simcache/memory_sim.cc" "src/simcache/CMakeFiles/hj_simcache.dir/memory_sim.cc.o" "gcc" "src/simcache/CMakeFiles/hj_simcache.dir/memory_sim.cc.o.d"
  "/root/repo/src/simcache/stats.cc" "src/simcache/CMakeFiles/hj_simcache.dir/stats.cc.o" "gcc" "src/simcache/CMakeFiles/hj_simcache.dir/stats.cc.o.d"
  "/root/repo/src/simcache/tlb.cc" "src/simcache/CMakeFiles/hj_simcache.dir/tlb.cc.o" "gcc" "src/simcache/CMakeFiles/hj_simcache.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
