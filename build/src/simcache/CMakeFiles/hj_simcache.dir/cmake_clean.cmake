file(REMOVE_RECURSE
  "CMakeFiles/hj_simcache.dir/cache.cc.o"
  "CMakeFiles/hj_simcache.dir/cache.cc.o.d"
  "CMakeFiles/hj_simcache.dir/memory_sim.cc.o"
  "CMakeFiles/hj_simcache.dir/memory_sim.cc.o.d"
  "CMakeFiles/hj_simcache.dir/stats.cc.o"
  "CMakeFiles/hj_simcache.dir/stats.cc.o.d"
  "CMakeFiles/hj_simcache.dir/tlb.cc.o"
  "CMakeFiles/hj_simcache.dir/tlb.cc.o.d"
  "libhj_simcache.a"
  "libhj_simcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_simcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
