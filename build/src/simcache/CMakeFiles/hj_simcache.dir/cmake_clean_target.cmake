file(REMOVE_RECURSE
  "libhj_simcache.a"
)
