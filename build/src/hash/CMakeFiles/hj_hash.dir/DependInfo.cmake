
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/chained_hash_table.cc" "src/hash/CMakeFiles/hj_hash.dir/chained_hash_table.cc.o" "gcc" "src/hash/CMakeFiles/hj_hash.dir/chained_hash_table.cc.o.d"
  "/root/repo/src/hash/hash_func.cc" "src/hash/CMakeFiles/hj_hash.dir/hash_func.cc.o" "gcc" "src/hash/CMakeFiles/hj_hash.dir/hash_func.cc.o.d"
  "/root/repo/src/hash/hash_table.cc" "src/hash/CMakeFiles/hj_hash.dir/hash_table.cc.o" "gcc" "src/hash/CMakeFiles/hj_hash.dir/hash_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
