file(REMOVE_RECURSE
  "CMakeFiles/hj_hash.dir/chained_hash_table.cc.o"
  "CMakeFiles/hj_hash.dir/chained_hash_table.cc.o.d"
  "CMakeFiles/hj_hash.dir/hash_func.cc.o"
  "CMakeFiles/hj_hash.dir/hash_func.cc.o.d"
  "CMakeFiles/hj_hash.dir/hash_table.cc.o"
  "CMakeFiles/hj_hash.dir/hash_table.cc.o.d"
  "libhj_hash.a"
  "libhj_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
