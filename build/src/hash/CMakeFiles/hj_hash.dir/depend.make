# Empty dependencies file for hj_hash.
# This may be replaced when dependencies are built.
