file(REMOVE_RECURSE
  "libhj_hash.a"
)
