file(REMOVE_RECURSE
  "CMakeFiles/hj_workload.dir/generator.cc.o"
  "CMakeFiles/hj_workload.dir/generator.cc.o.d"
  "libhj_workload.a"
  "libhj_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
