# Empty dependencies file for hj_workload.
# This may be replaced when dependencies are built.
