
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/hj_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/hj_workload.dir/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hj_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hj_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
