file(REMOVE_RECURSE
  "libhj_workload.a"
)
