file(REMOVE_RECURSE
  "CMakeFiles/hj_model.dir/cost_model.cc.o"
  "CMakeFiles/hj_model.dir/cost_model.cc.o.d"
  "libhj_model.a"
  "libhj_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
