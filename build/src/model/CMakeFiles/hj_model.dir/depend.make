# Empty dependencies file for hj_model.
# This may be replaced when dependencies are built.
