file(REMOVE_RECURSE
  "libhj_model.a"
)
