file(REMOVE_RECURSE
  "CMakeFiles/hj_util.dir/aligned.cc.o"
  "CMakeFiles/hj_util.dir/aligned.cc.o.d"
  "CMakeFiles/hj_util.dir/flags.cc.o"
  "CMakeFiles/hj_util.dir/flags.cc.o.d"
  "CMakeFiles/hj_util.dir/logging.cc.o"
  "CMakeFiles/hj_util.dir/logging.cc.o.d"
  "CMakeFiles/hj_util.dir/random.cc.o"
  "CMakeFiles/hj_util.dir/random.cc.o.d"
  "CMakeFiles/hj_util.dir/status.cc.o"
  "CMakeFiles/hj_util.dir/status.cc.o.d"
  "libhj_util.a"
  "libhj_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hj_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
