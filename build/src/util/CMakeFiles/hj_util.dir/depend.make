# Empty dependencies file for hj_util.
# This may be replaced when dependencies are built.
