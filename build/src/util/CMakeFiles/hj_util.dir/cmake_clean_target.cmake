file(REMOVE_RECURSE
  "libhj_util.a"
)
