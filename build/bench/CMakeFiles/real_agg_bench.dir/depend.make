# Empty dependencies file for real_agg_bench.
# This may be replaced when dependencies are built.
