file(REMOVE_RECURSE
  "CMakeFiles/real_agg_bench.dir/real_agg_bench.cc.o"
  "CMakeFiles/real_agg_bench.dir/real_agg_bench.cc.o.d"
  "real_agg_bench"
  "real_agg_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_agg_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
