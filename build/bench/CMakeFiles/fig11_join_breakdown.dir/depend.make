# Empty dependencies file for fig11_join_breakdown.
# This may be replaced when dependencies are built.
