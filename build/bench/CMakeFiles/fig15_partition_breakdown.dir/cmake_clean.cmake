file(REMOVE_RECURSE
  "CMakeFiles/fig15_partition_breakdown.dir/fig15_partition_breakdown.cc.o"
  "CMakeFiles/fig15_partition_breakdown.dir/fig15_partition_breakdown.cc.o.d"
  "fig15_partition_breakdown"
  "fig15_partition_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_partition_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
