# Empty dependencies file for fig19_cache_partition.
# This may be replaced when dependencies are built.
