file(REMOVE_RECURSE
  "CMakeFiles/fig19_cache_partition.dir/fig19_cache_partition.cc.o"
  "CMakeFiles/fig19_cache_partition.dir/fig19_cache_partition.cc.o.d"
  "fig19_cache_partition"
  "fig19_cache_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_cache_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
