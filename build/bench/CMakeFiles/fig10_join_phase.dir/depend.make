# Empty dependencies file for fig10_join_phase.
# This may be replaced when dependencies are built.
