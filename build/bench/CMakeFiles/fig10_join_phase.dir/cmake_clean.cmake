file(REMOVE_RECURSE
  "CMakeFiles/fig10_join_phase.dir/fig10_join_phase.cc.o"
  "CMakeFiles/fig10_join_phase.dir/fig10_join_phase.cc.o.d"
  "fig10_join_phase"
  "fig10_join_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_join_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
