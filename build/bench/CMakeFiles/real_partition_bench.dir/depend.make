# Empty dependencies file for real_partition_bench.
# This may be replaced when dependencies are built.
