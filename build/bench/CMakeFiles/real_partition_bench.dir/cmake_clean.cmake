file(REMOVE_RECURSE
  "CMakeFiles/real_partition_bench.dir/real_partition_bench.cc.o"
  "CMakeFiles/real_partition_bench.dir/real_partition_bench.cc.o.d"
  "real_partition_bench"
  "real_partition_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_partition_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
