file(REMOVE_RECURSE
  "CMakeFiles/fig14_partition_phase.dir/fig14_partition_phase.cc.o"
  "CMakeFiles/fig14_partition_phase.dir/fig14_partition_phase.cc.o.d"
  "fig14_partition_phase"
  "fig14_partition_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_partition_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
