# Empty dependencies file for fig14_partition_phase.
# This may be replaced when dependencies are built.
