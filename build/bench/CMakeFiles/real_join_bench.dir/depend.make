# Empty dependencies file for real_join_bench.
# This may be replaced when dependencies are built.
