file(REMOVE_RECURSE
  "CMakeFiles/real_join_bench.dir/real_join_bench.cc.o"
  "CMakeFiles/real_join_bench.dir/real_join_bench.cc.o.d"
  "real_join_bench"
  "real_join_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_join_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
