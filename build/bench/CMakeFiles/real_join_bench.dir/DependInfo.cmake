
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/real_join_bench.cc" "bench/CMakeFiles/real_join_bench.dir/real_join_bench.cc.o" "gcc" "bench/CMakeFiles/real_join_bench.dir/real_join_bench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/hj_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/hj_join.dir/DependInfo.cmake"
  "/root/repo/build/src/simcache/CMakeFiles/hj_simcache.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/hj_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hj_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hj_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hj_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hj_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
