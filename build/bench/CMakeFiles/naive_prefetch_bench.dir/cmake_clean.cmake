file(REMOVE_RECURSE
  "CMakeFiles/naive_prefetch_bench.dir/naive_prefetch_bench.cc.o"
  "CMakeFiles/naive_prefetch_bench.dir/naive_prefetch_bench.cc.o.d"
  "naive_prefetch_bench"
  "naive_prefetch_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_prefetch_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
