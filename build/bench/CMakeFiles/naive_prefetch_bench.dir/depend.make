# Empty dependencies file for naive_prefetch_bench.
# This may be replaced when dependencies are built.
