file(REMOVE_RECURSE
  "CMakeFiles/latency_trend.dir/latency_trend.cc.o"
  "CMakeFiles/latency_trend.dir/latency_trend.cc.o.d"
  "latency_trend"
  "latency_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
