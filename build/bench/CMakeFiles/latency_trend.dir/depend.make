# Empty dependencies file for latency_trend.
# This may be replaced when dependencies are built.
