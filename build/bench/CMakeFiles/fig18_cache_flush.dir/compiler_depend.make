# Empty compiler generated dependencies file for fig18_cache_flush.
# This may be replaced when dependencies are built.
