file(REMOVE_RECURSE
  "CMakeFiles/fig18_cache_flush.dir/fig18_cache_flush.cc.o"
  "CMakeFiles/fig18_cache_flush.dir/fig18_cache_flush.cc.o.d"
  "fig18_cache_flush"
  "fig18_cache_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_cache_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
