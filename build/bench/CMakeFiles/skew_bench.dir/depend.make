# Empty dependencies file for skew_bench.
# This may be replaced when dependencies are built.
