file(REMOVE_RECURSE
  "CMakeFiles/skew_bench.dir/skew_bench.cc.o"
  "CMakeFiles/skew_bench.dir/skew_bench.cc.o.d"
  "skew_bench"
  "skew_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
