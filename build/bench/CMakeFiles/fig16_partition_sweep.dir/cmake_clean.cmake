file(REMOVE_RECURSE
  "CMakeFiles/fig16_partition_sweep.dir/fig16_partition_sweep.cc.o"
  "CMakeFiles/fig16_partition_sweep.dir/fig16_partition_sweep.cc.o.d"
  "fig16_partition_sweep"
  "fig16_partition_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_partition_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
