# Empty dependencies file for fig16_partition_sweep.
# This may be replaced when dependencies are built.
