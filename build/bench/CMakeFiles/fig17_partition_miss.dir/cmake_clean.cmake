file(REMOVE_RECURSE
  "CMakeFiles/fig17_partition_miss.dir/fig17_partition_miss.cc.o"
  "CMakeFiles/fig17_partition_miss.dir/fig17_partition_miss.cc.o.d"
  "fig17_partition_miss"
  "fig17_partition_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_partition_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
