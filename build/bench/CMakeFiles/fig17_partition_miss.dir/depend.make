# Empty dependencies file for fig17_partition_miss.
# This may be replaced when dependencies are built.
