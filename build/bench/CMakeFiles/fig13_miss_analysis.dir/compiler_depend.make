# Empty compiler generated dependencies file for fig13_miss_analysis.
# This may be replaced when dependencies are built.
