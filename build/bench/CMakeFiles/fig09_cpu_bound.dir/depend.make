# Empty dependencies file for fig09_cpu_bound.
# This may be replaced when dependencies are built.
