file(REMOVE_RECURSE
  "CMakeFiles/fig09_cpu_bound.dir/fig09_cpu_bound.cc.o"
  "CMakeFiles/fig09_cpu_bound.dir/fig09_cpu_bound.cc.o.d"
  "fig09_cpu_bound"
  "fig09_cpu_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cpu_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
