# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/simcache_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/join_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/multipass_test[1]_include.cmake")
include("/root/repo/build/tests/grace_disk_test[1]_include.cmake")
include("/root/repo/build/tests/model_sim_crosscheck_test[1]_include.cmake")
