file(REMOVE_RECURSE
  "CMakeFiles/simcache_test.dir/simcache_test.cc.o"
  "CMakeFiles/simcache_test.dir/simcache_test.cc.o.d"
  "simcache_test"
  "simcache_test.pdb"
  "simcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
