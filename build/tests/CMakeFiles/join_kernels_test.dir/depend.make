# Empty dependencies file for join_kernels_test.
# This may be replaced when dependencies are built.
