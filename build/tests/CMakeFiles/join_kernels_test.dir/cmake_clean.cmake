file(REMOVE_RECURSE
  "CMakeFiles/join_kernels_test.dir/join_kernels_test.cc.o"
  "CMakeFiles/join_kernels_test.dir/join_kernels_test.cc.o.d"
  "join_kernels_test"
  "join_kernels_test.pdb"
  "join_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
