file(REMOVE_RECURSE
  "CMakeFiles/grace_disk_test.dir/grace_disk_test.cc.o"
  "CMakeFiles/grace_disk_test.dir/grace_disk_test.cc.o.d"
  "grace_disk_test"
  "grace_disk_test.pdb"
  "grace_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grace_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
