# Empty compiler generated dependencies file for grace_disk_test.
# This may be replaced when dependencies are built.
