# Empty dependencies file for model_sim_crosscheck_test.
# This may be replaced when dependencies are built.
