file(REMOVE_RECURSE
  "CMakeFiles/model_sim_crosscheck_test.dir/model_sim_crosscheck_test.cc.o"
  "CMakeFiles/model_sim_crosscheck_test.dir/model_sim_crosscheck_test.cc.o.d"
  "model_sim_crosscheck_test"
  "model_sim_crosscheck_test.pdb"
  "model_sim_crosscheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_sim_crosscheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
