// Figure 15: execution time breakdown of the partition phase at 800
// partitions. Group and software-pipelined prefetching hide most of the
// data-cache stalls the baseline and simple schemes expose when the
// output buffers overflow the L2 cache.

#include <cstdio>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);
  sim::SimConfig cfg;

  uint64_t tuples = uint64_t(10'000'000 * geo.scale);
  Relation input = GenerateSourceRelation(tuples, 100, 42);
  uint32_t parts = uint32_t(flags.GetInt("partitions", 800));

  KernelParams params;
  params.group_size = uint32_t(flags.GetInt("g", 14));
  params.prefetch_distance = uint32_t(flags.GetInt("d", 4));

  std::printf(
      "=== Figure 15: partition phase breakdown (%u partitions) "
      "[scale=%.2f] ===\n",
      parts, geo.scale);
  for (Scheme s : AllSchemes()) {
    SimRun r = RunPartitionPhaseSim(s, input, parts, params, cfg);
    PrintBreakdown(SchemeName(s), r.stats);
  }
  std::printf(
      "\npaper: group/swp hide most dcache stalls at 800 partitions\n");
  return 0;
}
