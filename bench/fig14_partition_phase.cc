// Figure 14: partition phase performance. (a) varies the number of
// partitions from 25 to 800 over a fixed source relation: simple
// prefetching wins while the output buffers fit in L2 (~128 pages), then
// collapses; group/software-pipelined prefetching win beyond. (b) grows
// the relation while keeping the partition size fixed (partition count
// grows with it). The combined scheme picks per the cache capacity.

#include <cstdio>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);
  sim::SimConfig cfg;

  KernelParams params;
  params.group_size = uint32_t(flags.GetInt("g", 14));
  params.prefetch_distance = uint32_t(flags.GetInt("d", 4));

  std::printf("=== Figure 14: partition phase performance [scale=%.2f] "
              "===\n", geo.scale);

  std::printf("\n--- (a) varying number of partitions (10M 100B tuples, "
              "scaled) ---\n");
  uint64_t tuples = uint64_t(10'000'000 * geo.scale);
  Relation input = GenerateSourceRelation(tuples, 100, 42);
  std::printf("%-14s %14s %14s %14s %14s %14s\n", "partitions", "baseline",
              "simple", "group", "swp", "combined");
  for (uint32_t parts : {25u, 50u, 100u, 200u, 400u, 800u}) {
    std::printf("%-14u", parts);
    for (Scheme s : AllSchemes()) {
      SimRun r = RunPartitionPhaseSim(s, input, parts, params, cfg);
      std::printf(" %14llu", (unsigned long long)r.stats.TotalCycles());
    }
    SimRun comb = RunPartitionPhaseSim(Scheme::kGroup, input, parts,
                                       params, cfg, /*combined=*/true);
    std::printf(" %14llu\n",
                (unsigned long long)comb.stats.TotalCycles());
  }

  std::printf("\n--- (b) varying relation size, fixed partition size ---\n");
  // Partition size held fixed while the relation (and hence the
  // partition count) grows, stepping 26..152 like the paper's run. The
  // crossover depends on the partition count (output buffers vs. L2),
  // so a reduced per-partition tuple count preserves the shape while
  // bounding memory.
  uint64_t part_tuples = uint64_t(flags.GetInt("part_tuples", 2000));
  std::printf("%-14s %-10s %14s %14s %14s %14s %14s\n", "tuples", "parts",
              "baseline", "simple", "group", "swp", "combined");
  for (uint32_t parts : {26u, 51u, 76u, 102u, 127u, 152u}) {
    uint64_t n = part_tuples * parts;
    Relation rel = GenerateSourceRelation(n, 100, 7);
    std::printf("%-14llu %-10u", (unsigned long long)n, parts);
    for (Scheme s : AllSchemes()) {
      SimRun r = RunPartitionPhaseSim(s, rel, parts, params, cfg);
      std::printf(" %14llu", (unsigned long long)r.stats.TotalCycles());
    }
    SimRun comb = RunPartitionPhaseSim(Scheme::kGroup, rel, parts, params,
                                       cfg, /*combined=*/true);
    std::printf(" %14llu\n",
                (unsigned long long)comb.stats.TotalCycles());
  }

  std::printf(
      "\npaper: simple best while buffers fit in L2 (<=~128 partitions), "
      "then deteriorates; group/swp win beyond; combined achieves "
      "1.9-2.6X overall\n");
  return 0;
}
