// Figure 14: partition phase performance. (a) varies the number of
// partitions from 25 to 800 over a fixed source relation: simple
// prefetching wins while the output buffers fit in L2 (~128 pages), then
// collapses; group/software-pipelined prefetching win beyond. (b) grows
// the relation while keeping the partition size fixed (partition count
// grows with it). The combined scheme picks per the cache capacity. The
// scheme columns are whatever this binary compiled in, plus "combined".

// --json[=path] writes BENCH_fig14.json in the shared harness schema
// (see src/perf/bench_reporter.h): one record per (section, x, scheme)
// with the simulated stall breakdown; deterministic, single trial.

#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "perf/bench_reporter.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

struct FigureCtx {
  sim::SimConfig cfg;
  KernelParams params;
  std::vector<Scheme> schemes;
  uint32_t coro_width = 1;
  perf::BenchReporter* reporter = nullptr;
};

void PrintHeader(const FigureCtx& ctx, const char* x_name,
                 const char* x2_name) {
  std::printf("%-14s", x_name);
  if (x2_name) std::printf(" %-10s", x2_name);
  for (Scheme s : ctx.schemes) std::printf(" %14s", SchemeName(s));
  std::printf(" %14s\n", "combined");
}

// One partitioning run, optionally recorded. `scheme_label` is the
// scheme name or "combined"; for combined runs `s` is the large-set
// fallback scheme PartitionCombined dispatches to.
SimRun RunCell(const FigureCtx& ctx, const std::string& section,
               const std::string& scheme_label, Scheme s, bool combined,
               const Relation& input, uint32_t parts,
               const KernelParams& params) {
  SimRun r;
  auto run = [&] {
    r = RunPartitionPhaseSim(s, input, parts, params, ctx.cfg, combined);
  };
  if (ctx.reporter) {
    JsonValue config = JsonValue::Object();
    config.Set("phase", "partition");
    config.Set("scheme", scheme_label);
    config.Set("G", params.group_size);
    config.Set("D", params.prefetch_distance);
    config.Set("threads", 1);
    config.Set("section", section);
    config.Set("partitions", parts);
    config.Set("input_tuples", input.num_tuples());
    JsonValue& rec = ctx.reporter->AddRecord(
        "fig14" + section + "/" + scheme_label + "/parts=" +
            std::to_string(parts),
        std::move(config), run);
    rec.Set("outputs", r.outputs);
    rec.Set("verified", r.outputs == input.num_tuples());
    rec.Set("sim", SimStatsToJson(r.stats));
  } else {
    run();
  }
  return r;
}

void RunRowSchemes(const FigureCtx& ctx, const std::string& section,
                   const Relation& input, uint32_t parts) {
  for (Scheme s : ctx.schemes) {
    KernelParams p = ctx.params;
    if (s == Scheme::kCoro) p.group_size = ctx.coro_width;
    SimRun r = RunCell(ctx, section, SchemeName(s), s, /*combined=*/false,
                       input, parts, p);
    std::printf(" %14llu", (unsigned long long)r.stats.TotalCycles());
  }
  SimRun comb = RunCell(ctx, section, "combined", Scheme::kGroup,
                        /*combined=*/true, input, parts, ctx.params);
  std::printf(" %14llu\n", (unsigned long long)comb.stats.TotalCycles());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);

  FigureCtx ctx;
  ctx.schemes = SchemesFromFlag(flags);
  ctx.params.group_size = uint32_t(flags.GetInt("g", 14));
  ctx.params.prefetch_distance = uint32_t(flags.GetInt("d", 4));
  // The coroutine interleave width defaults to the Theorem-1 choice for
  // the partition cost vector; an explicit --g pins it too.
  ctx.coro_width = flags.Has("g")
                       ? ctx.params.group_size
                       : TunedCoroWidth(PartitionCodeCosts(), ctx.cfg);

  std::unique_ptr<perf::BenchReporter> reporter;
  if (flags.Has("json")) {
    perf::BenchReporter::Options opt;
    opt.bench_name = "fig14";
    std::string path = flags.GetString("json", "");
    if (!path.empty() && path != "true") opt.output_path = path;
    opt.trials = int(flags.GetInt("trials", 1));
    opt.warmup = int(flags.GetInt("warmup", 0));
    // The measured quantity is simulated cycles, not host time.
    opt.collect_counters = false;
    reporter = std::make_unique<perf::BenchReporter>(std::move(opt));
    ctx.reporter = reporter.get();
  }

  std::printf("=== Figure 14: partition phase performance [scale=%.2f] "
              "===\n", geo.scale);

  std::printf("\n--- (a) varying number of partitions (10M 100B tuples, "
              "scaled) ---\n");
  uint64_t tuples = uint64_t(10'000'000 * geo.scale);
  Relation input = GenerateSourceRelation(tuples, 100, 42);
  PrintHeader(ctx, "partitions", nullptr);
  for (uint32_t parts : {25u, 50u, 100u, 200u, 400u, 800u}) {
    std::printf("%-14u", parts);
    RunRowSchemes(ctx, "a", input, parts);
  }

  std::printf("\n--- (b) varying relation size, fixed partition size ---\n");
  // Partition size held fixed while the relation (and hence the
  // partition count) grows, stepping 26..152 like the paper's run. The
  // crossover depends on the partition count (output buffers vs. L2),
  // so a reduced per-partition tuple count preserves the shape while
  // bounding memory.
  uint64_t part_tuples = uint64_t(flags.GetInt("part_tuples", 2000));
  PrintHeader(ctx, "tuples", "parts");
  for (uint32_t parts : {26u, 51u, 76u, 102u, 127u, 152u}) {
    uint64_t n = part_tuples * parts;
    Relation rel = GenerateSourceRelation(n, 100, 7);
    std::printf("%-14llu %-10u", (unsigned long long)n, parts);
    RunRowSchemes(ctx, "b", rel, parts);
  }

  std::printf(
      "\npaper: simple best while buffers fit in L2 (<=~128 partitions), "
      "then deteriorates; group/swp win beyond; combined achieves "
      "1.9-2.6X overall\n");

  if (reporter) {
    Status st = reporter->Write();
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   reporter->output_path().c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu records)\n",
                reporter->output_path().c_str(),
                reporter->doc().Find("records")->size());
  }
  return 0;
}
