// Cross-query hash-table reuse under a Zipf replay workload: a catalog
// of join tables whose popularity follows a Zipf distribution, a stream
// of probe queries admitted through the JoinScheduler, and (optionally)
// the service-level HashTableCache holding built tables in the broker's
// lowest-priority revocable grant class. With --reuse=on a query whose
// table is cached skips the partition and build phases entirely and
// probes the pinned table; with --reuse=off every query rebuilds. Both
// modes run at the same broker budget, so the comparison isolates the
// reuse benefit: on a Zipf(1.0) trace the hot tables are built once and
// probed many times.
//
// --update-rate injects version bumps (catalog update + cache
// invalidation) before a fraction of the queries, bounding staleness:
// a query always joins against the version it captured at admission,
// and the cache never serves a version the catalog has moved past.
//
// Reports service throughput, run-latency tails, cache hit rate, and
// bytes revoked from the cache; --json[=path] writes BENCH_reuse.json
// in the shared harness schema (a "reuse" aggregate record carries the
// gated metrics).
//
//   reuse_bench [--reuse=on|off] [--tables=16] [--queries=200]
//               [--theta=1.0] [--update-rate=0.0] [--scheme=group]
//               [--build-tuples=N] [--probe-tuples=N] [--cache-bytes=N]
//               [--mem-budget=N] [--max-concurrent=4] [--pool-threads=4]
//               [--smoke] [--json[=path]]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cache/hash_table_cache.h"
#include "hash/hash_table.h"
#include "join/grace.h"
#include "mem/memory_model.h"
#include "perf/bench_reporter.h"
#include "sched/join_scheduler.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/replay.h"

using namespace hashjoin;

namespace {

/// One replay query as submitted: the inputs and cache key captured at
/// admission time, so a catalog update racing the queue cannot change
/// what the query joins or what count it must produce.
struct ReplayJob {
  uint32_t table = 0;
  std::shared_ptr<const Relation> build;
  std::shared_ptr<const Relation> probe;
  uint64_t expected_matches = 0;
  cache::CacheKey key;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = size_t(p * double(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

JsonValue WallObject(double seconds) {
  JsonValue wall = JsonValue::Object();
  wall.Set("median", seconds);
  wall.Set("min", seconds);
  wall.Set("mean", seconds);
  return wall;
}

void FinishRawRecord(JsonValue* rec) {
  rec->Set("trials", 1);
  rec->Set("warmup", 0);
  rec->Set("counters", JsonValue());
  rec->Set("counters_unavailable",
           "per-query wall time is measured by the service, not the "
           "trial harness");
}

/// The cache metrics object every record variant carries — zeros with
/// --reuse=off so the JSON schema (and the smoke fixture's --require
/// list) is identical in both modes.
JsonValue CacheObject(const cache::CacheStats& cs,
                      uint64_t broker_cache_revoked,
                      uint64_t normal_revokes_with_surplus) {
  JsonValue c = JsonValue::Object();
  c.Set("hit_rate", cs.HitRate());
  c.Set("hits", cs.hits);
  c.Set("misses", cs.misses);
  c.Set("lookups", cs.lookups);
  c.Set("inserts", cs.inserts);
  c.Set("rejected_inserts", cs.rejected_inserts);
  c.Set("evictions", cs.evictions);
  c.Set("invalidations", cs.invalidations);
  c.Set("revoked_bytes", cs.revoked_bytes);
  c.Set("charged_bytes", cs.charged_bytes);
  c.Set("entries", cs.entries);
  c.Set("broker_revoked_bytes", broker_cache_revoked);
  c.Set("normal_revokes_with_cache_surplus", normal_revokes_with_surplus);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  const bool smoke = flags.Has("smoke");
  const std::string reuse_str = flags.GetString("reuse", "on");
  HJ_CHECK(reuse_str == "on" || reuse_str == "off")
      << "--reuse must be on or off";
  const bool reuse = reuse_str == "on";

  Scheme scheme = Scheme::kGroup;
  const std::string scheme_name = flags.GetString("scheme", "group");
  HJ_CHECK(ParseScheme(scheme_name, &scheme))
      << "unknown scheme " << scheme_name << " (valid: " << SchemeNameList()
      << ")";
  HJ_CHECK(SchemeAvailable(scheme))
      << scheme_name << " not available in this build";

  ReplaySpec spec;
  spec.num_tables = uint32_t(flags.GetInt("tables", smoke ? 8 : 16));
  spec.num_queries = uint32_t(flags.GetInt("queries", smoke ? 48 : 200));
  spec.build_tuples_per_table =
      uint64_t(flags.GetInt("build-tuples", smoke ? 5000 : 40000));
  spec.probe_tuples_per_query =
      uint64_t(flags.GetInt("probe-tuples", smoke ? 500 : 4000));
  spec.tuple_size = 64;
  spec.zipf_theta = flags.GetDouble("theta", 1.0);
  spec.update_rate = flags.GetDouble("update-rate", 0.0);
  spec.seed = uint64_t(flags.GetInt("seed", 42));

  const std::vector<ReplayOp> trace = GenerateReplayTrace(spec);
  ReplayCatalog catalog(spec);

  // Working set of one query: build pages + hash table + probe pages.
  // Sized so the in-memory grace join plans a single partition — the
  // plan shape the cache serves.
  const uint64_t build_bytes = catalog.build(0)->data_bytes();
  const uint64_t table_bytes =
      HashTable::EstimateBytes(spec.build_tuples_per_table);
  const uint64_t entry_bytes = build_bytes + table_bytes;
  const uint64_t working_set =
      2 * (build_bytes + table_bytes) + catalog.probe(0)->data_bytes();

  // Default cache: room for about half the catalog — hot Zipf tables
  // fit, the cold tail churns.
  const uint64_t cache_bytes = uint64_t(flags.GetInt(
      "cache-bytes", int64_t((spec.num_tables / 2 + 1) * entry_bytes)));

  SchedulerConfig sched_cfg;
  sched_cfg.max_concurrent = uint32_t(flags.GetInt("max-concurrent", 4));
  sched_cfg.pool_threads = uint32_t(flags.GetInt("pool-threads", 4));
  sched_cfg.max_queue = std::max(1u, spec.num_queries);
  // Equal-budget comparison: both modes get the same broker budget; the
  // cache's grant is carved out of it only when reuse is on.
  const uint64_t mem_budget = uint64_t(flags.GetInt(
      "mem-budget",
      int64_t(cache_bytes + sched_cfg.max_concurrent * working_set +
              (1ull << 20))));
  sched_cfg.memory_budget = mem_budget;
  sched_cfg.cache_bytes = reuse ? cache_bytes : 0;

  std::printf(
      "=== Zipf replay: %u tables x %llu build tuples, %u queries, "
      "theta=%.2f, update_rate=%.2f, reuse=%s ===\n"
      "budget %.1f MiB (cache %.1f MiB), scheme=%s, max_concurrent=%u\n\n",
      spec.num_tables, (unsigned long long)spec.build_tuples_per_table,
      spec.num_queries, spec.zipf_theta, spec.update_rate,
      reuse ? "on" : "off", double(mem_budget) / (1024.0 * 1024.0),
      double(reuse ? cache_bytes : 0) / (1024.0 * 1024.0),
      SchemeName(scheme), sched_cfg.max_concurrent);

  JoinScheduler sched(sched_cfg);
  cache::HashTableCache* table_cache = sched.table_cache();
  HJ_CHECK(reuse == (table_cache != nullptr));

  // Submit the trace. Updates apply on this thread before their query
  // is admitted; in-flight queries keep the inputs they captured via
  // shared_ptr, so an update never invalidates memory under a reader.
  std::vector<ReplayJob> jobs(trace.size());
  std::vector<uint8_t> cache_hits(trace.size(), 0);
  uint64_t invalidated_entries = 0;
  WallTimer replay_timer;
  for (size_t i = 0; i < trace.size(); ++i) {
    const ReplayOp& op = trace[i];
    if (op.is_update) {
      catalog.Update(op.table);
      if (table_cache != nullptr) {
        invalidated_entries +=
            table_cache->Invalidate(catalog.relation_id(op.table));
      }
    }
    ReplayJob& job = jobs[i];
    job.table = op.table;
    job.build = catalog.build(op.table);
    job.probe = catalog.probe(op.table);
    job.expected_matches = catalog.expected_matches(op.table);
    job.key.relation_id = catalog.relation_id(op.table);
    job.key.version = catalog.version(op.table);
    job.key.fingerprint = cache::SchemaFingerprint(job.build->schema());

    JoinRequest req;
    req.name = "r" + std::to_string(i);
    req.min_grant_bytes = working_set;
    req.desired_grant_bytes = working_set;
    uint8_t* hit_flag = &cache_hits[i];
    const ReplayJob* j = &job;
    req.body = [j, scheme, hit_flag](QueryContext& ctx)
        -> StatusOr<uint64_t> {
      RealMemory mm;
      GraceConfig cfg;
      cfg.join_scheme = scheme;
      cfg.dynamic_budget = ctx.GrantFn();
      cfg.table_cache = ctx.table_cache();
      cfg.cache_key = j->key;
      JoinResult r = GraceHashJoin(mm, *j->build, *j->probe, cfg, nullptr);
      *hit_flag = r.cache_hit ? 1 : 0;
      return r.output_tuples;
    };
    auto id = sched.Submit(std::move(req));
    HJ_CHECK(id.ok()) << "replay query rejected: " << id.status().ToString();
  }
  ServiceStats stats = sched.Drain();
  const double replay_seconds = replay_timer.ElapsedSeconds();

  // --- verification + per-table tallies ---
  uint64_t bad_counts = 0;
  std::vector<double> run_seconds, queue_seconds;
  std::vector<uint64_t> table_queries(spec.num_tables, 0);
  std::vector<uint64_t> table_hits(spec.num_tables, 0);
  for (const QueryStats& qs : stats.queries) {
    HJ_CHECK(qs.name.size() > 1 && qs.name[0] == 'r');
    const size_t idx = size_t(std::stoull(qs.name.substr(1)));
    HJ_CHECK(idx < jobs.size());
    const ReplayJob& job = jobs[idx];
    const bool correct =
        qs.status.ok() && qs.output_tuples == job.expected_matches;
    if (!correct) ++bad_counts;
    ++table_queries[job.table];
    if (cache_hits[idx] != 0) ++table_hits[job.table];
    run_seconds.push_back(qs.run_seconds);
    queue_seconds.push_back(qs.queue_seconds);
  }
  const bool service_ok = bad_counts == 0 && stats.failed == 0 &&
                          stats.completed == spec.num_queries;
  const double throughput =
      replay_seconds > 0 ? double(stats.completed) / replay_seconds : 0;

  cache::CacheStats cs;
  if (table_cache != nullptr) cs = table_cache->stats();
  const uint64_t broker_cache_revoked = sched.broker().cache_revoked_bytes();
  const uint64_t normal_with_surplus =
      sched.broker().normal_revokes_with_cache_surplus();

  std::printf("%-6s %8s %6s %8s\n", "table", "queries", "hits", "hit%");
  for (uint32_t t = 0; t < spec.num_tables; ++t) {
    if (table_queries[t] == 0) continue;
    std::printf("%-6u %8llu %6llu %7.1f%%\n", t,
                (unsigned long long)table_queries[t],
                (unsigned long long)table_hits[t],
                100.0 * double(table_hits[t]) / double(table_queries[t]));
  }
  std::printf(
      "\nservice: %llu completed, %llu failed; %.4fs wall; "
      "%.1f queries/s; run p50=%.4fs p99=%.4fs\n",
      (unsigned long long)stats.completed, (unsigned long long)stats.failed,
      replay_seconds, throughput, Percentile(run_seconds, 0.5),
      Percentile(run_seconds, 0.99));
  std::printf(
      "cache: %.1f%% hit rate (%llu/%llu), %llu inserts, %llu evictions, "
      "%llu invalidated, %.1f KiB revoked (broker: %.1f KiB); updates=%llu\n",
      100.0 * cs.HitRate(), (unsigned long long)cs.hits,
      (unsigned long long)cs.lookups, (unsigned long long)cs.inserts,
      (unsigned long long)cs.evictions,
      (unsigned long long)cs.invalidations,
      double(cs.revoked_bytes) / 1024.0,
      double(broker_cache_revoked) / 1024.0,
      (unsigned long long)catalog.total_updates());
  if (normal_with_surplus != 0) {
    std::printf("FAILURE: %llu normal-grant revokes happened while the "
                "cache still held revocable surplus\n",
                (unsigned long long)normal_with_surplus);
  }
  if (!service_ok) {
    std::printf("FAILURE: %llu queries wrong or failed\n",
                (unsigned long long)(bad_counts + stats.failed));
  }

  const bool ok = service_ok && normal_with_surplus == 0;

  if (flags.Has("json")) {
    perf::BenchReporter::Options opt;
    opt.bench_name = "reuse";
    std::string path = flags.GetString("json", "");
    if (!path.empty() && path != "true") opt.output_path = path;
    opt.trials = 1;
    opt.warmup = 0;
    opt.collect_counters = false;
    perf::BenchReporter reporter(std::move(opt));

    for (uint32_t t = 0; t < spec.num_tables; ++t) {
      if (table_queries[t] == 0) continue;
      JsonValue rec = JsonValue::Object();
      rec.Set("name", "table/" + std::to_string(t));
      JsonValue config = JsonValue::Object();
      config.Set("reuse", reuse ? "on" : "off");
      config.Set("table", t);
      config.Set("build_tuples", spec.build_tuples_per_table);
      rec.Set("config", std::move(config));
      rec.Set("wall_seconds", WallObject(0));
      FinishRawRecord(&rec);
      rec.Set("queries", table_queries[t]);
      rec.Set("hits", table_hits[t]);
      reporter.AddRawRecord(std::move(rec));
    }

    JsonValue rec = JsonValue::Object();
    rec.Set("name", "reuse");
    JsonValue config = JsonValue::Object();
    config.Set("reuse", reuse ? "on" : "off");
    config.Set("tables", spec.num_tables);
    config.Set("queries", spec.num_queries);
    config.Set("build_tuples", spec.build_tuples_per_table);
    config.Set("probe_tuples", spec.probe_tuples_per_query);
    config.Set("zipf_theta", spec.zipf_theta);
    config.Set("update_rate", spec.update_rate);
    config.Set("scheme", SchemeName(scheme));
    config.Set("mem_budget", mem_budget);
    config.Set("cache_bytes", reuse ? cache_bytes : 0);
    config.Set("max_concurrent", sched_cfg.max_concurrent);
    rec.Set("config", std::move(config));
    rec.Set("wall_seconds", WallObject(replay_seconds));
    FinishRawRecord(&rec);
    rec.Set("completed", stats.completed);
    rec.Set("failed", stats.failed);
    rec.Set("throughput_qps", throughput);
    rec.Set("updates", catalog.total_updates());
    rec.Set("invalidated_entries", invalidated_entries);
    rec.Set("cache",
            CacheObject(cs, broker_cache_revoked, normal_with_surplus));
    JsonValue tail = JsonValue::Object();
    tail.Set("run_p50", Percentile(run_seconds, 0.5));
    tail.Set("run_p95", Percentile(run_seconds, 0.95));
    tail.Set("run_p99", Percentile(run_seconds, 0.99));
    tail.Set("run_max", Percentile(run_seconds, 1.0));
    tail.Set("queue_p50", Percentile(queue_seconds, 0.5));
    tail.Set("queue_p95", Percentile(queue_seconds, 0.95));
    tail.Set("queue_p99", Percentile(queue_seconds, 0.99));
    tail.Set("queue_max", Percentile(queue_seconds, 1.0));
    rec.Set("tail_latency", std::move(tail));
    rec.Set("verified", ok);
    reporter.AddRawRecord(std::move(rec));

    Status st = reporter.Write();
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   reporter.output_path().c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", reporter.output_path().c_str(),
                reporter.doc().Find("records")->size());
  }
  return ok ? 0 : 1;
}
