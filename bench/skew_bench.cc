// Skew tolerance: the prefetching kernels' conflict protocols (§4.4's
// delayed tuples, §5.3's waiting queues) engage when multiple tuples of
// a group hit the same bucket. Under Zipf-skewed build keys, conflicts
// go from negligible to constant; this bench shows the schemes' build
// times stay close to the baseline's trajectory — the protocols tolerate
// skew rather than collapsing ("the algorithm can deal with any number
// of delayed tuples", §4.4).

#include <cstdio>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.05);
  sim::SimConfig cfg;
  uint64_t tuples = geo.BuildTuples(20);

  std::printf("=== Build-phase skew tolerance (Zipf keys, %llu tuples) "
              "[scale=%.2f] ===\n\n",
              (unsigned long long)tuples, geo.scale);
  std::printf("%-10s %14s %14s %14s\n", "theta", "baseline", "group",
              "swp");

  KernelParams params;
  params.group_size = 14;
  params.prefetch_distance = 2;
  for (double theta : {0.0, 0.5, 0.8, 0.99, 1.1}) {
    Relation build =
        theta == 0.0
            ? GenerateSourceRelation(tuples, 20, 7)
            : GenerateSkewedRelation(tuples, 20, theta, tuples / 4, 7);
    std::printf("%-10.2f", theta);
    for (Scheme s :
         {Scheme::kBaseline, Scheme::kGroup, Scheme::kSwp}) {
      sim::MemorySim simulator(cfg);
      SimMemory mm(&simulator);
      HashTable ht(ChooseBucketCount(build.num_tuples(), 31));
      BuildPartition(mm, s, build, &ht, params);
      HJ_CHECK(ht.CountTuplesSlow() == build.num_tuples());
      std::printf(" %14llu",
                  (unsigned long long)simulator.stats().TotalCycles());
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected: group/swp keep a large margin over the baseline at "
      "every skew level; conflicts add modest serial work, never "
      "incorrectness\n");

  // --- Morsel-parallel GRACE join under partition-size skew ---
  //
  // Zipf keys also skew the *partition* sizes, which is exactly what the
  // largest-first morsel schedule is for: the big partition starts
  // first, the small ones fill the other workers. Per-thread simulated
  // breakdowns show how evenly the stall profile spreads; the summed
  // totals equal the merged join-phase window by construction.
  uint32_t threads = uint32_t(flags.GetInt("threads", 4));
  std::printf(
      "\n=== Morsel-parallel GRACE join, Zipf build keys (theta=0.99, "
      "threads=%u) ===\n\n",
      threads);
  Relation build =
      GenerateSkewedRelation(tuples, 20, 0.99, tuples / 4, 7);
  Relation probe =
      GenerateSkewedRelation(2 * tuples, 20, 0.99, tuples / 4, 9);
  GraceConfig config;
  config.forced_num_partitions = 8;
  config.join_params = params;
  config.num_threads = threads;
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  JoinResult r = GraceHashJoin(mm, build, probe, config, nullptr);
  std::printf("output tuples: %llu (thread-count independent)\n",
              (unsigned long long)r.output_tuples);
  for (size_t t = 0; t < r.per_thread_join_sim.size(); ++t) {
    PrintBreakdown("  thread " + std::to_string(t),
                   r.per_thread_join_sim[t]);
  }
  PrintBreakdown("  join phase merged", r.join_phase.sim);
  std::printf(
      "\nexpected: no thread's total dwarfs the rest (largest-first "
      "morsels bound the tail), and per-thread cycles sum to the merged "
      "join-phase window\n");
  return 0;
}
