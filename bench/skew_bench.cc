// Skew tolerance: the prefetching kernels' conflict protocols (§4.4's
// delayed tuples, §5.3's waiting queues) engage when multiple tuples of
// a group hit the same bucket. Under Zipf-skewed build keys, conflicts
// go from negligible to constant; this bench shows the schemes' build
// times stay close to the baseline's trajectory — the protocols tolerate
// skew rather than collapsing ("the algorithm can deal with any number
// of delayed tuples", §4.4).

// --json[=path] additionally writes BENCH_skew.json in the shared
// harness schema (see src/perf/bench_reporter.h): one record per
// (theta, scheme) with the full simulated stall breakdown, plus the
// morsel-parallel record with per-thread sim stats. Simulated cycles
// are deterministic, so the default is a single trial.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "perf/bench_reporter.h"

using namespace hashjoin;
using namespace hashjoin::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.05);
  sim::SimConfig cfg;
  uint64_t tuples = geo.BuildTuples(20);

  std::unique_ptr<perf::BenchReporter> reporter;
  if (flags.Has("json")) {
    perf::BenchReporter::Options opt;
    opt.bench_name = "skew";
    std::string path = flags.GetString("json", "");
    if (!path.empty() && path != "true") opt.output_path = path;
    opt.trials = int(flags.GetInt("trials", 1));
    opt.warmup = int(flags.GetInt("warmup", 0));
    // The measured quantity is simulated cycles, not host time.
    opt.collect_counters = false;
    reporter = std::make_unique<perf::BenchReporter>(std::move(opt));
  }

  std::printf("=== Build-phase skew tolerance (Zipf keys, %llu tuples) "
              "[scale=%.2f] ===\n\n",
              (unsigned long long)tuples, geo.scale);
  // Conflict-protocol schemes (simple has no inter-tuple protocol, so it
  // is uninteresting here); --scheme overrides the set.
  std::vector<Scheme> schemes;
  if (flags.Has("scheme")) {
    schemes = SchemesFromFlag(flags);
  } else {
    schemes = {Scheme::kBaseline, Scheme::kGroup, Scheme::kSwp};
    if (SchemeAvailable(Scheme::kCoro)) schemes.push_back(Scheme::kCoro);
  }
  std::printf("%-10s", "theta");
  for (Scheme s : schemes) std::printf(" %14s", SchemeName(s));
  std::printf("\n");

  // Model-chosen depths for the simulated machine (the build loop shares
  // the probe loop's bucket-walk stage structure) — no hardcoded G/D.
  KernelParams params = SimTunedParams(ProbeCodeCosts(), cfg);
  for (double theta : {0.0, 0.5, 0.8, 0.99, 1.1}) {
    Relation build =
        theta == 0.0
            ? GenerateSourceRelation(tuples, 20, 7)
            : GenerateSkewedRelation(tuples, 20, theta, tuples / 4, 7);
    std::printf("%-10.2f", theta);
    for (Scheme s : schemes) {
      sim::SimStats stats;
      uint64_t built = 0;
      auto run_build = [&] {
        sim::MemorySim simulator(cfg);
        SimMemory mm(&simulator);
        HashTable ht(ChooseBucketCount(build.num_tuples(), 31));
        BuildPartition(mm, s, build, &ht, params);
        built = ht.CountTuplesSlow();
        HJ_CHECK(built == build.num_tuples());
        stats = simulator.stats();
      };
      if (reporter) {
        char theta_str[16];
        std::snprintf(theta_str, sizeof(theta_str), "%.2f", theta);
        JsonValue config = JsonValue::Object();
        config.Set("phase", "build");
        config.Set("scheme", SchemeName(s));
        config.Set("G", params.group_size);
        config.Set("D", params.prefetch_distance);
        config.Set("threads", 1);
        config.Set("theta", theta);
        config.Set("build_tuples", build.num_tuples());
        JsonValue& rec = reporter->AddRecord(
            std::string("build/") + SchemeName(s) + "/theta=" + theta_str,
            std::move(config), run_build);
        rec.Set("outputs", built);
        rec.Set("verified", built == build.num_tuples());
        rec.Set("sim", SimStatsToJson(stats));
      } else {
        run_build();
      }
      std::printf(" %14llu",
                  (unsigned long long)stats.TotalCycles());
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected: group/swp keep a large margin over the baseline at "
      "every skew level; conflicts add modest serial work, never "
      "incorrectness\n");

  // --- Morsel-parallel GRACE join under partition-size skew ---
  //
  // Zipf keys also skew the *partition* sizes, which is exactly what the
  // largest-first morsel schedule is for: the big partition starts
  // first, the small ones fill the other workers. Per-thread simulated
  // breakdowns show how evenly the stall profile spreads; the summed
  // totals equal the merged join-phase window by construction.
  uint32_t threads = uint32_t(flags.GetInt("threads", 4));
  std::printf(
      "\n=== Morsel-parallel GRACE join, Zipf build keys (theta=0.99, "
      "threads=%u) ===\n\n",
      threads);
  Relation build =
      GenerateSkewedRelation(tuples, 20, 0.99, tuples / 4, 7);
  Relation probe =
      GenerateSkewedRelation(2 * tuples, 20, 0.99, tuples / 4, 9);
  GraceConfig config;
  config.forced_num_partitions = 8;
  config.join_params = params;
  config.num_threads = threads;
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  JoinResult r = GraceHashJoin(mm, build, probe, config, nullptr);
  std::printf("output tuples: %llu (thread-count independent)\n",
              (unsigned long long)r.output_tuples);
  for (size_t t = 0; t < r.per_thread_join_sim.size(); ++t) {
    PrintBreakdown("  thread " + std::to_string(t),
                   r.per_thread_join_sim[t]);
  }
  PrintBreakdown("  join phase merged", r.join_phase.sim);
  std::printf(
      "\nexpected: no thread's total dwarfs the rest (largest-first "
      "morsels bound the tail), and per-thread cycles sum to the merged "
      "join-phase window\n");

  if (reporter) {
    JsonValue rec = JsonValue::Object();
    rec.Set("name", "grace_morsel/theta=0.99");
    JsonValue config = JsonValue::Object();
    config.Set("phase", "grace_full");
    config.Set("scheme", SchemeName(GraceConfig{}.join_scheme));
    config.Set("G", params.group_size);
    config.Set("D", params.prefetch_distance);
    config.Set("threads", threads);
    config.Set("theta", 0.99);
    config.Set("build_tuples", build.num_tuples());
    config.Set("probe_tuples", probe.num_tuples());
    rec.Set("config", std::move(config));
    rec.Set("trials", 1);
    rec.Set("warmup", 0);
    JsonValue wall = JsonValue::Object();
    wall.Set("median", r.join_phase.wall_seconds);
    wall.Set("min", r.join_phase.wall_seconds);
    wall.Set("mean", r.join_phase.wall_seconds);
    rec.Set("wall_seconds", std::move(wall));
    rec.Set("counters", JsonValue());
    rec.Set("counters_unavailable", "simulated run (cycles are exact)");
    rec.Set("outputs", r.output_tuples);
    rec.Set("sim", SimStatsToJson(r.join_phase.sim));
    JsonValue per_thread = JsonValue::Array();
    for (const auto& t : r.per_thread_join_sim) {
      per_thread.Append(SimStatsToJson(t));
    }
    rec.Set("per_thread_sim", std::move(per_thread));
    reporter->AddRawRecord(std::move(rec));

    Status st = reporter->Write();
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   reporter->output_path().c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n",
                reporter->output_path().c_str(),
                reporter->doc().Find("records")->size());
  }
  return 0;
}
