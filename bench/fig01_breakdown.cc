// Figure 1: user-mode execution time breakdown of the GRACE hash join's
// partition phase (one relation -> 800 partitions) and join phase (one
// 50MB build partition joined with its probe partition). The paper
// reports 82% (partition) and 73% (join) of user time stalled on data
// cache misses.

#include <cstdio>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);
  sim::SimConfig cfg;

  std::printf("=== Figure 1: execution time breakdown (GRACE baseline) "
              "[scale=%.2f] ===\n", geo.scale);

  // --- partition bar: scaled 1GB relation -> 800 partitions ---
  {
    uint64_t tuples = uint64_t(1024.0 * 1024 * 1024 * geo.scale) / 100;
    Relation input = GenerateSourceRelation(tuples, 100, 42);
    SimRun r = RunPartitionPhaseSim(Scheme::kBaseline, input, 800,
                                    KernelParams{}, cfg);
    PrintBreakdown("partition (800 parts)", r.stats);
  }

  // --- join bar: 50MB build partition + 100MB probe partition ---
  {
    WorkloadSpec spec;
    spec.tuple_size = 100;
    spec.num_build_tuples = geo.BuildTuples(100);
    spec.matches_per_build = 2.0;
    JoinWorkload w = GenerateJoinWorkload(spec);
    SimRun r = RunJoinPhaseSim(Scheme::kBaseline, w, KernelParams{}, cfg);
    PrintBreakdown("join (50MB build)", r.stats);
  }

  std::printf("\npaper: partition 82%% dcache stall, join 73%% dcache "
              "stall\n");
  return 0;
}
