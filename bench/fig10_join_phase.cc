// Figure 10: join phase performance of the four schemes varying
// (a) tuple size, (b) probe tuples per build tuple, (c) the fraction of
// tuples with matches. The paper reports 2.4-2.9X (group) and 2.1-2.7X
// (software-pipelined) speedups over the GRACE baseline, and only
// 1.1-1.2X for simple prefetching.

#include <cstdio>
#include <string>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

KernelParams PaperParams() {
  KernelParams p;
  p.group_size = 14;        // our simulated machine's optimum (paper: 19)
  p.prefetch_distance = 1;  // optimum at T=150 (same as the paper's)
  return p;
}

void RunRow(const std::string& label, const WorkloadSpec& spec,
            const sim::SimConfig& cfg) {
  JoinWorkload w = GenerateJoinWorkload(spec);
  std::vector<uint64_t> cycles;
  uint64_t expect = w.expected_matches;
  for (Scheme s : AllSchemes()) {
    SimRun r = RunJoinPhaseSim(s, w, PaperParams(), cfg);
    if (r.outputs != expect) {
      std::fprintf(stderr, "output mismatch: %llu vs %llu\n",
                   (unsigned long long)r.outputs,
                   (unsigned long long)expect);
      return;
    }
    cycles.push_back(r.stats.TotalCycles());
  }
  PrintSeriesRow(label, cycles);
  PrintSpeedups(cycles);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);
  sim::SimConfig cfg;

  std::printf("=== Figure 10: join phase performance [scale=%.2f] ===\n",
              geo.scale);

  std::printf("\n--- (a) varying tuple size (2 matches/build) ---\n");
  PrintSeriesHeader("tuple_bytes");
  for (uint32_t ts : {20u, 60u, 100u, 140u}) {
    WorkloadSpec spec;
    spec.tuple_size = ts;
    spec.num_build_tuples = geo.BuildTuples(ts);
    spec.matches_per_build = 2.0;
    RunRow(std::to_string(ts), spec, cfg);
  }

  std::printf("\n--- (b) varying matches per build tuple (100B) ---\n");
  PrintSeriesHeader("matches");
  for (double m : {1.0, 2.0, 3.0, 4.0}) {
    WorkloadSpec spec;
    spec.tuple_size = 100;
    spec.num_build_tuples = geo.BuildTuples(100);
    spec.matches_per_build = m;
    RunRow(std::to_string(int(m)), spec, cfg);
  }

  std::printf("\n--- (c) varying %% of tuples with matches (100B) ---\n");
  PrintSeriesHeader("pct_match");
  for (double f : {0.5, 0.75, 1.0}) {
    WorkloadSpec spec;
    spec.tuple_size = 100;
    spec.num_build_tuples = geo.BuildTuples(100);
    spec.matches_per_build = 2.0;
    spec.build_match_fraction = f;
    spec.probe_match_fraction = f;
    RunRow(std::to_string(int(f * 100)) + "%", spec, cfg);
  }

  std::printf(
      "\npaper: group 2.4-2.9X, swp 2.1-2.7X, simple 1.1-1.2X over "
      "baseline\n");
  return 0;
}
