// Figure 10: join phase performance of the schemes varying (a) tuple
// size, (b) probe tuples per build tuple, (c) the fraction of tuples
// with matches. The paper reports 2.4-2.9X (group) and 2.1-2.7X
// (software-pipelined) speedups over the GRACE baseline, and only
// 1.1-1.2X for simple prefetching. The coroutine column is the AMAC
// -style policy; its interleave width comes from the same Theorem-1
// sizing as G.

// --json[=path] writes BENCH_fig10.json in the shared harness schema
// (see src/perf/bench_reporter.h): one record per (section, x, scheme)
// with the simulated stall breakdown. Simulated cycles are
// deterministic, so the default is a single trial.

#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "perf/bench_reporter.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

KernelParams PaperParams() {
  // Our simulated machine's optimum G=14 (paper: 19), D=1 at T=150.
  return SimPaperJoinParams();
}

// The coroutine width W hides the same latency G group slots do, so it
// takes the Theorem-1 choice rather than the fixed paper G.
KernelParams SchemeParams(Scheme s, const sim::SimConfig& cfg) {
  KernelParams p = PaperParams();
  if (s == Scheme::kCoro) {
    p.group_size = TunedCoroWidth(ProbeCodeCosts(), cfg);
  }
  return p;
}

void RunRow(const std::string& section, const std::string& x_name,
            const std::string& x, const WorkloadSpec& spec,
            const std::vector<Scheme>& schemes, const sim::SimConfig& cfg,
            perf::BenchReporter* reporter) {
  JoinWorkload w = GenerateJoinWorkload(spec);
  std::vector<uint64_t> cycles;
  uint64_t expect = w.expected_matches;
  for (Scheme s : schemes) {
    KernelParams params = SchemeParams(s, cfg);
    SimRun r;
    auto run = [&] { r = RunJoinPhaseSim(s, w, params, cfg); };
    if (reporter) {
      JsonValue config = JsonValue::Object();
      config.Set("phase", "join");
      config.Set("scheme", SchemeName(s));
      config.Set("G", params.group_size);
      config.Set("D", params.prefetch_distance);
      config.Set("threads", 1);
      config.Set("section", section);
      config.Set(x_name, x);
      config.Set("tuple_size", spec.tuple_size);
      config.Set("build_tuples", spec.num_build_tuples);
      JsonValue& rec = reporter->AddRecord(
          "fig10" + section + "/" + SchemeName(s) + "/" + x_name + "=" + x,
          std::move(config), run);
      rec.Set("outputs", r.outputs);
      rec.Set("verified", r.outputs == expect);
      rec.Set("sim", SimStatsToJson(r.stats));
    } else {
      run();
    }
    if (r.outputs != expect) {
      std::fprintf(stderr, "output mismatch (%s): %llu vs %llu\n",
                   SchemeName(s), (unsigned long long)r.outputs,
                   (unsigned long long)expect);
      return;
    }
    cycles.push_back(r.stats.TotalCycles());
  }
  PrintSeriesRow(x, cycles);
  PrintSpeedups(cycles);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);
  sim::SimConfig cfg;
  std::vector<Scheme> schemes = SchemesFromFlag(flags);

  std::unique_ptr<perf::BenchReporter> reporter;
  if (flags.Has("json")) {
    perf::BenchReporter::Options opt;
    opt.bench_name = "fig10";
    std::string path = flags.GetString("json", "");
    if (!path.empty() && path != "true") opt.output_path = path;
    opt.trials = int(flags.GetInt("trials", 1));
    opt.warmup = int(flags.GetInt("warmup", 0));
    // The measured quantity is simulated cycles, not host time.
    opt.collect_counters = false;
    reporter = std::make_unique<perf::BenchReporter>(std::move(opt));
  }

  std::printf("=== Figure 10: join phase performance [scale=%.2f] ===\n",
              geo.scale);

  std::printf("\n--- (a) varying tuple size (2 matches/build) ---\n");
  PrintSeriesHeader("tuple_bytes", schemes);
  for (uint32_t ts : {20u, 60u, 100u, 140u}) {
    WorkloadSpec spec;
    spec.tuple_size = ts;
    spec.num_build_tuples = geo.BuildTuples(ts);
    spec.matches_per_build = 2.0;
    RunRow("a", "tuple_bytes", std::to_string(ts), spec, schemes, cfg,
           reporter.get());
  }

  std::printf("\n--- (b) varying matches per build tuple (100B) ---\n");
  PrintSeriesHeader("matches", schemes);
  for (double m : {1.0, 2.0, 3.0, 4.0}) {
    WorkloadSpec spec;
    spec.tuple_size = 100;
    spec.num_build_tuples = geo.BuildTuples(100);
    spec.matches_per_build = m;
    RunRow("b", "matches", std::to_string(int(m)), spec, schemes, cfg,
           reporter.get());
  }

  std::printf("\n--- (c) varying %% of tuples with matches (100B) ---\n");
  PrintSeriesHeader("pct_match", schemes);
  for (double f : {0.5, 0.75, 1.0}) {
    WorkloadSpec spec;
    spec.tuple_size = 100;
    spec.num_build_tuples = geo.BuildTuples(100);
    spec.matches_per_build = 2.0;
    spec.build_match_fraction = f;
    spec.probe_match_fraction = f;
    RunRow("c", "pct_match", std::to_string(int(f * 100)), spec, schemes,
           cfg, reporter.get());
  }

  std::printf(
      "\npaper: group 2.4-2.9X, swp 2.1-2.7X, simple 1.1-1.2X over "
      "baseline\n");

  if (reporter) {
    Status st = reporter->Write();
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   reporter->output_path().c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu records)\n",
                reporter->output_path().c_str(),
                reporter->doc().Find("records")->size());
  }
  return 0;
}
