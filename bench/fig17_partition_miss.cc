// Figure 17: cache-miss breakdown of the partition loop for small,
// optimal, and large G / D — why the Figure-16 curves are concave.

#include <cstdio>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

void Report(const char* label, Scheme scheme, const Relation& input,
            uint32_t parts, const KernelParams& params,
            const sim::SimConfig& cfg) {
  SimRun r = RunPartitionPhaseSim(scheme, input, parts, params, cfg);
  const sim::SimStats& s = r.stats;
  uint64_t demand = s.DemandLineAccesses();
  auto pct = [&](uint64_t v) {
    return demand == 0 ? 0.0 : 100.0 * double(v) / double(demand);
  };
  std::printf(
      "%-14s cycles=%12llu  hidden=%5.1f%%  late=%5.1f%%  full=%5.1f%%  "
      "l2hit=%5.1f%%  l1hit=%5.1f%%  pf_evicted=%llu\n",
      label, (unsigned long long)s.TotalCycles(), pct(s.prefetch_hidden),
      pct(s.prefetch_partial), pct(s.full_misses), pct(s.l2_hits),
      pct(s.l1_hits), (unsigned long long)s.prefetch_evicted_before_use);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);
  sim::SimConfig cfg;
  uint32_t parts = uint32_t(flags.GetInt("partitions", 800));

  uint64_t tuples = uint64_t(10'000'000 * geo.scale);
  Relation input = GenerateSourceRelation(tuples, 100, 42);

  std::printf(
      "=== Figure 17: partition-loop cache miss analysis (%u partitions) "
      "[scale=%.2f] ===\n\n",
      parts, geo.scale);

  std::printf("--- group prefetching ---\n");
  for (uint32_t g : {2u, 14u, 256u, 1024u}) {
    KernelParams p;
    p.group_size = g;
    char label[32];
    std::snprintf(label, sizeof(label), "G=%u", g);
    Report(label, Scheme::kGroup, input, parts, p, cfg);
  }

  std::printf("\n--- software-pipelined prefetching ---\n");
  for (uint32_t d : {1u, 4u, 32u, 128u}) {
    KernelParams p;
    p.prefetch_distance = d;
    char label[32];
    std::snprintf(label, sizeof(label), "D=%u", d);
    Report(label, Scheme::kSwp, input, parts, p, cfg);
  }

  std::printf(
      "\npaper: same pathologies as the join phase (Figure 13)\n");
  return 0;
}
