// Figure 12: join-phase probing performance vs. the group size G and the
// prefetch distance D, at memory latency T = 150 and T = 1000 cycles.
// The curves are concave: too-small parameters leave latency exposed,
// too-large ones cause cache conflicts. The optima shift right as T
// grows, and software-pipelined prefetching keeps its performance even
// at T = 1000 (the "future speed gap" result).
//
// Modes:
//   (default)          simulated sweep, human-readable tables
//   --json[=path]      additionally writes BENCH_fig12.json records
//   --real             sweeps G/D on this host's hardware instead, using
//                      the same workload geometry as real_join_bench
//                      --json (--smoke shrinks it identically), and
//                      prints the offline-best depth per scheme
//   --online-json=PATH compares the offline best against the online
//                      tuner records of a `real_join_bench --json=PATH
//                      --tune=online` run (convergence ratio per scheme)

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "model/cost_model.h"
#include "perf/bench_reporter.h"
#include "util/json_writer.h"
#include "util/timer.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

// Probe-only measurement: the table is built once outside the window.
uint64_t ProbeCycles(Scheme scheme, const JoinWorkload& w,
                     const KernelParams& params, const sim::SimConfig& cfg) {
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildPartition(mm, Scheme::kGroup, w.build, &ht, params);
  simulator.ResetStats();
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  ProbePartition(mm, scheme, w.probe, ht, w.build.schema().fixed_size(),
                 params, &out);
  return simulator.stats().TotalCycles();
}

// Adds one sweep-point record in the shared harness schema (so
// bench_diff can check/compare fig12 output like any other bench).
// Returns the added record for extras (e.g. sim cycle counts).
JsonValue& AddSweepRecord(perf::BenchReporter* reporter,
                          const std::string& name, const char* phase,
                          Scheme scheme, const KernelParams& params,
                          double wall_seconds, const char* counters_note,
                          uint64_t probe_tuples) {
  JsonValue rec = JsonValue::Object();
  rec.Set("name", name);
  JsonValue config = JsonValue::Object();
  config.Set("phase", phase);
  config.Set("scheme", SchemeName(scheme));
  config.Set("G", params.group_size);
  config.Set("D", params.prefetch_distance);
  config.Set("threads", 1);
  config.Set("probe_tuples", probe_tuples);
  rec.Set("config", std::move(config));
  rec.Set("trials", 1);
  rec.Set("warmup", 0);
  JsonValue wall = JsonValue::Object();
  wall.Set("median", wall_seconds);
  wall.Set("min", wall_seconds);
  wall.Set("mean", wall_seconds);
  rec.Set("wall_seconds", std::move(wall));
  rec.Set("counters", JsonValue());
  rec.Set("counters_unavailable", counters_note);
  return reporter->AddRawRecord(std::move(rec));
}

// ---------------------------------------------------------------------------
// --real: offline G/D sweep on this host, comparable with the online
// tuner records (same workload geometry as real_join_bench --json).

struct OfflineBest {
  uint32_t depth = 0;
  double ns_per_tuple = -1;
};

int RunRealSweep(const FlagParser& flags) {
  const bool smoke = flags.GetBool("smoke", false);
  const uint32_t tuple_size =
      uint32_t(flags.GetInt("tuple-size", smoke ? 20 : 100));
  const uint64_t working_set = smoke ? (2ull << 20) : (48ull << 20);
  const int trials = int(flags.GetInt("trials", smoke ? 1 : 3));

  WorkloadSpec spec;
  spec.tuple_size = tuple_size;
  spec.num_build_tuples =
      working_set /
      (tuple_size + sizeof(BucketHeader) + sizeof(HashCell));
  spec.matches_per_build = 2.0;
  const JoinWorkload w = GenerateJoinWorkload(spec);

  // Optional online run to compare against. Its calibration supplies the
  // ns->cycles factor, so both sides of the ratio use the same units.
  JsonValue online_doc;
  bool have_online = false;
  double ghz = 3.0;
  const std::string online_path = flags.GetString("online-json", "");
  if (!online_path.empty()) {
    auto doc = ReadJsonFile(online_path);
    if (!doc.ok()) {
      std::fprintf(stderr, "--online-json: %s: %s\n", online_path.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    online_doc = std::move(doc.value());
    have_online = true;
    const JsonValue* g = online_doc.FindPath("calibration.cpu_ghz");
    if (g != nullptr && g->is_number() && g->AsDouble() > 0) {
      ghz = g->AsDouble();
    }
  }

  std::unique_ptr<perf::BenchReporter> reporter;
  if (flags.Has("json")) {
    perf::BenchReporter::Options opt;
    opt.bench_name = "fig12_real";
    std::string path = flags.GetString("json", "");
    if (!path.empty() && path != "true") opt.output_path = path;
    opt.trials = 1;
    opt.warmup = 0;
    opt.collect_counters = false;
    reporter = std::make_unique<perf::BenchReporter>(std::move(opt));
  }

  std::printf("=== Figure 12 (real hardware): offline G/D sweep "
              "[tuple_size=%u, working set %llu MB] ===\n",
              tuple_size,
              (unsigned long long)(working_set >> 20));

  // One hash table serves every scheme: its contents do not depend on
  // the probe-side policy or depth.
  RealMemory mm;
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildPartition(mm, Scheme::kGroup, w.build, &ht,
                 bench::PaperJoinDefaults());

  std::vector<Scheme> schemes = {Scheme::kGroup, Scheme::kSwp};
  if (SchemeAvailable(Scheme::kCoro)) schemes.push_back(Scheme::kCoro);

  const std::vector<uint32_t> g_depths =
      smoke ? std::vector<uint32_t>{2, 4, 8, 12, 16, 24}
            : std::vector<uint32_t>{2, 4, 8, 14, 19, 25, 32, 48, 64};
  const std::vector<uint32_t> d_depths =
      smoke ? std::vector<uint32_t>{1, 2, 4, 8}
            : std::vector<uint32_t>{1, 2, 3, 4, 6, 8, 12, 16};

  int rc = 0;
  for (Scheme scheme : schemes) {
    const bool is_swp = scheme == Scheme::kSwp;
    const std::vector<uint32_t>& depths = is_swp ? d_depths : g_depths;
    OfflineBest best;
    std::printf("\n--- %s ---\n%-8s %14s\n", SchemeName(scheme),
                is_swp ? "D" : "G", "ns/tuple");
    for (uint32_t depth : depths) {
      KernelParams p = bench::PaperJoinDefaults();
      if (is_swp) {
        p.prefetch_distance = depth;
      } else {
        p.group_size = depth;
      }
      double min_ns = -1;
      for (int t = 0; t < trials; ++t) {
        Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
        WallTimer timer;
        uint64_t n = ProbePartition(mm, scheme, w.probe, ht, tuple_size,
                                    p, &out);
        double ns = double(timer.ElapsedNanos());
        HJ_CHECK(n == w.expected_matches);
        if (min_ns < 0 || ns < min_ns) min_ns = ns;
      }
      const double npt = min_ns / double(w.probe.num_tuples());
      std::printf("%-8u %14.2f\n", depth, npt);
      if (best.ns_per_tuple < 0 || npt < best.ns_per_tuple) {
        best.depth = depth;
        best.ns_per_tuple = npt;
      }
      if (reporter) {
        AddSweepRecord(reporter.get(),
                       std::string("real/") + SchemeName(scheme) +
                           (is_swp ? "/D=" : "/G=") +
                           std::to_string(depth),
                       "probe_sweep_real", scheme, p, min_ns / 1e9,
                       "offline sweep records best-of-N wall time",
                       w.probe.num_tuples());
      }
    }

    const double best_cpt = best.ns_per_tuple * ghz;
    std::printf("offline best %s: %s=%u, %.2f ns/tuple (%.1f cyc/tuple "
                "at %.2f GHz)\n",
                SchemeName(scheme), is_swp ? "D" : "G", best.depth,
                best.ns_per_tuple, best_cpt, ghz);

    // Convergence check against the online tuner's record, when given.
    if (have_online) {
      const JsonValue* records = online_doc.Find("records");
      const JsonValue* online_rec = nullptr;
      for (size_t i = 0; records != nullptr && i < records->size(); ++i) {
        const JsonValue* name = records->at(i).Find("name");
        if (name != nullptr && name->is_string() &&
            name->AsString() ==
                std::string("online/") + SchemeName(scheme)) {
          online_rec = &records->at(i);
        }
      }
      if (online_rec == nullptr) {
        std::printf("online/%s: no record in %s\n", SchemeName(scheme),
                    online_path.c_str());
      } else {
        const JsonValue* cpt =
            online_rec->FindPath("tuner.converged_cycles_per_tuple");
        const JsonValue* fg = online_rec->FindPath("tuner.final_G");
        const JsonValue* fd = online_rec->FindPath("tuner.final_D");
        if (cpt != nullptr && cpt->is_number() && cpt->AsDouble() > 0 &&
            best_cpt > 0) {
          const double ratio = cpt->AsDouble() / best_cpt;
          const bool within = ratio <= 1.10;
          std::printf("online/%s: converged G=%lld D=%lld at %.1f "
                      "cyc/tuple -> ratio %.3f vs offline best (%s)\n",
                      SchemeName(scheme),
                      fg != nullptr ? (long long)fg->AsInt() : -1ll,
                      fd != nullptr ? (long long)fd->AsInt() : -1ll,
                      cpt->AsDouble(), ratio,
                      within ? "within 10%" : "NOT within 10%");
          if (!within) rc = 1;
        } else {
          std::printf("online/%s: record lacks "
                      "tuner.converged_cycles_per_tuple\n",
                      SchemeName(scheme));
        }
      }
    }

    if (reporter) {
      KernelParams bp = bench::PaperJoinDefaults();
      if (is_swp) {
        bp.prefetch_distance = best.depth;
      } else {
        bp.group_size = best.depth;
      }
      JsonValue rec = JsonValue::Object();
      rec.Set("name", std::string("offline_best/") + SchemeName(scheme));
      JsonValue config = JsonValue::Object();
      config.Set("phase", "offline_best");
      config.Set("scheme", SchemeName(scheme));
      config.Set("G", bp.group_size);
      config.Set("D", bp.prefetch_distance);
      config.Set("threads", 1);
      config.Set("probe_tuples", w.probe.num_tuples());
      rec.Set("config", std::move(config));
      rec.Set("trials", trials);
      rec.Set("warmup", 0);
      JsonValue wall = JsonValue::Object();
      const double secs =
          best.ns_per_tuple * double(w.probe.num_tuples()) / 1e9;
      wall.Set("median", secs);
      wall.Set("min", secs);
      wall.Set("mean", secs);
      rec.Set("wall_seconds", std::move(wall));
      rec.Set("counters", JsonValue());
      rec.Set("counters_unavailable",
              "offline sweep records best-of-N wall time");
      rec.Set("best_ns_per_tuple", best.ns_per_tuple);
      rec.Set("best_cycles_per_tuple", best_cpt);
      reporter->AddRawRecord(std::move(rec));
    }
  }

  if (reporter) {
    Status st = reporter->Write();
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   reporter->output_path().c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n",
                reporter->output_path().c_str(),
                reporter->doc().Find("records")->size());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  if (flags.Has("real") || flags.Has("online-json")) {
    return RunRealSweep(flags);
  }

  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);

  WorkloadSpec spec;
  spec.tuple_size = uint32_t(flags.GetInt("tuple_size", 20));  // paper: 20B
  spec.num_build_tuples = geo.BuildTuples(spec.tuple_size);
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  std::unique_ptr<perf::BenchReporter> reporter;
  if (flags.Has("json")) {
    perf::BenchReporter::Options opt;
    opt.bench_name = "fig12";
    std::string path = flags.GetString("json", "");
    if (!path.empty() && path != "true") opt.output_path = path;
    opt.trials = 1;
    opt.warmup = 0;
    opt.collect_counters = false;  // simulated cycles, not host time
    reporter = std::make_unique<perf::BenchReporter>(std::move(opt));
  }

  std::printf("=== Figure 12: probing-loop parameter tuning [scale=%.2f] "
              "===\n", geo.scale);

  for (uint32_t latency : {150u, 1000u}) {
    sim::SimConfig cfg;
    cfg.memory_latency = latency;

    std::printf("\n--- group prefetching, T=%u ---\n", latency);
    std::printf("%-8s %14s\n", "G", "cycles");
    for (uint32_t g : {2u, 4u, 8u, 14u, 19u, 25u, 32u, 48u, 64u, 96u,
                       128u, 192u, 256u}) {
      KernelParams p;
      p.group_size = g;
      WallTimer timer;
      uint64_t cycles = ProbeCycles(Scheme::kGroup, w, p, cfg);
      std::printf("%-8u %14llu\n", g, (unsigned long long)cycles);
      if (reporter) {
        AddSweepRecord(reporter.get(),
                       "sim/group/T=" + std::to_string(latency) +
                           "/G=" + std::to_string(g),
                       "probe_sweep_sim", Scheme::kGroup, p,
                       timer.ElapsedSeconds(),
                       "simulated run (cycles are exact)",
                       w.probe.num_tuples())
            .Set("sim_total_cycles", cycles);
      }
    }

    std::printf("\n--- software-pipelined prefetching, T=%u ---\n",
                latency);
    std::printf("%-8s %14s\n", "D", "cycles");
    for (uint32_t d : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u}) {
      KernelParams p;
      p.prefetch_distance = d;
      WallTimer timer;
      uint64_t cycles = ProbeCycles(Scheme::kSwp, w, p, cfg);
      std::printf("%-8u %14llu\n", d, (unsigned long long)cycles);
      if (reporter) {
        AddSweepRecord(reporter.get(),
                       "sim/swp/T=" + std::to_string(latency) +
                           "/D=" + std::to_string(d),
                       "probe_sweep_sim", Scheme::kSwp, p,
                       timer.ElapsedSeconds(),
                       "simulated run (cycles are exact)",
                       w.probe.num_tuples())
            .Set("sim_total_cycles", cycles);
      }
    }
  }

  // Model guidance: the minimum feasible parameters per Theorems 1 and 2
  // for probe-like stage costs under both latencies.
  sim::SimConfig def;
  model::CodeCosts costs{{def.cost_hash + def.cost_slot_bookkeeping,
                          def.cost_visit_header, def.cost_visit_cell,
                          def.cost_key_compare +
                              2 * def.cost_tuple_copy_per_line}};
  for (uint32_t latency : {150u, 1000u}) {
    model::MachineParams m{latency, def.memory_bandwidth_gap};
    // MinGroupSize/MinDistance return 0 when no parameter within the
    // search cap satisfies the theorem; configuring a kernel with that
    // sentinel (G=0 / D=0) would be a bug, so route the choice through
    // ChooseParams, which clamps to a safe fallback and warns.
    model::ParamChoice choice = model::ChooseParams(costs, m);
    std::printf(
        "\nmodel @T=%u: min G (Thm 1) = %u%s, min D (Thm 2) = %u%s\n",
        latency, choice.group_size,
        choice.group_feasible ? "" : " (infeasible; clamped fallback)",
        choice.prefetch_distance,
        choice.swp_feasible ? "" : " (infeasible; clamped fallback)");
  }
  std::printf(
      "\npaper: concave curves; optima G=19, D=1 at T=150, shifting right "
      "at T=1000; swp stays flat as T grows\n");

  if (reporter) {
    Status st = reporter->Write();
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   reporter->output_path().c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu records)\n",
                reporter->output_path().c_str(),
                reporter->doc().Find("records")->size());
  }
  return 0;
}
