// Figure 12: join-phase probing performance vs. the group size G and the
// prefetch distance D, at memory latency T = 150 and T = 1000 cycles.
// The curves are concave: too-small parameters leave latency exposed,
// too-large ones cause cache conflicts. The optima shift right as T
// grows, and software-pipelined prefetching keeps its performance even
// at T = 1000 (the "future speed gap" result).

#include <cstdio>

#include "bench_common.h"
#include "model/cost_model.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

// Probe-only measurement: the table is built once outside the window.
uint64_t ProbeCycles(Scheme scheme, const JoinWorkload& w,
                     const KernelParams& params, const sim::SimConfig& cfg) {
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildPartition(mm, Scheme::kGroup, w.build, &ht, params);
  simulator.ResetStats();
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  ProbePartition(mm, scheme, w.probe, ht, w.build.schema().fixed_size(),
                 params, &out);
  return simulator.stats().TotalCycles();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);

  WorkloadSpec spec;
  spec.tuple_size = uint32_t(flags.GetInt("tuple_size", 20));  // paper: 20B
  spec.num_build_tuples = geo.BuildTuples(spec.tuple_size);
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  std::printf("=== Figure 12: probing-loop parameter tuning [scale=%.2f] "
              "===\n", geo.scale);

  for (uint32_t latency : {150u, 1000u}) {
    sim::SimConfig cfg;
    cfg.memory_latency = latency;

    std::printf("\n--- group prefetching, T=%u ---\n", latency);
    std::printf("%-8s %14s\n", "G", "cycles");
    for (uint32_t g : {2u, 4u, 8u, 14u, 19u, 25u, 32u, 48u, 64u, 96u,
                       128u, 192u, 256u}) {
      KernelParams p;
      p.group_size = g;
      std::printf("%-8u %14llu\n", g,
                  (unsigned long long)ProbeCycles(Scheme::kGroup, w, p,
                                                  cfg));
    }

    std::printf("\n--- software-pipelined prefetching, T=%u ---\n",
                latency);
    std::printf("%-8s %14s\n", "D", "cycles");
    for (uint32_t d : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u}) {
      KernelParams p;
      p.prefetch_distance = d;
      std::printf("%-8u %14llu\n", d,
                  (unsigned long long)ProbeCycles(Scheme::kSwp, w, p,
                                                  cfg));
    }
  }

  // Model guidance: the minimum feasible parameters per Theorems 1 and 2
  // for probe-like stage costs under both latencies.
  sim::SimConfig def;
  model::CodeCosts costs{{def.cost_hash + def.cost_slot_bookkeeping,
                          def.cost_visit_header, def.cost_visit_cell,
                          def.cost_key_compare +
                              2 * def.cost_tuple_copy_per_line}};
  for (uint32_t latency : {150u, 1000u}) {
    model::MachineParams m{latency, def.memory_bandwidth_gap};
    // MinGroupSize/MinDistance return 0 when no parameter within the
    // search cap satisfies the theorem; configuring a kernel with that
    // sentinel (G=0 / D=0) would be a bug, so route the choice through
    // ChooseParams, which clamps to a safe fallback and warns.
    model::ParamChoice choice = model::ChooseParams(costs, m);
    std::printf(
        "\nmodel @T=%u: min G (Thm 1) = %u%s, min D (Thm 2) = %u%s\n",
        latency, choice.group_size,
        choice.group_feasible ? "" : " (infeasible; clamped fallback)",
        choice.prefetch_distance,
        choice.swp_feasible ? "" : " (infeasible; clamped fallback)");
  }
  std::printf(
      "\npaper: concave curves; optima G=19, D=1 at T=150, shifting right "
      "at T=1000; swp stays flat as T grows\n");
  return 0;
}
