#ifndef HASHJOIN_BENCH_BENCH_COMMON_H_
#define HASHJOIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "join/grace.h"
#include "model/cost_model.h"
#include "mem/memory_model.h"
#include "perf/calibrate.h"
#include "simcache/memory_sim.h"
#include "tune/prefetch_tuner.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "workload/generator.h"

namespace hashjoin {
namespace bench {

/// Scaled experiment geometry shared by the simulator benches. The paper
/// runs a 50MB join-phase memory budget at a 50:1 memory:cache ratio
/// (§7.1 footnote 7); `scale` shrinks every byte count while the cache
/// stays Table-2 sized, so runs finish in seconds. scale = 1.0 reproduces
/// the paper's sizes exactly.
struct BenchGeometry {
  double scale = 0.1;

  uint64_t MemoryBudget() const {
    return uint64_t(50.0 * 1024 * 1024 * scale);
  }
  /// Build-partition tuple count for a tuple size: partition + hash table
  /// fill the memory budget tightly (§7.1).
  uint64_t BuildTuples(uint32_t tuple_size) const {
    uint64_t per_tuple =
        tuple_size + sizeof(BucketHeader) + sizeof(HashCell);
    return MemoryBudget() / per_tuple;
  }
};

/// Result of one simulated phase run.
struct SimRun {
  sim::SimStats stats;
  uint64_t outputs = 0;
  double wall_seconds = 0;
};

/// Joins one generated (build, probe) partition pair in the simulator
/// under `scheme`: measures build + probe together (the paper's join
/// phase). The caches start cold.
inline SimRun RunJoinPhaseSim(Scheme scheme, const JoinWorkload& w,
                              const KernelParams& params,
                              const sim::SimConfig& cfg) {
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  // Timed window starts after hash-table construction: bucket-array
  // allocation is setup, not part of the join phase under test.
  WallTimer timer;
  BuildPartition(mm, scheme, w.build, &ht, params);
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  SimRun r;
  r.outputs = ProbePartition(mm, scheme, w.probe, ht,
                             w.build.schema().fixed_size(), params, &out);
  r.stats = simulator.stats();
  r.wall_seconds = timer.ElapsedSeconds();
  return r;
}

/// Partitions a generated source relation into P partitions in the
/// simulator under `scheme`.
inline SimRun RunPartitionPhaseSim(Scheme scheme, const Relation& input,
                                   uint32_t num_partitions,
                                   const KernelParams& params,
                                   const sim::SimConfig& cfg,
                                   bool combined = false) {
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  std::vector<Relation> parts;
  parts.reserve(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    parts.emplace_back(input.schema());
  }
  // Timed window starts after the partition-vector setup: constructing
  // num_partitions empty relations is allocation, not partitioning.
  WallTimer timer;
  SimRun r;
  {
    PartitionSinkSet sinks(&parts, kDefaultPageSize);
    if (combined) {
      PartitionCombined(mm, input, &sinks, num_partitions, params,
                        cfg.l2_size, scheme);
    } else {
      PartitionRelation(mm, scheme, input, &sinks, num_partitions, params);
    }
  }
  for (auto& p : parts) r.outputs += p.num_tuples();
  r.stats = simulator.stats();
  r.wall_seconds = timer.ElapsedSeconds();
  return r;
}

/// Pretty-prints one breakdown bar (the Figure 1/11/15 format): absolute
/// cycles and the share of each stall category.
inline void PrintBreakdown(const std::string& label,
                           const sim::SimStats& s) {
  uint64_t total = s.TotalCycles();
  auto pct = [&](uint64_t v) {
    return total == 0 ? 0.0 : 100.0 * double(v) / double(total);
  };
  std::printf(
      "%-22s total=%12llu  busy=%5.1f%%  dcache=%5.1f%%  dtlb=%5.1f%%  "
      "other=%5.1f%%\n",
      label.c_str(), (unsigned long long)total, pct(s.busy_cycles),
      pct(s.dcache_stall_cycles), pct(s.dtlb_stall_cycles),
      pct(s.other_stall_cycles));
}

/// Normalized-cycles row for line-chart style figures. The column set is
/// whatever schemes this binary compiled in (hashjoin::AllSchemes), so a
/// toolchain without coroutines simply prints one column fewer.
inline void PrintSeriesHeader(const char* x_name,
                              const std::vector<Scheme>& schemes) {
  std::printf("%-14s", x_name);
  for (Scheme s : schemes) std::printf(" %14s", SchemeName(s));
  std::printf("\n");
}

inline void PrintSeriesHeader(const char* x_name) {
  PrintSeriesHeader(x_name, hashjoin::AllSchemes());
}

inline void PrintSeriesRow(const std::string& x,
                           const std::vector<uint64_t>& cycles) {
  std::printf("%-14s", x.c_str());
  for (uint64_t c : cycles) std::printf(" %14llu", (unsigned long long)c);
  std::printf("\n");
}

inline void PrintSpeedups(const std::vector<uint64_t>& cycles) {
  if (cycles.empty() || cycles[0] == 0) return;
  std::printf("%-14s", "  speedup");
  for (uint64_t c : cycles) {
    std::printf(" %13.2fx", c == 0 ? 0.0 : double(cycles[0]) / double(c));
  }
  std::printf("\n");
}

/// Resolves the shared `--scheme` flag: a comma-separated list of scheme
/// names (one table for every bench, no per-driver copies), defaulting
/// to every scheme compiled into this binary. Unknown names are fatal
/// and list the valid values.
inline std::vector<Scheme> SchemesFromFlag(const FlagParser& flags) {
  std::string value = flags.GetString("scheme", "");
  if (value.empty()) return hashjoin::AllSchemes();
  std::vector<Scheme> schemes;
  size_t pos = 0;
  while (pos <= value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    std::string name = value.substr(pos, comma - pos);
    Scheme s;
    if (!name.empty()) {
      if (!ParseScheme(name, &s)) {
        std::fprintf(stderr,
                     "unknown --scheme value '%s' (valid: %s)\n",
                     name.c_str(), SchemeNameList().c_str());
        std::exit(2);
      }
      if (!SchemeAvailable(s)) {
        std::fprintf(stderr,
                     "--scheme=%s is not compiled into this binary "
                     "(toolchain lacks C++20 coroutines)\n",
                     name.c_str());
        std::exit(2);
      }
      schemes.push_back(s);
    }
    pos = comma + 1;
  }
  if (schemes.empty()) {
    std::fprintf(stderr, "--scheme parsed to an empty list (valid: %s)\n",
                 SchemeNameList().c_str());
    std::exit(2);
  }
  return schemes;
}

/// Interleave width for the coroutine policy: the same Theorem-1 sizing
/// group prefetching uses — W concurrent chains hide the latency G
/// concurrent group slots do.
inline uint32_t TunedCoroWidth(const model::CodeCosts& costs,
                               const sim::SimConfig& cfg) {
  model::MachineParams machine{cfg.memory_latency,
                               cfg.memory_bandwidth_gap};
  return model::ChooseParams(costs, machine).group_size;
}

/// Model-chosen kernel parameters for a simulated machine: the same
/// Theorem 1+2 sizing the real-hardware resolver applies, fed with the
/// sim config's latency and bandwidth gap instead of a calibration. Sim
/// drivers use this instead of hardcoding depths (hjlint's
/// tuned-depth-handoff rule).
inline KernelParams SimTunedParams(const model::CodeCosts& costs,
                                   const sim::SimConfig& cfg) {
  model::MachineParams machine{cfg.memory_latency,
                               cfg.memory_bandwidth_gap};
  model::ParamChoice choice = model::ChooseParams(costs, machine);
  KernelParams p;
  p.group_size = choice.group_size;
  p.prefetch_distance = choice.prefetch_distance;
  return p;
}

/// Per-stage code costs of the probe loop, taken from the simulator's
/// Table-2 instruction estimates. On real hardware these are approximate
/// — they parameterize Theorems 1 and 2, whose G/D output is insensitive
/// to small Ci errors (the curves are flat near the optimum, Fig. 12).
inline model::CodeCosts ProbeCodeCosts() {
  sim::SimConfig def;
  return model::CodeCosts{{def.cost_hash + def.cost_slot_bookkeeping,
                           def.cost_visit_header, def.cost_visit_cell,
                           def.cost_key_compare +
                               2 * def.cost_tuple_copy_per_line}};
}

/// Partition-loop stage costs from the same Table-2 estimates: stage 0
/// hashes and picks the destination, stage 1 touches the output buffer
/// tail (the one dependent reference, k = 1).
inline model::CodeCosts PartitionCodeCosts() {
  sim::SimConfig def;
  return model::CodeCosts{
      {def.cost_hash + def.cost_slot_bookkeeping,
       2 * def.cost_tuple_copy_per_line}};
}

/// Simulator counters in the shared BENCH_*.json record schema, so sim
/// and real-hardware runs diff with the same tooling.
inline JsonValue SimStatsToJson(const sim::SimStats& s) {
  JsonValue o = JsonValue::Object();
  o.Set("total_cycles", s.TotalCycles());
  o.Set("busy_cycles", s.busy_cycles);
  o.Set("dcache_stall_cycles", s.dcache_stall_cycles);
  o.Set("dtlb_stall_cycles", s.dtlb_stall_cycles);
  o.Set("other_stall_cycles", s.other_stall_cycles);
  o.Set("l1_hits", s.l1_hits);
  o.Set("l2_hits", s.l2_hits);
  o.Set("full_misses", s.full_misses);
  o.Set("prefetch_hidden", s.prefetch_hidden);
  o.Set("prefetch_partial", s.prefetch_partial);
  o.Set("tlb_misses", s.tlb_misses);
  o.Set("prefetches_issued", s.prefetches_issued);
  o.Set("prefetch_evicted_before_use", s.prefetch_evicted_before_use);
  o.Set("branch_mispredicts", s.branch_mispredicts);
  return o;
}

inline JsonValue SimRunToJson(const SimRun& r) {
  JsonValue o = JsonValue::Object();
  o.Set("wall_seconds", r.wall_seconds);
  o.Set("outputs", r.outputs);
  o.Set("sim", SimStatsToJson(r.stats));
  return o;
}

// ---------------------------------------------------------------------------
// Shared G/D tuning resolution (--tune=off|static|online). One resolver
// for every bench driver: drivers must not hardcode depths or carry
// their own calibration blocks (hjlint's tuned-depth-handoff rule).

/// How a bench picks G and D.
enum class TuneMode {
  kOff,     ///< paper-default KernelParams, no calibration
  kStatic,  ///< calibrate T/Tnext/max_outstanding once, Theorems 1+2
  kOnline,  ///< static choice as reference + PrefetchTuner per batch
};

inline const char* TuneModeName(TuneMode m) {
  switch (m) {
    case TuneMode::kOff:
      return "off";
    case TuneMode::kStatic:
      return "static";
    case TuneMode::kOnline:
      return "online";
  }
  return "off";
}

/// Parses `--tune=off|static|online`, honoring the older `--auto-tune`
/// spelling as an alias for `--tune=static`. Unknown values are fatal.
inline TuneMode TuneModeFromFlags(const FlagParser& flags) {
  std::string value = flags.GetString("tune", "");
  if (value.empty() || value == "true") {
    return flags.GetBool("auto-tune", false) ? TuneMode::kStatic
                                             : TuneMode::kOff;
  }
  if (value == "off") return TuneMode::kOff;
  if (value == "static") return TuneMode::kStatic;
  if (value == "online") return TuneMode::kOnline;
  std::fprintf(stderr,
               "unknown --tune value '%s' (valid: off, static, online)\n",
               value.c_str());
  std::exit(2);
}

/// Paper-default kernel parameters for the join phase: the T=150 optima
/// G=19, D=1 (KernelParams' own defaults).
inline KernelParams PaperJoinDefaults() { return KernelParams{}; }

/// Paper-default kernel parameters for the partition phase: G=14, D=4
/// (§6's partition-loop optima at T=150).
inline KernelParams PaperPartitionDefaults() {
  KernelParams p;
  p.group_size = 14;
  p.prefetch_distance = 4;
  return p;
}

/// The simulated machine's join-phase optima (the fig10/fig18/fig19
/// empirical sweep: G=14, D=1 at the simulator's T=150 — the paper's
/// machine lands at G=19). One definition so the sim drivers never
/// hardcode depths individually (tuned-depth-handoff).
inline KernelParams SimPaperJoinParams() {
  KernelParams p;
  p.group_size = 14;
  p.prefetch_distance = 1;
  return p;
}

/// The simulated machine's partition-loop optima (G=14, D=2).
inline KernelParams SimPaperPartitionParams() {
  KernelParams p;
  p.group_size = 14;
  p.prefetch_distance = 2;
  return p;
}

/// The outcome of ResolveTuning: the mode, the calibration (when one
/// ran), the model's feasibility-and-clamp record, and ready-to-use
/// KernelParams (the static choice; online runs start from it and let
/// the tuner take over through KernelParams::live).
struct TuningResolution {
  TuneMode mode = TuneMode::kOff;
  bool calibrated = false;
  perf::CalibrationResult calibration;
  model::ParamChoice choice;
  KernelParams params;

  /// The shared "tuning" block of a bench record, so every driver's JSON
  /// shows how its depths were chosen (and when the LFB ceiling clamped
  /// them). bench_diff --check validates this block when present.
  JsonValue ToJson() const {
    JsonValue o = JsonValue::Object();
    o.Set("mode", TuneModeName(mode));
    o.Set("calibrated", calibrated);
    o.Set("max_outstanding", calibration.max_outstanding);
    o.Set("G", params.group_size);
    o.Set("D", params.prefetch_distance);
    o.Set("group_feasible", choice.group_feasible);
    o.Set("swp_feasible", choice.swp_feasible);
    o.Set("group_lfb_clamped", choice.group_lfb_clamped);
    o.Set("swp_lfb_clamped", choice.swp_lfb_clamped);
    return o;
  }
};

/// Resolves G and D for one bench from the shared flags: kOff returns
/// `defaults` untouched; kStatic/kOnline calibrate this host (T, Tnext,
/// and the LFB/MSHR `max_outstanding` ceiling) and run Theorems 1+2
/// through model::ChooseParams, which clamps against the measured
/// outstanding-miss limit. --smoke shrinks the calibration buffers the
/// same way for every driver.
inline TuningResolution ResolveTuning(const FlagParser& flags,
                                      const model::CodeCosts& costs,
                                      const KernelParams& defaults) {
  TuningResolution r;
  r.mode = TuneModeFromFlags(flags);
  r.params = defaults;
  if (r.mode == TuneMode::kOff) return r;
  perf::CalibrationOptions copt;
  if (flags.GetBool("smoke", false)) {
    copt.buffer_bytes = 4ull << 20;
    copt.chase_steps = 200'000;
    copt.lfb.steps_per_chain = 20'000;
  }
  r.calibration = perf::CalibrateMachine(copt);
  r.calibrated = true;
  r.choice = perf::TuneFromCalibration(r.calibration, costs);
  r.params.group_size = r.choice.group_size;
  r.params.prefetch_distance = r.choice.prefetch_distance;
  std::printf(
      "tune(%s): T=%u Tnext=%u max_outstanding=%u -> G=%u%s D=%u%s%s\n",
      TuneModeName(r.mode), r.calibration.t_cycles,
      r.calibration.tnext_cycles, r.calibration.max_outstanding,
      r.params.group_size, r.choice.group_lfb_clamped ? " (lfb-clamped)" : "",
      r.params.prefetch_distance,
      r.choice.swp_lfb_clamped ? " (lfb-clamped)" : "",
      r.calibration.used_counters ? "" : " (no cycle counter; ns-based)");
  return r;
}

/// Seeds a PrefetchTuner from a resolution: the ramp is capped by the
/// measured LFB ceiling (when known) and by the static choice's search
/// cap, and the depth-to-D projection uses the phase's k.
inline tune::TunerConfig TunerConfigFromResolution(
    const TuningResolution& r, const model::CodeCosts& costs) {
  tune::TunerConfig cfg;
  cfg.stages_k = costs.k();
  cfg.max_outstanding = r.calibration.max_outstanding;
  return cfg;
}

/// Serialized tuner trajectory for the bench records: one entry per
/// batch with the depth held and the cost observed, so sweeps can plot
/// online convergence against the offline best.
inline JsonValue TunerTrajectoryJson(const tune::PrefetchTuner& tuner) {
  JsonValue arr = JsonValue::Array();
  for (const tune::TunerSample& s : tuner.trajectory()) {
    JsonValue o = JsonValue::Object();
    o.Set("batch", s.batch);
    o.Set("depth", s.depth);
    o.Set("G", s.group_size);
    o.Set("D", s.prefetch_distance);
    o.Set("cycles_per_tuple", s.cycles_per_tuple);
    o.Set("misses_per_tuple", s.misses_per_tuple);
    arr.Append(std::move(o));
  }
  return arr;
}

}  // namespace bench
}  // namespace hashjoin

#endif  // HASHJOIN_BENCH_BENCH_COMMON_H_
