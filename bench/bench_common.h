#ifndef HASHJOIN_BENCH_BENCH_COMMON_H_
#define HASHJOIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "join/grace.h"
#include "model/cost_model.h"
#include "mem/memory_model.h"
#include "simcache/memory_sim.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "workload/generator.h"

namespace hashjoin {
namespace bench {

/// Scaled experiment geometry shared by the simulator benches. The paper
/// runs a 50MB join-phase memory budget at a 50:1 memory:cache ratio
/// (§7.1 footnote 7); `scale` shrinks every byte count while the cache
/// stays Table-2 sized, so runs finish in seconds. scale = 1.0 reproduces
/// the paper's sizes exactly.
struct BenchGeometry {
  double scale = 0.1;

  uint64_t MemoryBudget() const {
    return uint64_t(50.0 * 1024 * 1024 * scale);
  }
  /// Build-partition tuple count for a tuple size: partition + hash table
  /// fill the memory budget tightly (§7.1).
  uint64_t BuildTuples(uint32_t tuple_size) const {
    uint64_t per_tuple =
        tuple_size + sizeof(BucketHeader) + sizeof(HashCell);
    return MemoryBudget() / per_tuple;
  }
};

/// Result of one simulated phase run.
struct SimRun {
  sim::SimStats stats;
  uint64_t outputs = 0;
  double wall_seconds = 0;
};

/// Joins one generated (build, probe) partition pair in the simulator
/// under `scheme`: measures build + probe together (the paper's join
/// phase). The caches start cold.
inline SimRun RunJoinPhaseSim(Scheme scheme, const JoinWorkload& w,
                              const KernelParams& params,
                              const sim::SimConfig& cfg) {
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  // Timed window starts after hash-table construction: bucket-array
  // allocation is setup, not part of the join phase under test.
  WallTimer timer;
  BuildPartition(mm, scheme, w.build, &ht, params);
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  SimRun r;
  r.outputs = ProbePartition(mm, scheme, w.probe, ht,
                             w.build.schema().fixed_size(), params, &out);
  r.stats = simulator.stats();
  r.wall_seconds = timer.ElapsedSeconds();
  return r;
}

/// Partitions a generated source relation into P partitions in the
/// simulator under `scheme`.
inline SimRun RunPartitionPhaseSim(Scheme scheme, const Relation& input,
                                   uint32_t num_partitions,
                                   const KernelParams& params,
                                   const sim::SimConfig& cfg,
                                   bool combined = false) {
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  std::vector<Relation> parts;
  parts.reserve(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    parts.emplace_back(input.schema());
  }
  // Timed window starts after the partition-vector setup: constructing
  // num_partitions empty relations is allocation, not partitioning.
  WallTimer timer;
  SimRun r;
  {
    PartitionSinkSet sinks(&parts, kDefaultPageSize);
    if (combined) {
      PartitionCombined(mm, input, &sinks, num_partitions, params,
                        cfg.l2_size, scheme);
    } else {
      PartitionRelation(mm, scheme, input, &sinks, num_partitions, params);
    }
  }
  for (auto& p : parts) r.outputs += p.num_tuples();
  r.stats = simulator.stats();
  r.wall_seconds = timer.ElapsedSeconds();
  return r;
}

/// Pretty-prints one breakdown bar (the Figure 1/11/15 format): absolute
/// cycles and the share of each stall category.
inline void PrintBreakdown(const std::string& label,
                           const sim::SimStats& s) {
  uint64_t total = s.TotalCycles();
  auto pct = [&](uint64_t v) {
    return total == 0 ? 0.0 : 100.0 * double(v) / double(total);
  };
  std::printf(
      "%-22s total=%12llu  busy=%5.1f%%  dcache=%5.1f%%  dtlb=%5.1f%%  "
      "other=%5.1f%%\n",
      label.c_str(), (unsigned long long)total, pct(s.busy_cycles),
      pct(s.dcache_stall_cycles), pct(s.dtlb_stall_cycles),
      pct(s.other_stall_cycles));
}

/// Normalized-cycles row for line-chart style figures. The column set is
/// whatever schemes this binary compiled in (hashjoin::AllSchemes), so a
/// toolchain without coroutines simply prints one column fewer.
inline void PrintSeriesHeader(const char* x_name,
                              const std::vector<Scheme>& schemes) {
  std::printf("%-14s", x_name);
  for (Scheme s : schemes) std::printf(" %14s", SchemeName(s));
  std::printf("\n");
}

inline void PrintSeriesHeader(const char* x_name) {
  PrintSeriesHeader(x_name, hashjoin::AllSchemes());
}

inline void PrintSeriesRow(const std::string& x,
                           const std::vector<uint64_t>& cycles) {
  std::printf("%-14s", x.c_str());
  for (uint64_t c : cycles) std::printf(" %14llu", (unsigned long long)c);
  std::printf("\n");
}

inline void PrintSpeedups(const std::vector<uint64_t>& cycles) {
  if (cycles.empty() || cycles[0] == 0) return;
  std::printf("%-14s", "  speedup");
  for (uint64_t c : cycles) {
    std::printf(" %13.2fx", c == 0 ? 0.0 : double(cycles[0]) / double(c));
  }
  std::printf("\n");
}

/// Resolves the shared `--scheme` flag: a comma-separated list of scheme
/// names (one table for every bench, no per-driver copies), defaulting
/// to every scheme compiled into this binary. Unknown names are fatal
/// and list the valid values.
inline std::vector<Scheme> SchemesFromFlag(const FlagParser& flags) {
  std::string value = flags.GetString("scheme", "");
  if (value.empty()) return hashjoin::AllSchemes();
  std::vector<Scheme> schemes;
  size_t pos = 0;
  while (pos <= value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    std::string name = value.substr(pos, comma - pos);
    Scheme s;
    if (!name.empty()) {
      if (!ParseScheme(name, &s)) {
        std::fprintf(stderr,
                     "unknown --scheme value '%s' (valid: %s)\n",
                     name.c_str(), SchemeNameList().c_str());
        std::exit(2);
      }
      if (!SchemeAvailable(s)) {
        std::fprintf(stderr,
                     "--scheme=%s is not compiled into this binary "
                     "(toolchain lacks C++20 coroutines)\n",
                     name.c_str());
        std::exit(2);
      }
      schemes.push_back(s);
    }
    pos = comma + 1;
  }
  if (schemes.empty()) {
    std::fprintf(stderr, "--scheme parsed to an empty list (valid: %s)\n",
                 SchemeNameList().c_str());
    std::exit(2);
  }
  return schemes;
}

/// Interleave width for the coroutine policy: the same Theorem-1 sizing
/// group prefetching uses — W concurrent chains hide the latency G
/// concurrent group slots do.
inline uint32_t TunedCoroWidth(const model::CodeCosts& costs,
                               const sim::SimConfig& cfg) {
  model::MachineParams machine{cfg.memory_latency,
                               cfg.memory_bandwidth_gap};
  return model::ChooseParams(costs, machine).group_size;
}

/// Per-stage code costs of the probe loop, taken from the simulator's
/// Table-2 instruction estimates. On real hardware these are approximate
/// — they parameterize Theorems 1 and 2, whose G/D output is insensitive
/// to small Ci errors (the curves are flat near the optimum, Fig. 12).
inline model::CodeCosts ProbeCodeCosts() {
  sim::SimConfig def;
  return model::CodeCosts{{def.cost_hash + def.cost_slot_bookkeeping,
                           def.cost_visit_header, def.cost_visit_cell,
                           def.cost_key_compare +
                               2 * def.cost_tuple_copy_per_line}};
}

/// Partition-loop stage costs from the same Table-2 estimates: stage 0
/// hashes and picks the destination, stage 1 touches the output buffer
/// tail (the one dependent reference, k = 1).
inline model::CodeCosts PartitionCodeCosts() {
  sim::SimConfig def;
  return model::CodeCosts{
      {def.cost_hash + def.cost_slot_bookkeeping,
       2 * def.cost_tuple_copy_per_line}};
}

/// Simulator counters in the shared BENCH_*.json record schema, so sim
/// and real-hardware runs diff with the same tooling.
inline JsonValue SimStatsToJson(const sim::SimStats& s) {
  JsonValue o = JsonValue::Object();
  o.Set("total_cycles", s.TotalCycles());
  o.Set("busy_cycles", s.busy_cycles);
  o.Set("dcache_stall_cycles", s.dcache_stall_cycles);
  o.Set("dtlb_stall_cycles", s.dtlb_stall_cycles);
  o.Set("other_stall_cycles", s.other_stall_cycles);
  o.Set("l1_hits", s.l1_hits);
  o.Set("l2_hits", s.l2_hits);
  o.Set("full_misses", s.full_misses);
  o.Set("prefetch_hidden", s.prefetch_hidden);
  o.Set("prefetch_partial", s.prefetch_partial);
  o.Set("tlb_misses", s.tlb_misses);
  o.Set("prefetches_issued", s.prefetches_issued);
  o.Set("prefetch_evicted_before_use", s.prefetch_evicted_before_use);
  o.Set("branch_mispredicts", s.branch_mispredicts);
  return o;
}

inline JsonValue SimRunToJson(const SimRun& r) {
  JsonValue o = JsonValue::Object();
  o.Set("wall_seconds", r.wall_seconds);
  o.Set("outputs", r.outputs);
  o.Set("sim", SimStatsToJson(r.stats));
  return o;
}

}  // namespace bench
}  // namespace hashjoin

#endif  // HASHJOIN_BENCH_BENCH_COMMON_H_
