// Real-hardware microbenchmarks of hash-based group-by aggregation — the
// paper's proposed extension — comparing the baseline loop against group
// and software-pipelined prefetching across group counts (cache-resident
// to far-beyond-cache accumulators).

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>

#include "join/aggregate_kernels.h"
#include "mem/memory_model.h"
#include "util/bitops.h"
#include "util/random.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

const Relation& SharedFacts(uint64_t groups) {
  static auto* cache = new std::map<uint64_t, Relation>();
  auto it = cache->find(groups);
  if (it == cache->end()) {
    Relation r(Schema({{"key", AttrType::kInt32, 4},
                       {"value", AttrType::kInt64, 8},
                       {"pad", AttrType::kFixedChar, 8}}));
    Rng rng(5);
    for (int i = 0; i < 4'000'000; ++i) {
      uint8_t t[20] = {};
      uint32_t key = uint32_t(rng.NextBounded(groups));
      int64_t value = int64_t(rng.NextBounded(100));
      std::memcpy(t, &key, 4);
      std::memcpy(t + 4, &value, 8);
      r.Append(t, sizeof(t), HashKey32(key));
    }
    it = cache->emplace(groups, std::move(r)).first;
  }
  return it->second;
}

// range(0) = distinct group count; range(1) = G or D.
void RunAgg(benchmark::State& state, int mode) {
  uint64_t groups = uint64_t(state.range(0));
  const Relation& facts = SharedFacts(groups);
  uint32_t param = uint32_t(state.range(1));
  RealMemory mm;
  for (auto _ : state) {
    state.PauseTiming();
    HashAggTable agg(NextRelativelyPrime(groups, 31));
    state.ResumeTiming();
    switch (mode) {
      case 0:
        AggregateBaseline(mm, facts, 4, &agg);
        break;
      case 1:
        AggregateGroup(mm, facts, 4, &agg, param);
        break;
      case 2:
        AggregateSwp(mm, facts, 4, &agg, param);
        break;
    }
    benchmark::DoNotOptimize(agg.num_groups());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(facts.num_tuples()));
}

void BM_Agg_Baseline(benchmark::State& state) { RunAgg(state, 0); }
void BM_Agg_Group(benchmark::State& state) { RunAgg(state, 1); }
void BM_Agg_Swp(benchmark::State& state) { RunAgg(state, 2); }

// {groups, G/D}; keys are uniform 32-bit, so "groups" ~= tuple count
// for the large setting (mostly-distinct) — the interesting regime.
BENCHMARK(BM_Agg_Baseline)
    ->Args({1 << 14, 1})
    ->Args({1 << 22, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Agg_Group)
    ->Args({1 << 14, 19})
    ->Args({1 << 22, 8})
    ->Args({1 << 22, 19})
    ->Args({1 << 22, 48})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Agg_Swp)
    ->Args({1 << 14, 4})
    ->Args({1 << 22, 2})
    ->Args({1 << 22, 4})
    ->Args({1 << 22, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hashjoin

BENCHMARK_MAIN();
