// Real-hardware microbenchmarks of hash-based group-by aggregation — the
// paper's proposed extension — comparing the baseline loop against group
// and software-pipelined prefetching across group counts (cache-resident
// to far-beyond-cache accumulators).

// --json[=path] switches to the machine-readable harness (see
// src/perf/bench_reporter.h), writing BENCH_real_agg.json; --smoke
// shrinks the fact table for ctest; --tune=static (alias: --auto-tune)
// calibrates T/Tnext plus the LFB ceiling and picks G and D from the
// models via the shared bench::ResolveTuning resolver.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "join/exec_policy.h"
#include "mem/memory_model.h"
#include "model/cost_model.h"
#include "perf/bench_reporter.h"
#include "perf/calibrate.h"
#include "simcache/sim_config.h"
#include "util/bitops.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/random.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

Relation MakeFacts(uint64_t groups, uint64_t num_tuples) {
  Relation r(Schema({{"key", AttrType::kInt32, 4},
                     {"value", AttrType::kInt64, 8},
                     {"pad", AttrType::kFixedChar, 8}}));
  Rng rng(5);
  for (uint64_t i = 0; i < num_tuples; ++i) {
    uint8_t t[20] = {};
    uint32_t key = uint32_t(rng.NextBounded(groups));
    int64_t value = int64_t(rng.NextBounded(100));
    std::memcpy(t, &key, 4);
    std::memcpy(t + 4, &value, 8);
    r.Append(t, sizeof(t), HashKey32(key));
  }
  return r;
}

const Relation& SharedFacts(uint64_t groups) {
  static auto* cache = new std::map<uint64_t, Relation>();
  auto it = cache->find(groups);
  if (it == cache->end()) {
    it = cache->emplace(groups, MakeFacts(groups, 4'000'000)).first;
  }
  return it->second;
}

// range(0) = distinct group count; range(1) = G or D.
void RunAgg(benchmark::State& state, int mode) {
  uint64_t groups = uint64_t(state.range(0));
  const Relation& facts = SharedFacts(groups);
  uint32_t param = uint32_t(state.range(1));
  RealMemory mm;
  for (auto _ : state) {
    state.PauseTiming();
    HashAggTable agg(NextRelativelyPrime(groups, 31));
    state.ResumeTiming();
    switch (mode) {
      case 0:
        AggregateBaseline(mm, facts, 4, &agg);
        break;
      case 1:
        AggregateGroup(mm, facts, 4, &agg, param);
        break;
      case 2:
        AggregateSwp(mm, facts, 4, &agg, param);
        break;
#if HASHJOIN_HAS_COROUTINES
      case 3:
        AggregateCoro(mm, facts, 4, &agg, param);
        break;
#endif
    }
    benchmark::DoNotOptimize(agg.num_groups());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(facts.num_tuples()));
}

void BM_Agg_Baseline(benchmark::State& state) { RunAgg(state, 0); }
void BM_Agg_Group(benchmark::State& state) { RunAgg(state, 1); }
void BM_Agg_Swp(benchmark::State& state) { RunAgg(state, 2); }
#if HASHJOIN_HAS_COROUTINES
void BM_Agg_Coro(benchmark::State& state) { RunAgg(state, 3); }
#endif

// {groups, G/D}; keys are uniform 32-bit, so "groups" ~= tuple count
// for the large setting (mostly-distinct) — the interesting regime.
BENCHMARK(BM_Agg_Baseline)
    ->Args({1 << 14, 1})
    ->Args({1 << 22, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Agg_Group)
    ->Args({1 << 14, 19})
    ->Args({1 << 22, 8})
    ->Args({1 << 22, 19})
    ->Args({1 << 22, 48})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Agg_Swp)
    ->Args({1 << 14, 4})
    ->Args({1 << 22, 2})
    ->Args({1 << 22, 4})
    ->Args({1 << 22, 8})
    ->Unit(benchmark::kMillisecond);
#if HASHJOIN_HAS_COROUTINES
BENCHMARK(BM_Agg_Coro)
    ->Args({1 << 14, 19})
    ->Args({1 << 22, 8})
    ->Args({1 << 22, 19})
    ->Args({1 << 22, 48})
    ->Unit(benchmark::kMillisecond);
#endif

int RunJsonHarness(const FlagParser& flags) {
  const bool smoke = flags.GetBool("smoke", false);
  const uint64_t num_facts = smoke ? 100'000 : 4'000'000;

  perf::BenchReporter::Options opt;
  opt.bench_name = "real_agg";
  std::string path = flags.GetString("json", "");
  if (!path.empty() && path != "true") opt.output_path = path;
  opt.trials = int(flags.GetInt("trials", smoke ? 2 : 5));
  opt.warmup = int(flags.GetInt("warmup", 1));
  perf::BenchReporter reporter(std::move(opt));

  // Shared tuning resolution (see bench_common.h): one path for every
  // scheme, clamped against the measured LFB/MSHR ceiling.
  const bench::TuningResolution tuning = bench::ResolveTuning(
      flags, AggregateCodeCosts(), bench::PaperJoinDefaults());
  const KernelParams tuned = tuning.params;
  if (tuning.calibrated) reporter.SetCalibration(tuning.calibration);

  std::vector<uint64_t> group_counts =
      smoke ? std::vector<uint64_t>{1 << 10}
            : std::vector<uint64_t>{1 << 14, 1 << 22};
  RealMemory mm;
  // Scheme set: every compiled-in scheme except simple (no inter-tuple
  // protocol, uninteresting for the accumulator-bound loop); --scheme
  // overrides. The G column doubles as the coroutine interleave width.
  std::vector<Scheme> schemes;
  if (flags.Has("scheme")) {
    schemes = bench::SchemesFromFlag(flags);
  } else {
    schemes = {Scheme::kBaseline, Scheme::kGroup, Scheme::kSwp};
    if (SchemeAvailable(Scheme::kCoro)) schemes.push_back(Scheme::kCoro);
  }

  for (uint64_t groups : group_counts) {
    const Relation facts = MakeFacts(groups, num_facts);
    for (Scheme scheme : schemes) {
      const KernelParams params = tuned;
      std::unique_ptr<HashAggTable> agg;
      uint64_t out_groups = 0;
      JsonValue config = JsonValue::Object();
      config.Set("phase", "aggregate");
      config.Set("scheme", SchemeName(scheme));
      config.Set("G", params.group_size);
      config.Set("D", params.prefetch_distance);
      config.Set("threads", 1);
      config.Set("groups", groups);
      config.Set("fact_tuples", facts.num_tuples());
      JsonValue& rec = reporter.AddRecord(
          std::string("agg/") + SchemeName(scheme) + "/groups=" +
              std::to_string(groups),
          std::move(config),
          /*body=*/
          [&] {
            AggregateRelation(mm, scheme, facts, 4, agg.get(), params);
            out_groups = agg->num_groups();
          },
          /*setup=*/
          [&] {
            agg = std::make_unique<HashAggTable>(
                NextRelativelyPrime(groups, 31));
          });
      rec.Set("outputs", out_groups);
      rec.Set("verified", out_groups <= groups && out_groups > 0);
      rec.Set("tuning", tuning.ToJson());
    }
  }

  Status st = reporter.Write();
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n",
                 reporter.output_path().c_str(), st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records, counters %s)\n",
              reporter.output_path().c_str(),
              reporter.doc().Find("records")->size(),
              reporter.counters_available() ? "available" : "unavailable");
  return 0;
}

}  // namespace
}  // namespace hashjoin

// Custom main so the repo's harness flags coexist with
// google-benchmark's: --json short-circuits into the JSON harness, and
// the repo flags are stripped from argv before google-benchmark (which
// rejects unknown flags) sees them.
int main(int argc, char** argv) {
  hashjoin::FlagParser flags;
  flags.Parse(argc, argv);
  if (flags.Has("json")) return hashjoin::RunJsonHarness(flags);
  // Validate --scheme even on the google-benchmark path (where the
  // registered benchmark list, not the flag, picks the kernels): a typo
  // should fail loudly, not silently run everything.
  if (flags.Has("scheme")) {
    (void)hashjoin::bench::SchemesFromFlag(flags);
  }

  const char* repo_flags[] = {"--smoke", "--trials", "--warmup",
                              "--tune", "--auto-tune", "--scheme"};
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    bool ours = false;
    for (const char* f : repo_flags) {
      if (a.rfind(f, 0) == 0) {
        if (a == f && i + 1 < argc && argv[i + 1][0] != '-') ++i;
        ours = true;
        break;
      }
    }
    if (!ours) args.push_back(argv[i]);
  }
  int filtered_argc = int(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
