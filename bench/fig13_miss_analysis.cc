// Figure 13: cache-miss breakdown of the probing loop for small, optimal,
// and large G / D. Too-small parameters leave prefetches partially
// complete at visit time; too-large parameters evict prefetched lines
// before use (cache conflicts), re-exposing full misses.

#include <cstdio>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

void Report(const char* label, Scheme scheme, const JoinWorkload& w,
            const KernelParams& params, const sim::SimConfig& cfg) {
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildPartition(mm, Scheme::kGroup, w.build, &ht, params);
  simulator.ResetStats();
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  ProbePartition(mm, scheme, w.probe, ht, w.build.schema().fixed_size(),
                 params, &out);
  sim::SimStats s = simulator.stats();
  uint64_t demand = s.DemandLineAccesses();
  auto pct = [&](uint64_t v) {
    return demand == 0 ? 0.0 : 100.0 * double(v) / double(demand);
  };
  std::printf(
      "%-14s cycles=%12llu  hidden=%5.1f%%  late=%5.1f%%  full=%5.1f%%  "
      "l2hit=%5.1f%%  l1hit=%5.1f%%  pf_evicted=%llu\n",
      label, (unsigned long long)s.TotalCycles(), pct(s.prefetch_hidden),
      pct(s.prefetch_partial), pct(s.full_misses), pct(s.l2_hits),
      pct(s.l1_hits), (unsigned long long)s.prefetch_evicted_before_use);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);
  sim::SimConfig cfg;

  WorkloadSpec spec;
  spec.tuple_size = uint32_t(flags.GetInt("tuple_size", 20));
  spec.num_build_tuples = geo.BuildTuples(spec.tuple_size);
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  std::printf(
      "=== Figure 13: probing-loop cache miss analysis [scale=%.2f] "
      "===\n\n",
      geo.scale);

  std::printf("--- group prefetching ---\n");
  for (uint32_t g : {2u, 19u, 256u, 1024u}) {
    KernelParams p;
    p.group_size = g;
    char label[32];
    std::snprintf(label, sizeof(label), "G=%u", g);
    Report(label, Scheme::kGroup, w, p, cfg);
  }

  std::printf("\n--- software-pipelined prefetching ---\n");
  for (uint32_t d : {1u, 2u, 32u, 128u}) {
    KernelParams p;
    p.prefetch_distance = d;
    char label[32];
    std::snprintf(label, sizeof(label), "D=%u", d);
    Report(label, Scheme::kSwp, w, p, cfg);
  }

  std::printf(
      "\npaper: small G/D -> partially hidden latencies; large G/D -> "
      "prefetched lines evicted by conflicts before use\n");
  return 0;
}
