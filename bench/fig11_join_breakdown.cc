// Figure 11: execution time breakdown of the join phase (100B tuples,
// 2 matches per build tuple) for all four schemes. Group and
// software-pipelined prefetching hide most data-cache stalls; their
// bookkeeping shows up as extra busy time, with software pipelining the
// costlier of the two.

#include <cstdio>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);
  sim::SimConfig cfg;

  WorkloadSpec spec;
  spec.tuple_size = 100;
  spec.num_build_tuples = geo.BuildTuples(100);
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  KernelParams params;
  params.group_size = uint32_t(flags.GetInt("g", 14));
  params.prefetch_distance = uint32_t(flags.GetInt("d", 1));

  std::printf(
      "=== Figure 11: join phase breakdown (100B tuples) [scale=%.2f] "
      "===\n",
      geo.scale);
  for (Scheme s : AllSchemes()) {
    SimRun r = RunJoinPhaseSim(s, w, params, cfg);
    PrintBreakdown(SchemeName(s), r.stats);
  }
  std::printf(
      "\npaper: prefetching schemes hide most dcache stalls; remaining "
      "misses are L1 conflicts; busy time grows with bookkeeping\n");
  return 0;
}
