// Figure 9: is hash join I/O-bound or CPU-bound? Runs the disk-backed
// GRACE join (DiskGraceJoin) against real worker threads over simulated
// (bandwidth-throttled, RAM-backed) disks, varying the disk count. As
// disks are added, the per-disk I/O time drops and total elapsed time
// flattens: the join becomes CPU-bound (the paper sees this at ~4 disks
// with 68MB/s SCSI disks on a 550MHz Pentium III).

#include <cstdio>

#include "bench_common.h"
#include "join/grace_disk.h"
#include "storage/buffer_manager.h"

using namespace hashjoin;
using namespace hashjoin::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  uint64_t build_mb = uint64_t(flags.GetInt("mb", 16));
  // The paper's machine partitioned at ~25MB/s per CPU against 68MB/s
  // disks (ratio ~1:2.7 per disk). A modern core partitions RAM-resident
  // pages orders of magnitude faster, so the default disk bandwidth is
  // scaled up to preserve that disk:CPU throughput ratio — what Figure 9
  // is actually about. Override with --disk_mb_s / --disk_lat_us.
  double disk_mb_s = flags.GetDouble("disk_mb_s", 1200.0);
  uint32_t disk_lat_us = uint32_t(flags.GetInt("disk_lat_us", 4));
  uint32_t max_disks = uint32_t(flags.GetInt("max_disks", 6));

  WorkloadSpec spec;
  spec.tuple_size = 100;
  spec.num_build_tuples = build_mb * 1024 * 1024 / 100;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  std::printf(
      "=== Figure 9: CPU-bound vs I/O-bound (%lluMB build, %lluMB probe, "
      "%.0fMB/s disks, 31 partitions) ===\n\n",
      (unsigned long long)build_mb, (unsigned long long)(build_mb * 2),
      disk_mb_s);
  std::printf("%-6s | %28s | %28s\n", "", "partition phase (build rel)",
              "join phase (all partitions)");
  std::printf("%-6s | %9s %9s %8s | %9s %9s %8s\n", "disks", "elapsed",
              "workerIO", "mainwait", "elapsed", "workerIO", "mainwait");

  for (uint32_t ndisks = 1; ndisks <= max_disks; ++ndisks) {
    BufferManagerConfig cfg;
    cfg.num_disks = ndisks;
    cfg.disk.bandwidth_mb_per_s = disk_mb_s;
    cfg.disk.request_latency_us = disk_lat_us;
    cfg.io_prefetch_depth = 32 * 8;  // keep every disk streaming
    BufferManager bm(cfg);
    DiskGraceJoin join(&bm, 31);  // the paper's 31 partitions

    auto build_file = join.StoreRelation(w.build);
    auto probe_file = join.StoreRelation(w.probe);
    if (!build_file.ok() || !probe_file.ok()) {
      std::fprintf(stderr, "store failed: %s\n",
                   (build_file.ok() ? probe_file : build_file)
                       .status()
                       .ToString()
                       .c_str());
      return 1;
    }
    auto res = join.Join(build_file.value(), probe_file.value());
    if (!res.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   res.status().ToString().c_str());
      return 1;
    }
    const DiskJoinResult& r = res.value();
    if (r.output_tuples != w.expected_matches) {
      std::fprintf(stderr, "match count wrong: %llu vs %llu\n",
                   (unsigned long long)r.output_tuples,
                   (unsigned long long)w.expected_matches);
      return 1;
    }
    std::printf("%-6u | %8.2fs %8.2fs %7.2fs | %8.2fs %8.2fs %7.2fs\n",
                ndisks, r.partition_phase.elapsed_seconds,
                r.partition_phase.max_disk_seconds,
                r.partition_phase.main_wait_seconds,
                r.join_phase.elapsed_seconds,
                r.join_phase.max_disk_seconds,
                r.join_phase.main_wait_seconds);
  }

  std::printf(
      "\npaper: elapsed time flattens and main-thread wait drops below "
      "10%% at >=4 disks -> hash join is CPU-bound\n");
  return 0;
}
