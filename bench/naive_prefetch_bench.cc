// The §3 argument as an experiment: naive prefetching *within* a hash
// table visit cannot hide miss latency, because each reference's address
// depends on the previous reference. Compares, in the simulator:
//   - chained bucket hashing, no prefetch (pointer chasing)
//   - chained bucket hashing + naive next-cell prefetch (§3's strawman)
//   - the paper's array-based table (Figure 2), baseline
//   - the paper's table + group prefetching (inter-tuple parallelism)
// The first two should be nearly identical; only the last is fast.

#include <cstdio>

#include "bench_common.h"
#include "join/chained_kernels.h"

using namespace hashjoin;
using namespace hashjoin::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.05);
  sim::SimConfig cfg;

  WorkloadSpec spec;
  spec.tuple_size = 100;
  spec.num_build_tuples = geo.BuildTuples(100);
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  uint64_t buckets = ChooseBucketCount(w.build.num_tuples(), 31);

  std::printf("=== Naive prefetching vs inter-tuple prefetching "
              "(join phase, 100B tuples) [scale=%.2f] ===\n\n",
              geo.scale);

  auto run_chained = [&](ChainedPrefetch mode) {
    sim::MemorySim simulator(cfg);
    SimMemory mm(&simulator);
    ChainedHashTable ht(buckets);
    BuildChained(mm, w.build, &ht);
    Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
    uint64_t n = ProbeChained(mm, w.probe, ht, spec.tuple_size, mode, &out);
    HJ_CHECK(n == w.expected_matches);
    return simulator.stats();
  };
  auto run_array = [&](Scheme scheme) {
    return RunJoinPhaseSim(scheme, w, SimPaperJoinParams(), cfg).stats;
  };

  PrintBreakdown("chained baseline", run_chained(ChainedPrefetch::kNone));
  PrintBreakdown("chained naive-pf",
                 run_chained(ChainedPrefetch::kNextCell));
  PrintBreakdown("array baseline", run_array(Scheme::kBaseline));
  PrintBreakdown("array group-pf", run_array(Scheme::kGroup));

  std::printf(
      "\npaper (§3): dependent references form a critical path — "
      "addresses are generated too late for within-visit prefetching; "
      "only inter-tuple scheduling (group/swp) hides the latency\n");
  return 0;
}
