// Real-hardware microbenchmarks (google-benchmark) of the partition
// phase: baseline / simple / group / software-pipelined prefetching at
// small and large partition counts. The crossover mirrors Figure 14:
// with few partitions the output buffers stay cache-resident and simple
// prefetching suffices; with many, inter-tuple prefetching wins.
//
// Repo flags (parsed before google-benchmark sees argv):
// --fault-rate=R / --fault-seed=S drive the disk-backed partition-pass
// benchmarks — BM_DiskPartition/raw (no checksums), /clean (checksums,
// no faults) and, when R > 0, /faults (seeded transient errors + torn
// pages with write verification). raw vs clean isolates the checksum
// cost of the I/O partition pass; clean vs faults the recovery cost.

// --json[=path] switches to the machine-readable harness (see
// src/perf/bench_reporter.h): warm-up + trials per configuration with
// hardware counters when available, written to
// BENCH_real_partition.json. --smoke shrinks the input for ctest;
// --tune=static (alias: --auto-tune) calibrates T/Tnext plus the LFB
// ceiling and picks G and D via the shared bench::ResolveTuning.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "join/exec_policy.h"
#include "join/grace_disk.h"
#include "mem/memory_model.h"
#include "model/cost_model.h"
#include "perf/bench_reporter.h"
#include "perf/calibrate.h"
#include "simcache/sim_config.h"
#include "storage/buffer_manager.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

const Relation& SharedInput() {
  static Relation* rel =
      new Relation(GenerateSourceRelation(1'000'000, 100, 42));
  return *rel;
}

void RunPartition(benchmark::State& state, Scheme scheme) {
  const Relation& input = SharedInput();
  uint32_t parts = uint32_t(state.range(0));
  KernelParams params;
  params.group_size = uint32_t(state.range(1));
  params.prefetch_distance = uint32_t(state.range(2));
  RealMemory mm;
  for (auto _ : state) {
    std::vector<Relation> dests;
    dests.reserve(parts);
    for (uint32_t p = 0; p < parts; ++p) {
      dests.emplace_back(input.schema());
    }
    {
      PartitionSinkSet sinks(&dests, kDefaultPageSize);
      PartitionRelation(mm, scheme, input, &sinks, parts, params);
    }
    uint64_t total = 0;
    for (auto& d : dests) total += d.num_tuples();
    if (total != input.num_tuples()) {
      state.SkipWithError("partition lost tuples");
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(input.num_tuples()));
}

void BM_Partition_Baseline(benchmark::State& state) {
  RunPartition(state, Scheme::kBaseline);
}
void BM_Partition_Simple(benchmark::State& state) {
  RunPartition(state, Scheme::kSimple);
}
void BM_Partition_Group(benchmark::State& state) {
  RunPartition(state, Scheme::kGroup);
}
void BM_Partition_Swp(benchmark::State& state) {
  RunPartition(state, Scheme::kSwp);
}
#if HASHJOIN_HAS_COROUTINES
void BM_Partition_Coro(benchmark::State& state) {
  RunPartition(state, Scheme::kCoro);
}
#endif

// {partitions, G, D}
BENCHMARK(BM_Partition_Baseline)
    ->Args({64, 1, 1})
    ->Args({800, 1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partition_Simple)
    ->Args({64, 1, 1})
    ->Args({800, 1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partition_Group)
    ->Args({64, 14, 1})
    ->Args({800, 8, 1})
    ->Args({800, 14, 1})
    ->Args({800, 32, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partition_Swp)
    ->Args({64, 1, 4})
    ->Args({800, 1, 2})
    ->Args({800, 1, 4})
    ->Args({800, 1, 8})
    ->Unit(benchmark::kMillisecond);
#if HASHJOIN_HAS_COROUTINES
BENCHMARK(BM_Partition_Coro)
    ->Args({64, 14, 1})
    ->Args({800, 8, 1})
    ->Args({800, 14, 1})
    ->Args({800, 32, 1})
    ->Unit(benchmark::kMillisecond);
#endif

}  // namespace

// Disk-backed I/O partition pass (StoreRelation + Partition) through the
// fault-tolerant buffer manager. Uses a smaller input than the in-memory
// kernels above — the point is the relative checksum/recovery cost.
void DiskPartitionBench(benchmark::State& state, bool checksums,
                        double fault_rate, uint64_t fault_seed) {
  static const Relation& input =
      *new Relation(GenerateSourceRelation(100'000, 100, 42));
  uint64_t injected = 0, retries = 0;
  for (auto _ : state) {
    BufferManagerConfig cfg;
    cfg.num_disks = 4;
    cfg.disk.bandwidth_mb_per_s = 20000;
    cfg.disk.request_latency_us = 0;
    cfg.checksum_pages = checksums;
    cfg.disk.fault.read_error_rate = fault_rate;
    cfg.disk.fault.write_error_rate = fault_rate;
    cfg.disk.fault.torn_page_rate = fault_rate;
    cfg.disk.fault.seed = fault_seed;
    cfg.verify_writes = fault_rate > 0;  // torn pages need the read-back
    BufferManager bm(cfg);
    DiskJoinConfig jc;
    jc.num_partitions = 64;
    jc.page_checksums = checksums;
    DiskGraceJoin join(&bm, jc);
    auto file = join.StoreRelation(input);
    if (!file.ok()) {
      state.SkipWithError("store failed");
      break;
    }
    auto parts = join.Partition(file.value(), nullptr);
    if (!parts.ok()) {
      state.SkipWithError("partition failed");
      break;
    }
    uint64_t pages = 0;
    for (auto f : parts.value()) pages += bm.FileNumPages(f);
    if (pages == 0) {
      state.SkipWithError("partition produced nothing");
      break;
    }
    IoRecoveryStats stats = bm.recovery_stats();
    injected += stats.injected_faults;
    retries += stats.read_retries + stats.write_retries;
    benchmark::DoNotOptimize(pages);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(input.num_tuples()));
  state.counters["injected_faults"] = double(injected);
  state.counters["retries"] = double(retries);
}

// ---------------------------------------------------------------------------
// Machine-readable harness (--json): one record per (scheme, partitions).

namespace {

using bench::PartitionCodeCosts;  // shared Table-2 cost vector

int RunJsonHarness(const FlagParser& flags) {
  const bool smoke = flags.GetBool("smoke", false);
  const uint64_t num_tuples = smoke ? 50'000 : 1'000'000;
  const uint32_t tuple_size = 100;

  perf::BenchReporter::Options opt;
  opt.bench_name = "real_partition";
  std::string path = flags.GetString("json", "");
  if (!path.empty() && path != "true") opt.output_path = path;
  opt.trials = int(flags.GetInt("trials", smoke ? 2 : 5));
  opt.warmup = int(flags.GetInt("warmup", 1));
  perf::BenchReporter reporter(std::move(opt));

  // Shared tuning resolution (see bench_common.h): paper partition-loop
  // optima when --tune=off, calibrated + LFB-clamped otherwise.
  const bench::TuningResolution tuning = bench::ResolveTuning(
      flags, PartitionCodeCosts(), bench::PaperPartitionDefaults());
  const KernelParams tuned = tuning.params;
  if (tuning.calibrated) reporter.SetCalibration(tuning.calibration);

  const Relation input =
      GenerateSourceRelation(num_tuples, tuple_size, 42);
  RealMemory mm;
  std::vector<uint32_t> part_counts =
      smoke ? std::vector<uint32_t>{16} : std::vector<uint32_t>{64, 800};

  const std::vector<Scheme> schemes = bench::SchemesFromFlag(flags);
  for (uint32_t parts : part_counts) {
    for (Scheme scheme : schemes) {
      std::vector<Relation> dests;
      uint64_t total = 0;
      bool ok = true;
      JsonValue config = JsonValue::Object();
      config.Set("phase", "partition");
      config.Set("scheme", SchemeName(scheme));
      config.Set("G", tuned.group_size);
      config.Set("D", tuned.prefetch_distance);
      config.Set("threads", 1);
      config.Set("partitions", parts);
      config.Set("tuple_size", tuple_size);
      config.Set("input_tuples", input.num_tuples());
      JsonValue& rec = reporter.AddRecord(
          std::string("partition/") + SchemeName(scheme) +
              "/parts=" + std::to_string(parts),
          std::move(config),
          /*body=*/
          [&] {
            {
              PartitionSinkSet sinks(&dests, kDefaultPageSize);
              PartitionRelation(mm, scheme, input, &sinks, parts, tuned);
            }
            total = 0;
            for (auto& d : dests) total += d.num_tuples();
            ok &= total == input.num_tuples();
          },
          /*setup=*/
          [&] {
            dests.clear();
            dests.reserve(parts);
            for (uint32_t p = 0; p < parts; ++p) {
              dests.emplace_back(input.schema());
            }
          });
      rec.Set("outputs", total);
      rec.Set("verified", ok);
      rec.Set("tuning", tuning.ToJson());
    }
  }

  Status st = reporter.Write();
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n",
                 reporter.output_path().c_str(), st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records, counters %s)\n",
              reporter.output_path().c_str(),
              reporter.doc().Find("records")->size(),
              reporter.counters_available() ? "available" : "unavailable");
  return 0;
}

}  // namespace

}  // namespace hashjoin

// Custom main (instead of BENCHMARK_MAIN) so the repo's fault flags can
// be stripped from argv before google-benchmark rejects them.
int main(int argc, char** argv) {
  hashjoin::FlagParser flags;
  flags.Parse(argc, argv);
  if (flags.Has("json")) return hashjoin::RunJsonHarness(flags);
  // Validate --scheme even on the google-benchmark path (where the
  // registered benchmark list, not the flag, picks the kernels): a typo
  // should fail loudly, not silently run everything.
  if (flags.Has("scheme")) {
    (void)hashjoin::bench::SchemesFromFlag(flags);
  }
  double fault_rate = flags.GetDouble("fault-rate", 0.0);
  uint64_t fault_seed = uint64_t(flags.GetInt("fault-seed", 0x5EED));

  const char* repo_flags[] = {"--fault-rate", "--fault-seed", "--scheme",
                              "--tune", "--auto-tune"};
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    bool ours = false;
    for (const char* f : repo_flags) {
      if (a.rfind(f, 0) == 0) {
        if (a == f && i + 1 < argc && argv[i + 1][0] != '-') ++i;
        ours = true;
        break;
      }
    }
    if (!ours) args.push_back(argv[i]);
  }
  int filtered_argc = int(args.size());

  benchmark::RegisterBenchmark("BM_DiskPartition/raw",
                               hashjoin::DiskPartitionBench,
                               /*checksums=*/false, 0.0, fault_seed)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("BM_DiskPartition/clean",
                               hashjoin::DiskPartitionBench,
                               /*checksums=*/true, 0.0, fault_seed)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  if (fault_rate > 0) {
    benchmark::RegisterBenchmark("BM_DiskPartition/faults",
                                 hashjoin::DiskPartitionBench,
                                 /*checksums=*/true, fault_rate, fault_seed)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
