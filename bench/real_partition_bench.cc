// Real-hardware microbenchmarks (google-benchmark) of the partition
// phase: baseline / simple / group / software-pipelined prefetching at
// small and large partition counts. The crossover mirrors Figure 14:
// with few partitions the output buffers stay cache-resident and simple
// prefetching suffices; with many, inter-tuple prefetching wins.

#include <benchmark/benchmark.h>

#include "join/partition_kernels.h"
#include "mem/memory_model.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

const Relation& SharedInput() {
  static Relation* rel =
      new Relation(GenerateSourceRelation(1'000'000, 100, 42));
  return *rel;
}

void RunPartition(benchmark::State& state, Scheme scheme) {
  const Relation& input = SharedInput();
  uint32_t parts = uint32_t(state.range(0));
  KernelParams params;
  params.group_size = uint32_t(state.range(1));
  params.prefetch_distance = uint32_t(state.range(2));
  RealMemory mm;
  for (auto _ : state) {
    std::vector<Relation> dests;
    dests.reserve(parts);
    for (uint32_t p = 0; p < parts; ++p) {
      dests.emplace_back(input.schema());
    }
    {
      PartitionSinkSet sinks(&dests, kDefaultPageSize);
      PartitionRelation(mm, scheme, input, &sinks, parts, params);
    }
    uint64_t total = 0;
    for (auto& d : dests) total += d.num_tuples();
    if (total != input.num_tuples()) {
      state.SkipWithError("partition lost tuples");
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(input.num_tuples()));
}

void BM_Partition_Baseline(benchmark::State& state) {
  RunPartition(state, Scheme::kBaseline);
}
void BM_Partition_Simple(benchmark::State& state) {
  RunPartition(state, Scheme::kSimple);
}
void BM_Partition_Group(benchmark::State& state) {
  RunPartition(state, Scheme::kGroup);
}
void BM_Partition_Swp(benchmark::State& state) {
  RunPartition(state, Scheme::kSwp);
}

// {partitions, G, D}
BENCHMARK(BM_Partition_Baseline)
    ->Args({64, 1, 1})
    ->Args({800, 1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partition_Simple)
    ->Args({64, 1, 1})
    ->Args({800, 1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partition_Group)
    ->Args({64, 14, 1})
    ->Args({800, 8, 1})
    ->Args({800, 14, 1})
    ->Args({800, 32, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Partition_Swp)
    ->Args({64, 1, 4})
    ->Args({800, 1, 2})
    ->Args({800, 1, 4})
    ->Args({800, 1, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hashjoin

BENCHMARK_MAIN();
