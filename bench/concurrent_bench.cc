// Multi-query join service under memory pressure: N simultaneous
// disk-backed GRACE joins admitted through the JoinScheduler, sharing
// one work-stealing pool and one MemoryBroker whose budget is smaller
// than the queries' combined working sets. The big high-priority query
// acquires the whole budget first; the others' admission minima force
// broker revokes, so it demonstrably spills mid-join (revoke_spills),
// then un-spills as finishing queries release their grants. An overload
// burst past the admission queue shows backpressure as clean
// kResourceExhausted rejections.
//
// Per-query outcomes (wall time, queue latency, grant history, spill
// and I/O-recovery counters) print as a table; --json[=path] writes
// BENCH_concurrent.json in the shared harness schema — one record per
// query plus a "service" aggregate with tail latencies. The bench-smoke
// fixture gates on `bench_diff --check --require=...` so the promised
// metrics (revoke_spills, queue tail latency) cannot silently drop out
// of the schema.
//
// --revoke-storm replaces the default sections with rapid admit/revoke
// cycles at 2x memory oversubscription: every query desires its whole
// working set, the budget covers half of the concurrent demand, and the
// robust hybrid join absorbs the churn — all queries must finish with
// correct counts, every degradation classified by reason. The storm's
// smoke fixture gates on tail_latency.run_p99 and total_io_bytes.
//
//   concurrent_bench --queries=8 --mem-budget=BYTES [--smoke] [--json]
//                    [--max-concurrent=4] [--pool-threads=4]
//                    [--base-tuples=20000] [--overload=N] [--revoke-storm]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "hash/hash_table.h"
#include "join/grace_disk.h"
#include "perf/bench_reporter.h"
#include "sched/join_scheduler.h"
#include "storage/buffer_manager.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/generator.h"

using namespace hashjoin;

namespace {

constexpr uint32_t kTupleSize = 20;
constexpr uint64_t kKiB = 1024;

struct QuerySpec {
  std::string name;
  int priority = 0;
  uint64_t min_grant = 0;
  uint64_t desired_grant = 0;
  uint32_t num_partitions = 8;
  std::unique_ptr<JoinWorkload> workload;  // Relation is move-only
  double seq_seconds = 0;  // sequential (unthrottled) baseline
};

DiskConfig BenchDisk(bool smoke) {
  DiskConfig cfg;
  if (smoke) {
    cfg.bandwidth_mb_per_s = 20000;
    cfg.request_latency_us = 0;
  }
  return cfg;
}

BufferManagerConfig BenchDisks(bool smoke) {
  BufferManagerConfig cfg;
  cfg.num_disks = 2;
  cfg.disk = BenchDisk(smoke);
  return cfg;
}

/// One query's body: its own disk array (scans are single-user), the
/// live grant wired into both the join's sizing decisions and the
/// scanner's read-ahead window, recovery counters diffed into stats.
/// Runs the robust dynamic hybrid join: fan-out from the observed input
/// histogram, partitions resident until a revoke evicts smallest-loss
/// victims (with the grant's revoke listener as the eager hint), role
/// reversal and the full degradation ladder on the spilled pairs.
StatusOr<uint64_t> RunQuery(QueryContext& ctx, const QuerySpec& spec,
                            bool smoke) {
  BufferManager bm(BenchDisks(smoke));
  bm.SetReadAheadBudget(ctx.GrantFn());

  DiskJoinConfig cfg;
  cfg.num_partitions = spec.num_partitions;
  cfg.dynamic_budget = ctx.GrantFn();
  cfg.initial_grant_bytes = ctx.grant().initial_bytes();
  cfg.adaptive_fanout = true;
  cfg.hybrid_residency = true;
  cfg.install_revoke_listener = ctx.RevokeListenerInstaller();
  DiskGraceJoin join(&bm, cfg);
  HJ_ASSIGN_OR_RETURN(auto build, join.StoreRelation(spec.workload->build));
  HJ_ASSIGN_OR_RETURN(auto probe, join.StoreRelation(spec.workload->probe));
  HJ_ASSIGN_OR_RETURN(DiskJoinResult r, join.Join(build, probe));

  ctx.stats().recovery = r.recovery;
  ctx.stats().io = bm.recovery_stats();
  ctx.stats().readahead_throttles = bm.readahead_throttles();
  ctx.stats().spill_levels = std::move(r.spill_levels);
  return r.output_tuples;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = size_t(p * double(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

JsonValue WallObject(double seconds) {
  JsonValue wall = JsonValue::Object();
  wall.Set("median", seconds);
  wall.Set("min", seconds);
  wall.Set("mean", seconds);
  return wall;
}

void FinishRawRecord(JsonValue* rec) {
  rec->Set("trials", 1);
  rec->Set("warmup", 0);
  rec->Set("counters", JsonValue());
  rec->Set("counters_unavailable",
           "per-query wall time is measured by the service, not the "
           "trial harness");
}

JsonValue RecoveryObject(const DiskJoinRecovery& r) {
  JsonValue recovery = JsonValue::Object();
  recovery.Set("revoke_spills", r.revoke_spills);
  recovery.Set("regrant_unspills", r.regrant_unspills);
  recovery.Set("recursive_splits", r.recursive_splits);
  recovery.Set("chunked_fallbacks", r.chunked_fallbacks);
  recovery.Set("role_reversals", r.role_reversals);
  recovery.Set("bnl_fallbacks", r.bnl_fallbacks);
  recovery.Set("victim_spills", r.victim_spills);
  recovery.Set("victim_unspills", r.victim_unspills);
  return recovery;
}

/// Every over-budget partition pair resolved through exactly one ladder
/// rung, so these counts classify all degradations — there is no
/// "bailed out unexplained" bucket.
JsonValue DegradationObject(const DiskJoinRecovery& r) {
  JsonValue deg = JsonValue::Object();
  deg.Set("role_reversal", r.role_reversals);
  deg.Set("recursive_split", r.recursive_splits);
  deg.Set("chunked_build", r.chunked_fallbacks);
  deg.Set("block_nested_loop", r.bnl_fallbacks);
  deg.Set("victim_spill", r.victim_spills);
  deg.Set("victim_unspill", r.victim_unspills);
  return deg;
}

/// Per-level split summaries: key-hash balance (histogram condensed to
/// max-bin fraction + occupied bins — the raw 64 bins stay internal) and
/// realized spill cost per partitioning level.
JsonValue SpillLevelsArray(const std::vector<SpillLevelStats>& levels) {
  JsonValue arr = JsonValue::Array();
  for (const SpillLevelStats& lv : levels) {
    JsonValue o = JsonValue::Object();
    o.Set("level", lv.level);
    o.Set("partitions_written", lv.partitions_written);
    o.Set("tuples", lv.tuples);
    o.Set("bytes_written", lv.bytes_written);
    o.Set("partition_seconds", lv.partition_seconds);
    o.Set("max_bin_fraction", lv.MaxBinFraction());
    o.Set("nonzero_bins", lv.NonzeroBins());
    arr.Append(std::move(o));
  }
  return arr;
}

/// The broker's cache-grant ledger: bytes revoked from the kCache class
/// and the count of normal-grant revokes that happened while cache
/// surplus remained — the acceptance invariant is that the latter is 0
/// (cached tables always go first).
JsonValue CacheLedgerObject(const MemoryBroker& broker) {
  JsonValue c = JsonValue::Object();
  c.Set("broker_revoked_bytes", broker.cache_revoked_bytes());
  c.Set("normal_revokes_with_cache_surplus",
        broker.normal_revokes_with_cache_surplus());
  return c;
}

JsonValue IoObject(const IoRecoveryStats& io) {
  JsonValue out = JsonValue::Object();
  out.Set("read_retries", io.read_retries);
  out.Set("write_retries", io.write_retries);
  out.Set("injected_faults", io.injected_faults);
  out.Set("bytes_read", io.bytes_read);
  out.Set("bytes_written", io.bytes_written);
  return out;
}

/// --revoke-storm: rapid admit/revoke cycles at 2x memory
/// oversubscription. Every query desires its full working set but
/// concedes a small admission minimum, and the broker budget covers only
/// half of what the concurrently running queries want — so each
/// admission revokes the running queries' surplus and each completion
/// re-grows them, a grant churn storm. The robust hybrid join must ride
/// it out: all queries complete with correct match counts and every
/// over-budget moment is classified by a degradation reason.
int RunRevokeStorm(const FlagParser& flags, bool smoke) {
  const int num_queries = int(flags.GetInt("queries", 8));
  const uint64_t base_tuples =
      uint64_t(flags.GetInt("base-tuples", smoke ? 2500 : 15000));

  const uint64_t pages = (base_tuples * (kTupleSize + 6)) / (8 * kKiB) + 1;
  const uint64_t working_set =
      pages * 8 * kKiB + HashTable::EstimateBytes(base_tuples);

  SchedulerConfig sched_cfg;
  sched_cfg.max_concurrent = uint32_t(flags.GetInt("max-concurrent", 4));
  sched_cfg.pool_threads = uint32_t(flags.GetInt("pool-threads", 4));
  sched_cfg.max_queue = uint32_t(std::max(1, num_queries));
  // Half of the concurrent queries' combined desire = 2x oversubscribed.
  const uint64_t mem_budget = uint64_t(flags.GetInt(
      "mem-budget", int64_t(working_set * sched_cfg.max_concurrent / 2)));
  sched_cfg.memory_budget = mem_budget;
  // --cache-bytes > 0 adds the hash-table cache as the lowest-priority
  // revocable grant on top of the storm: its surplus must drain before
  // any query grant is squeezed (verified below by the broker ledger).
  sched_cfg.cache_bytes = uint64_t(flags.GetInt("cache-bytes", 0));

  std::vector<QuerySpec> specs;
  for (int q = 0; q < num_queries; ++q) {
    QuerySpec spec;
    spec.name = "s" + std::to_string(q);
    spec.priority = q % 3;  // mixed priorities keep admissions reordering
    WorkloadSpec w;
    w.tuple_size = kTupleSize;
    w.seed = uint64_t(300 + q);
    w.num_build_tuples = base_tuples;
    spec.min_grant = std::max<uint64_t>(mem_budget / 8, 8 * kKiB);
    spec.desired_grant = working_set;
    spec.workload = std::make_unique<JoinWorkload>(GenerateJoinWorkload(w));
    specs.push_back(std::move(spec));
  }

  std::printf("=== Revoke storm: %d queries, budget %.1f KiB, "
              "working set %.1f KiB each, max_concurrent=%u "
              "(%.1fx oversubscribed) ===\n\n",
              num_queries, double(mem_budget) / 1024.0,
              double(working_set) / 1024.0, sched_cfg.max_concurrent,
              double(working_set) * double(sched_cfg.max_concurrent) /
                  double(mem_budget));

  JoinScheduler sched(sched_cfg);
  for (const QuerySpec& spec : specs) {
    JoinRequest req;
    req.name = spec.name;
    req.priority = spec.priority;
    req.min_grant_bytes = spec.min_grant;
    req.desired_grant_bytes = spec.desired_grant;
    req.body = [&spec, smoke](QueryContext& ctx) {
      return RunQuery(ctx, spec, smoke);
    };
    auto id = sched.Submit(std::move(req));
    HJ_CHECK(id.ok()) << "storm query rejected: " << id.status().ToString();
  }
  ServiceStats stats = sched.Drain();

  // --- verification + degradation tally ---
  std::printf("%-10s %-8s %9s %9s %12s %7s %7s %7s %7s %7s\n", "query",
              "status", "queue_s", "run_s", "output", "revokes", "v_spill",
              "unspill", "reverse", "split");
  uint64_t bad_counts = 0, total_io_bytes = 0;
  DiskJoinRecovery deg;  // summed degradation ledger across queries
  std::vector<double> run_seconds, queue_seconds;
  for (const QueryStats& qs : stats.queries) {
    const QuerySpec* spec = nullptr;
    for (const QuerySpec& s : specs) {
      if (s.name == qs.name) spec = &s;
    }
    HJ_CHECK(spec != nullptr) << "unknown storm query " << qs.name;
    bool correct =
        qs.status.ok() && qs.output_tuples == spec->workload->expected_matches;
    if (!correct) ++bad_counts;
    total_io_bytes += qs.io.bytes_read + qs.io.bytes_written;
    deg.revoke_spills += qs.recovery.revoke_spills;
    deg.regrant_unspills += qs.recovery.regrant_unspills;
    deg.recursive_splits += qs.recovery.recursive_splits;
    deg.chunked_fallbacks += qs.recovery.chunked_fallbacks;
    deg.role_reversals += qs.recovery.role_reversals;
    deg.bnl_fallbacks += qs.recovery.bnl_fallbacks;
    deg.victim_spills += qs.recovery.victim_spills;
    deg.victim_unspills += qs.recovery.victim_unspills;
    run_seconds.push_back(qs.run_seconds);
    queue_seconds.push_back(qs.queue_seconds);
    std::printf("%-10s %-8s %9.4f %9.4f %12llu %7llu %7llu %7llu %7llu "
                "%7llu%s\n",
                qs.name.c_str(), qs.status.ok() ? "ok" : "FAILED",
                qs.queue_seconds, qs.run_seconds,
                (unsigned long long)qs.output_tuples,
                (unsigned long long)qs.grant_revokes,
                (unsigned long long)qs.recovery.victim_spills,
                (unsigned long long)qs.recovery.victim_unspills,
                (unsigned long long)qs.recovery.role_reversals,
                (unsigned long long)qs.recovery.recursive_splits,
                correct ? "" : "  << WRONG COUNT");
  }
  // Zero-attribution invariant: with the cache enabled, no query grant
  // may be cut while the cache still held revocable surplus — cached
  // tables are strictly the first memory to go.
  const uint64_t cache_misordered =
      sched.broker().normal_revokes_with_cache_surplus();
  const bool service_ok =
      bad_counts == 0 && stats.failed == 0 &&
      stats.completed == uint64_t(num_queries) && cache_misordered == 0;
  std::printf("\nstorm: %llu completed, %llu failed; makespan %.4fs; "
              "%llu broker revokes, %llu re-grows\n",
              (unsigned long long)stats.completed,
              (unsigned long long)stats.failed, stats.makespan_seconds,
              (unsigned long long)sched.broker().total_revokes(),
              (unsigned long long)sched.broker().total_regrows());
  std::printf("degradations: %llu reverse, %llu split, %llu chunked, "
              "%llu bnl, %llu victim-spill, %llu victim-unspill; "
              "total I/O %.1f KiB\n",
              (unsigned long long)deg.role_reversals,
              (unsigned long long)deg.recursive_splits,
              (unsigned long long)deg.chunked_fallbacks,
              (unsigned long long)deg.bnl_fallbacks,
              (unsigned long long)deg.victim_spills,
              (unsigned long long)deg.victim_unspills,
              double(total_io_bytes) / 1024.0);
  if (sched_cfg.cache_bytes > 0) {
    std::printf("cache grant: %.1f KiB revoked from cache class, %llu "
                "normal revokes with cache surplus remaining%s\n",
                double(sched.broker().cache_revoked_bytes()) / 1024.0,
                (unsigned long long)cache_misordered,
                cache_misordered == 0 ? " (ok)" : "  << ORDER VIOLATION");
  }
  if (!service_ok) {
    std::printf("FAILURE: %llu queries wrong or failed, %llu cache-order "
                "violations\n",
                (unsigned long long)(bad_counts + stats.failed),
                (unsigned long long)cache_misordered);
  }

  if (flags.Has("json")) {
    perf::BenchReporter::Options opt;
    opt.bench_name = "concurrent_storm";
    std::string path = flags.GetString("json", "");
    if (!path.empty() && path != "true") opt.output_path = path;
    opt.trials = 1;
    opt.warmup = 0;
    opt.collect_counters = false;
    perf::BenchReporter reporter(std::move(opt));

    for (const QueryStats& qs : stats.queries) {
      const QuerySpec* spec = nullptr;
      for (const QuerySpec& s : specs) {
        if (s.name == qs.name) spec = &s;
      }
      if (spec == nullptr) continue;
      JsonValue rec = JsonValue::Object();
      rec.Set("name", "storm/" + qs.name);
      JsonValue config = JsonValue::Object();
      config.Set("build_tuples", spec->workload->build.num_tuples());
      config.Set("probe_tuples", spec->workload->probe.num_tuples());
      config.Set("min_grant_bytes", spec->min_grant);
      config.Set("desired_grant_bytes", spec->desired_grant);
      rec.Set("config", std::move(config));
      rec.Set("wall_seconds", WallObject(qs.run_seconds));
      FinishRawRecord(&rec);
      rec.Set("status", qs.status.ok() ? "ok" : qs.status.ToString());
      rec.Set("queue_seconds", qs.queue_seconds);
      rec.Set("outputs", qs.output_tuples);
      rec.Set("verified",
              qs.output_tuples == spec->workload->expected_matches);
      JsonValue grant = JsonValue::Object();
      grant.Set("initial_bytes", qs.grant_initial_bytes);
      grant.Set("low_bytes", qs.grant_low_bytes);
      grant.Set("final_bytes", qs.grant_final_bytes);
      grant.Set("revokes", qs.grant_revokes);
      grant.Set("regrows", qs.grant_regrows);
      rec.Set("grant", std::move(grant));
      rec.Set("recovery", RecoveryObject(qs.recovery));
      rec.Set("degradation_reason", DegradationObject(qs.recovery));
      rec.Set("io_recovery", IoObject(qs.io));
      rec.Set("total_io_bytes", qs.io.bytes_read + qs.io.bytes_written);
      rec.Set("spill_levels", SpillLevelsArray(qs.spill_levels));
      reporter.AddRawRecord(std::move(rec));
    }

    JsonValue rec = JsonValue::Object();
    rec.Set("name", "storm");
    JsonValue config = JsonValue::Object();
    config.Set("queries", num_queries);
    config.Set("mem_budget", mem_budget);
    config.Set("working_set", working_set);
    config.Set("max_concurrent", sched_cfg.max_concurrent);
    config.Set("pool_threads", sched_cfg.pool_threads);
    config.Set("cache_bytes", sched_cfg.cache_bytes);
    rec.Set("config", std::move(config));
    rec.Set("wall_seconds", WallObject(stats.makespan_seconds));
    FinishRawRecord(&rec);
    rec.Set("completed", stats.completed);
    rec.Set("failed", stats.failed);
    rec.Set("broker_revokes", sched.broker().total_revokes());
    rec.Set("broker_regrows", sched.broker().total_regrows());
    rec.Set("cache", CacheLedgerObject(sched.broker()));
    rec.Set("degradation_reason", DegradationObject(deg));
    rec.Set("total_io_bytes", total_io_bytes);
    rec.Set("verified", service_ok);
    JsonValue tail = JsonValue::Object();
    tail.Set("run_p50", Percentile(run_seconds, 0.5));
    tail.Set("run_p95", Percentile(run_seconds, 0.95));
    tail.Set("run_p99", Percentile(run_seconds, 0.99));
    tail.Set("run_max", Percentile(run_seconds, 1.0));
    tail.Set("queue_p50", Percentile(queue_seconds, 0.5));
    tail.Set("queue_p95", Percentile(queue_seconds, 0.95));
    tail.Set("queue_p99", Percentile(queue_seconds, 0.99));
    tail.Set("queue_max", Percentile(queue_seconds, 1.0));
    rec.Set("tail_latency", std::move(tail));
    reporter.AddRawRecord(std::move(rec));

    Status st = reporter.Write();
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   reporter.output_path().c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", reporter.output_path().c_str(),
                reporter.doc().Find("records")->size());
  }
  return service_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  const bool smoke = flags.Has("smoke");
  if (flags.Has("revoke-storm")) return RunRevokeStorm(flags, smoke);
  const int num_queries = int(flags.GetInt("queries", 8));
  const uint64_t base_tuples =
      uint64_t(flags.GetInt("base-tuples", smoke ? 3000 : 20000));

  // The big query's per-partition build footprint sets the memory scale:
  // a budget of 1.2x that footprint means the query fits while it holds
  // its full grant, and a single concurrent revoke (another query's
  // 0.4-budget minimum) pushes it below the footprint — so its next
  // sizing decision spills, tallied as a revoke_spill.
  const uint64_t big_tuples = 4 * base_tuples;
  const uint32_t big_partitions = 4;
  const uint64_t part_tuples = big_tuples / big_partitions;
  const uint64_t part_pages = (part_tuples * (kTupleSize + 6)) / (8 * kKiB) + 1;
  const uint64_t part_need =
      part_pages * 8 * kKiB + HashTable::EstimateBytes(part_tuples);
  const uint64_t mem_budget =
      uint64_t(flags.GetInt("mem-budget", int64_t(part_need * 6 / 5)));

  SchedulerConfig sched_cfg;
  sched_cfg.max_concurrent = uint32_t(flags.GetInt("max-concurrent", 4));
  sched_cfg.pool_threads = uint32_t(flags.GetInt("pool-threads", 4));
  sched_cfg.max_queue = uint32_t(flags.GetInt(
      "max-queue", int64_t(std::max(1, num_queries))));
  sched_cfg.memory_budget = mem_budget;

  // --- workloads: one big high-priority query plus mixed-size rest ---
  std::vector<QuerySpec> specs;
  uint64_t combined_working_set = 0;
  for (int q = 0; q < num_queries; ++q) {
    QuerySpec spec;
    spec.name = "q" + std::to_string(q);
    WorkloadSpec w;
    w.tuple_size = kTupleSize;
    w.seed = uint64_t(100 + q);
    if (q == 0) {
      w.num_build_tuples = big_tuples;
      spec.priority = 10;  // starts first, holds the whole budget
      spec.num_partitions = big_partitions;
      spec.min_grant = mem_budget / 16;
      spec.desired_grant = mem_budget;
    } else {
      w.num_build_tuples = base_tuples * uint64_t(1 + q % 3);
      spec.min_grant = mem_budget * 2 / 5;
      spec.desired_grant = mem_budget / 2;
    }
    spec.workload = std::make_unique<JoinWorkload>(GenerateJoinWorkload(w));
    combined_working_set +=
        w.num_build_tuples * kTupleSize +
        HashTable::EstimateBytes(w.num_build_tuples);
    specs.push_back(std::move(spec));
  }

  std::printf("=== Concurrent join service: %d queries, budget %.1f KiB "
              "(combined working sets %.1f KiB) ===\n\n",
              num_queries, double(mem_budget) / 1024.0,
              double(combined_working_set) / 1024.0);

  // --- sequential baseline: each join alone, unlimited memory ---
  for (QuerySpec& spec : specs) {
    BufferManager bm(BenchDisks(smoke));
    DiskGraceJoin join(&bm, DiskJoinConfig{});
    WallTimer timer;
    auto build = join.StoreRelation(spec.workload->build);
    auto probe = join.StoreRelation(spec.workload->probe);
    HJ_CHECK(build.ok() && probe.ok());
    auto r = join.Join(build.value(), probe.value());
    HJ_CHECK(r.ok()) << r.status().ToString();
    HJ_CHECK(r.value().output_tuples == spec.workload->expected_matches)
        << spec.name << " sequential run produced the wrong count";
    spec.seq_seconds = timer.ElapsedSeconds();
  }

  // --- concurrent run through the scheduler ---
  JoinScheduler sched(sched_cfg);
  for (const QuerySpec& spec : specs) {
    JoinRequest req;
    req.name = spec.name;
    req.priority = spec.priority;
    req.min_grant_bytes = spec.min_grant;
    req.desired_grant_bytes = spec.desired_grant;
    req.body = [&spec, smoke](QueryContext& ctx) {
      return RunQuery(ctx, spec, smoke);
    };
    auto id = sched.Submit(std::move(req));
    HJ_CHECK(id.ok()) << "real query rejected: " << id.status().ToString();
  }

  // Overload burst: more submissions than the queue can hold while the
  // runners are busy. Rejections come back as kResourceExhausted
  // Status — the backpressure contract — and the accepted ones are
  // trivial bodies that drain quickly.
  const int overload = int(flags.GetInt("overload", 2 * num_queries));
  int overload_accepted = 0, overload_rejected = 0;
  for (int i = 0; i < overload; ++i) {
    JoinRequest req;
    req.name = "overload" + std::to_string(i);
    req.min_grant_bytes = 4 * kKiB;
    req.desired_grant_bytes = 4 * kKiB;
    req.body = [](QueryContext&) -> StatusOr<uint64_t> {
      return uint64_t(0);
    };
    auto id = sched.Submit(std::move(req));
    if (id.ok()) {
      ++overload_accepted;
    } else {
      HJ_CHECK(id.status().code() == StatusCode::kResourceExhausted)
          << id.status().ToString();
      ++overload_rejected;
    }
  }

  ServiceStats stats = sched.Drain();

  // --- per-query table + verification ---
  std::printf("%-10s %-8s %9s %9s %12s %9s %7s %7s %7s %9s\n", "query",
              "status", "queue_s", "run_s", "output", "seq_s", "grant0",
              "grantL", "revokes", "rv_spills");
  uint64_t total_revoke_spills = 0, total_unspills = 0, bad_counts = 0;
  uint64_t total_io_bytes = 0;
  std::vector<double> run_seconds, queue_seconds;
  for (const QueryStats& qs : stats.queries) {
    const QuerySpec* spec = nullptr;
    for (const QuerySpec& s : specs) {
      if (s.name == qs.name) spec = &s;
    }
    if (spec == nullptr) continue;  // overload filler
    bool correct =
        qs.status.ok() && qs.output_tuples == spec->workload->expected_matches;
    if (!correct) ++bad_counts;
    total_revoke_spills += qs.recovery.revoke_spills;
    total_unspills += qs.recovery.regrant_unspills;
    total_io_bytes += qs.io.bytes_read + qs.io.bytes_written;
    run_seconds.push_back(qs.run_seconds);
    queue_seconds.push_back(qs.queue_seconds);
    std::printf("%-10s %-8s %9.4f %9.4f %12llu %9.4f %6lluK %6lluK %7llu "
                "%9llu%s\n",
                qs.name.c_str(), qs.status.ok() ? "ok" : "FAILED",
                qs.queue_seconds, qs.run_seconds,
                (unsigned long long)qs.output_tuples, spec->seq_seconds,
                (unsigned long long)(qs.grant_initial_bytes / 1024),
                (unsigned long long)(qs.grant_low_bytes / 1024),
                (unsigned long long)qs.grant_revokes,
                (unsigned long long)qs.recovery.revoke_spills,
                correct ? "" : "  << WRONG COUNT");
  }
  std::printf("\nservice: %llu submitted, %llu rejected, %llu completed, "
              "%llu failed; makespan %.4fs\n",
              (unsigned long long)stats.submitted,
              (unsigned long long)stats.rejected,
              (unsigned long long)stats.completed,
              (unsigned long long)stats.failed, stats.makespan_seconds);
  std::printf("memory: %llu broker revokes, %llu re-grows; %llu "
              "revoke-forced spills, %llu re-grant un-spills\n",
              (unsigned long long)sched.broker().total_revokes(),
              (unsigned long long)sched.broker().total_regrows(),
              (unsigned long long)total_revoke_spills,
              (unsigned long long)total_unspills);
  std::printf("overload burst: %d accepted, %d rejected (backpressure)\n",
              overload_accepted, overload_rejected);
  std::printf("latency: run p50=%.4fs p95=%.4fs max=%.4fs; queue "
              "p50=%.4fs p95=%.4fs max=%.4fs\n",
              Percentile(run_seconds, 0.5), Percentile(run_seconds, 0.95),
              Percentile(run_seconds, 1.0), Percentile(queue_seconds, 0.5),
              Percentile(queue_seconds, 0.95),
              Percentile(queue_seconds, 1.0));

  bool service_ok = bad_counts == 0 && stats.failed == 0;
  if (total_revoke_spills == 0) {
    std::printf("WARNING: no revoke-forced spill observed — raise "
                "--queries or lower --mem-budget\n");
  }
  if (!service_ok) {
    std::printf("FAILURE: %llu queries wrong or failed\n",
                (unsigned long long)bad_counts);
  }

  // --- JSON ---
  if (flags.Has("json")) {
    perf::BenchReporter::Options opt;
    opt.bench_name = "concurrent";
    std::string path = flags.GetString("json", "");
    if (!path.empty() && path != "true") opt.output_path = path;
    opt.trials = 1;
    opt.warmup = 0;
    // Wall times come from the service, not the trial harness.
    opt.collect_counters = false;
    perf::BenchReporter reporter(std::move(opt));

    for (const QueryStats& qs : stats.queries) {
      const QuerySpec* spec = nullptr;
      for (const QuerySpec& s : specs) {
        if (s.name == qs.name) spec = &s;
      }
      if (spec == nullptr) continue;
      JsonValue rec = JsonValue::Object();
      rec.Set("name", "query/" + qs.name);
      JsonValue config = JsonValue::Object();
      config.Set("build_tuples", spec->workload->build.num_tuples());
      config.Set("probe_tuples", spec->workload->probe.num_tuples());
      config.Set("tuple_size", kTupleSize);
      config.Set("priority", qs.priority);
      config.Set("min_grant_bytes", spec->min_grant);
      config.Set("desired_grant_bytes", spec->desired_grant);
      config.Set("num_partitions", spec->num_partitions);
      rec.Set("config", std::move(config));
      rec.Set("wall_seconds", WallObject(qs.run_seconds));
      FinishRawRecord(&rec);
      rec.Set("status", qs.status.ok() ? "ok" : qs.status.ToString());
      rec.Set("queue_seconds", qs.queue_seconds);
      rec.Set("sequential_seconds", spec->seq_seconds);
      rec.Set("outputs", qs.output_tuples);
      rec.Set("verified",
              qs.output_tuples == spec->workload->expected_matches);
      JsonValue grant = JsonValue::Object();
      grant.Set("initial_bytes", qs.grant_initial_bytes);
      grant.Set("low_bytes", qs.grant_low_bytes);
      grant.Set("final_bytes", qs.grant_final_bytes);
      grant.Set("revokes", qs.grant_revokes);
      grant.Set("regrows", qs.grant_regrows);
      rec.Set("grant", std::move(grant));
      rec.Set("recovery", RecoveryObject(qs.recovery));
      rec.Set("degradation_reason", DegradationObject(qs.recovery));
      rec.Set("io_recovery", IoObject(qs.io));
      rec.Set("total_io_bytes", qs.io.bytes_read + qs.io.bytes_written);
      rec.Set("readahead_throttles", qs.readahead_throttles);
      rec.Set("spill_levels", SpillLevelsArray(qs.spill_levels));
      reporter.AddRawRecord(std::move(rec));
    }

    JsonValue rec = JsonValue::Object();
    rec.Set("name", "service");
    JsonValue config = JsonValue::Object();
    config.Set("queries", num_queries);
    config.Set("mem_budget", mem_budget);
    config.Set("max_concurrent", sched_cfg.max_concurrent);
    config.Set("pool_threads", sched_cfg.pool_threads);
    config.Set("max_queue", sched_cfg.max_queue);
    config.Set("overload", overload);
    rec.Set("config", std::move(config));
    rec.Set("wall_seconds", WallObject(stats.makespan_seconds));
    FinishRawRecord(&rec);
    rec.Set("submitted", stats.submitted);
    rec.Set("rejected", stats.rejected);
    rec.Set("completed", stats.completed);
    rec.Set("failed", stats.failed);
    rec.Set("revoke_spills", total_revoke_spills);
    rec.Set("regrant_unspills", total_unspills);
    rec.Set("broker_revokes", sched.broker().total_revokes());
    rec.Set("broker_regrows", sched.broker().total_regrows());
    rec.Set("total_io_bytes", total_io_bytes);
    rec.Set("verified", service_ok);
    JsonValue tail = JsonValue::Object();
    tail.Set("run_p50", Percentile(run_seconds, 0.5));
    tail.Set("run_p95", Percentile(run_seconds, 0.95));
    tail.Set("run_p99", Percentile(run_seconds, 0.99));
    tail.Set("run_max", Percentile(run_seconds, 1.0));
    tail.Set("queue_p50", Percentile(queue_seconds, 0.5));
    tail.Set("queue_p95", Percentile(queue_seconds, 0.95));
    tail.Set("queue_p99", Percentile(queue_seconds, 0.99));
    tail.Set("queue_max", Percentile(queue_seconds, 1.0));
    rec.Set("tail_latency", std::move(tail));
    reporter.AddRawRecord(std::move(rec));

    Status st = reporter.Write();
    if (!st.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n",
                   reporter.output_path().c_str(), st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu records)\n", reporter.output_path().c_str(),
                reporter.doc().Find("records")->size());
  }
  return service_ok ? 0 : 1;
}
