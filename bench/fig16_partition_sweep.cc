// Figure 16: partition-phase performance vs. the group size G and the
// prefetch distance D at 800 partitions — the same concave tuning curves
// as the join phase (Figure 12), on the k=2 partitioning pipeline.

#include <cstdio>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.1);
  sim::SimConfig cfg;
  uint32_t parts = uint32_t(flags.GetInt("partitions", 800));

  uint64_t tuples = uint64_t(10'000'000 * geo.scale);
  Relation input = GenerateSourceRelation(tuples, 100, 42);

  std::printf(
      "=== Figure 16: partition-phase parameter tuning (%u partitions) "
      "[scale=%.2f] ===\n\n",
      parts, geo.scale);

  std::printf("--- group prefetching ---\n%-8s %14s\n", "G", "cycles");
  for (uint32_t g : {2u, 4u, 8u, 14u, 19u, 25u, 32u, 48u, 64u, 96u, 128u,
                     256u}) {
    KernelParams p;
    p.group_size = g;
    SimRun r = RunPartitionPhaseSim(Scheme::kGroup, input, parts, p, cfg);
    std::printf("%-8u %14llu\n", g,
                (unsigned long long)r.stats.TotalCycles());
  }

  std::printf("\n--- software-pipelined prefetching ---\n%-8s %14s\n", "D",
              "cycles");
  for (uint32_t d : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u}) {
    KernelParams p;
    p.prefetch_distance = d;
    SimRun r = RunPartitionPhaseSim(Scheme::kSwp, input, parts, p, cfg);
    std::printf("%-8u %14llu\n", d,
                (unsigned long long)r.stats.TotalCycles());
  }

  std::printf("\npaper: concave shapes as in the join phase\n");
  return 0;
}
