// Figure 19: full-join comparison with cache partitioning, when "direct
// cache" applies (relations small enough for cache-sized I/O
// partitions). Partition-phase, join-phase, and overall times for: the
// GRACE baseline, group prefetching, software-pipelined prefetching,
// direct cache partitioning, and two-step cache partitioning.
// (a)-(c) vary the tuple size at 2 matches/build; (d) varies the
// percentage of tuples with matches at 100B.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

struct Config {
  const char* name;
  Scheme join_scheme;
  Scheme partition_scheme;
  GraceConfig::CacheMode mode;
};

std::vector<Config> Configs() {
  return {
      {"baseline", Scheme::kBaseline, Scheme::kBaseline,
       GraceConfig::CacheMode::kNone},
      {"group", Scheme::kGroup, Scheme::kGroup,
       GraceConfig::CacheMode::kNone},
      {"swp", Scheme::kSwp, Scheme::kSwp, GraceConfig::CacheMode::kNone},
      // Cache partitioning enhanced with simple prefetching (§7.5).
      {"direct-cache", Scheme::kSimple, Scheme::kGroup,
       GraceConfig::CacheMode::kDirect},
      {"2step-cache", Scheme::kSimple, Scheme::kGroup,
       GraceConfig::CacheMode::kTwoStep},
  };
}

void RunPoint(const char* xlabel, const JoinWorkload& w, uint64_t budget) {
  for (const Config& c : Configs()) {
    sim::MemorySim simulator{sim::SimConfig{}};
    SimMemory mm(&simulator);
    GraceConfig gc;
    gc.memory_budget = budget;
    gc.join_scheme = c.join_scheme;
    gc.partition_scheme = c.partition_scheme;
    // All partition phases use combined prefetching (§7.5); the schemes
    // differ in partition counts and join-phase strategy. The baseline
    // keeps its unprefetched partition phase.
    gc.combined_partition = c.mode != GraceConfig::CacheMode::kNone ||
                            c.partition_scheme != Scheme::kBaseline;
    gc.cache_mode = c.mode;
    gc.join_params = SimPaperJoinParams();
    gc.partition_params = SimPaperPartitionParams();
    JoinResult r = GraceHashJoin(mm, w.build, w.probe, gc, nullptr);
    uint64_t part = r.partition_phase.sim.TotalCycles();
    uint64_t join = r.join_phase.sim.TotalCycles();
    std::printf("%-10s %-14s parts=%-5u partition=%12llu join=%12llu "
                "total=%12llu\n",
                xlabel, c.name, r.num_partitions, (unsigned long long)part,
                (unsigned long long)join, (unsigned long long)(part + join));
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  double scale = flags.GetDouble("scale", 0.05);
  uint64_t budget = uint64_t(50.0 * 1024 * 1024 * scale);

  std::printf(
      "=== Figure 19: comparison with cache partitioning (scaled 200MB "
      "x 400MB join) [scale=%.2f] ===\n\n",
      scale);

  std::printf("--- (a-c) varying tuple size, 2 matches/build ---\n");
  for (uint32_t ts : {20u, 60u, 100u, 140u}) {
    WorkloadSpec spec;
    spec.tuple_size = ts;
    spec.num_build_tuples = uint64_t(200.0 * 1024 * 1024 * scale) / ts;
    spec.matches_per_build = 2.0;
    JoinWorkload w = GenerateJoinWorkload(spec);
    char label[16];
    std::snprintf(label, sizeof(label), "%uB", ts);
    RunPoint(label, w, budget);
    std::printf("\n");
  }

  std::printf("--- (d) varying %% of tuples with matches, 100B ---\n");
  for (double f : {0.5, 0.75, 1.0}) {
    WorkloadSpec spec;
    spec.tuple_size = 100;
    spec.num_build_tuples = uint64_t(200.0 * 1024 * 1024 * scale) / 100;
    spec.matches_per_build = 2.0;
    spec.build_match_fraction = f;
    spec.probe_match_fraction = f;
    JoinWorkload w = GenerateJoinWorkload(spec);
    char label[16];
    std::snprintf(label, sizeof(label), "%d%%", int(f * 100));
    RunPoint(label, w, budget);
    std::printf("\n");
  }

  std::printf(
      "paper: direct-cache best in the join phase but pays in the "
      "partition phase; two-step 50-150%% slower than prefetching; "
      "prefetching best overall (1.9-2.7X over baseline)\n");
  return 0;
}
