// Figure 18: robustness against cache interference. The caches are
// flushed every 10ms..2ms (the worst-case multiprogramming interference)
// and each scheme's join-phase time is normalized to its own no-flush
// run (= 100). Cache partitioning relies on exclusive cache use and
// degrades (paper: direct 15-67%, two-step 8-38%); the prefetching
// schemes barely move.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

struct Config {
  const char* name;
  Scheme scheme;
  GraceConfig::CacheMode mode;
};

uint64_t JoinPhaseCycles(const Config& c, const JoinWorkload& w,
                         uint64_t memory_budget, uint64_t flush_cycles) {
  sim::SimConfig scfg;
  scfg.flush_period_cycles = flush_cycles;
  sim::MemorySim simulator(scfg);
  SimMemory mm(&simulator);
  GraceConfig gc;
  gc.memory_budget = memory_budget;
  gc.join_scheme = c.scheme;
  gc.partition_scheme = Scheme::kGroup;
  gc.combined_partition = true;
  gc.cache_mode = c.mode;
  gc.join_params = SimPaperJoinParams();
  JoinResult r = GraceHashJoin(mm, w.build, w.probe, gc, nullptr);
  return r.join_phase.sim.TotalCycles();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  double scale = flags.GetDouble("scale", 0.05);

  // Scaled 200MB build / 400MB probe relations, 100B tuples.
  WorkloadSpec spec;
  spec.tuple_size = 100;
  spec.num_build_tuples = uint64_t(200.0 * 1024 * 1024 * scale) / 100;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  uint64_t budget = uint64_t(50.0 * 1024 * 1024 * scale);

  std::vector<Config> configs = {
      {"baseline", Scheme::kBaseline, GraceConfig::CacheMode::kNone},
      {"simple", Scheme::kSimple, GraceConfig::CacheMode::kNone},
      {"group", Scheme::kGroup, GraceConfig::CacheMode::kNone},
      {"swp", Scheme::kSwp, GraceConfig::CacheMode::kNone},
      // Cache partitioning enhanced with simple prefetching (§7.5:
      // "wherever possible") — its premise is that cache residency makes
      // inter-tuple prefetching of table visits unnecessary.
      {"direct-cache", Scheme::kSimple, GraceConfig::CacheMode::kDirect},
      {"2-step-cache", Scheme::kSimple, GraceConfig::CacheMode::kTwoStep},
  };

  // Flush periods in cycles at 1GHz: none, 10ms, 5ms, 3.3ms, 2ms.
  std::vector<uint64_t> periods = {0, 10'000'000, 5'000'000, 3'333'333,
                                   2'000'000};

  std::printf(
      "=== Figure 18: join-phase time under periodic cache flushing, "
      "normalized to no-flush = 100 [scale=%.2f] ===\n\n",
      scale);
  std::printf("%-14s %10s %10s %10s %10s %10s\n", "scheme", "none", "10ms",
              "5ms", "3.3ms", "2ms");
  for (const Config& c : configs) {
    std::printf("%-14s", c.name);
    uint64_t base = 0;
    for (uint64_t period : periods) {
      uint64_t cycles = JoinPhaseCycles(c, w, budget, period);
      if (period == 0) {
        base = cycles;
        std::printf(" %10s", "100.0");
      } else {
        std::printf(" %10.1f", 100.0 * double(cycles) / double(base));
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper: direct cache degrades 15-67%%, two-step 8-38%%; "
      "prefetching schemes stay near 100\n");
  return 0;
}
