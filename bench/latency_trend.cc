// The conclusions' "future speed gap" claim: even if the
// processor/memory gap grows by 6x (T: 150 -> 1000 cycles and beyond),
// group and software-pipelined prefetching — retuned per the models —
// keep the join phase's time nearly flat, while the baseline degrades in
// proportion to T.

#include <cstdio>

#include "bench_common.h"
#include "model/cost_model.h"

using namespace hashjoin;
using namespace hashjoin::bench;

namespace {

uint64_t ProbeCycles(Scheme scheme, const JoinWorkload& w,
                     const KernelParams& params, const sim::SimConfig& cfg) {
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildPartition(mm, Scheme::kGroup, w.build, &ht, params);
  simulator.ResetStats();
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  ProbePartition(mm, scheme, w.probe, ht, w.build.schema().fixed_size(),
                 params, &out);
  return simulator.stats().TotalCycles();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv);
  BenchGeometry geo;
  geo.scale = flags.GetDouble("scale", 0.05);

  WorkloadSpec spec;
  spec.tuple_size = 100;
  spec.num_build_tuples = geo.BuildTuples(100);
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  std::printf("=== Latency trend: probing time vs memory latency T "
              "(parameters retuned per the models) [scale=%.2f] ===\n\n",
              geo.scale);
  std::printf("%-8s %6s %6s %14s %14s %14s\n", "T", "G*", "D*", "baseline",
              "group", "swp");

  for (uint32_t latency : {150u, 300u, 600u, 1000u, 1500u}) {
    sim::SimConfig cfg;
    cfg.memory_latency = latency;
    model::CodeCosts costs{{cfg.cost_hash + cfg.cost_slot_bookkeeping,
                            cfg.cost_visit_header, cfg.cost_visit_cell,
                            cfg.cost_key_compare +
                                2 * cfg.cost_tuple_copy_per_line}};
    model::MachineParams machine{latency, cfg.memory_bandwidth_gap};
    // ChooseParams resolves the 0 "infeasible" sentinels of
    // MinGroupSize/MinDistance (G=0 or D=0 would misconfigure the
    // kernels) to safe fallbacks, with a logged warning.
    model::ParamChoice choice = model::ChooseParams(
        costs, machine, /*fallback_group=*/64, /*fallback_distance=*/4);
    uint32_t g = choice.group_size;
    uint32_t d = choice.prefetch_distance;

    uint64_t base = ProbeCycles(Scheme::kBaseline, w, KernelParams{}, cfg);
    KernelParams gp;
    gp.group_size = g;
    uint64_t group = ProbeCycles(Scheme::kGroup, w, gp, cfg);
    KernelParams sp;
    sp.prefetch_distance = d;
    uint64_t swp = ProbeCycles(Scheme::kSwp, w, sp, cfg);
    std::printf("%-8u %6u%s %5u%s %14llu %14llu %14llu\n", latency, g,
                choice.group_feasible ? " " : "!",
                d, choice.swp_feasible ? " " : "!",
                (unsigned long long)base, (unsigned long long)group,
                (unsigned long long)swp);
  }
  std::printf(
      "\npaper: prefetching keeps up as the speed gap grows 6x; the "
      "baseline degrades linearly with T\n");
  return 0;
}
