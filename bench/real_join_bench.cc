// Real-hardware microbenchmarks (google-benchmark) of the join phase:
// GRACE baseline vs simple vs group vs software-pipelined prefetching
// with actual PREFETCH instructions, plus the §7.1 hash-code
// memoization ablation and the output-tail-prefetch ablation. This is
// the "repro=5, intrinsics readily available" path: absolute numbers
// depend on the host, but group/software-pipelined prefetching should
// beat the baseline by a clear margin whenever the hash table exceeds
// the last-level cache.
//
// The full-join benchmarks take a repo flag on top of the
// google-benchmark ones: --threads=N runs BM_GraceJoin on the
// morsel-parallel executor with N workers (always alongside the
// 1-thread reference, so one invocation shows the speedup). Wall-clock
// scaling needs as many online cores, but output counts are verified
// at every thread count either way.

#include <benchmark/benchmark.h>

#include <set>
#include <string>
#include <vector>

#include "join/grace.h"
#include "mem/memory_model.h"
#include "util/flags.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

// Workload shared across benchmark runs (generation is expensive).
const JoinWorkload& SharedWorkload(uint32_t tuple_size) {
  static std::map<uint32_t, JoinWorkload>* cache =
      new std::map<uint32_t, JoinWorkload>();
  auto it = cache->find(tuple_size);
  if (it == cache->end()) {
    WorkloadSpec spec;
    spec.tuple_size = tuple_size;
    // ~48MB working set (build + table): far beyond LLC.
    spec.num_build_tuples =
        (48ull << 20) / (tuple_size + sizeof(BucketHeader) +
                         sizeof(HashCell));
    spec.matches_per_build = 2.0;
    it = cache->emplace(tuple_size, GenerateJoinWorkload(spec)).first;
  }
  return it->second;
}

void RunJoin(benchmark::State& state, Scheme scheme,
             const KernelParams& params, uint32_t tuple_size) {
  const JoinWorkload& w = SharedWorkload(tuple_size);
  RealMemory mm;
  for (auto _ : state) {
    HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
    BuildPartition(mm, scheme, w.build, &ht, params);
    Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
    uint64_t n = ProbePartition(mm, scheme, w.probe, ht, tuple_size,
                                params, &out);
    if (n != w.expected_matches) state.SkipWithError("bad join result");
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(w.probe.num_tuples()));
}

void BM_Join_Baseline(benchmark::State& state) {
  RunJoin(state, Scheme::kBaseline, KernelParams{},
          uint32_t(state.range(0)));
}
void BM_Join_Simple(benchmark::State& state) {
  RunJoin(state, Scheme::kSimple, KernelParams{},
          uint32_t(state.range(0)));
}
void BM_Join_Group(benchmark::State& state) {
  KernelParams p;
  p.group_size = uint32_t(state.range(1));
  RunJoin(state, Scheme::kGroup, p, uint32_t(state.range(0)));
}
void BM_Join_Swp(benchmark::State& state) {
  KernelParams p;
  p.prefetch_distance = uint32_t(state.range(1));
  RunJoin(state, Scheme::kSwp, p, uint32_t(state.range(0)));
}

// Ablations at the pivot point (100B tuples, G=19).
void BM_Join_Group_NoMemoizedHash(benchmark::State& state) {
  KernelParams p;
  p.group_size = 19;
  p.hash_mode = HashCodeMode::kCompute;
  RunJoin(state, Scheme::kGroup, p, 100);
}
void BM_Join_Group_NoOutputPrefetch(benchmark::State& state) {
  KernelParams p;
  p.group_size = 19;
  p.prefetch_output = false;
  RunJoin(state, Scheme::kGroup, p, 100);
}

BENCHMARK(BM_Join_Baseline)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Simple)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group)
    ->Args({100, 4})
    ->Args({100, 8})
    ->Args({100, 16})
    ->Args({100, 19})
    ->Args({100, 32})
    ->Args({100, 64})
    ->Args({20, 19})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Swp)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Args({100, 8})
    ->Args({20, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group_NoMemoizedHash)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group_NoOutputPrefetch)->Unit(benchmark::kMillisecond);

}  // namespace

// Full GRACE join (partition phase + join phase) on a uniform
// 8-partition workload, run on the morsel-parallel executor. The
// 1-thread run is the paper's serial path; higher thread counts must
// produce the identical output count.
void GraceJoinBench(benchmark::State& state, uint32_t threads) {
  const JoinWorkload& w = SharedWorkload(20);
  GraceConfig config;
  config.forced_num_partitions = 8;
  config.num_threads = threads;
  RealMemory mm;
  for (auto _ : state) {
    JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
    if (r.output_tuples != w.expected_matches) {
      state.SkipWithError("bad join result");
      break;
    }
    benchmark::DoNotOptimize(r.output_tuples);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(w.probe.num_tuples()));
}

}  // namespace hashjoin

// Custom main: the repo's --threads flag must come out of argv before
// google-benchmark sees it (ReportUnrecognizedArguments rejects foreign
// flags).
int main(int argc, char** argv) {
  hashjoin::FlagParser flags;
  flags.Parse(argc, argv);
  uint32_t threads = uint32_t(flags.GetInt("threads", 1));

  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--threads", 0) == 0) {
      if (a == "--threads" && i + 1 < argc && argv[i + 1][0] != '-') ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = int(args.size());

  std::set<uint32_t> counts = {1u, std::max(1u, threads)};
  std::vector<std::string> names;  // outlive RunSpecifiedBenchmarks
  for (uint32_t t : counts) {
    names.push_back("BM_GraceJoin/threads:" + std::to_string(t));
    benchmark::RegisterBenchmark(names.back().c_str(),
                                 hashjoin::GraceJoinBench, t)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
