// Real-hardware microbenchmarks (google-benchmark) of the join phase:
// GRACE baseline vs simple vs group vs software-pipelined prefetching
// with actual PREFETCH instructions, plus the §7.1 hash-code
// memoization ablation and the output-tail-prefetch ablation. This is
// the "repro=5, intrinsics readily available" path: absolute numbers
// depend on the host, but group/software-pipelined prefetching should
// beat the baseline by a clear margin whenever the hash table exceeds
// the last-level cache.

#include <benchmark/benchmark.h>

#include "join/grace.h"
#include "mem/memory_model.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

// Workload shared across benchmark runs (generation is expensive).
const JoinWorkload& SharedWorkload(uint32_t tuple_size) {
  static std::map<uint32_t, JoinWorkload>* cache =
      new std::map<uint32_t, JoinWorkload>();
  auto it = cache->find(tuple_size);
  if (it == cache->end()) {
    WorkloadSpec spec;
    spec.tuple_size = tuple_size;
    // ~48MB working set (build + table): far beyond LLC.
    spec.num_build_tuples =
        (48ull << 20) / (tuple_size + sizeof(BucketHeader) +
                         sizeof(HashCell));
    spec.matches_per_build = 2.0;
    it = cache->emplace(tuple_size, GenerateJoinWorkload(spec)).first;
  }
  return it->second;
}

void RunJoin(benchmark::State& state, Scheme scheme,
             const KernelParams& params, uint32_t tuple_size) {
  const JoinWorkload& w = SharedWorkload(tuple_size);
  RealMemory mm;
  for (auto _ : state) {
    HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
    BuildPartition(mm, scheme, w.build, &ht, params);
    Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
    uint64_t n = ProbePartition(mm, scheme, w.probe, ht, tuple_size,
                                params, &out);
    if (n != w.expected_matches) state.SkipWithError("bad join result");
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(w.probe.num_tuples()));
}

void BM_Join_Baseline(benchmark::State& state) {
  RunJoin(state, Scheme::kBaseline, KernelParams{},
          uint32_t(state.range(0)));
}
void BM_Join_Simple(benchmark::State& state) {
  RunJoin(state, Scheme::kSimple, KernelParams{},
          uint32_t(state.range(0)));
}
void BM_Join_Group(benchmark::State& state) {
  KernelParams p;
  p.group_size = uint32_t(state.range(1));
  RunJoin(state, Scheme::kGroup, p, uint32_t(state.range(0)));
}
void BM_Join_Swp(benchmark::State& state) {
  KernelParams p;
  p.prefetch_distance = uint32_t(state.range(1));
  RunJoin(state, Scheme::kSwp, p, uint32_t(state.range(0)));
}

// Ablations at the pivot point (100B tuples, G=19).
void BM_Join_Group_NoMemoizedHash(benchmark::State& state) {
  KernelParams p;
  p.group_size = 19;
  p.hash_mode = HashCodeMode::kCompute;
  RunJoin(state, Scheme::kGroup, p, 100);
}
void BM_Join_Group_NoOutputPrefetch(benchmark::State& state) {
  KernelParams p;
  p.group_size = 19;
  p.prefetch_output = false;
  RunJoin(state, Scheme::kGroup, p, 100);
}

BENCHMARK(BM_Join_Baseline)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Simple)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group)
    ->Args({100, 4})
    ->Args({100, 8})
    ->Args({100, 16})
    ->Args({100, 19})
    ->Args({100, 32})
    ->Args({100, 64})
    ->Args({20, 19})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Swp)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Args({100, 8})
    ->Args({20, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group_NoMemoizedHash)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group_NoOutputPrefetch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hashjoin

BENCHMARK_MAIN();
