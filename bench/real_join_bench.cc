// Real-hardware microbenchmarks (google-benchmark) of the join phase:
// GRACE baseline vs simple vs group vs software-pipelined prefetching
// with actual PREFETCH instructions, plus the §7.1 hash-code
// memoization ablation and the output-tail-prefetch ablation. This is
// the "repro=5, intrinsics readily available" path: absolute numbers
// depend on the host, but group/software-pipelined prefetching should
// beat the baseline by a clear margin whenever the hash table exceeds
// the last-level cache.
//
// The full-join benchmarks take repo flags on top of the
// google-benchmark ones: --threads=N runs BM_GraceJoin on the
// morsel-parallel executor with N workers (always alongside the
// 1-thread reference, so one invocation shows the speedup). Wall-clock
// scaling needs as many online cores, but output counts are verified
// at every thread count either way.
//
// --fault-rate=R / --fault-seed=S drive the disk-backed join benchmarks:
// BM_DiskGraceJoin/raw (no checksums), /clean (checksums, no faults) and
// — when R > 0 — /faults (seeded transient errors + torn pages, with
// write verification). raw vs clean is the checksum overhead; clean vs
// faults is the retry/recovery overhead at that fault rate.

#include <benchmark/benchmark.h>

#include <set>
#include <string>
#include <vector>

#include "join/grace.h"
#include "join/grace_disk.h"
#include "mem/memory_model.h"
#include "storage/buffer_manager.h"
#include "util/flags.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

// Workload shared across benchmark runs (generation is expensive).
const JoinWorkload& SharedWorkload(uint32_t tuple_size) {
  static std::map<uint32_t, JoinWorkload>* cache =
      new std::map<uint32_t, JoinWorkload>();
  auto it = cache->find(tuple_size);
  if (it == cache->end()) {
    WorkloadSpec spec;
    spec.tuple_size = tuple_size;
    // ~48MB working set (build + table): far beyond LLC.
    spec.num_build_tuples =
        (48ull << 20) / (tuple_size + sizeof(BucketHeader) +
                         sizeof(HashCell));
    spec.matches_per_build = 2.0;
    it = cache->emplace(tuple_size, GenerateJoinWorkload(spec)).first;
  }
  return it->second;
}

void RunJoin(benchmark::State& state, Scheme scheme,
             const KernelParams& params, uint32_t tuple_size) {
  const JoinWorkload& w = SharedWorkload(tuple_size);
  RealMemory mm;
  for (auto _ : state) {
    HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
    BuildPartition(mm, scheme, w.build, &ht, params);
    Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
    uint64_t n = ProbePartition(mm, scheme, w.probe, ht, tuple_size,
                                params, &out);
    if (n != w.expected_matches) state.SkipWithError("bad join result");
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(w.probe.num_tuples()));
}

void BM_Join_Baseline(benchmark::State& state) {
  RunJoin(state, Scheme::kBaseline, KernelParams{},
          uint32_t(state.range(0)));
}
void BM_Join_Simple(benchmark::State& state) {
  RunJoin(state, Scheme::kSimple, KernelParams{},
          uint32_t(state.range(0)));
}
void BM_Join_Group(benchmark::State& state) {
  KernelParams p;
  p.group_size = uint32_t(state.range(1));
  RunJoin(state, Scheme::kGroup, p, uint32_t(state.range(0)));
}
void BM_Join_Swp(benchmark::State& state) {
  KernelParams p;
  p.prefetch_distance = uint32_t(state.range(1));
  RunJoin(state, Scheme::kSwp, p, uint32_t(state.range(0)));
}

// Ablations at the pivot point (100B tuples, G=19).
void BM_Join_Group_NoMemoizedHash(benchmark::State& state) {
  KernelParams p;
  p.group_size = 19;
  p.hash_mode = HashCodeMode::kCompute;
  RunJoin(state, Scheme::kGroup, p, 100);
}
void BM_Join_Group_NoOutputPrefetch(benchmark::State& state) {
  KernelParams p;
  p.group_size = 19;
  p.prefetch_output = false;
  RunJoin(state, Scheme::kGroup, p, 100);
}

BENCHMARK(BM_Join_Baseline)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Simple)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group)
    ->Args({100, 4})
    ->Args({100, 8})
    ->Args({100, 16})
    ->Args({100, 19})
    ->Args({100, 32})
    ->Args({100, 64})
    ->Args({20, 19})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Swp)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Args({100, 8})
    ->Args({20, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group_NoMemoizedHash)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group_NoOutputPrefetch)->Unit(benchmark::kMillisecond);

}  // namespace

// Full GRACE join (partition phase + join phase) on a uniform
// 8-partition workload, run on the morsel-parallel executor. The
// 1-thread run is the paper's serial path; higher thread counts must
// produce the identical output count.
void GraceJoinBench(benchmark::State& state, uint32_t threads) {
  const JoinWorkload& w = SharedWorkload(20);
  GraceConfig config;
  config.forced_num_partitions = 8;
  config.num_threads = threads;
  RealMemory mm;
  for (auto _ : state) {
    JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
    if (r.output_tuples != w.expected_matches) {
      state.SkipWithError("bad join result");
      break;
    }
    benchmark::DoNotOptimize(r.output_tuples);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(w.probe.num_tuples()));
}

// Disk-backed GRACE join through the fault-tolerant I/O path. A modest
// workload (~4MB build) keeps each iteration short; the interesting
// quantity is the *relative* cost of checksums and fault recovery, not
// the absolute time.
void DiskGraceJoinBench(benchmark::State& state, bool checksums,
                        double fault_rate, uint64_t fault_seed) {
  static const JoinWorkload& w = *new JoinWorkload([] {
    WorkloadSpec spec;
    spec.tuple_size = 100;
    spec.num_build_tuples = 40000;
    spec.matches_per_build = 2.0;
    return GenerateJoinWorkload(spec);
  }());
  uint64_t injected = 0, retries = 0, verify_fixes = 0;
  for (auto _ : state) {
    BufferManagerConfig cfg;
    cfg.num_disks = 4;
    cfg.disk.bandwidth_mb_per_s = 20000;
    cfg.disk.request_latency_us = 0;
    cfg.checksum_pages = checksums;
    cfg.disk.fault.read_error_rate = fault_rate;
    cfg.disk.fault.write_error_rate = fault_rate;
    cfg.disk.fault.torn_page_rate = fault_rate;
    cfg.disk.fault.seed = fault_seed;
    cfg.verify_writes = fault_rate > 0;  // torn pages need the read-back
    BufferManager bm(cfg);
    DiskJoinConfig jc;
    jc.num_partitions = 8;
    jc.page_checksums = checksums;
    DiskGraceJoin join(&bm, jc);
    auto b = join.StoreRelation(w.build);
    auto p = join.StoreRelation(w.probe);
    if (!b.ok() || !p.ok()) {
      state.SkipWithError("store failed");
      break;
    }
    auto r = join.Join(b.value(), p.value());
    if (!r.ok() || r.value().output_tuples != w.expected_matches) {
      state.SkipWithError("bad disk join result");
      break;
    }
    injected += r.value().recovery.injected_faults;
    retries +=
        r.value().recovery.read_retries + r.value().recovery.write_retries;
    verify_fixes += r.value().recovery.write_verify_failures;
    benchmark::DoNotOptimize(r.value().output_tuples);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(w.probe.num_tuples()));
  state.counters["injected_faults"] = double(injected);
  state.counters["retries"] = double(retries);
  state.counters["verify_fixes"] = double(verify_fixes);
}

}  // namespace hashjoin

// Custom main: the repo's flags (--threads, --fault-rate, --fault-seed)
// must come out of argv before google-benchmark sees them
// (ReportUnrecognizedArguments rejects foreign flags).
int main(int argc, char** argv) {
  hashjoin::FlagParser flags;
  flags.Parse(argc, argv);
  uint32_t threads = uint32_t(flags.GetInt("threads", 1));
  double fault_rate = flags.GetDouble("fault-rate", 0.0);
  uint64_t fault_seed = uint64_t(flags.GetInt("fault-seed", 0x5EED));

  const char* repo_flags[] = {"--threads", "--fault-rate", "--fault-seed"};
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    bool ours = false;
    for (const char* f : repo_flags) {
      if (a.rfind(f, 0) == 0) {
        if (a == f && i + 1 < argc && argv[i + 1][0] != '-') ++i;
        ours = true;
        break;
      }
    }
    if (!ours) args.push_back(argv[i]);
  }
  int filtered_argc = int(args.size());

  std::set<uint32_t> counts = {1u, std::max(1u, threads)};
  std::vector<std::string> names;  // outlive RunSpecifiedBenchmarks
  for (uint32_t t : counts) {
    names.push_back("BM_GraceJoin/threads:" + std::to_string(t));
    benchmark::RegisterBenchmark(names.back().c_str(),
                                 hashjoin::GraceJoinBench, t)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }

  benchmark::RegisterBenchmark("BM_DiskGraceJoin/raw",
                               hashjoin::DiskGraceJoinBench,
                               /*checksums=*/false, 0.0, fault_seed)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("BM_DiskGraceJoin/clean",
                               hashjoin::DiskGraceJoinBench,
                               /*checksums=*/true, 0.0, fault_seed)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  if (fault_rate > 0) {
    benchmark::RegisterBenchmark("BM_DiskGraceJoin/faults",
                                 hashjoin::DiskGraceJoinBench,
                                 /*checksums=*/true, fault_rate, fault_seed)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
