// Real-hardware microbenchmarks (google-benchmark) of the join phase:
// GRACE baseline vs simple vs group vs software-pipelined prefetching
// with actual PREFETCH instructions, plus the §7.1 hash-code
// memoization ablation and the output-tail-prefetch ablation. This is
// the "repro=5, intrinsics readily available" path: absolute numbers
// depend on the host, but group/software-pipelined prefetching should
// beat the baseline by a clear margin whenever the hash table exceeds
// the last-level cache.
//
// The full-join benchmarks take repo flags on top of the
// google-benchmark ones: --threads=N runs BM_GraceJoin on the
// morsel-parallel executor with N workers (always alongside the
// 1-thread reference, so one invocation shows the speedup). Wall-clock
// scaling needs as many online cores, but output counts are verified
// at every thread count either way.
//
// --fault-rate=R / --fault-seed=S drive the disk-backed join benchmarks:
// BM_DiskGraceJoin/raw (no checksums), /clean (checksums, no faults) and
// — when R > 0 — /faults (seeded transient errors + torn pages, with
// write verification). raw vs clean is the checksum overhead; clean vs
// faults is the retry/recovery overhead at that fault rate.

// --json[=path] switches to the machine-readable harness: warm-up +
// repeated trials per configuration, hardware counters when available
// (see src/perf/), one BENCH_real_join.json record per configuration.
// --smoke shrinks the workload to ctest size; --tune=off|static|online
// picks how G and D are chosen (bench::ResolveTuning): off uses the
// paper defaults, static calibrates T/Tnext/max_outstanding on this
// host and applies Theorems 1+2 with the LFB clamp, and online
// additionally runs the per-batch PrefetchTuner feedback loop and
// records its trajectory. --auto-tune is the legacy alias for
// --tune=static.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "join/grace.h"
#include "join/grace_disk.h"
#include "mem/memory_model.h"
#include "model/cost_model.h"
#include "perf/bench_reporter.h"
#include "perf/calibrate.h"
#include "simcache/sim_config.h"
#include "storage/buffer_manager.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

// Workload shared across benchmark runs (generation is expensive).
const JoinWorkload& SharedWorkload(uint32_t tuple_size) {
  static std::map<uint32_t, JoinWorkload>* cache =
      new std::map<uint32_t, JoinWorkload>();
  auto it = cache->find(tuple_size);
  if (it == cache->end()) {
    WorkloadSpec spec;
    spec.tuple_size = tuple_size;
    // ~48MB working set (build + table): far beyond LLC.
    spec.num_build_tuples =
        (48ull << 20) / (tuple_size + sizeof(BucketHeader) +
                         sizeof(HashCell));
    spec.matches_per_build = 2.0;
    it = cache->emplace(tuple_size, GenerateJoinWorkload(spec)).first;
  }
  return it->second;
}

void RunJoin(benchmark::State& state, Scheme scheme,
             const KernelParams& params, uint32_t tuple_size) {
  const JoinWorkload& w = SharedWorkload(tuple_size);
  RealMemory mm;
  for (auto _ : state) {
    HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
    BuildPartition(mm, scheme, w.build, &ht, params);
    Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
    uint64_t n = ProbePartition(mm, scheme, w.probe, ht, tuple_size,
                                params, &out);
    if (n != w.expected_matches) state.SkipWithError("bad join result");
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(w.probe.num_tuples()));
}

void BM_Join_Baseline(benchmark::State& state) {
  RunJoin(state, Scheme::kBaseline, KernelParams{},
          uint32_t(state.range(0)));
}
void BM_Join_Simple(benchmark::State& state) {
  RunJoin(state, Scheme::kSimple, KernelParams{},
          uint32_t(state.range(0)));
}
void BM_Join_Group(benchmark::State& state) {
  KernelParams p;
  p.group_size = uint32_t(state.range(1));
  RunJoin(state, Scheme::kGroup, p, uint32_t(state.range(0)));
}
void BM_Join_Swp(benchmark::State& state) {
  KernelParams p;
  p.prefetch_distance = uint32_t(state.range(1));
  RunJoin(state, Scheme::kSwp, p, uint32_t(state.range(0)));
}
#if HASHJOIN_HAS_COROUTINES
void BM_Join_Coro(benchmark::State& state) {
  KernelParams p;
  p.group_size = uint32_t(state.range(1));  // interleave width W
  RunJoin(state, Scheme::kCoro, p, uint32_t(state.range(0)));
}
#endif

// Ablations at the pivot point (100B tuples, the paper-default G).
void BM_Join_Group_NoMemoizedHash(benchmark::State& state) {
  KernelParams p = bench::PaperJoinDefaults();
  p.hash_mode = HashCodeMode::kCompute;
  RunJoin(state, Scheme::kGroup, p, 100);
}
void BM_Join_Group_NoOutputPrefetch(benchmark::State& state) {
  KernelParams p = bench::PaperJoinDefaults();
  p.prefetch_output = false;
  RunJoin(state, Scheme::kGroup, p, 100);
}

BENCHMARK(BM_Join_Baseline)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Simple)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group)
    ->Args({100, 4})
    ->Args({100, 8})
    ->Args({100, 16})
    ->Args({100, 19})
    ->Args({100, 32})
    ->Args({100, 64})
    ->Args({20, 19})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Swp)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Args({100, 8})
    ->Args({20, 4})
    ->Unit(benchmark::kMillisecond);
#if HASHJOIN_HAS_COROUTINES
BENCHMARK(BM_Join_Coro)
    ->Args({100, 8})
    ->Args({100, 19})
    ->Args({100, 32})
    ->Args({20, 19})
    ->Unit(benchmark::kMillisecond);
#endif
BENCHMARK(BM_Join_Group_NoMemoizedHash)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Join_Group_NoOutputPrefetch)->Unit(benchmark::kMillisecond);

}  // namespace

// Full GRACE join (partition phase + join phase) on a uniform
// 8-partition workload, run on the morsel-parallel executor. The
// 1-thread run is the paper's serial path; higher thread counts must
// produce the identical output count.
void GraceJoinBench(benchmark::State& state, uint32_t threads) {
  const JoinWorkload& w = SharedWorkload(20);
  GraceConfig config;
  config.forced_num_partitions = 8;
  config.num_threads = threads;
  RealMemory mm;
  for (auto _ : state) {
    JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
    if (r.output_tuples != w.expected_matches) {
      state.SkipWithError("bad join result");
      break;
    }
    benchmark::DoNotOptimize(r.output_tuples);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(w.probe.num_tuples()));
}

// Disk-backed GRACE join through the fault-tolerant I/O path. A modest
// workload (~4MB build) keeps each iteration short; the interesting
// quantity is the *relative* cost of checksums and fault recovery, not
// the absolute time.
void DiskGraceJoinBench(benchmark::State& state, bool checksums,
                        double fault_rate, uint64_t fault_seed) {
  static const JoinWorkload& w = *new JoinWorkload([] {
    WorkloadSpec spec;
    spec.tuple_size = 100;
    spec.num_build_tuples = 40000;
    spec.matches_per_build = 2.0;
    return GenerateJoinWorkload(spec);
  }());
  uint64_t injected = 0, retries = 0, verify_fixes = 0;
  for (auto _ : state) {
    BufferManagerConfig cfg;
    cfg.num_disks = 4;
    cfg.disk.bandwidth_mb_per_s = 20000;
    cfg.disk.request_latency_us = 0;
    cfg.checksum_pages = checksums;
    cfg.disk.fault.read_error_rate = fault_rate;
    cfg.disk.fault.write_error_rate = fault_rate;
    cfg.disk.fault.torn_page_rate = fault_rate;
    cfg.disk.fault.seed = fault_seed;
    cfg.verify_writes = fault_rate > 0;  // torn pages need the read-back
    BufferManager bm(cfg);
    DiskJoinConfig jc;
    jc.num_partitions = 8;
    jc.page_checksums = checksums;
    DiskGraceJoin join(&bm, jc);
    auto b = join.StoreRelation(w.build);
    auto p = join.StoreRelation(w.probe);
    if (!b.ok() || !p.ok()) {
      state.SkipWithError("store failed");
      break;
    }
    auto r = join.Join(b.value(), p.value());
    if (!r.ok() || r.value().output_tuples != w.expected_matches) {
      state.SkipWithError("bad disk join result");
      break;
    }
    injected += r.value().recovery.injected_faults;
    retries +=
        r.value().recovery.read_retries + r.value().recovery.write_retries;
    verify_fixes += r.value().recovery.write_verify_failures;
    benchmark::DoNotOptimize(r.value().output_tuples);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(w.probe.num_tuples()));
  state.counters["injected_faults"] = double(injected);
  state.counters["retries"] = double(retries);
  state.counters["verify_fixes"] = double(verify_fixes);
}

// ---------------------------------------------------------------------------
// Machine-readable harness (--json): BenchReporter trials with hardware
// counters, one record per (scheme, G, D, threads) configuration.

namespace {

using bench::ProbeCodeCosts;  // shared Table-2 cost vector

JoinWorkload MakeWorkload(uint32_t tuple_size, uint64_t working_set_bytes) {
  WorkloadSpec spec;
  spec.tuple_size = tuple_size;
  spec.num_build_tuples =
      working_set_bytes /
      (tuple_size + sizeof(BucketHeader) + sizeof(HashCell));
  spec.matches_per_build = 2.0;
  return GenerateJoinWorkload(spec);
}

// --tune=online: probe the (pre-built) hash table batch by batch while a
// tune::PrefetchTuner ramps G/D from live per-batch counters, published
// to the kernels through KernelParams::live at batch boundaries. One
// record per depth-sensitive scheme, with the full tuner trajectory, so
// fig12_param_sweep --real can compare online convergence against the
// offline-best depth.
void RunOnlineJoinSection(perf::BenchReporter* reporter,
                          const FlagParser& flags,
                          const bench::TuningResolution& tuning,
                          const JoinWorkload& w, uint32_t tuple_size,
                          uint64_t working_set, bool smoke) {
  RealMemory mm;
  // Pre-split the probe input into batch slices (setup, untimed): batch
  // boundaries are where counters are read and new depths adopted.
  const size_t pages = w.probe.num_pages();
  const size_t num_batches = std::min<size_t>(smoke ? 12 : 48, pages);
  std::vector<Relation> batches;
  batches.reserve(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t begin = b * pages / num_batches;
    const size_t end = (b + 1) * pages / num_batches;
    Relation slice(w.probe.schema());
    for (size_t p = begin; p < end; ++p) {
      slice.AppendCopiedPage(w.probe.page(p).data());
    }
    batches.push_back(std::move(slice));
  }

  for (Scheme scheme : bench::SchemesFromFlag(flags)) {
    if (scheme == Scheme::kBaseline || scheme == Scheme::kSimple) {
      continue;  // no depth to tune
    }
    KernelParams params = tuning.params;
    LiveTuning live;
    params.live = &live;
    tune::TunerConfig tcfg =
        bench::TunerConfigFromResolution(tuning, ProbeCodeCosts());
    if (scheme == Scheme::kCoro) {
      // An AMAC-style interleave width is not LFB-bound: each chain
      // holds at most one outstanding prefetch and issue is spread over
      // resumes, so widths past the measured ceiling still pay (the
      // --real sweep places W* above it on this host). Feedback and
      // max_depth alone bound the coro ramp.
      tcfg.max_outstanding = 0;
    }
    tune::PrefetchTuner tuner(tcfg);
    live.Publish(tuner.group_size(), tuner.prefetch_distance());
    const uint32_t initial_g = tuner.group_size();
    const uint32_t initial_d = tuner.prefetch_distance();

    HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
    BuildPartition(mm, scheme, w.build, &ht, params);
    Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));

    perf::PerfCounters counters;
    const bool have_pmu = counters.available();
    const double ghz =
        tuning.calibration.cpu_ghz > 0 ? tuning.calibration.cpu_ghz : 3.0;

    uint64_t outputs = 0;
    double total_cycles = 0;
    uint64_t total_tuples = 0;
    WallTimer total;
    for (const Relation& slice : batches) {
      WallTimer batch_timer;
      if (have_pmu) counters.Start();
      outputs += ProbePartition(mm, scheme, slice, ht, tuple_size, params,
                                &out);
      if (have_pmu) counters.Stop();
      tune::BatchReading reading;
      reading.tuples = slice.num_tuples();
      reading.cycles = double(batch_timer.ElapsedNanos()) * ghz;
      if (have_pmu && counters.values().cycles.has_value()) {
        reading.cycles = double(*counters.values().cycles);
      }
      if (have_pmu && counters.values().l1d_misses.has_value()) {
        reading.l1d_misses = double(*counters.values().l1d_misses);
      }
      if (have_pmu && counters.values().stalled_cycles.has_value()) {
        reading.stalled_cycles = double(*counters.values().stalled_cycles);
      }
      total_cycles += reading.cycles;
      total_tuples += reading.tuples;
      if (tuner.OnBatch(reading)) {
        live.Publish(tuner.group_size(), tuner.prefetch_distance());
      }
      // Reset the output between batches (outside the timed window):
      // letting ~400MB of matches accumulate makes late batches
      // allocation- and TLB-bound regardless of depth, and the tuner
      // would chase that drift instead of the depth response. A real
      // operator pipeline hands output pages downstream anyway.
      out.Clear();
    }
    const double wall = total.ElapsedSeconds();
    const bool ok = outputs == w.expected_matches;

    // Converged cost: the best batch cost seen at the final depth (the
    // quantity the offline sweep's per-depth best compares against).
    double converged_cost = -1;
    for (const tune::TunerSample& s : tuner.trajectory()) {
      if (s.depth != tuner.depth()) continue;
      if (converged_cost < 0 || s.cycles_per_tuple < converged_cost) {
        converged_cost = s.cycles_per_tuple;
      }
    }

    JsonValue rec = JsonValue::Object();
    rec.Set("name", std::string("online/") + SchemeName(scheme));
    JsonValue config = JsonValue::Object();
    config.Set("phase", "online");
    config.Set("scheme", SchemeName(scheme));
    config.Set("G", tuning.params.group_size);  // static reference choice
    config.Set("D", tuning.params.prefetch_distance);
    config.Set("threads", 1);
    config.Set("tuple_size", tuple_size);
    config.Set("build_tuples", w.build.num_tuples());
    config.Set("probe_tuples", w.probe.num_tuples());
    config.Set("working_set_bytes", working_set);
    config.Set("batches", uint64_t(num_batches));
    rec.Set("config", std::move(config));
    rec.Set("trials", 1);
    rec.Set("warmup", 0);
    JsonValue wall_obj = JsonValue::Object();
    wall_obj.Set("median", wall);
    wall_obj.Set("min", wall);
    wall_obj.Set("mean", wall);
    rec.Set("wall_seconds", std::move(wall_obj));
    rec.Set("counters", JsonValue());
    rec.Set("counters_unavailable",
            "per-batch counter windows feed the online tuner");
    rec.Set("outputs", outputs);
    rec.Set("verified", ok);
    rec.Set("tuning", tuning.ToJson());
    JsonValue tj = JsonValue::Object();
    tj.Set("initial_G", initial_g);
    tj.Set("initial_D", initial_d);
    tj.Set("final_G", tuner.group_size());
    tj.Set("final_D", tuner.prefetch_distance());
    tj.Set("converged", tuner.converged());
    tj.Set("batches_seen", uint64_t(tuner.batches()));
    tj.Set("depth_cap", tcfg.max_outstanding > 0
                            ? std::min(tcfg.max_depth, tcfg.max_outstanding)
                            : tcfg.max_depth);
    tj.Set("cycles_per_tuple",
           total_tuples > 0 ? total_cycles / double(total_tuples) : 0.0);
    tj.Set("converged_cycles_per_tuple", converged_cost);
    tj.Set("trajectory", bench::TunerTrajectoryJson(tuner));
    rec.Set("tuner", std::move(tj));
    reporter->AddRawRecord(std::move(rec));
  }
}

int RunJsonHarness(const FlagParser& flags) {
  const bool smoke = flags.GetBool("smoke", false);
  const uint32_t tuple_size =
      uint32_t(flags.GetInt("tuple-size", smoke ? 20 : 100));
  const uint64_t working_set =
      smoke ? (2ull << 20) : (48ull << 20);
  const uint32_t threads =
      uint32_t(flags.GetInt("threads", smoke ? 2 : 1));

  perf::BenchReporter::Options opt;
  opt.bench_name = "real_join";
  std::string path = flags.GetString("json", "");
  if (!path.empty() && path != "true") opt.output_path = path;
  opt.trials = int(flags.GetInt("trials", smoke ? 2 : 5));
  opt.warmup = int(flags.GetInt("warmup", 1));
  perf::BenchReporter reporter(std::move(opt));

  // One shared tuning resolution for every scheme — no per-scheme
  // special cases: the coroutine interleave width is the same Theorem-1
  // group size GP uses, so a single resolver serves all of them.
  const bench::TuningResolution tuning = bench::ResolveTuning(
      flags, ProbeCodeCosts(), bench::PaperJoinDefaults());
  const KernelParams tuned = tuning.params;
  if (tuning.calibrated) reporter.SetCalibration(tuning.calibration);

  const JoinWorkload w = MakeWorkload(tuple_size, working_set);
  RealMemory mm;

  // --- join phase (build + probe), every scheme in --scheme (default:
  // all compiled in) ---
  for (Scheme scheme : bench::SchemesFromFlag(flags)) {
    KernelParams params = tuned;
    std::unique_ptr<HashTable> ht;
    std::unique_ptr<Relation> out;
    uint64_t outputs = 0;
    bool ok = true;
    JsonValue config = JsonValue::Object();
    config.Set("phase", "join");
    config.Set("scheme", SchemeName(scheme));
    config.Set("G", params.group_size);
    config.Set("D", params.prefetch_distance);
    config.Set("threads", 1);
    config.Set("tuple_size", tuple_size);
    config.Set("build_tuples", w.build.num_tuples());
    config.Set("probe_tuples", w.probe.num_tuples());
    config.Set("working_set_bytes", working_set);
    JsonValue& rec = reporter.AddRecord(
        std::string("join/") + SchemeName(scheme), std::move(config),
        /*body=*/
        [&] {
          BuildPartition(mm, scheme, w.build, ht.get(), params);
          outputs = ProbePartition(mm, scheme, w.probe, *ht, tuple_size,
                                   params, out.get());
          ok &= outputs == w.expected_matches;
        },
        /*setup=*/
        [&] {
          ht = std::make_unique<HashTable>(
              ChooseBucketCount(w.build.num_tuples(), 31));
          out = std::make_unique<Relation>(
              ConcatSchema(w.build.schema(), w.probe.schema()));
        });
    rec.Set("outputs", outputs);
    rec.Set("verified", ok);
    rec.Set("tuning", tuning.ToJson());
  }

  // --- online tuning: per-batch feedback loop (--tune=online) ---
  if (tuning.mode == bench::TuneMode::kOnline) {
    RunOnlineJoinSection(&reporter, flags, tuning, w, tuple_size,
                         working_set, smoke);
  }

  // --- full GRACE join on the morsel executor, 1..N threads ---
  std::set<uint32_t> counts = {1u, std::max(1u, threads)};
  for (uint32_t t : counts) {
    GraceConfig config;
    config.forced_num_partitions = 8;
    config.num_threads = t;
    config.join_params = tuned;
    JoinResult result;
    bool ok = true;
    JsonValue cfg = JsonValue::Object();
    cfg.Set("phase", "grace_full");
    cfg.Set("scheme", SchemeName(config.join_scheme));
    cfg.Set("G", tuned.group_size);
    cfg.Set("D", tuned.prefetch_distance);
    cfg.Set("threads", t);
    cfg.Set("tuple_size", tuple_size);
    cfg.Set("build_tuples", w.build.num_tuples());
    cfg.Set("probe_tuples", w.probe.num_tuples());
    JsonValue& rec = reporter.AddRecord(
        "grace_full/threads=" + std::to_string(t), std::move(cfg), [&] {
          result = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
          ok &= result.output_tuples == w.expected_matches;
        });
    rec.Set("outputs", result.output_tuples);
    rec.Set("verified", ok);
    JsonValue phases = JsonValue::Object();
    phases.Set("partition_wall_seconds",
               result.partition_phase.wall_seconds);
    phases.Set("join_wall_seconds", result.join_phase.wall_seconds);
    rec.Set("phases", std::move(phases));
    // Real-memory runs have no sim breakdowns; per-thread stats appear
    // here when the executor ran against the simulator (skew_bench).
    rec.Set("per_thread_sim_threads",
            uint64_t(result.per_thread_join_sim.size()));
    rec.Set("tuning", tuning.ToJson());
  }

  // --- disk-backed join through the fault-tolerant I/O path ---
  {
    const double fault_rate = flags.GetDouble("fault-rate", 0.0);
    const uint64_t fault_seed =
        uint64_t(flags.GetInt("fault-seed", 0x5EED));
    const JoinWorkload dw =
        MakeWorkload(100, smoke ? (1ull << 20) : (8ull << 20));
    struct DiskCase {
      const char* name;
      bool checksums;
      double rate;
    };
    std::vector<DiskCase> cases = {{"raw", false, 0.0},
                                   {"clean", true, 0.0}};
    if (fault_rate > 0) cases.push_back({"faults", true, fault_rate});
    for (const DiskCase& dc : cases) {
      DiskJoinRecovery recovery;
      uint64_t outputs = 0;
      bool ok = true;
      JsonValue cfg = JsonValue::Object();
      cfg.Set("phase", "disk_grace");
      cfg.Set("scheme", SchemeName(DiskJoinConfig{}.join_scheme));
      cfg.Set("checksums", dc.checksums);
      cfg.Set("fault_rate", dc.rate);
      cfg.Set("fault_seed", fault_seed);
      cfg.Set("tuple_size", 100);
      cfg.Set("build_tuples", dw.build.num_tuples());
      JsonValue& rec = reporter.AddRecord(
          std::string("disk_grace/") + dc.name, std::move(cfg), [&] {
            BufferManagerConfig bmc;
            bmc.num_disks = 4;
            bmc.disk.bandwidth_mb_per_s = 20000;
            bmc.disk.request_latency_us = 0;
            bmc.checksum_pages = dc.checksums;
            bmc.disk.fault.read_error_rate = dc.rate;
            bmc.disk.fault.write_error_rate = dc.rate;
            bmc.disk.fault.torn_page_rate = dc.rate;
            bmc.disk.fault.seed = fault_seed;
            bmc.verify_writes = dc.rate > 0;
            BufferManager bm(bmc);
            DiskJoinConfig jc;
            jc.num_partitions = 8;
            jc.page_checksums = dc.checksums;
            DiskGraceJoin join(&bm, jc);
            auto b = join.StoreRelation(dw.build);
            auto p = join.StoreRelation(dw.probe);
            if (!b.ok() || !p.ok()) {
              ok = false;
              return;
            }
            auto r = join.Join(b.value(), p.value());
            if (!r.ok()) {
              ok = false;
              return;
            }
            outputs = r.value().output_tuples;
            ok &= outputs == dw.expected_matches;
            recovery = r.value().recovery;
          });
      rec.Set("outputs", outputs);
      rec.Set("verified", ok);
      JsonValue io = JsonValue::Object();
      io.Set("read_retries", recovery.read_retries);
      io.Set("write_retries", recovery.write_retries);
      io.Set("checksum_failures", recovery.checksum_failures);
      io.Set("write_verify_failures", recovery.write_verify_failures);
      io.Set("injected_faults", recovery.injected_faults);
      io.Set("recursive_splits", recovery.recursive_splits);
      io.Set("chunked_fallbacks", recovery.chunked_fallbacks);
      io.Set("deepest_recursion", recovery.deepest_recursion);
      rec.Set("io_recovery", std::move(io));
    }
  }

  Status st = reporter.Write();
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n",
                 reporter.output_path().c_str(), st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu records, counters %s)\n",
              reporter.output_path().c_str(),
              reporter.doc().Find("records")->size(),
              reporter.counters_available() ? "available" : "unavailable");
  return 0;
}

}  // namespace

}  // namespace hashjoin

// Custom main: the repo's flags (--threads, --fault-rate, --fault-seed)
// must come out of argv before google-benchmark sees them
// (ReportUnrecognizedArguments rejects foreign flags).
int main(int argc, char** argv) {
  hashjoin::FlagParser flags;
  flags.Parse(argc, argv);
  if (flags.Has("json")) return hashjoin::RunJsonHarness(flags);
  // Validate --scheme even on the google-benchmark path (where the
  // registered benchmark list, not the flag, picks the kernels): a typo
  // should fail loudly, not silently run everything.
  if (flags.Has("scheme")) {
    (void)hashjoin::bench::SchemesFromFlag(flags);
  }
  uint32_t threads = uint32_t(flags.GetInt("threads", 1));
  double fault_rate = flags.GetDouble("fault-rate", 0.0);
  uint64_t fault_seed = uint64_t(flags.GetInt("fault-seed", 0x5EED));

  const char* repo_flags[] = {"--threads", "--fault-rate", "--fault-seed",
                              "--scheme",  "--tune",       "--auto-tune"};
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string a = argv[i];
    bool ours = false;
    for (const char* f : repo_flags) {
      if (a.rfind(f, 0) == 0) {
        if (a == f && i + 1 < argc && argv[i + 1][0] != '-') ++i;
        ours = true;
        break;
      }
    }
    if (!ours) args.push_back(argv[i]);
  }
  int filtered_argc = int(args.size());

  std::set<uint32_t> counts = {1u, std::max(1u, threads)};
  std::vector<std::string> names;  // outlive RunSpecifiedBenchmarks
  for (uint32_t t : counts) {
    names.push_back("BM_GraceJoin/threads:" + std::to_string(t));
    benchmark::RegisterBenchmark(names.back().c_str(),
                                 hashjoin::GraceJoinBench, t)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }

  benchmark::RegisterBenchmark("BM_DiskGraceJoin/raw",
                               hashjoin::DiskGraceJoinBench,
                               /*checksums=*/false, 0.0, fault_seed)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("BM_DiskGraceJoin/clean",
                               hashjoin::DiskGraceJoinBench,
                               /*checksums=*/true, 0.0, fault_seed)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  if (fault_rate > 0) {
    benchmark::RegisterBenchmark("BM_DiskGraceJoin/faults",
                                 hashjoin::DiskGraceJoinBench,
                                 /*checksums=*/true, fault_rate, fault_seed)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
